package fastofd

// Benchmark harness: one bench per table/figure of the paper's evaluation
// (see DESIGN.md's per-experiment index and EXPERIMENTS.md for measured
// results). cmd/benchrunner prints the paper-style tables; these testing.B
// benchmarks make the same sweeps available to `go test -bench`.

import (
	"fmt"
	"testing"

	"github.com/fastofd/fastofd/internal/discovery"
	"github.com/fastofd/fastofd/internal/fd"
	"github.com/fastofd/fastofd/internal/gen"
	"github.com/fastofd/fastofd/internal/holoclean"
	"github.com/fastofd/fastofd/internal/relation"
	"github.com/fastofd/fastofd/internal/repair"
	"github.com/fastofd/fastofd/internal/stats"
)

// BenchmarkExp1VaryN reproduces Fig 7a / Table 6: discovery runtime vs N
// for FastOFD and the FD baselines. Pair-based algorithms run at the
// smallest size only (they are quadratic, as the paper observes).
func BenchmarkExp1VaryN(b *testing.B) {
	for _, n := range []int{1000, 2000, 4000} {
		ds := gen.Clinical(n, 1)
		b.Run(fmt.Sprintf("fastofd/N=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				discovery.Discover(ds.Rel, ds.FullOnt, discovery.DefaultOptions())
			}
		})
		for _, alg := range []string{fd.TANE, fd.FUN, fd.DFD} {
			b.Run(fmt.Sprintf("%s/N=%d", alg, n), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := fd.Discover(alg, ds.Rel); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
		if n <= 1000 {
			for _, alg := range []string{fd.DepMiner, fd.FastFDs, fd.FDep, fd.FDMine} {
				b.Run(fmt.Sprintf("%s/N=%d", alg, n), func(b *testing.B) {
					for i := 0; i < b.N; i++ {
						if _, err := fd.Discover(alg, ds.Rel); err != nil {
							b.Fatal(err)
						}
					}
				})
			}
		}
	}
}

// BenchmarkExp2VaryAttrs reproduces Fig 7b: discovery runtime vs number of
// attributes (exponential lattice growth).
func BenchmarkExp2VaryAttrs(b *testing.B) {
	ds := gen.Clinical(1000, 1)
	for _, n := range []int{4, 8, 12, 15} {
		cols := make([]int, n)
		for i := range cols {
			cols[i] = i
		}
		sub, err := ds.Rel.ProjectColumns(cols)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("fastofd/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				discovery.Discover(sub, ds.FullOnt, discovery.DefaultOptions())
			}
		})
		b.Run(fmt.Sprintf("tane/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				fd.DiscoverTANE(sub)
			}
		})
	}
}

// BenchmarkExp3Optimizations reproduces Fig 7c: FastOFD with pruning rules
// ablated.
func BenchmarkExp3Optimizations(b *testing.B) {
	ds := gen.Clinical(2000, 1)
	configs := []struct {
		name string
		opts discovery.Options
	}{
		{"none", discovery.Options{}},
		{"opt2", discovery.Options{PruneAugmentation: true}},
		{"opt2+3", discovery.Options{PruneAugmentation: true, PruneKeys: true}},
		{"opt2+4", discovery.Options{PruneAugmentation: true, FDShortcut: true}},
		{"all", discovery.DefaultOptions()},
	}
	for _, c := range configs {
		b.Run(c.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				discovery.Discover(ds.Rel, ds.FullOnt, c.opts)
			}
		})
	}
}

// BenchmarkExp4LatticeLevels reproduces the level-capping analysis: most
// OFDs live in the top levels for a fraction of the cost.
func BenchmarkExp4LatticeLevels(b *testing.B) {
	ds := gen.Clinical(2000, 1)
	for _, cap := range []int{3, 6, 0} {
		name := fmt.Sprintf("maxlevel=%d", cap)
		if cap == 0 {
			name = "maxlevel=all"
		}
		opts := discovery.DefaultOptions()
		opts.MaxLevel = cap
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				discovery.Discover(ds.Rel, ds.FullOnt, opts)
			}
		})
	}
}

// BenchmarkExp5FalsePositives measures the cost of quantifying the tuples
// an FD-based cleaner would falsely flag (the discovery pass that feeds
// the paper's Exp-5 percentages).
func BenchmarkExp5FalsePositives(b *testing.B) {
	ds := gen.Clinical(2000, 1)
	res := discovery.Discover(ds.Rel, ds.FullOnt, discovery.DefaultOptions())
	v := NewVerifier(ds.Rel, ds.FullOnt)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, d := range res.OFDs {
			v.NonEqualConsequentFraction(d)
		}
	}
}

// BenchmarkExp6VarySenses reproduces Fig 8b: sense assignment time vs |λ|.
func BenchmarkExp6VarySenses(b *testing.B) {
	for _, nl := range []int{2, 6, 10} {
		ds := gen.Generate(gen.Config{Rows: 2000, Seed: 1, Senses: nl, ErrRate: 0.03, NumOFDs: 6})
		b.Run(fmt.Sprintf("senses=%d", nl), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := repair.Clean(ds.Rel, ds.Ont, ds.Sigma, repair.DefaultOptions()); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkExp7VaryErr reproduces Fig 8d: cleaning time vs error rate.
func BenchmarkExp7VaryErr(b *testing.B) {
	for _, er := range []float64{0.03, 0.09, 0.15} {
		ds := gen.Generate(gen.Config{Rows: 2000, Seed: 1, ErrRate: er, NumOFDs: 6})
		b.Run(fmt.Sprintf("err=%.0f%%", 100*er), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := repair.Clean(ds.Rel, ds.Ont, ds.Sigma, repair.DefaultOptions()); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkExp8SenseVaryN reproduces the Table 6 companion: sense
// assignment runtime vs N.
func BenchmarkExp8SenseVaryN(b *testing.B) {
	for _, n := range []int{1000, 2000, 4000} {
		ds := gen.Generate(gen.Config{Rows: n, Seed: 1, ErrRate: 0.03, NumOFDs: 6})
		b.Run(fmt.Sprintf("N=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := repair.Clean(ds.Rel, ds.Ont, ds.Sigma, repair.DefaultOptions()); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkExp9VaryBeam reproduces Fig 10b: runtime growth with beam size.
func BenchmarkExp9VaryBeam(b *testing.B) {
	ds := gen.Generate(gen.Config{Rows: 2000, Seed: 1, Preset: "kiva", ErrRate: 0.12, IncRate: 0.08, NumOFDs: 8, Senses: 6})
	for _, beam := range []int{1, 3, 5} {
		opts := repair.DefaultOptions()
		opts.Beam = beam
		b.Run(fmt.Sprintf("b=%d", beam), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := repair.Clean(ds.Rel, ds.Ont, ds.Sigma, opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkExp10VsHoloClean reproduces Fig 10d: OFDClean vs the
// HoloClean-style baseline runtime.
func BenchmarkExp10VsHoloClean(b *testing.B) {
	ds := gen.Generate(gen.Config{Rows: 2000, Seed: 1, Preset: "kiva", ErrRate: 0.09, IncRate: 0.04, NumOFDs: 6})
	var dict []string
	for _, id := range ds.Ont.AllClasses() {
		dict = append(dict, ds.Ont.Synonyms(id)...)
	}
	dictionary := holoclean.DictionaryFromValues(dict)
	b.Run("ofdclean", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := repair.Clean(ds.Rel, ds.Ont, ds.Sigma, repair.DefaultOptions()); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("holoclean", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			holoclean.Repair(ds.Rel, ds.Sigma, dictionary, holoclean.DefaultOptions())
		}
	})
}

// BenchmarkExp11VaryInc reproduces Fig 9a's runtime facet: cleaning with a
// staler ontology evaluates more ontology-repair candidates.
func BenchmarkExp11VaryInc(b *testing.B) {
	for _, inc := range []float64{0.02, 0.06, 0.10} {
		ds := gen.Generate(gen.Config{Rows: 2000, Seed: 1, ErrRate: 0.03, IncRate: inc, NumOFDs: 6})
		b.Run(fmt.Sprintf("inc=%.0f%%", 100*inc), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := repair.Clean(ds.Rel, ds.Ont, ds.Sigma, repair.DefaultOptions()); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkExp12VarySigma reproduces Fig 9b's runtime facet: more OFDs mean
// more equivalence classes and interactions.
func BenchmarkExp12VarySigma(b *testing.B) {
	for _, ns := range []int{10, 30, 50} {
		ds := gen.Generate(gen.Config{Rows: 2000, Seed: 1, ErrRate: 0.03, IncRate: 0.04, NumOFDs: ns})
		b.Run(fmt.Sprintf("sigma=%d", ns), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := repair.Clean(ds.Rel, ds.Ont, ds.Sigma, repair.DefaultOptions()); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkExp13CleanVaryN reproduces Table 7: OFDClean runtime vs N
// (~linear).
func BenchmarkExp13CleanVaryN(b *testing.B) {
	for _, n := range []int{1000, 2000, 4000, 8000} {
		ds := gen.Generate(gen.Config{Rows: n, Seed: 1, ErrRate: 0.06, IncRate: 0.04, NumOFDs: 6})
		b.Run(fmt.Sprintf("N=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := repair.Clean(ds.Rel, ds.Ont, ds.Sigma, repair.DefaultOptions()); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Ablation benches for DESIGN.md's called-out design choices. ---

// BenchmarkAblationPartitionProduct: stripped-partition product vs direct
// recomputation of Π_X from scratch for 2-attribute sets.
func BenchmarkAblationPartitionProduct(b *testing.B) {
	ds := gen.Clinical(4000, 1)
	pa := relation.SingleColumnPartition(ds.Rel, 2).Strip()
	pb := relation.SingleColumnPartition(ds.Rel, 3).Strip()
	b.Run("product", func(b *testing.B) {
		var buf relation.ProductBuffer
		for i := 0; i < b.N; i++ {
			buf.Product(pa, pb)
		}
	})
	b.Run("direct", func(b *testing.B) {
		attrs := relation.Single(2).With(3)
		for i := 0; i < b.N; i++ {
			relation.PartitionOf(ds.Rel, attrs)
		}
	})
}

// BenchmarkAblationVerify: sense-frequency hash verification cost on
// synonym-rich vs plain-FD columns.
func BenchmarkAblationVerify(b *testing.B) {
	ds := gen.Clinical(4000, 1)
	v := NewVerifier(ds.Rel, ds.FullOnt)
	schema := ds.Rel.Schema()
	synOFD := MustParseOFD(schema, "CC -> CTRY")
	fdOFD := MustParseOFD(schema, "SYMP -> STUDY_TYPE")
	b.Run("synonym-heavy", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			v.HoldsSyn(synOFD)
		}
	})
	b.Run("fd-fastpath", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			v.HoldsSyn(fdOFD)
		}
	})
}

// BenchmarkAblationMADvsFreq: MAD-based vs plain frequency ranking in
// sense initialization.
func BenchmarkAblationMADvsFreq(b *testing.B) {
	freqs := make([]float64, 64)
	for i := range freqs {
		freqs[i] = float64((i*7)%13 + 1)
	}
	b.Run("mad", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			stats.RankByMADScore(freqs)
		}
	})
	b.Run("freq", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			stats.RankByValue(freqs)
		}
	})
}

// BenchmarkAblationEMDGuided: EMD-guided local refinement vs skipping
// refinement entirely.
func BenchmarkAblationEMDGuided(b *testing.B) {
	ds := gen.Generate(gen.Config{Rows: 2000, Seed: 1, ErrRate: 0.06, NumOFDs: 10})
	withOpts := repair.DefaultOptions()
	withoutOpts := repair.DefaultOptions()
	withoutOpts.SkipRefinement = true
	b.Run("refined", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := repair.Clean(ds.Rel, ds.Ont, ds.Sigma, withOpts); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("unrefined", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := repair.Clean(ds.Rel, ds.Ont, ds.Sigma, withoutOpts); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkClosure measures the linear-time inference procedure.
func BenchmarkClosure(b *testing.B) {
	schema := MustSchema("A", "B", "C", "D", "E", "F", "G", "H")
	sigma := Set{
		MustParseOFD(schema, "A -> B"),
		MustParseOFD(schema, "A, C -> D"),
		MustParseOFD(schema, "B, C -> E"),
		MustParseOFD(schema, "F -> G"),
		MustParseOFD(schema, "A, F -> H"),
	}
	x := schema.MustSet("A", "C", "F")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Closure(sigma, x)
	}
}

// BenchmarkParallelDiscovery measures the Workers option's effect.
func BenchmarkParallelDiscovery(b *testing.B) {
	ds := gen.Clinical(4000, 1)
	for _, w := range []int{1, 2, 4} {
		opts := discovery.DefaultOptions()
		opts.Workers = w
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				discovery.Discover(ds.Rel, ds.FullOnt, opts)
			}
		})
	}
}

// BenchmarkInheritanceDiscovery compares synonym vs inheritance discovery
// cost (the conference version's 1.8x vs 2.4x overhead comparison).
func BenchmarkInheritanceDiscovery(b *testing.B) {
	ds := gen.Clinical(2000, 1)
	b.Run("synonym", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			discovery.Discover(ds.Rel, ds.FullOnt, discovery.DefaultOptions())
		}
	})
	b.Run("inheritance", func(b *testing.B) {
		opts := discovery.DefaultOptions()
		opts.Mode = discovery.ModeInheritance
		opts.Theta = 2
		for i := 0; i < b.N; i++ {
			discovery.Discover(ds.Rel, ds.FullOnt, opts)
		}
	})
}

// BenchmarkMonitorUpdate measures incremental verification vs full
// re-verification per cell update.
func BenchmarkMonitorUpdate(b *testing.B) {
	ds := gen.Generate(gen.Config{Rows: 4000, Seed: 1, NumOFDs: 6})
	m, err := NewMonitor(ds.Rel.Clone(), ds.FullOnt, ds.Sigma)
	if err != nil {
		b.Fatal(err)
	}
	col := ds.Sigma[0].RHS
	vals := ds.Rel.Project(col)
	b.Run("incremental", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := m.Update(i%ds.Rel.NumRows(), col, vals[i%len(vals)]); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("batched", func(b *testing.B) {
		batch := make([]CellUpdate, 64)
		for i := 0; i < b.N; i++ {
			for j := range batch {
				k := i*len(batch) + j
				batch[j] = CellUpdate{Row: k % ds.Rel.NumRows(), Col: col, Value: vals[k%len(vals)]}
			}
			if err := m.ApplyBatch(batch); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("full-reverify", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			v := NewVerifier(ds.Rel, ds.FullOnt)
			v.SatisfiesAll(ds.Sigma)
		}
	})
}
