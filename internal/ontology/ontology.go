// Package ontology implements the sense-annotated, tree-shaped ontology
// model from the paper. An ontology is a forest of classes; each class E
// carries a set of synonym values (synonyms(E)), belongs to a named sense
// (interpretation, e.g. "FDA" vs "MoH"), and may have is-a children.
// names(v) is the set of classes whose synonym set contains value v —
// the lookup at the heart of synonym-OFD verification.
package ontology

import (
	"fmt"
	"sort"
)

// ClassID identifies a class (concept) within one Ontology. IDs are dense
// and stable for the lifetime of the ontology; repairs append, never remove.
type ClassID int32

// NoClass is the invalid/absent ClassID (used for root parents).
const NoClass ClassID = -1

type class struct {
	name     string // canonical value representing the class
	sense    string // interpretation under which the class is defined
	parent   ClassID
	children []ClassID
	synonyms []string // includes name; sorted for determinism
	added    int      // number of synonyms inserted by repairs
}

// Ontology is a mutable sense-annotated ontology. The zero value is not
// usable; construct with New or a Builder.
type Ontology struct {
	classes []class
	names   map[string][]ClassID // value -> classes containing it
	senses  map[string][]ClassID // sense -> classes defined under it
	repairs int                  // total values added by repairs (dist(S, S'))
}

// New returns an empty ontology.
func New() *Ontology {
	return &Ontology{
		names:  make(map[string][]ClassID),
		senses: make(map[string][]ClassID),
	}
}

// AddClass creates a class with a canonical name, a sense label, an optional
// parent (NoClass for a root), and synonym values. The canonical name is
// always a member of the synonym set.
func (o *Ontology) AddClass(name, sense string, parent ClassID, synonyms ...string) (ClassID, error) {
	if name == "" {
		return NoClass, fmt.Errorf("ontology: class needs a name")
	}
	if parent != NoClass && (int(parent) < 0 || int(parent) >= len(o.classes)) {
		return NoClass, fmt.Errorf("ontology: parent %d out of range", parent)
	}
	id := ClassID(len(o.classes))
	syn := map[string]struct{}{name: {}}
	for _, s := range synonyms {
		if s != "" {
			syn[s] = struct{}{}
		}
	}
	list := make([]string, 0, len(syn))
	for s := range syn {
		list = append(list, s)
	}
	sort.Strings(list)
	o.classes = append(o.classes, class{name: name, sense: sense, parent: parent, synonyms: list})
	for _, s := range list {
		o.names[s] = append(o.names[s], id)
	}
	o.senses[sense] = append(o.senses[sense], id)
	if parent != NoClass {
		o.classes[parent].children = append(o.classes[parent].children, id)
	}
	return id, nil
}

// MustAddClass is AddClass that panics on error.
func (o *Ontology) MustAddClass(name, sense string, parent ClassID, synonyms ...string) ClassID {
	id, err := o.AddClass(name, sense, parent, synonyms...)
	if err != nil {
		panic(err)
	}
	return id
}

// NumClasses returns the number of classes.
func (o *Ontology) NumClasses() int { return len(o.classes) }

// Name returns the canonical value of class id.
func (o *Ontology) Name(id ClassID) string { return o.classes[id].name }

// Sense returns the sense label of class id.
func (o *Ontology) Sense(id ClassID) string { return o.classes[id].sense }

// Parent returns the parent of class id, or NoClass.
func (o *Ontology) Parent(id ClassID) ClassID { return o.classes[id].parent }

// Children returns the is-a children of class id.
func (o *Ontology) Children(id ClassID) []ClassID {
	return append([]ClassID(nil), o.classes[id].children...)
}

// Synonyms returns synonyms(E): all values of class id, sorted.
func (o *Ontology) Synonyms(id ClassID) []string {
	return append([]string(nil), o.classes[id].synonyms...)
}

// NumSynonyms returns |synonyms(E)| without copying.
func (o *Ontology) NumSynonyms(id ClassID) int { return len(o.classes[id].synonyms) }

// HasSynonym reports whether value v belongs to class id.
func (o *Ontology) HasSynonym(id ClassID, v string) bool {
	syn := o.classes[id].synonyms
	i := sort.SearchStrings(syn, v)
	return i < len(syn) && syn[i] == v
}

// Names returns names(v): the classes whose synonym set contains v, in
// insertion order. The returned slice must not be modified.
func (o *Ontology) Names(v string) []ClassID { return o.names[v] }

// Contains reports whether value v appears anywhere in the ontology.
func (o *Ontology) Contains(v string) bool { return len(o.names[v]) > 0 }

// SenseLabels returns all distinct sense labels, sorted.
func (o *Ontology) SenseLabels() []string {
	out := make([]string, 0, len(o.senses))
	for s := range o.senses {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

// ClassesOfSense returns the classes defined under sense label s.
func (o *Ontology) ClassesOfSense(s string) []ClassID {
	return append([]ClassID(nil), o.senses[s]...)
}

// AllClasses returns every ClassID in id order.
func (o *Ontology) AllClasses() []ClassID {
	out := make([]ClassID, len(o.classes))
	for i := range out {
		out[i] = ClassID(i)
	}
	return out
}

// Descendants returns descendants(E): every value of class id or any class
// below it in the is-a tree (the paper's Definition of descendants).
func (o *Ontology) Descendants(id ClassID) []string {
	var out []string
	var walk func(ClassID)
	walk = func(c ClassID) {
		out = append(out, o.classes[c].synonyms...)
		for _, ch := range o.classes[c].children {
			walk(ch)
		}
	}
	walk(id)
	sort.Strings(out)
	return out
}

// IsAncestor reports whether a is an ancestor of (or equal to) b.
func (o *Ontology) IsAncestor(a, b ClassID) bool {
	for c := b; c != NoClass; c = o.classes[c].parent {
		if c == a {
			return true
		}
	}
	return false
}

// LCA returns the least common ancestor of a and b, or NoClass if they are
// in different trees. Used by inheritance-OFD verification.
func (o *Ontology) LCA(a, b ClassID) ClassID {
	depth := func(c ClassID) int {
		d := 0
		for x := c; x != NoClass; x = o.classes[x].parent {
			d++
		}
		return d
	}
	da, db := depth(a), depth(b)
	for da > db {
		a, da = o.classes[a].parent, da-1
	}
	for db > da {
		b, db = o.classes[b].parent, db-1
	}
	for a != b {
		if a == NoClass || b == NoClass {
			return NoClass
		}
		a, b = o.classes[a].parent, o.classes[b].parent
	}
	return a
}

// PathLen returns the number of is-a edges between a descendant class c and
// its ancestor anc; -1 if anc is not an ancestor of c.
func (o *Ontology) PathLen(anc, c ClassID) int {
	d := 0
	for x := c; x != NoClass; x = o.classes[x].parent {
		if x == anc {
			return d
		}
		d++
	}
	return -1
}

// AddValue performs an ontology repair: insert value v into class id under
// its sense. It is a no-op if v is already a synonym of the class. Returns
// whether the ontology changed.
func (o *Ontology) AddValue(id ClassID, v string) bool {
	if v == "" || o.HasSynonym(id, v) {
		return false
	}
	c := &o.classes[id]
	c.synonyms = append(c.synonyms, v)
	sort.Strings(c.synonyms)
	c.added++
	o.names[v] = append(o.names[v], id)
	o.repairs++
	return true
}

// RepairDistance returns dist(S, S'): the number of values added by repairs
// since construction (or since the Clone this ontology was made from).
func (o *Ontology) RepairDistance() int { return o.repairs }

// ResetRepairDistance zeroes the repair counter, marking the current state
// as the new baseline S.
func (o *Ontology) ResetRepairDistance() {
	o.repairs = 0
	for i := range o.classes {
		o.classes[i].added = 0
	}
}

// Clone returns a deep copy with the repair counter reset, so that
// dist(S, S') of the copy counts only changes made after cloning.
func (o *Ontology) Clone() *Ontology {
	c := &Ontology{
		classes: make([]class, len(o.classes)),
		names:   make(map[string][]ClassID, len(o.names)),
		senses:  make(map[string][]ClassID, len(o.senses)),
	}
	for i, cl := range o.classes {
		c.classes[i] = class{
			name:     cl.name,
			sense:    cl.sense,
			parent:   cl.parent,
			children: append([]ClassID(nil), cl.children...),
			synonyms: append([]string(nil), cl.synonyms...),
		}
	}
	for v, ids := range o.names {
		c.names[v] = append([]ClassID(nil), ids...)
	}
	for s, ids := range o.senses {
		c.senses[s] = append([]ClassID(nil), ids...)
	}
	return c
}

// SharedSense returns the classes common to every value in vals — the
// intersection ∩ names(v). An empty result means no single interpretation
// covers all the values. A nil vals slice yields nil.
func (o *Ontology) SharedSense(vals []string) []ClassID {
	if len(vals) == 0 {
		return nil
	}
	count := make(map[ClassID]int)
	seen := make(map[string]struct{}, len(vals))
	distinct := 0
	for _, v := range vals {
		if _, dup := seen[v]; dup {
			continue
		}
		seen[v] = struct{}{}
		distinct++
		for _, id := range o.names[v] {
			count[id]++
		}
	}
	var out []ClassID
	for id, c := range count {
		if c == distinct {
			out = append(out, id)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
