package ontology

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// jsonClass is the serialized form of one class.
type jsonClass struct {
	Name     string   `json:"name"`
	Sense    string   `json:"sense"`
	Parent   int32    `json:"parent"` // -1 for roots
	Synonyms []string `json:"synonyms"`
}

type jsonOntology struct {
	Classes []jsonClass `json:"classes"`
}

// WriteJSON serializes the ontology. Repairs already applied are serialized
// as ordinary synonyms; the repair counter is not persisted.
func WriteJSON(w io.Writer, o *Ontology) error {
	doc := jsonOntology{Classes: make([]jsonClass, len(o.classes))}
	for i, c := range o.classes {
		doc.Classes[i] = jsonClass{
			Name:     c.name,
			Sense:    c.sense,
			Parent:   int32(c.parent),
			Synonyms: c.synonyms,
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// ReadJSON parses an ontology serialized by WriteJSON. Parents must precede
// children in the class list.
func ReadJSON(r io.Reader) (*Ontology, error) {
	var doc jsonOntology
	if err := json.NewDecoder(r).Decode(&doc); err != nil {
		return nil, fmt.Errorf("ontology: decoding JSON: %w", err)
	}
	o := New()
	for i, c := range doc.Classes {
		parent := ClassID(c.Parent)
		if parent != NoClass && int(parent) >= i {
			return nil, fmt.Errorf("ontology: class %d references parent %d not yet defined", i, parent)
		}
		if _, err := o.AddClass(c.Name, c.Sense, parent, c.Synonyms...); err != nil {
			return nil, err
		}
	}
	return o, nil
}

// ReadJSONFile parses an ontology from the named file.
func ReadJSONFile(path string) (*Ontology, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadJSON(f)
}

// WriteJSONFile serializes the ontology to the named file.
func WriteJSONFile(path string, o *Ontology) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteJSON(f, o); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
