package ontology

import (
	"bytes"
	"reflect"
	"testing"
)

// buildJaguar constructs the paper's motivating "jaguar" ontology: the
// value jaguar is an animal under one sense and a vehicle under another.
func buildJaguar(t *testing.T) (*Ontology, ClassID, ClassID, ClassID) {
	t.Helper()
	o := New()
	vehicle := o.MustAddClass("vehicle", "AUTO", NoClass, "car", "auto")
	jagCar := o.MustAddClass("jaguar land rover", "AUTO", vehicle, "jaguar")
	animal := o.MustAddClass("panthera onca", "ZOO", NoClass, "jaguar")
	o.MustAddClass("peruvian jaguar", "ZOO", animal)
	o.MustAddClass("mexican jaguar", "ZOO", animal)
	return o, vehicle, jagCar, animal
}

func TestNamesAndSynonyms(t *testing.T) {
	o, _, jagCar, animal := buildJaguar(t)
	names := o.Names("jaguar")
	if len(names) != 2 {
		t.Fatalf("names(jaguar) = %v", names)
	}
	if names[0] != jagCar || names[1] != animal {
		t.Fatalf("names order: %v", names)
	}
	if !o.HasSynonym(animal, "jaguar") || o.HasSynonym(animal, "car") {
		t.Fatal("HasSynonym wrong")
	}
	if got := o.Synonyms(jagCar); !reflect.DeepEqual(got, []string{"jaguar", "jaguar land rover"}) {
		t.Fatalf("synonyms = %v", got)
	}
	if !o.Contains("auto") || o.Contains("bicycle") {
		t.Fatal("Contains wrong")
	}
}

func TestDescendantsAndTree(t *testing.T) {
	o, vehicle, jagCar, animal := buildJaguar(t)
	desc := o.Descendants(animal)
	want := []string{"jaguar", "mexican jaguar", "panthera onca", "peruvian jaguar"}
	if !reflect.DeepEqual(desc, want) {
		t.Fatalf("descendants = %v", desc)
	}
	if !o.IsAncestor(vehicle, jagCar) || o.IsAncestor(jagCar, vehicle) {
		t.Fatal("ancestry wrong")
	}
	if o.Parent(jagCar) != vehicle || o.Parent(vehicle) != NoClass {
		t.Fatal("parents wrong")
	}
	if got := o.Children(animal); len(got) != 2 {
		t.Fatalf("children = %v", got)
	}
}

func TestLCAAndPathLen(t *testing.T) {
	o := New()
	root := o.MustAddClass("root", "S", NoClass)
	a := o.MustAddClass("a", "S", root)
	b := o.MustAddClass("b", "S", root)
	aa := o.MustAddClass("aa", "S", a)
	if got := o.LCA(aa, b); got != root {
		t.Fatalf("LCA(aa,b) = %d", got)
	}
	if got := o.LCA(aa, a); got != a {
		t.Fatalf("LCA(aa,a) = %d", got)
	}
	other := o.MustAddClass("island", "S", NoClass)
	if got := o.LCA(aa, other); got != NoClass {
		t.Fatalf("LCA across trees = %d", got)
	}
	if o.PathLen(root, aa) != 2 || o.PathLen(aa, root) != -1 || o.PathLen(a, a) != 0 {
		t.Fatal("PathLen wrong")
	}
}

func TestSharedSense(t *testing.T) {
	o := New()
	fda := o.MustAddClass("diltiazem", "FDA", NoClass, "cartia", "tiazac")
	moh := o.MustAddClass("aspirin", "MoH", NoClass, "cartia", "ASA")
	if got := o.SharedSense([]string{"cartia", "tiazac"}); len(got) != 1 || got[0] != fda {
		t.Fatalf("SharedSense(cartia,tiazac) = %v", got)
	}
	if got := o.SharedSense([]string{"cartia", "ASA"}); len(got) != 1 || got[0] != moh {
		t.Fatalf("SharedSense(cartia,ASA) = %v", got)
	}
	if got := o.SharedSense([]string{"tiazac", "ASA"}); got != nil {
		t.Fatalf("SharedSense(tiazac,ASA) = %v, want none", got)
	}
	// Duplicates must not break the intersection count.
	if got := o.SharedSense([]string{"cartia", "cartia", "tiazac"}); len(got) != 1 {
		t.Fatalf("SharedSense with dups = %v", got)
	}
	if got := o.SharedSense(nil); got != nil {
		t.Fatalf("SharedSense(nil) = %v", got)
	}
}

func TestAddValueRepair(t *testing.T) {
	o := New()
	fda := o.MustAddClass("diltiazem", "FDA", NoClass, "cartia", "tiazac")
	if o.RepairDistance() != 0 {
		t.Fatal("fresh ontology has repairs")
	}
	if !o.AddValue(fda, "adizem") {
		t.Fatal("AddValue should change the ontology")
	}
	if o.AddValue(fda, "adizem") {
		t.Fatal("second AddValue should be a no-op")
	}
	if o.RepairDistance() != 1 {
		t.Fatalf("repair distance = %d", o.RepairDistance())
	}
	if !o.HasSynonym(fda, "adizem") || len(o.Names("adizem")) != 1 {
		t.Fatal("added value not indexed")
	}
	o.ResetRepairDistance()
	if o.RepairDistance() != 0 {
		t.Fatal("reset failed")
	}
}

func TestCloneIsolation(t *testing.T) {
	o, _, jagCar, _ := buildJaguar(t)
	c := o.Clone()
	c.AddValue(jagCar, "xj220")
	if o.Contains("xj220") {
		t.Fatal("clone mutation leaked")
	}
	if c.RepairDistance() != 1 || o.RepairDistance() != 0 {
		t.Fatal("repair counters wrong after clone")
	}
}

func TestSenseLabels(t *testing.T) {
	o, _, _, _ := buildJaguar(t)
	if got := o.SenseLabels(); !reflect.DeepEqual(got, []string{"AUTO", "ZOO"}) {
		t.Fatalf("labels = %v", got)
	}
	if got := o.ClassesOfSense("ZOO"); len(got) != 3 {
		t.Fatalf("ZOO classes = %v", got)
	}
}

func TestJSONRoundTrip(t *testing.T) {
	o, _, _, _ := buildJaguar(t)
	var buf bytes.Buffer
	if err := WriteJSON(&buf, o); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumClasses() != o.NumClasses() {
		t.Fatalf("class count %d vs %d", back.NumClasses(), o.NumClasses())
	}
	for _, id := range o.AllClasses() {
		if !reflect.DeepEqual(back.Synonyms(id), o.Synonyms(id)) {
			t.Fatalf("class %d synonyms differ", id)
		}
		if back.Sense(id) != o.Sense(id) || back.Parent(id) != o.Parent(id) {
			t.Fatalf("class %d metadata differs", id)
		}
	}
}

func TestJSONForwardReferenceRejected(t *testing.T) {
	payload := `{"classes":[{"name":"a","sense":"S","parent":5,"synonyms":[]}]}`
	if _, err := ReadJSON(bytes.NewBufferString(payload)); err == nil {
		t.Fatal("forward parent reference should error")
	}
}

func TestAddClassValidation(t *testing.T) {
	o := New()
	if _, err := o.AddClass("", "S", NoClass); err == nil {
		t.Error("empty name should error")
	}
	if _, err := o.AddClass("x", "S", ClassID(42)); err == nil {
		t.Error("bad parent should error")
	}
	// Canonical name is always a synonym; empty synonyms are dropped.
	id := o.MustAddClass("x", "S", NoClass, "", "y")
	if got := o.Synonyms(id); !reflect.DeepEqual(got, []string{"x", "y"}) {
		t.Fatalf("synonyms = %v", got)
	}
}
