package pipeline

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"github.com/fastofd/fastofd/internal/core"
	"github.com/fastofd/fastofd/internal/discovery"
	"github.com/fastofd/fastofd/internal/ontology"
	"github.com/fastofd/fastofd/internal/relation"
)

// randomInstance builds a small random relation plus a random synonym
// ontology over its value universe (mirrors the discovery test harness).
func randomInstance(rng *rand.Rand) (*relation.Relation, *ontology.Ontology) {
	cols := 2 + rng.Intn(4)
	rows := 2 + rng.Intn(12)
	domain := 1 + rng.Intn(4)
	names := make([]string, cols)
	for i := range names {
		names[i] = fmt.Sprintf("A%d", i)
	}
	rel := relation.New(relation.MustSchema(names...))
	row := make([]string, cols)
	for r := 0; r < rows; r++ {
		for c := range row {
			row[c] = fmt.Sprintf("v%d", rng.Intn(domain))
		}
		rel.AppendRow(row)
	}
	o := ontology.New()
	numClasses := rng.Intn(5)
	for c := 0; c < numClasses; c++ {
		var syn []string
		for v := 0; v < domain; v++ {
			if rng.Intn(2) == 0 {
				syn = append(syn, fmt.Sprintf("v%d", v))
			}
		}
		o.MustAddClass(fmt.Sprintf("cls%d", c), fmt.Sprintf("sense%d", c%2), ontology.NoClass, syn...)
	}
	return rel, o
}

// streamOp is one step of a synthetic stream: a batch of cell updates
// followed by appended rows.
type streamOp struct {
	updates []core.CellUpdate
	appends [][]string
}

// randomStream derives a stream of mixed update/append batches; rows
// referenced by later batches account for earlier appends.
func randomStream(rng *rand.Rand, rel *relation.Relation, domain, nBatches int) []streamOp {
	ops := make([]streamOp, nBatches)
	rows := rel.NumRows()
	cols := rel.NumCols()
	value := func() string {
		if rng.Intn(6) == 0 {
			return fmt.Sprintf("novel%d", rng.Intn(4))
		}
		return fmt.Sprintf("v%d", rng.Intn(domain))
	}
	for b := range ops {
		nUpd := rng.Intn(5)
		for u := 0; u < nUpd; u++ {
			ops[b].updates = append(ops[b].updates, core.CellUpdate{
				Row: rng.Intn(rows), Col: rng.Intn(cols), Value: value(),
			})
		}
		if rng.Intn(3) == 0 {
			row := make([]string, cols)
			for c := range row {
				row[c] = value()
			}
			ops[b].appends = append(ops[b].appends, row)
			rows++
		}
	}
	return ops
}

// applyOp drives one stream op through a pipeline (updates, then appends).
func applyOp(t *testing.T, p *Pipeline, op streamOp) {
	t.Helper()
	if _, err := p.ApplyBatch(context.Background(), op.updates); err != nil {
		t.Fatalf("ApplyBatch: %v", err)
	}
	if len(op.appends) > 0 {
		if _, err := p.AppendRows(op.appends); err != nil {
			t.Fatalf("AppendRows: %v", err)
		}
	}
}

func reportJSON(t *testing.T, rep *core.Report) string {
	t.Helper()
	b, err := json.Marshal(rep)
	if err != nil {
		t.Fatalf("marshal report: %v", err)
	}
	return string(b)
}

// sortedSet returns a canonically ordered copy for order-insensitive
// set comparison (the monitor registers cover diffs in arrival order).
func sortedSet(s core.Set) core.Set {
	out := s.Clone()
	out.Sort()
	return out
}

// TestPipelineMatchesFreshEngines is the merged pipeline's byte-identity
// gate: for random instances and mixed update/append streams, after every
// batch the maintained cover equals a fresh Discover and the published
// report equals a fresh Detect over the current instance — identically
// for every (shards, workers) combination in {1,4,16} x {1,2,0}, with the
// monitored set tracking the cover.
func TestPipelineMatchesFreshEngines(t *testing.T) {
	type cfg struct{ shards, workers int }
	var cfgs []cfg
	for _, s := range []int{1, 4, 16} {
		for _, w := range []int{1, 2, 0} {
			cfgs = append(cfgs, cfg{s, w})
		}
	}
	rng := rand.New(rand.NewSource(91))
	for trial := 0; trial < 6; trial++ {
		rel, ont := randomInstance(rng)
		stream := randomStream(rng, rel, 4, 6)
		ps := make([]*Pipeline, len(cfgs))
		for k, c := range cfgs {
			var err error
			ps[k], err = New(context.Background(), rel.Clone(), ont, Options{
				FollowCover: true, Shards: c.shards, Workers: c.workers,
			})
			if err != nil {
				t.Fatalf("trial %d: New(shards=%d workers=%d): %v", trial, c.shards, c.workers, err)
			}
		}
		for b, op := range stream {
			var firstCover core.Set
			var firstReport string
			for k, p := range ps {
				applyOp(t, p, op)
				cover := p.Cover()
				rep := reportJSON(t, p.Report())
				if k == 0 {
					firstCover, firstReport = cover, rep
					want := discovery.Discover(p.Relation(), ont, discovery.DefaultOptions()).OFDs
					if !reflect.DeepEqual(cover, want) {
						t.Fatalf("trial %d batch %d: pipeline cover diverged from fresh discovery\n got: %v\nwant: %v\nrows: %v",
							trial, b, cover, want, p.Relation().Rows())
					}
					wantRep := reportJSON(t, core.Detect(p.Relation(), ont, cover))
					if rep != wantRep {
						t.Fatalf("trial %d batch %d: pipeline report diverged from fresh detect\n got: %s\nwant: %s",
							trial, b, rep, wantRep)
					}
					if got := sortedSet(p.Monitor().Sigma()); !reflect.DeepEqual(got, sortedSet(cover)) {
						t.Fatalf("trial %d batch %d: monitored set stopped following the cover\n got: %v\ncover: %v",
							trial, b, got, cover)
					}
					continue
				}
				if !reflect.DeepEqual(cover, firstCover) {
					t.Fatalf("trial %d batch %d: shards=%d workers=%d cover differs from config 0\n got: %v\nwant: %v",
						trial, b, cfgs[k].shards, cfgs[k].workers, cover, firstCover)
				}
				if rep != firstReport {
					t.Fatalf("trial %d batch %d: shards=%d workers=%d report differs from config 0\n got: %s\nwant: %s",
						trial, b, cfgs[k].shards, cfgs[k].workers, rep, firstReport)
				}
			}
		}
	}
}

// TestPipelineCancelledBatchRollsBack pins the atomicity boundary: a
// batch cancelled inside the maintainer's verify leaves the relation, the
// cover, the monitored report, and the published epoch untouched, and the
// same batch re-applied afterwards lands byte-identical to fresh engines.
func TestPipelineCancelledBatchRollsBack(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	errored := 0
	for trial := 0; trial < 10; trial++ {
		rel, ont := randomInstance(rng)
		p, err := New(context.Background(), rel.Clone(), ont, Options{
			FollowCover: true, Shards: 4, Workers: 2,
		})
		if err != nil {
			t.Fatalf("trial %d: New: %v", trial, err)
		}
		stream := randomStream(rng, p.Relation(), 4, 3)
		for _, op := range stream[:2] {
			applyOp(t, p, op)
		}
		ups := stream[2].updates
		if len(ups) == 0 {
			ups = []core.CellUpdate{{Row: 0, Col: 0, Value: "novel9"}}
		}
		beforeRel := p.Relation().Clone()
		beforeCover := p.Cover()
		beforeReport := reportJSON(t, p.Report())
		beforeEpoch := p.Monitor().Epoch()

		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		if _, err := p.ApplyBatch(ctx, ups); err != nil {
			errored++
			if d, derr := p.Relation().DiffCells(beforeRel); derr != nil || d != 0 {
				t.Fatalf("trial %d: cancelled batch changed %d cells (err %v)", trial, d, derr)
			}
			if got := p.Cover(); !reflect.DeepEqual(got, beforeCover) {
				t.Fatalf("trial %d: cancelled batch changed the cover\n got: %v\nwant: %v", trial, got, beforeCover)
			}
			if got := reportJSON(t, p.Report()); got != beforeReport {
				t.Fatalf("trial %d: cancelled batch changed the report\n got: %s\nwant: %s", trial, got, beforeReport)
			}
			if got := p.Monitor().Epoch(); got != beforeEpoch {
				t.Fatalf("trial %d: cancelled batch published epoch %d (was %d)", trial, got, beforeEpoch)
			}
		}

		// Re-applying the same batch with a live context must land exactly
		// where fresh engines over the final instance land.
		if _, err := p.ApplyBatch(context.Background(), ups); err != nil {
			t.Fatalf("trial %d: re-apply after cancellation: %v", trial, err)
		}
		cover := p.Cover()
		want := discovery.Discover(p.Relation(), ont, discovery.DefaultOptions()).OFDs
		if !reflect.DeepEqual(cover, want) {
			t.Fatalf("trial %d: post-rollback cover diverged\n got: %v\nwant: %v", trial, cover, want)
		}
		if got, want := reportJSON(t, p.Report()), reportJSON(t, core.Detect(p.Relation(), ont, cover)); got != want {
			t.Fatalf("trial %d: post-rollback report diverged\n got: %s\nwant: %s", trial, got, want)
		}
	}
	if errored == 0 {
		t.Fatal("no batch errored under a pre-cancelled context")
	}
}

// TestPipelinePinnedSigma exercises the non-following shape: an explicit
// monitored set stays pinned while the cover drifts underneath, and both
// stay byte-identical to their fresh counterparts after every batch —
// including wholesale re-routing when updates touch pinned antecedents.
func TestPipelinePinnedSigma(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	tested := 0
	for trial := 0; trial < 12 && tested < 6; trial++ {
		rel, ont := randomInstance(rng)
		sigma := discovery.Discover(rel, ont, discovery.DefaultOptions()).OFDs
		if len(sigma) == 0 {
			continue
		}
		tested++
		p, err := New(context.Background(), rel.Clone(), ont, Options{
			Sigma: sigma.Clone(), Shards: 4, Workers: 2,
		})
		if err != nil {
			t.Fatalf("trial %d: New: %v", trial, err)
		}
		for b, op := range randomStream(rng, p.Relation(), 4, 6) {
			applyOp(t, p, op)
			if got := p.Monitor().Sigma(); !reflect.DeepEqual(got, sigma) {
				t.Fatalf("trial %d batch %d: pinned sigma drifted\n got: %v\nwant: %v", trial, b, got, sigma)
			}
			if got, want := reportJSON(t, p.Report()), reportJSON(t, core.Detect(p.Relation(), ont, sigma)); got != want {
				t.Fatalf("trial %d batch %d: pinned-sigma report diverged\n got: %s\nwant: %s", trial, b, got, want)
			}
			cover := p.Cover()
			want := discovery.Discover(p.Relation(), ont, discovery.DefaultOptions()).OFDs
			if !reflect.DeepEqual(cover, want) {
				t.Fatalf("trial %d batch %d: cover diverged under pinned sigma\n got: %v\nwant: %v", trial, b, cover, want)
			}
		}
	}
	if tested == 0 {
		t.Fatal("no trial produced a non-empty initial cover")
	}
}

// TestPipelineRegisterUnregister checks live membership changes on the
// relaxed monitor: registering a new dependency makes its violations
// appear in the next report exactly as a fresh Detect would explain them,
// and unregistering restores the previous report.
func TestPipelineRegisterUnregister(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 8; trial++ {
		rel, ont := randomInstance(rng)
		p, err := New(context.Background(), rel.Clone(), ont, Options{Shards: 4, Workers: 2})
		if err != nil {
			t.Fatalf("trial %d: New: %v", trial, err)
		}
		base := p.Monitor().Sigma()
		baseReport := reportJSON(t, p.Report())

		// Pick a non-trivial dependency not already monitored.
		var extra core.OFD
		found := false
		for rhs := 0; rhs < rel.NumCols() && !found; rhs++ {
			for lhs := 0; lhs < rel.NumCols() && !found; lhs++ {
				if lhs == rhs {
					continue
				}
				d := core.OFD{LHS: relation.EmptySet.With(lhs), RHS: rhs}
				dup := false
				for _, e := range base {
					if e.LHS == d.LHS && e.RHS == d.RHS {
						dup = true
						break
					}
				}
				if !dup {
					extra, found = d, true
				}
			}
		}
		if !found {
			continue
		}
		if err := p.Monitor().Register(extra); err != nil {
			t.Fatalf("trial %d: Register: %v", trial, err)
		}
		if err := p.Monitor().Register(extra); err == nil {
			t.Fatalf("trial %d: duplicate Register must fail", trial)
		}
		want := reportJSON(t, core.Detect(p.Relation(), ont, append(base.Clone(), extra)))
		if got := reportJSON(t, p.Report()); got != want {
			t.Fatalf("trial %d: post-register report diverged\n got: %s\nwant: %s", trial, got, want)
		}
		if err := p.Monitor().Unregister(extra); err != nil {
			t.Fatalf("trial %d: Unregister: %v", trial, err)
		}
		if err := p.Monitor().Unregister(extra); err == nil {
			t.Fatalf("trial %d: double Unregister must fail", trial)
		}
		if got := reportJSON(t, p.Report()); got != baseReport {
			t.Fatalf("trial %d: post-unregister report diverged\n got: %s\nwant: %s", trial, got, baseReport)
		}
	}
}

// TestPipelineOptionValidation pins the FollowCover/Sigma exclusivity.
func TestPipelineOptionValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	rel, ont := randomInstance(rng)
	_, err := New(context.Background(), rel, ont, Options{
		FollowCover: true,
		Sigma:       core.Set{{LHS: relation.EmptySet.With(0), RHS: 1}},
	})
	if err == nil {
		t.Fatal("FollowCover with explicit Sigma must be rejected")
	}
}
