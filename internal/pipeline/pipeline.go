// Package pipeline merges the two incremental engines — the violation
// monitor (core.Monitor) and the minimal-cover maintainer
// (discovery.Maintainer) — onto one shared live-index substrate: one
// relation, one verifier, one partition cache, and one reference-counted
// overlay registry serve maintenance, detection, and repair verification
// together. A single ApplyBatch validates and applies a batch through the
// maintainer's atomic protocol, hands the effective write log to the
// monitor verbatim, and (optionally) keeps the monitored set following
// the discovered cover as it drifts — so the merged pipeline answers
// "what does this batch do to the dependencies AND to their violations"
// from one pass over the shared index instead of two engines' private
// copies of the same partitions.
//
// Everything observable is byte-identical to running the engines
// separately: the maintained cover matches a fresh Discover and the
// published reports match a fresh Detect over the final instance, for any
// shard and worker count — including after a cancelled (rolled back)
// batch. The substrate tests pin this down.
package pipeline

import (
	"context"
	"fmt"
	"time"

	"github.com/fastofd/fastofd/internal/core"
	"github.com/fastofd/fastofd/internal/discovery"
	"github.com/fastofd/fastofd/internal/exec"
	"github.com/fastofd/fastofd/internal/live"
	"github.com/fastofd/fastofd/internal/ontology"
	"github.com/fastofd/fastofd/internal/relation"
)

// Options configures a merged pipeline.
type Options struct {
	// Sigma is the dependency set to monitor. Nil monitors the discovered
	// initial cover (the usual merged-pipeline shape); non-nil pins an
	// explicit set instead.
	Sigma core.Set
	// FollowCover, when set, keeps the monitored set equal to the
	// maintained cover: every batch's cover diff registers the added OFDs
	// with the monitor and unregisters the removed ones before the batch
	// returns. Requires Sigma == nil.
	FollowCover bool
	// Shards is the monitor's shard count (0 auto-sizes from Workers,
	// exactly as core.NewMonitorSharded).
	Shards int
	// Workers parallelizes both engines on the shared exec substrate.
	Workers int
	// Stats, when non-nil, receives both engines' stage stats.
	Stats *exec.Stats
	// Discovery configures the initial cover discovery and the maintainer
	// (Workers/Stats/Cache/Verifier are overridden by the pipeline's
	// shared substrate). Zero value means discovery.DefaultOptions().
	Discovery *discovery.Options
}

// BatchResult is one batch's combined outcome across the engines.
type BatchResult struct {
	// Diff is the batch's change to the maintained minimal cover.
	Diff discovery.Diff
	// Epoch is the monitor's published epoch after absorbing the batch;
	// Report/ReportAt observe exactly this batch's violations.
	Epoch uint64
	// MaintainNanos is the wall time of the maintainer's validate + apply
	// + repair-verify phase; DetectNanos the monitor's absorb + publish
	// phase (plus cover registration when FollowCover).
	MaintainNanos int64
	DetectNanos   int64
}

// Pipeline is the merged engine pair over one shared substrate.
type Pipeline struct {
	rel *relation.Relation
	pc  *relation.PartitionCache
	reg *live.Overlays
	v   *core.Verifier
	mt  *discovery.Maintainer
	m   *core.Monitor

	followCover bool
}

// New builds the merged pipeline: one partition cache with the live
// overlay registry installed as its provider, one verifier on top, the
// maintainer (running the initial discovery) and the monitor both wired
// to that verifier, and overlay references acquired for every monitored
// antecedent, every cover element, and every single column.
func New(ctx context.Context, rel *relation.Relation, ont *ontology.Ontology, opts Options) (*Pipeline, error) {
	if opts.FollowCover && opts.Sigma != nil {
		return nil, fmt.Errorf("pipeline: FollowCover requires Sigma == nil (the cover is the monitored set)")
	}
	dopts := discovery.DefaultOptions()
	if opts.Discovery != nil {
		dopts = *opts.Discovery
	}
	dopts.Workers = opts.Workers
	dopts.Stats = opts.Stats

	pc, err := relation.NewPartitionCacheContext(ctx, rel, opts.Workers)
	if err != nil {
		return nil, err
	}
	reg := live.NewOverlays(rel, pc)
	pc.SetOverlayProvider(reg)
	v := core.NewVerifier(rel, ont, pc)
	dopts.Cache = pc
	dopts.Verifier = v

	mt, err := discovery.NewMaintainerContext(ctx, rel, ont, dopts)
	if err != nil {
		return nil, err
	}
	mt.SetOverlays(reg)

	sigma := opts.Sigma
	if sigma == nil {
		sigma = mt.Cover()
	}
	m, err := core.NewMonitorLive(ctx, rel, ont, sigma, opts.Shards, opts.Workers, opts.Stats, v)
	if err != nil {
		return nil, err
	}

	// Reference the live overlays the engines will keep consulting: one
	// per cover element (tracker rebuilds on cover churn), one per
	// monitored antecedent (re-routing), and one per single column
	// (appends extend every single-column partition, and nearly every
	// product starts from one).
	for _, d := range mt.Cover() {
		reg.Acquire(d.LHS)
	}
	for _, d := range sigma {
		reg.Acquire(d.LHS)
	}
	for c := 0; c < rel.NumCols(); c++ {
		reg.Acquire(relation.EmptySet.With(c))
	}
	return &Pipeline{rel: rel, pc: pc, reg: reg, v: v, mt: mt, m: m, followCover: opts.FollowCover}, nil
}

// ApplyBatch runs one update batch through the merged pipeline:
//
//  1. The maintainer validates, deduplicates, applies, and repair-verifies
//     the batch atomically (a cancelled batch rolls everything back and
//     leaves both engines at the pre-batch state).
//  2. The monitor absorbs the committed effective write log — the same
//     deduplicated cells, verbatim — and publishes one epoch.
//  3. With FollowCover, the cover diff registers/unregisters monitored
//     dependencies so the monitored set tracks the cover.
//
// The atomicity boundary is the maintainer's verify phase: once it
// commits, the remaining steps are deterministic bookkeeping and run
// uncancellable.
func (p *Pipeline) ApplyBatch(ctx context.Context, updates []core.CellUpdate) (BatchResult, error) {
	start := time.Now()
	diff, err := p.mt.ApplyBatchContext(ctx, updates)
	if err != nil {
		return BatchResult{}, err
	}
	maintainDone := time.Now()
	p.m.AbsorbBatchPrewarmed(p.mt.LastWrites())
	if err := p.followDiff(diff); err != nil {
		return BatchResult{}, err
	}
	end := time.Now()
	return BatchResult{
		Diff:          diff,
		Epoch:         p.m.Epoch(),
		MaintainNanos: maintainDone.Sub(start).Nanoseconds(),
		DetectNanos:   end.Sub(maintainDone).Nanoseconds(),
	}, nil
}

// AppendRows appends a batch of tuples through the merged pipeline: the
// maintainer appends and repairs (appends only demote, so this is
// uncancellable-fast), the live overlays route the new rows, and the
// monitor joins them under every dependency and publishes one epoch.
func (p *Pipeline) AppendRows(rows [][]string) (BatchResult, error) {
	start := time.Now()
	t0 := p.rel.NumRows()
	diff, err := p.mt.AppendRows(rows)
	if err != nil {
		return BatchResult{}, err
	}
	maintainDone := time.Now()
	p.m.AbsorbAppends(t0)
	if err := p.followDiff(diff); err != nil {
		return BatchResult{}, err
	}
	end := time.Now()
	return BatchResult{
		Diff:          diff,
		Epoch:         p.m.Epoch(),
		MaintainNanos: maintainDone.Sub(start).Nanoseconds(),
		DetectNanos:   end.Sub(maintainDone).Nanoseconds(),
	}, nil
}

// followDiff applies a cover diff to the monitored set (FollowCover
// mode): removed dependencies unregister, added ones acquire their
// overlay reference and register. The maintainer's commit already
// adjusted the cover-side references; these are the monitor's.
func (p *Pipeline) followDiff(diff discovery.Diff) error {
	if !p.followCover || diff.Empty() {
		return nil
	}
	for _, d := range diff.Removed {
		if err := p.m.Unregister(d); err != nil {
			return fmt.Errorf("pipeline: cover follow: %w", err)
		}
		p.reg.Release(d.LHS)
	}
	for _, d := range diff.Added {
		p.reg.Acquire(d.LHS)
		if err := p.m.Register(d); err != nil {
			return fmt.Errorf("pipeline: cover follow: %w", err)
		}
	}
	return nil
}

// FollowCover reports whether the monitored set tracks the cover.
func (p *Pipeline) FollowCover() bool { return p.followCover }

// Monitor returns the pipeline's monitor (reports, epochs, violating
// classes). Mutate only through the pipeline.
func (p *Pipeline) Monitor() *core.Monitor { return p.m }

// Maintainer returns the pipeline's maintainer (cover, epochs). Mutate
// only through the pipeline.
func (p *Pipeline) Maintainer() *discovery.Maintainer { return p.mt }

// Verifier returns the shared verifier all three roles consult.
func (p *Pipeline) Verifier() *core.Verifier { return p.v }

// Overlays returns the shared live overlay registry.
func (p *Pipeline) Overlays() *live.Overlays { return p.reg }

// Relation returns the shared relation.
func (p *Pipeline) Relation() *relation.Relation { return p.rel }

// Cover returns the maintained minimal cover (a fresh copy).
func (p *Pipeline) Cover() core.Set { return p.mt.Cover() }

// Report returns the monitor's latest published report.
func (p *Pipeline) Report() *core.Report { return p.m.Report() }

// CacheStats reports the shared partition cache's counters, including
// overlay-resident bytes.
func (p *Pipeline) CacheStats() relation.CacheStats { return p.pc.Stats() }
