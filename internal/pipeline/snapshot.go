package pipeline

import (
	"fmt"

	"github.com/fastofd/fastofd/internal/core"
	"github.com/fastofd/fastofd/internal/discovery"
	"github.com/fastofd/fastofd/internal/exec"
	"github.com/fastofd/fastofd/internal/live"
	"github.com/fastofd/fastofd/internal/ontology"
	"github.com/fastofd/fastofd/internal/relation"
	"github.com/fastofd/fastofd/internal/wire"
)

// The pipeline's snapshot payload is the merged form of the two engines'
// sections: the shared verifier's tables are written ONCE, followed by
// the monitor body and the maintainer body — neither of which carries its
// own verifier copy. A pipeline snapshot is therefore strictly smaller
// than the two standalone sections it replaces, and a decoded pipeline
// provably shares one verifier (both engines point at the same tables by
// construction, not by deduplication).
//
// The live overlay registry is not serialized: overlay entries restore
// stale and rebuild from the (restored or recomputed) partition cache on
// the first append batch, which is byte-identical to what the saved
// registry held.

// Append encodes the pipeline. Must not run concurrently with mutations.
func Append(w *wire.Writer, p *Pipeline) {
	if p.followCover {
		w.Uvarint(1)
	} else {
		w.Uvarint(0)
	}
	core.AppendVerifier(w, p.v)
	core.AppendMonitorBody(w, p.m)
	discovery.AppendMaintainerBody(w, p.mt)
}

// Decode rebuilds a pipeline over rel/ont from a payload written by
// Append. pc, when non-nil, is the restored shared partition cache
// (snapshot-consistent with rel); nil starts an empty one. One verifier
// is decoded and handed to both engine bodies, the overlay registry is
// reinstalled as the cache's provider with every reference re-acquired
// (entries start stale and rebuild on first use), and the restored
// pipeline's reports, cover, and subsequent batches are byte-identical
// to the saved one's.
func Decode(r *wire.Reader, rel *relation.Relation, ont *ontology.Ontology, pc *relation.PartitionCache, workers int, stats *exec.Stats) (*Pipeline, error) {
	follow := r.Uvarint()
	if r.Err() != nil {
		return nil, r.Err()
	}
	if follow > 1 {
		return nil, fmt.Errorf("pipeline: snapshot follow-cover flag %d", follow)
	}
	if pc == nil {
		pc = relation.NewPartitionCache(rel)
	}
	reg := live.NewOverlays(rel, pc)
	pc.SetOverlayProvider(reg)
	v, err := core.DecodeVerifier(r, rel, ont, pc)
	if err != nil {
		return nil, err
	}
	m, err := core.DecodeMonitorBody(r, rel, v, workers, stats)
	if err != nil {
		return nil, err
	}
	m.Relax()
	mt, err := discovery.DecodeMaintainerBody(r, rel, v, workers, stats)
	if err != nil {
		return nil, err
	}
	mt.SetOverlays(reg)
	for _, d := range mt.Cover() {
		reg.Acquire(d.LHS)
	}
	for _, d := range m.Sigma() {
		reg.Acquire(d.LHS)
	}
	for c := 0; c < rel.NumCols(); c++ {
		reg.Acquire(relation.EmptySet.With(c))
	}
	return &Pipeline{rel: rel, pc: pc, reg: reg, v: v, mt: mt, m: m, followCover: follow == 1}, nil
}

// Cache returns the shared partition cache (the snapshot layer encodes it
// alongside the pipeline so a reopened pipeline starts warm).
func (p *Pipeline) Cache() *relation.PartitionCache { return p.pc }
