package pipeline

import (
	"context"
	"math/rand"
	"reflect"
	"testing"

	"github.com/fastofd/fastofd/internal/discovery"
	"github.com/fastofd/fastofd/internal/relation"
)

// TestOverlaySubstrateConsistency is the shared-substrate invariant
// check: after every batch stage, every registered overlay that reports
// fresh materializes byte-identical to a fresh partition computation, and
// the shared cache serves a correct partition for EVERY attribute set in
// the lattice (products over materialized overlays included). This is the
// test that pins the RouteAppends ordering contract (fresh entries route
// before stale ones rebuild) and the per-entry row stamp.
func TestOverlaySubstrateConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 12; trial++ {
		rel, ont := randomInstance(rng)
		sigma := discovery.Discover(rel, ont, discovery.DefaultOptions()).OFDs
		if len(sigma) == 0 {
			continue
		}
		p, err := New(context.Background(), rel.Clone(), ont, Options{
			Sigma: sigma.Clone(), Shards: 4, Workers: 1,
		})
		if err != nil {
			t.Fatalf("trial %d: New: %v", trial, err)
		}
		check := func(b int, stage string) {
			n := p.Relation().NumRows()
			// Every registered overlay that reports fresh must materialize
			// byte-identical to a fresh computation.
			seen := map[relation.AttrSet]bool{}
			var sets []relation.AttrSet
			for _, d := range append(p.Cover(), sigma...) {
				if !seen[d.LHS] {
					seen[d.LHS] = true
					sets = append(sets, d.LHS)
				}
			}
			for c := 0; c < p.Relation().NumCols(); c++ {
				s := relation.EmptySet.With(c)
				if !seen[s] {
					seen[s] = true
					sets = append(sets, s)
				}
			}
			for _, attrs := range sets {
				ov := p.Overlays().LiveOverlay(attrs)
				if ov == nil {
					continue
				}
				got := ov.Materialize(n)
				want := relation.PartitionOf(p.Relation(), attrs).Strip()
				if !reflect.DeepEqual(got.Tuples, want.Tuples) || !reflect.DeepEqual(got.Offsets, want.Offsets) {
					t.Fatalf("trial %d batch %d %s: overlay for %v materializes wrong\n got: %v %v\nwant: %v %v\nrows: %v",
						trial, b, stage, attrs, got.Tuples, got.Offsets, want.Tuples, want.Offsets, p.Relation().Rows())
				}
			}
			// Every partition the shared cache serves must match a fresh
			// computation, for every attribute set in the lattice.
			nc := p.Relation().NumCols()
			pc := p.Verifier().Partitions()
			for s := relation.AttrSet(1); s < relation.AttrSet(uint64(1)<<uint(nc)); s++ {
				got := pc.Get(s)
				want := relation.PartitionOf(p.Relation(), s).Strip()
				if !reflect.DeepEqual(got.Tuples, want.Tuples) || !reflect.DeepEqual(got.Offsets, want.Offsets) {
					t.Fatalf("trial %d batch %d %s: cache serves wrong partition for %v\n got: %v %v\nwant: %v %v\nrows: %v",
						trial, b, stage, s, got.Tuples, got.Offsets, want.Tuples, want.Offsets, p.Relation().Rows())
				}
			}
		}
		check(-1, "init")
		for b, op := range randomStream(rng, p.Relation(), 4, 6) {
			if _, err := p.ApplyBatch(context.Background(), op.updates); err != nil {
				t.Fatalf("trial %d batch %d: ApplyBatch: %v", trial, b, err)
			}
			check(b, "post-updates")
			if len(op.appends) > 0 {
				if _, err := p.AppendRows(op.appends); err != nil {
					t.Fatalf("trial %d batch %d: AppendRows: %v", trial, b, err)
				}
				check(b, "post-appends")
			}
		}
	}
}
