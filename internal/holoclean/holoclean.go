// Package holoclean implements the comparative baseline of the paper's
// Exp-10/14: a HoloClean-style holistic data repair engine. Like the
// original system it combines three signal classes — integrity constraints
// (denial constraints derived from the dependencies, treated syntactically),
// an external dictionary of valid values, and statistical co-occurrence
// profiles — and repairs each noisy cell to the candidate value maximizing
// a weighted factor score. Crucially, and deliberately, it has no notion of
// ontological senses: syntactically different synonyms are treated as
// errors, which is precisely the false-positive behaviour OFDClean avoids.
package holoclean

import (
	"sort"

	"github.com/fastofd/fastofd/internal/core"
	"github.com/fastofd/fastofd/internal/relation"
)

// Options weight the repair signals.
type Options struct {
	WCooccur float64 // co-occurrence with the antecedent value
	WFreq    float64 // global value frequency prior
	WDict    float64 // external dictionary membership
	// OutlierShare is the within-class support share below which a cell is
	// considered noisy (error detection via statistical outliers, as
	// HoloClean's pruned-domain construction does).
	OutlierShare float64
	// MinTargetShare is the support the winning candidate needs before a
	// repair is applied; classes with no dominant value are left alone.
	MinTargetShare float64
}

// DefaultOptions mirrors HoloClean's emphasis on constraint-driven
// co-occurrence evidence over priors, with probabilistic thresholds tuned
// so only low-support cells in dominated classes are rewritten.
func DefaultOptions() Options {
	return Options{
		WCooccur:       1.0,
		WFreq:          0.3,
		WDict:          0.2,
		OutlierShare:   0.04,
		MinTargetShare: 0.3,
	}
}

// CellChange is one applied repair.
type CellChange struct {
	Row, Col int
	From, To string
}

// Result is the output of Repair.
type Result struct {
	Instance *relation.Relation
	Changes  []CellChange
	// NoisyCells is the number of cells flagged by denial-constraint
	// violation detection (before inference decides what to repair).
	NoisyCells int
}

// Repair runs the baseline: detect cells violating the dependencies (read
// as syntactic FDs / denial constraints), build candidate domains from
// co-occurring values plus the dictionary, and repair by maximum factor
// score. The input relation is not modified.
func Repair(rel *relation.Relation, sigma core.Set, dictionary map[string]struct{}, opts Options) *Result {
	work := rel.Clone()
	res := &Result{}
	pc := relation.NewPartitionCache(work)

	// Global frequency profile per column.
	freq := make([]map[string]int, work.NumCols())
	for c := range freq {
		freq[c] = make(map[string]int)
		for r := 0; r < work.NumRows(); r++ {
			freq[c][work.String(r, c)]++
		}
	}

	type plannedChange struct {
		row, col int
		to       string
	}
	var plan []plannedChange

	for _, d := range sigma {
		p := pc.Get(d.LHS)
		for ci := 0; ci < p.NumClasses(); ci++ {
			class := p.Class(ci)
			// Denial constraint ¬(t1[X]=t2[X] ∧ t1[A]≠t2[A]): any class
			// with >1 distinct consequent value is in violation; every
			// minority cell is noisy.
			counts := make(map[string]int, 4)
			for _, t := range class {
				counts[work.String(int(t), d.RHS)]++
			}
			if len(counts) <= 1 {
				continue
			}
			// Error detection: low-support values within a violating class
			// are noisy; out-of-dictionary values are noisy regardless of
			// support (the external-signal shortcut HoloClean gets from
			// reference data).
			values := make([]string, 0, len(counts))
			noisy := make(map[string]bool, len(counts))
			for v := range counts {
				values = append(values, v)
				share := float64(counts[v]) / float64(len(class))
				_, inDict := dictionary[v]
				if share < opts.OutlierShare || !inDict {
					noisy[v] = true
				}
			}
			sort.Strings(values)
			for v := range noisy {
				res.NoisyCells += counts[v]
			}
			// Candidate scoring over the class's non-noisy domain.
			score := func(v string) float64 {
				s := opts.WCooccur * float64(counts[v]) / float64(len(class))
				s += opts.WFreq * float64(freq[d.RHS][v]) / float64(work.NumRows())
				if _, ok := dictionary[v]; ok {
					s += opts.WDict
				}
				return s
			}
			bestV, bestS := "", -1.0
			for _, v := range values {
				if noisy[v] {
					continue
				}
				if s := score(v); s > bestS {
					bestV, bestS = v, s
				}
			}
			if bestV == "" || float64(counts[bestV])/float64(len(class)) < opts.MinTargetShare {
				continue // no dominant repair target; abstain
			}
			for _, t := range class {
				cur := work.String(int(t), d.RHS)
				if cur == bestV || !noisy[cur] {
					continue
				}
				plan = append(plan, plannedChange{row: int(t), col: d.RHS, to: bestV})
			}
		}
	}

	// Apply the plan; when several dependencies disagree about a cell, the
	// last writer wins (HoloClean resolves this via joint inference; the
	// sequential application approximates it deterministically).
	finalVal := make(map[[2]int]string, len(plan))
	for _, ch := range plan {
		finalVal[[2]int{ch.row, ch.col}] = ch.to
	}
	cells := make([][2]int, 0, len(finalVal))
	for c := range finalVal {
		cells = append(cells, c)
	}
	sort.Slice(cells, func(i, j int) bool {
		if cells[i][0] != cells[j][0] {
			return cells[i][0] < cells[j][0]
		}
		return cells[i][1] < cells[j][1]
	})
	for _, c := range cells {
		from := work.String(c[0], c[1])
		to := finalVal[c]
		if from == to {
			continue
		}
		work.SetString(c[0], c[1], to)
		res.Changes = append(res.Changes, CellChange{Row: c[0], Col: c[1], From: from, To: to})
	}
	res.Instance = work
	return res
}

// DictionaryFromValues builds the external-dictionary signal from any value
// collection (e.g. every value of an ontology, flattened without senses —
// the National Drug Code Directory analogue of the paper's setup).
func DictionaryFromValues(values []string) map[string]struct{} {
	out := make(map[string]struct{}, len(values))
	for _, v := range values {
		out[v] = struct{}{}
	}
	return out
}
