package holoclean

import (
	"testing"

	"github.com/fastofd/fastofd/internal/core"
	"github.com/fastofd/fastofd/internal/gen"
	"github.com/fastofd/fastofd/internal/relation"
)

func TestRepairFixesObviousOutlier(t *testing.T) {
	schema := relation.MustSchema("K", "V")
	rel, _ := relation.FromRows(schema, [][]string{
		{"a", "x"}, {"a", "x"}, {"a", "x"}, {"a", "x"}, {"a", "x"},
		{"a", "x"}, {"a", "x"}, {"a", "x"}, {"a", "x"}, {"a", "x"},
		{"a", "x"}, {"a", "x"}, {"a", "x"}, {"a", "x"}, {"a", "x"},
		{"a", "x"}, {"a", "x"}, {"a", "x"}, {"a", "x"}, {"a", "typo"},
	})
	sigma := core.Set{core.MustParse(schema, "K -> V")}
	dict := DictionaryFromValues([]string{"x"})
	res := Repair(rel, sigma, dict, DefaultOptions())
	if len(res.Changes) != 1 {
		t.Fatalf("changes = %+v", res.Changes)
	}
	ch := res.Changes[0]
	if ch.Row != 19 || ch.From != "typo" || ch.To != "x" {
		t.Fatalf("wrong repair: %+v", ch)
	}
	if res.Instance.String(19, 1) != "x" {
		t.Fatal("instance not updated")
	}
	// The input must not be modified.
	if rel.String(19, 1) != "typo" {
		t.Fatal("input relation modified")
	}
}

func TestRepairAbstainsWithoutDominantTarget(t *testing.T) {
	// Two values split 50/50: no candidate reaches MinTargetShare, so the
	// baseline must not touch the class.
	schema := relation.MustSchema("K", "V")
	rows := [][]string{}
	for i := 0; i < 10; i++ {
		v := "x"
		if i%2 == 0 {
			v = "y"
		}
		rows = append(rows, []string{"a", v})
	}
	rel, _ := relation.FromRows(schema, rows)
	sigma := core.Set{core.MustParse(schema, "K -> V")}
	dict := DictionaryFromValues([]string{"x", "y"})
	opts := DefaultOptions()
	opts.MinTargetShare = 0.6
	res := Repair(rel, sigma, dict, opts)
	if len(res.Changes) != 0 {
		t.Fatalf("expected abstention, got %+v", res.Changes)
	}
}

func TestRepairTreatsOutOfDictionaryAsNoisy(t *testing.T) {
	schema := relation.MustSchema("K", "V")
	rows := [][]string{}
	for i := 0; i < 8; i++ {
		rows = append(rows, []string{"a", "x"})
	}
	// In-dictionary minority with decent support survives; the
	// out-of-dictionary value with identical support does not.
	rows = append(rows, []string{"a", "legit"}, []string{"a", "legit"},
		[]string{"a", "bogus"}, []string{"a", "bogus"})
	rel, _ := relation.FromRows(schema, rows)
	sigma := core.Set{core.MustParse(schema, "K -> V")}
	dict := DictionaryFromValues([]string{"x", "legit"})
	res := Repair(rel, sigma, dict, DefaultOptions())
	for _, ch := range res.Changes {
		if ch.From == "legit" {
			t.Fatalf("in-dictionary value with support was rewritten: %+v", ch)
		}
	}
	fixedBogus := 0
	for _, ch := range res.Changes {
		if ch.From == "bogus" && ch.To == "x" {
			fixedBogus++
		}
	}
	if fixedBogus != 2 {
		t.Fatalf("bogus cells fixed = %d, want 2 (%+v)", fixedBogus, res.Changes)
	}
}

func TestRepairHasNoSenses(t *testing.T) {
	// The defining limitation: a class of genuine synonyms with a dominant
	// canonical value gets its rare synonyms rewritten — OFD-aware
	// cleaning would not.
	schema := relation.MustSchema("K", "V")
	rows := [][]string{}
	for i := 0; i < 30; i++ {
		rows = append(rows, []string{"a", "USA"})
	}
	rows = append(rows, []string{"a", "America"}) // share 1/31 < OutlierShare
	rel, _ := relation.FromRows(schema, rows)
	sigma := core.Set{core.MustParse(schema, "K -> V")}
	dict := DictionaryFromValues([]string{"USA", "America"})
	res := Repair(rel, sigma, dict, DefaultOptions())
	if len(res.Changes) != 1 || res.Changes[0].From != "America" {
		t.Fatalf("expected the synonym false positive, got %+v", res.Changes)
	}
}

func TestRepairOnGeneratedWorkloadFindsErrors(t *testing.T) {
	ds := gen.Generate(gen.Config{Rows: 500, Seed: 3, ErrRate: 0.05, NumOFDs: 4})
	var dict []string
	for _, id := range ds.Ont.AllClasses() {
		dict = append(dict, ds.Ont.Synonyms(id)...)
	}
	res := Repair(ds.Rel, ds.Sigma, DictionaryFromValues(dict), DefaultOptions())
	if len(res.Changes) == 0 {
		t.Fatal("no repairs on an erroneous workload")
	}
	if res.NoisyCells == 0 {
		t.Fatal("no noisy cells detected")
	}
}
