package metrics

import (
	"math"
	"testing"

	"github.com/fastofd/fastofd/internal/gen"
	"github.com/fastofd/fastofd/internal/ontology"
	"github.com/fastofd/fastofd/internal/repair"
)

func TestMakePRMath(t *testing.T) {
	pr := makePR(3, 4, 6)
	if math.Abs(pr.Precision-0.75) > 1e-9 || math.Abs(pr.Recall-0.5) > 1e-9 {
		t.Fatalf("PR = %+v", pr)
	}
	wantF1 := 2 * 0.75 * 0.5 / (0.75 + 0.5)
	if math.Abs(pr.F1-wantF1) > 1e-9 {
		t.Fatalf("F1 = %v, want %v", pr.F1, wantF1)
	}
	zero := makePR(0, 0, 0)
	if zero.Precision != 0 || zero.Recall != 0 || zero.F1 != 0 {
		t.Fatalf("zero PR = %+v", zero)
	}
}

func TestSemanticEqual(t *testing.T) {
	o := ontology.New()
	o.MustAddClass("diltiazem", "FDA", ontology.NoClass, "cartia", "tiazac")
	if !SemanticEqual(o, "cartia", "cartia") {
		t.Fatal("identity")
	}
	if !SemanticEqual(o, "cartia", "tiazac") {
		t.Fatal("synonyms")
	}
	if SemanticEqual(o, "cartia", "aspirin") {
		t.Fatal("non-synonyms")
	}
}

func TestDataRepairAccuracyCounting(t *testing.T) {
	ds := gen.Generate(gen.Config{Rows: 300, Seed: 5, ErrRate: 0.05, NumOFDs: 4})
	// Perfect repair: restore every error cell to its original value.
	var changes []repair.CellChange
	for _, e := range ds.Errors {
		changes = append(changes, repair.CellChange{Row: e.Row, Col: e.Col, From: e.Injected, To: e.Original})
	}
	pr := DataRepairAccuracy(ds, changes, nil)
	if pr.Precision != 1 || pr.Recall != 1 {
		t.Fatalf("perfect repair scored %+v", pr)
	}
	// A spurious change on a clean cell lowers precision, not recall.
	spurious := append(changes, repair.CellChange{Row: 0, Col: 0, From: "a", To: "b"})
	pr2 := DataRepairAccuracy(ds, spurious, nil)
	if pr2.Precision >= 1 || pr2.Recall != 1 {
		t.Fatalf("spurious change scored %+v", pr2)
	}
	// No changes: zero recall and precision.
	pr3 := DataRepairAccuracy(ds, nil, nil)
	if pr3.Precision != 0 || pr3.Recall != 0 {
		t.Fatalf("empty repair scored %+v", pr3)
	}
}

func TestDataRepairAccuracyAcceptsSemanticMatches(t *testing.T) {
	ds := gen.Generate(gen.Config{Rows: 300, Seed: 6, ErrRate: 0.05, NumOFDs: 4})
	// Repair every error cell to a SYNONYM of the original (the class's
	// canonical value) rather than the exact string.
	var changes []repair.CellChange
	for _, e := range ds.Errors {
		names := ds.FullOnt.Names(e.Original)
		if len(names) == 0 {
			changes = append(changes, repair.CellChange{Row: e.Row, Col: e.Col, To: e.Original})
			continue
		}
		changes = append(changes, repair.CellChange{Row: e.Row, Col: e.Col, To: ds.FullOnt.Name(names[0])})
	}
	pr := DataRepairAccuracy(ds, changes, nil)
	if pr.Precision != 1 || pr.Recall != 1 {
		t.Fatalf("semantic repair scored %+v", pr)
	}
}

func TestOntologyRepairAccuracy(t *testing.T) {
	ds := gen.Generate(gen.Config{Rows: 400, Seed: 7, IncRate: 0.1, NumOFDs: 4})
	if len(ds.Removals) == 0 {
		t.Skip("no removals at this configuration")
	}
	// Re-add every removed pair: perfect score.
	var changes []repair.OntChange
	for _, r := range ds.Removals {
		changes = append(changes, repair.OntChange{Class: r.Class, Value: r.Value})
	}
	pr := OntologyRepairAccuracy(ds, changes)
	if pr.Precision != 1 || pr.Recall != 1 {
		t.Fatalf("perfect ontology repair scored %+v", pr)
	}
	// Adding to a wrong class is imprecise.
	wrong := []repair.OntChange{{Class: ds.Removals[0].Class + 1, Value: "nonsense"}}
	pr2 := OntologyRepairAccuracy(ds, wrong)
	if pr2.Precision != 0 || pr2.Recall != 0 {
		t.Fatalf("wrong ontology repair scored %+v", pr2)
	}
}

func TestSenseAccuracyPerfectAssignment(t *testing.T) {
	ds := gen.Generate(gen.Config{Rows: 400, Seed: 8, NumOFDs: 4})
	// Construct the ground-truth assignment directly.
	assignment := make(repair.Assignment)
	// Use the cleaner's own class enumeration via a quick Clean run, then
	// overwrite each class with its ground truth.
	res, err := repair.Clean(ds.Rel, ds.FullOnt, ds.Sigma, repair.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	for key := range res.Assignment {
		col := ds.Sigma[key.OFD].RHS
		truth, ok := ds.TruthClass(col, ds.EntityOfRow(key.Rep))
		if !ok {
			t.Fatalf("no truth class for key %+v", key)
		}
		assignment[key] = truth
	}
	pr := SenseAccuracy(ds, assignment)
	if pr.Precision != 1 || pr.Recall != 1 {
		t.Fatalf("ground-truth assignment scored %+v", pr)
	}
	// NoClass assignments count against recall but not precision.
	for key := range assignment {
		assignment[key] = ontology.NoClass
		break
	}
	pr2 := SenseAccuracy(ds, assignment)
	if pr2.Precision != 1 || pr2.Recall >= 1 {
		t.Fatalf("abstaining assignment scored %+v", pr2)
	}
}
