// Package metrics evaluates repair and sense-assignment quality against the
// ground truth recorded by the workload generators: precision, recall, and
// F1 for data repairs, ontology repairs, and sense selection, with both
// exact (string-equal) and semantic (synonym-equivalent) matching.
package metrics

import (
	"github.com/fastofd/fastofd/internal/gen"
	"github.com/fastofd/fastofd/internal/ontology"
	"github.com/fastofd/fastofd/internal/relation"
	"github.com/fastofd/fastofd/internal/repair"
)

// PR is a precision/recall/F1 triple.
type PR struct {
	Precision float64
	Recall    float64
	F1        float64
	// Correct / Proposed / Expected are the raw counts behind the ratios.
	Correct, Proposed, Expected int
}

func makePR(correct, proposed, expected int) PR {
	pr := PR{Correct: correct, Proposed: proposed, Expected: expected}
	if proposed > 0 {
		pr.Precision = float64(correct) / float64(proposed)
	}
	if expected > 0 {
		pr.Recall = float64(correct) / float64(expected)
	}
	if pr.Precision+pr.Recall > 0 {
		pr.F1 = 2 * pr.Precision * pr.Recall / (pr.Precision + pr.Recall)
	}
	return pr
}

// SemanticEqual reports whether two values are the same string or share an
// interpretation in the ontology (some class contains both).
func SemanticEqual(ont *ontology.Ontology, a, b string) bool {
	if a == b {
		return true
	}
	return len(ont.SharedSense([]string{a, b})) > 0
}

// DataRepairAccuracy scores applied cell changes against injected errors:
// a change is correct when it lands on an injected-error cell and restores
// a value semantically equal to the clean original (judged against the
// complete ground-truth ontology).
func DataRepairAccuracy(ds *gen.Dataset, changes []repair.CellChange, repaired *relation.Relation) PR {
	type cell struct{ r, c int }
	truth := make(map[cell]string, len(ds.Errors))
	for _, e := range ds.Errors {
		truth[cell{e.Row, e.Col}] = e.Original
	}
	// Net effect per cell (later changes win).
	final := make(map[cell]string, len(changes))
	for _, ch := range changes {
		final[cell{ch.Row, ch.Col}] = ch.To
	}
	correct := 0
	for c, to := range final {
		orig, isErr := truth[c]
		if isErr && SemanticEqual(ds.FullOnt, to, orig) {
			correct++
		}
	}
	return makePR(correct, len(final), len(ds.Errors))
}

// OntologyRepairAccuracy scores applied ontology additions against the
// values the generator omitted. A change is correct when it re-adds an
// omitted value to one of its original classes (precision); a removed
// value counts as recovered when at least one correct addition restores it
// (recall over distinct removed values).
func OntologyRepairAccuracy(ds *gen.Dataset, changes []repair.OntChange) PR {
	truth := make(map[gen.Removal]struct{}, len(ds.Removals))
	removedValues := make(map[string]struct{})
	for _, r := range ds.Removals {
		truth[r] = struct{}{}
		removedValues[r.Value] = struct{}{}
	}
	correct := 0
	recovered := make(map[string]struct{})
	for _, ch := range changes {
		if _, ok := truth[gen.Removal{Class: ch.Class, Value: ch.Value}]; ok {
			correct++
			recovered[ch.Value] = struct{}{}
		}
	}
	pr := makePR(correct, len(changes), len(removedValues))
	pr.Correct = correct
	if len(removedValues) > 0 {
		pr.Recall = float64(len(recovered)) / float64(len(removedValues))
	}
	if pr.Precision+pr.Recall > 0 {
		pr.F1 = 2 * pr.Precision * pr.Recall / (pr.Precision + pr.Recall)
	}
	return pr
}

// SenseAccuracy scores the sense assignment: an equivalence class is
// correctly interpreted when its assigned ontology class is the exact
// generating class of (consequent column, latent entity). Classes keyed by
// an OFD index outside Σ are ignored. Recall counts all classes (the
// algorithm assigns every class, so recall differs from precision only when
// assignment abstains with NoClass).
func SenseAccuracy(ds *gen.Dataset, assignment repair.Assignment) PR {
	correct, assigned, total := 0, 0, 0
	for key, cls := range assignment {
		if key.OFD < 0 || key.OFD >= len(ds.Sigma) {
			continue
		}
		total++
		if cls == ontology.NoClass {
			continue
		}
		assigned++
		col := ds.Sigma[key.OFD].RHS
		entity := ds.EntityOfRow(key.Rep)
		truth, ok := ds.TruthClass(col, entity)
		if ok && truth == cls {
			correct++
		}
	}
	return makePR(correct, assigned, total)
}
