package repair

import (
	"testing"

	"github.com/fastofd/fastofd/internal/core"
	"github.com/fastofd/fastofd/internal/gen"
)

func TestRepairSigmaPaperExample(t *testing.T) {
	// Table 3: [SYMP, DIAG] -> MED is violated ({cartia, ASA, tiazac,
	// adizem} share no sense). Appending CTRY splits the class into
	// {USA: cartia, ASA} (MoH sense), {America: tiazac}, {United States:
	// adizem} — all satisfied — so CTRY must be proposed.
	rel := paperRelation(t)
	ont := paperOntology()
	schema := rel.Schema()
	sigma := core.Set{
		core.MustParse(schema, "CC -> CTRY"), // holds; must be omitted
		core.MustParse(schema, "SYMP, DIAG -> MED"),
	}
	out := RepairSigma(rel, ont, sigma, SigmaRepairOptions{})
	if len(out) != 1 {
		t.Fatalf("expected exactly the violated dependency, got %d entries", len(out))
	}
	sr := out[0]
	if sr.Original != sigma[1] {
		t.Fatalf("wrong original: %v", sr.Original)
	}
	want := core.MustParse(schema, "SYMP, DIAG, CTRY -> MED")
	found := false
	for _, r := range sr.Repairs {
		if r == want {
			found = true
		}
	}
	if !found {
		t.Fatalf("CTRY augmentation not proposed: %v", sr.Repairs)
	}
	// Every proposal must actually hold and be minimal.
	v := core.NewVerifier(rel, ont, nil)
	for i, r := range sr.Repairs {
		if !v.HoldsSyn(r) {
			t.Errorf("proposal %v does not hold", r)
		}
		for j, other := range sr.Repairs {
			if i != j && other.LHS.ProperSubsetOf(r.LHS) {
				t.Errorf("proposal %v is non-minimal (subsumed by %v)", r, other)
			}
		}
	}
}

func TestRepairSigmaMaxAdd(t *testing.T) {
	ds := gen.Generate(gen.Config{Rows: 300, Seed: 81, ErrRate: 0.1, NumOFDs: 4})
	out := RepairSigma(ds.Rel, ds.Ont, ds.Sigma, SigmaRepairOptions{MaxAdd: 1})
	v := core.NewVerifier(ds.Rel, ds.Ont, nil)
	for _, sr := range out {
		if v.HoldsSyn(sr.Original) {
			t.Errorf("non-violated dependency reported: %v", sr.Original)
		}
		for _, r := range sr.Repairs {
			if r.LHS.Len() > sr.Original.LHS.Len()+1 {
				t.Errorf("MaxAdd=1 exceeded: %v", r)
			}
			if !v.HoldsSyn(r) {
				t.Errorf("proposal %v does not hold", r)
			}
		}
	}
}

func TestRepairSigmaInheritanceMode(t *testing.T) {
	// Under inheritance semantics some dependencies stop being violated,
	// so fewer (or cheaper) sigma repairs are needed.
	ds := gen.Generate(gen.Config{Rows: 300, Seed: 82})
	// The family OFDs are violated under synonym semantics…
	synOut := RepairSigma(ds.CleanRel, ds.FullOnt, ds.InhSigma, SigmaRepairOptions{})
	if len(synOut) != len(ds.InhSigma) {
		t.Fatalf("family OFDs should all be synonym-violated: %d of %d", len(synOut), len(ds.InhSigma))
	}
	// …and satisfied under inheritance semantics (no repairs proposed).
	inhOut := RepairSigma(ds.CleanRel, ds.FullOnt, ds.InhSigma, SigmaRepairOptions{IsATheta: ds.InhTheta})
	if len(inhOut) != 0 {
		t.Fatalf("inheritance semantics should clear the family OFDs: %v", inhOut)
	}
}
