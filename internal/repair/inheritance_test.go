package repair

import (
	"testing"

	"github.com/fastofd/fastofd/internal/core"
	"github.com/fastofd/fastofd/internal/gen"
	"github.com/fastofd/fastofd/internal/ontology"
	"github.com/fastofd/fastofd/internal/relation"
)

func TestCoverageSemantics(t *testing.T) {
	o := ontology.New()
	fam := o.MustAddClass("NSAID", "FDA", ontology.NoClass)
	ibu := o.MustAddClass("ibuprofen", "FDA", fam, "advil")
	o.MustAddClass("naproxen", "FDA", fam)

	syn := coverage{ont: o, theta: 0}
	inh := coverage{ont: o, theta: 1}

	// Synonym semantics: only direct membership.
	if !syn.covers(ibu, "advil") || syn.covers(fam, "advil") {
		t.Fatal("synonym coverage wrong")
	}
	// Inheritance semantics: the family covers its children's values.
	if !inh.covers(fam, "advil") || !inh.covers(fam, "naproxen") {
		t.Fatal("inheritance coverage wrong")
	}
	// But not beyond theta.
	deep := o.MustAddClass("kids-advil", "FDA", ibu)
	_ = deep
	if inh.covers(fam, "kids-advil") {
		t.Fatal("theta=1 must not cover depth-2 values")
	}
	if (coverage{ont: o, theta: 2}).covers(fam, "kids-advil") == false {
		t.Fatal("theta=2 must cover depth-2 values")
	}
	// interpretations at theta=1 include the parent.
	found := false
	for _, cls := range inh.interpretations("advil") {
		if cls == fam {
			found = true
		}
	}
	if !found {
		t.Fatal("interpretations must include ancestors within theta")
	}
	// shared: {advil, naproxen} share only the family (at theta=1).
	sh := inh.shared([]string{"advil", "naproxen"})
	if len(sh) != 1 || sh[0] != fam {
		t.Fatalf("shared = %v", sh)
	}
	if got := syn.shared([]string{"advil", "naproxen"}); len(got) != 0 {
		t.Fatalf("synonym shared = %v", got)
	}
	// NoClass covers nothing.
	if syn.covers(ontology.NoClass, "advil") || inh.covers(ontology.NoClass, "advil") {
		t.Fatal("NoClass must cover nothing")
	}
}

func TestInheritanceCleanPaperExample(t *testing.T) {
	// Figure 1 tree: the NSAID family. A class mixing ibuprofen/naproxen
	// plus one typo should, under inheritance semantics, keep the family
	// values and fix only the typo.
	o := ontology.New()
	fam := o.MustAddClass("NSAID", "FDA", ontology.NoClass)
	o.MustAddClass("ibuprofen", "FDA", fam)
	o.MustAddClass("naproxen", "FDA", fam)

	schema := relation.MustSchema("SYMP", "MED")
	rel, _ := relation.FromRows(schema, [][]string{
		{"joint pain", "ibuprofen"},
		{"joint pain", "naproxen"},
		{"joint pain", "ibuprofen"},
		{"joint pain", "ibuprofn"}, // typo
	})
	sigma := core.Set{core.MustParse(schema, "SYMP -> MED")}

	opts := DefaultOptions()
	opts.IsATheta = 1
	opts.Tau = 1
	res, err := Clean(rel, o, sigma, opts)
	if err != nil {
		t.Fatal(err)
	}
	v := core.NewVerifier(res.Instance, res.Ontology, nil)
	if !v.HoldsInh(sigma[0], 1) {
		t.Fatal("repaired instance violates the inheritance OFD")
	}
	// naproxen must have survived (covered via the family); under synonym
	// semantics it would have been rewritten.
	foundNaproxen := false
	for i := 0; i < res.Instance.NumRows(); i++ {
		if res.Instance.String(i, 1) == "naproxen" {
			foundNaproxen = true
		}
	}
	if !foundNaproxen {
		t.Errorf("inheritance repair rewrote naproxen: %+v", res.Best.DataChanges)
	}
	if res.Best.DataDist+res.Best.OntDist == 0 {
		t.Fatal("the typo needed some repair")
	}
	// Contrast: synonym semantics needs more changes (no common sense).
	synRes, err := Clean(rel, o, sigma, Options{Theta: 5, Beam: 3, Tau: 1})
	if err != nil {
		t.Fatal(err)
	}
	if synRes.Best.DataDist < res.Best.DataDist {
		t.Errorf("synonym repair (%d) cheaper than inheritance repair (%d)?",
			synRes.Best.DataDist, res.Best.DataDist)
	}
}

func TestInheritanceCleanOnGeneratedFamilies(t *testing.T) {
	// The generator's InhSigma holds at θ=1 on clean data but fails as
	// synonym OFDs. Cleaning the CLEAN instance under inheritance
	// semantics must therefore be a no-op, while synonym semantics would
	// rewrite heavily.
	ds := gen.Generate(gen.Config{Rows: 300, Seed: 61})
	opts := DefaultOptions()
	opts.IsATheta = ds.InhTheta
	res, err := Clean(ds.CleanRel, ds.FullOnt, ds.InhSigma, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Best.DataDist != 0 || res.Best.OntDist != 0 {
		t.Fatalf("clean data under inheritance semantics needed %d+%d repairs",
			res.Best.OntDist, res.Best.DataDist)
	}
	// And with injected errors, cleaning restores inheritance satisfaction.
	ds2 := gen.Generate(gen.Config{Rows: 300, Seed: 62, ErrRate: 0.05})
	res2, err := Clean(ds2.Rel, ds2.FullOnt, ds2.InhSigma, opts)
	if err != nil {
		t.Fatal(err)
	}
	v := core.NewVerifier(res2.Instance, res2.Ontology, nil)
	for _, d := range ds2.InhSigma {
		if !v.HoldsInh(d, ds2.InhTheta) {
			t.Errorf("inheritance OFD %s still violated after cleaning", d.Format(ds2.Rel.Schema()))
		}
	}
}
