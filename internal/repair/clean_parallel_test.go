package repair

import (
	"fmt"
	"sort"
	"strings"
	"testing"

	"github.com/fastofd/fastofd/internal/core"
	"github.com/fastofd/fastofd/internal/gen"
	"github.com/fastofd/fastofd/internal/ontology"
	"github.com/fastofd/fastofd/internal/relation"
)

// resultFingerprint serializes every observable piece of a Result — sense
// assignment, Pareto frontier, Best repair, repaired instance and ontology —
// into one canonical string, so two Results can be compared byte-for-byte.
func resultFingerprint(res *Result) string {
	var b strings.Builder
	keys := make([]ClassKey, 0, len(res.Assignment))
	for k := range res.Assignment {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].OFD != keys[j].OFD {
			return keys[i].OFD < keys[j].OFD
		}
		return keys[i].Rep < keys[j].Rep
	})
	for _, k := range keys {
		fmt.Fprintf(&b, "assign %d/%d -> %d\n", k.OFD, k.Rep, res.Assignment[k])
	}
	writeOpt := func(tag string, o *RepairOption) {
		fmt.Fprintf(&b, "%s ontDist=%d dataDist=%d tau=%v\n", tag, o.OntDist, o.DataDist, o.WithinTau)
		for _, c := range o.OntChanges {
			fmt.Fprintf(&b, "  ont +%d %q\n", c.Class, c.Value)
		}
		// Cell-change order within an option is an implementation detail of
		// the per-component merge; compare the set, canonically sorted.
		cells := append([]CellChange(nil), o.DataChanges...)
		sort.Slice(cells, func(i, j int) bool {
			if cells[i].Row != cells[j].Row {
				return cells[i].Row < cells[j].Row
			}
			return cells[i].Col < cells[j].Col
		})
		for _, c := range cells {
			fmt.Fprintf(&b, "  cell (%d,%d) %q->%q\n", c.Row, c.Col, c.From, c.To)
		}
	}
	for i := range res.Pareto {
		writeOpt(fmt.Sprintf("pareto[%d]", i), &res.Pareto[i])
	}
	if res.Best != nil {
		writeOpt("best", res.Best)
	}
	if res.Instance != nil {
		for _, row := range res.Instance.Rows() {
			fmt.Fprintf(&b, "row %q\n", row)
		}
	}
	if res.Ontology != nil {
		fmt.Fprintf(&b, "ontRepairs %d\n", res.Ontology.RepairDistance())
		for _, cls := range res.Ontology.AllClasses() {
			fmt.Fprintf(&b, "class %d %s/%s %q\n", cls, res.Ontology.Name(cls),
				res.Ontology.Sense(cls), res.Ontology.Synonyms(cls))
		}
	}
	fmt.Fprintf(&b, "stats cand=%d beam=%d classes=%d edges=%d\n",
		res.Candidates, res.BeamWidth, res.ClassCount, res.EdgeCount)
	return b.String()
}

func cleanFingerprint(t *testing.T, rel *relation.Relation, ont *ontology.Ontology, sigma core.Set, opts Options) string {
	t.Helper()
	res, err := Clean(rel, ont, sigma, opts)
	if err != nil {
		t.Fatal(err)
	}
	return resultFingerprint(res)
}

// TestCleanDeterministicAcrossWorkers is the golden determinism check: the
// sequential path (Workers=1), a fixed multi-worker pool, the NumCPU default,
// and the no-index ablation must all produce byte-identical Results.
func TestCleanDeterministicAcrossWorkers(t *testing.T) {
	type workload struct {
		name  string
		rel   *relation.Relation
		ont   *ontology.Ontology
		sigma core.Set
	}
	var loads []workload
	{
		rel := paperRelation(t)
		schema := rel.Schema()
		loads = append(loads, workload{"paper", rel, paperOntology(), core.Set{
			core.MustParse(schema, "CC -> CTRY"),
			core.MustParse(schema, "SYMP, DIAG -> MED"),
		}})
	}
	for _, seed := range []int64{1, 2} {
		ds := gen.Generate(gen.Config{Rows: 400, Seed: seed, ErrRate: 0.06, IncRate: 0.04, NumOFDs: 6})
		loads = append(loads, workload{fmt.Sprintf("clinical-%d", seed), ds.Rel, ds.Ont, ds.Sigma})
	}
	for _, w := range loads {
		t.Run(w.name, func(t *testing.T) {
			base := Options{Theta: 5, Beam: 3, Tau: 1, Workers: 1}
			golden := cleanFingerprint(t, w.rel, w.ont, w.sigma, base)
			variants := []Options{
				{Theta: 5, Beam: 3, Tau: 1, Workers: 4},
				{Theta: 5, Beam: 3, Tau: 1, Workers: 0}, // NumCPU default
				{Theta: 5, Beam: 3, Tau: 1, Workers: 1, NoCoverageIndex: true},
				{Theta: 5, Beam: 3, Tau: 1, Workers: 4, NoCoverageIndex: true},
			}
			for _, opts := range variants {
				got := cleanFingerprint(t, w.rel, w.ont, w.sigma, opts)
				if got != golden {
					t.Errorf("workers=%d noIndex=%v: Result differs from sequential golden\n--- golden ---\n%s\n--- got ---\n%s",
						opts.Workers, opts.NoCoverageIndex, golden, got)
				}
			}
		})
	}
}

// TestCleanParallelRace drives the fully parallel path (graph construction,
// beam scoring, level materialization, per-component data repair) so that
// `go test -race` exercises the worker pools on a real workload.
func TestCleanParallelRace(t *testing.T) {
	ds := gen.Generate(gen.Config{Rows: 500, Seed: 7, ErrRate: 0.08, IncRate: 0.05, NumOFDs: 6})
	res, err := Clean(ds.Rel, ds.Ont, ds.Sigma, Options{Theta: 5, Beam: 4, Tau: 1, Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if res.Best == nil {
		t.Fatal("no repair selected")
	}
	if res.Workers != 8 {
		t.Errorf("Workers stat = %d, want 8", res.Workers)
	}
	v := core.NewVerifier(res.Instance, res.Ontology, nil)
	for _, d := range ds.Sigma {
		if !v.HoldsSyn(d) {
			t.Errorf("repaired instance violates %s", d.Format(ds.Rel.Schema()))
		}
	}
}
