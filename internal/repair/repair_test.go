package repair

import (
	"testing"

	"github.com/fastofd/fastofd/internal/core"
	"github.com/fastofd/fastofd/internal/gen"
	"github.com/fastofd/fastofd/internal/ontology"
	"github.com/fastofd/fastofd/internal/relation"
)

// paperOntology builds the medication ontology of Fig. 1 / Table 3: under
// the FDA sense cartia ≡ tiazac (diltiazem hydrochloride); under Israel's
// MoH sense cartia ≡ ASA (aspirin brands).
func paperOntology() *ontology.Ontology {
	o := ontology.New()
	o.MustAddClass("diltiazem", "FDA", ontology.NoClass, "cartia", "tiazac")
	o.MustAddClass("aspirin", "MoH", ontology.NoClass, "cartia", "ASA")
	o.MustAddClass("United States", "GEO", ontology.NoClass, "US", "USA", "America")
	o.MustAddClass("India", "GEO", ontology.NoClass, "IN", "Bharat")
	return o
}

// paperRelation is Table 3 (the t8–t11 subset with the updated values).
func paperRelation(t *testing.T) *relation.Relation {
	t.Helper()
	schema := relation.MustSchema("CC", "CTRY", "SYMP", "DIAG", "MED")
	rel, err := relation.FromRows(schema, [][]string{
		{"US", "USA", "headache", "hypertension", "cartia"},
		{"US", "USA", "headache", "hypertension", "ASA"},
		{"US", "America", "headache", "hypertension", "tiazac"},
		{"US", "United States", "headache", "hypertension", "adizem"},
	})
	if err != nil {
		t.Fatal(err)
	}
	return rel
}

func TestCleanPaperExample(t *testing.T) {
	rel := paperRelation(t)
	ont := paperOntology()
	schema := rel.Schema()
	sigma := core.Set{
		core.MustParse(schema, "CC -> CTRY"),
		core.MustParse(schema, "SYMP, DIAG -> MED"),
	}
	res, err := Clean(rel, ont, sigma, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.Best == nil {
		t.Fatal("no repair found within tau")
	}
	// The repaired instance must satisfy Σ w.r.t. the repaired ontology.
	v := core.NewVerifier(res.Instance, res.Ontology, nil)
	if !v.SatisfiesAll(sigma) {
		t.Errorf("repaired instance violates Σ; repairs: %+v / %+v", res.Best.OntChanges, res.Best.DataChanges)
	}
	// The Pareto set must contain at least the k=0 (pure data repair) and
	// some repair; none dominated.
	if len(res.Pareto) == 0 {
		t.Fatal("empty Pareto set")
	}
	for i, a := range res.Pareto {
		for j, b := range res.Pareto {
			if i == j {
				continue
			}
			if b.OntDist <= a.OntDist && b.DataDist <= a.DataDist &&
				(b.OntDist < a.OntDist || b.DataDist < a.DataDist) {
				t.Errorf("Pareto set contains dominated element %d", i)
			}
		}
	}
}

func TestCleanRejectsOverlappingSigma(t *testing.T) {
	rel := paperRelation(t)
	schema := rel.Schema()
	sigma := core.Set{
		core.MustParse(schema, "CC -> CTRY"),
		core.MustParse(schema, "CTRY -> MED"), // CTRY on both sides
	}
	if _, err := Clean(rel, paperOntology(), sigma, DefaultOptions()); err == nil {
		t.Fatal("expected error for overlapping antecedent/consequent attributes")
	}
}

func TestCleanRepairedInstanceSatisfiesSigma(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		ds := gen.Generate(gen.Config{Rows: 300, Seed: seed, ErrRate: 0.05, IncRate: 0.05, NumOFDs: 6})
		res, err := Clean(ds.Rel, ds.Ont, ds.Sigma, Options{Theta: 5, Beam: 3, Tau: 1})
		if err != nil {
			t.Fatal(err)
		}
		if res.Best == nil {
			t.Fatal("no repair selected")
		}
		v := core.NewVerifier(res.Instance, res.Ontology, nil)
		for _, d := range ds.Sigma {
			if !v.HoldsSyn(d) {
				t.Errorf("seed %d: repaired instance violates %s", seed, d.Format(ds.Rel.Schema()))
			}
		}
		// Inputs must not have been modified.
		if got := ds.Ont.RepairDistance(); got != 0 {
			t.Errorf("seed %d: input ontology modified (%d repairs)", seed, got)
		}
	}
}

func TestCleanOnCleanDataIsNoop(t *testing.T) {
	ds := gen.Generate(gen.Config{Rows: 200, Seed: 4, NumOFDs: 4})
	res, err := Clean(ds.Rel, ds.FullOnt, ds.Sigma, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.Best == nil {
		t.Fatal("no best option")
	}
	if res.Best.DataDist != 0 || res.Best.OntDist != 0 {
		t.Errorf("clean data should need no repairs, got ont=%d data=%d (changes %+v)",
			res.Best.OntDist, res.Best.DataDist, res.Best.DataChanges)
	}
}

func TestInitialAssignmentPicksCoveringSense(t *testing.T) {
	ont := paperOntology()
	schema := relation.MustSchema("K", "MED")
	rel, _ := relation.FromRows(schema, [][]string{
		{"a", "cartia"},
		{"a", "tiazac"},
		{"a", "tiazac"},
	})
	x := &eqClass{ofd: core.MustParse(schema, "K -> MED"), tuples: []int{0, 1, 2}}
	sense := initialAssignment(rel, coverage{ont: ont}, x)
	if sense == ontology.NoClass {
		t.Fatal("no sense assigned")
	}
	if ont.Sense(sense) != "FDA" {
		t.Errorf("want FDA sense (covers cartia+tiazac), got %s/%s", ont.Sense(sense), ont.Name(sense))
	}
}

func TestInitialAssignmentNoOntologyCoverage(t *testing.T) {
	ont := paperOntology()
	schema := relation.MustSchema("K", "MED")
	rel, _ := relation.FromRows(schema, [][]string{
		{"a", "unknown1"},
		{"a", "unknown2"},
	})
	x := &eqClass{ofd: core.MustParse(schema, "K -> MED"), tuples: []int{0, 1}}
	if sense := initialAssignment(rel, coverage{ont: ont}, x); sense != ontology.NoClass {
		t.Errorf("expected NoClass for uncovered values, got %d", sense)
	}
}

func TestSecretaryBeam(t *testing.T) {
	if b := SecretaryBeam(0); b != 1 {
		t.Errorf("SecretaryBeam(0) = %d, want 1", b)
	}
	if b := SecretaryBeam(10); b != 3 {
		t.Errorf("SecretaryBeam(10) = %d, want 3", b)
	}
	if b := SecretaryBeam(30); b != 11 {
		t.Errorf("SecretaryBeam(30) = %d, want 11", b)
	}
}

func TestVertexCoverCoversAllEdges(t *testing.T) {
	edges := []conflictEdge{{t1: 1, t2: 2}, {t1: 2, t2: 3}, {t1: 4, t2: 5}}
	cover := vertexCover2Approx(edges)
	for _, e := range edges {
		_, in1 := cover[e.t1]
		_, in2 := cover[e.t2]
		if !in1 && !in2 {
			t.Errorf("edge (%d,%d) not covered", e.t1, e.t2)
		}
	}
	if len(cover) > 4 { // optimal is 2 ({2},{4 or 5}); 2-approx ≤ 4
		t.Errorf("cover size %d exceeds 2-approximation bound", len(cover))
	}
}

func TestOntologyRepairAddsMissingValue(t *testing.T) {
	// ASA and adizem are absent under FDA; the minimal combined repair in
	// Table 4 adds values to the ontology rather than rewriting all data.
	rel := paperRelation(t)
	ont := paperOntology()
	sigma := core.Set{core.MustParse(rel.Schema(), "SYMP, DIAG -> MED")}
	res, err := Clean(rel, ont, sigma, Options{Theta: 5, Beam: 5, Tau: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Some Pareto option must use at least one ontology repair, and adding
	// ontology repairs must not increase data repairs.
	sawOnt := false
	for _, opt := range res.Pareto {
		if opt.OntDist > 0 {
			sawOnt = true
		}
	}
	if !sawOnt {
		t.Errorf("expected an ontology-repair option in the Pareto set: %+v", res.Pareto)
	}
}
