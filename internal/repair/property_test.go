package repair

import (
	"testing"

	"github.com/fastofd/fastofd/internal/core"
	"github.com/fastofd/fastofd/internal/gen"
	"github.com/fastofd/fastofd/internal/ontology"
	"github.com/fastofd/fastofd/internal/relation"
)

// TestRepairInvariants runs Clean across a grid of workloads and checks
// the structural invariants of Definition 7 and the τ constraint.
func TestRepairInvariants(t *testing.T) {
	grid := []gen.Config{
		{Rows: 200, Seed: 11, ErrRate: 0.05, NumOFDs: 4},
		{Rows: 200, Seed: 12, ErrRate: 0.10, IncRate: 0.10, NumOFDs: 8},
		{Rows: 200, Seed: 13, Senses: 8, ErrRate: 0.05, IncRate: 0.05, NumOFDs: 6},
		{Rows: 200, Seed: 14, Preset: "kiva", ErrRate: 0.08, NumOFDs: 10},
	}
	for _, cfg := range grid {
		ds := gen.Generate(cfg)
		opts := Options{Theta: 5, Beam: 3, Tau: 1}
		res, err := Clean(ds.Rel, ds.Ont, ds.Sigma, opts)
		if err != nil {
			t.Fatal(err)
		}
		// (1) Pareto set is non-dominated.
		for i, a := range res.Pareto {
			for j, b := range res.Pareto {
				if i == j {
					continue
				}
				if b.OntDist <= a.OntDist && b.DataDist <= a.DataDist &&
					(b.OntDist < a.OntDist || b.DataDist < a.DataDist) {
					t.Errorf("seed %d: dominated Pareto element (%d,%d) by (%d,%d)",
						cfg.Seed, a.OntDist, a.DataDist, b.OntDist, b.DataDist)
				}
			}
		}
		// (2) Every Pareto option's distances match its change lists.
		for _, opt := range res.Pareto {
			if opt.OntDist != len(opt.OntChanges) || opt.DataDist != len(opt.DataChanges) {
				t.Errorf("seed %d: distance/change mismatch", cfg.Seed)
			}
		}
		// (3) The chosen repair satisfies Σ w.r.t. the repaired ontology.
		v := core.NewVerifier(res.Instance, res.Ontology, nil)
		if !v.SatisfiesAll(ds.Sigma) {
			t.Errorf("seed %d: repaired instance violates Σ", cfg.Seed)
		}
		// (4) Data changes only touch consequent attributes.
		consequents := make(map[int]bool)
		for _, d := range ds.Sigma {
			consequents[d.RHS] = true
		}
		for _, ch := range res.Best.DataChanges {
			if !consequents[ch.Col] {
				t.Errorf("seed %d: repair touched non-consequent column %d", cfg.Seed, ch.Col)
			}
		}
		// (5) Ontology changes only add values absent from S.
		for _, ch := range res.Best.OntChanges {
			if ds.Ont.Contains(ch.Value) {
				t.Errorf("seed %d: ontology repair re-added existing value %q", cfg.Seed, ch.Value)
			}
		}
		// (6) Inputs untouched.
		if ds.Ont.RepairDistance() != 0 {
			t.Errorf("seed %d: input ontology mutated", cfg.Seed)
		}
	}
}

func TestTauExcludesExpensiveRepairs(t *testing.T) {
	ds := gen.Generate(gen.Config{Rows: 300, Seed: 21, ErrRate: 0.15, NumOFDs: 6})
	tight, err := Clean(ds.Rel, ds.Ont, ds.Sigma, Options{Theta: 5, Beam: 3, Tau: 0.0001})
	if err != nil {
		t.Fatal(err)
	}
	// With an absurdly tight τ no (or almost no) repairs qualify.
	for _, opt := range tight.Pareto {
		if !opt.WithinTau {
			t.Error("Pareto set contains an out-of-τ option")
		}
	}
	loose, err := Clean(ds.Rel, ds.Ont, ds.Sigma, Options{Theta: 5, Beam: 3, Tau: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(loose.Pareto) < len(tight.Pareto) {
		t.Errorf("loosening τ shrank the Pareto set: %d -> %d", len(tight.Pareto), len(loose.Pareto))
	}
}

func TestOntWeightSteersBestChoice(t *testing.T) {
	// The paper's Table 3/4 scenario: with cheap ontology repairs the
	// chooser picks an ontology-heavy point; with expensive ones it
	// prefers data repair.
	ds := gen.Generate(gen.Config{Rows: 300, Seed: 23, ErrRate: 0.02, IncRate: 0.08, NumOFDs: 6})
	cheap, err := Clean(ds.Rel, ds.Ont, ds.Sigma, Options{Theta: 5, Beam: 3, Tau: 1, OntWeight: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	pricey, err := Clean(ds.Rel, ds.Ont, ds.Sigma, Options{Theta: 5, Beam: 3, Tau: 1, OntWeight: 1000})
	if err != nil {
		t.Fatal(err)
	}
	if cheap.Best.OntDist < pricey.Best.OntDist {
		t.Errorf("cheaper ontology weight used fewer ontology repairs: %d vs %d",
			cheap.Best.OntDist, pricey.Best.OntDist)
	}
	if pricey.Best.OntDist != 0 {
		t.Errorf("prohibitive ontology weight still used %d ontology repairs", pricey.Best.OntDist)
	}
}

func TestSelectLevels(t *testing.T) {
	// Small counts materialize everything.
	got := selectLevels(5, 16)
	if len(got) != 5 || got[0] != 0 || got[4] != 4 {
		t.Fatalf("selectLevels(5,16) = %v", got)
	}
	// Large counts are capped, include 0 and the last level, ascending.
	got = selectLevels(200, 16)
	if len(got) > 17 {
		t.Fatalf("too many levels: %v", got)
	}
	if got[0] != 0 || got[len(got)-1] != 199 {
		t.Fatalf("missing endpoints: %v", got)
	}
	for i := 1; i < len(got); i++ {
		if got[i] <= got[i-1] {
			t.Fatalf("not ascending: %v", got)
		}
	}
}

func TestEqClassHelpers(t *testing.T) {
	ds := gen.Generate(gen.Config{Rows: 100, Seed: 31, NumOFDs: 2})
	classes := classesOf(ds.Rel, ds.Sigma, relation.NewPartitionCache(ds.Rel))
	if len(classes) == 0 {
		t.Fatal("no classes")
	}
	for _, x := range classes {
		if len(x.tuples) < 2 {
			t.Fatal("stripped classes must have ≥ 2 tuples")
		}
		counts := x.valueCounts(ds.Rel)
		total := 0
		for _, c := range counts {
			total += c
		}
		if total != len(x.tuples) {
			t.Fatal("value counts do not partition the class")
		}
	}
	// uncoveredValues/uncoveredTuples agree with manual computation for
	// NoClass (everything uncovered).
	x := classes[0]
	if got := uncoveredTuples(ds.Rel, coverage{ont: ds.Ont}, x, ontology.NoClass); got != len(x.tuples) {
		t.Fatalf("NoClass uncovered tuples = %d", got)
	}
	if got := uncoveredValues(ds.Rel, coverage{ont: ds.Ont}, x, ontology.NoClass); len(got) != len(x.valueCounts(ds.Rel)) {
		t.Fatalf("NoClass uncovered values = %v", got)
	}
}
