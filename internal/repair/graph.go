package repair

import (
	"sort"

	"github.com/fastofd/fastofd/internal/emd"
	"github.com/fastofd/fastofd/internal/ontology"
	"github.com/fastofd/fastofd/internal/relation"
)

// depEdge connects two equivalence classes from different OFDs that share a
// consequent attribute and overlap in tuples; its weight is the EMD between
// the overlap's value distributions under the two assigned senses.
type depEdge struct {
	a, b   int // indexes into the class slice
	weight float64
}

// depGraph is the dependency graph of §5.2.2.
type depGraph struct {
	classes []*eqClass
	adj     [][]int // class index -> incident edge indexes
	edges   []depEdge
}

// buildDepGraph connects overlapping classes of OFDs with a common
// consequent. Only pairs with a non-empty tuple intersection get an edge.
func buildDepGraph(rel *relation.Relation, cov coverage, classes []*eqClass) *depGraph {
	g := &depGraph{classes: classes, adj: make([][]int, len(classes))}
	// Bucket classes by consequent attribute.
	byRHS := make(map[int][]int)
	for i, x := range classes {
		byRHS[x.ofd.RHS] = append(byRHS[x.ofd.RHS], i)
	}
	for _, idxs := range byRHS {
		for i := 0; i < len(idxs); i++ {
			for j := i + 1; j < len(idxs); j++ {
				xi, xj := classes[idxs[i]], classes[idxs[j]]
				if xi.key.OFD == xj.key.OFD {
					continue // same dependency: classes are disjoint
				}
				overlap := intersectTuples(xi.tuples, xj.tuples)
				if len(overlap) == 0 {
					continue
				}
				w := overlapEMD(rel, cov, xi, xj, overlap)
				e := depEdge{a: idxs[i], b: idxs[j], weight: w}
				g.adj[idxs[i]] = append(g.adj[idxs[i]], len(g.edges))
				g.adj[idxs[j]] = append(g.adj[idxs[j]], len(g.edges))
				g.edges = append(g.edges, e)
			}
		}
	}
	return g
}

// intersectTuples intersects two ascending tuple-id lists.
func intersectTuples(a, b []int) []int {
	var out []int
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			out = append(out, a[i])
			i++
			j++
		case a[i] < b[j]:
			i++
		default:
			j++
		}
	}
	return out
}

// senseHistogram builds D(Ω(λ)): the distribution of the overlap's
// consequent values with every value covered by λ collapsed to λ's
// canonical value.
func senseHistogram(rel *relation.Relation, cov coverage, col int, tuples []int, sense ontology.ClassID) emd.Hist {
	h := make(emd.Hist, 4)
	for _, t := range tuples {
		v := rel.String(t, col)
		if cov.covers(sense, v) {
			v = cov.ont.Name(sense)
		}
		h[v]++
	}
	return h
}

// overlapEMD is the edge weight: the work to transform D(Ω(λ_i)) into
// D(Ω(λ_j)) measured as an absolute number of unit moves.
func overlapEMD(rel *relation.Relation, cov coverage, xi, xj *eqClass, overlap []int) float64 {
	hi := senseHistogram(rel, cov, xi.ofd.RHS, overlap, xi.sense)
	hj := senseHistogram(rel, cov, xj.ofd.RHS, overlap, xj.sense)
	return emd.WorkDistance(hi, hj)
}

// nodeWeight sums the weights of all edges incident to class i (the BFS
// priority in Algorithm 7).
func (g *depGraph) nodeWeight(i int) float64 {
	w := 0.0
	for _, e := range g.adj[i] {
		w += g.edges[e].weight
	}
	return w
}

// refineOutcome reports what local refinement decided for one edge.
type refineOutcome int

const (
	keepSenses refineOutcome = iota
	reassigned
	preferOntologyRepair
	preferDataRepair
)

// refineEdge implements the cost comparison of §5.2.1 for one conflicting
// edge: u1 is the class being visited (kept fixed), u2 the neighbour whose
// sense may be reassigned. Returns the chosen option.
func refineEdge(rel *relation.Relation, cov coverage, g *depGraph, ei, fixed int) refineOutcome {
	e := &g.edges[ei]
	a, b := e.a, e.b
	if b == fixed {
		a, b = b, a
	}
	x1, x2 := g.classes[a], g.classes[b]
	overlap := intersectTuples(x1.tuples, x2.tuples)
	if len(overlap) == 0 {
		return keepSenses
	}
	rho1 := uncoveredValues(rel, cov, &eqClass{ofd: x1.ofd, tuples: overlap}, x1.sense)
	rho2 := uncoveredValues(rel, cov, &eqClass{ofd: x2.ofd, tuples: overlap}, x2.sense)

	// Option (i): ontology repair — add every outlier to S under the two
	// senses; cost = |ρ_λ1| + |ρ_λ2|.
	costOnt := len(rho1) + len(rho2)

	// Option (ii): data repair — update the tuples carrying outlier values;
	// cost = |R(Ω(λ1))| + |R(Ω(λ2))|.
	costData := uncoveredTuples(rel, cov, &eqClass{ofd: x1.ofd, tuples: overlap}, x1.sense) +
		uncoveredTuples(rel, cov, &eqClass{ofd: x2.ofd, tuples: overlap}, x2.sense)

	// Option (iii): reassign u2's sense to some λ′ covering outlier values;
	// delta cost = |R(x2_λ′)| − |R(x2_λ)| over the whole class.
	baseUncovered := uncoveredTuples(rel, cov, x2, x2.sense)
	bestSense, bestDelta := ontology.NoClass, int(^uint(0)>>1)
	candidates := candidateSenses(cov, append(append([]string(nil), rho1...), rho2...))
	for _, cand := range candidates {
		if cand == x2.sense {
			continue
		}
		delta := uncoveredTuples(rel, cov, x2, cand) - baseUncovered
		if delta < bestDelta || (delta == bestDelta && cand < bestSense) {
			bestSense, bestDelta = cand, delta
		}
	}

	// Pick the locally cheapest option.
	if bestSense != ontology.NoClass && bestDelta <= costOnt && bestDelta <= costData {
		// Reassign only if the edge weight would actually decrease.
		old := x2.sense
		x2.sense = bestSense
		newW := overlapEMD(rel, cov, x1, x2, overlap)
		if newW < e.weight {
			e.weight = newW
			return reassigned
		}
		x2.sense = old
		return keepSenses
	}
	if costOnt <= costData {
		return preferOntologyRepair
	}
	return preferDataRepair
}

// candidateSenses returns the senses covering at least one of the values,
// deduplicated and sorted.
func candidateSenses(cov coverage, values []string) []ontology.ClassID {
	seen := make(map[ontology.ClassID]struct{})
	var out []ontology.ClassID
	for _, v := range values {
		for _, cls := range cov.interpretations(v) {
			if _, dup := seen[cls]; dup {
				continue
			}
			seen[cls] = struct{}{}
			out = append(out, cls)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// localRefinement implements Algorithms 6/7: visit classes in decreasing
// total-EMD order; for each incident edge above θ, evaluate the repair
// options and reassign senses when that lowers the edge weight.
func localRefinement(rel *relation.Relation, cov coverage, g *depGraph, theta float64, assignment Assignment) {
	order := make([]int, len(g.classes))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		wa, wb := g.nodeWeight(order[a]), g.nodeWeight(order[b])
		if wa != wb {
			return wa > wb
		}
		return order[a] < order[b]
	})
	for _, i := range order {
		// Visit this node's edges heaviest-first.
		edges := append([]int(nil), g.adj[i]...)
		sort.SliceStable(edges, func(a, b int) bool {
			if g.edges[edges[a]].weight != g.edges[edges[b]].weight {
				return g.edges[edges[a]].weight > g.edges[edges[b]].weight
			}
			return edges[a] < edges[b]
		})
		for _, ei := range edges {
			if g.edges[ei].weight <= theta {
				continue
			}
			if refineEdge(rel, cov, g, ei, i) == reassigned {
				// Keep the assignment view in sync.
				other := g.edges[ei].a
				if other == i {
					other = g.edges[ei].b
				}
				assignment[g.classes[other].key] = g.classes[other].sense
			}
		}
	}
}
