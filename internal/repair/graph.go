package repair

import (
	"context"
	"sort"

	"github.com/fastofd/fastofd/internal/emd"
	"github.com/fastofd/fastofd/internal/exec"
	"github.com/fastofd/fastofd/internal/ontology"
	"github.com/fastofd/fastofd/internal/relation"
)

// depEdge connects two equivalence classes from different OFDs that share a
// consequent attribute and overlap in tuples; its weight is the EMD between
// the overlap's value distributions under the two assigned senses. The
// overlap is computed once at graph construction and kept on the edge so
// refinement never re-intersects the tuple lists.
type depEdge struct {
	a, b    int // indexes into the class slice
	weight  float64
	overlap []int
}

// depGraph is the dependency graph of §5.2.2.
type depGraph struct {
	classes []*eqClass
	adj     [][]int // class index -> incident edge indexes
	edges   []depEdge
}

// buildDepGraph connects overlapping classes of OFDs with a common
// consequent. Only pairs with a non-empty tuple intersection get an edge.
// Candidate pairs are enumerated in canonical order (ascending consequent
// attribute, then class index) and scored by a worker pool writing into
// per-pair slots, so the edge list — and therefore every index-based
// tie-break downstream — is identical for any worker count. (The previous
// sequential version iterated the RHS bucket map directly, leaking map
// iteration order into edge indexes.)
func buildDepGraph(ctx context.Context, rel *relation.Relation, cov coverage, classes []*eqClass, workers int) (*depGraph, error) {
	g := &depGraph{classes: classes, adj: make([][]int, len(classes))}
	// Bucket classes by consequent attribute, keys in ascending order.
	byRHS := make(map[int][]int)
	var rhsOrder []int
	for i, x := range classes {
		if _, ok := byRHS[x.ofd.RHS]; !ok {
			rhsOrder = append(rhsOrder, x.ofd.RHS)
		}
		byRHS[x.ofd.RHS] = append(byRHS[x.ofd.RHS], i)
	}
	sort.Ints(rhsOrder)
	type classPair struct{ a, b int }
	var pairs []classPair
	for _, rhs := range rhsOrder {
		idxs := byRHS[rhs]
		for i := 0; i < len(idxs); i++ {
			for j := i + 1; j < len(idxs); j++ {
				if classes[idxs[i]].key.OFD == classes[idxs[j]].key.OFD {
					continue // same dependency: classes are disjoint
				}
				pairs = append(pairs, classPair{idxs[i], idxs[j]})
			}
		}
	}
	if workers < 1 {
		workers = 1
	}
	slots := make([]depEdge, len(pairs))
	ws := make([]histWorkspace, workers)
	if err := exec.For(ctx, len(pairs), workers, func(worker, k int) {
		xi, xj := classes[pairs[k].a], classes[pairs[k].b]
		overlap := intersectTuples(xi.tuples, xj.tuples)
		if len(overlap) == 0 {
			return
		}
		w := ws[worker].overlapEMD(rel, cov, xi, xj, overlap)
		slots[k] = depEdge{a: pairs[k].a, b: pairs[k].b, weight: w, overlap: overlap}
	}); err != nil {
		return g, err
	}
	for k := range slots {
		if slots[k].overlap == nil {
			continue
		}
		g.adj[slots[k].a] = append(g.adj[slots[k].a], len(g.edges))
		g.adj[slots[k].b] = append(g.adj[slots[k].b], len(g.edges))
		g.edges = append(g.edges, slots[k])
	}
	return g, nil
}

// intersectTuples intersects two ascending tuple-id lists.
func intersectTuples(a, b []int) []int {
	var out []int
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			out = append(out, a[i])
			i++
			j++
		case a[i] < b[j]:
			i++
		default:
			j++
		}
	}
	return out
}

// senseHistogram builds D(Ω(λ)): the distribution of the overlap's
// consequent values with every value covered by λ collapsed to λ's
// canonical value. Dynamic (string-keyed) path, used when no coverage index
// is available.
func senseHistogram(rel *relation.Relation, cov coverage, col int, tuples []int, sense ontology.ClassID) emd.Hist {
	h := make(emd.Hist, 4)
	for _, t := range tuples {
		v := rel.String(t, col)
		if cov.covers(sense, v) {
			v = cov.ont.Name(sense)
		}
		h[v]++
	}
	return h
}

// histWorkspace holds two reusable int-keyed histograms so that computing an
// edge weight on the indexed path allocates nothing. Each worker of the
// graph-construction pool owns one; local refinement (sequential) owns one.
type histWorkspace struct {
	p, q emd.IntHist
}

// fill populates h with the overlap's consequent-value distribution under
// sense, by interned value id, collapsing covered values to the sense's
// canonical vid.
func (w *histWorkspace) fill(rel *relation.Relation, cov coverage, col int, tuples []int, sense ontology.ClassID, h emd.IntHist) {
	cm := cov.idx.colVid[col]
	for _, t := range tuples {
		vid := cm[rel.Value(t, col)]
		if sense != ontology.NoClass && cov.coversVid(sense, vid) {
			vid = cov.idx.classVid[sense]
		}
		h[vid]++
	}
}

// overlapEMD is the edge weight: the work to transform D(Ω(λ_i)) into
// D(Ω(λ_j)) measured as an absolute number of unit moves.
func (w *histWorkspace) overlapEMD(rel *relation.Relation, cov coverage, xi, xj *eqClass, overlap []int) float64 {
	if cov.idx == nil || cov.idx.colVid[xi.ofd.RHS] == nil || cov.idx.colVid[xj.ofd.RHS] == nil {
		hi := senseHistogram(rel, cov, xi.ofd.RHS, overlap, xi.sense)
		hj := senseHistogram(rel, cov, xj.ofd.RHS, overlap, xj.sense)
		return emd.WorkDistance(hi, hj)
	}
	if w.p == nil {
		w.p = make(emd.IntHist, 8)
		w.q = make(emd.IntHist, 8)
	}
	clear(w.p)
	clear(w.q)
	w.fill(rel, cov, xi.ofd.RHS, overlap, xi.sense, w.p)
	w.fill(rel, cov, xj.ofd.RHS, overlap, xj.sense, w.q)
	return emd.WorkDistanceInt(w.p, w.q)
}

// nodeWeight sums the weights of all edges incident to class i (the BFS
// priority in Algorithm 7).
func (g *depGraph) nodeWeight(i int) float64 {
	w := 0.0
	for _, e := range g.adj[i] {
		w += g.edges[e].weight
	}
	return w
}

// refineOutcome reports what local refinement decided for one edge.
type refineOutcome int

const (
	keepSenses refineOutcome = iota
	reassigned
	preferOntologyRepair
	preferDataRepair
)

// uncKey keys the memoized whole-class uncovered-tuple counts: refinement
// never modifies data values, only senses, so |R(x_λ)| depends solely on the
// class and the candidate sense and is safe to cache for the whole phase.
type uncKey struct {
	class int
	sense ontology.ClassID
}

// refineCtx carries the state local refinement reuses across edges: the
// memoized per-(class, sense) uncovered counts that stop refineEdge from
// rescanning a whole class for every candidate sense, and the histogram
// workspace that makes edge re-weighing alloc-free.
type refineCtx struct {
	rel       *relation.Relation
	cov       coverage
	g         *depGraph
	ontWeight float64
	unc       map[uncKey]int
	hist      histWorkspace
}

// uncoveredTuplesMemo returns |R(x_λ)| for the whole class at index i under
// sense, computing it at most once per (class, sense).
func (ctx *refineCtx) uncoveredTuplesMemo(i int, sense ontology.ClassID) int {
	k := uncKey{i, sense}
	if n, ok := ctx.unc[k]; ok {
		return n
	}
	n := uncoveredTuples(ctx.rel, ctx.cov, ctx.g.classes[i], sense)
	ctx.unc[k] = n
	return n
}

// refineEdge implements the cost comparison of §5.2.1 for one conflicting
// edge: u1 is the class being visited (kept fixed), u2 the neighbour whose
// sense may be reassigned. Returns the chosen option. Ontology additions
// are weighted by ontWeight cell updates (consistent with Best selection),
// so a data repair can win when the outliers are rare one-off values.
func (ctx *refineCtx) refineEdge(ei, fixed int) refineOutcome {
	e := &ctx.g.edges[ei]
	a, b := e.a, e.b
	if b == fixed {
		a, b = b, a
	}
	x1, x2 := ctx.g.classes[a], ctx.g.classes[b]
	overlap := e.overlap
	if len(overlap) == 0 {
		return keepSenses
	}
	rho1 := uncoveredValues(ctx.rel, ctx.cov, &eqClass{ofd: x1.ofd, tuples: overlap}, x1.sense)
	rho2 := uncoveredValues(ctx.rel, ctx.cov, &eqClass{ofd: x2.ofd, tuples: overlap}, x2.sense)

	// Option (i): ontology repair — add every outlier to S under the two
	// senses; cost = ontWeight · (|ρ_λ1| + |ρ_λ2|).
	costOnt := ctx.ontWeight * float64(len(rho1)+len(rho2))

	// Option (ii): data repair — update the tuples carrying outlier values;
	// cost = |R(Ω(λ1))| + |R(Ω(λ2))|.
	costData := float64(uncoveredTuples(ctx.rel, ctx.cov, &eqClass{ofd: x1.ofd, tuples: overlap}, x1.sense) +
		uncoveredTuples(ctx.rel, ctx.cov, &eqClass{ofd: x2.ofd, tuples: overlap}, x2.sense))

	// Option (iii): reassign u2's sense to some λ′ covering outlier values;
	// delta cost = |R(x2_λ′)| − |R(x2_λ)| over the whole class.
	baseUncovered := ctx.uncoveredTuplesMemo(b, x2.sense)
	bestSense, bestDelta := ontology.NoClass, int(^uint(0)>>1)
	candidates := candidateSenses(ctx.cov, append(append([]string(nil), rho1...), rho2...))
	for _, cand := range candidates {
		if cand == x2.sense {
			continue
		}
		delta := ctx.uncoveredTuplesMemo(b, cand) - baseUncovered
		if delta < bestDelta || (delta == bestDelta && cand < bestSense) {
			bestSense, bestDelta = cand, delta
		}
	}

	// Pick the locally cheapest option.
	if bestSense != ontology.NoClass && float64(bestDelta) <= costOnt && float64(bestDelta) <= costData {
		// Reassign only if the edge weight would actually decrease.
		old := x2.sense
		x2.sense = bestSense
		newW := ctx.hist.overlapEMD(ctx.rel, ctx.cov, x1, x2, overlap)
		if newW < e.weight {
			e.weight = newW
			return reassigned
		}
		x2.sense = old
		return keepSenses
	}
	if costOnt <= costData {
		return preferOntologyRepair
	}
	return preferDataRepair
}

// candidateSenses returns the senses covering at least one of the values,
// deduplicated and sorted.
func candidateSenses(cov coverage, values []string) []ontology.ClassID {
	seen := make(map[ontology.ClassID]struct{})
	var out []ontology.ClassID
	for _, v := range values {
		for _, cls := range cov.interpretations(v) {
			if _, dup := seen[cls]; dup {
				continue
			}
			seen[cls] = struct{}{}
			out = append(out, cls)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// localRefinement implements Algorithms 6/7: visit classes in decreasing
// total-EMD order; for each incident edge above θ, evaluate the repair
// options and reassign senses when that lowers the edge weight. Node
// weights are computed once before sorting (they only change after the sort
// completes), not O(E) per comparison inside the comparator.
func localRefinement(rel *relation.Relation, cov coverage, g *depGraph, theta, ontWeight float64, assignment Assignment) {
	ctx := &refineCtx{rel: rel, cov: cov, g: g, ontWeight: ontWeight, unc: make(map[uncKey]int)}
	weights := make([]float64, len(g.classes))
	order := make([]int, len(g.classes))
	for i := range order {
		order[i] = i
		weights[i] = g.nodeWeight(i)
	}
	sort.SliceStable(order, func(a, b int) bool {
		wa, wb := weights[order[a]], weights[order[b]]
		if wa != wb {
			return wa > wb
		}
		return order[a] < order[b]
	})
	for _, i := range order {
		// Visit this node's edges heaviest-first.
		edges := append([]int(nil), g.adj[i]...)
		sort.SliceStable(edges, func(a, b int) bool {
			if g.edges[edges[a]].weight != g.edges[edges[b]].weight {
				return g.edges[edges[a]].weight > g.edges[edges[b]].weight
			}
			return edges[a] < edges[b]
		})
		for _, ei := range edges {
			if g.edges[ei].weight <= theta {
				continue
			}
			if ctx.refineEdge(ei, i) == reassigned {
				// Keep the assignment view in sync.
				other := g.edges[ei].a
				if other == i {
					other = g.edges[ei].b
				}
				assignment[g.classes[other].key] = g.classes[other].sense
			}
		}
	}
}
