package repair

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"testing"
	"time"

	"github.com/fastofd/fastofd/internal/gen"
)

// cancelAfterPolls is a context.Context that cancels itself on its nth
// Err() poll — a deterministic cancellation point mid-pipeline, since the
// repair stages poll between classes, beam levels, and components.
type cancelAfterPolls struct {
	mu   sync.Mutex
	left int
	done chan struct{}
}

func newCancelAfterPolls(n int) *cancelAfterPolls {
	return &cancelAfterPolls{left: n, done: make(chan struct{})}
}

func (c *cancelAfterPolls) Deadline() (time.Time, bool) { return time.Time{}, false }
func (c *cancelAfterPolls) Done() <-chan struct{}       { return c.done }
func (c *cancelAfterPolls) Value(key any) any           { return nil }

func (c *cancelAfterPolls) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.left <= 0 {
		return context.Canceled
	}
	c.left--
	if c.left == 0 {
		close(c.done)
		return context.Canceled
	}
	return nil
}

func waitGoroutines(t *testing.T, before int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("goroutine leak: %d before, %d after", before, runtime.NumGoroutine())
}

func TestCleanPreCancelled(t *testing.T) {
	ds := gen.Generate(gen.Config{Rows: 300, Seed: 5, ErrRate: 0.06, IncRate: 0.04, NumOFDs: 4})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := CleanContext(ctx, ds.Rel, ds.Ont, ds.Sigma, Options{Theta: 5, Beam: 3, Tau: 1, Workers: 2})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if res == nil || res.Instance == nil || res.Ontology == nil {
		t.Fatalf("cancelled Clean must return a usable (unrepaired) instance and ontology, got %+v", res)
	}
	if res.Best != nil {
		t.Fatal("a cancelled Clean must not claim a chosen repair")
	}
}

// TestCleanCancelMidPipeline interrupts the repair pipeline at varying
// depths — sense assignment, dependency graph, beam search, or
// materialization, depending on the countdown — and checks the contract:
// the error wraps context.Canceled, Instance and Ontology are always
// non-nil (falling back to clones of the input), Best is never set from
// under-counted repair distances, and the worker pool leaks no goroutines.
func TestCleanCancelMidPipeline(t *testing.T) {
	ds := gen.Generate(gen.Config{Rows: 400, Seed: 9, ErrRate: 0.06, IncRate: 0.04, NumOFDs: 5})
	opts := Options{Theta: 5, Beam: 3, Tau: 1, Workers: 4}
	full, err := Clean(ds.Rel, ds.Ont, ds.Sigma, opts)
	if err != nil {
		t.Fatalf("full run failed: %v", err)
	}
	for _, polls := range []int{1, 2, 3, 5, 9, 16} {
		before := runtime.NumGoroutine()
		res, err := CleanContext(newCancelAfterPolls(polls), ds.Rel, ds.Ont, ds.Sigma, opts)
		if err == nil {
			if res.Best == nil && full.Best != nil {
				t.Fatalf("polls=%d: uncancelled run lost the chosen repair", polls)
			}
			continue
		}
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("polls=%d: want context.Canceled, got %v", polls, err)
		}
		if res == nil || res.Instance == nil || res.Ontology == nil {
			t.Fatalf("polls=%d: cancelled Clean returned malformed result", polls)
		}
		if res.Best != nil {
			t.Fatalf("polls=%d: cancelled Clean must not choose a repair", polls)
		}
		if res.Instance.NumRows() != ds.Rel.NumRows() {
			t.Fatalf("polls=%d: partial instance has wrong shape", polls)
		}
		waitGoroutines(t, before)
	}
}
