package repair

import (
	"sort"

	"github.com/fastofd/fastofd/internal/ontology"
	"github.com/fastofd/fastofd/internal/relation"
)

// CellChange is one data repair: cell (Row, Col) updated From → To.
type CellChange struct {
	Row, Col int
	From, To string
}

// conflictEdge connects two tuples that jointly violate an OFD: they are in
// the same equivalence class and their consequent values are neither equal
// nor both covered by the class's assigned sense.
type conflictEdge struct {
	t1, t2 int
	class  *eqClass
}

// buildConflictGraph enumerates conflicting tuple pairs per class. To keep
// the graph quadratic only in the number of *distinct conflicting values*
// (not tuples), one representative tuple per distinct value participates.
func buildConflictGraph(rel *relation.Relation, cov coverage, classes []*eqClass) []conflictEdge {
	var edges []conflictEdge
	for _, x := range classes {
		// Representative tuple per distinct value, deterministic.
		repOf := make(map[string]int, 4)
		for _, t := range x.tuples {
			v := rel.String(t, x.ofd.RHS)
			if r, ok := repOf[v]; !ok || t < r {
				repOf[v] = t
			}
		}
		if len(repOf) < 2 {
			continue
		}
		values := make([]string, 0, len(repOf))
		for v := range repOf {
			values = append(values, v)
		}
		sort.Strings(values)
		for i := 0; i < len(values); i++ {
			for j := i + 1; j < len(values); j++ {
				vi, vj := values[i], values[j]
				if pairConsistent(cov, x.sense, vi, vj) {
					continue
				}
				edges = append(edges, conflictEdge{t1: repOf[vi], t2: repOf[vj], class: x})
			}
		}
	}
	return edges
}

// pairConsistent reports whether two distinct values can coexist in a class
// interpreted under sense λ: both covered by λ, or — when no sense was
// assignable — sharing any common interpretation.
func pairConsistent(cov coverage, sense ontology.ClassID, v1, v2 string) bool {
	if v1 == v2 {
		return true
	}
	if sense != ontology.NoClass {
		return cov.covers(sense, v1) && cov.covers(sense, v2)
	}
	return len(cov.shared([]string{v1, v2})) > 0
}

// vertexCover2Approx computes the classic 2-approximate minimum vertex
// cover by greedy maximal matching over the conflict edges.
func vertexCover2Approx(edges []conflictEdge) map[int]struct{} {
	cover := make(map[int]struct{})
	for _, e := range edges {
		if _, in := cover[e.t1]; in {
			continue
		}
		if _, in := cover[e.t2]; in {
			continue
		}
		cover[e.t1] = struct{}{}
		cover[e.t2] = struct{}{}
	}
	return cover
}

// repairTarget picks the value to which a class's uncovered tuples are
// updated: the most frequent value covered by the assigned sense; if the
// sense covers nothing (or none was assigned), the class's most frequent
// value overall. Ties break lexicographically.
func repairTarget(rel *relation.Relation, cov coverage, x *eqClass) string {
	counts := x.valueCounts(rel)
	bestCovered, bestCoveredN := "", -1
	bestAny, bestAnyN := "", -1
	keys := make([]string, 0, len(counts))
	for v := range counts {
		keys = append(keys, v)
	}
	sort.Strings(keys)
	for _, v := range keys {
		n := counts[v]
		if cov.covers(x.sense, v) && n > bestCoveredN {
			bestCovered, bestCoveredN = v, n
		}
		if n > bestAnyN {
			bestAny, bestAnyN = v, n
		}
	}
	if bestCoveredN >= 0 {
		return bestCovered
	}
	return bestAny
}

// classSatisfiedUnder reports whether the class currently satisfies its OFD
// under the assigned sense or syntactic equality or any shared sense.
func classSatisfiedUnder(rel *relation.Relation, cov coverage, x *eqClass) bool {
	counts := x.valueCounts(rel)
	if len(counts) <= 1 {
		return true
	}
	values := make([]string, 0, len(counts))
	for v := range counts {
		values = append(values, v)
	}
	if x.sense != ontology.NoClass {
		all := true
		for _, v := range values {
			if !cov.covers(x.sense, v) {
				all = false
				break
			}
		}
		if all {
			return true
		}
	}
	return len(cov.shared(values)) > 0
}

// dataRepair computes cell updates that make every class satisfy its OFD
// w.r.t. the (possibly repaired) ontology, adapting RepairData of Beskales
// et al.: tuples in the 2-approximate vertex cover of the conflict graph
// are cleaned one at a time, then residual violations caused by OFD
// interactions are resolved with up to two escalation passes (class-mode
// collapse, then connected-component collapse), which guarantees
// convergence. The relation is modified in place; the changes are returned.
func dataRepair(rel *relation.Relation, cov coverage, classes []*eqClass) []CellChange {
	var changes []CellChange
	apply := func(row, col int, to string) {
		from := rel.String(row, col)
		if from == to {
			return
		}
		rel.SetString(row, col, to)
		changes = append(changes, CellChange{Row: row, Col: col, From: from, To: to})
	}

	// Pass 1: vertex-cover guided, per-class sense-based repair. The cover
	// identifies the tuples to clean; each is updated to its class's
	// repair target (a value covered by the assigned sense).
	edges := buildConflictGraph(rel, cov, classes)
	cover := vertexCover2Approx(edges)
	// A tuple may participate in several classes (shared consequents);
	// repair it w.r.t. the class with the most tuples (strongest evidence).
	classOfTuple := make(map[int]*eqClass)
	for _, e := range edges {
		for _, t := range []int{e.t1, e.t2} {
			if _, in := cover[t]; !in {
				continue
			}
			if cur, ok := classOfTuple[t]; !ok || len(e.class.tuples) > len(cur.tuples) {
				classOfTuple[t] = e.class
			}
		}
	}
	coveredTuples := make([]int, 0, len(classOfTuple))
	for t := range classOfTuple {
		coveredTuples = append(coveredTuples, t)
	}
	sort.Ints(coveredTuples)
	for _, t := range coveredTuples {
		x := classOfTuple[t]
		target := repairTarget(rel, cov, x)
		v := rel.String(t, x.ofd.RHS)
		if v == target {
			continue
		}
		if cov.covers(x.sense, v) && cov.covers(x.sense, target) {
			continue // already consistent with the target under the sense
		}
		apply(t, x.ofd.RHS, target)
	}
	// Cover representatives stand for all tuples sharing their value; any
	// remaining uncovered tuple values are fixed per class below.

	// Pass 2: per-class collapse — every tuple whose value the sense does
	// not cover moves to the class's repair target.
	for _, x := range classes {
		if classSatisfiedUnder(rel, cov, x) {
			continue
		}
		target := repairTarget(rel, cov, x)
		for _, t := range x.tuples {
			v := rel.String(t, x.ofd.RHS)
			if v == target {
				continue
			}
			if cov.covers(x.sense, v) && cov.covers(x.sense, target) {
				continue
			}
			apply(t, x.ofd.RHS, target)
		}
	}

	// Pass 3: interactions can still leave conflicts (a tuple repaired for
	// φ1 may now disagree within a φ2 class). Compute the connected
	// components of tuple-sharing classes per consequent attribute and
	// collapse every component that still contains a violating class to a
	// single value. Because any class intersecting a component belongs to
	// it, collapsed classes become constant and the pass converges in one
	// sweep.
	var violating []*eqClass
	for _, x := range classes {
		if !classSatisfiedUnder(rel, cov, x) {
			violating = append(violating, x)
		}
	}
	if len(violating) > 0 {
		for _, comp := range connectedComponents(classes) {
			hasViolation := false
			for _, x := range comp {
				for _, v := range violating {
					if x == v {
						hasViolation = true
						break
					}
				}
				if hasViolation {
					break
				}
			}
			if !hasViolation {
				continue
			}
			col := comp[0].ofd.RHS
			tupleSet := make(map[int]struct{})
			for _, x := range comp {
				for _, t := range x.tuples {
					tupleSet[t] = struct{}{}
				}
			}
			counts := make(map[string]int)
			for t := range tupleSet {
				counts[rel.String(t, col)]++
			}
			target, best := "", -1
			keys := make([]string, 0, len(counts))
			for v := range counts {
				keys = append(keys, v)
			}
			sort.Strings(keys)
			for _, v := range keys {
				if counts[v] > best {
					target, best = v, counts[v]
				}
			}
			tuples := make([]int, 0, len(tupleSet))
			for t := range tupleSet {
				tuples = append(tuples, t)
			}
			sort.Ints(tuples)
			for _, t := range tuples {
				apply(t, col, target)
			}
		}
	}
	return changes
}

// connectedComponents groups classes sharing a consequent attribute and at
// least one tuple, using a tuple→class index so cost is linear in total
// class size.
func connectedComponents(classes []*eqClass) [][]*eqClass {
	n := len(classes)
	parent := make([]int, n)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(i int) int {
		for parent[i] != i {
			parent[i] = parent[parent[i]]
			i = parent[i]
		}
		return i
	}
	union := func(a, b int) { parent[find(a)] = find(b) }
	// last class index seen per (rhs, tuple).
	type tk struct{ rhs, tuple int }
	lastSeen := make(map[tk]int)
	for i, x := range classes {
		for _, t := range x.tuples {
			k := tk{x.ofd.RHS, t}
			if j, ok := lastSeen[k]; ok {
				union(i, j)
			}
			lastSeen[k] = i
		}
	}
	groups := make(map[int][]*eqClass)
	for i, x := range classes {
		groups[find(i)] = append(groups[find(i)], x)
	}
	roots := make([]int, 0, len(groups))
	for r := range groups {
		roots = append(roots, r)
	}
	sort.Ints(roots)
	out := make([][]*eqClass, 0, len(groups))
	for _, r := range roots {
		out = append(out, groups[r])
	}
	return out
}
