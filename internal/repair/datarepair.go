package repair

import (
	"context"
	"sort"

	"github.com/fastofd/fastofd/internal/exec"
	"github.com/fastofd/fastofd/internal/ontology"
	"github.com/fastofd/fastofd/internal/relation"
)

// CellChange is one data repair: cell (Row, Col) updated From → To.
type CellChange struct {
	Row, Col int
	From, To string
}

// conflictEdge connects two tuples that jointly violate an OFD: they are in
// the same equivalence class and their consequent values are neither equal
// nor both covered by the class's assigned sense.
type conflictEdge struct {
	t1, t2 int
	class  *eqClass
}

// classValCounts counts a class's consequent values by dictionary id. The
// ids are stable across Relation.Clone and in-place repair writes (repair
// targets are always existing column values), so they serve as compact value
// keys that avoid per-tuple string hashing on the materialization hot path.
func classValCounts(rel *relation.Relation, x *eqClass) map[relation.Value]int {
	counts := make(map[relation.Value]int, 4)
	col := rel.Column(x.ofd.RHS)
	for _, t := range x.tuples {
		counts[col.At(int(t))]++
	}
	return counts
}

// coversVal is coverage.covers keyed by dictionary id: the index's
// per-column vid table turns the probe into two array lookups. Falls back
// to the string path when the index (or the column's table) is absent.
func coversVal(cov coverage, rel *relation.Relation, col int, sense ontology.ClassID, v relation.Value) bool {
	if cov.idx != nil {
		if cm := cov.idx.colVid[col]; int(v) < len(cm) {
			return cov.coversVid(sense, cm[v])
		}
	}
	return cov.covers(sense, rel.Dict(col).String(v))
}

// buildConflictGraph enumerates conflicting tuple pairs per class. To keep
// the graph quadratic only in the number of *distinct conflicting values*
// (not tuples), one representative tuple per distinct value participates.
func buildConflictGraph(rel *relation.Relation, cov coverage, classes []*eqClass) []conflictEdge {
	var edges []conflictEdge
	for _, x := range classes {
		colAttr := x.ofd.RHS
		col := rel.Column(colAttr)
		// Representative tuple per distinct value, deterministic.
		repOf := make(map[relation.Value]int, 4)
		for _, t := range x.tuples {
			v := col.At(int(t))
			if r, ok := repOf[v]; !ok || t < r {
				repOf[v] = t
			}
		}
		if len(repOf) < 2 {
			continue
		}
		// Dictionary ids order values by first appearance in the column —
		// a property of the input instance, so the edge order (and the
		// greedy vertex cover) is identical for any worker count and with
		// or without the coverage index.
		values := make([]relation.Value, 0, len(repOf))
		for v := range repOf {
			values = append(values, v)
		}
		sort.Slice(values, func(i, j int) bool { return values[i] < values[j] })
		for i := 0; i < len(values); i++ {
			for j := i + 1; j < len(values); j++ {
				vi, vj := values[i], values[j]
				if pairConsistentVal(cov, rel, colAttr, x.sense, vi, vj) {
					continue
				}
				edges = append(edges, conflictEdge{t1: repOf[vi], t2: repOf[vj], class: x})
			}
		}
	}
	return edges
}

// pairConsistentVal reports whether two distinct values can coexist in a
// class interpreted under sense λ: both covered by λ, or — when no sense
// was assigned — sharing any common interpretation.
func pairConsistentVal(cov coverage, rel *relation.Relation, col int, sense ontology.ClassID, v1, v2 relation.Value) bool {
	if v1 == v2 {
		return true
	}
	if sense != ontology.NoClass {
		return coversVal(cov, rel, col, sense, v1) && coversVal(cov, rel, col, sense, v2)
	}
	d := rel.Dict(col)
	return len(cov.shared([]string{d.String(v1), d.String(v2)})) > 0
}

// vertexCover2Approx computes the classic 2-approximate minimum vertex
// cover by greedy maximal matching over the conflict edges.
func vertexCover2Approx(edges []conflictEdge) map[int]struct{} {
	cover := make(map[int]struct{})
	for _, e := range edges {
		if _, in := cover[e.t1]; in {
			continue
		}
		if _, in := cover[e.t2]; in {
			continue
		}
		cover[e.t1] = struct{}{}
		cover[e.t2] = struct{}{}
	}
	return cover
}

// repairTarget picks the value to which a class's uncovered tuples are
// updated: the most frequent value covered by the assigned sense; if the
// sense covers nothing (or none was assigned), the class's most frequent
// value overall. Ties break lexicographically.
func repairTarget(rel *relation.Relation, cov coverage, x *eqClass) string {
	counts := classValCounts(rel, x)
	col := x.ofd.RHS
	dict := rel.Dict(col)
	type vc struct {
		s string
		v relation.Value
		n int
	}
	items := make([]vc, 0, len(counts))
	for v, n := range counts {
		items = append(items, vc{dict.String(v), v, n})
	}
	sort.Slice(items, func(i, j int) bool { return items[i].s < items[j].s })
	bestCovered, bestCoveredN := "", -1
	bestAny, bestAnyN := "", -1
	for _, it := range items {
		if it.n > bestCoveredN && coversVal(cov, rel, col, x.sense, it.v) {
			bestCovered, bestCoveredN = it.s, it.n
		}
		if it.n > bestAnyN {
			bestAny, bestAnyN = it.s, it.n
		}
	}
	if bestCoveredN >= 0 {
		return bestCovered
	}
	return bestAny
}

// classSatisfiedUnder reports whether the class currently satisfies its OFD
// under the assigned sense or syntactic equality or any shared sense.
func classSatisfiedUnder(rel *relation.Relation, cov coverage, x *eqClass) bool {
	counts := classValCounts(rel, x)
	if len(counts) <= 1 {
		return true
	}
	col := x.ofd.RHS
	if x.sense != ontology.NoClass {
		all := true
		for v := range counts {
			if !coversVal(cov, rel, col, x.sense, v) {
				all = false
				break
			}
		}
		if all {
			return true
		}
	}
	// Shared-interpretation fallback only runs for violated-under-sense
	// classes, so the string conversion stays off the common path.
	dict := rel.Dict(col)
	values := make([]string, 0, len(counts))
	for v := range counts {
		values = append(values, dict.String(v))
	}
	return len(cov.shared(values)) > 0
}

// dataRepairComps computes cell updates that make every class satisfy its
// OFD w.r.t. the (possibly repaired) ontology, adapting RepairData of
// Beskales et al. over pre-grouped connected components (classes sharing a
// consequent attribute and at least one tuple). Each component is repaired
// independently — vertex-cover guided cleaning, per-class collapse, then
// whole-component collapse if violations persist, which guarantees
// convergence. Components never share a writable cell (a cell (t, A)
// belongs to exactly the component owning (A, t)) and read only their own
// tuples' consequent column, so they run on the worker pool; per-component
// change lists are concatenated in canonical component order, making the
// result identical for any worker count. The relation is modified in
// place; the changes are returned. Clean computes
// the components once and filters out those already satisfied (coverage is
// monotone under ontology additions, so a satisfied component stays
// satisfied under every candidate repair set), so each materialization
// repairs only the dirty components instead of re-deriving and re-checking
// the full grouping per beam level. A cancelled context stops between
// components; the changes of completed components are returned with the
// wrapped error, but the list is then incomplete and callers must not score
// it as a full repair.
func dataRepairComps(ctx context.Context, rel *relation.Relation, cov coverage, comps [][]*eqClass, workers int) ([]CellChange, error) {
	perComp := make([][]CellChange, len(comps))
	// Concurrency safety: repair targets are always existing values of the
	// component's own column, so SetString only reads the column dictionary
	// (Intern hits the present-value fast path) and writes disjoint cells.
	err := exec.For(ctx, len(comps), workers, func(_, ci int) {
		perComp[ci] = repairComponent(rel, cov, comps[ci])
	})
	var changes []CellChange
	for _, ch := range perComp {
		changes = append(changes, ch...)
	}
	return changes, err
}

// repairComponent repairs one connected component of tuple-sharing classes.
func repairComponent(rel *relation.Relation, cov coverage, comp []*eqClass) []CellChange {
	var changes []CellChange
	apply := func(row, col int, to string) {
		from := rel.String(row, col)
		if from == to {
			return
		}
		rel.SetString(row, col, to)
		changes = append(changes, CellChange{Row: row, Col: col, From: from, To: to})
	}

	// Pass 1: vertex-cover guided, per-class sense-based repair. The cover
	// identifies the tuples to clean; each is updated to its class's
	// repair target (a value covered by the assigned sense).
	edges := buildConflictGraph(rel, cov, comp)
	cover := vertexCover2Approx(edges)
	// A tuple may participate in several classes (shared consequents);
	// repair it w.r.t. the class with the most tuples (strongest evidence).
	classOfTuple := make(map[int]*eqClass)
	for _, e := range edges {
		for _, t := range []int{e.t1, e.t2} {
			if _, in := cover[t]; !in {
				continue
			}
			if cur, ok := classOfTuple[t]; !ok || len(e.class.tuples) > len(cur.tuples) {
				classOfTuple[t] = e.class
			}
		}
	}
	coveredTuples := make([]int, 0, len(classOfTuple))
	for t := range classOfTuple {
		coveredTuples = append(coveredTuples, t)
	}
	sort.Ints(coveredTuples)
	for _, t := range coveredTuples {
		x := classOfTuple[t]
		col := x.ofd.RHS
		target := repairTarget(rel, cov, x)
		targetVal, _ := rel.Dict(col).Lookup(target) // target is an existing column value
		v := rel.Value(t, col)
		if v == targetVal {
			continue
		}
		if coversVal(cov, rel, col, x.sense, v) && coversVal(cov, rel, col, x.sense, targetVal) {
			continue // already consistent with the target under the sense
		}
		apply(t, col, target)
	}
	// Cover representatives stand for all tuples sharing their value; any
	// remaining uncovered tuple values are fixed per class below.

	// Pass 2: per-class collapse — every tuple whose value the sense does
	// not cover moves to the class's repair target.
	for _, x := range comp {
		if classSatisfiedUnder(rel, cov, x) {
			continue
		}
		col := x.ofd.RHS
		target := repairTarget(rel, cov, x)
		targetVal, _ := rel.Dict(col).Lookup(target)
		targetCovered := coversVal(cov, rel, col, x.sense, targetVal)
		for _, t := range x.tuples {
			v := rel.Value(t, col)
			if v == targetVal {
				continue
			}
			if targetCovered && coversVal(cov, rel, col, x.sense, v) {
				continue
			}
			apply(t, col, target)
		}
	}

	// Pass 3: interactions can still leave conflicts (a tuple repaired for
	// φ1 may now disagree within a φ2 class). If any class in the component
	// still violates, collapse the whole component to its modal value;
	// collapsed classes become constant, so the pass converges in one sweep.
	violated := false
	for _, x := range comp {
		if !classSatisfiedUnder(rel, cov, x) {
			violated = true
			break
		}
	}
	if violated {
		col := comp[0].ofd.RHS
		column := rel.Column(col)
		tupleSet := make(map[int]struct{})
		for _, x := range comp {
			for _, t := range x.tuples {
				tupleSet[t] = struct{}{}
			}
		}
		counts := make(map[relation.Value]int)
		for t := range tupleSet {
			counts[column.At(t)]++
		}
		dict := rel.Dict(col)
		target, best := "", -1
		keys := make([]string, 0, len(counts))
		byStr := make(map[string]int, len(counts))
		for v, n := range counts {
			s := dict.String(v)
			keys = append(keys, s)
			byStr[s] = n
		}
		sort.Strings(keys)
		for _, s := range keys {
			if byStr[s] > best {
				target, best = s, byStr[s]
			}
		}
		tuples := make([]int, 0, len(tupleSet))
		for t := range tupleSet {
			tuples = append(tuples, t)
		}
		sort.Ints(tuples)
		for _, t := range tuples {
			apply(t, col, target)
		}
	}
	return changes
}

// connectedComponents groups classes sharing a consequent attribute and at
// least one tuple, using a tuple→class index so cost is linear in total
// class size.
func connectedComponents(classes []*eqClass) [][]*eqClass {
	n := len(classes)
	parent := make([]int, n)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(i int) int {
		for parent[i] != i {
			parent[i] = parent[parent[i]]
			i = parent[i]
		}
		return i
	}
	union := func(a, b int) { parent[find(a)] = find(b) }
	// last class index seen per (rhs, tuple).
	type tk struct{ rhs, tuple int }
	lastSeen := make(map[tk]int)
	for i, x := range classes {
		for _, t := range x.tuples {
			k := tk{x.ofd.RHS, t}
			if j, ok := lastSeen[k]; ok {
				union(i, j)
			}
			lastSeen[k] = i
		}
	}
	groups := make(map[int][]*eqClass)
	for i, x := range classes {
		groups[find(i)] = append(groups[find(i)], x)
	}
	roots := make([]int, 0, len(groups))
	for r := range groups {
		roots = append(roots, r)
	}
	sort.Ints(roots)
	out := make([][]*eqClass, 0, len(groups))
	for _, r := range roots {
		out = append(out, groups[r])
	}
	return out
}
