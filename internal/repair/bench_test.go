package repair

import (
	"testing"

	"github.com/fastofd/fastofd/internal/gen"
)

func benchmarkClean(b *testing.B, opts Options) {
	ds := gen.Generate(gen.Config{Rows: 1000, Seed: 1, ErrRate: 0.06, IncRate: 0.04, NumOFDs: 6})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Clean(ds.Rel, ds.Ont, ds.Sigma, opts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCleanBaseline(b *testing.B) {
	benchmarkClean(b, Options{Theta: 5, Beam: 3, Tau: 1, Workers: 1, NoCoverageIndex: true})
}

func BenchmarkCleanIndexed(b *testing.B) {
	benchmarkClean(b, Options{Theta: 5, Beam: 3, Tau: 1, Workers: 1})
}

func BenchmarkCleanIndexedParallel(b *testing.B) {
	benchmarkClean(b, Options{Theta: 5, Beam: 3, Tau: 1, Workers: 0})
}
