package repair

import (
	"sort"

	"github.com/fastofd/fastofd/internal/core"
	"github.com/fastofd/fastofd/internal/ontology"
	"github.com/fastofd/fastofd/internal/relation"
)

// SigmaRepair proposes a modification to one dependency rather than to the
// data or ontology: augmenting a violated OFD's antecedent until it holds
// — the "repair the constraints" alternative the paper attributes to
// Chiang & Miller / Beskales et al. (relative trust). Appending attributes
// makes the antecedent more selective, splitting offending equivalence
// classes apart.
type SigmaRepair struct {
	// Original is the violated dependency.
	Original core.OFD
	// Repairs lists every minimal augmentation X∪Y → A that holds on the
	// instance, cheapest (fewest added attributes) first.
	Repairs []core.OFD
}

// SigmaRepairOptions configure RepairSigma.
type SigmaRepairOptions struct {
	// MaxAdd bounds how many attributes may be appended (default 2).
	MaxAdd int
	// IsATheta evaluates candidates under inheritance semantics with this
	// is-a bound; 0 uses synonym semantics.
	IsATheta int
}

// RepairSigma returns, for every violated dependency in Σ, the minimal
// antecedent augmentations (up to MaxAdd added attributes) under which the
// instance satisfies the repaired dependency. Dependencies that already
// hold are omitted. Candidate attributes exclude the dependency's own
// consequent; the consequents of other dependencies remain allowed (the
// caller may prefer to avoid them to preserve the repair framework's
// antecedent/consequent disjointness).
func RepairSigma(rel *relation.Relation, ont *ontology.Ontology, sigma core.Set, opts SigmaRepairOptions) []SigmaRepair {
	if opts.MaxAdd <= 0 {
		opts.MaxAdd = 2
	}
	v := core.NewVerifier(rel, ont, nil)
	holds := func(d core.OFD) bool {
		if opts.IsATheta > 0 {
			return v.HoldsInh(d, opts.IsATheta)
		}
		return v.HoldsSyn(d)
	}
	var out []SigmaRepair
	all := rel.Schema().All()
	for _, d := range sigma {
		if holds(d) {
			continue
		}
		sr := SigmaRepair{Original: d}
		candidates := all.Minus(d.LHS).Without(d.RHS).Attrs()
		var minimal []relation.AttrSet
		// Level-wise over added attribute sets Y, smallest first, pruning
		// supersets of already-found augmentations (they cannot be
		// minimal) — the Augmentation axiom guarantees they hold anyway.
		var level []relation.AttrSet
		for _, a := range candidates {
			level = append(level, relation.Single(a))
		}
		for size := 1; size <= opts.MaxAdd && len(level) > 0; size++ {
			var next []relation.AttrSet
			for _, y := range level {
				dominated := false
				for _, m := range minimal {
					if m.SubsetOf(y) {
						dominated = true
						break
					}
				}
				if dominated {
					continue
				}
				if holds(core.OFD{LHS: d.LHS.Union(y), RHS: d.RHS}) {
					minimal = append(minimal, y)
					continue
				}
				// Expand by attributes after y's largest member so each
				// set is generated once.
				attrs := y.Attrs()
				last := attrs[len(attrs)-1]
				for _, a := range candidates {
					if a > last {
						next = append(next, y.With(a))
					}
				}
			}
			level = next
		}
		relation.SortSets(minimal)
		for _, y := range minimal {
			sr.Repairs = append(sr.Repairs, core.OFD{LHS: d.LHS.Union(y), RHS: d.RHS})
		}
		sort.SliceStable(sr.Repairs, func(i, j int) bool {
			if li, lj := sr.Repairs[i].LHS.Len(), sr.Repairs[j].LHS.Len(); li != lj {
				return li < lj
			}
			return sr.Repairs[i].LHS < sr.Repairs[j].LHS
		})
		out = append(out, sr)
	}
	return out
}
