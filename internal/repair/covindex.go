package repair

import (
	"sort"

	"github.com/fastofd/fastofd/internal/ontology"
	"github.com/fastofd/fastofd/internal/relation"
)

// covIndex is the interned coverage index built once per Clean call. It maps
// every distinct consequent value (plus every class's canonical name) to a
// dense int32 id and precomputes, per id, the sorted list of classes that
// cover it under the configured semantics. Coverage tests then become a
// bitset probe (or a binary search over a handful of class ids) instead of
// the HasSynonym/PathLen walks and map+sort allocations of the dynamic path,
// and hot loops can go from cell to covering classes without materializing
// strings at all via the per-column dictionary-id → vid tables.
//
// The index is immutable after construction, so the parallel repair stages
// share it without locking. Scratch ontologies produced by materialize are
// handled as overlays (coverage.extra), never by mutating the index.
type covIndex struct {
	ont   *ontology.Ontology
	theta int

	vids map[string]int32 // value -> dense id
	strs []string         // vid -> value
	// interps[vid] lists the classes covering the value, sorted ascending:
	// names(v) plus, when theta > 0, every ancestor within theta is-a steps.
	interps [][]ontology.ClassID
	// colVid[col][dictID] translates a column's dictionary-encoded cell
	// value to its vid; only the indexed consequent columns are present.
	colVid map[int][]int32
	// classVid[cls] is the vid of the class's canonical name, used to
	// collapse covered values when building sense histograms.
	classVid []int32

	// bits is an optional |classes| × stride bitset: bit vid of row cls is
	// set iff cls covers vid. Built only while the product stays small;
	// otherwise coversVid binary-searches interps.
	bits   []uint64
	stride int
}

// maxCoverBits caps the bitset at 8 MiB; larger class×value products fall
// back to binary search over the (short) per-value class lists.
const maxCoverBits = 1 << 26

// buildCovIndex interns the distinct values of the given consequent columns
// and every class name, precomputing interpretations for each.
func buildCovIndex(rel *relation.Relation, ont *ontology.Ontology, theta int, rhsCols []int) *covIndex {
	ix := &covIndex{
		ont:    ont,
		theta:  theta,
		vids:   make(map[string]int32),
		colVid: make(map[int][]int32, len(rhsCols)),
	}
	intern := func(v string) int32 {
		if id, ok := ix.vids[v]; ok {
			return id
		}
		id := int32(len(ix.strs))
		ix.vids[v] = id
		ix.strs = append(ix.strs, v)
		ix.interps = append(ix.interps, ix.computeInterps(v))
		return id
	}
	for _, col := range rhsCols {
		if _, dup := ix.colVid[col]; dup {
			continue
		}
		vals := rel.Dict(col).Values()
		m := make([]int32, len(vals))
		for i, v := range vals {
			m[i] = intern(v)
		}
		ix.colVid[col] = m
	}
	nc := ont.NumClasses()
	ix.classVid = make([]int32, nc)
	for c := 0; c < nc; c++ {
		ix.classVid[c] = intern(ont.Name(ontology.ClassID(c)))
	}

	if nv := len(ix.strs); nc > 0 && nv > 0 && nc*nv <= maxCoverBits {
		ix.stride = (nv + 63) / 64
		ix.bits = make([]uint64, nc*ix.stride)
		for vid, classes := range ix.interps {
			for _, cls := range classes {
				ix.bits[int(cls)*ix.stride+vid/64] |= 1 << (uint(vid) % 64)
			}
		}
	}
	return ix
}

// computeInterps mirrors coverage.interpretations on the dynamic path:
// names(v), plus every ancestor within theta steps when theta > 0. Always
// sorted and deduplicated (consumers are order-independent).
func (ix *covIndex) computeInterps(v string) []ontology.ClassID {
	direct := ix.ont.Names(v)
	if ix.theta == 0 {
		if len(direct) == 0 {
			return nil
		}
		out := append([]ontology.ClassID(nil), direct...)
		sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
		return out
	}
	seen := make(map[ontology.ClassID]struct{}, len(direct)*2)
	for _, cls := range direct {
		cur := cls
		for depth := 0; depth <= ix.theta && cur != ontology.NoClass; depth++ {
			seen[cur] = struct{}{}
			cur = ix.ont.Parent(cur)
		}
	}
	if len(seen) == 0 {
		return nil
	}
	out := make([]ontology.ClassID, 0, len(seen))
	for cls := range seen {
		out = append(out, cls)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// coversVid reports whether cls covers the interned value vid.
func (ix *covIndex) coversVid(cls ontology.ClassID, vid int32) bool {
	if ix.bits != nil {
		return ix.bits[int(cls)*ix.stride+int(vid)/64]&(1<<(uint(vid)%64)) != 0
	}
	s := ix.interps[vid]
	lo, hi := 0, len(s)
	for lo < hi {
		mid := (lo + hi) / 2
		if s[mid] < cls {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo < len(s) && s[lo] == cls
}

// overlayAdditions builds the coverage.extra map for a scratch ontology that
// applied the given repairs on top of the indexed base: vid → extra covering
// classes (the repaired class plus, under inheritance semantics, its
// ancestors within theta). Values never seen by the index (impossible for
// real candidates, which are data values) are skipped; the dynamic fallback
// against the scratch ontology handles them.
func (ix *covIndex) overlayAdditions(changes []OntChange) map[int32][]ontology.ClassID {
	if len(changes) == 0 {
		return nil
	}
	extra := make(map[int32][]ontology.ClassID, len(changes))
	for _, ch := range changes {
		vid, ok := ix.vids[ch.Value]
		if !ok {
			continue
		}
		add := func(cls ontology.ClassID) {
			for _, e := range extra[vid] {
				if e == cls {
					return
				}
			}
			extra[vid] = append(extra[vid], cls)
		}
		add(ch.Class)
		if ix.theta > 0 {
			cur := ch.Class
			for depth := 0; depth <= ix.theta && cur != ontology.NoClass; depth++ {
				add(cur)
				cur = ix.ont.Parent(cur)
			}
		}
	}
	for vid := range extra {
		s := extra[vid]
		sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	}
	return extra
}

// mergeClassIDs merges two sorted, deduplicated class-id lists.
func mergeClassIDs(a, b []ontology.ClassID) []ontology.ClassID {
	if len(b) == 0 {
		return a
	}
	out := make([]ontology.ClassID, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			out = append(out, a[i])
			i++
			j++
		case a[i] < b[j]:
			out = append(out, a[i])
			i++
		default:
			out = append(out, b[j])
			j++
		}
	}
	out = append(out, a[i:]...)
	return append(out, b[j:]...)
}
