// Package repair implements OFDClean, the paper's contextual repair
// framework: sense assignment per equivalence class (greedy MAD-ranked
// initialization plus EMD-guided local refinement over a dependency graph),
// beam-search ontology repair, and conflict-graph data repair, producing a
// Pareto-optimal set of (ontology, data) repairs that re-align an instance
// with a set of OFDs.
package repair

import (
	"sort"

	"github.com/fastofd/fastofd/internal/core"
	"github.com/fastofd/fastofd/internal/ontology"
	"github.com/fastofd/fastofd/internal/relation"
	"github.com/fastofd/fastofd/internal/stats"
)

// ClassKey identifies one equivalence class: the index of its OFD in Σ and
// the class representative (smallest tuple id).
type ClassKey struct {
	OFD int
	Rep int
}

// Assignment maps each equivalence class to its selected sense (an ontology
// class), or ontology.NoClass when no value of the class appears in the
// ontology.
type Assignment map[ClassKey]ontology.ClassID

// eqClass is one equivalence class x ∈ Π_X(I) for some φ: X →_syn A.
type eqClass struct {
	key    ClassKey
	ofd    core.OFD
	tuples []int
	sense  ontology.ClassID
}

// classesOf materializes the non-singleton equivalence classes of every OFD
// in Σ (singleton classes cannot violate and need no interpretation).
func classesOf(rel *relation.Relation, sigma core.Set, pc *relation.PartitionCache) []*eqClass {
	var out []*eqClass
	for i, d := range sigma {
		p := pc.Get(d.LHS)
		for ci := 0; ci < p.NumClasses(); ci++ {
			tuples := p.ClassInts(ci)
			out = append(out, &eqClass{
				key:    ClassKey{OFD: i, Rep: tuples[0]},
				ofd:    d,
				tuples: tuples,
				sense:  ontology.NoClass,
			})
		}
	}
	return out
}

// valueCounts tallies the consequent values of the class's tuples.
func (x *eqClass) valueCounts(rel *relation.Relation) map[string]int {
	counts := make(map[string]int, 4)
	for _, t := range x.tuples {
		counts[rel.String(t, x.ofd.RHS)]++
	}
	return counts
}

// initialAssignment implements Algorithm 5 (Initial_Assignment): rank the
// class's distinct consequent values by decreasing MAD score of their
// frequencies, then find the largest k′ such that the top-k′ values share a
// sense (a non-empty intersection of their sset indexes), and pick from
// those senses the one covering the most tuples.
func initialAssignment(rel *relation.Relation, cov coverage, x *eqClass) ontology.ClassID {
	counts := x.valueCounts(rel)
	values := make([]string, 0, len(counts))
	for v := range counts {
		values = append(values, v)
	}
	sort.Strings(values) // determinism before ranking
	freqs := make([]float64, len(values))
	for i, v := range values {
		freqs[i] = float64(counts[v])
	}
	rank := stats.RankByMADScore(freqs)

	for k := len(values); k >= 1; k-- {
		// Intersect sset(v) across the top-k ranked values.
		inter := make(map[ontology.ClassID]int)
		for i := 0; i < k; i++ {
			for _, cls := range cov.interpretations(values[rank[i]]) {
				inter[cls]++
			}
		}
		var potential []ontology.ClassID
		for cls, c := range inter {
			if c == k {
				potential = append(potential, cls)
			}
		}
		if len(potential) == 0 {
			continue
		}
		// Among the shared senses pick maximal tuple coverage; break ties
		// by smaller class id for determinism.
		sort.Slice(potential, func(i, j int) bool { return potential[i] < potential[j] })
		best, bestCover := ontology.NoClass, -1
		for _, cls := range potential {
			cover := 0
			for v, c := range counts {
				if cov.covers(cls, v) {
					cover += c
				}
			}
			if cover > bestCover {
				best, bestCover = cls, cover
			}
		}
		return best
	}
	return ontology.NoClass
}

// assignInitial computes the initial sense for every class.
func assignInitial(rel *relation.Relation, cov coverage, classes []*eqClass) Assignment {
	out := make(Assignment, len(classes))
	for _, x := range classes {
		x.sense = initialAssignment(rel, cov, x)
		out[x.key] = x.sense
	}
	return out
}

// uncoveredValues returns ρ_{x,λ}: the distinct consequent values of x not
// covered by sense λ. With λ = NoClass every distinct value is uncovered.
func uncoveredValues(rel *relation.Relation, cov coverage, x *eqClass, sense ontology.ClassID) []string {
	if cov.idx != nil {
		if cm := cov.idx.colVid[x.ofd.RHS]; cm != nil {
			// Distinct-by-vid without a string-keyed map.
			seen := make(map[int32]struct{}, 4)
			var out []string
			for _, t := range x.tuples {
				vid := cm[rel.Value(t, x.ofd.RHS)]
				if _, dup := seen[vid]; dup {
					continue
				}
				seen[vid] = struct{}{}
				if !cov.coversVid(sense, vid) {
					out = append(out, cov.idx.strs[vid])
				}
			}
			sort.Strings(out)
			return out
		}
	}
	counts := x.valueCounts(rel)
	var out []string
	for v := range counts {
		if !cov.covers(sense, v) {
			out = append(out, v)
		}
	}
	sort.Strings(out)
	return out
}

// uncoveredTuples returns |R(x_λ)|: the number of tuples whose value λ does
// not cover.
func uncoveredTuples(rel *relation.Relation, cov coverage, x *eqClass, sense ontology.ClassID) int {
	n := 0
	if cov.idx != nil {
		if cm := cov.idx.colVid[x.ofd.RHS]; cm != nil {
			for _, t := range x.tuples {
				if !cov.coversVid(sense, cm[rel.Value(t, x.ofd.RHS)]) {
					n++
				}
			}
			return n
		}
	}
	for _, t := range x.tuples {
		v := rel.String(t, x.ofd.RHS)
		if !cov.covers(sense, v) {
			n++
		}
	}
	return n
}
