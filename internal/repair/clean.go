package repair

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"time"

	"github.com/fastofd/fastofd/internal/core"
	"github.com/fastofd/fastofd/internal/exec"
	"github.com/fastofd/fastofd/internal/ontology"
	"github.com/fastofd/fastofd/internal/relation"
)

// Options configure OFDClean.
type Options struct {
	// Theta is the EMD threshold above which conflicting class pairs are
	// refined (paper default 5 in the discovery experiments; repair uses a
	// workload-relative weight, default 5).
	Theta float64
	// Beam is the beam width b; 0 selects the secretary rule ⌊|Cand(S)|/e⌋.
	Beam int
	// Tau bounds data repairs as a fraction of tuples (τ); repairs beyond
	// the bound are excluded from the Pareto set. Default 0.65 (the paper's
	// 65%). Set to 1 to allow unconstrained data repair.
	Tau float64
	// MaxOntologyRepairs caps the beam-search depth (k); 0 = |Cand(S)|.
	MaxOntologyRepairs int
	// SkipRefinement disables the EMD-guided local refinement (ablation).
	SkipRefinement bool
	// IsATheta switches the cleaner to INHERITANCE semantics: a sense E
	// also covers values within IsATheta is-a steps below it, so classes
	// are repaired toward inheritance OFD satisfaction (the paper's
	// stated future work). 0 (default) keeps synonym semantics.
	IsATheta int
	// OntWeight is the relative cost of one ontology addition against one
	// cell update when selecting Best from the Pareto set (the Pareto set
	// itself is weight-free). Values above 1 keep single-tuple garbage out
	// of the ontology: an addition must save more than OntWeight cell
	// updates to pay for itself. 0 selects the default of 2.
	OntWeight float64
	// MaterializeLimit bounds how many beam levels are fully materialized
	// into concrete repairs (level 0 and the deepest level always are;
	// intermediate levels are sampled geometrically). 0 selects the
	// default of 16.
	MaterializeLimit int
	// Workers caps the repair engine's parallelism (dependency-graph
	// construction, beam-search scoring, level materialization, and
	// data-repair components). 0 selects runtime.NumCPU(); 1 forces the
	// sequential path. The output is identical for every value.
	Workers int
	// NoCoverageIndex disables the interned coverage index, the refinement
	// memo tables, and the per-component materialization memo, forcing the
	// dynamic per-call ontology walks and full per-level data repair.
	// Ablation/benchmark baseline only; results are unchanged either way.
	NoCoverageIndex bool
	// Stats, when non-nil, receives per-stage spans ("clean.assign",
	// "clean.beam", "clean.materialize", …) recorded by the run. Nil
	// disables instrumentation (exec.Stats methods are nil-safe).
	Stats *exec.Stats
}

// DefaultOptions returns the paper's default configuration.
func DefaultOptions() Options {
	return Options{Theta: 5, Beam: 3, Tau: 0.65}
}

// RepairOption is one Pareto candidate: apply OntChanges to S and
// DataChanges to I.
type RepairOption struct {
	OntChanges  []OntChange
	DataChanges []CellChange
	OntDist     int // dist(S, S')
	DataDist    int // dist(I, I')
	WithinTau   bool
}

// Result is the output of Clean.
type Result struct {
	// Assignment is the final sense per equivalence class.
	Assignment Assignment
	// Pareto holds the non-dominated (dist_S, dist_I) repairs within τ.
	Pareto []RepairOption
	// Best is the Pareto repair minimizing dist_S + dist_I (ties to fewer
	// ontology changes); nil when no repair fits τ.
	Best *RepairOption
	// Instance and Ontology are the repaired I′ and S′ for Best (the input
	// instance and ontology are not modified).
	Instance *relation.Relation
	Ontology *ontology.Ontology
	// Stats.
	Candidates int // |Cand(S)|
	BeamWidth  int
	ClassCount int
	EdgeCount  int
	Workers    int // worker-pool width actually used
	// AssignElapsed covers the whole sense-assignment phase (coverage
	// index + initial assignment + dependency graph + refinement);
	// RefineElapsed is the EMD-guided local-refinement slice of it.
	// RepairElapsed covers candidates + beam search + materialization;
	// BeamElapsed and MaterializeElapsed are its two dominant slices.
	AssignElapsed      time.Duration
	RefineElapsed      time.Duration
	RepairElapsed      time.Duration
	BeamElapsed        time.Duration
	MaterializeElapsed time.Duration
}

// Clean runs OFDClean: sense assignment, ontology repair via beam search,
// and τ-constrained data repair, returning a Pareto-optimal set of repairs
// and the applied best repair. The inputs are not modified.
func Clean(rel *relation.Relation, ont *ontology.Ontology, sigma core.Set, opts Options) (*Result, error) {
	return CleanContext(context.Background(), rel, ont, sigma, opts)
}

// CleanContext is Clean with cooperative cancellation. Cancellation is
// checked at work-item granularity — between dependency-graph pairs,
// between beam-search levels, between materializations, and between data-
// repair components — so a cancelled run returns within one work item. The
// partial Result is well-formed for the phases that completed: Assignment
// and the counters are set once sense assignment finished, Pareto/Best
// cover the levels materialized before the cancel, and Instance/Ontology
// are never nil (the unrepaired clones when no repair was chosen). The
// error satisfies errors.Is(err, ctx.Err()).
func CleanContext(ctx context.Context, rel *relation.Relation, ont *ontology.Ontology, sigma core.Set, opts Options) (*Result, error) {
	if err := validateSigma(rel, sigma); err != nil {
		return nil, err
	}
	if opts.Tau <= 0 {
		opts.Tau = 0.65
	}
	if opts.Theta == 0 {
		opts.Theta = 5
	}
	if opts.OntWeight <= 0 {
		opts.OntWeight = 2
	}
	if opts.MaterializeLimit <= 0 {
		opts.MaterializeLimit = 16
	}
	workers := exec.Workers(opts.Workers)
	res := &Result{Workers: workers}
	// fail finalizes a cancelled run: whatever phases completed stay in
	// res, and the applied instance/ontology fall back to clones of the
	// inputs so the partial result upholds Clean's non-nil guarantees.
	fail := func(err error) (*Result, error) {
		if res.Instance == nil {
			res.Instance, res.Ontology = rel.Clone(), ont.Clone()
		}
		return res, err
	}

	// --- Sense assignment (Algorithm 7).
	assignStart := time.Now()
	assignSpan := opts.Stats.Span("clean.assign")
	assignSpan.Workers(workers)
	cov := coverage{ont: ont, theta: opts.IsATheta}
	if !opts.NoCoverageIndex {
		cov.idx = buildCovIndex(rel, ont, opts.IsATheta, sigma.ConsequentAttrs())
	}
	pc := relation.NewPartitionCache(rel)
	classes := classesOf(rel, sigma, pc)
	assignSpan.Items(len(classes))
	assignment := assignInitial(rel, cov, classes)
	g, err := buildDepGraph(ctx, rel, cov, classes, workers)
	if err != nil {
		assignSpan.End()
		return fail(err)
	}
	if !opts.SkipRefinement {
		refineStart := time.Now()
		refineSpan := opts.Stats.Span("clean.refine")
		localRefinement(rel, cov, g, opts.Theta, opts.OntWeight, assignment)
		refineSpan.End()
		res.RefineElapsed = time.Since(refineStart)
	}
	res.Assignment = assignment
	res.ClassCount = len(classes)
	res.EdgeCount = len(g.edges)
	res.AssignElapsed = time.Since(assignStart)
	assignSpan.End()

	// --- Ontology repair candidates and beam search (Algorithm 8).
	repairStart := time.Now()
	beamSpan := opts.Stats.Span("clean.beam")
	beamSpan.Workers(workers)
	cands := ontologyCandidates(rel, cov, classes)
	res.Candidates = len(cands)
	beam := opts.Beam
	if beam <= 0 {
		beam = SecretaryBeam(len(cands))
	}
	res.BeamWidth = beam
	levels, err := beamSearch(ctx, rel, cov, classes, cands, beam, opts.MaxOntologyRepairs, workers)
	beamSpan.Items(len(levels))
	beamSpan.End()
	res.BeamElapsed = time.Since(repairStart)
	if err != nil {
		return fail(err)
	}

	// --- Materialize selected levels into full repairs and keep the
	// Pareto frontier of (dist_S, dist_I) within τ. Level 0 and the
	// deepest level always materialize; intermediate levels are sampled
	// geometrically up to MaterializeLimit. At each selected level every
	// surviving frontier node (up to b of them) is materialized and the
	// one with the fewest actual repairs wins — the δ estimate is additive
	// and ignores cross-OFD interactions, so this exact evaluation is
	// where a wider beam buys accuracy.
	tauLimit := int(opts.Tau * float64(rel.NumRows()) * float64(len(sigma.ConsequentAttrs())))
	matStart := time.Now()
	selected := selectLevels(len(levels), opts.MaterializeLimit)
	// Component dirty-filter: coverage only grows under candidate ontology
	// additions and components never share writable cells, so a component
	// whose classes all satisfy their OFDs under the base ontology needs no
	// repair at any beam level. Filtering here — once — means each of the
	// up-to-MaterializeLimit·b materializations repairs only the dirty
	// components instead of rechecking every class.
	var dirtyComps [][]*eqClass
	for _, comp := range connectedComponents(classes) {
		for _, x := range comp {
			if !classSatisfiedUnder(rel, cov, x) {
				dirtyComps = append(dirtyComps, comp)
				break
			}
		}
	}
	// Every selected level is independent (each clones its own scratch
	// relation and ontology), so levels fan out over the worker pool and
	// land in per-level slots merged in level order.
	mat := newMaterializer(rel, ont, cov, dirtyComps, cands, !opts.NoCoverageIndex)
	matSpan := opts.Stats.Span("clean.materialize")
	matSpan.Workers(workers)
	matSpan.Items(len(selected))
	bests := make([]*RepairOption, len(selected))
	matErr := exec.For(ctx, len(selected), workers, func(_, k int) {
		var best *RepairOption
		for _, nd := range levels[selected[k]].frontier {
			opt, err := mat.run(ctx, nd.members, workers)
			if err != nil {
				// A repair cut short by cancellation under-counts its cell
				// changes; leave the level's slot nil rather than keep a
				// best chosen from wrong distances.
				return
			}
			if best == nil || opt.DataDist < best.DataDist {
				b := opt
				best = &b
			}
		}
		bests[k] = best
	})
	matSpan.End()
	// On cancellation only fully materialized levels wrote their slot, so
	// the Pareto set below covers exactly the levels that finished.
	var options []RepairOption
	for _, best := range bests {
		if best == nil {
			continue
		}
		best.WithinTau = best.DataDist <= tauLimit
		options = append(options, *best)
	}
	res.MaterializeElapsed = time.Since(matStart)
	res.Pareto = paretoFilter(options)
	res.RepairElapsed = time.Since(repairStart)
	if matErr != nil {
		// Keep the partial Pareto set but do not apply a best repair chosen
		// from incomplete evidence.
		return fail(matErr)
	}

	// --- Select and apply the best repair: minimize the weighted total
	// cost; ties go to fewer ontology changes (data updates are local,
	// ontology additions are global).
	cost := func(o *RepairOption) float64 {
		return opts.OntWeight*float64(o.OntDist) + float64(o.DataDist)
	}
	for i := range res.Pareto {
		opt := &res.Pareto[i]
		if res.Best == nil || cost(opt) < cost(res.Best) ||
			(cost(opt) == cost(res.Best) && opt.OntDist < res.Best.OntDist) {
			res.Best = opt
		}
	}
	if res.Best != nil {
		res.Instance, res.Ontology = applyRepair(rel, ont, res.Best)
	} else {
		res.Instance, res.Ontology = rel.Clone(), ont.Clone()
	}
	return res, nil
}

// validateSigma enforces the paper's scope assumption: no attribute occurs
// on the left side of one OFD and the right side of another, so repairs to
// consequents never change any equivalence class.
func validateSigma(rel *relation.Relation, sigma core.Set) error {
	var lhs, rhs relation.AttrSet
	for _, d := range sigma {
		lhs = lhs.Union(d.LHS)
		rhs = rhs.With(d.RHS)
	}
	if inter := lhs.Intersect(rhs); !inter.IsEmpty() {
		return fmt.Errorf("repair: attributes %s appear on both sides of Σ; OFDClean requires antecedents and consequents to be disjoint", inter.Format(rel.Schema()))
	}
	return nil
}

// selectLevels picks which beam levels to materialize: every level while
// few, otherwise level 0, a geometric sample of intermediates, and the
// deepest level.
func selectLevels(n, limit int) []int {
	if n <= limit {
		out := make([]int, n)
		for i := range out {
			out[i] = i
		}
		return out
	}
	out := []int{0}
	// Dense prefix for half the budget, geometric tail for the rest.
	dense := limit / 2
	for i := 1; i <= dense; i++ {
		out = append(out, i)
	}
	last := dense
	for len(out) < limit-1 {
		next := last + last/2 + 1
		if next >= n-1 {
			break
		}
		out = append(out, next)
		last = next
	}
	if out[len(out)-1] != n-1 {
		out = append(out, n-1)
	}
	return out
}

// materializer evaluates beam nodes into concrete repairs. Across the
// up-to-MaterializeLimit·b materializations most components face the same
// effective overlay — a component's repair depends only on the candidate
// additions whose value occurs among its own consequent values — so
// per-component repairs are memoized under the relevant candidate subset,
// and the scratch relation/ontology clones happen only on cache misses.
// Data repair reads eqClass fields but never mutates them, so concurrent
// materializations share the component slices safely.
type materializer struct {
	rel   *relation.Relation
	ont   *ontology.Ontology
	cov   coverage
	comps [][]*eqClass
	cands []ontCandidate
	// compVals[ci] is component ci's set of consequent values in the input
	// instance, the domain of the relevance test.
	compVals []map[string]struct{}
	memo     bool
	mu       sync.Mutex
	cache    map[string][]CellChange
}

func newMaterializer(rel *relation.Relation, ont *ontology.Ontology, cov coverage, comps [][]*eqClass, cands []ontCandidate, memo bool) *materializer {
	m := &materializer{rel: rel, ont: ont, cov: cov, comps: comps, cands: cands, memo: memo}
	if !memo {
		return m
	}
	m.cache = make(map[string][]CellChange)
	m.compVals = make([]map[string]struct{}, len(comps))
	for ci, comp := range comps {
		vals := make(map[string]struct{}, 8)
		for _, x := range comp {
			for _, t := range x.tuples {
				vals[rel.String(t, x.ofd.RHS)] = struct{}{}
			}
		}
		m.compVals[ci] = vals
	}
	return m
}

// run materializes one beam node. Candidate values are pairwise distinct
// and absent from the base ontology, so every member addition applies. A
// cancelled context stops between data-repair components; the incomplete
// option is returned with the wrapped error and must be discarded.
func (m *materializer) run(ctx context.Context, members []int, workers int) (RepairOption, error) {
	ontChanges := make([]OntChange, 0, len(members))
	for _, mi := range members {
		ontChanges = append(ontChanges, m.cands[mi].change)
	}
	var dataChanges []CellChange
	var err error
	if !m.memo {
		workRel, workCov := m.scratch(ontChanges)
		dataChanges, err = dataRepairComps(ctx, workRel, workCov, m.comps, workers)
	} else {
		// Memoized path: look up each component's repair under the subset
		// of additions relevant to it; clone scratch state only when some
		// component actually needs recomputation. Concurrent misses on the
		// same key recompute the same deterministic result, so the cache
		// needs no per-key synchronization beyond the map lock.
		var workRel *relation.Relation
		var workCov coverage
		var key strings.Builder
		for ci, comp := range m.comps {
			if err = exec.Interrupted(ctx, "repair materialization"); err != nil {
				break
			}
			key.Reset()
			fmt.Fprintf(&key, "%d", ci)
			for _, mi := range members {
				if _, ok := m.compVals[ci][m.cands[mi].change.Value]; ok {
					fmt.Fprintf(&key, ",%d", mi)
				}
			}
			m.mu.Lock()
			ch, ok := m.cache[key.String()]
			m.mu.Unlock()
			if !ok {
				if workRel == nil {
					workRel, workCov = m.scratch(ontChanges)
				}
				ch = repairComponent(workRel, workCov, comp)
				m.mu.Lock()
				m.cache[key.String()] = ch
				m.mu.Unlock()
			}
			dataChanges = append(dataChanges, ch...)
		}
	}
	return RepairOption{
		OntChanges:  ontChanges,
		DataChanges: dataChanges,
		OntDist:     len(ontChanges),
		DataDist:    len(dataChanges),
	}, err
}

// scratch clones the instance and ontology and applies the candidate
// additions; the shared coverage index is reused read-only with the
// additions as a per-materialization overlay instead of a rebuilt index.
func (m *materializer) scratch(ontChanges []OntChange) (*relation.Relation, coverage) {
	workOnt := m.ont.Clone()
	for _, ch := range ontChanges {
		workOnt.AddValue(ch.Class, ch.Value)
	}
	return m.rel.Clone(), m.cov.withOverlay(workOnt, ontChanges)
}

// applyRepair produces the repaired (I′, S′) for a chosen option.
func applyRepair(rel *relation.Relation, ont *ontology.Ontology, opt *RepairOption) (*relation.Relation, *ontology.Ontology) {
	outRel := rel.Clone()
	outOnt := ont.Clone()
	for _, ch := range opt.OntChanges {
		outOnt.AddValue(ch.Class, ch.Value)
	}
	for _, ch := range opt.DataChanges {
		outRel.SetString(ch.Row, ch.Col, ch.To)
	}
	return outRel, outOnt
}

// paretoFilter keeps the non-dominated options within τ (Definition 7:
// no other option improves one distance without worsening the other).
func paretoFilter(options []RepairOption) []RepairOption {
	var out []RepairOption
	for i, a := range options {
		if !a.WithinTau {
			continue
		}
		dominated := false
		for j, b := range options {
			if i == j || !b.WithinTau {
				continue
			}
			if b.OntDist <= a.OntDist && b.DataDist <= a.DataDist &&
				(b.OntDist < a.OntDist || b.DataDist < a.DataDist) {
				dominated = true
				break
			}
		}
		if !dominated {
			out = append(out, a)
		}
	}
	return out
}
