package repair

import (
	"sort"

	"github.com/fastofd/fastofd/internal/ontology"
)

// coverage abstracts which ontology classes can "interpret" a value. At
// theta = 0 this is exactly the synonym semantics of the paper's OFDClean;
// with theta > 0 a class E also covers every value within theta is-a steps
// below it, extending the framework to inheritance OFDs — the paper's
// stated future work.
//
// When idx is set, lookups go through the interned coverage index built once
// per Clean call; the dynamic ontology walks below remain as the fallback
// for values the index has never seen (and for callers that construct a bare
// coverage{ont: ...}). extra overlays the per-materialization ontology
// additions on top of the shared immutable index, so scratch repairs never
// rebuild or mutate it.
type coverage struct {
	ont   *ontology.Ontology
	theta int
	idx   *covIndex
	// extra maps vid -> additional covering classes (sorted) introduced by
	// a scratch ontology repair; nil when idx reflects ont exactly.
	extra map[int32][]ontology.ClassID
}

// withOverlay derives a coverage for a scratch ontology that applied the
// given repairs on top of the indexed base ontology.
func (c coverage) withOverlay(scratch *ontology.Ontology, changes []OntChange) coverage {
	out := coverage{ont: scratch, theta: c.theta, idx: c.idx}
	if c.idx != nil {
		out.extra = c.idx.overlayAdditions(changes)
	}
	return out
}

// coversVid reports whether cls interprets the interned value vid.
func (c coverage) coversVid(cls ontology.ClassID, vid int32) bool {
	if cls == ontology.NoClass {
		return false
	}
	if c.idx.coversVid(cls, vid) {
		return true
	}
	if c.extra != nil {
		for _, e := range c.extra[vid] {
			if e == cls {
				return true
			}
		}
	}
	return false
}

// covers reports whether class cls interprets value v: v is a synonym of
// cls, or (theta > 0) v belongs to a class at most theta steps below cls.
func (c coverage) covers(cls ontology.ClassID, v string) bool {
	if cls == ontology.NoClass {
		return false
	}
	if c.idx != nil {
		if vid, ok := c.idx.vids[v]; ok {
			return c.coversVid(cls, vid)
		}
	}
	if c.ont.HasSynonym(cls, v) {
		return true
	}
	if c.theta == 0 {
		return false
	}
	for _, d := range c.ont.Names(v) {
		if pl := c.ont.PathLen(cls, d); pl >= 0 && pl <= c.theta {
			return true
		}
	}
	return false
}

// interpsVid returns the classes covering the interned value vid (index
// path only). The result is shared with the index and must not be modified.
func (c coverage) interpsVid(vid int32) []ontology.ClassID {
	base := c.idx.interps[vid]
	if c.extra == nil {
		return base
	}
	add := c.extra[vid]
	if len(add) == 0 {
		return base
	}
	return mergeClassIDs(base, add)
}

// interpretations returns the classes that cover v (its sset under the
// chosen semantics): names(v) plus, when theta > 0, every ancestor within
// theta steps. The returned slice may be shared and must not be modified.
func (c coverage) interpretations(v string) []ontology.ClassID {
	if c.idx != nil {
		if vid, ok := c.idx.vids[v]; ok {
			return c.interpsVid(vid)
		}
	}
	direct := c.ont.Names(v)
	if c.theta == 0 {
		return direct
	}
	seen := make(map[ontology.ClassID]struct{}, len(direct)*2)
	for _, cls := range direct {
		cur := cls
		for depth := 0; depth <= c.theta && cur != ontology.NoClass; depth++ {
			seen[cur] = struct{}{}
			cur = c.ont.Parent(cur)
		}
	}
	out := make([]ontology.ClassID, 0, len(seen))
	for cls := range seen {
		out = append(out, cls)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// shared returns the classes covering every value in vals (∩ of
// interpretations over distinct values); empty when no common
// interpretation exists.
func (c coverage) shared(vals []string) []ontology.ClassID {
	if len(vals) == 0 {
		return nil
	}
	count := make(map[ontology.ClassID]int)
	seen := make(map[string]struct{}, len(vals))
	distinct := 0
	for _, v := range vals {
		if _, dup := seen[v]; dup {
			continue
		}
		seen[v] = struct{}{}
		distinct++
		for _, cls := range c.interpretations(v) {
			count[cls]++
		}
	}
	var out []ontology.ClassID
	for cls, n := range count {
		if n == distinct {
			out = append(out, cls)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
