package repair

import (
	"testing"

	"github.com/fastofd/fastofd/internal/core"
	"github.com/fastofd/fastofd/internal/ontology"
	"github.com/fastofd/fastofd/internal/relation"
)

// refineFixture builds a two-class, one-edge dependency graph over a single
// consequent column MED with hand-picked senses, so each refineEdge outcome
// branch can be forced directly.
type refineFixture struct {
	rel    *relation.Relation
	ont    *ontology.Ontology
	fda    ontology.ClassID
	moh    ontology.ClassID
	g      *depGraph
	x1, x2 *eqClass
}

func newRefineFixture(t *testing.T, medValues []string, edgeWeight float64, ontBuild func(o *ontology.Ontology) (fda, moh ontology.ClassID)) *refineFixture {
	t.Helper()
	ont := ontology.New()
	fda, moh := ontBuild(ont)
	schema := relation.MustSchema("K1", "K2", "MED")
	rows := make([][]string, len(medValues))
	for i, v := range medValues {
		rows[i] = []string{"k1", "k2", v}
	}
	rel, err := relation.FromRows(schema, rows)
	if err != nil {
		t.Fatal(err)
	}
	tuples := make([]int, len(medValues))
	for i := range tuples {
		tuples[i] = i
	}
	x1 := &eqClass{key: ClassKey{OFD: 0, Rep: 0}, ofd: core.OFD{LHS: relation.Single(0), RHS: 2}, tuples: tuples, sense: fda}
	x2 := &eqClass{key: ClassKey{OFD: 1, Rep: 0}, ofd: core.OFD{LHS: relation.Single(1), RHS: 2}, tuples: tuples, sense: moh}
	g := &depGraph{
		classes: []*eqClass{x1, x2},
		adj:     [][]int{{0}, {0}},
		edges:   []depEdge{{a: 0, b: 1, weight: edgeWeight, overlap: tuples}},
	}
	return &refineFixture{rel: rel, ont: ont, fda: fda, moh: moh, g: g, x1: x1, x2: x2}
}

// ctx builds a refineCtx over the fixture; indexed toggles the interned
// coverage index so every branch is exercised on both lookup paths.
func (f *refineFixture) ctx(indexed bool) *refineCtx {
	cov := coverage{ont: f.ont}
	if indexed {
		cov.idx = buildCovIndex(f.rel, f.ont, 0, []int{2})
	}
	return &refineCtx{rel: f.rel, cov: cov, g: f.g, ontWeight: 2, unc: make(map[uncKey]int)}
}

// bothPaths runs the scenario with and without the coverage index and
// requires identical outcomes.
func bothPaths(t *testing.T, build func(t *testing.T) *refineFixture, want refineOutcome, check func(t *testing.T, f *refineFixture)) {
	t.Helper()
	for _, indexed := range []bool{false, true} {
		f := build(t)
		got := f.ctx(indexed).refineEdge(0, 0)
		if got != want {
			t.Errorf("indexed=%v: refineEdge = %d, want %d", indexed, got, want)
		}
		if check != nil {
			check(t, f)
		}
	}
}

// sharedValueOntology: both senses cover "c"; nothing covers "z".
func sharedValueOntology(o *ontology.Ontology) (ontology.ClassID, ontology.ClassID) {
	fda := o.MustAddClass("fda-drug", "FDA", ontology.NoClass, "c")
	moh := o.MustAddClass("moh-drug", "MoH", ontology.NoClass, "c")
	return fda, moh
}

func TestRefineEdgePreferOntologyRepair(t *testing.T) {
	// Outlier z occurs twice: costOnt = 2·(1+1) = 4 equals costData = 2+2,
	// no sense covers z, so ontology repair wins the tie.
	bothPaths(t,
		func(t *testing.T) *refineFixture {
			return newRefineFixture(t, []string{"c", "z", "z"}, 10, sharedValueOntology)
		},
		preferOntologyRepair, nil)
}

func TestRefineEdgePreferDataRepair(t *testing.T) {
	// Outlier z occurs once: costOnt = 2·(1+1) = 4 exceeds costData = 1+1;
	// updating the single dirty tuple is cheaper than two weighted
	// ontology additions.
	bothPaths(t,
		func(t *testing.T) *refineFixture {
			return newRefineFixture(t, []string{"c", "c", "z"}, 10, sharedValueOntology)
		},
		preferDataRepair, nil)
}

// disjointOntology: FDA covers only "a", MoH only "b" — each sense is a
// reassignment candidate for the other's outlier.
func disjointOntology(o *ontology.Ontology) (ontology.ClassID, ontology.ClassID) {
	fda := o.MustAddClass("fda-drug", "FDA", ontology.NoClass, "a")
	moh := o.MustAddClass("moh-drug", "MoH", ontology.NoClass, "b")
	return fda, moh
}

func TestRefineEdgeReassigns(t *testing.T) {
	// Reassigning x2 from MoH to FDA collapses both histograms to
	// {fda-drug, b}: the new EMD 0 beats the edge weight 10, so the
	// reassignment sticks and the edge weight drops.
	bothPaths(t,
		func(t *testing.T) *refineFixture {
			return newRefineFixture(t, []string{"a", "b"}, 10, disjointOntology)
		},
		reassigned,
		func(t *testing.T, f *refineFixture) {
			if f.x2.sense != f.fda {
				t.Errorf("x2 sense = %d, want reassigned to %d", f.x2.sense, f.fda)
			}
			if f.g.edges[0].weight != 0 {
				t.Errorf("edge weight = %v, want 0 after reassignment", f.g.edges[0].weight)
			}
		})
}

func TestRefineEdgeReassignRevertsWhenEMDNotImproved(t *testing.T) {
	// Same candidate reassignment, but the edge weight is already 0: the
	// new EMD cannot improve on it, so the tentative sense flip must be
	// rolled back and the original assignment kept.
	bothPaths(t,
		func(t *testing.T) *refineFixture {
			return newRefineFixture(t, []string{"a", "b"}, 0, disjointOntology)
		},
		keepSenses,
		func(t *testing.T, f *refineFixture) {
			if f.x2.sense != f.moh {
				t.Errorf("x2 sense = %d, want reverted to %d", f.x2.sense, f.moh)
			}
			if f.g.edges[0].weight != 0 {
				t.Errorf("edge weight = %v, want unchanged 0", f.g.edges[0].weight)
			}
		})
}

func TestCoverageIndexMatchesDynamicPath(t *testing.T) {
	// The interned index must agree with the dynamic ontology walks on
	// covers/interpretations/shared for every (class, value) pair of a
	// generated workload, under both synonym and inheritance semantics.
	o := ontology.New()
	root := o.MustAddClass("analgesic", "FAM", ontology.NoClass)
	asp := o.MustAddClass("aspirin", "FDA", root, "ASA", "acetylsalicylic")
	o.MustAddClass("ibuprofen", "FDA", root, "advil", "nurofen")
	schema := relation.MustSchema("K", "MED")
	rel, err := relation.FromRows(schema, [][]string{
		{"k", "ASA"}, {"k", "advil"}, {"k", "aspirin"}, {"k", "unknown"}, {"k", "analgesic"},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, theta := range []int{0, 1, 2} {
		dyn := coverage{ont: o, theta: theta}
		idx := coverage{ont: o, theta: theta, idx: buildCovIndex(rel, o, theta, []int{1})}
		for r := 0; r < rel.NumRows(); r++ {
			v := rel.String(r, 1)
			for _, cls := range o.AllClasses() {
				if dyn.covers(cls, v) != idx.covers(cls, v) {
					t.Errorf("theta=%d covers(%s/%d, %q): dynamic %v != indexed %v",
						theta, o.Name(cls), cls, v, dyn.covers(cls, v), idx.covers(cls, v))
				}
			}
			di, ii := dyn.interpretations(v), idx.interpretations(v)
			if len(di) != len(ii) {
				t.Errorf("theta=%d interpretations(%q): dynamic %v != indexed %v", theta, v, di, ii)
			}
		}
		ds, is := dyn.shared([]string{"ASA", "aspirin"}), idx.shared([]string{"ASA", "aspirin"})
		if len(ds) != len(is) {
			t.Errorf("theta=%d shared: dynamic %v != indexed %v", theta, ds, is)
		}
	}
	// Overlay: adding a value to a class must register on the indexed path
	// exactly as on a freshly cloned dynamic ontology.
	scratch := o.Clone()
	scratch.AddValue(asp, "unknown")
	base := coverage{ont: o, theta: 1, idx: buildCovIndex(rel, o, 1, []int{1})}
	over := base.withOverlay(scratch, []OntChange{{Class: asp, Value: "unknown"}})
	dyn := coverage{ont: scratch, theta: 1}
	for _, cls := range scratch.AllClasses() {
		if over.covers(cls, "unknown") != dyn.covers(cls, "unknown") {
			t.Errorf("overlay covers(%s, unknown): indexed %v != dynamic %v",
				scratch.Name(cls), over.covers(cls, "unknown"), dyn.covers(cls, "unknown"))
		}
	}
	if got := over.covers(root, "unknown"); !got {
		t.Errorf("overlay: inheritance theta=1 should lift the added value to the parent class")
	}
}
