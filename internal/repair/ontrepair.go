package repair

import (
	"context"
	"math"
	"sort"

	"github.com/fastofd/fastofd/internal/exec"
	"github.com/fastofd/fastofd/internal/ontology"
	"github.com/fastofd/fastofd/internal/relation"
)

// OntChange is one ontology repair: value added to a class (sense).
type OntChange struct {
	Class ontology.ClassID
	Value string
}

// ontCandidate is a candidate ontology repair: a data value absent from the
// ontology, to be added under the sense assigned to the class it appears
// in, weighted by how many tuples it would legitimize.
type ontCandidate struct {
	change OntChange
	tuples int
}

// ontologyCandidates computes Cand(S): for every equivalence class, the
// consequent values not present anywhere in S (under the class's assigned
// sense). Values seen in multiple classes aggregate their tuple counts;
// the sense of the class with the most affected tuples wins.
func ontologyCandidates(rel *relation.Relation, cov coverage, classes []*eqClass) []ontCandidate {
	type key struct {
		cls ontology.ClassID
		val string
	}
	counts := make(map[key]int)
	for _, x := range classes {
		if x.sense == ontology.NoClass {
			continue // no interpretation to repair under
		}
		for _, t := range x.tuples {
			v := rel.String(t, x.ofd.RHS)
			if cov.ont.Contains(v) {
				continue
			}
			counts[key{x.sense, v}]++
		}
	}
	// Keep, per value, the sense with the highest tuple count.
	best := make(map[string]ontCandidate)
	for k, c := range counts {
		cur, ok := best[k.val]
		if !ok || c > cur.tuples || (c == cur.tuples && k.cls < cur.change.Class) {
			best[k.val] = ontCandidate{change: OntChange{Class: k.cls, Value: k.val}, tuples: c}
		}
	}
	out := make([]ontCandidate, 0, len(best))
	for _, c := range best {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].tuples != out[j].tuples {
			return out[i].tuples > out[j].tuples
		}
		return out[i].change.Value < out[j].change.Value
	})
	return out
}

// SecretaryBeam returns the beam size b = ⌊w/e⌋ recommended by the
// secretary-problem analysis (§6.1), with a floor of 1.
func SecretaryBeam(w int) int {
	b := int(math.Floor(float64(w) / math.E))
	if b < 1 {
		b = 1
	}
	return b
}

// beamNode is a subset of candidate repairs under evaluation.
type beamNode struct {
	members []int // candidate indexes, ascending
	delta   int   // estimated data repairs remaining after applying members
}

// repairEstimator scores candidate ontology-repair sets: δ(v_k) is the
// number of tuples whose value the assigned sense does not cover after the
// hypothetical additions. Candidate gains are independent (a candidate
// covers exactly its own (sense, value) pair and candidates are
// value-disjoint), so δ(members) = base − Σ gain(member); the estimator
// precomputes the per-candidate gains once, making each node O(|members|).
type repairEstimator struct {
	base int
	gain []int
}

func newRepairEstimator(rel *relation.Relation, cov coverage, classes []*eqClass, cands []ontCandidate) *repairEstimator {
	est := &repairEstimator{gain: make([]int, len(cands))}
	candIdx := make(map[OntChange]int, len(cands))
	for i, c := range cands {
		candIdx[c.change] = i
	}
	for _, x := range classes {
		counts := x.valueCounts(rel)
		if len(counts) == 1 {
			continue // a constant class is satisfied regardless
		}
		for v, c := range counts {
			if cov.covers(x.sense, v) {
				continue
			}
			est.base += c
			if i, ok := candIdx[OntChange{Class: x.sense, Value: v}]; ok {
				est.gain[i] += c
			}
		}
	}
	return est
}

func (est *repairEstimator) delta(members []int) int {
	d := est.base
	for _, m := range members {
		d -= est.gain[m]
	}
	if d < 0 {
		d = 0
	}
	return d
}

// beamLevel is the surviving frontier (top-b nodes by estimated δ) at one
// lattice level.
type beamLevel struct {
	frontier []beamNode
}

// beamSearch implements Algorithm 8 (Ontology_Repair): traverse the
// set-containment lattice of candidate ontology repairs level by level,
// expanding only the top-b nodes with the smallest estimated data-repair
// counts, and return each level's frontier (level 0 first). The caller
// materializes frontier nodes with the exact repair procedure and keeps
// the best — which is where beam width buys accuracy, since the estimate
// ignores cross-OFD interactions. maxK caps the lattice depth; 0 means
// |Cand(S)|. The search stops early once no remaining candidate reduces δ.
//
// Candidate δ-scoring fans out over the frontier nodes: each node's
// expansions land in a per-node slot and the slots are concatenated in
// frontier order, which reproduces the sequential append order exactly, so
// the stable sort — and the whole search — is identical for any worker
// count.
// A cancelled context stops the search between levels (and between the
// per-node expansions of one level); the levels completed so far are
// returned with the wrapped error — each is a valid frontier, so partial
// materialization stays sound.
func beamSearch(ctx context.Context, rel *relation.Relation, cov coverage, classes []*eqClass, cands []ontCandidate, b, maxK, workers int) ([]beamLevel, error) {
	if maxK <= 0 || maxK > len(cands) {
		maxK = len(cands)
	}
	if b < 1 {
		b = SecretaryBeam(len(cands))
	}
	est := newRepairEstimator(rel, cov, classes, cands)
	// Order candidates by decreasing estimated gain so that high-value
	// subsets are reachable under ascending-index enumeration (expansion
	// only appends candidates after a node's last member).
	order := make([]int, len(cands))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return est.gain[order[a]] > est.gain[order[b]] })
	pos := make([]int, len(cands)) // candidate -> position in order
	for p, c := range order {
		pos[c] = p
	}

	base := beamNode{delta: est.base}
	perLevel := []beamLevel{{frontier: []beamNode{base}}}
	frontier := []beamNode{base}
	for k := 1; k <= maxK; k++ {
		// Expand each frontier node with every candidate whose position
		// follows the node's last member (set semantics, no duplicates).
		perNode := make([][]beamNode, len(frontier))
		err := exec.For(ctx, len(frontier), workers, func(_, fi int) {
			nd := frontier[fi]
			start := 0
			if len(nd.members) > 0 {
				start = pos[nd.members[len(nd.members)-1]] + 1
			}
			var out []beamNode
			for p := start; p < len(order); p++ {
				c := order[p]
				members := append(append(make([]int, 0, len(nd.members)+1), nd.members...), c)
				out = append(out, beamNode{members: members, delta: est.delta(members)})
			}
			perNode[fi] = out
		})
		if err != nil {
			// Keep only whole levels: the interrupted level's partial
			// expansions are discarded.
			return perLevel, err
		}
		var nextNodes []beamNode
		for _, out := range perNode {
			nextNodes = append(nextNodes, out...)
		}
		if len(nextNodes) == 0 {
			break
		}
		sort.SliceStable(nextNodes, func(i, j int) bool { return nextNodes[i].delta < nextNodes[j].delta })
		if len(nextNodes) > b {
			nextNodes = nextNodes[:b]
		}
		prevBest := perLevel[len(perLevel)-1].frontier[0].delta
		if nextNodes[0].delta >= prevBest {
			break // no remaining candidate reduces the repair estimate
		}
		perLevel = append(perLevel, beamLevel{frontier: nextNodes})
		frontier = nextNodes
		if nextNodes[0].delta == 0 {
			break // consistency reached; deeper levels only add ontology cost
		}
	}
	return perLevel, nil
}
