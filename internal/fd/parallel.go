package fd

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// parallelFor runs fn(worker, i) for every i in [0, n), fanning out over at
// most `workers` goroutines. Iterations are claimed from a shared atomic
// counter (work stealing), so uneven per-item costs — one huge cluster next
// to many tiny ones, one consequent with a deep cover search — balance
// automatically. Callers keep the output deterministic by writing results
// into slot i and merging sequentially afterwards; worker ids (always <
// workers) let them retain per-worker scratch such as ProductBuffers. With
// workers <= 1 or n <= 1 everything runs inline on worker 0, so the
// sequential path executes exactly the same code as the parallel one.
func parallelFor(n, workers int, fn func(worker, i int)) {
	if n <= 0 {
		return
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 || n == 1 {
		for i := 0; i < n; i++ {
			fn(0, i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(worker int) {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(worker, i)
			}
		}(w)
	}
	wg.Wait()
}

// workerCount resolves an Options.Workers value: 0 selects NumCPU, anything
// else is used as given (1 forces the sequential path).
func workerCount(w int) int {
	if w > 0 {
		return w
	}
	return runtime.NumCPU()
}
