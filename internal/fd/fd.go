// Package fd implements the seven functional-dependency discovery
// algorithms the paper benchmarks FastOFD against (its Metanome
// comparators): TANE, FUN, FDMine, DFD, DepMiner, FastFDs, and FDep.
// All algorithms take a relation and return the set of minimal,
// non-trivial functional dependencies X → A that hold on it (FDMine
// additionally reports its raw, redundancy-heavy output size, matching the
// behaviour the paper observes). Dependencies reuse the core.OFD type,
// since an FD is an OFD in which every value has a single literal
// interpretation.
package fd

import (
	"fmt"

	"github.com/fastofd/fastofd/internal/core"
	"github.com/fastofd/fastofd/internal/relation"
)

// FD is a functional dependency with a single consequent attribute.
type FD = core.OFD

// Result is the output of one discovery algorithm.
type Result struct {
	Algorithm string
	FDs       core.Set // minimal non-trivial FDs
	// RawCount is the number of dependencies the algorithm materialized
	// before minimization (differs from len(FDs) only for FDMine, which
	// emits non-minimal dependencies — the paper reports ~24x).
	RawCount int
}

// Algorithm names accepted by Discover.
const (
	TANE     = "tane"
	FUN      = "fun"
	FDMine   = "fdmine"
	DFD      = "dfd"
	DepMiner = "depminer"
	FastFDs  = "fastfds"
	FDep     = "fdep"
)

// Algorithms lists every implemented algorithm name in the paper's order.
func Algorithms() []string {
	return []string{TANE, FUN, FDMine, DFD, DepMiner, FastFDs, FDep}
}

// Discover runs the named algorithm on the relation.
func Discover(name string, rel *relation.Relation) (*Result, error) {
	switch name {
	case TANE:
		return DiscoverTANE(rel), nil
	case FUN:
		return DiscoverFUN(rel), nil
	case FDMine:
		return DiscoverFDMine(rel), nil
	case DFD:
		return DiscoverDFD(rel), nil
	case DepMiner:
		return DiscoverDepMiner(rel), nil
	case FastFDs:
		return DiscoverFastFDs(rel), nil
	case FDep:
		return DiscoverFDep(rel), nil
	default:
		return nil, fmt.Errorf("fd: unknown algorithm %q", name)
	}
}

// holdsFD reports whether X → A holds using stripped partitions:
// e(X) = e(X ∪ A).
func holdsFD(pc *relation.PartitionCache, lhs relation.AttrSet, rhs int) bool {
	if lhs.Has(rhs) {
		return true
	}
	return pc.Get(lhs).Error() == pc.Get(lhs.With(rhs)).Error()
}

// minimize removes non-minimal dependencies: X → A is dropped when some
// discovered Y → A with Y ⊂ X exists. Input need not be sorted.
func minimize(fds core.Set) core.Set {
	byRHS := fds.ByRHS()
	var out core.Set
	for _, group := range byRHS {
		for i, d := range group {
			minimal := !d.Trivial()
			if minimal {
				for j, e := range group {
					if i != j && e.LHS.SubsetOf(d.LHS) && (e.LHS != d.LHS || j < i) {
						minimal = false
						break
					}
				}
			}
			if minimal {
				out = append(out, d)
			}
		}
	}
	out.Sort()
	return out
}

// BruteForce discovers all minimal FDs by exhaustive enumeration; used as
// the ground truth oracle in tests. Exponential — only for tiny schemas.
func BruteForce(rel *relation.Relation) core.Set {
	pc := relation.NewPartitionCache(rel)
	n := rel.NumCols()
	var out core.Set
	for rhs := 0; rhs < n; rhs++ {
		var minimalLHS []relation.AttrSet
		limit := relation.AttrSet(uint64(1)<<uint(n) - 1)
		// Enumerate candidate LHS in cardinality order so minimality is a
		// subset check against already-accepted antecedents.
		var byCard [][]relation.AttrSet
		byCard = make([][]relation.AttrSet, n+1)
		for s := relation.AttrSet(0); s <= limit; s++ {
			if s.Has(rhs) {
				continue
			}
			byCard[s.Len()] = append(byCard[s.Len()], s)
		}
		for _, sets := range byCard {
			for _, s := range sets {
				dominated := false
				for _, m := range minimalLHS {
					if m.SubsetOf(s) {
						dominated = true
						break
					}
				}
				if dominated {
					continue
				}
				if holdsFD(pc, s, rhs) {
					minimalLHS = append(minimalLHS, s)
					out = append(out, FD{LHS: s, RHS: rhs})
				}
			}
		}
	}
	out.Sort()
	return out
}
