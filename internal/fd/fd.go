// Package fd implements the seven functional-dependency discovery
// algorithms the paper benchmarks FastOFD against (its Metanome
// comparators): TANE, FUN, FDMine, DFD, DepMiner, FastFDs, and FDep.
// All algorithms take a relation and return the set of minimal,
// non-trivial functional dependencies X → A that hold on it (FDMine
// additionally reports its raw, redundancy-heavy output size, matching the
// behaviour the paper observes). Dependencies reuse the core.OFD type,
// since an FD is an OFD in which every value has a single literal
// interpretation.
//
// The pair-based algorithms (DepMiner, FastFDs, FDep) consume one shared
// parallel evidence-set engine (ComputeEvidence); the level-wise ones
// (TANE, FUN, FDMine, DFD) run on sorted-slice lattice levels with
// binary-search sibling lookup and per-worker ProductBuffers. Every
// algorithm's output is byte-identical for every Options.Workers value.
package fd

import (
	"context"
	"fmt"

	"github.com/fastofd/fastofd/internal/core"
	"github.com/fastofd/fastofd/internal/exec"
	"github.com/fastofd/fastofd/internal/relation"
)

// FD is a functional dependency with a single consequent attribute.
type FD = core.OFD

// Result is the output of one discovery algorithm.
type Result struct {
	Algorithm string
	FDs       core.Set // minimal non-trivial FDs
	// RawCount is the number of dependencies the algorithm materialized
	// before minimization (differs from len(FDs) only for FDMine, which
	// emits non-minimal dependencies — the paper reports ~24x).
	RawCount int
}

// Options configure the discovery algorithms.
type Options struct {
	// Workers caps the parallelism of evidence-set construction, per-
	// consequent cover searches, and level-wise partition products.
	// 0 selects runtime.NumCPU(); 1 forces the sequential path. The
	// output is byte-identical for every value (canonical-order merges).
	Workers int
	// Stats, when non-nil, receives per-stage spans ("fd.tane",
	// "evidence.clusters", …) recorded by the run. Nil disables
	// instrumentation at zero cost (exec.Stats methods are nil-safe).
	Stats *exec.Stats
}

// DefaultOptions returns the default configuration (Workers = NumCPU).
func DefaultOptions() Options { return Options{} }

// Algorithm names accepted by Discover.
const (
	TANE     = "tane"
	FUN      = "fun"
	FDMine   = "fdmine"
	DFD      = "dfd"
	DepMiner = "depminer"
	FastFDs  = "fastfds"
	FDep     = "fdep"
)

// Algorithms lists every implemented algorithm name in the paper's order.
func Algorithms() []string {
	return []string{TANE, FUN, FDMine, DFD, DepMiner, FastFDs, FDep}
}

// Discover runs the named algorithm on the relation with default options.
func Discover(name string, rel *relation.Relation) (*Result, error) {
	return DiscoverOpts(name, rel, DefaultOptions())
}

// DiscoverOpts runs the named algorithm with explicit options.
func DiscoverOpts(name string, rel *relation.Relation, opts Options) (*Result, error) {
	return DiscoverContext(context.Background(), name, rel, opts)
}

// DiscoverContext runs the named algorithm under ctx. Cancellation is
// cooperative at work-item granularity (between lattice-level products,
// between evidence clusters, between per-consequent searches); a cancelled
// run returns a well-formed partial Result — the sorted, minimal
// dependencies established by the completed work — together with an error
// satisfying errors.Is(err, ctx.Err()). The unknown-algorithm error keeps
// a nil Result.
func DiscoverContext(ctx context.Context, name string, rel *relation.Relation, opts Options) (*Result, error) {
	switch name {
	case TANE:
		return DiscoverTANEContext(ctx, rel, opts)
	case FUN:
		return DiscoverFUNContext(ctx, rel, opts)
	case FDMine:
		return DiscoverFDMineContext(ctx, rel, opts)
	case DFD:
		return DiscoverDFDContext(ctx, rel, opts)
	case DepMiner:
		return DiscoverDepMinerContext(ctx, rel, opts)
	case FastFDs:
		return DiscoverFastFDsContext(ctx, rel, opts)
	case FDep:
		return DiscoverFDepContext(ctx, rel, opts)
	default:
		return nil, fmt.Errorf("fd: unknown algorithm %q", name)
	}
}

// mergeSlots folds per-slot partial outputs (one slot per consequent or
// node, written only when that slot's work item completed) into one sorted
// set — the merge every baseline uses so output order never depends on the
// worker schedule. On a cancelled run the unwritten slots are simply empty.
func mergeSlots(slots []core.Set) core.Set {
	var sigma core.Set
	for _, fds := range slots {
		sigma = append(sigma, fds...)
	}
	sigma.Sort()
	return sigma
}

// holdsFD reports whether X → A holds using stripped partitions:
// e(X) = e(X ∪ A). buf supplies scratch for any partition products a cache
// miss needs; it may be nil (a fresh buffer per miss) but hot probe loops
// should thread one per worker so probes stop allocating.
func holdsFD(pc *relation.PartitionCache, lhs relation.AttrSet, rhs int, buf *relation.ProductBuffer) bool {
	if lhs.Has(rhs) {
		return true
	}
	return pc.GetWith(lhs, buf).Error() == pc.GetWith(lhs.With(rhs), buf).Error()
}

// minimize removes non-minimal dependencies: X → A is dropped when some
// discovered Y → A with Y ⊂ X exists. Input need not be sorted.
func minimize(fds core.Set) core.Set {
	byRHS := fds.ByRHS()
	var out core.Set
	for _, group := range byRHS {
		for i, d := range group {
			minimal := !d.Trivial()
			if minimal {
				for j, e := range group {
					if i != j && e.LHS.SubsetOf(d.LHS) && (e.LHS != d.LHS || j < i) {
						minimal = false
						break
					}
				}
			}
			if minimal {
				out = append(out, d)
			}
		}
	}
	out.Sort()
	return out
}

// BruteForce discovers all minimal FDs by exhaustive enumeration; used as
// the ground truth oracle in tests. Exponential — only for tiny schemas.
func BruteForce(rel *relation.Relation) core.Set {
	pc := relation.NewPartitionCache(rel)
	var buf relation.ProductBuffer
	n := rel.NumCols()
	var out core.Set
	for rhs := 0; rhs < n; rhs++ {
		var minimalLHS []relation.AttrSet
		limit := relation.AttrSet(uint64(1)<<uint(n) - 1)
		// Enumerate candidate LHS in cardinality order so minimality is a
		// subset check against already-accepted antecedents.
		var byCard [][]relation.AttrSet
		byCard = make([][]relation.AttrSet, n+1)
		for s := relation.AttrSet(0); s <= limit; s++ {
			if s.Has(rhs) {
				continue
			}
			byCard[s.Len()] = append(byCard[s.Len()], s)
		}
		for _, sets := range byCard {
			for _, s := range sets {
				dominated := false
				for _, m := range minimalLHS {
					if m.SubsetOf(s) {
						dominated = true
						break
					}
				}
				if dominated {
					continue
				}
				if holdsFD(pc, s, rhs, &buf) {
					minimalLHS = append(minimalLHS, s)
					out = append(out, FD{LHS: s, RHS: rhs})
				}
			}
		}
	}
	out.Sort()
	return out
}
