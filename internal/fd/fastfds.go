package fd

import (
	"context"
	"sort"

	"github.com/fastofd/fastofd/internal/core"
	"github.com/fastofd/fastofd/internal/exec"
	"github.com/fastofd/fastofd/internal/relation"
)

// DiscoverFastFDs implements FastFDs (Wyss, Giannella, Robertson, 2001):
// compute difference sets, then for each consequent A find all minimal
// covers of D_A = {D \ {A} | D a difference set, A ∈ D} with a
// greedy-ordered depth-first search.
func DiscoverFastFDs(rel *relation.Relation) *Result {
	return DiscoverFastFDsOpts(rel, DefaultOptions())
}

// DiscoverFastFDsOpts is DiscoverFastFDs with explicit options. Difference
// sets are the complements of the evidence engine's agree sets (already
// deduplicated, so complementing needs no map); the per-consequent cover
// searches are independent and fan out over opts.Workers goroutines, merging
// in consequent order so the output is byte-identical for any worker count.
func DiscoverFastFDsOpts(rel *relation.Relation, opts Options) *Result {
	res, _ := DiscoverFastFDsContext(context.Background(), rel, opts)
	return res
}

// DiscoverFastFDsContext is DiscoverFastFDsOpts with cooperative
// cancellation: evidence construction stops between clusters and the cover
// searches stop between consequents, returning the minimal FDs of the
// completed consequents plus the wrapped context error. A run cancelled
// during evidence construction returns no FDs — incomplete difference
// sets would make the covers unsound.
func DiscoverFastFDsContext(ctx context.Context, rel *relation.Relation, opts Options) (*Result, error) {
	nAttrs := rel.NumCols()
	all := rel.Schema().All()

	ev, err := ComputeEvidenceContext(ctx, rel, opts)
	if err != nil {
		return &Result{Algorithm: FastFDs}, err
	}
	agree := ev.Sets()
	diffs := make([]relation.AttrSet, len(agree))
	for i, s := range agree {
		diffs[i] = all.Minus(s)
	}
	relation.SortSets(diffs)

	workers := exec.Workers(opts.Workers)
	span := opts.Stats.Span("fd.fastfds")
	span.Workers(workers)
	span.Items(nAttrs)
	defer span.End()
	perRHS := make([]core.Set, nAttrs)
	err = exec.For(ctx, nAttrs, workers, func(_, a int) {
		// D_A: difference sets containing A, with A removed; keep only the
		// minimal ones (a cover of a subset covers the superset).
		var dA []relation.AttrSet
		for _, d := range diffs {
			if d.Has(a) {
				dA = append(dA, d.Without(a))
			}
		}
		dA = minimalOnly(dA)
		if len(dA) == 0 {
			// No pair ever disagrees on A given agreement elsewhere — if
			// there are no difference sets containing A at all, every pair
			// agrees on A, so ∅ → A holds and is minimal.
			perRHS[a] = core.Set{FD{LHS: relation.EmptySet, RHS: a}}
			return
		}
		if containsEmpty(dA) {
			// Some pair disagrees ONLY on A: no X → A can hold.
			return
		}
		for _, lhs := range findCovers(dA, all.Without(a)) {
			perRHS[a] = append(perRHS[a], FD{LHS: lhs, RHS: a})
		}
	})
	sigma := mergeSlots(perRHS)
	return &Result{Algorithm: FastFDs, FDs: sigma, RawCount: len(sigma)}, err
}

func containsEmpty(sets []relation.AttrSet) bool {
	for _, s := range sets {
		if s.IsEmpty() {
			return true
		}
	}
	return false
}

// minimalOnly keeps sets minimal under ⊆.
func minimalOnly(sets []relation.AttrSet) []relation.AttrSet {
	return filterMinimal(append([]relation.AttrSet(nil), sets...))
}

// findCovers runs FastFDs' depth-first search for all minimal covers of the
// difference-set collection, ordering attributes by descending coverage
// count (the paper's heuristic) and pruning non-minimal branches.
func findCovers(dA []relation.AttrSet, candidates relation.AttrSet) []relation.AttrSet {
	var covers []relation.AttrSet
	order := orderByCoverage(dA, candidates)
	var dfs func(current relation.AttrSet, remaining []relation.AttrSet, allowed []int)
	dfs = func(current relation.AttrSet, remaining []relation.AttrSet, allowed []int) {
		if len(remaining) == 0 {
			// current covers everything; record only irredundant covers.
			for _, a := range current.Attrs() {
				if coversAll(dA, current.Without(a)) {
					return // non-minimal cover
				}
			}
			covers = append(covers, current)
			return
		}
		// Prune: the attributes still allowed must be able to cover what
		// remains.
		var pool relation.AttrSet
		for _, a := range allowed {
			pool = pool.With(a)
		}
		for _, d := range remaining {
			if d.Intersect(pool).IsEmpty() {
				return
			}
		}
		// Branch over every allowed attribute in greedy order; excluding
		// tried attributes from deeper branches enumerates each cover once
		// (FastFDs' search-tree construction).
		for i, a := range allowed {
			covered := false
			nextRemaining := remaining[:0:0]
			for _, d := range remaining {
				if d.Has(a) {
					covered = true
				} else {
					nextRemaining = append(nextRemaining, d)
				}
			}
			if !covered {
				// In any minimal cover, each member privately covers some
				// difference set still uncovered when it is chosen.
				continue
			}
			dfs(current.With(a), nextRemaining, allowed[i+1:])
		}
	}
	allowed := make([]int, 0, candidates.Len())
	for _, a := range order {
		if candidates.Has(a) {
			allowed = append(allowed, a)
		}
	}
	dfs(relation.EmptySet, dA, allowed)
	return filterMinimal(covers)
}

func coversAll(dA []relation.AttrSet, x relation.AttrSet) bool {
	for _, d := range dA {
		if d.Intersect(x).IsEmpty() {
			return false
		}
	}
	return true
}

// orderByCoverage sorts attributes by how many difference sets they cover
// (descending), tie-broken by index — FastFDs' search heuristic.
func orderByCoverage(dA []relation.AttrSet, candidates relation.AttrSet) []int {
	counts := make(map[int]int)
	for _, d := range dA {
		for _, a := range d.Attrs() {
			counts[a]++
		}
	}
	attrs := candidates.Attrs()
	sort.SliceStable(attrs, func(i, j int) bool {
		if counts[attrs[i]] != counts[attrs[j]] {
			return counts[attrs[i]] > counts[attrs[j]]
		}
		return attrs[i] < attrs[j]
	})
	return attrs
}
