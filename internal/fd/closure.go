package fd

import (
	"github.com/fastofd/fastofd/internal/core"
	"github.com/fastofd/fastofd/internal/relation"
)

// FDClosure computes the attribute closure X⁺ under standard FD axioms
// (Armstrong's, including Transitivity — which OFD closures lack).
func FDClosure(sigma core.Set, x relation.AttrSet) relation.AttrSet {
	closure := x
	for changed := true; changed; {
		changed = false
		for _, d := range sigma {
			if d.LHS.SubsetOf(closure) && !closure.Has(d.RHS) {
				closure = closure.With(d.RHS)
				changed = true
			}
		}
	}
	return closure
}

// FDImplies reports whether Σ ⊨ X → A under standard FD inference.
func FDImplies(sigma core.Set, d FD) bool {
	return FDClosure(sigma, d.LHS).Has(d.RHS)
}

// FDEquivalent reports whether two FD sets are equivalent covers under
// standard FD inference.
func FDEquivalent(a, b core.Set) bool {
	for _, d := range b {
		if !FDImplies(a, d) {
			return false
		}
	}
	for _, d := range a {
		if !FDImplies(b, d) {
			return false
		}
	}
	return true
}
