package fd

import (
	"math/rand"

	"github.com/fastofd/fastofd/internal/core"
	"github.com/fastofd/fastofd/internal/relation"
)

// DiscoverDFD implements DFD (Abedjan, Schulze, Naumann, 2014): for each
// consequent attribute, random walks over the lattice of antecedent
// candidates classify nodes as dependencies or non-dependencies, pruning by
// the discovered minimal dependencies and maximal non-dependencies. A
// completion phase exploits the hitting-set duality between minimal
// dependencies and maximal non-dependencies to guarantee the result is
// exactly the set of minimal FDs. Walks use a fixed seed, so runs are
// deterministic.
func DiscoverDFD(rel *relation.Relation) *Result {
	return DiscoverDFDSeeded(rel, 1)
}

// node classification states.
const (
	unknown byte = iota
	dependency
	nonDependency
)

// DiscoverDFDSeeded is DiscoverDFD with an explicit random seed.
func DiscoverDFDSeeded(rel *relation.Relation, seed int64) *Result {
	rng := rand.New(rand.NewSource(seed))
	nAttrs := rel.NumCols()
	pc := relation.NewPartitionCache(rel)
	var sigma core.Set

	for a := 0; a < nAttrs; a++ {
		w := &dfdWalker{
			pc:         pc,
			rhs:        a,
			candidates: rel.Schema().All().Without(a),
			status:     make(map[relation.AttrSet]byte),
			rng:        rng,
		}
		for _, lhs := range w.run() {
			sigma = append(sigma, FD{LHS: lhs, RHS: a})
		}
	}
	sigma.Sort()
	return &Result{Algorithm: DFD, FDs: sigma, RawCount: len(sigma)}
}

type dfdWalker struct {
	pc         *relation.PartitionCache
	rhs        int
	candidates relation.AttrSet
	status     map[relation.AttrSet]byte
	minDeps    []relation.AttrSet
	maxNonDeps []relation.AttrSet
	rng        *rand.Rand
}

// classify determines a node's status: by inference from recorded minimal
// dependencies / maximal non-dependencies when possible, by the
// partition-error test otherwise.
func (w *dfdWalker) classify(x relation.AttrSet) byte {
	if s, ok := w.status[x]; ok && s != unknown {
		return s
	}
	for _, d := range w.minDeps {
		if d.SubsetOf(x) {
			w.status[x] = dependency
			return dependency
		}
	}
	for _, nd := range w.maxNonDeps {
		if x.SubsetOf(nd) {
			w.status[x] = nonDependency
			return nonDependency
		}
	}
	var s byte
	if holdsFD(w.pc, x, w.rhs) {
		s = dependency
	} else {
		s = nonDependency
	}
	w.status[x] = s
	return s
}

// run performs the random-walk phase from singleton seeds, then the
// completion phase, and returns all minimal antecedents.
func (w *dfdWalker) run() []relation.AttrSet {
	seeds := make([]relation.AttrSet, 0, w.candidates.Len())
	for _, a := range w.candidates.Attrs() {
		seeds = append(seeds, relation.Single(a))
	}
	w.rng.Shuffle(len(seeds), func(i, j int) { seeds[i], seeds[j] = seeds[j], seeds[i] })
	for _, s := range seeds {
		w.walk(s)
	}
	w.complete()
	out := filterMinimal(append([]relation.AttrSet(nil), w.minDeps...))
	relation.SortSets(out)
	return out
}

// walk performs one random walk: from a dependency descend while possible,
// recording a minimal dependency at the bottom; from a non-dependency climb
// randomly, recording a maximal non-dependency at the top.
func (w *dfdWalker) walk(start relation.AttrSet) {
	node := start
	budget := 4 * (w.candidates.Len() + 1)
	for hop := 0; hop < budget; hop++ {
		if w.classify(node) == dependency {
			sub, ok := w.descendStep(node)
			if !ok {
				w.recordMinDep(node)
				return
			}
			node = sub
		} else {
			missing := w.candidates.Minus(node).Attrs()
			if len(missing) == 0 {
				w.recordMaxNonDep(node)
				return
			}
			node = node.With(missing[w.rng.Intn(len(missing))])
		}
	}
}

// descendStep returns a maximal proper subset of node that is still a
// dependency, or ok=false when node is a minimal dependency.
func (w *dfdWalker) descendStep(node relation.AttrSet) (relation.AttrSet, bool) {
	attrs := node.Attrs()
	w.rng.Shuffle(len(attrs), func(i, j int) { attrs[i], attrs[j] = attrs[j], attrs[i] })
	for _, a := range attrs {
		if sub := node.Without(a); w.classify(sub) == dependency {
			return sub, true
		}
	}
	return relation.EmptySet, false
}

// descendToMinimal walks straight down from a dependency to some minimal
// dependency and records it.
func (w *dfdWalker) descendToMinimal(node relation.AttrSet) {
	for {
		sub, ok := w.descendStep(node)
		if !ok {
			w.recordMinDep(node)
			return
		}
		node = sub
	}
}

// climbToMaximal walks straight up from a non-dependency to some maximal
// non-dependency and records it.
func (w *dfdWalker) climbToMaximal(node relation.AttrSet) {
	for {
		grew := false
		for _, a := range w.candidates.Minus(node).Attrs() {
			if sup := node.With(a); w.classify(sup) == nonDependency {
				node = sup
				grew = true
				break
			}
		}
		if !grew {
			w.recordMaxNonDep(node)
			return
		}
	}
}

// complete drives the hitting-set duality to a fixpoint: the minimal
// dependencies are exactly the minimal hitting sets of the complements of
// the maximal non-dependencies once the latter cover every non-dependency.
// Each round either records a new maximal non-dependency or a new minimal
// dependency, so the loop terminates.
func (w *dfdWalker) complete() {
	for {
		complements := make([]relation.AttrSet, 0, len(w.maxNonDeps))
		for _, nd := range w.maxNonDeps {
			complements = append(complements, w.candidates.Minus(nd))
		}
		progress := false
		for _, cand := range MinimalHittingSets(complements) {
			if w.classify(cand) == nonDependency {
				// A hitting set that is a non-dependency exposes a region
				// not yet covered by maxNonDeps.
				w.climbToMaximal(cand)
				progress = true
				continue
			}
			// cand is a dependency; a minimal hitting set that is a
			// dependency is either a new minimal dependency or descends to
			// one strictly below (which known minDeps cannot be, since a
			// known minDep inside cand would contradict cand's hitting-set
			// minimality).
			if w.isKnownMinDep(cand) {
				continue
			}
			w.descendToMinimal(cand)
			progress = true
		}
		if !progress {
			return
		}
	}
}

func (w *dfdWalker) isKnownMinDep(x relation.AttrSet) bool {
	for _, d := range w.minDeps {
		if d == x {
			return true
		}
	}
	return false
}

func (w *dfdWalker) recordMinDep(x relation.AttrSet) {
	for _, d := range w.minDeps {
		if d == x {
			return
		}
	}
	w.minDeps = append(w.minDeps, x)
}

func (w *dfdWalker) recordMaxNonDep(x relation.AttrSet) {
	for _, d := range w.maxNonDeps {
		if d == x {
			return
		}
	}
	w.maxNonDeps = append(w.maxNonDeps, x)
}
