package fd

import (
	"context"
	"math/rand"

	"github.com/fastofd/fastofd/internal/core"
	"github.com/fastofd/fastofd/internal/exec"
	"github.com/fastofd/fastofd/internal/relation"
)

// DiscoverDFD implements DFD (Abedjan, Schulze, Naumann, 2014): for each
// consequent attribute, random walks over the lattice of antecedent
// candidates classify nodes as dependencies or non-dependencies, pruning by
// the discovered minimal dependencies and maximal non-dependencies. A
// completion phase exploits the hitting-set duality between minimal
// dependencies and maximal non-dependencies to guarantee the result is
// exactly the set of minimal FDs — so the output is independent of the walk
// order, and per-consequent walkers can run in parallel with their own
// deterministically derived RNGs.
func DiscoverDFD(rel *relation.Relation) *Result {
	return DiscoverDFDSeeded(rel, 1)
}

// DiscoverDFDOpts is DiscoverDFD with explicit options.
func DiscoverDFDOpts(rel *relation.Relation, opts Options) *Result {
	res, _ := dfdSeeded(context.Background(), rel, 1, opts)
	return res
}

// DiscoverDFDContext is DiscoverDFDOpts with cooperative cancellation: the
// per-consequent walkers stop between consequents (each walker runs to
// completion once started), returning the minimal FDs of the completed
// consequents plus the wrapped context error.
func DiscoverDFDContext(ctx context.Context, rel *relation.Relation, opts Options) (*Result, error) {
	return dfdSeeded(ctx, rel, 1, opts)
}

// DiscoverDFDSeeded is DiscoverDFD with an explicit random seed.
func DiscoverDFDSeeded(rel *relation.Relation, seed int64) *Result {
	res, _ := dfdSeeded(context.Background(), rel, seed, DefaultOptions())
	return res
}

// node classification states. unknown doubles as the empty-slot marker of
// the open-addressed status table, so stored states are never unknown.
const (
	unknown byte = iota
	dependency
	nonDependency
)

func dfdSeeded(ctx context.Context, rel *relation.Relation, seed int64, opts Options) (*Result, error) {
	nAttrs := rel.NumCols()
	workers := exec.Workers(opts.Workers)
	span := opts.Stats.Span("fd.dfd")
	span.Workers(workers)
	span.Items(nAttrs)
	defer span.End()
	pc, err := relation.NewPartitionCacheContext(ctx, rel, workers)
	if err != nil {
		return &Result{Algorithm: DFD}, err
	}
	bufs := make([]relation.ProductBuffer, workers)
	all := rel.Schema().All()

	// Per-consequent walkers are independent: each gets its own RNG derived
	// from (seed, rhs) — not from the worker schedule — so the walks, and a
	// fortiori the (exact) output, never depend on the worker count.
	const golden = 0x9E3779B97F4A7C15
	perRHS := make([][]relation.AttrSet, nAttrs)
	err = exec.For(ctx, nAttrs, workers, func(wk, a int) {
		w := &dfdWalker{
			pc:         pc,
			buf:        &bufs[wk],
			rhs:        a,
			candidates: all.Without(a),
			status:     newStatusTable(64),
			rng:        rand.New(rand.NewSource(int64(uint64(seed) + uint64(a+1)*golden))),
		}
		perRHS[a] = w.run()
	})
	// On cancellation, perRHS slots of completed consequents are exact and
	// kept — the partial result is the minimal FDs of those consequents.
	var sigma core.Set
	for a, lhss := range perRHS {
		for _, lhs := range lhss {
			sigma = append(sigma, FD{LHS: lhs, RHS: a})
		}
	}
	sigma.Sort()
	return &Result{Algorithm: DFD, FDs: sigma, RawCount: len(sigma)}, err
}

// statusTable is a flat open-addressed (linear probing) map from AttrSet to
// a classification byte — the walk's visited structure, replacing the
// allocation-heavy map[relation.AttrSet]byte. Slots with val==unknown are
// empty, which is sound because classify never stores unknown.
type statusTable struct {
	keys []relation.AttrSet
	vals []byte
	n    int
}

func newStatusTable(capHint int) *statusTable {
	size := 16
	for size < capHint {
		size *= 2
	}
	return &statusTable{keys: make([]relation.AttrSet, size), vals: make([]byte, size)}
}

func hashAttrSet(a relation.AttrSet) uint64 {
	x := uint64(a)
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

func (t *statusTable) get(k relation.AttrSet) byte {
	mask := uint64(len(t.keys) - 1)
	for i := hashAttrSet(k) & mask; ; i = (i + 1) & mask {
		if t.vals[i] == unknown {
			return unknown
		}
		if t.keys[i] == k {
			return t.vals[i]
		}
	}
}

func (t *statusTable) put(k relation.AttrSet, v byte) {
	mask := uint64(len(t.keys) - 1)
	for i := hashAttrSet(k) & mask; ; i = (i + 1) & mask {
		if t.vals[i] == unknown {
			t.keys[i], t.vals[i] = k, v
			t.n++
			if t.n*4 >= len(t.keys)*3 {
				t.grow()
			}
			return
		}
		if t.keys[i] == k {
			t.vals[i] = v
			return
		}
	}
}

func (t *statusTable) grow() {
	old := *t
	t.keys = make([]relation.AttrSet, 2*len(old.keys))
	t.vals = make([]byte, 2*len(old.vals))
	t.n = 0
	for i, v := range old.vals {
		if v != unknown {
			t.put(old.keys[i], v)
		}
	}
}

type dfdWalker struct {
	pc         *relation.PartitionCache
	buf        *relation.ProductBuffer
	rhs        int
	candidates relation.AttrSet
	status     *statusTable
	minDeps    []relation.AttrSet
	maxNonDeps []relation.AttrSet
	rng        *rand.Rand
}

// classify determines a node's status: by inference from recorded minimal
// dependencies / maximal non-dependencies when possible, by the
// partition-error test otherwise.
func (w *dfdWalker) classify(x relation.AttrSet) byte {
	if s := w.status.get(x); s != unknown {
		return s
	}
	for _, d := range w.minDeps {
		if d.SubsetOf(x) {
			w.status.put(x, dependency)
			return dependency
		}
	}
	for _, nd := range w.maxNonDeps {
		if x.SubsetOf(nd) {
			w.status.put(x, nonDependency)
			return nonDependency
		}
	}
	var s byte
	if holdsFD(w.pc, x, w.rhs, w.buf) {
		s = dependency
	} else {
		s = nonDependency
	}
	w.status.put(x, s)
	return s
}

// run performs the random-walk phase from singleton seeds, then the
// completion phase, and returns all minimal antecedents.
func (w *dfdWalker) run() []relation.AttrSet {
	seeds := make([]relation.AttrSet, 0, w.candidates.Len())
	for _, a := range w.candidates.Attrs() {
		seeds = append(seeds, relation.Single(a))
	}
	w.rng.Shuffle(len(seeds), func(i, j int) { seeds[i], seeds[j] = seeds[j], seeds[i] })
	for _, s := range seeds {
		w.walk(s)
	}
	w.complete()
	out := filterMinimal(append([]relation.AttrSet(nil), w.minDeps...))
	relation.SortSets(out)
	return out
}

// walk performs one random walk: from a dependency descend while possible,
// recording a minimal dependency at the bottom; from a non-dependency climb
// randomly, recording a maximal non-dependency at the top.
func (w *dfdWalker) walk(start relation.AttrSet) {
	node := start
	budget := 4 * (w.candidates.Len() + 1)
	for hop := 0; hop < budget; hop++ {
		if w.classify(node) == dependency {
			sub, ok := w.descendStep(node)
			if !ok {
				w.recordMinDep(node)
				return
			}
			node = sub
		} else {
			missing := w.candidates.Minus(node).Attrs()
			if len(missing) == 0 {
				w.recordMaxNonDep(node)
				return
			}
			node = node.With(missing[w.rng.Intn(len(missing))])
		}
	}
}

// descendStep returns a maximal proper subset of node that is still a
// dependency, or ok=false when node is a minimal dependency.
func (w *dfdWalker) descendStep(node relation.AttrSet) (relation.AttrSet, bool) {
	attrs := node.Attrs()
	w.rng.Shuffle(len(attrs), func(i, j int) { attrs[i], attrs[j] = attrs[j], attrs[i] })
	for _, a := range attrs {
		if sub := node.Without(a); w.classify(sub) == dependency {
			return sub, true
		}
	}
	return relation.EmptySet, false
}

// descendToMinimal walks straight down from a dependency to some minimal
// dependency and records it.
func (w *dfdWalker) descendToMinimal(node relation.AttrSet) {
	for {
		sub, ok := w.descendStep(node)
		if !ok {
			w.recordMinDep(node)
			return
		}
		node = sub
	}
}

// climbToMaximal walks straight up from a non-dependency to some maximal
// non-dependency and records it.
func (w *dfdWalker) climbToMaximal(node relation.AttrSet) {
	for {
		grew := false
		for _, a := range w.candidates.Minus(node).Attrs() {
			if sup := node.With(a); w.classify(sup) == nonDependency {
				node = sup
				grew = true
				break
			}
		}
		if !grew {
			w.recordMaxNonDep(node)
			return
		}
	}
}

// complete drives the hitting-set duality to a fixpoint: the minimal
// dependencies are exactly the minimal hitting sets of the complements of
// the maximal non-dependencies once the latter cover every non-dependency.
// Each round either records a new maximal non-dependency or a new minimal
// dependency, so the loop terminates.
func (w *dfdWalker) complete() {
	for {
		complements := make([]relation.AttrSet, 0, len(w.maxNonDeps))
		for _, nd := range w.maxNonDeps {
			complements = append(complements, w.candidates.Minus(nd))
		}
		progress := false
		for _, cand := range MinimalHittingSets(complements) {
			if w.classify(cand) == nonDependency {
				// A hitting set that is a non-dependency exposes a region
				// not yet covered by maxNonDeps.
				w.climbToMaximal(cand)
				progress = true
				continue
			}
			// cand is a dependency; a minimal hitting set that is a
			// dependency is either a new minimal dependency or descends to
			// one strictly below (which known minDeps cannot be, since a
			// known minDep inside cand would contradict cand's hitting-set
			// minimality).
			if w.isKnownMinDep(cand) {
				continue
			}
			w.descendToMinimal(cand)
			progress = true
		}
		if !progress {
			return
		}
	}
}

func (w *dfdWalker) isKnownMinDep(x relation.AttrSet) bool {
	for _, d := range w.minDeps {
		if d == x {
			return true
		}
	}
	return false
}

func (w *dfdWalker) recordMinDep(x relation.AttrSet) {
	for _, d := range w.minDeps {
		if d == x {
			return
		}
	}
	w.minDeps = append(w.minDeps, x)
}

func (w *dfdWalker) recordMaxNonDep(x relation.AttrSet) {
	for _, d := range w.maxNonDeps {
		if d == x {
			return
		}
	}
	w.maxNonDeps = append(w.maxNonDeps, x)
}
