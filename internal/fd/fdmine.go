package fd

import (
	"github.com/fastofd/fastofd/internal/core"
	"github.com/fastofd/fastofd/internal/relation"
)

// DiscoverFDMine implements FDMine (Yao, Hamilton, Butz, 2002): level-wise
// search that maintains the closure of each candidate set and prunes via
// discovered equivalences (X ≡ Y when X → Y and Y → X). FDMine's output
// famously contains many non-minimal dependencies — the paper observes ~24x
// more than the minimal set, inflating its memory use — so RawCount reports
// the unminimized output and FDs the minimized set.
func DiscoverFDMine(rel *relation.Relation) *Result {
	nAttrs := rel.NumCols()
	all := rel.Schema().All()
	pc := relation.NewPartitionCache(rel)

	var raw core.Set

	// closure[X] tracks X⁺ under discovered FDs (FD closures are
	// transitive, unlike OFD closures).
	closure := make(map[relation.AttrSet]relation.AttrSet)

	// Constant columns: ∅ → A holds and no larger antecedent is minimal.
	var constants relation.AttrSet
	for a := 0; a < nAttrs; a++ {
		if holdsFD(pc, relation.EmptySet, a) {
			constants = constants.With(a)
			raw = append(raw, FD{LHS: relation.EmptySet, RHS: a})
		}
	}

	type node struct{ attrs relation.AttrSet }
	var level []node
	for a := 0; a < nAttrs; a++ {
		s := relation.Single(a)
		level = append(level, node{attrs: s})
		closure[s] = s.Union(constants)
	}

	for len(level) > 0 {
		// Step 1: compute candidate closures — for each X and each A not
		// yet in closure(X), test X → A by partition error.
		for _, nd := range level {
			x := nd.attrs
			cl := closure[x]
			for a := 0; a < nAttrs; a++ {
				if cl.Has(a) {
					continue
				}
				if holdsFD(pc, x, a) {
					cl = cl.With(a)
					raw = append(raw, FD{LHS: x, RHS: a})
				}
			}
			closure[x] = cl
		}
		// Step 2: equivalence pruning — drop X when some same-level Y with
		// Y ⊂ closure(X) and X ⊂ closure(Y) exists (keep the smaller id).
		kept := level[:0]
		for i, nd := range level {
			equivalentToEarlier := false
			for j := 0; j < i; j++ {
				y := level[j].attrs
				if y.SubsetOf(closure[nd.attrs]) && nd.attrs.SubsetOf(closure[y]) {
					equivalentToEarlier = true
					break
				}
			}
			if !equivalentToEarlier {
				kept = append(kept, nd)
			}
		}
		level = kept
		// Step 3: generate next level from surviving nodes, skipping
		// candidates already determined (X ∪ A with A ∈ closure(X) adds
		// nothing new) and candidates that are superkeys.
		next := make(map[relation.AttrSet]struct{})
		var nextNodes []node
		for _, nd := range level {
			x := nd.attrs
			if x == all {
				continue
			}
			for a := 0; a < nAttrs; a++ {
				if x.Has(a) || closure[x].Has(a) {
					continue
				}
				xa := x.With(a)
				if _, dup := next[xa]; dup {
					continue
				}
				next[xa] = struct{}{}
				closure[xa] = closure[x].Union(relation.Single(a))
				nextNodes = append(nextNodes, node{attrs: xa})
			}
		}
		level = nextNodes
	}

	return &Result{Algorithm: FDMine, FDs: minimize(raw), RawCount: len(raw)}
}
