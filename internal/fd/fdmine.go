package fd

import (
	"context"
	"sort"

	"github.com/fastofd/fastofd/internal/core"
	"github.com/fastofd/fastofd/internal/exec"
	"github.com/fastofd/fastofd/internal/relation"
)

// DiscoverFDMine implements FDMine (Yao, Hamilton, Butz, 2002): level-wise
// search that maintains the closure of each candidate set and prunes via
// discovered equivalences (X ≡ Y when X → Y and Y → X). FDMine's output
// famously contains many non-minimal dependencies — the paper observes ~24x
// more than the minimal set, inflating its memory use — so RawCount reports
// the unminimized output and FDs the minimized set.
func DiscoverFDMine(rel *relation.Relation) *Result {
	return DiscoverFDMineOpts(rel, DefaultOptions())
}

// DiscoverFDMineOpts is DiscoverFDMine with explicit options. Closures ride
// on the level nodes (sorted slices, no map[AttrSet]), the per-node closure
// computation fans out over opts.Workers goroutines with per-worker
// ProductBuffers threaded into the cache probes, and raw FDs merge back in
// node order so the output is byte-identical for any worker count.
func DiscoverFDMineOpts(rel *relation.Relation, opts Options) *Result {
	res, _ := DiscoverFDMineContext(context.Background(), rel, opts)
	return res
}

// DiscoverFDMineContext is DiscoverFDMineOpts with cooperative
// cancellation: the traversal stops between levels and between per-node
// closure computations, returning the minimized dependencies from
// completed levels plus the wrapped context error.
func DiscoverFDMineContext(ctx context.Context, rel *relation.Relation, opts Options) (*Result, error) {
	nAttrs := rel.NumCols()
	all := rel.Schema().All()
	workers := exec.Workers(opts.Workers)
	span := opts.Stats.Span("fd.fdmine")
	span.Workers(workers)
	defer span.End()
	pc, err := relation.NewPartitionCacheContext(ctx, rel, workers)
	if err != nil {
		return &Result{Algorithm: FDMine}, err
	}
	bufs := make([]relation.ProductBuffer, workers)

	var raw core.Set

	// node carries X and its closure X⁺ under discovered FDs (FD closures
	// are transitive, unlike OFD closures).
	type node struct {
		attrs   relation.AttrSet
		closure relation.AttrSet
	}

	// Constant columns: ∅ → A holds and no larger antecedent is minimal.
	var constants relation.AttrSet
	for a := 0; a < nAttrs; a++ {
		if holdsFD(pc, relation.EmptySet, a, &bufs[0]) {
			constants = constants.With(a)
			raw = append(raw, FD{LHS: relation.EmptySet, RHS: a})
		}
	}

	var level []node
	for a := 0; a < nAttrs; a++ {
		s := relation.Single(a)
		level = append(level, node{attrs: s, closure: s.Union(constants)})
	}

	for len(level) > 0 {
		// Step 1: compute candidate closures — for each X and each A not
		// yet in closure(X), test X → A by partition error. Independent per
		// node; found FDs land in per-node slots and merge in node order.
		found := make([]core.Set, len(level))
		span.Items(len(level))
		err := exec.For(ctx, len(level), workers, func(w, i int) {
			nd := &level[i]
			cl := nd.closure
			for a := 0; a < nAttrs; a++ {
				if cl.Has(a) {
					continue
				}
				if holdsFD(pc, nd.attrs, a, &bufs[w]) {
					cl = cl.With(a)
					found[i] = append(found[i], FD{LHS: nd.attrs, RHS: a})
				}
			}
			nd.closure = cl
		})
		if err != nil {
			// The interrupted level's partial closure slots are discarded;
			// raw holds only dependencies from fully closed levels.
			return &Result{Algorithm: FDMine, FDs: minimize(raw), RawCount: len(raw)}, err
		}
		for _, fs := range found {
			raw = append(raw, fs...)
		}
		// Step 2: equivalence pruning — drop X when some earlier same-level
		// Y with Y ⊂ closure(X) and X ⊂ closure(Y) exists.
		kept := level[:0]
		for i := range level {
			equivalentToEarlier := false
			for j := 0; j < len(kept); j++ {
				y := kept[j]
				if y.attrs.SubsetOf(level[i].closure) && level[i].attrs.SubsetOf(y.closure) {
					equivalentToEarlier = true
					break
				}
			}
			if !equivalentToEarlier {
				kept = append(kept, level[i])
			}
		}
		level = kept
		// Step 3: generate next level from surviving nodes, skipping
		// candidates already determined (X ∪ A with A ∈ closure(X) adds
		// nothing new) and candidates that are superkeys. Duplicates are
		// removed by a stable sort keeping the first (lowest-node) parent,
		// so closures are deterministic.
		var nextNodes []node
		for _, nd := range level {
			if nd.attrs == all {
				continue
			}
			for a := 0; a < nAttrs; a++ {
				if nd.attrs.Has(a) || nd.closure.Has(a) {
					continue
				}
				nextNodes = append(nextNodes, node{
					attrs:   nd.attrs.With(a),
					closure: nd.closure.Union(relation.Single(a)),
				})
			}
		}
		sort.SliceStable(nextNodes, func(i, j int) bool { return nextNodes[i].attrs < nextNodes[j].attrs })
		dedup := nextNodes[:0]
		for i := range nextNodes {
			if len(dedup) == 0 || nextNodes[i].attrs != dedup[len(dedup)-1].attrs {
				dedup = append(dedup, nextNodes[i])
			}
		}
		level = dedup
	}

	return &Result{Algorithm: FDMine, FDs: minimize(raw), RawCount: len(raw)}, nil
}
