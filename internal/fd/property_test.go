package fd

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"github.com/fastofd/fastofd/internal/relation"
)

// Cross-algorithm property: on randomized relations all seven algorithms
// must induce the same FD theory (pairwise FDEquivalent — the six exact ones
// are byte-identical covers, FDMine an equivalent one), and every algorithm
// must produce byte-identical results for any worker count. Runs under
// `make race` to exercise the parallel paths.
func TestAlgorithmsPairwiseEquivalentAndDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	algs := Algorithms()
	for trial := 0; trial < 12; trial++ {
		rows := 4 + rng.Intn(20)
		cols := 2 + rng.Intn(5)
		domain := 1 + rng.Intn(3)
		rel := randomRelation(rng, rows, cols, domain)
		results := make(map[string]*Result, len(algs))
		for _, alg := range algs {
			seq, err := DiscoverOpts(alg, rel, Options{Workers: 1})
			if err != nil {
				t.Fatal(err)
			}
			results[alg] = seq
			for _, w := range []int{2, 4, 0} {
				par, err := DiscoverOpts(alg, rel, Options{Workers: w})
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(par.FDs, seq.FDs) || par.RawCount != seq.RawCount {
					t.Fatalf("trial %d: %s with Workers=%d differs from sequential\n got: %v (raw %d)\nwant: %v (raw %d)",
						trial, alg, w, par.FDs, par.RawCount, seq.FDs, seq.RawCount)
				}
			}
		}
		for i, a := range algs {
			for _, b := range algs[i+1:] {
				if !FDEquivalent(results[a].FDs, results[b].FDs) {
					t.Errorf("trial %d (%d rows, %d cols, dom %d): %s and %s not equivalent\n%s: %v\n%s: %v",
						trial, rows, cols, domain, a, b, a, results[a].FDs, b, results[b].FDs)
				}
			}
		}
	}
}

// DFD's completion phase makes its output exact, hence independent of the
// seed driving the random walks.
func TestDFDSeedIndependent(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 8; trial++ {
		rel := randomRelation(rng, 4+rng.Intn(16), 2+rng.Intn(4), 1+rng.Intn(3))
		base := DiscoverDFDSeeded(rel, 1)
		for _, seed := range []int64{2, 99, -7} {
			got := DiscoverDFDSeeded(rel, seed)
			if !reflect.DeepEqual(got.FDs, base.FDs) {
				t.Fatalf("trial %d: DFD seed %d differs\n got: %v\nwant: %v",
					trial, seed, got.FDs, base.FDs)
			}
		}
	}
}

// Duplicate-heavy relations stress the evidence engine's cluster ownership
// (large classes in every column) and the level-wise key detection.
func TestAlgorithmsOnDuplicateHeavyRelation(t *testing.T) {
	schema := relation.MustSchema("A", "B", "C")
	rows := make([][]string, 0, 24)
	for i := 0; i < 24; i++ {
		rows = append(rows, []string{
			fmt.Sprint(i % 2), fmt.Sprint(i % 3), fmt.Sprint(i % 2),
		})
	}
	rel, err := relation.FromRows(schema, rows)
	if err != nil {
		t.Fatal(err)
	}
	want := BruteForce(rel)
	for _, alg := range exactAlgorithms {
		res, err := DiscoverOpts(alg, rel, Options{Workers: 3})
		if err != nil {
			t.Fatal(err)
		}
		got := res.FDs.Clone()
		got.Sort()
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%s: got %v want %v", alg, got, want)
		}
	}
}
