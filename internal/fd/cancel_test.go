package fd

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"testing"
	"time"

	"github.com/fastofd/fastofd/internal/core"
	"github.com/fastofd/fastofd/internal/gen"
)

// cancelAfterPolls is a context.Context that cancels itself on its nth
// Err() poll — a deterministic mid-run cancellation point, since the
// algorithms poll between levels, clusters, and consequent slots.
type cancelAfterPolls struct {
	mu   sync.Mutex
	left int
	done chan struct{}
}

func newCancelAfterPolls(n int) *cancelAfterPolls {
	return &cancelAfterPolls{left: n, done: make(chan struct{})}
}

func (c *cancelAfterPolls) Deadline() (time.Time, bool) { return time.Time{}, false }
func (c *cancelAfterPolls) Done() <-chan struct{}       { return c.done }
func (c *cancelAfterPolls) Value(key any) any           { return nil }

func (c *cancelAfterPolls) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.left <= 0 {
		return context.Canceled
	}
	c.left--
	if c.left == 0 {
		close(c.done)
		return context.Canceled
	}
	return nil
}

func waitGoroutines(t *testing.T, before int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("goroutine leak: %d before, %d after", before, runtime.NumGoroutine())
}

func TestComputeEvidenceCancelled(t *testing.T) {
	ds := gen.Clinical(300, 11)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	before := runtime.NumGoroutine()
	ev, err := ComputeEvidenceContext(ctx, ds.Rel, Options{Workers: 4})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if ev == nil {
		t.Fatal("cancelled evidence computation must still return a non-nil Evidence")
	}
	waitGoroutines(t, before)
}

// TestBaselinesCancelPartial interrupts every FD algorithm at varying
// depths. The contract: the error wraps context.Canceled, the result is
// non-nil, every FD in the partial result is also in the full run's result
// (whole-level / completed-slot semantics), and the worker pool does not
// leak goroutines. Deadline-based cancellation must satisfy errors.Is with
// context.DeadlineExceeded through the same wrapping.
func TestBaselinesCancelPartial(t *testing.T) {
	ds := gen.Clinical(250, 11)
	for _, alg := range Algorithms() {
		full, err := DiscoverOpts(alg, ds.Rel, Options{Workers: 1})
		if err != nil {
			t.Fatalf("%s: full run failed: %v", alg, err)
		}
		inFull := make(map[core.OFD]bool, len(full.FDs))
		for _, d := range full.FDs {
			inFull[d] = true
		}
		for _, polls := range []int{1, 2, 4, 7} {
			before := runtime.NumGoroutine()
			res, err := DiscoverContext(newCancelAfterPolls(polls), alg, ds.Rel, Options{Workers: 4})
			if err == nil {
				if len(res.FDs) != len(full.FDs) {
					t.Fatalf("%s polls=%d: uncancelled run differs from full run", alg, polls)
				}
				continue
			}
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("%s polls=%d: want context.Canceled, got %v", alg, polls, err)
			}
			if res == nil {
				t.Fatalf("%s polls=%d: cancelled discovery returned nil result", alg, polls)
			}
			for _, d := range res.FDs {
				if !inFull[d] {
					t.Fatalf("%s polls=%d: partial result contains %v, absent from the full run",
						alg, polls, d.Format(ds.Rel.Schema()))
				}
			}
			waitGoroutines(t, before)
		}
	}
}

func TestBaselineDeadlineExceeded(t *testing.T) {
	ds := gen.Clinical(200, 11)
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	res, err := DiscoverContext(ctx, TANE, ds.Rel, Options{Workers: 2})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want context.DeadlineExceeded, got %v", err)
	}
	if res == nil {
		t.Fatal("expired deadline must still yield a non-nil result")
	}
}
