package fd

import (
	"github.com/fastofd/fastofd/internal/core"
	"github.com/fastofd/fastofd/internal/relation"
)

// DiscoverTANE implements TANE (Huhtala et al., 1999): level-wise lattice
// traversal with rhs⁺ candidate sets, stripped-partition products, the
// partition-error validity test, and key-based pruning.
func DiscoverTANE(rel *relation.Relation) *Result {
	n := rel.NumCols()
	all := rel.Schema().All()
	pc := relation.NewPartitionCache(rel)
	var prodBuf relation.ProductBuffer
	var sigma core.Set

	type node struct {
		attrs relation.AttrSet
		cplus relation.AttrSet
		part  *relation.Partition
	}

	level := make(map[relation.AttrSet]*node, n)
	for a := 0; a < n; a++ {
		s := relation.Single(a)
		level[s] = &node{attrs: s, cplus: all, part: pc.Get(s)}
	}

	for l := 1; len(level) > 0; l++ {
		// computeDependencies
		for _, nd := range level {
			x := nd.attrs
			// C⁺(X) = ∩_{A∈X} C⁺(X\A) computed at node creation for l ≥ 2;
			// level 1 uses R.
			for _, a := range x.Intersect(nd.cplus).Attrs() {
				lhs := x.Without(a)
				if holdsFDParts(pc, lhs, x) {
					sigma = append(sigma, FD{LHS: lhs, RHS: a})
					nd.cplus = nd.cplus.Without(a)
					// TANE rule: remove all B ∈ R \ X from C⁺(X). Valid for
					// FDs (by transitivity-style reasoning) though not for
					// OFDs — the distinction the paper highlights.
					nd.cplus = nd.cplus.Intersect(x)
				}
			}
		}
		// prune: emit superkey dependencies first (the minimality test
		// consults sibling nodes' C⁺ sets, so deletions must wait), then
		// delete superkey nodes and nodes with empty C⁺.
		var doomed []relation.AttrSet
		for key, nd := range level {
			if nd.cplus.IsEmpty() {
				doomed = append(doomed, key)
				continue
			}
			if !nd.part.IsKeyOver() {
				continue
			}
			// X is a superkey: emit X → A for A ∈ C⁺(X)\X that pass the
			// key-based minimality test A ∈ ∩_{B∈X} C⁺(X ∪ A \ B).
			for _, a := range nd.cplus.Minus(nd.attrs).Attrs() {
				inAll := true
				for _, b := range nd.attrs.Attrs() {
					sub := nd.attrs.With(a).Without(b)
					// A sibling pruned from the level (superkey or empty
					// C⁺) does not exclude A; emissions here are sound in
					// any case (a superkey determines every attribute) and
					// the final minimize() removes non-minimal output.
					if other, ok := level[sub]; ok && !other.cplus.Has(a) {
						inAll = false
						break
					}
				}
				if inAll {
					sigma = append(sigma, FD{LHS: nd.attrs, RHS: a})
				}
			}
			doomed = append(doomed, key)
		}
		for _, key := range doomed {
			delete(level, key)
		}
		// generateNextLevel via prefix blocks.
		next := make(map[relation.AttrSet]*node)
		blocks := make(map[relation.AttrSet][]*node)
		for _, nd := range level {
			attrs := nd.attrs.Attrs()
			prefix := nd.attrs.Without(attrs[len(attrs)-1])
			blocks[prefix] = append(blocks[prefix], nd)
		}
		for _, block := range blocks {
			for i := 0; i < len(block); i++ {
				for j := i + 1; j < len(block); j++ {
					x := block[i].attrs.Union(block[j].attrs)
					if _, done := next[x]; done {
						continue
					}
					ok := true
					cplus := all
					for _, a := range x.Attrs() {
						sub, in := level[x.Without(a)]
						if !in {
							ok = false
							break
						}
						cplus = cplus.Intersect(sub.cplus)
					}
					if !ok || cplus.IsEmpty() {
						continue
					}
					p := prodBuf.Product(block[i].part, block[j].part)
					pc.Put(x, p)
					next[x] = &node{attrs: x, cplus: cplus, part: p}
				}
			}
		}
		level = next
	}
	sigma = minimize(sigma)
	return &Result{Algorithm: TANE, FDs: sigma, RawCount: len(sigma)}
}

// holdsFDParts tests X\A → A via cached partitions of lhs and x = lhs ∪ A.
func holdsFDParts(pc *relation.PartitionCache, lhs, x relation.AttrSet) bool {
	return pc.Get(lhs).Error() == pc.Get(x).Error()
}
