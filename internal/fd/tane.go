package fd

import (
	"context"
	"sort"

	"github.com/fastofd/fastofd/internal/core"
	"github.com/fastofd/fastofd/internal/exec"
	"github.com/fastofd/fastofd/internal/relation"
)

// taneNode is one lattice node: the attribute set, its rhs⁺ candidate set,
// and its stripped partition (kept on the node so validity tests are pure
// arithmetic on partition errors, with no cache probes).
type taneNode struct {
	attrs relation.AttrSet
	cplus relation.AttrSet
	part  *relation.Partition
}

// taneLevel is one lattice level, sorted ascending by attrs so sibling
// lookup is a binary search instead of a map probe.
type taneLevel []taneNode

func (lv taneLevel) find(x relation.AttrSet) *taneNode {
	i := sort.Search(len(lv), func(i int) bool { return lv[i].attrs >= x })
	if i < len(lv) && lv[i].attrs == x {
		return &lv[i]
	}
	return nil
}

// DiscoverTANE implements TANE (Huhtala et al., 1999): level-wise lattice
// traversal with rhs⁺ candidate sets, stripped-partition products, the
// partition-error validity test, and key-based pruning.
func DiscoverTANE(rel *relation.Relation) *Result {
	return DiscoverTANEOpts(rel, DefaultOptions())
}

// DiscoverTANEOpts is DiscoverTANE with explicit options. Levels live in
// sorted slices; next-level partition products fan out over opts.Workers
// goroutines with retained per-worker ProductBuffers, writing into
// per-candidate slots so the result is byte-identical for any worker count.
func DiscoverTANEOpts(rel *relation.Relation, opts Options) *Result {
	res, _ := DiscoverTANEContext(context.Background(), rel, opts)
	return res
}

// DiscoverTANEContext is DiscoverTANEOpts with cooperative cancellation:
// the lattice traversal stops between levels and between partition-product
// jobs, returning the minimal FDs established by completed levels plus the
// wrapped context error.
func DiscoverTANEContext(ctx context.Context, rel *relation.Relation, opts Options) (*Result, error) {
	n := rel.NumCols()
	all := rel.Schema().All()
	workers := exec.Workers(opts.Workers)
	span := opts.Stats.Span("fd.tane")
	span.Workers(workers)
	defer span.End()
	pc, err := relation.NewPartitionCacheContext(ctx, rel, workers)
	bufs := make([]relation.ProductBuffer, workers)
	var sigma core.Set
	if err != nil {
		return &Result{Algorithm: TANE, FDs: sigma}, err
	}

	emptyErr := pc.Get(relation.EmptySet).Error()

	level := make(taneLevel, 0, n)
	for a := 0; a < n; a++ {
		s := relation.Single(a)
		level = append(level, taneNode{attrs: s, cplus: all, part: pc.Get(s)})
	}
	// prev is the previous level after pruning. Every node of the current
	// level was generated only when all of its immediate subsets survived
	// pruning, so the lhs of every validity test is found in prev (or is ∅
	// at level 1) — holdsFD probes never touch the cache.
	var prev taneLevel

	for len(level) > 0 {
		if err := exec.Interrupted(ctx, "tane level"); err != nil {
			return &Result{Algorithm: TANE, FDs: minimize(sigma)}, err
		}
		// computeDependencies
		for i := range level {
			nd := &level[i]
			x := nd.attrs
			// C⁺(X) = ∩_{A∈X} C⁺(X\A) computed at node creation for l ≥ 2;
			// level 1 uses R.
			for _, a := range x.Intersect(nd.cplus).Attrs() {
				lhs := x.Without(a)
				lhsErr := emptyErr
				if !lhs.IsEmpty() {
					lhsErr = prev.find(lhs).part.Error()
				}
				if lhsErr == nd.part.Error() {
					sigma = append(sigma, FD{LHS: lhs, RHS: a})
					nd.cplus = nd.cplus.Without(a)
					// TANE rule: remove all B ∈ R \ X from C⁺(X). Valid for
					// FDs (by transitivity-style reasoning) though not for
					// OFDs — the distinction the paper highlights.
					nd.cplus = nd.cplus.Intersect(x)
				}
			}
		}
		// prune: emit superkey dependencies first (the minimality test
		// consults sibling nodes' C⁺ sets, so removals must wait), then
		// drop superkey nodes and nodes with empty C⁺.
		doomed := make([]bool, len(level))
		for i := range level {
			nd := &level[i]
			if nd.cplus.IsEmpty() {
				doomed[i] = true
				continue
			}
			if !nd.part.IsKeyOver() {
				continue
			}
			// X is a superkey: emit X → A for A ∈ C⁺(X)\X that pass the
			// key-based minimality test A ∈ ∩_{B∈X} C⁺(X ∪ A \ B).
			for _, a := range nd.cplus.Minus(nd.attrs).Attrs() {
				inAll := true
				for _, b := range nd.attrs.Attrs() {
					sub := nd.attrs.With(a).Without(b)
					// A sibling pruned from the level (superkey or empty
					// C⁺) does not exclude A; emissions here are sound in
					// any case (a superkey determines every attribute) and
					// the final minimize() removes non-minimal output.
					if other := level.find(sub); other != nil && !other.cplus.Has(a) {
						inAll = false
						break
					}
				}
				if inAll {
					sigma = append(sigma, FD{LHS: nd.attrs, RHS: a})
				}
			}
			doomed[i] = true
		}
		pruned := level[:0]
		for i := range level {
			if !doomed[i] {
				pruned = append(pruned, level[i])
			}
		}
		// generateNextLevel via prefix blocks: two pruned nodes combine
		// when they share all attributes but the largest. Sorting an index
		// by (prefix, attrs) makes blocks contiguous.
		order := make([]int, len(pruned))
		prefixes := make([]relation.AttrSet, len(pruned))
		for i := range pruned {
			order[i] = i
			prefixes[i] = pruned[i].attrs.Without(pruned[i].attrs.Last())
		}
		sort.Slice(order, func(i, j int) bool {
			pi, pj := prefixes[order[i]], prefixes[order[j]]
			if pi != pj {
				return pi < pj
			}
			return pruned[order[i]].attrs < pruned[order[j]].attrs
		})
		type taneCand struct {
			attrs relation.AttrSet
			cplus relation.AttrSet
			pi    int
			pj    int
		}
		var cands []taneCand
		for start := 0; start < len(order); {
			end := start + 1
			for end < len(order) && prefixes[order[end]] == prefixes[order[start]] {
				end++
			}
			for i := start; i < end; i++ {
				for j := i + 1; j < end; j++ {
					x := pruned[order[i]].attrs.Union(pruned[order[j]].attrs)
					ok := true
					cplus := all
					for _, a := range x.Attrs() {
						sub := pruned.find(x.Without(a))
						if sub == nil {
							ok = false
							break
						}
						cplus = cplus.Intersect(sub.cplus)
					}
					if ok && !cplus.IsEmpty() {
						cands = append(cands, taneCand{attrs: x, cplus: cplus, pi: order[i], pj: order[j]})
					}
				}
			}
			start = end
		}
		sort.Slice(cands, func(i, j int) bool { return cands[i].attrs < cands[j].attrs })
		next := make(taneLevel, len(cands))
		span.Items(len(cands))
		if err := exec.For(ctx, len(cands), workers, func(w, i int) {
			c := cands[i]
			p := bufs[w].Product(pruned[c.pi].part, pruned[c.pj].part)
			next[i] = taneNode{attrs: c.attrs, cplus: c.cplus, part: p}
		}); err != nil {
			// Partial next-level slots are discarded; sigma holds only
			// dependencies from fully verified levels.
			return &Result{Algorithm: TANE, FDs: minimize(sigma)}, err
		}
		prev = append(taneLevel(nil), pruned...)
		level = next
	}
	sigma = minimize(sigma)
	return &Result{Algorithm: TANE, FDs: sigma, RawCount: len(sigma)}, nil
}
