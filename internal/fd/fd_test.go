package fd

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"github.com/fastofd/fastofd/internal/core"
	"github.com/fastofd/fastofd/internal/gen"
	"github.com/fastofd/fastofd/internal/relation"
)

func randomRelation(rng *rand.Rand, rows, cols, domain int) *relation.Relation {
	names := make([]string, cols)
	for i := range names {
		names[i] = fmt.Sprintf("A%d", i)
	}
	rel := relation.New(relation.MustSchema(names...))
	row := make([]string, cols)
	for r := 0; r < rows; r++ {
		for c := range row {
			row[c] = fmt.Sprintf("v%d", rng.Intn(domain))
		}
		rel.AppendRow(row)
	}
	return rel
}

// exactAlgorithms are those whose output must equal the brute-force set of
// minimal FDs. FDMine is checked separately: its output is a cover of the
// minimal FDs but may omit some minimal antecedents due to equivalence
// pruning.
var exactAlgorithms = []string{TANE, FUN, DFD, DepMiner, FastFDs, FDep}

func TestAlgorithmsMatchBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 25; trial++ {
		rows := 2 + rng.Intn(14)
		cols := 2 + rng.Intn(4)
		domain := 1 + rng.Intn(3)
		rel := randomRelation(rng, rows, cols, domain)
		want := BruteForce(rel)
		for _, alg := range exactAlgorithms {
			res, err := Discover(alg, rel)
			if err != nil {
				t.Fatalf("trial %d: %v", trial, err)
			}
			got := res.FDs.Clone()
			got.Sort()
			if !reflect.DeepEqual(got, want) {
				t.Errorf("trial %d (%d rows, %d cols, dom %d): %s mismatch\n got: %v\nwant: %v\nrows: %v",
					trial, rows, cols, domain, alg, got, want, rel.Rows())
			}
		}
	}
}

func TestFDMineCoversBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 25; trial++ {
		rel := randomRelation(rng, 2+rng.Intn(14), 2+rng.Intn(4), 1+rng.Intn(3))
		want := BruteForce(rel)
		res := DiscoverFDMine(rel)
		if !FDEquivalent(res.FDs, want) {
			t.Errorf("trial %d: FDMine output not an equivalent cover\n got: %v\nwant: %v\nrows: %v",
				trial, res.FDs, want, rel.Rows())
		}
		// Soundness: every raw FD must hold.
		pc := relation.NewPartitionCache(rel)
		var buf relation.ProductBuffer
		for _, d := range res.FDs {
			if !holdsFD(pc, d.LHS, d.RHS, &buf) {
				t.Errorf("trial %d: FDMine emitted non-holding FD %v", trial, d)
			}
		}
	}
}

func TestAlgorithmsOnKnownInstance(t *testing.T) {
	// Classic example: A is a key; B → C; C and D free.
	schema := relation.MustSchema("A", "B", "C", "D")
	rel, err := relation.FromRows(schema, [][]string{
		{"1", "x", "p", "m"},
		{"2", "x", "p", "n"},
		{"3", "y", "q", "m"},
		{"4", "y", "q", "n"},
		{"5", "z", "p", "m"},
	})
	if err != nil {
		t.Fatal(err)
	}
	want := BruteForce(rel)
	// Sanity: B→C must be among the minimal FDs.
	bToC := FD{LHS: schema.MustSet("B"), RHS: schema.MustIndex("C")}
	if !want.Contains(bToC) {
		t.Fatalf("brute force missing B->C: %v", want)
	}
	for _, alg := range exactAlgorithms {
		res, _ := Discover(alg, rel)
		got := res.FDs.Clone()
		got.Sort()
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%s: got %v want %v", alg, got, want)
		}
	}
}

func TestDiscoverUnknownAlgorithm(t *testing.T) {
	rel := randomRelation(rand.New(rand.NewSource(1)), 3, 2, 2)
	if _, err := Discover("nope", rel); err == nil {
		t.Fatal("expected error for unknown algorithm")
	}
}

func TestAgreeSetsIncludeEmptyWhenPairsDisagreeEverywhere(t *testing.T) {
	schema := relation.MustSchema("A", "B")
	rel, _ := relation.FromRows(schema, [][]string{
		{"1", "x"},
		{"2", "y"},
	})
	ag := AgreeSets(rel)
	if len(ag) != 1 || !ag[0].IsEmpty() {
		t.Fatalf("want [{}], got %v", ag)
	}
}

func TestMinimalHittingSets(t *testing.T) {
	s := func(is ...int) relation.AttrSet {
		var a relation.AttrSet
		for _, i := range is {
			a = a.With(i)
		}
		return a
	}
	got := MinimalHittingSets([]relation.AttrSet{s(0, 1), s(1, 2), s(0, 2)})
	want := []relation.AttrSet{s(0, 1), s(0, 2), s(1, 2)}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v want %v", got, want)
	}
	// Empty collection: the empty set is the only minimal transversal.
	got = MinimalHittingSets(nil)
	if len(got) != 1 || !got[0].IsEmpty() {
		t.Fatalf("want [{}], got %v", got)
	}
	// A collection containing the empty set has no transversal.
	got = MinimalHittingSets([]relation.AttrSet{s(0), relation.EmptySet})
	if len(got) != 0 {
		t.Fatalf("want none, got %v", got)
	}
}

func TestMaximalSets(t *testing.T) {
	s := func(is ...int) relation.AttrSet {
		var a relation.AttrSet
		for _, i := range is {
			a = a.With(i)
		}
		return a
	}
	got := MaximalSets([]relation.AttrSet{s(0), s(0, 1), s(2), s(0, 1)})
	want := []relation.AttrSet{s(2), s(0, 1)}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v want %v", got, want)
	}
}

func TestFDClosureTransitive(t *testing.T) {
	schema := relation.MustSchema("A", "B", "C")
	sigma := core.Set{
		core.MustParse(schema, "A -> B"),
		core.MustParse(schema, "B -> C"),
	}
	got := FDClosure(sigma, schema.MustSet("A"))
	if got != schema.MustSet("A", "B", "C") {
		t.Fatalf("FD closure must be transitive: got %v", got)
	}
	// OFD closure, by contrast, must NOT be transitive.
	ofd := core.Closure(sigma, schema.MustSet("A"))
	if ofd != schema.MustSet("A", "B") {
		t.Fatalf("OFD closure must not apply transitivity: got %v", ofd)
	}
}

func TestBruteForceConstantColumn(t *testing.T) {
	schema := relation.MustSchema("A", "B")
	rel, _ := relation.FromRows(schema, [][]string{
		{"1", "k"},
		{"2", "k"},
		{"3", "k"},
	})
	want := core.Set{
		{LHS: relation.EmptySet, RHS: 1},   // {} -> B (constant)
		{LHS: schema.MustSet("A"), RHS: 0}, // trivialities excluded; A is key
	}
	_ = want
	got := BruteForce(rel)
	// {} -> B must be present; A -> B must be absent (non-minimal).
	emptyToB := FD{LHS: relation.EmptySet, RHS: 1}
	aToB := FD{LHS: schema.MustSet("A"), RHS: 1}
	if !got.Contains(emptyToB) {
		t.Fatalf("missing {}->B in %v", got)
	}
	if got.Contains(aToB) {
		t.Fatalf("non-minimal A->B in %v", got)
	}
}

func TestAlgorithmsAgreeOnWorkloads(t *testing.T) {
	// Cross-algorithm agreement on realistic generated data (larger than
	// the random instances, narrower than a benchmark).
	for _, preset := range []string{"clinical", "kiva", "census"} {
		ds := gen.Generate(gen.Config{Rows: 150, Seed: 5, Preset: preset})
		// Project away the unique key column so FDs are non-trivial and
		// the pair-based algorithms see agreeing pairs.
		cols := make([]int, 0, ds.Rel.NumCols()-1)
		for c := 1; c < ds.Rel.NumCols(); c++ {
			cols = append(cols, c)
		}
		sub, err := ds.Rel.ProjectColumns(cols[:7])
		if err != nil {
			t.Fatal(err)
		}
		var want core.Set
		for i, alg := range exactAlgorithms {
			res, err := Discover(alg, sub)
			if err != nil {
				t.Fatal(err)
			}
			got := res.FDs.Clone()
			got.Sort()
			if i == 0 {
				want = got
				continue
			}
			if !reflect.DeepEqual(got, want) {
				t.Errorf("%s: %s disagrees with %s (%d vs %d FDs)",
					preset, alg, exactAlgorithms[0], len(got), len(want))
			}
		}
	}
}

// TestExtendTransversals: one Berge step over existing transversals equals
// recomputing the extended collection from scratch (modulo sort order).
func TestExtendTransversals(t *testing.T) {
	s := func(is ...int) relation.AttrSet {
		var a relation.AttrSet
		for _, i := range is {
			a = a.With(i)
		}
		return a
	}
	collection := []relation.AttrSet{s(0, 1), s(1, 2)}
	base := MinimalHittingSets(collection)
	added := s(3, 4)
	got := ExtendTransversals(base, added)
	relation.SortSets(got)
	want := MinimalHittingSets(append(collection, added))
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("incremental %v, from scratch %v", got, want)
	}
	// Extending with a set already in the collection is the identity:
	// every transversal hits it by definition.
	got = ExtendTransversals(want, s(0, 1))
	relation.SortSets(got)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("extend with hit set changed transversals: %v vs %v", got, want)
	}
}
