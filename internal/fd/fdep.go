package fd

import (
	"context"

	"github.com/fastofd/fastofd/internal/core"
	"github.com/fastofd/fastofd/internal/exec"
	"github.com/fastofd/fastofd/internal/relation"
)

// DiscoverFDep implements FDep (Flach & Savnik, 1999): build the negative
// cover — the non-dependencies witnessed by every pair of tuples — then
// specialize the most general hypotheses (∅ → A) against each violation to
// obtain the positive cover of minimal FDs. The negative cover is inherently
// pairwise and memory-hungry, matching the paper's observation that FDep
// exceeds memory limits on larger data.
func DiscoverFDep(rel *relation.Relation) *Result {
	return DiscoverFDepOpts(rel, DefaultOptions())
}

// DiscoverFDepOpts is DiscoverFDep with explicit options. The negative cover
// comes from the shared evidence engine's agree sets; the per-consequent
// specialization chains are independent and fan out over opts.Workers
// goroutines, merging in consequent order so the output is byte-identical
// for any worker count.
func DiscoverFDepOpts(rel *relation.Relation, opts Options) *Result {
	res, _ := DiscoverFDepContext(context.Background(), rel, opts)
	return res
}

// DiscoverFDepContext is DiscoverFDepOpts with cooperative cancellation:
// evidence construction stops between clusters and the specialization
// chains stop between consequents, returning the minimal FDs of the
// completed consequents plus the wrapped context error. A run cancelled
// during evidence construction returns no FDs — an incomplete negative
// cover would make the specializations unsound.
func DiscoverFDepContext(ctx context.Context, rel *relation.Relation, opts Options) (*Result, error) {
	nAttrs := rel.NumCols()

	// Negative cover: for each consequent A, the maximal agree sets of
	// pairs that disagree on A. A candidate X → A is violated iff X fits
	// inside one of those agree sets.
	ev, err := ComputeEvidenceContext(ctx, rel, opts)
	if err != nil {
		return &Result{Algorithm: FDep}, err
	}
	agree := ev.Sets()

	workers := exec.Workers(opts.Workers)
	span := opts.Stats.Span("fd.fdep")
	span.Workers(workers)
	span.Items(nAttrs)
	defer span.End()
	perRHS := make([]core.Set, nAttrs)
	err = exec.For(ctx, nAttrs, workers, func(_, a int) {
		var witnesses []relation.AttrSet
		for _, s := range agree {
			if !s.Has(a) {
				witnesses = append(witnesses, s)
			}
		}
		witnesses = MaximalSets(witnesses)

		// Positive cover by successive specialization, starting from the
		// most general hypothesis ∅ → A.
		hyps := []relation.AttrSet{relation.EmptySet}
		for _, w := range witnesses {
			var next []relation.AttrSet
			for _, x := range hyps {
				if !x.SubsetOf(w) {
					next = append(next, x) // not violated by this witness
					continue
				}
				// Specialize: add any attribute outside the witness (and
				// not the consequent) so the hypothesis escapes it.
				for b := 0; b < nAttrs; b++ {
					if b == a || w.Has(b) || x.Has(b) {
						continue
					}
					next = append(next, x.With(b))
				}
			}
			hyps = filterMinimal(next)
		}
		for _, x := range hyps {
			perRHS[a] = append(perRHS[a], FD{LHS: x, RHS: a})
		}
	})
	sigma := mergeSlots(perRHS)
	return &Result{Algorithm: FDep, FDs: sigma, RawCount: len(sigma)}, err
}
