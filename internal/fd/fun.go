package fd

import (
	"github.com/fastofd/fastofd/internal/core"
	"github.com/fastofd/fastofd/internal/relation"
)

// DiscoverFUN implements FUN (Novelli & Cicchetti, 2001): a level-wise
// traversal restricted to free sets — attribute sets whose partition
// cardinality strictly exceeds that of every proper subset — using
// cardinality comparisons both to detect FDs (|Π_X| = |Π_{X∪A}| iff X → A)
// and to prune non-free sets, whose dependencies are all non-minimal.
func DiscoverFUN(rel *relation.Relation) *Result {
	nAttrs := rel.NumCols()
	pc := relation.NewPartitionCache(rel)
	nRows := rel.NumRows()

	// card(X) = |Π_X| computed from the stripped partition: stripped
	// classes plus the singletons they omit.
	card := func(x relation.AttrSet) int {
		p := pc.Get(x)
		covered := p.Size()
		return p.NumClasses() + (nRows - covered)
	}

	var sigma core.Set
	type node struct {
		attrs relation.AttrSet
		card  int
	}

	// Level 0: the empty (free) set with cardinality 1 (or 0 on empty r).
	emptyCard := 1
	if nRows == 0 {
		emptyCard = 0
	}
	level := []node{{attrs: relation.EmptySet, card: emptyCard}}
	cards := map[relation.AttrSet]int{relation.EmptySet: emptyCard}

	for len(level) > 0 {
		var next []node
		seen := make(map[relation.AttrSet]struct{})
		for _, nd := range level {
			for a := 0; a < nAttrs; a++ {
				if nd.attrs.Has(a) {
					continue
				}
				x := nd.attrs.With(a)
				if _, dup := seen[x]; dup {
					continue
				}
				seen[x] = struct{}{}
				cx := card(x)
				cards[x] = cx
				// X is free iff |Π_X| > |Π_Y| for every maximal proper
				// subset Y; equivalently no Y = X\b has equal cardinality.
				free := true
				for _, b := range x.Attrs() {
					sub := x.Without(b)
					csub, ok := cards[sub]
					if !ok {
						csub = card(sub)
						cards[sub] = csub
					}
					if csub == cx {
						free = false
						// Y → b holds with Y = X\b; record when minimal.
						sigma = append(sigma, FD{LHS: sub, RHS: b})
					}
				}
				if free {
					next = append(next, node{attrs: x, card: cx})
				}
			}
		}
		level = next
	}

	raw := len(sigma)
	sigma = minimize(sigma)
	return &Result{Algorithm: FUN, FDs: sigma, RawCount: raw}
}
