package fd

import (
	"context"
	"sort"

	"github.com/fastofd/fastofd/internal/core"
	"github.com/fastofd/fastofd/internal/exec"
	"github.com/fastofd/fastofd/internal/relation"
)

// setCard records the partition cardinality of one examined attribute set;
// kept in slices sorted by attrs so subset lookups are binary searches.
type setCard struct {
	attrs relation.AttrSet
	card  int
}

func lookupCard(cards []setCard, x relation.AttrSet) (int, bool) {
	i := sort.Search(len(cards), func(i int) bool { return cards[i].attrs >= x })
	if i < len(cards) && cards[i].attrs == x {
		return cards[i].card, true
	}
	return 0, false
}

// DiscoverFUN implements FUN (Novelli & Cicchetti, 2001): a level-wise
// traversal restricted to free sets — attribute sets whose partition
// cardinality strictly exceeds that of every proper subset — using
// cardinality comparisons both to detect FDs (|Π_X| = |Π_{X∪A}| iff X → A)
// and to prune non-free sets, whose dependencies are all non-minimal.
func DiscoverFUN(rel *relation.Relation) *Result {
	return DiscoverFUNOpts(rel, DefaultOptions())
}

// DiscoverFUNOpts is DiscoverFUN with explicit options. Candidate
// partitions are computed as parent-partition × single-column products over
// per-worker ProductBuffers (never through cache probes); per-level
// cardinalities live in sorted slices. Free sets are downward closed, so
// every proper subset of a candidate was itself a candidate one level
// earlier and its cardinality is one binary search away.
func DiscoverFUNOpts(rel *relation.Relation, opts Options) *Result {
	res, _ := DiscoverFUNContext(context.Background(), rel, opts)
	return res
}

// DiscoverFUNContext is DiscoverFUNOpts with cooperative cancellation: the
// free-set traversal stops between levels and between candidate-partition
// products, returning the minimal FDs from completed levels plus the
// wrapped context error.
func DiscoverFUNContext(ctx context.Context, rel *relation.Relation, opts Options) (*Result, error) {
	nAttrs := rel.NumCols()
	nRows := rel.NumRows()
	workers := exec.Workers(opts.Workers)
	span := opts.Stats.Span("fd.fun")
	span.Workers(workers)
	defer span.End()
	pc, err := relation.NewPartitionCacheContext(ctx, rel, workers)
	if err != nil {
		return &Result{Algorithm: FUN}, err
	}
	bufs := make([]relation.ProductBuffer, workers)

	// card(X) = |Π_X| from the stripped partition: stripped classes plus
	// the singletons they omit.
	cardOf := func(p *relation.Partition) int {
		return p.NumClasses() + (nRows - p.Size())
	}

	singles := make([]*relation.Partition, nAttrs)
	for a := 0; a < nAttrs; a++ {
		singles[a] = pc.Get(relation.Single(a))
	}

	var sigma core.Set
	type funNode struct {
		attrs relation.AttrSet
		card  int
		part  *relation.Partition
	}

	// Level 0: the empty (free) set with cardinality 1 (or 0 on empty r).
	emptyCard := 1
	if nRows == 0 {
		emptyCard = 0
	}
	level := []funNode{{attrs: relation.EmptySet, card: emptyCard, part: pc.Get(relation.EmptySet)}}
	prevCards := []setCard{{attrs: relation.EmptySet, card: emptyCard}}

	type funCand struct {
		attrs  relation.AttrSet
		parent int
		added  int
		card   int
		part   *relation.Partition
	}
	for len(level) > 0 {
		// Generate X = free ∪ {a} candidates, deduplicated by sorting and
		// keeping the lowest parent (any parent yields the same canonical
		// partition; the choice is fixed for determinism).
		var cands []funCand
		for pi := range level {
			for a := 0; a < nAttrs; a++ {
				if level[pi].attrs.Has(a) {
					continue
				}
				cands = append(cands, funCand{attrs: level[pi].attrs.With(a), parent: pi, added: a})
			}
		}
		sort.Slice(cands, func(i, j int) bool {
			if cands[i].attrs != cands[j].attrs {
				return cands[i].attrs < cands[j].attrs
			}
			return cands[i].parent < cands[j].parent
		})
		keep := 0
		for i := range cands {
			if i == 0 || cands[i].attrs != cands[keep-1].attrs {
				cands[keep] = cands[i]
				keep++
			}
		}
		cands = cands[:keep]
		span.Items(len(cands))
		if err := exec.For(ctx, len(cands), workers, func(w, i int) {
			c := &cands[i]
			c.part = bufs[w].Product(level[c.parent].part, singles[c.added])
			c.card = cardOf(c.part)
		}); err != nil {
			// The interrupted level's partial products are discarded; sigma
			// holds only dependencies from fully examined levels.
			return &Result{Algorithm: FUN, FDs: minimize(sigma)}, err
		}
		// Free check + FD emission, sequential in sorted candidate order.
		curCards := make([]setCard, len(cands))
		var next []funNode
		for i := range cands {
			c := &cands[i]
			curCards[i] = setCard{attrs: c.attrs, card: c.card}
			// X is free iff |Π_X| > |Π_Y| for every maximal proper subset
			// Y; equivalently no Y = X\b has equal cardinality.
			free := true
			for _, b := range c.attrs.Attrs() {
				sub := c.attrs.Without(b)
				csub, ok := lookupCard(prevCards, sub)
				if !ok {
					// Defensive only: subsets of free sets are free, so sub
					// is always a previous-round candidate in practice.
					csub = cardOf(pc.GetWith(sub, &bufs[0]))
				}
				if csub == c.card {
					free = false
					// Y → b holds with Y = X\b; record when minimal.
					sigma = append(sigma, FD{LHS: sub, RHS: b})
				}
			}
			if free {
				next = append(next, funNode{attrs: c.attrs, card: c.card, part: c.part})
			}
		}
		prevCards = curCards
		level = next
	}

	raw := len(sigma)
	sigma = minimize(sigma)
	return &Result{Algorithm: FUN, FDs: sigma, RawCount: raw}, nil
}
