package fd

import (
	"math/rand"
	"reflect"
	"testing"

	"github.com/fastofd/fastofd/internal/relation"
)

// The engine must reproduce the baseline pair-enumeration output exactly on
// randomized relations, including duplicate rows, constant columns, and
// relations whose pairs disagree everywhere.
func TestEvidenceMatchesBaseline(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 60; trial++ {
		rows := rng.Intn(30)
		cols := 1 + rng.Intn(6)
		domain := 1 + rng.Intn(4)
		rel := randomRelation(rng, rows, cols, domain)
		want := AgreeSetsBaseline(rel)
		got := AgreeSets(rel)
		if len(want) == 0 {
			want = nil
		}
		if len(got) == 0 {
			got = nil
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d (%d rows, %d cols, dom %d):\n got: %v\nwant: %v\nrows: %v",
				trial, rows, cols, domain, got, want, rel.Rows())
		}
	}
}

func TestEvidenceParallelMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 20; trial++ {
		rel := randomRelation(rng, 5+rng.Intn(40), 2+rng.Intn(6), 1+rng.Intn(4))
		seq := ComputeEvidence(rel, Options{Workers: 1})
		for _, w := range []int{2, 4, 0} {
			par := ComputeEvidence(rel, Options{Workers: w})
			if !reflect.DeepEqual(par, seq) {
				t.Fatalf("trial %d workers=%d: parallel evidence differs\n got: %+v\nwant: %+v",
					trial, w, par, seq)
			}
		}
	}
}

func TestEvidencePairAccounting(t *testing.T) {
	// 3 rows: (a,x) (a,y) (b,z). Pairs: {0,1} agree on A only; {0,2} and
	// {1,2} agree nowhere. AgreeingPairs must be exactly 1 and the empty
	// agree set present.
	schema := relation.MustSchema("A", "B")
	rel, err := relation.FromRows(schema, [][]string{
		{"a", "x"},
		{"a", "y"},
		{"b", "z"},
	})
	if err != nil {
		t.Fatal(err)
	}
	ev := ComputeEvidence(rel, Options{Workers: 1})
	if ev.AgreeingPairs != 1 {
		t.Fatalf("AgreeingPairs = %d, want 1", ev.AgreeingPairs)
	}
	if !ev.HasEmpty {
		t.Fatal("HasEmpty = false, want true")
	}
	if want := []relation.AttrSet{relation.Single(0)}; !reflect.DeepEqual(ev.Agree, want) {
		t.Fatalf("Agree = %v, want %v", ev.Agree, want)
	}
	// All pairs agreeing somewhere: duplicate rows.
	rel2, _ := relation.FromRows(schema, [][]string{
		{"a", "x"},
		{"a", "x"},
		{"a", "x"},
	})
	ev2 := ComputeEvidence(rel2, Options{Workers: 1})
	if ev2.AgreeingPairs != 3 || ev2.HasEmpty {
		t.Fatalf("duplicate rows: AgreeingPairs=%d HasEmpty=%v, want 3/false",
			ev2.AgreeingPairs, ev2.HasEmpty)
	}
}

func TestEvidenceDegenerateRelations(t *testing.T) {
	schema := relation.MustSchema("A")
	empty, _ := relation.FromRows(schema, nil)
	one, _ := relation.FromRows(schema, [][]string{{"v"}})
	for _, rel := range []*relation.Relation{empty, one} {
		ev := ComputeEvidence(rel, Options{})
		if len(ev.Agree) != 0 || ev.HasEmpty || ev.AgreeingPairs != 0 {
			t.Fatalf("%d rows: want zero evidence, got %+v", rel.NumRows(), ev)
		}
		if got := AgreeSets(rel); len(got) != 0 {
			t.Fatalf("%d rows: AgreeSets = %v, want none", rel.NumRows(), got)
		}
	}
}
