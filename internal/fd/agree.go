package fd

import (
	"sort"

	"github.com/fastofd/fastofd/internal/relation"
)

// AgreeSets computes the set of agree sets ag(t1,t2) — the attribute sets
// on which some pair of tuples agrees — deduplicated, including the empty
// set when some pair agrees on nothing. This is the quadratic pair-based
// computation used by DepMiner, FastFDs and FDep, and the reason those
// algorithms scale quadratically with the number of tuples (paper Exp-1).
// It is a sequential convenience wrapper over ComputeEvidence, which visits
// each agreeing pair exactly once via single-column clusters.
func AgreeSets(rel *relation.Relation) []relation.AttrSet {
	return ComputeEvidence(rel, Options{Workers: 1}).Sets()
}

// AgreeSetsBaseline is the pre-engine implementation: global pair
// enumeration with a map[int64]-keyed pair-dedup and a per-pair column
// rescan. Retained only as the ablation baseline for the agree-set
// micro-benchmarks (benchrunner -fdbench) and as a cross-check oracle in
// tests; all algorithms consume ComputeEvidence.
func AgreeSetsBaseline(rel *relation.Relation) []relation.AttrSet {
	n := rel.NumRows()
	cols := rel.NumCols()
	seen := make(map[relation.AttrSet]struct{})
	// For every pair of tuples that agree on at least one attribute,
	// compute the full agree set. Enumerate candidate pairs from the
	// classes of single-attribute partitions to skip fully-disagreeing
	// pairs, deduplicating pairs via a visited matrix keyed by (i,j).
	pairSeen := make(map[int64]struct{})
	key := func(i, j int) int64 { return int64(i)*int64(n) + int64(j) }
	for c := 0; c < cols; c++ {
		p := relation.SingleColumnPartition(rel, c).Strip()
		for ci := 0; ci < p.NumClasses(); ci++ {
			class := p.Class(ci)
			for a := 0; a < len(class); a++ {
				for b := a + 1; b < len(class); b++ {
					i, j := int(class[a]), int(class[b])
					if _, done := pairSeen[key(i, j)]; done {
						continue
					}
					pairSeen[key(i, j)] = struct{}{}
					var ag relation.AttrSet
					for col := 0; col < cols; col++ {
						if rel.Value(i, col) == rel.Value(j, col) {
							ag = ag.With(col)
						}
					}
					seen[ag] = struct{}{}
				}
			}
		}
	}
	// Pairs disagreeing on every attribute contribute the empty agree set.
	// With global enumeration the pair count is exact, so the comparison
	// against n(n-1)/2 is sound here (and only here).
	if int64(len(pairSeen)) < int64(n)*int64(n-1)/2 {
		seen[relation.EmptySet] = struct{}{}
	}
	out := make([]relation.AttrSet, 0, len(seen))
	for s := range seen {
		out = append(out, s)
	}
	relation.SortSets(out)
	return out
}

// MaximalSets filters sets to those maximal under ⊆.
func MaximalSets(sets []relation.AttrSet) []relation.AttrSet {
	var out []relation.AttrSet
	for i, s := range sets {
		maximal := true
		for j, t := range sets {
			if i != j && s.SubsetOf(t) && (s != t || j > i) {
				maximal = false
				break
			}
		}
		if maximal {
			out = append(out, s)
		}
	}
	relation.SortSets(out)
	return out
}

// MinimalHittingSets computes all minimal transversals of the given
// collection: minimal attribute sets intersecting every set in the
// collection. Sets must be non-empty; an empty collection yields {∅}.
// Uses the classic incremental (Berge) algorithm with minimality filtering,
// adequate for the small collections dependency discovery produces.
func MinimalHittingSets(collection []relation.AttrSet) []relation.AttrSet {
	transversals := []relation.AttrSet{relation.EmptySet}
	for _, s := range collection {
		transversals = ExtendTransversals(transversals, s)
	}
	relation.SortSets(transversals)
	return transversals
}

// ExtendTransversals performs one Berge step: given the minimal
// transversals of a collection, it returns the minimal transversals of the
// collection extended by the non-empty set s. Exported so incremental
// consumers — the discovery maintainer growing a cover's negative border
// as new minimal OFDs are added — can update transversals in O(|s|·|T|)
// per added set instead of recomputing the whole collection. The result
// is in canonical minimal-first order but not fully sorted; callers that
// need canonical order apply relation.SortSets.
func ExtendTransversals(transversals []relation.AttrSet, s relation.AttrSet) []relation.AttrSet {
	next := make([]relation.AttrSet, 0, len(transversals))
	for _, t := range transversals {
		if !t.Intersect(s).IsEmpty() {
			next = append(next, t)
			continue
		}
		for _, a := range s.Attrs() {
			next = append(next, t.With(a))
		}
	}
	return filterMinimal(next)
}

// filterMinimal removes supersets (and duplicates) from the collection.
func filterMinimal(sets []relation.AttrSet) []relation.AttrSet {
	sort.Slice(sets, func(i, j int) bool {
		if li, lj := sets[i].Len(), sets[j].Len(); li != lj {
			return li < lj
		}
		return sets[i] < sets[j]
	})
	var out []relation.AttrSet
	for _, s := range sets {
		keep := true
		for _, m := range out {
			if m.SubsetOf(s) {
				keep = false
				break
			}
		}
		if keep {
			out = append(out, s)
		}
	}
	return out
}
