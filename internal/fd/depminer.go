package fd

import (
	"github.com/fastofd/fastofd/internal/core"
	"github.com/fastofd/fastofd/internal/relation"
)

// DiscoverDepMiner implements DepMiner (Lopes et al., 2000): compute agree
// sets from tuple pairs, derive per-attribute maximal sets max(A) (maximal
// agree sets not containing A), and obtain the antecedents of minimal FDs
// with consequent A as the minimal transversals of the complements of
// max(A).
func DiscoverDepMiner(rel *relation.Relation) *Result {
	nAttrs := rel.NumCols()
	all := rel.Schema().All()
	agree := AgreeSets(rel)

	var sigma core.Set
	for a := 0; a < nAttrs; a++ {
		// max(A): maximal agree sets not containing A.
		var notA []relation.AttrSet
		for _, s := range agree {
			if !s.Has(a) {
				notA = append(notA, s)
			}
		}
		maxA := MaximalSets(notA)
		// Complements within R \ {A}: every minimal FD antecedent must hit
		// each complement (otherwise some pair agreeing on the antecedent
		// disagrees on A).
		complements := make([]relation.AttrSet, 0, len(maxA))
		for _, s := range maxA {
			complements = append(complements, all.Minus(s).Without(a))
		}
		for _, lhs := range MinimalHittingSets(complements) {
			sigma = append(sigma, FD{LHS: lhs, RHS: a})
		}
	}
	sigma.Sort()
	return &Result{Algorithm: DepMiner, FDs: sigma, RawCount: len(sigma)}
}
