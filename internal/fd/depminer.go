package fd

import (
	"github.com/fastofd/fastofd/internal/core"
	"github.com/fastofd/fastofd/internal/relation"
)

// DiscoverDepMiner implements DepMiner (Lopes et al., 2000): compute agree
// sets, derive per-attribute maximal sets max(A) (maximal agree sets not
// containing A), and obtain the antecedents of minimal FDs with consequent A
// as the minimal transversals of the complements of max(A).
func DiscoverDepMiner(rel *relation.Relation) *Result {
	return DiscoverDepMinerOpts(rel, DefaultOptions())
}

// DiscoverDepMinerOpts is DiscoverDepMiner with explicit options. Agree sets
// come from the shared evidence engine (one cluster-parallel pass, no pair
// enumeration); the per-consequent transversal computations are independent
// and fan out over opts.Workers goroutines, merging in consequent order so
// the output is byte-identical for any worker count.
func DiscoverDepMinerOpts(rel *relation.Relation, opts Options) *Result {
	nAttrs := rel.NumCols()
	all := rel.Schema().All()
	agree := ComputeEvidence(rel, opts).Sets()

	workers := workerCount(opts.Workers)
	perRHS := make([]core.Set, nAttrs)
	parallelFor(nAttrs, workers, func(_, a int) {
		// max(A): maximal agree sets not containing A.
		var notA []relation.AttrSet
		for _, s := range agree {
			if !s.Has(a) {
				notA = append(notA, s)
			}
		}
		maxA := MaximalSets(notA)
		// Complements within R \ {A}: every minimal FD antecedent must hit
		// each complement (otherwise some pair agreeing on the antecedent
		// disagrees on A).
		complements := make([]relation.AttrSet, 0, len(maxA))
		for _, s := range maxA {
			complements = append(complements, all.Minus(s).Without(a))
		}
		for _, lhs := range MinimalHittingSets(complements) {
			perRHS[a] = append(perRHS[a], FD{LHS: lhs, RHS: a})
		}
	})
	var sigma core.Set
	for _, fds := range perRHS {
		sigma = append(sigma, fds...)
	}
	sigma.Sort()
	return &Result{Algorithm: DepMiner, FDs: sigma, RawCount: len(sigma)}
}
