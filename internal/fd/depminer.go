package fd

import (
	"context"

	"github.com/fastofd/fastofd/internal/core"
	"github.com/fastofd/fastofd/internal/exec"
	"github.com/fastofd/fastofd/internal/relation"
)

// DiscoverDepMiner implements DepMiner (Lopes et al., 2000): compute agree
// sets, derive per-attribute maximal sets max(A) (maximal agree sets not
// containing A), and obtain the antecedents of minimal FDs with consequent A
// as the minimal transversals of the complements of max(A).
func DiscoverDepMiner(rel *relation.Relation) *Result {
	return DiscoverDepMinerOpts(rel, DefaultOptions())
}

// DiscoverDepMinerOpts is DiscoverDepMiner with explicit options. Agree sets
// come from the shared evidence engine (one cluster-parallel pass, no pair
// enumeration); the per-consequent transversal computations are independent
// and fan out over opts.Workers goroutines, merging in consequent order so
// the output is byte-identical for any worker count.
func DiscoverDepMinerOpts(rel *relation.Relation, opts Options) *Result {
	res, _ := DiscoverDepMinerContext(context.Background(), rel, opts)
	return res
}

// DiscoverDepMinerContext is DiscoverDepMinerOpts with cooperative
// cancellation: evidence construction stops between clusters and the
// transversal phase stops between consequents, returning the minimal FDs
// of the completed consequents plus the wrapped context error. A run
// cancelled during evidence construction returns no FDs — incomplete
// agree sets would make the transversals unsound.
func DiscoverDepMinerContext(ctx context.Context, rel *relation.Relation, opts Options) (*Result, error) {
	nAttrs := rel.NumCols()
	all := rel.Schema().All()
	ev, err := ComputeEvidenceContext(ctx, rel, opts)
	if err != nil {
		return &Result{Algorithm: DepMiner}, err
	}
	agree := ev.Sets()

	workers := exec.Workers(opts.Workers)
	span := opts.Stats.Span("fd.depminer")
	span.Workers(workers)
	span.Items(nAttrs)
	defer span.End()
	perRHS := make([]core.Set, nAttrs)
	err = exec.For(ctx, nAttrs, workers, func(_, a int) {
		// max(A): maximal agree sets not containing A.
		var notA []relation.AttrSet
		for _, s := range agree {
			if !s.Has(a) {
				notA = append(notA, s)
			}
		}
		maxA := MaximalSets(notA)
		// Complements within R \ {A}: every minimal FD antecedent must hit
		// each complement (otherwise some pair agreeing on the antecedent
		// disagrees on A).
		complements := make([]relation.AttrSet, 0, len(maxA))
		for _, s := range maxA {
			complements = append(complements, all.Minus(s).Without(a))
		}
		for _, lhs := range MinimalHittingSets(complements) {
			perRHS[a] = append(perRHS[a], FD{LHS: lhs, RHS: a})
		}
	})
	sigma := mergeSlots(perRHS)
	return &Result{Algorithm: DepMiner, FDs: sigma, RawCount: len(sigma)}, err
}
