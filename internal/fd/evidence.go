package fd

import (
	"context"
	"sort"

	"github.com/fastofd/fastofd/internal/exec"
	"github.com/fastofd/fastofd/internal/relation"
)

// Evidence is the shared input of the pair-based discovery algorithms
// (DepMiner, FastFDs, FDep): the deduplicated agree sets of a relation plus
// exact pair accounting. It is computed cluster-by-cluster from the flat
// stripped single-column partitions instead of by enumerating global tuple
// pairs, so every agreeing pair is visited exactly once by construction and
// no per-pair dedup map is needed. See DESIGN.md ("Evidence-set engine").
type Evidence struct {
	// Agree holds the distinct non-empty agree sets in canonical order
	// (cardinality, then numeric — relation.SortSets order).
	Agree []relation.AttrSet
	// HasEmpty reports that some tuple pair agrees on no attribute, i.e.
	// the empty agree set belongs to the evidence. It matters: the empty
	// set rules out ∅ → A for every A.
	HasEmpty bool
	// AgreeingPairs is the exact number of distinct tuple pairs that agree
	// on at least one attribute. Together with n(n-1)/2 it derives
	// HasEmpty without any global pair enumeration.
	AgreeingPairs int64
}

// Sets returns the agree sets including the empty set when present, in
// canonical order — the historical AgreeSets output shape.
func (e *Evidence) Sets() []relation.AttrSet {
	if !e.HasEmpty {
		return e.Agree
	}
	out := make([]relation.AttrSet, 0, len(e.Agree)+1)
	out = append(out, relation.EmptySet)
	return append(out, e.Agree...)
}

// agreeAccum collects agree sets for one worker, deduplicating through a
// sorted scratch slice: sets are appended (with a cheap last-value filter —
// consecutive pairs of one cluster usually produce the same agree set) and
// the slice is sorted + compacted in place whenever it reaches the limit.
// Because the number of distinct agree sets is tiny compared to the number
// of pairs, compaction keeps the scratch small and the amortized cost per
// pair is O(1) with zero steady-state allocations.
type agreeAccum struct {
	scratch []relation.AttrSet
	limit   int
	last    relation.AttrSet
	hasLast bool
}

func (acc *agreeAccum) add(s relation.AttrSet) {
	if acc.hasLast && s == acc.last {
		return
	}
	acc.last, acc.hasLast = s, true
	acc.scratch = append(acc.scratch, s)
	if acc.limit == 0 {
		acc.limit = 4096
	}
	if len(acc.scratch) >= acc.limit {
		acc.compact()
		// If the scratch is mostly distinct sets, grow the limit so the
		// sort stays amortized O(1) per appended set.
		if len(acc.scratch)*2 >= acc.limit {
			acc.limit *= 2
		}
	}
}

// compact sorts the scratch numerically and removes duplicates in place.
func (acc *agreeAccum) compact() {
	s := acc.scratch
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	acc.scratch = dedupSorted(s)
}

// dedupSorted removes adjacent duplicates from a numerically sorted slice.
func dedupSorted(s []relation.AttrSet) []relation.AttrSet {
	w := 0
	for i, v := range s {
		if i == 0 || v != s[w-1] {
			s[w] = v
			w++
		}
	}
	return s[:w]
}

// evCluster is one unit of evidence work: class `class` of the stripped
// single-column partition of column `col`.
type evCluster struct {
	col   int
	class int32
}

// ComputeEvidence builds the evidence set of the relation, fanning the
// cluster work out over opts.Workers goroutines (0 = NumCPU). The result is
// byte-identical for every worker count: per-worker scratches are merged
// through one canonical sort+dedup, and the pair counter is a plain sum.
//
// The cluster technique: a pair of tuples agrees on attribute c iff both
// sit in the same class of Π*_c, so every agreeing pair appears in at least
// one single-column cluster. Materializing the class id of every tuple in
// every column (the cid matrix, -1 for stripped singletons) makes the agree
// set of a pair one dense row comparison, and lets the cluster of column c
// own exactly the pairs whose *first* agreeing column is c — each pair is
// visited once by construction, with no global pair-dedup map.
func ComputeEvidence(rel *relation.Relation, opts Options) *Evidence {
	ev, _ := ComputeEvidenceContext(context.Background(), rel, opts)
	return ev
}

// ComputeEvidenceContext is ComputeEvidence with cooperative cancellation:
// a cancelled context stops the fan-out between clusters (in-flight
// clusters finish) and returns the wrapped context error. The Evidence
// returned on cancellation is incomplete — callers must treat it as
// unusable for completeness-sensitive derivations — but is never nil.
func ComputeEvidenceContext(ctx context.Context, rel *relation.Relation, opts Options) (*Evidence, error) {
	n := rel.NumRows()
	k := rel.NumCols()
	ev := &Evidence{}
	if n < 2 || k == 0 {
		return ev, exec.Interrupted(ctx, "evidence")
	}
	workers := exec.Workers(opts.Workers)

	// Stripped single-column partitions, built in parallel.
	partSpan := opts.Stats.Span("evidence.partitions")
	partSpan.Workers(workers)
	partSpan.Items(k)
	parts := make([]*relation.Partition, k)
	err := exec.For(ctx, k, workers, func(_, c int) {
		parts[c] = relation.SingleColumnPartition(rel, c).Strip()
	})
	partSpan.End()
	if err != nil {
		return ev, err
	}

	// cid matrix, row-major: cid[t*k+c] = class id of tuple t in Π*_c, or
	// -1 when t is a stripped singleton of column c. Two -1 entries never
	// agree (their values are distinct by definition of a singleton).
	cid := make([]int32, n*k)
	for i := range cid {
		cid[i] = -1
	}
	if err := exec.For(ctx, k, workers, func(_, c int) {
		p := parts[c]
		for ci := 0; ci < p.NumClasses(); ci++ {
			for _, t := range p.Class(ci) {
				cid[int(t)*k+c] = int32(ci)
			}
		}
	}); err != nil {
		return ev, err
	}

	// Flatten all clusters into one work list; order is irrelevant for the
	// output (canonical merge) but stable for reproducible scheduling.
	var clusters []evCluster
	for c := 0; c < k; c++ {
		for ci := 0; ci < parts[c].NumClasses(); ci++ {
			clusters = append(clusters, evCluster{col: c, class: int32(ci)})
		}
	}

	clusterSpan := opts.Stats.Span("evidence.clusters")
	clusterSpan.Workers(workers)
	clusterSpan.Items(len(clusters))
	defer clusterSpan.End()
	accs := make([]agreeAccum, workers)
	pairCounts := make([]int64, workers)
	err = exec.For(ctx, len(clusters), workers, func(w, i int) {
		cl := clusters[i]
		c := cl.col
		class := parts[c].Class(int(cl.class))
		acc := &accs[w]
		var pairs int64
		for a := 0; a < len(class); a++ {
			ra := cid[int(class[a])*k : int(class[a])*k+k]
			for b := a + 1; b < len(class); b++ {
				rb := cid[int(class[b])*k : int(class[b])*k+k]
				// The cluster of the first agreeing column owns the pair;
				// skip pairs already owned by an earlier column.
				owned := true
				for cc := 0; cc < c; cc++ {
					if ra[cc] == rb[cc] && ra[cc] >= 0 {
						owned = false
						break
					}
				}
				if !owned {
					continue
				}
				pairs++
				ag := relation.Single(c)
				for cc := c + 1; cc < k; cc++ {
					if ra[cc] == rb[cc] && ra[cc] >= 0 {
						ag = ag.With(cc)
					}
				}
				acc.add(ag)
			}
		}
		pairCounts[w] += pairs
	})
	if err != nil {
		return ev, err
	}

	var total int64
	sets := make([]relation.AttrSet, 0, 64)
	for w := range accs {
		accs[w].compact()
		sets = append(sets, accs[w].scratch...)
		total += pairCounts[w]
	}
	sort.Slice(sets, func(i, j int) bool { return sets[i] < sets[j] })
	sets = dedupSorted(sets)
	relation.SortSets(sets)
	ev.Agree = sets
	ev.AgreeingPairs = total
	// Every pair not owned by any cluster agrees on no attribute; the
	// count is exact by construction, unlike a global-enumeration check.
	ev.HasEmpty = total < int64(n)*int64(n-1)/2
	return ev, nil
}
