package core

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"github.com/fastofd/fastofd/internal/relation"
)

// TestLHSKeyEncodingInjective is the injectivity property test for the
// monitor's LHS-key byte encoding: over random antecedent tuples, two
// rows encode to the same key iff their dict-encoded antecedent values
// are equal attribute by attribute. The cases include value ids chosen to
// collide under naive variable-width or delimiter-based encodings
// (shared low bytes, ids spanning the 1/2/3/4-byte boundaries).
func TestLHSKeyEncodingInjective(t *testing.T) {
	schema := relation.MustSchema("A", "B", "C")
	rel := relation.New(schema)
	rel.AppendRow([]string{"x", "x", "x"})
	rel.AppendRow([]string{"x", "x", "x"})
	cols := []int{0, 1, 2}

	boundary := []relation.Value{0, 1, 0xFF, 0x100, 0x101, 0xFFFF, 0x10000, 0xFFFFFF, 0x1000000, 1<<31 - 1}
	set := func(row int, vals [3]relation.Value) {
		for c, v := range vals {
			rel.SetValue(row, c, v)
		}
	}
	check := func(a, b [3]relation.Value) {
		t.Helper()
		set(0, a)
		set(1, b)
		ka := string(EncodeLHSKey(rel, cols, 0, nil))
		kb := string(EncodeLHSKey(rel, cols, 1, nil))
		if (ka == kb) != (a == b) {
			t.Fatalf("injectivity broken: %v vs %v, keys %x vs %x", a, b, ka, kb)
		}
		if len(ka) != 4*len(cols) || len(kb) != 4*len(cols) {
			t.Fatalf("keys must be fixed-width: %d and %d bytes for %d attrs", len(ka), len(kb), len(cols))
		}
	}
	// Boundary-value pairs: every combination in the first two attributes.
	for _, va := range boundary {
		for _, vb := range boundary {
			check([3]relation.Value{va, vb, 0}, [3]relation.Value{vb, va, 0})
			check([3]relation.Value{va, vb, 1}, [3]relation.Value{va, vb, 1})
		}
	}
	// Shifted-boundary pairs that collide if cells bleed into each other:
	// (0x100, 0) vs (0, 0x100) and friends.
	check([3]relation.Value{0x100, 0, 0}, [3]relation.Value{0, 0x100, 0})
	check([3]relation.Value{0x01, 0x0100, 0}, [3]relation.Value{0x0101, 0, 0})
	// Random sweep.
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 2000; i++ {
		var a, b [3]relation.Value
		for c := range a {
			a[c] = relation.Value(rng.Int31())
			if rng.Intn(3) == 0 {
				b[c] = a[c]
			} else {
				b[c] = relation.Value(rng.Int31())
			}
		}
		check(a, b)
	}
}

// TestMonitorSingletonPromotedAcrossShards covers the lone-row lifecycle
// under sharding: a row recorded as a singleton (-(row+2) index encoding)
// is updated while still alone, then promoted into a two-tuple class by a
// later AppendRow with the same antecedent key. The promoted class lives
// in whichever shard its key hashes to, while other keys land elsewhere —
// every step must match a fresh Detect for all shard counts.
func TestMonitorSingletonPromotedAcrossShards(t *testing.T) {
	for _, shards := range []int{1, 4, 16} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			rel, ont := table1(t)
			schema := rel.Schema()
			sigma := Set{
				MustParse(schema, "CC -> CTRY"),
				MustParse(schema, "SYMP, DIAG -> MED"),
			}
			m, err := NewMonitorSharded(context.Background(), rel, ont, sigma, shards, 2, nil)
			if err != nil {
				t.Fatal(err)
			}
			assertMatchesDetect := func(step string) {
				t.Helper()
				got, _ := json.Marshal(m.Report())
				want, _ := json.Marshal(Detect(rel, ont, sigma))
				if string(got) != string(want) {
					t.Fatalf("%s: report diverged\n got %s\nwant %s", step, got, want)
				}
			}

			// Fresh antecedent keys: singletons under both OFDs.
			r1, err := m.AppendRow([]string{"FR", "France", "fever", "CT", "flu", "doliprane"})
			if err != nil {
				t.Fatal(err)
			}
			if _, err := m.AppendRow([]string{"JP", "Japan", "cough", "MRI", "asthma", "ventolin"}); err != nil {
				t.Fatal(err)
			}
			assertMatchesDetect("singletons")

			// Update a consequent of the still-singleton row: routed through
			// the lone-row encoding, re-verifies nothing (ci < 0).
			before := m.Reverified()
			if changed, err := m.Update(r1, schema.MustIndex("CTRY"), "Republique Francaise"); err != nil || !changed {
				t.Fatalf("changed=%v err=%v", changed, err)
			}
			if m.Reverified() != before {
				t.Fatalf("singleton update re-verified %d classes", m.Reverified()-before)
			}
			assertMatchesDetect("singleton update")

			// Same CC key again with a conflicting consequent: promotes the
			// lone row into a two-tuple class inside its owning shard and
			// must violate CC -> CTRY.
			if _, err := m.AppendRow([]string{"FR", "Francia", "nausea", "CT", "migraine", "sumatriptan"}); err != nil {
				t.Fatal(err)
			}
			if m.Satisfied() {
				t.Fatal("promoted class with conflicting consequents must violate")
			}
			assertMatchesDetect("promotion")

			// And the JP singleton promotes cleanly (same consequent).
			if _, err := m.AppendRow([]string{"JP", "Japan", "cough", "XRAY", "asthma", "ventolin"}); err != nil {
				t.Fatal(err)
			}
			assertMatchesDetect("clean promotion")

			// A batch over the promoted classes exercises the sharded batch
			// path on overlay-born classes.
			ctry := schema.MustIndex("CTRY")
			if err := m.ApplyBatch([]CellUpdate{
				{Row: r1, Col: ctry, Value: "Francia"},
				{Row: r1 + 2, Col: ctry, Value: "Francia"},
			}); err != nil {
				t.Fatal(err)
			}
			if !m.Satisfied() {
				t.Fatal("batch repaired the promoted class")
			}
			assertMatchesDetect("batch repair")
		})
	}
}

// TestMonitorReportAtEpochs pins the epoch snapshot semantics: every
// mutation publishes a new epoch, ReportAt replays any retained epoch
// byte-identically, and epochs evicted from the retention window (or
// never published) are errors.
func TestMonitorReportAtEpochs(t *testing.T) {
	rel, ont := table1(t)
	schema := rel.Schema()
	sigma := Set{MustParse(schema, "SYMP, DIAG -> MED")}
	m, err := NewMonitorSharded(context.Background(), rel, ont, sigma, 4, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if m.Epoch() != 0 {
		t.Fatalf("initial epoch = %d", m.Epoch())
	}
	med := schema.MustIndex("MED")

	history := map[uint64]string{}
	snap := func() {
		rep, err := json.Marshal(m.Report())
		if err != nil {
			t.Fatal(err)
		}
		history[m.Epoch()] = string(rep)
	}
	snap()
	if _, err := m.Update(7, med, "unknown-a"); err != nil {
		t.Fatal(err)
	}
	if m.Epoch() != 1 {
		t.Fatalf("epoch after update = %d, want 1", m.Epoch())
	}
	snap()
	if err := m.ApplyBatch([]CellUpdate{{Row: 8, Col: med, Value: "unknown-b"}}); err != nil {
		t.Fatal(err)
	}
	snap()
	if _, err := m.AppendRow([]string{"FR", "France", "fever", "CT", "flu", "doliprane"}); err != nil {
		t.Fatal(err)
	}
	snap()

	for epoch, want := range history {
		rep, err := m.ReportAt(epoch)
		if err != nil {
			t.Fatalf("epoch %d: %v", epoch, err)
		}
		got, _ := json.Marshal(rep)
		if string(got) != want {
			t.Fatalf("epoch %d replay diverged\n got %s\nwant %s", epoch, got, want)
		}
	}
	if _, err := m.ReportAt(m.Epoch() + 1); err == nil {
		t.Fatal("future epoch must error")
	}
	// Push the early epochs out of the retention window.
	for i := 0; i < epochRetention+2; i++ {
		if _, err := m.Update(7, med, fmt.Sprintf("churn-%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := m.ReportAt(0); err == nil {
		t.Fatal("evicted epoch must error")
	}
	if _, err := m.ReportAt(m.Epoch()); err != nil {
		t.Fatalf("newest epoch must stay readable: %v", err)
	}
}

// TestMonitorConcurrentReport drives a stream of batches and appends
// while reader goroutines continuously call Report, ReportAt, Satisfied,
// ViolationCount, and Epoch. Run under -race (make race) this pins the
// snapshot-consistency contract: readers never block the writer and only
// ever observe fully published epochs — every observed report must equal
// the canonical report of some published epoch.
func TestMonitorConcurrentReport(t *testing.T) {
	ont, yPool, zPool := monitorStreamOntology()
	schema := relation.MustSchema("P", "Q", "Y", "Z")
	rng := rand.New(rand.NewSource(11))
	rows := make([][]string, 0, 64)
	for i := 0; i < 64; i++ {
		rows = append(rows, []string{
			fmt.Sprintf("p%d", rng.Intn(8)),
			fmt.Sprintf("q%d", rng.Intn(3)),
			yPool[rng.Intn(len(yPool))],
			zPool[rng.Intn(len(zPool))],
		})
	}
	rel, err := relation.FromRows(schema, rows)
	if err != nil {
		t.Fatal(err)
	}
	sigma := Set{
		MustParse(schema, "P -> Y"),
		MustParse(schema, "P, Q -> Z"),
	}
	m, err := NewMonitorSharded(context.Background(), rel, ont, sigma, 8, 0, nil)
	if err != nil {
		t.Fatal(err)
	}

	// The writer records each epoch's canonical report as it publishes;
	// readers assert any report they observe matches its epoch's record.
	var mu sync.Mutex
	canonical := map[uint64]string{}
	record := func() {
		rep, err := json.Marshal(m.Report())
		if err != nil {
			t.Error(err)
			return
		}
		mu.Lock()
		canonical[m.Epoch()] = string(rep)
		mu.Unlock()
	}
	record()

	stop := make(chan struct{})
	var readers sync.WaitGroup
	for r := 0; r < 3; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				epoch := m.Epoch()
				rep, err := m.ReportAt(epoch)
				if err != nil {
					continue // evicted between Epoch() and ReportAt
				}
				got, err := json.Marshal(rep)
				if err != nil {
					t.Error(err)
					return
				}
				if rep.TuplesFlagged < len(rep.Violations) {
					t.Errorf("epoch %d: %d violations but %d flagged tuples", epoch, len(rep.Violations), rep.TuplesFlagged)
					return
				}
				mu.Lock()
				want, ok := canonical[epoch]
				mu.Unlock()
				// The writer may not have recorded this epoch yet (record
				// happens after publish); skip unrecorded epochs.
				if ok && string(got) != want {
					t.Errorf("epoch %d: concurrent report diverged\n got %s\nwant %s", epoch, got, want)
					return
				}
				m.Satisfied()
				m.ViolationCount()
			}
		}()
	}

	yCol, zCol := schema.MustIndex("Y"), schema.MustIndex("Z")
	for step := 0; step < 120; step++ {
		if step%4 == 3 {
			if _, err := m.AppendRow([]string{
				fmt.Sprintf("p%d", rng.Intn(8)),
				fmt.Sprintf("q%d", rng.Intn(3)),
				yPool[rng.Intn(len(yPool))],
				zPool[rng.Intn(len(zPool))],
			}); err != nil {
				t.Fatal(err)
			}
		} else {
			batch := make([]CellUpdate, 0, 8)
			for j := 0; j < 2+rng.Intn(7); j++ {
				col, pool := yCol, yPool
				if rng.Intn(2) == 0 {
					col, pool = zCol, zPool
				}
				batch = append(batch, CellUpdate{Row: rng.Intn(m.NumRows()), Col: col, Value: pool[rng.Intn(len(pool))]})
			}
			if err := m.ApplyBatch(batch); err != nil {
				t.Fatal(err)
			}
		}
		record()
	}
	close(stop)
	readers.Wait()

	got, _ := json.Marshal(m.Report())
	want, _ := json.Marshal(Detect(rel, ont, sigma))
	if string(got) != string(want) {
		t.Fatalf("final report diverged from fresh Detect\n got %s\nwant %s", got, want)
	}
}
