package core

import (
	"fmt"
	"sync/atomic"
)

// epochRetention is how many published epochs stay readable through
// ReportAt. A small window: snapshots alias materialized records, so
// retained epochs cost only their slice headers, but an unbounded history
// would pin every record ever published.
const epochRetention = 8

// shardSnap is one shard's frozen violation state: the materialized
// records of its violating classes and the stable tuple lists of its
// FD-only classes, in no particular order (the cross-shard merge imposes
// the canonical one). A shardSnap is immutable once built.
type shardSnap struct {
	viol     []*Violation
	fdTuples [][]int32
}

// epochSnap is one published monitor state: the epoch stamp and every
// shard's snapshot at that point. Immutable once published.
type epochSnap struct {
	epoch  uint64
	shards []*shardSnap
}

// violations returns the number of violating classes in the snapshot.
func (es *epochSnap) violations() int {
	n := 0
	for _, ss := range es.shards {
		n += len(ss.viol)
	}
	return n
}

// historyPtr is the atomically swapped retention window of published
// epochs, ordered oldest to newest and never mutated in place.
type historyPtr = atomic.Pointer[[]*epochSnap]

// rebuildSnap freezes the shard's current violation maps into a fresh
// snapshot. The old snapshot is never mutated — epochs already published
// keep aliasing it.
func (sh *monitorShard) rebuildSnap() {
	snap := &shardSnap{}
	for i := range sh.viol {
		for _, v := range sh.viol[i] {
			snap.viol = append(snap.viol, v)
		}
		for _, ts := range sh.fdOnly[i] {
			snap.fdTuples = append(snap.fdTuples, ts)
		}
	}
	sh.snap = snap
}

// refreshSnaps rebuilds the snapshots of shards the current operation
// marked stale (sequential paths; batch commit rebuilds inside the
// parallel merge stage).
func (m *Monitor) refreshSnaps() {
	for s, dirty := range m.snapDirty {
		if dirty {
			m.shards[s].rebuildSnap()
			m.snapDirty[s] = false
		}
	}
}

// publishInit publishes epoch 0, the state right after construction.
func (m *Monitor) publishInit() {
	snaps := make([]*shardSnap, m.nShards)
	for s, sh := range m.shards {
		snaps[s] = sh.snap
	}
	hist := []*epochSnap{{epoch: 0, shards: snaps}}
	m.history.Store(&hist)
}

// publish stamps the shards' current snapshots with the next epoch and
// swaps them into the retention window (copy-on-write, so concurrent
// readers holding the old window are unaffected).
func (m *Monitor) publish() {
	snaps := make([]*shardSnap, m.nShards)
	for s, sh := range m.shards {
		snaps[s] = sh.snap
	}
	m.epoch++
	es := &epochSnap{epoch: m.epoch, shards: snaps}
	hist := *m.history.Load()
	next := make([]*epochSnap, 0, len(hist)+1)
	next = append(next, hist...)
	next = append(next, es)
	if len(next) > epochRetention {
		next = next[len(next)-epochRetention:]
	}
	m.history.Store(&next)
}

// latest returns the newest published epoch (always present).
func (m *Monitor) latest() *epochSnap {
	hist := *m.history.Load()
	return hist[len(hist)-1]
}

// Epoch returns the stamp of the newest published state: 0 right after
// construction, incremented by every mutating operation. Safe to call
// concurrently with the writer.
func (m *Monitor) Epoch() uint64 {
	return m.latest().epoch
}

// Report materializes the current violation state as a Detect-shaped
// report: canonically sorted explained violations, distinct flagged
// tuples, and the FD-only false-positive count. For any sequence of
// updates, batches, and appends — and any shard and worker count — the
// report is byte-identical to running Detect from scratch on the final
// instance; the bench and the equivalence property test assert exactly
// that. Report reads only the latest immutable snapshot, so it is safe to
// call concurrently with a subsequent ApplyBatch and never blocks the
// writer. Cost is proportional to the flagged classes, not the instance.
// The returned record slices alias the snapshot and must not be mutated.
func (m *Monitor) Report() *Report {
	return reportFrom(m.latest())
}

// ReportAt materializes the violation state as of the given epoch, which
// must still be inside the retention window (the last 8 published
// epochs). Safe to call concurrently with the writer.
func (m *Monitor) ReportAt(epoch uint64) (*Report, error) {
	hist := *m.history.Load()
	for _, es := range hist {
		if es.epoch == epoch {
			return reportFrom(es), nil
		}
	}
	return nil, fmt.Errorf("core: epoch %d not retained (window [%d, %d])", epoch, hist[0].epoch, hist[len(hist)-1].epoch)
}

// reportFrom merges one epoch's shard snapshots into the canonical
// report. Shard snapshots are unordered, but sortViolations' comparator
// (consequent, antecedent, first tuple) is a strict total order over
// distinct classes, and the flagged/FD-only counters are set unions — so
// the merge result is independent of shard count and iteration order.
func reportFrom(es *epochSnap) *Report {
	rep := &Report{}
	flagged := make(map[int]struct{})
	fdOnly := make(map[int]struct{})
	for _, ss := range es.shards {
		for _, v := range ss.viol {
			rep.Violations = append(rep.Violations, *v)
			for _, t := range v.Tuples {
				flagged[t] = struct{}{}
			}
		}
		for _, ts := range ss.fdTuples {
			for _, t := range ts {
				fdOnly[int(t)] = struct{}{}
			}
		}
	}
	rep.TuplesFlagged = len(flagged)
	rep.FDOnlyFlagged = len(fdOnly)
	sortViolations(rep.Violations)
	return rep
}
