package core

import (
	"math"
	"testing"

	"github.com/fastofd/fastofd/internal/ontology"
	"github.com/fastofd/fastofd/internal/relation"
)

// table1 builds the paper's Table 1 clinical-trials sample (t1..t11, the
// original values) and the geographic + medication ontologies of Figure 1.
func table1(t *testing.T) (*relation.Relation, *ontology.Ontology) {
	t.Helper()
	schema := relation.MustSchema("CC", "CTRY", "SYMP", "TEST", "DIAG", "MED")
	rel, err := relation.FromRows(schema, [][]string{
		{"US", "USA", "joint pain", "CT", "osteoarthritis", "ibuprofen"},
		{"IN", "India", "joint pain", "CT", "osteoarthritis", "NSAID"},
		{"CA", "Canada", "joint pain", "CT", "osteoarthritis", "naproxen"},
		{"IN", "Bharat", "nausea", "EEG", "migrane", "analgesic"},
		{"US", "America", "nausea", "EEG", "migrane", "tylenol"},
		{"US", "USA", "nausea", "EEG", "migrane", "acetaminophen"},
		{"IN", "India", "chest pain", "X-ray", "hypertension", "morphine"},
		{"US", "USA", "headache", "CT", "hypertension", "cartia"},
		{"US", "USA", "headache", "MRI", "hypertension", "tiazac"},
		{"US", "America", "headache", "MRI", "hypertension", "tiazac"},
		{"US", "USA", "headache", "CT", "hypertension", "tiazac"},
	})
	if err != nil {
		t.Fatal(err)
	}
	o := ontology.New()
	// Geography (single GEO sense).
	o.MustAddClass("United States of America", "GEO", ontology.NoClass, "US", "USA", "America", "United States")
	o.MustAddClass("India", "GEO", ontology.NoClass, "IN", "Bharat")
	o.MustAddClass("Canada", "GEO", ontology.NoClass, "CA")
	// Medication (FDA sense), following Figure 1: NSAID covers ibuprofen
	// and naproxen; analgesic covers tylenol and acetaminophen; diltiazem
	// hydrochloride covers cartia and tiazac.
	o.MustAddClass("NSAID", "FDA", ontology.NoClass, "ibuprofen", "naproxen")
	o.MustAddClass("analgesic", "FDA", ontology.NoClass, "tylenol", "acetaminophen")
	o.MustAddClass("diltiazem hydrochloride", "FDA", ontology.NoClass, "cartia", "tiazac")
	return rel, o
}

func TestPaperExample1(t *testing.T) {
	rel, ont := table1(t)
	schema := rel.Schema()
	v := NewVerifier(rel, ont, nil)

	// F1 as a traditional FD fails (USA vs America), but as a synonym OFD
	// it holds (Example 3).
	f1 := MustParse(schema, "CC -> CTRY")
	if v.HoldsFD(f1) {
		t.Fatal("CC -> CTRY should fail as a plain FD")
	}
	if !v.HoldsSyn(f1) {
		t.Fatal("CC ->syn CTRY should hold with the geo ontology")
	}

	// F2: [SYMP, DIAG] -> MED fails as FD; as OFD the NSAID / analgesic /
	// diltiazem classes make all equivalence classes consistent except the
	// morphine singleton (which cannot violate).
	f2 := MustParse(schema, "SYMP, DIAG -> MED")
	if v.HoldsFD(f2) {
		t.Fatal("SYMP,DIAG -> MED should fail as a plain FD")
	}
	if !v.HoldsSyn(f2) {
		for _, viol := range v.Violations(f2) {
			t.Logf("violating class: %v", viol)
		}
		t.Fatal("SYMP,DIAG ->syn MED should hold with the drug ontology")
	}
	if !v.SatisfiesAll(Set{f1, f2}) {
		t.Fatal("SatisfiesAll inconsistent with individual checks")
	}
}

func TestPairwiseVersusClassSemantics(t *testing.T) {
	// The paper's Table 2: every pair of Y values shares a class, but the
	// intersection over the whole equivalence class is empty, so the OFD
	// must NOT hold — tuple-pair verification is insufficient for OFDs.
	schema := relation.MustSchema("X", "Y")
	rel, _ := relation.FromRows(schema, [][]string{
		{"u", "v"},
		{"u", "w"},
		{"u", "z"},
	})
	o := ontology.New()
	o.MustAddClass("C", "S", ontology.NoClass, "v", "z")
	o.MustAddClass("D", "S", ontology.NoClass, "v", "w")
	o.MustAddClass("F", "S", ontology.NoClass, "w", "z")
	v := NewVerifier(rel, o, nil)
	d := MustParse(schema, "X -> Y")
	if v.HoldsSyn(d) {
		t.Fatal("OFD must fail: pairwise senses exist but no common sense")
	}
	// Each two-tuple sub-instance satisfies the OFD.
	for drop := 0; drop < 3; drop++ {
		var rows [][]string
		for i := 0; i < 3; i++ {
			if i != drop {
				rows = append(rows, rel.Row(i))
			}
		}
		sub, _ := relation.FromRows(schema, rows)
		if !NewVerifier(sub, o, nil).HoldsSyn(d) {
			t.Fatalf("pair sub-instance (without %d) should satisfy", drop)
		}
	}
}

func TestOFDSubsumesFD(t *testing.T) {
	// With an empty ontology, an OFD degenerates to a traditional FD.
	schema := relation.MustSchema("A", "B")
	rel, _ := relation.FromRows(schema, [][]string{
		{"x", "1"}, {"x", "1"}, {"y", "2"},
	})
	v := NewVerifier(rel, ontology.New(), nil)
	d := MustParse(schema, "A -> B")
	if !v.HoldsSyn(d) || !v.HoldsFD(d) {
		t.Fatal("holding FD must hold as OFD under empty ontology")
	}
	rel.SetString(1, 1, "9")
	v2 := NewVerifier(rel, ontology.New(), nil)
	if v2.HoldsSyn(d) || v2.HoldsFD(d) {
		t.Fatal("broken FD must fail as OFD under empty ontology")
	}
}

func TestSupportAndApprox(t *testing.T) {
	schema := relation.MustSchema("A", "B")
	rel, _ := relation.FromRows(schema, [][]string{
		{"x", "u1"}, {"x", "u2"}, {"x", "bogus"},
		{"y", "w"}, {"y", "w"},
		{"z", "solo"},
	})
	o := ontology.New()
	o.MustAddClass("U", "S", ontology.NoClass, "u1", "u2")
	v := NewVerifier(rel, o, nil)
	d := MustParse(schema, "A -> B")
	// Class x: best coverage 2 of 3 (sense U); class y: equal values (2);
	// class z: singleton. Support = (6 - (3-2)) / 6 = 5/6.
	got := v.Support(d)
	want := 5.0 / 6.0
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("support = %v, want %v", got, want)
	}
	if v.HoldsSyn(d) {
		t.Fatal("exact OFD should fail")
	}
	if !v.HoldsApprox(d, 0.8) {
		t.Fatal("approximate OFD at κ=0.8 should hold")
	}
	if v.HoldsApprox(d, 0.9) {
		t.Fatal("approximate OFD at κ=0.9 should fail")
	}
	if len(v.Violations(d)) != 1 {
		t.Fatalf("violations = %v", v.Violations(d))
	}
}

func TestTrivialAlwaysHolds(t *testing.T) {
	schema := relation.MustSchema("A", "B")
	rel, _ := relation.FromRows(schema, [][]string{{"x", "1"}, {"x", "2"}})
	v := NewVerifier(rel, ontology.New(), nil)
	d := OFD{LHS: schema.MustSet("A", "B"), RHS: 1}
	if !v.HoldsSyn(d) || !v.HoldsFD(d) || v.Support(d) != 1 {
		t.Fatal("trivial OFD must hold with support 1")
	}
}

func TestNonEqualConsequentFraction(t *testing.T) {
	rel, ont := table1(t)
	v := NewVerifier(rel, ont, nil)
	f1 := MustParse(rel.Schema(), "CC -> CTRY")
	// CC classes: US {USA×4, America×2 → hm t1,t5,t6,t8..t11: USA×5,
	// America×2}, IN {India×2, Bharat}, CA singleton (stripped).
	// Non-modal tuples: 2 (America) + 1 (Bharat) of 10 covered tuples.
	got := v.NonEqualConsequentFraction(f1)
	want := 3.0 / 10.0
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("fraction = %v, want %v", got, want)
	}
}

func TestVerifierHandlesValuesInternedAfterBuild(t *testing.T) {
	// Repairs intern new strings after the verifier's names table was
	// precomputed; the fallback path must consult the ontology directly.
	schema := relation.MustSchema("A", "B")
	rel, _ := relation.FromRows(schema, [][]string{{"x", "u1"}, {"x", "u2"}})
	o := ontology.New()
	o.MustAddClass("U", "S", ontology.NoClass, "u1", "u2", "u3")
	v := NewVerifier(rel, o, nil)
	rel.SetString(1, 1, "u3") // new dictionary entry
	if !v.HoldsSyn(MustParse(schema, "A -> B")) {
		t.Fatal("verifier must handle post-build interned values")
	}
}
