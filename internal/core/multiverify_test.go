package core

import (
	"fmt"
	"math/rand"
	"testing"

	"github.com/fastofd/fastofd/internal/ontology"
	"github.com/fastofd/fastofd/internal/relation"
)

// randomSynInstance builds a small random relation plus a random synonym
// ontology over its value universe — covered and uncovered consequents mix
// freely, so the multi-RHS kernel's two per-class branches (sense test and
// FD-equality walk) both see traffic.
func randomSynInstance(rng *rand.Rand) (*relation.Relation, *ontology.Ontology) {
	cols := 2 + rng.Intn(4)
	rows := 2 + rng.Intn(14)
	domain := 1 + rng.Intn(5)
	names := make([]string, cols)
	for i := range names {
		names[i] = fmt.Sprintf("A%d", i)
	}
	rel := relation.New(relation.MustSchema(names...))
	row := make([]string, cols)
	for r := 0; r < rows; r++ {
		for c := range row {
			row[c] = fmt.Sprintf("v%d", rng.Intn(domain))
		}
		rel.AppendRow(row)
	}
	o := ontology.New()
	numClasses := rng.Intn(5)
	for c := 0; c < numClasses; c++ {
		var syn []string
		for v := 0; v < domain; v++ {
			if rng.Intn(2) == 0 {
				syn = append(syn, fmt.Sprintf("v%d", v))
			}
		}
		o.MustAddClass(fmt.Sprintf("cls%d", c), fmt.Sprintf("sense%d", c%2), ontology.NoClass, syn...)
	}
	return rel, o
}

// TestHoldsSynMultiMatchesOnePass is the wave kernel's correctness
// property: for every antecedent set and every consequent list,
// HoldsSynMulti's k-th verdict equals HoldsSynOnePass on (lhs, rhs[k]) —
// including trivial consequents inside the antecedent, duplicated
// consequents, and single-element lists.
func TestHoldsSynMultiMatchesOnePass(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 40; trial++ {
		rel, ont := randomSynInstance(rng)
		v := NewVerifier(rel, ont, nil)
		nCols := rel.NumCols()
		allRHS := make([]int, nCols)
		for c := range allRHS {
			allRHS[c] = c
		}
		for bits := 0; bits < 1<<nCols; bits++ {
			lhs := relation.AttrSet(bits)
			got := v.HoldsSynMulti(lhs, allRHS)
			for k, rhs := range allRHS {
				want := v.HoldsSynOnePass(OFD{LHS: lhs, RHS: rhs})
				if got[k] != want {
					t.Fatalf("trial %d: HoldsSynMulti(%v)[%d]=%v, HoldsSynOnePass(%v->%d)=%v",
						trial, lhs, rhs, got[k], lhs, rhs, want)
				}
			}
			// Duplicates and permutations answer per-slot, independent of
			// the other slots sharing the traversal.
			if nCols >= 2 {
				dup := []int{allRHS[nCols-1], allRHS[0], allRHS[0]}
				gotDup := v.HoldsSynMulti(lhs, dup)
				for k, rhs := range dup {
					if want := v.HoldsSynOnePass(OFD{LHS: lhs, RHS: rhs}); gotDup[k] != want {
						t.Fatalf("trial %d: duplicated rhs list diverged at slot %d (%v->%d)", trial, k, lhs, rhs)
					}
				}
			}
		}
		if out := v.HoldsSynMulti(relation.EmptySet, nil); len(out) != 0 {
			t.Fatalf("trial %d: empty consequent list returned %v", trial, out)
		}
	}
}

// FuzzHoldsSynMulti drives the same equivalence from fuzzed instance
// seeds and antecedent masks, so the corpus explores class shapes the
// fixed-seed property test does not.
func FuzzHoldsSynMulti(f *testing.F) {
	f.Add(int64(1), uint8(0b01))
	f.Add(int64(42), uint8(0b11))
	f.Add(int64(-7), uint8(0xFF))
	f.Fuzz(func(t *testing.T, seed int64, lhsBits uint8) {
		rng := rand.New(rand.NewSource(seed))
		rel, ont := randomSynInstance(rng)
		v := NewVerifier(rel, ont, nil)
		nCols := rel.NumCols()
		lhs := relation.AttrSet(lhsBits) & relation.AttrSet(uint64(1)<<uint(nCols)-1)
		rhs := make([]int, nCols)
		for c := range rhs {
			rhs[c] = c
		}
		got := v.HoldsSynMulti(lhs, rhs)
		if len(got) != len(rhs) {
			t.Fatalf("verdict length %d for %d consequents", len(got), len(rhs))
		}
		for k, c := range rhs {
			if want := v.HoldsSynOnePass(OFD{LHS: lhs, RHS: c}); got[k] != want {
				t.Fatalf("seed %d lhs %v rhs %d: multi=%v one-pass=%v", seed, lhs, c, got[k], want)
			}
		}
	})
}
