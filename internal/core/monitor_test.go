package core

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"testing"

	"github.com/fastofd/fastofd/internal/ontology"
	"github.com/fastofd/fastofd/internal/relation"
)

func TestMonitorIncrementalMatchesFull(t *testing.T) {
	rel, ont := table1(t)
	schema := rel.Schema()
	sigma := Set{
		MustParse(schema, "CC -> CTRY"),
		MustParse(schema, "SYMP, DIAG -> MED"),
	}
	m, err := NewMonitor(rel, ont, sigma)
	if err != nil {
		t.Fatal(err)
	}
	if !m.Satisfied() {
		t.Fatal("table 1 should satisfy Σ initially")
	}

	// Randomized update sequence on consequent columns; after each update
	// the monitor's verdict must match full re-verification.
	rng := rand.New(rand.NewSource(3))
	medCol := schema.MustIndex("MED")
	ctryCol := schema.MustIndex("CTRY")
	values := []string{"cartia", "tiazac", "ASA", "adizem", "ibuprofen", "naproxen", "USA", "Bharat"}
	for step := 0; step < 60; step++ {
		col := medCol
		if rng.Intn(2) == 0 {
			col = ctryCol
		}
		row := rng.Intn(rel.NumRows())
		if _, err := m.Update(row, col, values[rng.Intn(len(values))]); err != nil {
			t.Fatal(err)
		}
		full := NewVerifier(rel, ont, nil).SatisfiesAll(sigma)
		if m.Satisfied() != full {
			t.Fatalf("step %d: monitor=%v full=%v", step, m.Satisfied(), full)
		}
	}
}

func TestMonitorRejectsAntecedentUpdates(t *testing.T) {
	rel, ont := table1(t)
	sigma := Set{MustParse(rel.Schema(), "CC -> CTRY")}
	m, err := NewMonitor(rel, ont, sigma)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Update(0, rel.Schema().MustIndex("CC"), "CA"); err == nil {
		t.Fatal("antecedent update must be rejected")
	}
	if _, err := m.Update(999, 0, "x"); err == nil {
		t.Fatal("out-of-range update must be rejected")
	}
	if err := m.ApplyBatch([]CellUpdate{{Row: 0, Col: rel.Schema().MustIndex("CC"), Value: "CA"}}); err == nil {
		t.Fatal("batched antecedent update must be rejected")
	}
}

func TestMonitorRejectsOverlappingSigma(t *testing.T) {
	rel, ont := table1(t)
	sigma := Set{
		MustParse(rel.Schema(), "CC -> CTRY"),
		MustParse(rel.Schema(), "CTRY -> MED"),
	}
	if _, err := NewMonitor(rel, ont, sigma); err == nil {
		t.Fatal("overlapping Σ must be rejected")
	}
}

func TestMonitorViolationBookkeeping(t *testing.T) {
	rel, ont := table1(t)
	schema := rel.Schema()
	sigma := Set{MustParse(schema, "SYMP, DIAG -> MED")}
	m, err := NewMonitor(rel, ont, sigma)
	if err != nil {
		t.Fatal(err)
	}
	med := schema.MustIndex("MED")
	// Break the headache/hypertension class.
	if _, err := m.Update(7, med, "unknown-drug"); err != nil {
		t.Fatal(err)
	}
	if m.Satisfied() || m.ViolationCount() != 1 {
		t.Fatalf("expected 1 violation, got %d", m.ViolationCount())
	}
	vc := m.ViolatingClasses()
	if len(vc[0]) != 1 {
		t.Fatalf("violating classes = %v", vc)
	}
	// Fix it again.
	if _, err := m.Update(7, med, "cartia"); err != nil {
		t.Fatal(err)
	}
	if !m.Satisfied() {
		t.Fatal("violation should have cleared")
	}
}

// TestMonitorUpdateNoOp: writing a cell's current value must skip
// re-verification entirely and report unchanged.
func TestMonitorUpdateNoOp(t *testing.T) {
	rel, ont := table1(t)
	schema := rel.Schema()
	sigma := Set{MustParse(schema, "SYMP, DIAG -> MED")}
	m, err := NewMonitor(rel, ont, sigma)
	if err != nil {
		t.Fatal(err)
	}
	med := schema.MustIndex("MED")
	before := m.Reverified()
	changed, err := m.Update(7, med, rel.String(7, med))
	if err != nil {
		t.Fatal(err)
	}
	if changed {
		t.Fatal("no-op update must report unchanged")
	}
	if m.Reverified() != before {
		t.Fatalf("no-op update re-verified %d classes", m.Reverified()-before)
	}
	// The batched path must skip no-ops the same way.
	if err := m.ApplyBatch([]CellUpdate{{Row: 7, Col: med, Value: rel.String(7, med)}}); err != nil {
		t.Fatal(err)
	}
	if m.Reverified() != before {
		t.Fatal("no-op batch must not re-verify")
	}
	// A real update does re-verify.
	if changed, err = m.Update(7, med, "unknown-drug"); err != nil || !changed {
		t.Fatalf("changed=%v err=%v", changed, err)
	}
	if m.Reverified() != before+1 {
		t.Fatalf("expected exactly 1 re-verification, got %d", m.Reverified()-before)
	}
}

// TestMonitorAppendRow covers the three LHS-key join cases: joining an
// existing class, birthing a class from a formerly-singleton row, and
// recording a fresh singleton — each verified against a fresh Detect.
func TestMonitorAppendRow(t *testing.T) {
	rel, ont := table1(t)
	schema := rel.Schema()
	sigma := Set{
		MustParse(schema, "CC -> CTRY"),
		MustParse(schema, "SYMP, DIAG -> MED"),
	}
	m, err := NewMonitor(rel, ont, sigma)
	if err != nil {
		t.Fatal(err)
	}
	assertMatchesDetect := func(step string) {
		t.Helper()
		got, err1 := json.Marshal(m.Report())
		want, err2 := json.Marshal(Detect(rel, ont, sigma))
		if err1 != nil || err2 != nil {
			t.Fatal(err1, err2)
		}
		if string(got) != string(want) {
			t.Fatalf("%s: monitor report diverged\n got %s\nwant %s", step, got, want)
		}
	}

	// Join an existing class with a synonym value: stays satisfied.
	id, err := m.AppendRow([]string{"US", "United States", "headache", "CT", "hypertension", "cartia"})
	if err != nil {
		t.Fatal(err)
	}
	if id != 11 {
		t.Fatalf("row id = %d", id)
	}
	if !m.Satisfied() {
		t.Fatal("synonym append should keep Σ satisfied")
	}
	assertMatchesDetect("join")

	// Fresh antecedent key: a singleton, cannot violate.
	if _, err := m.AppendRow([]string{"FR", "France", "fever", "CT", "flu", "doliprane"}); err != nil {
		t.Fatal(err)
	}
	if !m.Satisfied() {
		t.Fatal("singleton append cannot violate")
	}
	assertMatchesDetect("singleton")

	// Same key again: births a two-tuple class from the singleton, with a
	// conflicting consequent — must violate CC -> CTRY now.
	if _, err := m.AppendRow([]string{"FR", "Francia", "fever", "CT", "flu", "doliprane"}); err != nil {
		t.Fatal(err)
	}
	if m.Satisfied() {
		t.Fatal("class born from singleton must violate on conflicting consequents")
	}
	assertMatchesDetect("birth")

	// Shape errors are rejected without mutating the relation.
	if _, err := m.AppendRow([]string{"too", "short"}); err == nil {
		t.Fatal("short row must be rejected")
	}
	if m.NumRows() != 14 {
		t.Fatalf("rows = %d, want 14", m.NumRows())
	}
}

// TestMonitorApplyBatchDedupsAndMatches: a batch touching one class many
// times re-verifies it once, and the resulting state matches a fresh
// Detect for every worker count.
func TestMonitorApplyBatchDedupsAndMatches(t *testing.T) {
	for _, workers := range []int{1, 2, 0} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			rel, ont := table1(t)
			schema := rel.Schema()
			sigma := Set{
				MustParse(schema, "CC -> CTRY"),
				MustParse(schema, "SYMP, DIAG -> MED"),
			}
			m, err := NewMonitor(rel, ont, sigma)
			if err != nil {
				t.Fatal(err)
			}
			m.Workers = workers
			med := schema.MustIndex("MED")
			before := m.Reverified()
			// Three updates into the same headache/hypertension class (rows
			// 7, 8, 10 share SYMP=headache? rows 7..10 differ in TEST which
			// is not in the LHS — SYMP,DIAG identical) → one dirty class.
			err = m.ApplyBatch([]CellUpdate{
				{Row: 7, Col: med, Value: "unknown-a"},
				{Row: 8, Col: med, Value: "unknown-b"},
				{Row: 10, Col: med, Value: "unknown-c"},
			})
			if err != nil {
				t.Fatal(err)
			}
			if got := m.Reverified() - before; got != 1 {
				t.Fatalf("batch re-verified %d classes, want 1 (dedup)", got)
			}
			got, _ := json.Marshal(m.Report())
			want, _ := json.Marshal(Detect(rel, ont, sigma))
			if string(got) != string(want) {
				t.Fatalf("batched state diverged from Detect\n got %s\nwant %s", got, want)
			}
		})
	}
}

// monitorStreamOntology builds a small multi-sense ontology over generated
// value pools for the stream property test.
func monitorStreamOntology() (*ontology.Ontology, []string, []string) {
	ont := ontology.New()
	var yPool, zPool []string
	for g := 0; g < 6; g++ {
		ys := []string{
			fmt.Sprintf("y%d-a", g), fmt.Sprintf("y%d-b", g), fmt.Sprintf("y%d-c", g),
		}
		ont.MustAddClass(fmt.Sprintf("Y%d", g), "S1", ontology.NoClass, ys...)
		yPool = append(yPool, ys...)
		zs := []string{
			fmt.Sprintf("z%d-a", g), fmt.Sprintf("z%d-b", g),
		}
		ont.MustAddClass(fmt.Sprintf("Z%d", g), "S2", ontology.NoClass, zs...)
		zPool = append(zPool, zs...)
	}
	// The "jaguar" effect: values shared across senses.
	ont.MustAddClass("Ymix", "S3", ontology.NoClass, "y0-a", "y1-a", "y2-a")
	// Out-of-ontology junk makes classes violate.
	yPool = append(yPool, "junk-y1", "junk-y2")
	zPool = append(zPool, "junk-z1", "junk-z2")
	return ont, yPool, zPool
}

// TestMonitorStreamEquivalence is the equivalence property test: a seeded
// random stream of appends, single updates, and batched updates must leave
// the monitor's violation state byte-identical to a fresh Detect on the
// final instance, for every combination of shards ∈ {1, 4, 16} and
// Workers ∈ {1, 2, 0}; all combinations must also agree with each other.
// Runs under -race via make race, which exercises the parallel per-shard
// re-verification and concurrent names-table extension.
func TestMonitorStreamEquivalence(t *testing.T) {
	ont, yPool, zPool := monitorStreamOntology()
	schema := relation.MustSchema("P", "Q", "Y", "Z")
	newRow := func(rng *rand.Rand) []string {
		return []string{
			fmt.Sprintf("p%d", rng.Intn(8)),
			fmt.Sprintf("q%d", rng.Intn(3)),
			yPool[rng.Intn(len(yPool))],
			zPool[rng.Intn(len(zPool))],
		}
	}
	type combo struct{ shards, workers int }
	var combos []combo
	for _, s := range []int{1, 4, 16} {
		for _, w := range []int{1, 2, 0} {
			combos = append(combos, combo{s, w})
		}
	}
	var reports []string
	for _, c := range combos {
		rng := rand.New(rand.NewSource(42))
		rows := make([][]string, 0, 50)
		for i := 0; i < 50; i++ {
			rows = append(rows, newRow(rng))
		}
		rel, err := relation.FromRows(schema, rows)
		if err != nil {
			t.Fatal(err)
		}
		sigma := Set{
			MustParse(schema, "P -> Y"),
			MustParse(schema, "P, Q -> Z"),
		}
		m, err := NewMonitorSharded(context.Background(), rel, ont, sigma, c.shards, c.workers, nil)
		if err != nil {
			t.Fatal(err)
		}
		if m.NumShards() != c.shards {
			t.Fatalf("shards = %d, want %d", m.NumShards(), c.shards)
		}
		workers := c.workers

		yCol, zCol := schema.MustIndex("Y"), schema.MustIndex("Z")
		randUpdate := func() CellUpdate {
			col, pool := yCol, yPool
			if rng.Intn(2) == 0 {
				col, pool = zCol, zPool
			}
			return CellUpdate{Row: rng.Intn(m.NumRows()), Col: col, Value: pool[rng.Intn(len(pool))]}
		}
		for step := 0; step < 250; step++ {
			switch k := rng.Intn(10); {
			case k < 3: // append
				if _, err := m.AppendRow(newRow(rng)); err != nil {
					t.Fatal(err)
				}
			case k < 6: // single update
				u := randUpdate()
				if _, err := m.Update(u.Row, u.Col, u.Value); err != nil {
					t.Fatal(err)
				}
			default: // batch
				batch := make([]CellUpdate, 0, 12)
				for j := 0; j < 4+rng.Intn(9); j++ {
					batch = append(batch, randUpdate())
				}
				if err := m.ApplyBatch(batch); err != nil {
					t.Fatal(err)
				}
			}
			if step%50 == 0 {
				if full := NewVerifier(rel, ont, nil).SatisfiesAll(sigma); m.Satisfied() != full {
					t.Fatalf("shards=%d workers=%d step %d: monitor=%v full=%v", c.shards, workers, step, m.Satisfied(), full)
				}
			}
		}

		got, err := json.Marshal(m.Report())
		if err != nil {
			t.Fatal(err)
		}
		want, err := json.Marshal(Detect(rel, ont, sigma))
		if err != nil {
			t.Fatal(err)
		}
		if string(got) != string(want) {
			t.Fatalf("shards=%d workers=%d: final report diverged from fresh Detect\n got %s\nwant %s", c.shards, workers, got, want)
		}
		reports = append(reports, string(got))
	}
	for i := 1; i < len(reports); i++ {
		if reports[i] != reports[0] {
			t.Fatalf("reports differ across (shards, workers) combinations:\n%s\nvs\n%s", reports[0], reports[i])
		}
	}
}

// TestVerifierNamesTableExtendsOnIntern: a monitored update that interns a
// brand-new value must extend the memoized names table (so the second
// probe — and every later class scan — hits the table instead of paying
// the dictionary + ontology string lookup again).
func TestVerifierNamesTableExtendsOnIntern(t *testing.T) {
	rel, ont := table1(t)
	schema := rel.Schema()
	sigma := Set{MustParse(schema, "SYMP, DIAG -> MED")}
	m, err := NewMonitor(rel, ont, sigma)
	if err != nil {
		t.Fatal(err)
	}
	med := schema.MustIndex("MED")
	sizeBefore := rel.Dict(med).Size()
	if got := m.v.namesTableLen(med); got != sizeBefore {
		t.Fatalf("names table covers %d of %d built values", got, sizeBefore)
	}
	// "adizem" is new to the MED dictionary; the update's re-verification
	// probes it once, which must fold it (and any other new ids) into the
	// table.
	if _, err := m.Update(7, med, "adizem"); err != nil {
		t.Fatal(err)
	}
	if rel.Dict(med).Size() != sizeBefore+1 {
		t.Fatalf("dict size = %d, want %d", rel.Dict(med).Size(), sizeBefore+1)
	}
	if got := m.v.namesTableLen(med); got != sizeBefore+1 {
		t.Fatalf("names table not extended: covers %d of %d values", got, sizeBefore+1)
	}
	// Second probe: the table answers directly (no growth, still correct).
	val, _ := rel.Dict(med).Lookup("adizem")
	if names := m.v.namesOf(med, val); len(names) != 0 {
		t.Fatalf("adizem is out of the ontology, names = %v", names)
	}
	if got := m.v.namesTableLen(med); got != sizeBefore+1 {
		t.Fatalf("second probe changed the table: %d", got)
	}
}
