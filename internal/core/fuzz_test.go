package core

import (
	"strings"
	"testing"

	"github.com/fastofd/fastofd/internal/relation"
)

// FuzzParse checks that the OFD parser never panics and that successful
// parses round-trip through Format.
func FuzzParse(f *testing.F) {
	schema := relation.MustSchema("A", "B", "C", "D")
	f.Add("A -> B")
	f.Add("A,B -> C")
	f.Add(" A , C ->  D ")
	f.Add("-> A")
	f.Add("A -> ")
	f.Add("A -> B -> C")
	f.Add("Z -> B")
	f.Fuzz(func(t *testing.T, s string) {
		d, err := Parse(schema, s)
		if err != nil {
			return
		}
		// A successful parse must reference valid attributes and format
		// into a string that re-parses to the same dependency.
		if d.RHS < 0 || d.RHS >= schema.Len() {
			t.Fatalf("parsed RHS out of range: %v from %q", d, s)
		}
		formatted := d.Format(schema)
		back, err := Parse(schema, formatted)
		if err != nil {
			t.Fatalf("formatted %q does not re-parse: %v", formatted, err)
		}
		if back != d {
			t.Fatalf("round trip mismatch: %v -> %q -> %v", d, formatted, back)
		}
	})
}

// FuzzClosure checks that Closure never panics and respects its laws for
// arbitrary dependency sets.
func FuzzClosure(f *testing.F) {
	f.Add(uint16(0b101), uint8(2), uint16(0b11))
	f.Fuzz(func(t *testing.T, lhsBits uint16, rhs uint8, xBits uint16) {
		n := 8
		mask := relation.AttrSet(uint64(1)<<uint(n) - 1)
		sigma := Set{{LHS: relation.AttrSet(lhsBits) & mask, RHS: int(rhs) % n}}
		x := relation.AttrSet(xBits) & mask
		cl := Closure(sigma, x)
		if !x.SubsetOf(cl) {
			t.Fatal("closure not extensive")
		}
		if !cl.SubsetOf(mask) {
			t.Fatal("closure out of schema")
		}
	})
}

// FuzzCSV checks the CSV codec round-trips arbitrary cell content.
func FuzzCSV(f *testing.F) {
	f.Add("a", "b,with,commas", "c\nnewline")
	f.Add("", "\"quoted\"", "unicode✓")
	f.Fuzz(func(t *testing.T, c1, c2, c3 string) {
		// csv package cannot represent \r\n differences losslessly in all
		// cases; normalize like encoding/csv readers do.
		norm := func(s string) string { return strings.ReplaceAll(s, "\r\n", "\n") }
		c1, c2, c3 = norm(c1), norm(c2), norm(c3)
		if strings.ContainsRune(c1, '\r') || strings.ContainsRune(c2, '\r') || strings.ContainsRune(c3, '\r') {
			t.Skip("bare carriage returns are not CSV-representable")
		}
		schema := relation.MustSchema("X", "Y", "Z")
		rel, err := relation.FromRows(schema, [][]string{{c1, c2, c3}})
		if err != nil {
			t.Fatal(err)
		}
		var sb strings.Builder
		if err := relation.WriteCSV(&sb, rel); err != nil {
			t.Fatal(err)
		}
		back, err := relation.ReadCSV(strings.NewReader(sb.String()))
		if err != nil {
			t.Fatalf("round trip parse failed: %v (payload %q)", err, sb.String())
		}
		if d, _ := rel.DiffCells(back); d != 0 {
			t.Fatalf("round trip changed %d cells (%q %q %q)", d, c1, c2, c3)
		}
	})
}

// FuzzLHSKey fuzzes the monitor's LHS-key byte encoding for injectivity:
// two antecedent tuples encode to the same key iff they are equal
// component-wise. The fixed 4-bytes-per-attribute layout makes keys over
// one attribute list prefix-free — no value-id pair can bleed across a
// cell boundary — which is exactly what the distinct-tuples-never-collide
// guarantee of the shard LHS indexes rests on.
func FuzzLHSKey(f *testing.F) {
	f.Add(int32(0), int32(0), int32(0), int32(0))
	f.Add(int32(1), int32(0x100), int32(0x100), int32(1))
	f.Add(int32(0xFF), int32(0xFFFF), int32(0xFFFFFF), int32(1<<31-1))
	f.Add(int32(-1), int32(-1), int32(7), int32(7)) // NullValue cells
	f.Fuzz(func(t *testing.T, a0, a1, b0, b1 int32) {
		schema := relation.MustSchema("A", "B", "C")
		rel, err := relation.FromRows(schema, [][]string{
			{"x", "x", "x"},
			{"x", "x", "x"},
		})
		if err != nil {
			t.Fatal(err)
		}
		rel.SetValue(0, 0, relation.Value(a0))
		rel.SetValue(0, 1, relation.Value(a1))
		rel.SetValue(1, 0, relation.Value(b0))
		rel.SetValue(1, 1, relation.Value(b1))
		cols := []int{0, 1}
		ka := string(EncodeLHSKey(rel, cols, 0, nil))
		kb := string(EncodeLHSKey(rel, cols, 1, nil))
		equal := a0 == b0 && a1 == b1
		if (ka == kb) != equal {
			t.Fatalf("injectivity broken: (%d,%d) vs (%d,%d) keys %x vs %x", a0, a1, b0, b1, ka, kb)
		}
		if len(ka) != 8 {
			t.Fatalf("key not fixed-width: %d bytes", len(ka))
		}
		// Re-encoding is deterministic and buffer-reuse-safe.
		if again := string(EncodeLHSKey(rel, cols, 0, make([]byte, 3))); again != ka {
			t.Fatalf("re-encode differs: %x vs %x", again, ka)
		}
	})
}
