package core

import (
	"github.com/fastofd/fastofd/internal/ontology"
	"github.com/fastofd/fastofd/internal/relation"
)

// Verifier checks candidate synonym OFDs against a relation instance and an
// ontology. It precomputes, per attribute, the names(v) lookup for every
// dictionary-encoded value so that verification is linear in the number of
// tuples (paper §4.3): for each equivalence class of the stripped partition
// Π*_X it maintains a hash table of sense frequencies and tests whether
// some sense covers every distinct consequent value.
type Verifier struct {
	rel   *relation.Relation
	ont   *ontology.Ontology
	pc    *relation.PartitionCache
	names [][][]ontology.ClassID // names[col][valueID] = classes containing the value
	// covered[col] reports whether ANY value of the column appears in the
	// ontology. For uncovered columns synonym semantics degenerate to
	// syntactic equality, enabling the O(|Π|) partition-error test instead
	// of per-class scans — most attributes of a real schema (keys, counts,
	// free text) are uncovered, so this carries most of the verification.
	covered []bool
}

// NewVerifier builds a verifier over the relation and ontology, sharing the
// given partition cache (pass nil to create a private one).
func NewVerifier(rel *relation.Relation, ont *ontology.Ontology, pc *relation.PartitionCache) *Verifier {
	if pc == nil {
		pc = relation.NewPartitionCache(rel)
	}
	v := &Verifier{
		rel:     rel,
		ont:     ont,
		pc:      pc,
		names:   make([][][]ontology.ClassID, rel.NumCols()),
		covered: make([]bool, rel.NumCols()),
	}
	for c := 0; c < rel.NumCols(); c++ {
		dict := rel.Dict(c)
		tbl := make([][]ontology.ClassID, dict.Size())
		for id := 0; id < dict.Size(); id++ {
			tbl[id] = ont.Names(dict.String(relation.Value(id)))
			if len(tbl[id]) > 0 {
				v.covered[c] = true
			}
		}
		v.names[c] = tbl
	}
	return v
}

// Relation returns the verified relation.
func (v *Verifier) Relation() *relation.Relation { return v.rel }

// Ontology returns the verifier's ontology.
func (v *Verifier) Ontology() *ontology.Ontology { return v.ont }

// Partitions returns the shared partition cache.
func (v *Verifier) Partitions() *relation.PartitionCache { return v.pc }

// namesOf returns names(t[col]) with a bounds guard for values interned
// after the verifier was built (repairs may add new strings).
func (v *Verifier) namesOf(col int, val relation.Value) []ontology.ClassID {
	tbl := v.names[col]
	if int(val) < len(tbl) {
		return tbl[val]
	}
	return v.ont.Names(v.rel.Dict(col).String(val))
}

// Scratch capacities for the allocation-free small-class fast paths in
// classSatisfied and classBestCoverage. Classes exceeding them fall back
// to map-based counting; real instances hit the stack path almost always
// (classes with more than a couple dozen *distinct* consequent values are
// rare even when the classes themselves are large).
const (
	smallDistinct = 24 // distinct consequent values held on the stack
	smallSenses   = 48 // distinct senses held on the stack
)

// classSatisfied reports whether one equivalence class satisfies X →_syn A
// (Definition 1): either all A-values are syntactically equal (an OFD
// subsumes the FD case), or the intersection of names(a) over the distinct
// A-values is non-empty.
//
// The verifier is shared across discovery workers, so scratch space lives
// on the stack (fixed-size arrays) rather than on the receiver.
func (v *Verifier) classSatisfied(class []int32, rhs int) bool {
	col := v.rel.Column(rhs)
	first := col[class[0]]
	allEqual := true
	for _, t := range class[1:] {
		if col[t] != first {
			allEqual = false
			break
		}
	}
	if allEqual {
		return true
	}
	// Gather distinct consequent values by linear probe of a stack array.
	var valArr [smallDistinct]relation.Value
	distinct := valArr[:0]
gather:
	for _, t := range class {
		val := col[t]
		for _, seen := range distinct {
			if seen == val {
				continue gather
			}
		}
		if len(distinct) == smallDistinct {
			return v.classSatisfiedSlow(class, rhs)
		}
		distinct = append(distinct, val)
	}
	// Sense-frequency count: over distinct values, how many values each
	// class (sense) covers; a sense covering all of them is a common
	// interpretation. Senses per value are few, so linear probing beats a
	// hash map and allocates nothing.
	var idArr [smallSenses]ontology.ClassID
	var ctArr [smallSenses]int32
	ids, cts := idArr[:0], ctArr[:0]
	need := int32(len(distinct))
	for _, val := range distinct {
		for _, cls := range v.namesOf(rhs, val) {
			j := -1
			for k, id := range ids {
				if id == cls {
					j = k
					break
				}
			}
			if j < 0 {
				if len(ids) == smallSenses {
					return v.classSatisfiedSlow(class, rhs)
				}
				ids = append(ids, cls)
				cts = append(cts, 1)
				continue
			}
			cts[j]++
			if cts[j] == need {
				return true
			}
		}
	}
	return false
}

// classSatisfiedSlow is the map-based fallback of classSatisfied for
// classes whose distinct values or senses overflow the stack scratch.
func (v *Verifier) classSatisfiedSlow(class []int32, rhs int) bool {
	col := v.rel.Column(rhs)
	distinct := make(map[relation.Value]struct{}, 32)
	for _, t := range class {
		distinct[col[t]] = struct{}{}
	}
	counts := make(map[ontology.ClassID]int, 8)
	need := len(distinct)
	for val := range distinct {
		for _, cls := range v.namesOf(rhs, val) {
			counts[cls]++
			if counts[cls] == need {
				return true
			}
		}
	}
	return false
}

// HoldsSyn reports whether the synonym OFD X →_syn A holds exactly on the
// instance: every equivalence class of Π*_X has a common interpretation.
// For consequents with no ontology coverage this is exactly the FD test.
func (v *Verifier) HoldsSyn(d OFD) bool {
	if d.Trivial() {
		return true
	}
	if !v.covered[d.RHS] {
		return v.HoldsFD(d)
	}
	p := v.pc.Get(d.LHS)
	for i := 0; i < p.NumClasses(); i++ {
		if !v.classSatisfied(p.Class(i), d.RHS) {
			return false
		}
	}
	return true
}

// HoldsFD reports whether the traditional FD X → A holds (syntactic
// equality), used by the Opt-4 pruning rule and by the FD baselines.
// It uses TANE's partition-error comparison e(X) = e(X ∪ A), which is
// O(|Π|) given cached partitions.
func (v *Verifier) HoldsFD(d OFD) bool {
	if d.Trivial() {
		return true
	}
	return v.pc.Get(d.LHS).Error() == v.pc.Get(d.LHS.With(d.RHS)).Error()
}

// classBestCoverage returns the maximum number of tuples in the class whose
// A-value is covered by a single interpretation: the most frequent sense by
// tuple coverage, or the most frequent single value, whichever is larger.
// This is the quantity the paper's approximate-OFD verification sums.
// Like classSatisfied it counts in stack scratch for small classes.
func (v *Verifier) classBestCoverage(class []int32, rhs int) int {
	col := v.rel.Column(rhs)
	var valArr [smallDistinct]relation.Value
	var vcArr [smallDistinct]int32
	vals, vcs := valArr[:0], vcArr[:0]
count:
	for _, t := range class {
		val := col[t]
		for k, seen := range vals {
			if seen == val {
				vcs[k]++
				continue count
			}
		}
		if len(vals) == smallDistinct {
			return v.classBestCoverageSlow(class, rhs)
		}
		vals = append(vals, val)
		vcs = append(vcs, 1)
	}
	best := int32(0)
	for _, c := range vcs {
		if c > best {
			best = c // best single literal value
		}
	}
	var idArr [smallSenses]ontology.ClassID
	var coverArr [smallSenses]int32
	ids, cover := idArr[:0], coverArr[:0]
	for k, val := range vals {
		for _, cls := range v.namesOf(rhs, val) {
			j := -1
			for i, id := range ids {
				if id == cls {
					j = i
					break
				}
			}
			if j < 0 {
				if len(ids) == smallSenses {
					return v.classBestCoverageSlow(class, rhs)
				}
				ids = append(ids, cls)
				cover = append(cover, 0)
				j = len(ids) - 1
			}
			cover[j] += vcs[k]
			if cover[j] > best {
				best = cover[j]
			}
		}
	}
	return int(best)
}

// classBestCoverageSlow is the map-based fallback of classBestCoverage.
func (v *Verifier) classBestCoverageSlow(class []int32, rhs int) int {
	col := v.rel.Column(rhs)
	valCount := make(map[relation.Value]int, 32)
	for _, t := range class {
		valCount[col[t]]++
	}
	best := 0
	for _, c := range valCount {
		if c > best {
			best = c // best single literal value
		}
	}
	senseCover := make(map[ontology.ClassID]int, 8)
	for val, c := range valCount {
		for _, cls := range v.namesOf(rhs, val) {
			senseCover[cls] += c
			if senseCover[cls] > best {
				best = senseCover[cls]
			}
		}
	}
	return best
}

// Support returns s(φ): the fraction of tuples in the largest sub-relation
// r ⊆ I with r ⊨ φ. Singleton classes and tuples outside Π*_X always
// satisfy; within each class the best single-sense (or single-value)
// coverage counts.
func (v *Verifier) Support(d OFD) float64 {
	n := v.rel.NumRows()
	if n == 0 || d.Trivial() {
		return 1
	}
	p := v.pc.Get(d.LHS)
	satisfied := n
	for i := 0; i < p.NumClasses(); i++ {
		class := p.Class(i)
		satisfied -= len(class) - v.classBestCoverage(class, d.RHS)
	}
	return float64(satisfied) / float64(n)
}

// HoldsApprox reports whether the OFD holds with minimum support κ ∈ [0,1].
func (v *Verifier) HoldsApprox(d OFD, kappa float64) bool {
	return v.Support(d) >= kappa
}

// Violations returns the equivalence classes of Π*_X that violate the OFD.
func (v *Verifier) Violations(d OFD) [][]int {
	var out [][]int
	p := v.pc.Get(d.LHS)
	for i := 0; i < p.NumClasses(); i++ {
		if !v.classSatisfied(p.Class(i), d.RHS) {
			out = append(out, p.ClassInts(i))
		}
	}
	return out
}

// SatisfiesAll reports whether the instance satisfies every OFD in Σ.
func (v *Verifier) SatisfiesAll(sigma Set) bool {
	for _, d := range sigma {
		if !v.HoldsSyn(d) {
			return false
		}
	}
	return true
}

// NonEqualConsequentFraction returns, for a holding OFD, the fraction of
// tuples in non-singleton classes whose consequent value differs from the
// class's most frequent value — i.e. tuples a traditional FD would flag as
// errors but a synonym OFD recognizes as clean (Exp-5).
func (v *Verifier) NonEqualConsequentFraction(d OFD) float64 {
	p := v.pc.Get(d.LHS)
	col := v.rel.Column(d.RHS)
	total, nonEqual := 0, 0
	for i := 0; i < p.NumClasses(); i++ {
		class := p.Class(i)
		valCount := make(map[relation.Value]int, 4)
		for _, t := range class {
			valCount[col[t]]++
		}
		mode := 0
		for _, c := range valCount {
			if c > mode {
				mode = c
			}
		}
		total += len(class)
		nonEqual += len(class) - mode
	}
	if total == 0 {
		return 0
	}
	return float64(nonEqual) / float64(total)
}
