package core

import (
	"sync"
	"sync/atomic"

	"github.com/fastofd/fastofd/internal/ontology"
	"github.com/fastofd/fastofd/internal/relation"
)

// colNames is one column's names(v) table. The table is published through
// an atomic pointer so the hot lookup path is a single load plus a slice
// index; values interned after construction (repairs, monitored updates,
// appends) are folded in by a copy-on-write extension under the mutex, so
// every post-build value pays the ontology string lookup exactly once and
// hits the memoized table on the second probe. The table is monotone: it
// only ever grows, and published prefixes are immutable.
type colNames struct {
	mu  sync.Mutex
	tbl atomic.Pointer[[][]ontology.ClassID]
}

// Verifier checks candidate synonym OFDs against a relation instance and an
// ontology. It precomputes, per attribute, the names(v) lookup for every
// dictionary-encoded value so that verification is linear in the number of
// tuples (paper §4.3): for each equivalence class of the stripped partition
// Π*_X it maintains a hash table of sense frequencies and tests whether
// some sense covers every distinct consequent value.
type Verifier struct {
	rel   *relation.Relation
	ont   *ontology.Ontology
	pc    *relation.PartitionCache
	names []colNames // names[col] tables: names[col][valueID] = classes containing the value
	// covered[col] reports whether ANY value of the column appears in the
	// ontology. For uncovered columns synonym semantics degenerate to
	// syntactic equality, enabling the O(|Π|) partition-error test instead
	// of per-class scans — most attributes of a real schema (keys, counts,
	// free text) are uncovered, so this carries most of the verification.
	// Atomic because names-table extension may flip it concurrently with
	// readers; it is monotone (false → true only).
	covered []atomic.Bool
}

// NewVerifier builds a verifier over the relation and ontology, sharing the
// given partition cache (pass nil to create a private one).
func NewVerifier(rel *relation.Relation, ont *ontology.Ontology, pc *relation.PartitionCache) *Verifier {
	if pc == nil {
		pc = relation.NewPartitionCache(rel)
	}
	v := &Verifier{
		rel:     rel,
		ont:     ont,
		pc:      pc,
		names:   make([]colNames, rel.NumCols()),
		covered: make([]atomic.Bool, rel.NumCols()),
	}
	for c := 0; c < rel.NumCols(); c++ {
		dict := rel.Dict(c)
		tbl := make([][]ontology.ClassID, dict.Size())
		for id := 0; id < dict.Size(); id++ {
			tbl[id] = ont.Names(dict.String(relation.Value(id)))
			if len(tbl[id]) > 0 {
				v.covered[c].Store(true)
			}
		}
		v.names[c].tbl.Store(&tbl)
	}
	return v
}

// Relation returns the verified relation.
func (v *Verifier) Relation() *relation.Relation { return v.rel }

// Ontology returns the verifier's ontology.
func (v *Verifier) Ontology() *ontology.Ontology { return v.ont }

// Partitions returns the shared partition cache.
func (v *Verifier) Partitions() *relation.PartitionCache { return v.pc }

// namesOf returns names(t[col]). Values interned after the verifier was
// built (repairs, monitored updates, appends) extend the memoized table on
// first probe instead of re-resolving through the dictionary and ontology
// on every class scan. Safe for concurrent use.
func (v *Verifier) namesOf(col int, val relation.Value) []ontology.ClassID {
	cn := &v.names[col]
	tbl := *cn.tbl.Load()
	if int(val) < len(tbl) {
		return tbl[val]
	}
	return v.extendNames(col, val)
}

// extendNames is namesOf's slow path: grow column col's table to the
// dictionary's current size (resolving every not-yet-seen value through the
// ontology once), publish it, and answer the probe from the new table. The
// copy-on-write extension keeps concurrent readers lock-free.
func (v *Verifier) extendNames(col int, val relation.Value) []ontology.ClassID {
	cn := &v.names[col]
	cn.mu.Lock()
	defer cn.mu.Unlock()
	tbl := *cn.tbl.Load()
	if int(val) < len(tbl) {
		return tbl[val] // another goroutine extended past val already
	}
	dict := v.rel.Dict(col)
	n := dict.Size()
	if int(val) >= n {
		// Not a value of this column's dictionary; resolve without caching.
		return v.ont.Names(dict.String(val))
	}
	grown := make([][]ontology.ClassID, n)
	copy(grown, tbl)
	for id := len(tbl); id < n; id++ {
		names := v.ont.Names(dict.String(relation.Value(id)))
		grown[id] = names
		if len(names) > 0 {
			v.covered[col].Store(true)
		}
	}
	cn.tbl.Store(&grown)
	return grown[val]
}

// namesTableLen reports how many value ids of column col are currently
// memoized (test hook for the extend-on-intern contract).
func (v *Verifier) namesTableLen(col int) int {
	return len(*v.names[col].tbl.Load())
}

// Scratch capacities for the allocation-free small-class fast paths in
// classSatisfied and classBestCoverage. Classes exceeding them fall back
// to map-based counting; real instances hit the stack path almost always
// (classes with more than a couple dozen *distinct* consequent values are
// rare even when the classes themselves are large).
const (
	smallDistinct = 24 // distinct consequent values held on the stack
	smallSenses   = 48 // distinct senses held on the stack
)

// classSatisfied reports whether one equivalence class satisfies X →_syn A
// (Definition 1): either all A-values are syntactically equal (an OFD
// subsumes the FD case), or the intersection of names(a) over the distinct
// A-values is non-empty.
//
// The verifier is shared across discovery workers, so scratch space lives
// on the stack (fixed-size arrays) rather than on the receiver.
func (v *Verifier) classSatisfied(class []int32, rhs int) bool {
	col := v.rel.Column(rhs)
	first := col.At(int(class[0]))
	allEqual := true
	for _, t := range class[1:] {
		if col.At(int(t)) != first {
			allEqual = false
			break
		}
	}
	if allEqual {
		return true
	}
	// Gather distinct consequent values by linear probe of a stack array.
	var valArr [smallDistinct]relation.Value
	distinct := valArr[:0]
gather:
	for _, t := range class {
		val := col.At(int(t))
		for _, seen := range distinct {
			if seen == val {
				continue gather
			}
		}
		if len(distinct) == smallDistinct {
			return v.classSatisfiedSlow(class, rhs)
		}
		distinct = append(distinct, val)
	}
	return v.valuesSatisfied(rhs, distinct)
}

// valuesSatisfied reports whether some sense covers every one of the given
// distinct consequent values — the class-size-independent core of
// classSatisfied, shared with the incremental monitor (which maintains the
// distinct values per class and so never rescans tuples). vals must be
// distinct and non-empty; a single value is trivially satisfied.
func (v *Verifier) valuesSatisfied(rhs int, vals []relation.Value) bool {
	if len(vals) <= 1 {
		return true
	}
	if len(vals) > smallDistinct {
		return v.valuesSatisfiedSlow(rhs, vals)
	}
	// Sense-frequency count: over distinct values, how many values each
	// class (sense) covers; a sense covering all of them is a common
	// interpretation. Senses per value are few, so linear probing beats a
	// hash map and allocates nothing.
	var idArr [smallSenses]ontology.ClassID
	var ctArr [smallSenses]int32
	ids, cts := idArr[:0], ctArr[:0]
	need := int32(len(vals))
	for _, val := range vals {
		for _, cls := range v.namesOf(rhs, val) {
			j := -1
			for k, id := range ids {
				if id == cls {
					j = k
					break
				}
			}
			if j < 0 {
				if len(ids) == smallSenses {
					return v.valuesSatisfiedSlow(rhs, vals)
				}
				ids = append(ids, cls)
				cts = append(cts, 1)
				continue
			}
			cts[j]++
			if cts[j] == need {
				return true
			}
		}
	}
	return false
}

// ValuesSatisfied is the exported form of valuesSatisfied, the
// class-size-independent verification core: it reports whether some sense
// covers every one of the given distinct consequent values of column rhs
// (or there is at most one value). Callers that maintain per-class
// distinct-value multisets — the incremental monitor and the discovery
// maintainer — re-verify a class in O(distinct values) through it without
// rescanning tuples. vals must be distinct; order is irrelevant.
func (v *Verifier) ValuesSatisfied(rhs int, vals []relation.Value) bool {
	return v.valuesSatisfied(rhs, vals)
}

// valuesSatisfiedSlow is the map-based fallback of valuesSatisfied for
// value or sense sets that overflow the stack scratch.
func (v *Verifier) valuesSatisfiedSlow(rhs int, vals []relation.Value) bool {
	counts := make(map[ontology.ClassID]int, 8)
	need := len(vals)
	for _, val := range vals {
		for _, cls := range v.namesOf(rhs, val) {
			counts[cls]++
			if counts[cls] == need {
				return true
			}
		}
	}
	return false
}

// classSatisfiedSlow is the fallback of classSatisfied for classes whose
// distinct values overflow the stack scratch.
func (v *Verifier) classSatisfiedSlow(class []int32, rhs int) bool {
	col := v.rel.Column(rhs)
	seen := make(map[relation.Value]struct{}, 32)
	vals := make([]relation.Value, 0, 32)
	for _, t := range class {
		if _, ok := seen[col.At(int(t))]; ok {
			continue
		}
		seen[col.At(int(t))] = struct{}{}
		vals = append(vals, col.At(int(t)))
	}
	return v.valuesSatisfiedSlow(rhs, vals)
}

// HoldsSyn reports whether the synonym OFD X →_syn A holds exactly on the
// instance: every equivalence class of Π*_X has a common interpretation.
// For consequents with no ontology coverage this is exactly the FD test.
func (v *Verifier) HoldsSyn(d OFD) bool {
	if d.Trivial() {
		return true
	}
	if !v.covered[d.RHS].Load() {
		return v.HoldsFD(d)
	}
	p := v.pc.Get(d.LHS)
	for i := 0; i < p.NumClasses(); i++ {
		if !v.classSatisfied(p.Class(i), d.RHS) {
			return false
		}
	}
	return true
}

// HoldsSynOnePass is HoldsSyn computed from the antecedent partition
// alone. For uncovered consequents HoldsSyn delegates to HoldsFD's
// partition-error comparison, which materializes Π*_{X∪A}; here the FD
// test instead walks the classes of Π*_X checking that each agrees on
// the dict-encoded consequent — the same cost as the product it avoids,
// with no second partition built or cached. The lattice keeps HoldsSyn
// (its level ordering reuses Π*_{X∪A} as a next-level node); callers
// probing scattered nodes — the maintainer's repair regions — use this.
func (v *Verifier) HoldsSynOnePass(d OFD) bool {
	if d.Trivial() {
		return true
	}
	if v.covered[d.RHS].Load() {
		return v.HoldsSyn(d)
	}
	p := v.pc.Get(d.LHS)
	col := v.rel.Column(d.RHS)
	for i := 0; i < p.NumClasses(); i++ {
		class := p.Class(i)
		first := col.At(int(class[0]))
		for _, t := range class[1:] {
			if col.At(int(t)) != first {
				return false
			}
		}
	}
	return true
}

// HoldsSynMulti verifies X →_syn A for every consequent in rhs with ONE
// traversal of Π*_X, returning per-consequent verdicts in rhs order. Each
// verdict is exactly HoldsSynOnePass(OFD{lhs, rhs[k]}) — trivial
// consequents (lhs ∋ A) answer true without work, covered consequents run
// the per-class sense test, uncovered ones the inline FD-equality walk —
// but the partition is fetched and walked once for all of them instead of
// once per (LHS, RHS) pair. A consequent drops out of the walk at its
// first violating class (the early-exit the one-pass form has), so the
// per-class cost shrinks as verdicts settle; the walk stops entirely once
// every consequent is decided. This is the repair scheduler's wave
// kernel: co-probing consequents share the dominant partition cost.
func (v *Verifier) HoldsSynMulti(lhs relation.AttrSet, rhs []int) []bool {
	return v.HoldsSynMultiBuf(lhs, rhs, nil)
}

// HoldsSynMultiBuf is HoldsSynMulti with a caller-supplied ProductBuffer
// for any partition products a cache miss needs. Hot repair loops hold
// one buffer per worker; a nil buf falls back to transient scratch.
func (v *Verifier) HoldsSynMultiBuf(lhs relation.AttrSet, rhs []int, buf *relation.ProductBuffer) []bool {
	out := make([]bool, len(rhs))
	pending := make([]int, 0, len(rhs))
	for k := range rhs {
		out[k] = true
		if !lhs.Has(rhs[k]) {
			pending = append(pending, k)
		}
	}
	if len(pending) == 0 {
		return out
	}
	p := v.pc.GetWith(lhs, buf)
	cols := make([]*relation.Col, len(rhs))
	for _, k := range pending {
		cols[k] = v.rel.Column(rhs[k])
	}
	for i := 0; i < p.NumClasses() && len(pending) > 0; i++ {
		class := p.Class(i)
		kept := pending[:0]
		for _, k := range pending {
			ok := false
			if v.covered[rhs[k]].Load() {
				ok = v.classSatisfied(class, rhs[k])
			} else {
				col := cols[k]
				first := col.At(int(class[0]))
				ok = true
				for _, t := range class[1:] {
					if col.At(int(t)) != first {
						ok = false
						break
					}
				}
			}
			if ok {
				kept = append(kept, k)
			} else {
				out[k] = false
			}
		}
		pending = kept
	}
	return out
}

// HoldsFD reports whether the traditional FD X → A holds (syntactic
// equality), used by the Opt-4 pruning rule and by the FD baselines.
// It uses TANE's partition-error comparison e(X) = e(X ∪ A), which is
// O(|Π|) given cached partitions.
func (v *Verifier) HoldsFD(d OFD) bool {
	if d.Trivial() {
		return true
	}
	return v.pc.Get(d.LHS).Error() == v.pc.Get(d.LHS.With(d.RHS)).Error()
}

// classBestCoverage returns the maximum number of tuples in the class whose
// A-value is covered by a single interpretation: the most frequent sense by
// tuple coverage, or the most frequent single value, whichever is larger.
// This is the quantity the paper's approximate-OFD verification sums.
// Like classSatisfied it counts in stack scratch for small classes.
func (v *Verifier) classBestCoverage(class []int32, rhs int) int {
	col := v.rel.Column(rhs)
	var valArr [smallDistinct]relation.Value
	var vcArr [smallDistinct]int32
	vals, vcs := valArr[:0], vcArr[:0]
count:
	for _, t := range class {
		val := col.At(int(t))
		for k, seen := range vals {
			if seen == val {
				vcs[k]++
				continue count
			}
		}
		if len(vals) == smallDistinct {
			return v.classBestCoverageSlow(class, rhs)
		}
		vals = append(vals, val)
		vcs = append(vcs, 1)
	}
	best := int32(0)
	for _, c := range vcs {
		if c > best {
			best = c // best single literal value
		}
	}
	var idArr [smallSenses]ontology.ClassID
	var coverArr [smallSenses]int32
	ids, cover := idArr[:0], coverArr[:0]
	for k, val := range vals {
		for _, cls := range v.namesOf(rhs, val) {
			j := -1
			for i, id := range ids {
				if id == cls {
					j = i
					break
				}
			}
			if j < 0 {
				if len(ids) == smallSenses {
					return v.classBestCoverageSlow(class, rhs)
				}
				ids = append(ids, cls)
				cover = append(cover, 0)
				j = len(ids) - 1
			}
			cover[j] += vcs[k]
			if cover[j] > best {
				best = cover[j]
			}
		}
	}
	return int(best)
}

// classBestCoverageSlow is the map-based fallback of classBestCoverage.
func (v *Verifier) classBestCoverageSlow(class []int32, rhs int) int {
	col := v.rel.Column(rhs)
	valCount := make(map[relation.Value]int, 32)
	for _, t := range class {
		valCount[col.At(int(t))]++
	}
	best := 0
	for _, c := range valCount {
		if c > best {
			best = c // best single literal value
		}
	}
	senseCover := make(map[ontology.ClassID]int, 8)
	for val, c := range valCount {
		for _, cls := range v.namesOf(rhs, val) {
			senseCover[cls] += c
			if senseCover[cls] > best {
				best = senseCover[cls]
			}
		}
	}
	return best
}

// Support returns s(φ): the fraction of tuples in the largest sub-relation
// r ⊆ I with r ⊨ φ. Singleton classes and tuples outside Π*_X always
// satisfy; within each class the best single-sense (or single-value)
// coverage counts.
func (v *Verifier) Support(d OFD) float64 {
	n := v.rel.NumRows()
	if n == 0 || d.Trivial() {
		return 1
	}
	p := v.pc.Get(d.LHS)
	satisfied := n
	for i := 0; i < p.NumClasses(); i++ {
		class := p.Class(i)
		satisfied -= len(class) - v.classBestCoverage(class, d.RHS)
	}
	return float64(satisfied) / float64(n)
}

// HoldsApprox reports whether the OFD holds with minimum support κ ∈ [0,1].
func (v *Verifier) HoldsApprox(d OFD, kappa float64) bool {
	return v.Support(d) >= kappa
}

// Violations returns the equivalence classes of Π*_X that violate the OFD.
func (v *Verifier) Violations(d OFD) [][]int {
	var out [][]int
	p := v.pc.Get(d.LHS)
	for i := 0; i < p.NumClasses(); i++ {
		if !v.classSatisfied(p.Class(i), d.RHS) {
			out = append(out, p.ClassInts(i))
		}
	}
	return out
}

// SatisfiesAll reports whether the instance satisfies every OFD in Σ.
func (v *Verifier) SatisfiesAll(sigma Set) bool {
	for _, d := range sigma {
		if !v.HoldsSyn(d) {
			return false
		}
	}
	return true
}

// NonEqualConsequentFraction returns, for a holding OFD, the fraction of
// tuples in non-singleton classes whose consequent value differs from the
// class's most frequent value — i.e. tuples a traditional FD would flag as
// errors but a synonym OFD recognizes as clean (Exp-5).
func (v *Verifier) NonEqualConsequentFraction(d OFD) float64 {
	p := v.pc.Get(d.LHS)
	col := v.rel.Column(d.RHS)
	total, nonEqual := 0, 0
	for i := 0; i < p.NumClasses(); i++ {
		class := p.Class(i)
		valCount := make(map[relation.Value]int, 4)
		for _, t := range class {
			valCount[col.At(int(t))]++
		}
		mode := 0
		for _, c := range valCount {
			if c > mode {
				mode = c
			}
		}
		total += len(class)
		nonEqual += len(class) - mode
	}
	if total == 0 {
		return 0
	}
	return float64(nonEqual) / float64(total)
}
