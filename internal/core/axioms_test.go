package core

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"github.com/fastofd/fastofd/internal/ontology"
	"github.com/fastofd/fastofd/internal/relation"
)

// randomSigma builds a random OFD set over n attributes.
func randomSigma(rng *rand.Rand, n, size int) Set {
	var out Set
	for i := 0; i < size; i++ {
		lhs := relation.AttrSet(rng.Int63()) & relation.AttrSet(uint64(1)<<uint(n)-1)
		rhs := rng.Intn(n)
		out = append(out, OFD{LHS: lhs.Without(rhs), RHS: rhs})
	}
	return out
}

// naiveDerivable checks Σ ⊢ X → A by direct appeal to the axioms: with no
// Transitivity, X → A is derivable exactly when A ∈ X (Identity +
// Decomposition) or some V → A ∈ Σ has V ⊆ X (Composition with Identity,
// then Decomposition). This is the independent oracle for Algorithm 1.
func naiveDerivable(sigma Set, x relation.AttrSet, a int) bool {
	if x.Has(a) {
		return true
	}
	for _, d := range sigma {
		if d.RHS == a && d.LHS.SubsetOf(x) {
			return true
		}
	}
	return false
}

func TestClosureMatchesAxiomOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 200; trial++ {
		n := 2 + rng.Intn(6)
		sigma := randomSigma(rng, n, rng.Intn(8))
		x := relation.AttrSet(rng.Int63()) & relation.AttrSet(uint64(1)<<uint(n)-1)
		closure := Closure(sigma, x)
		for a := 0; a < n; a++ {
			if closure.Has(a) != naiveDerivable(sigma, x, a) {
				t.Fatalf("trial %d: attr %d: closure=%v oracle=%v (Σ=%v, X=%v)",
					trial, a, closure.Has(a), naiveDerivable(sigma, x, a), sigma, x)
			}
		}
	}
}

func TestClosureProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	f := func(seedS, seedX uint32) bool {
		r := rand.New(rand.NewSource(int64(seedS)))
		n := 2 + int(seedX%6)
		sigma := randomSigma(r, n, int(seedS%7))
		x := relation.AttrSet(uint64(seedX)) & relation.AttrSet(uint64(1)<<uint(n)-1)
		cl := Closure(sigma, x)
		// Extensive: X ⊆ X⁺.
		if !x.SubsetOf(cl) {
			return false
		}
		// Idempotent on the derivable part? NOT in general for OFDs (no
		// Transitivity), but closure of a closure must contain the
		// closure itself.
		if !cl.SubsetOf(Closure(sigma, cl)) {
			return false
		}
		// Monotone: X ⊆ Y ⇒ X⁺ ⊆ Y⁺.
		y := x.With(rng.Intn(n))
		if !cl.SubsetOf(Closure(sigma, y)) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestNoTransitivity(t *testing.T) {
	// Σ = {A→B, B→C}: OFD axioms must NOT derive A→C (the paper's
	// three-tuple counterexample shows it is not sound).
	sigma := Set{
		{LHS: relation.Single(0), RHS: 1},
		{LHS: relation.Single(1), RHS: 2},
	}
	if Implies(sigma, OFD{LHS: relation.Single(0), RHS: 2}) {
		t.Fatal("OFD inference applied transitivity")
	}
	if !Implies(sigma, OFD{LHS: relation.Single(0), RHS: 1}) {
		t.Fatal("stated dependency not implied")
	}
	// Reflexivity via Identity + Decomposition.
	if !Implies(sigma, OFD{LHS: relation.Single(0).With(2), RHS: 2}) {
		t.Fatal("trivial dependency not implied")
	}
	// Augmentation via Composition.
	if !Implies(sigma, OFD{LHS: relation.Single(0).With(3), RHS: 1}) {
		t.Fatal("augmented dependency not implied")
	}
}

// nfdClosure implements Lien's NFD axiom system (N1–N4) as an independent
// engine: by Theorem 3 it must agree with the OFD closure.
func nfdClosure(sigma Set, x relation.AttrSet) relation.AttrSet {
	// N1 Reflexivity gives x itself. N2 Append with N4 Simplification
	// yields exactly {A | ∃ V→A ∈ Σ, V ⊆ X}; N3 Union collects them.
	closure := x
	for _, d := range sigma {
		if d.LHS.SubsetOf(x) {
			closure = closure.With(d.RHS)
		}
	}
	return closure
}

func TestOFDAxiomsEquivalentToNFDAxioms(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		n := 2 + rng.Intn(6)
		sigma := randomSigma(rng, n, rng.Intn(8))
		x := relation.AttrSet(rng.Int63()) & relation.AttrSet(uint64(1)<<uint(n)-1)
		if got, want := Closure(sigma, x), nfdClosure(sigma, x); got != want {
			t.Fatalf("trial %d: OFD closure %v != NFD closure %v", trial, got, want)
		}
	}
}

func TestImpliesAllLemma1(t *testing.T) {
	// Lemma 1: Σ ⊢ X → Y iff Y ⊆ X⁺.
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 100; trial++ {
		n := 3 + rng.Intn(4)
		sigma := randomSigma(rng, n, rng.Intn(6))
		x := relation.AttrSet(rng.Int63()) & relation.AttrSet(uint64(1)<<uint(n)-1)
		y := relation.AttrSet(rng.Int63()) & relation.AttrSet(uint64(1)<<uint(n)-1)
		if ImpliesAll(sigma, x, y) != y.SubsetOf(Closure(sigma, x)) {
			t.Fatalf("trial %d: ImpliesAll disagrees with Lemma 1", trial)
		}
	}
}

func TestMinimalCover(t *testing.T) {
	schema := relation.MustSchema("CC", "DIAG", "MED", "CTRY")
	// The paper's Example 5: Σ3 follows from Σ1, Σ2 by Composition.
	sigma := Set{
		MustParse(schema, "CC -> CTRY"),
		MustParse(schema, "CC, DIAG -> MED"),
		MustParse(schema, "CC, DIAG -> MED"), // duplicate
		MustParse(schema, "CC, DIAG -> CTRY"),
	}
	cover := MinimalCover(sigma)
	if !Equivalent(cover, sigma) {
		t.Fatal("cover not equivalent to original")
	}
	if !IsMinimalCover(cover) {
		t.Fatalf("cover not minimal: %v", cover)
	}
	if len(cover) != 2 {
		t.Fatalf("cover size %d, want 2: %v", len(cover), cover)
	}
}

func TestMinimalCoverProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 150; trial++ {
		n := 2 + rng.Intn(5)
		sigma := randomSigma(rng, n, rng.Intn(10))
		cover := MinimalCover(sigma)
		if !Equivalent(cover, sigma) {
			t.Fatalf("trial %d: cover not equivalent (Σ=%v, cover=%v)", trial, sigma, cover)
		}
		if !IsMinimalCover(cover) {
			t.Fatalf("trial %d: cover not minimal (Σ=%v, cover=%v)", trial, sigma, cover)
		}
	}
}

func TestSetHelpers(t *testing.T) {
	schema := relation.MustSchema("A", "B", "C")
	s := Set{
		MustParse(schema, "A -> C"),
		MustParse(schema, "B -> C"),
		MustParse(schema, "A -> B"),
	}
	if got := s.ConsequentAttrs(); len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("ConsequentAttrs = %v", got)
	}
	by := s.ByRHS()
	if len(by[2]) != 2 || len(by[1]) != 1 {
		t.Fatalf("ByRHS = %v", by)
	}
	if !s.Contains(MustParse(schema, "A -> B")) || s.Contains(MustParse(schema, "C -> B")) {
		t.Fatal("Contains wrong")
	}
	d := MustParse(schema, "A, B -> C")
	if got := d.Format(schema); got != "[A, B] -> C" {
		t.Fatalf("Format = %q", got)
	}
	if d.Trivial() {
		t.Fatal("A,B->C is not trivial")
	}
	if !(OFD{LHS: schema.MustSet("A", "C"), RHS: 2}).Trivial() {
		t.Fatal("A,C->C is trivial")
	}
}

func TestParseErrors(t *testing.T) {
	schema := relation.MustSchema("A", "B")
	for _, bad := range []string{"A", "A -> X", "X -> A", "A -> B -> A"} {
		if _, err := Parse(schema, bad); err == nil {
			t.Errorf("Parse(%q) should error", bad)
		}
	}
	d, err := Parse(schema, " A , B ->  B ")
	if err != nil || d.RHS != 1 || d.LHS != schema.MustSet("A", "B") {
		t.Fatalf("Parse with spaces: %v, %v", d, err)
	}
}

func TestSetSerializationRoundTrip(t *testing.T) {
	schema := relation.MustSchema("CC", "CTRY", "SYMP", "DIAG", "MED")
	sigma := Set{
		MustParse(schema, "CC -> CTRY"),
		MustParse(schema, "SYMP, DIAG -> MED"),
		{LHS: relation.EmptySet, RHS: 1}, // empty antecedent
	}
	var buf strings.Builder
	if err := WriteSet(&buf, schema, sigma); err != nil {
		t.Fatal(err)
	}
	back, err := ReadSet(strings.NewReader(buf.String()+"\n# comment\n\n"), schema)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(sigma) {
		t.Fatalf("round trip: %d vs %d", len(back), len(sigma))
	}
	for i := range sigma {
		if back[i] != sigma[i] {
			t.Fatalf("dependency %d changed: %v vs %v", i, back[i], sigma[i])
		}
	}
	// Bad lines report their line number.
	if _, err := ReadSet(strings.NewReader("CC -> CTRY\nZZZ -> CC\n"), schema); err == nil {
		t.Fatal("bad line should error")
	}
}

func TestSupportProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	for trial := 0; trial < 40; trial++ {
		cols := 2 + rng.Intn(3)
		names := make([]string, cols)
		for i := range names {
			names[i] = string(rune('A' + i))
		}
		rel := relation.New(relation.MustSchema(names...))
		row := make([]string, cols)
		for r := 0; r < 1+rng.Intn(15); r++ {
			for c := range row {
				row[c] = string(rune('a' + rng.Intn(3)))
			}
			rel.AppendRow(row)
		}
		o := ontology.New()
		if rng.Intn(2) == 0 {
			o.MustAddClass("C", "S", ontology.NoClass, "a", "b")
		}
		v := NewVerifier(rel, o, nil)
		for rhs := 0; rhs < cols; rhs++ {
			for lhsA := 0; lhsA < cols; lhsA++ {
				if lhsA == rhs {
					continue
				}
				d := OFD{LHS: relation.Single(lhsA), RHS: rhs}
				s := v.Support(d)
				if s < 0 || s > 1 {
					t.Fatalf("support out of range: %v", s)
				}
				// Exact satisfaction iff support 1... exact implies 1;
				// support 1 implies each class fully covered by one sense
				// or constant, which implies exact satisfaction.
				if v.HoldsSyn(d) != (s == 1) {
					t.Fatalf("trial %d: HoldsSyn=%v but support=%v (%v)", trial, v.HoldsSyn(d), s, d)
				}
				// Monotone in κ.
				if v.HoldsApprox(d, 0.9) && !v.HoldsApprox(d, 0.5) {
					t.Fatal("approx satisfaction not monotone in κ")
				}
				// Augmentation keeps or raises support.
				for extra := 0; extra < cols; extra++ {
					if extra == rhs || extra == lhsA {
						continue
					}
					bigger := OFD{LHS: d.LHS.With(extra), RHS: rhs}
					if v.Support(bigger) < s-1e-9 {
						t.Fatalf("support not monotone under augmentation: %v vs %v", v.Support(bigger), s)
					}
				}
			}
		}
	}
}
