package core

import (
	"context"
	"fmt"

	"github.com/fastofd/fastofd/internal/exec"
	"github.com/fastofd/fastofd/internal/ontology"
	"github.com/fastofd/fastofd/internal/relation"
)

// This file is the merged pipeline's monitor surface: construction over a
// shared verifier, live registration of dependencies as the discovered
// cover drifts, and absorption of writes the co-located maintainer has
// already validated, applied, and committed. Standalone monitoring keeps
// its own entry points (NewMonitorSharded, Update, ApplyBatch, AppendRow);
// everything here reuses the same shard state and publish protocol, so
// reports remain byte-identical to a fresh Detect either way.

// NewMonitorLive builds a sharded monitor on an existing partition-cache-
// backed verifier — the pipeline's single verifier shared with the
// maintainer and the repair search — and relaxes the global LHS∩RHS
// disjointness requirement across dependencies, which a discovered cover
// routinely violates (chains like A→B, B→C). Single-cell Update stays
// guarded: writes touching any monitored antecedent are still rejected,
// because only AbsorbBatch knows how to re-route the affected
// dependencies.
func NewMonitorLive(ctx context.Context, rel *relation.Relation, ont *ontology.Ontology, sigma Set, shards, workers int, stats *exec.Stats, v *Verifier) (*Monitor, error) {
	return newMonitorBuild(ctx, rel, ont, sigma, shards, workers, stats, v, true)
}

// Register adds dependency d to the monitored set and builds its live
// index state: routing, shard overlays, multisets, and violation records,
// exactly as construction would have. The new dependency's violations
// appear in the next published epoch. On a non-relaxed monitor the
// combined set must keep antecedents and consequents disjoint.
func (m *Monitor) Register(d OFD) error {
	for _, e := range m.sigma {
		if e.LHS == d.LHS && e.RHS == d.RHS {
			return fmt.Errorf("core: dependency already monitored")
		}
	}
	if !m.relaxed {
		var rhs relation.AttrSet
		for _, e := range m.sigma {
			rhs = rhs.With(e.RHS)
		}
		rhs = rhs.With(d.RHS)
		if inter := m.lhsAttrs.Union(d.LHS).Intersect(rhs); !inter.IsEmpty() {
			return fmt.Errorf("core: monitor requires disjoint antecedents and consequents; %s overlaps", inter.Format(m.rel.Schema()))
		}
	}
	i := len(m.sigma)
	m.sigma = append(m.sigma, d)
	m.lhsCols = append(m.lhsCols, nil)
	m.classOf = append(m.classOf, nil)
	m.rowShard = append(m.rowShard, nil)
	m.byRHS[d.RHS] = append(m.byRHS[d.RHS], int32(i))
	for _, sh := range m.shards {
		sh.idx = append(sh.idx, nil)
		sh.viol = append(sh.viol, nil)
		sh.fdOnly = append(sh.fdOnly, nil)
	}
	m.lhsAttrs = m.lhsAttrs.Union(d.LHS)
	m.routeIndex(i)
	w := exec.Workers(m.Workers)
	_ = exec.For(context.Background(), m.nShards, w, func(_, s int) {
		m.shards[s].buildStateOFD(m, i)
		m.shards[s].rebuildSnap()
	})
	m.publish()
	return nil
}

// Unregister removes dependency d from the monitored set, dropping its
// index state and violation records. Epochs already published keep
// reporting it (snapshots are immutable); the next epoch no longer does.
func (m *Monitor) Unregister(d OFD) error {
	at := -1
	for i, e := range m.sigma {
		if e.LHS == d.LHS && e.RHS == d.RHS {
			at = i
			break
		}
	}
	if at < 0 {
		return fmt.Errorf("core: dependency not monitored")
	}
	m.sigma = append(m.sigma[:at], m.sigma[at+1:]...)
	m.lhsCols = append(m.lhsCols[:at], m.lhsCols[at+1:]...)
	m.classOf = append(m.classOf[:at], m.classOf[at+1:]...)
	m.rowShard = append(m.rowShard[:at], m.rowShard[at+1:]...)
	for c := range m.byRHS {
		m.byRHS[c] = m.byRHS[c][:0]
	}
	for i, e := range m.sigma {
		m.byRHS[e.RHS] = append(m.byRHS[e.RHS], int32(i))
	}
	m.lhsAttrs = 0
	for _, e := range m.sigma {
		m.lhsAttrs = m.lhsAttrs.Union(e.LHS)
	}
	for _, sh := range m.shards {
		sh.idx = append(sh.idx[:at], sh.idx[at+1:]...)
		sh.viol = append(sh.viol[:at], sh.viol[at+1:]...)
		sh.fdOnly = append(sh.fdOnly[:at], sh.fdOnly[at+1:]...)
		sh.rebuildSnap()
	}
	m.publish()
	return nil
}

// AbsorbBatch folds a batch of already-applied cell writes into the
// monitor's live state: the maintainer validated, deduplicated, applied,
// and committed them (writes carry the pre-batch values), so absorption
// cannot fail and is not cancellable — the pipeline's atomicity boundary
// is the maintainer's verify, before this call. Dependencies whose
// antecedents were touched are re-routed wholesale (their class structure
// changed); the rest absorb the consequent deltas exactly as
// ApplyBatch's apply stage would, and one epoch is published.
func (m *Monitor) AbsorbBatch(writes []CellWrite) {
	m.absorbBatch(writes, true)
}

// AbsorbBatchPrewarmed is AbsorbBatch for a monitor sharing its partition
// cache with the engine that applied the writes: the writer already
// evicted every rewritten attribute set at apply time, so all resident
// entries describe the post-batch instance — including any the writer's
// own verification re-warmed — and evicting them again would recompute
// partitions that are already current. The merged pipeline calls this;
// a monitor on a private cache must use AbsorbBatch, whose eviction is
// what keeps its pre-batch entries from being served.
func (m *Monitor) AbsorbBatchPrewarmed(writes []CellWrite) {
	m.absorbBatch(writes, false)
}

func (m *Monitor) absorbBatch(writes []CellWrite, invalidate bool) {
	if len(writes) == 0 {
		return
	}
	if m.needHydrate {
		m.hydrateIndexes()
	}
	var touched relation.AttrSet
	for _, wr := range writes {
		touched = touched.With(wr.Col)
	}
	var reroute []int
	rerouted := make([]bool, len(m.sigma))
	for i, d := range m.sigma {
		if !d.LHS.Intersect(touched).IsEmpty() {
			rerouted[i] = true
			reroute = append(reroute, i)
		}
	}
	w := exec.Workers(m.Workers)
	if len(reroute) > 0 {
		// The cached base partitions of touched attribute sets are stale;
		// evict them so the fresh routing computes over current values
		// (skipped on a shared, already-invalidated cache — see
		// AbsorbBatchPrewarmed).
		if invalidate {
			m.v.Partitions().InvalidateTouched(touched)
		}
		_ = exec.For(context.Background(), len(reroute), w, func(_, k int) {
			m.routeIndex(reroute[k])
		})
		_ = exec.For(context.Background(), m.nShards, w, func(_, s int) {
			for _, i := range reroute {
				m.shards[s].buildStateOFD(m, i)
			}
			m.shards[s].rebuildSnap()
		})
	}
	// Route the consequent deltas of untouched-antecedent dependencies.
	for _, wr := range writes {
		for _, i := range m.byRHS[wr.Col] {
			if rerouted[i] {
				continue
			}
			ci := m.classOf[i][wr.Row]
			if ci < 0 {
				continue
			}
			sh := m.shards[m.rowShard[i][wr.Row]]
			sh.bumps = append(sh.bumps, shardBump{ofd: i, class: ci, from: wr.Old, to: wr.New})
			sh.dirty = append(sh.dirty, int64(i)<<32|int64(uint32(ci)))
		}
	}
	var active []int
	for s, sh := range m.shards {
		if len(sh.bumps) > 0 || len(sh.dirty) > 0 {
			active = append(active, s)
		}
	}
	if len(active) > 0 {
		_ = exec.For(context.Background(), len(active), w, func(_, k int) {
			sh := m.shards[active[k]]
			sh.applyBatch(m)
			sh.commitBatch()
		})
	}
	m.publish()
}

// AbsorbAppends joins rows [t0, NumRows()) — already appended to the
// relation by the co-located maintainer — under every dependency and
// publishes one epoch for the whole batch.
func (m *Monitor) AbsorbAppends(t0 int) {
	end := m.rel.NumRows()
	if t0 >= end {
		return
	}
	if m.needHydrate {
		m.hydrateIndexes()
	}
	for t := t0; t < end; t++ {
		m.absorbRow(int32(t))
	}
	m.refreshSnaps()
	m.publish()
}

// Verifier returns the monitor's verifier (shared across the pipeline's
// engines when built with NewMonitorLive).
func (m *Monitor) Verifier() *Verifier { return m.v }

// Relax waives the global LHS∩RHS disjointness requirement for future
// Register calls, matching NewMonitorLive-built monitors — the pipeline
// restore path calls it on a freshly decoded monitor. Single-cell Update
// stays guarded regardless.
func (m *Monitor) Relax() { m.relaxed = true }
