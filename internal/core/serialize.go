package core

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strings"

	"github.com/fastofd/fastofd/internal/relation"
)

// WriteSet serializes Σ one dependency per line ("A,B -> C") using schema
// attribute names. Lines parse back with ReadSet/Parse.
func WriteSet(w io.Writer, sch *relation.Schema, sigma Set) error {
	bw := bufio.NewWriter(w)
	for _, d := range sigma {
		names := make([]string, 0, d.LHS.Len())
		for _, a := range d.LHS.Attrs() {
			names = append(names, sch.Name(a))
		}
		if _, err := fmt.Fprintf(bw, "%s -> %s\n", strings.Join(names, ","), sch.Name(d.RHS)); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadSet parses a dependency set written by WriteSet: one OFD per line,
// blank lines and lines starting with '#' ignored.
func ReadSet(r io.Reader, sch *relation.Schema) (Set, error) {
	var out Set
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		d, err := Parse(sch, line)
		if err != nil {
			return nil, fmt.Errorf("core: line %d: %w", lineNo, err)
		}
		out = append(out, d)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// WriteSetFile serializes Σ to the named file.
func WriteSetFile(path string, sch *relation.Schema, sigma Set) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteSet(f, sch, sigma); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadSetFile parses a dependency set from the named file.
func ReadSetFile(path string, sch *relation.Schema) (Set, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadSet(f, sch)
}
