package core

import (
	"github.com/fastofd/fastofd/internal/relation"
)

// EncodeLHSKey appends the dict-encoded antecedent value tuple of row t
// (projected on cols) to buf[:0] and returns it. Each attribute
// contributes exactly 4 little-endian bytes, so keys over the same
// attribute list are fixed-width and therefore prefix-free: two rows
// encode equal iff their antecedent value ids are equal attribute by
// attribute (dictionaries make equal strings id-equal). The injectivity
// property test and fuzz target pin this down. Exported because the
// incremental discovery maintainer shares the monitor's key encoding for
// its candidate-class indexes (the "dirty-signal" contract: equal keys
// name equal equivalence classes across both engines).
func EncodeLHSKey(rel *relation.Relation, cols []int, t int, buf []byte) []byte {
	buf = buf[:0]
	for _, c := range cols {
		v := rel.Value(t, c)
		buf = append(buf, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
	}
	return buf
}

// shardOfKey hashes an encoded LHS key to its owning shard: FNV-1a over
// the key bytes, finished with an avalanche mix so dictionary ids that
// differ only in low bits still spread across shards.
func shardOfKey(key []byte, nShards int) uint8 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, b := range key {
		h ^= uint64(b)
		h *= prime64
	}
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	return uint8(h % uint64(nShards))
}

// routeIndex routes dependency i's equivalence classes and lone rows to
// their shards: every base class (keyed by its representative's
// antecedent values) and every singleton row is hashed to a shard, which
// records it in its LHS-key index and receives a mapped overlay view of
// the shared base partition. Iteration i writes only index-i slots of the
// per-shard slices and maps, so the monitor build fans routeIndex out
// over dependencies race-free.
func (m *Monitor) routeIndex(i int) {
	d := m.sigma[i]
	base := m.v.Partitions().Get(d.LHS)
	m.lhsCols[i] = d.LHS.Attrs()

	n := m.rel.NumRows()
	classOf := make([]int32, n)
	for t := range classOf {
		classOf[t] = -1
	}
	rowShard := make([]uint8, n)

	// Route base classes: ascending base order per shard keeps local ids
	// canonical (first-appearance order within the shard).
	owned := make([][]int32, m.nShards)
	var buf []byte
	for ci := 0; ci < base.NumClasses(); ci++ {
		class := base.Class(ci)
		buf = EncodeLHSKey(m.rel, m.lhsCols[i], int(class[0]), buf)
		s := shardOfKey(buf, m.nShards)
		local := int32(len(owned[s]))
		owned[s] = append(owned[s], int32(ci))
		m.shards[s].lhsIdx[i][string(buf)] = local
		for _, t := range class {
			classOf[t] = local
			rowShard[t] = s
		}
	}
	for s := range m.shards {
		m.shards[s].parts[i] = relation.NewPartitionOverlayShard(base, owned[s])
	}

	// Route singleton rows: one lone-row index entry each. Two singletons
	// can never share a key — they would be one class — so entries never
	// clash.
	for t := 0; t < n; t++ {
		if classOf[t] >= 0 {
			continue
		}
		buf = EncodeLHSKey(m.rel, m.lhsCols[i], t, buf)
		s := shardOfKey(buf, m.nShards)
		m.shards[s].lhsIdx[i][string(buf)] = loneRow(int32(t))
		rowShard[t] = s
	}

	m.classOf[i] = classOf
	m.rowShard[i] = rowShard
}
