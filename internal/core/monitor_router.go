package core

import (
	"github.com/fastofd/fastofd/internal/live"
	"github.com/fastofd/fastofd/internal/relation"
)

// EncodeLHSKey appends the dict-encoded antecedent value tuple of row t
// (projected on cols) to buf[:0] and returns it. Each attribute
// contributes exactly 4 little-endian bytes, so keys over the same
// attribute list are fixed-width and therefore prefix-free: two rows
// encode equal iff their antecedent value ids are equal attribute by
// attribute (dictionaries make equal strings id-equal). The injectivity
// property test and fuzz target pin this down. The encoding itself lives
// in the shared live-index substrate (live.EncodeKey) — this wrapper
// remains the core-level name both engines' callers use, and the
// cross-engine property test asserts the two stay byte-identical.
func EncodeLHSKey(rel *relation.Relation, cols []int, t int, buf []byte) []byte {
	return live.EncodeKey(rel, cols, t, buf)
}

// shardOfKey hashes an encoded LHS key to its owning shard: FNV-1a over
// the key bytes, finished with an avalanche mix so dictionary ids that
// differ only in low bits still spread across shards.
func shardOfKey(key []byte, nShards int) uint8 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, b := range key {
		h ^= uint64(b)
		h *= prime64
	}
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	return uint8(h % uint64(nShards))
}

// routeIndex routes dependency i's equivalence classes and lone rows to
// their shards: every base class (keyed by its representative's
// antecedent values) and every singleton row is hashed to a shard, which
// records it in its LHS-key index and receives a mapped overlay view of
// the shared base partition. Iteration i writes only index-i slots of the
// per-shard slices and maps, so the monitor build fans routeIndex out
// over dependencies race-free.
func (m *Monitor) routeIndex(i int) {
	d := m.sigma[i]
	base := m.v.Partitions().GetOverlay(d.LHS)
	m.lhsCols[i] = d.LHS.Attrs()

	for s := range m.shards {
		m.shards[s].idx[i] = live.NewClassIndex(m.lhsCols[i], d.RHS)
	}

	n := m.rel.NumRows()
	classOf := make([]int32, n)
	for t := range classOf {
		classOf[t] = -1
	}
	rowShard := make([]uint8, n)

	// Route base classes: ascending base order per shard keeps local ids
	// canonical (first-appearance order within the shard).
	owned := make([][]int32, m.nShards)
	var buf []byte
	for ci := 0; ci < base.NumClasses(); ci++ {
		class := base.Class(ci)
		buf = EncodeLHSKey(m.rel, m.lhsCols[i], int(class[0]), buf)
		s := shardOfKey(buf, m.nShards)
		local := int32(len(owned[s]))
		owned[s] = append(owned[s], int32(ci))
		m.shards[s].idx[i].Keys[string(buf)] = local
		for _, t := range class {
			classOf[t] = local
			rowShard[t] = s
		}
	}
	for s := range m.shards {
		m.shards[s].idx[i].Part = relation.NewPartitionOverlayShard(base, owned[s])
	}

	// Route singleton rows: one lone-row index entry each. Two singletons
	// can never share a key — they would be one class — so entries never
	// clash.
	for t := 0; t < n; t++ {
		if classOf[t] >= 0 {
			continue
		}
		buf = EncodeLHSKey(m.rel, m.lhsCols[i], t, buf)
		s := shardOfKey(buf, m.nShards)
		m.shards[s].idx[i].Keys[string(buf)] = live.LoneRow(int32(t))
		rowShard[t] = s
	}

	m.classOf[i] = classOf
	m.rowShard[i] = rowShard
}
