package core

import (
	"math/rand"
	"strings"
	"testing"

	"github.com/fastofd/fastofd/internal/ontology"
	"github.com/fastofd/fastofd/internal/relation"
)

func table3(t *testing.T) (*relation.Relation, *ontology.Ontology) {
	t.Helper()
	schema := relation.MustSchema("CC", "CTRY", "SYMP", "DIAG", "MED")
	rel, err := relation.FromRows(schema, [][]string{
		{"US", "USA", "headache", "hypertension", "cartia"},
		{"US", "USA", "headache", "hypertension", "ASA"},
		{"US", "America", "headache", "hypertension", "tiazac"},
		{"US", "United States", "headache", "hypertension", "adizem"},
	})
	if err != nil {
		t.Fatal(err)
	}
	o := ontology.New()
	o.MustAddClass("United States of America", "GEO", ontology.NoClass, "US", "USA", "America", "United States")
	o.MustAddClass("diltiazem", "FDA", ontology.NoClass, "cartia", "tiazac")
	o.MustAddClass("aspirin", "MoH", ontology.NoClass, "cartia", "ASA")
	return rel, o
}

func TestDetectPaperExample(t *testing.T) {
	rel, ont := table3(t)
	schema := rel.Schema()
	sigma := Set{
		MustParse(schema, "CC -> CTRY"),
		MustParse(schema, "SYMP, DIAG -> MED"),
	}
	rep := Detect(rel, ont, sigma)
	// CC -> CTRY holds semantically (all of {USA, America, United States}
	// share one interpretation) but would be flagged by an FD.
	if rep.FDOnlyFlagged != 4 {
		t.Errorf("FD-only flagged = %d, want 4", rep.FDOnlyFlagged)
	}
	// [SYMP, DIAG] -> MED genuinely violates: {cartia, ASA, tiazac,
	// adizem} share no sense.
	if len(rep.Violations) != 1 {
		t.Fatalf("violations = %d, want 1 (%+v)", len(rep.Violations), rep.Violations)
	}
	v := rep.Violations[0]
	if len(v.Values) != 4 {
		t.Fatalf("values = %v", v.Values)
	}
	// The best sense covers 2 of 4 values (either FDA {cartia, tiazac} or
	// MoH {cartia, ASA}); adizem is out of the ontology entirely.
	if v.Covered != 2 {
		t.Errorf("covered = %d, want 2", v.Covered)
	}
	if len(v.OutOfOntology) != 1 || v.OutOfOntology[0] != "adizem" {
		t.Errorf("out-of-ontology = %v", v.OutOfOntology)
	}
	if rep.TuplesFlagged != 4 {
		t.Errorf("tuples flagged = %d", rep.TuplesFlagged)
	}
	// Formatting sanity.
	line := v.Format(schema, ont)
	if !strings.Contains(line, "adizem") || !strings.Contains(line, "MED") {
		t.Errorf("explanation incomplete: %s", line)
	}
}

func TestDetectCleanInstance(t *testing.T) {
	rel, ont := table1(t)
	sigma := Set{
		MustParse(rel.Schema(), "CC -> CTRY"),
		MustParse(rel.Schema(), "SYMP, DIAG -> MED"),
	}
	rep := Detect(rel, ont, sigma)
	if len(rep.Violations) != 0 {
		t.Fatalf("clean instance has %d violations", len(rep.Violations))
	}
	if rep.FDOnlyFlagged == 0 {
		t.Fatal("expected FD false positives on the synonym-rich instance")
	}
}

func TestMonitorIncrementalMatchesFull(t *testing.T) {
	rel, ont := table1(t)
	schema := rel.Schema()
	sigma := Set{
		MustParse(schema, "CC -> CTRY"),
		MustParse(schema, "SYMP, DIAG -> MED"),
	}
	m, err := NewMonitor(rel, ont, sigma)
	if err != nil {
		t.Fatal(err)
	}
	if !m.Satisfied() {
		t.Fatal("table 1 should satisfy Σ initially")
	}

	// Randomized update sequence on consequent columns; after each update
	// the monitor's verdict must match full re-verification.
	rng := rand.New(rand.NewSource(3))
	medCol := schema.MustIndex("MED")
	ctryCol := schema.MustIndex("CTRY")
	values := []string{"cartia", "tiazac", "ASA", "adizem", "ibuprofen", "naproxen", "USA", "Bharat"}
	for step := 0; step < 60; step++ {
		col := medCol
		if rng.Intn(2) == 0 {
			col = ctryCol
		}
		row := rng.Intn(rel.NumRows())
		if err := m.Update(row, col, values[rng.Intn(len(values))]); err != nil {
			t.Fatal(err)
		}
		full := NewVerifier(rel, ont, nil).SatisfiesAll(sigma)
		if m.Satisfied() != full {
			t.Fatalf("step %d: monitor=%v full=%v", step, m.Satisfied(), full)
		}
	}
}

func TestMonitorRejectsAntecedentUpdates(t *testing.T) {
	rel, ont := table1(t)
	sigma := Set{MustParse(rel.Schema(), "CC -> CTRY")}
	m, err := NewMonitor(rel, ont, sigma)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Update(0, rel.Schema().MustIndex("CC"), "CA"); err == nil {
		t.Fatal("antecedent update must be rejected")
	}
	if err := m.Update(999, 0, "x"); err == nil {
		t.Fatal("out-of-range update must be rejected")
	}
}

func TestMonitorRejectsOverlappingSigma(t *testing.T) {
	rel, ont := table1(t)
	sigma := Set{
		MustParse(rel.Schema(), "CC -> CTRY"),
		MustParse(rel.Schema(), "CTRY -> MED"),
	}
	if _, err := NewMonitor(rel, ont, sigma); err == nil {
		t.Fatal("overlapping Σ must be rejected")
	}
}

func TestMonitorViolationBookkeeping(t *testing.T) {
	rel, ont := table1(t)
	schema := rel.Schema()
	sigma := Set{MustParse(schema, "SYMP, DIAG -> MED")}
	m, err := NewMonitor(rel, ont, sigma)
	if err != nil {
		t.Fatal(err)
	}
	med := schema.MustIndex("MED")
	// Break the headache/hypertension class.
	if err := m.Update(7, med, "unknown-drug"); err != nil {
		t.Fatal(err)
	}
	if m.Satisfied() || m.ViolationCount() != 1 {
		t.Fatalf("expected 1 violation, got %d", m.ViolationCount())
	}
	vc := m.ViolatingClasses()
	if len(vc[0]) != 1 {
		t.Fatalf("violating classes = %v", vc)
	}
	// Fix it again.
	if err := m.Update(7, med, "cartia"); err != nil {
		t.Fatal(err)
	}
	if !m.Satisfied() {
		t.Fatal("violation should have cleared")
	}
}
