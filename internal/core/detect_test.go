package core

import (
	"strconv"
	"strings"
	"testing"

	"github.com/fastofd/fastofd/internal/ontology"
	"github.com/fastofd/fastofd/internal/relation"
)

func table3(t *testing.T) (*relation.Relation, *ontology.Ontology) {
	t.Helper()
	schema := relation.MustSchema("CC", "CTRY", "SYMP", "DIAG", "MED")
	rel, err := relation.FromRows(schema, [][]string{
		{"US", "USA", "headache", "hypertension", "cartia"},
		{"US", "USA", "headache", "hypertension", "ASA"},
		{"US", "America", "headache", "hypertension", "tiazac"},
		{"US", "United States", "headache", "hypertension", "adizem"},
	})
	if err != nil {
		t.Fatal(err)
	}
	o := ontology.New()
	o.MustAddClass("United States of America", "GEO", ontology.NoClass, "US", "USA", "America", "United States")
	o.MustAddClass("diltiazem", "FDA", ontology.NoClass, "cartia", "tiazac")
	o.MustAddClass("aspirin", "MoH", ontology.NoClass, "cartia", "ASA")
	return rel, o
}

func TestDetectPaperExample(t *testing.T) {
	rel, ont := table3(t)
	schema := rel.Schema()
	sigma := Set{
		MustParse(schema, "CC -> CTRY"),
		MustParse(schema, "SYMP, DIAG -> MED"),
	}
	rep := Detect(rel, ont, sigma)
	// CC -> CTRY holds semantically (all of {USA, America, United States}
	// share one interpretation) but would be flagged by an FD.
	if rep.FDOnlyFlagged != 4 {
		t.Errorf("FD-only flagged = %d, want 4", rep.FDOnlyFlagged)
	}
	// [SYMP, DIAG] -> MED genuinely violates: {cartia, ASA, tiazac,
	// adizem} share no sense.
	if len(rep.Violations) != 1 {
		t.Fatalf("violations = %d, want 1 (%+v)", len(rep.Violations), rep.Violations)
	}
	v := rep.Violations[0]
	if len(v.Values) != 4 {
		t.Fatalf("values = %v", v.Values)
	}
	// The best sense covers 2 of 4 values (either FDA {cartia, tiazac} or
	// MoH {cartia, ASA}); adizem is out of the ontology entirely.
	if v.Covered != 2 {
		t.Errorf("covered = %d, want 2", v.Covered)
	}
	if len(v.OutOfOntology) != 1 || v.OutOfOntology[0] != "adizem" {
		t.Errorf("out-of-ontology = %v", v.OutOfOntology)
	}
	if rep.TuplesFlagged != 4 {
		t.Errorf("tuples flagged = %d", rep.TuplesFlagged)
	}
	// Formatting sanity.
	line := v.Format(schema, ont)
	if !strings.Contains(line, "adizem") || !strings.Contains(line, "MED") {
		t.Errorf("explanation incomplete: %s", line)
	}
}

func TestDetectCleanInstance(t *testing.T) {
	rel, ont := table1(t)
	sigma := Set{
		MustParse(rel.Schema(), "CC -> CTRY"),
		MustParse(rel.Schema(), "SYMP, DIAG -> MED"),
	}
	rep := Detect(rel, ont, sigma)
	if len(rep.Violations) != 0 {
		t.Fatalf("clean instance has %d violations", len(rep.Violations))
	}
	if rep.FDOnlyFlagged == 0 {
		t.Fatal("expected FD false positives on the synonym-rich instance")
	}
}

// TestDetectAllocsIndependentOfClassCount guards the allocation-free
// detection scan: on an instance whose classes are all syntactically
// constant, Detect must not allocate per class (no per-class distinct
// maps), so total allocations stay bounded by the fixed setup cost
// (verifier tables, partition cache, report) regardless of class count.
func TestDetectAllocsIndependentOfClassCount(t *testing.T) {
	schema := relation.MustSchema("X", "Y")
	const classes = 800
	rows := make([][]string, 0, classes*3)
	for c := 0; c < classes; c++ {
		x := "x" + strconv.Itoa(c)
		y := "y" + strconv.Itoa(c)
		for k := 0; k < 3; k++ {
			rows = append(rows, []string{x, y})
		}
	}
	rel, err := relation.FromRows(schema, rows)
	if err != nil {
		t.Fatal(err)
	}
	ont := ontology.New()
	ont.MustAddClass("C", "S", ontology.NoClass, "y0", "y1")
	sigma := Set{MustParse(schema, "X -> Y")}
	allocs := testing.AllocsPerRun(5, func() {
		rep := Detect(rel, ont, sigma)
		if len(rep.Violations) != 0 {
			t.Fatal("instance is clean by construction")
		}
	})
	// The old inner loop allocated one distinct map per class (≥ 800);
	// the fixed setup cost is far below that.
	if allocs > 200 {
		t.Fatalf("Detect allocates %.0f times for %d satisfied classes; want O(setup), not O(classes)", allocs, classes)
	}
}
