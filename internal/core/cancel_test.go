package core

import (
	"context"
	"encoding/json"
	"errors"
	"sort"
	"sync"
	"testing"
	"time"
)

func TestDetectContextCancelled(t *testing.T) {
	rel, ont := table3(t)
	sigma := Set{
		MustParse(rel.Schema(), "CC -> CTRY"),
		MustParse(rel.Schema(), "SYMP, DIAG -> MED"),
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	rep, err := DetectContext(ctx, rel, ont, sigma, 2, nil)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if rep == nil {
		t.Fatal("cancelled Detect must return a non-nil (partial) report")
	}
	sorted := sort.SliceIsSorted(rep.Violations, func(i, j int) bool {
		a, b := rep.Violations[i], rep.Violations[j]
		if a.OFD != b.OFD {
			if a.OFD.RHS != b.OFD.RHS {
				return a.OFD.RHS < b.OFD.RHS
			}
			return a.OFD.LHS < b.OFD.LHS
		}
		return a.Tuples[0] < b.Tuples[0]
	})
	if !sorted {
		t.Fatal("partial report must still be canonically sorted")
	}
}

func TestNewMonitorContextCancelled(t *testing.T) {
	rel, ont := table3(t)
	sigma := Set{
		MustParse(rel.Schema(), "CC -> CTRY"),
		MustParse(rel.Schema(), "SYMP, DIAG -> MED"),
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	m, err := NewMonitorContext(ctx, rel, ont, sigma)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if m != nil {
		t.Fatal("a partially indexed monitor must not be returned")
	}
}

// cancelOnPoll is a context that cancels itself on its nth Err() poll
// (mirroring the discovery package's countdown-context pattern).
// ApplyBatchContext polls once between writing the cells and fanning out
// the re-verification, so n = 1 deterministically cuts a batch after its
// writes are applied — exactly the window the rollback must cover.
type cancelOnPoll struct {
	mu   sync.Mutex
	left int
	done chan struct{}
}

func newCancelOnPoll(n int) *cancelOnPoll {
	return &cancelOnPoll{left: n, done: make(chan struct{})}
}

func (c *cancelOnPoll) Deadline() (time.Time, bool) { return time.Time{}, false }
func (c *cancelOnPoll) Done() <-chan struct{}       { return c.done }
func (c *cancelOnPoll) Value(key any) any           { return nil }

func (c *cancelOnPoll) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.left <= 0 {
		return context.Canceled
	}
	c.left--
	if c.left == 0 {
		close(c.done)
		return context.Canceled
	}
	return nil
}

// monitorBatchFixture builds a monitor over table1 with the given shard
// count and a batch that would flip one class into violation, plus
// snapshots of the pre-batch state.
func monitorBatchFixture(t *testing.T, shards int) (m *Monitor, batch []CellUpdate, cellsBefore []string, reportBefore string) {
	t.Helper()
	rel, ont := table1(t)
	schema := rel.Schema()
	sigma := Set{
		MustParse(schema, "CC -> CTRY"),
		MustParse(schema, "SYMP, DIAG -> MED"),
	}
	m, err := NewMonitorSharded(context.Background(), rel, ont, sigma, shards, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	med := schema.MustIndex("MED")
	ctry := schema.MustIndex("CTRY")
	batch = []CellUpdate{
		{Row: 7, Col: med, Value: "unknown-drug"},
		{Row: 8, Col: med, Value: "another-unknown"},
		{Row: 0, Col: ctry, Value: "Atlantis"},
	}
	for _, u := range batch {
		cellsBefore = append(cellsBefore, rel.String(u.Row, u.Col))
	}
	rb, err := json.Marshal(m.Report())
	if err != nil {
		t.Fatal(err)
	}
	return m, batch, cellsBefore, string(rb)
}

// assertBatchRolledBack checks the atomicity contract: after a cancelled
// ApplyBatch no cell write survives and the violation state — including the
// materialized Report — is exactly the pre-batch state.
func assertBatchRolledBack(t *testing.T, m *Monitor, batch []CellUpdate, cellsBefore []string, reportBefore string) {
	t.Helper()
	for k, u := range batch {
		if got := m.rel.String(u.Row, u.Col); got != cellsBefore[k] {
			t.Fatalf("cell (%d,%d) = %q after cancelled batch, want rolled-back %q", u.Row, u.Col, got, cellsBefore[k])
		}
	}
	if !m.Satisfied() {
		t.Fatal("cancelled batch left violation state half-updated")
	}
	after, err := json.Marshal(m.Report())
	if err != nil {
		t.Fatal(err)
	}
	if string(after) != reportBefore {
		t.Fatalf("cancelled batch changed the report\n got %s\nwant %s", after, reportBefore)
	}
}

func TestApplyBatchPreCancelled(t *testing.T) {
	m, batch, cellsBefore, reportBefore := monitorBatchFixture(t, 1)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := m.ApplyBatchContext(ctx, batch); !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	assertBatchRolledBack(t, m, batch, cellsBefore, reportBefore)
}

func TestApplyBatchCancelledAfterWrites(t *testing.T) {
	for _, shards := range []int{1, 4, 16} {
		for _, workers := range []int{1, 2, 0} {
			m, batch, cellsBefore, reportBefore := monitorBatchFixture(t, shards)
			m.Workers = workers
			// First Err() poll fires after the cell writes, before the shard
			// fan-out applies any multiset delta.
			err := m.ApplyBatchContext(newCancelOnPoll(1), batch)
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("shards=%d workers=%d: want context.Canceled, got %v", shards, workers, err)
			}
			assertBatchRolledBack(t, m, batch, cellsBefore, reportBefore)
			// After the rollback the report still matches a fresh Detect —
			// the acceptance criterion "byte-identical including after
			// cancellation rollback".
			want, err2 := json.Marshal(Detect(m.rel, m.v.Ontology(), m.sigma))
			if err2 != nil {
				t.Fatal(err2)
			}
			if got, _ := json.Marshal(m.Report()); string(got) != string(want) {
				t.Fatalf("shards=%d workers=%d: rolled-back report diverged from Detect\n got %s\nwant %s", shards, workers, got, want)
			}
			// The rolled-back monitor stays fully usable: the same batch
			// applies cleanly afterwards.
			if err := m.ApplyBatch(batch); err != nil {
				t.Fatal(err)
			}
			if m.Satisfied() {
				t.Fatalf("shards=%d workers=%d: re-applied batch must violate", shards, workers)
			}
		}
	}
}
