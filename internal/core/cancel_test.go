package core

import (
	"context"
	"errors"
	"sort"
	"testing"
)

func TestDetectContextCancelled(t *testing.T) {
	rel, ont := table3(t)
	sigma := Set{
		MustParse(rel.Schema(), "CC -> CTRY"),
		MustParse(rel.Schema(), "SYMP, DIAG -> MED"),
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	rep, err := DetectContext(ctx, rel, ont, sigma, 2, nil)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if rep == nil {
		t.Fatal("cancelled Detect must return a non-nil (partial) report")
	}
	sorted := sort.SliceIsSorted(rep.Violations, func(i, j int) bool {
		a, b := rep.Violations[i], rep.Violations[j]
		if a.OFD != b.OFD {
			if a.OFD.RHS != b.OFD.RHS {
				return a.OFD.RHS < b.OFD.RHS
			}
			return a.OFD.LHS < b.OFD.LHS
		}
		return a.Tuples[0] < b.Tuples[0]
	})
	if !sorted {
		t.Fatal("partial report must still be canonically sorted")
	}
}

func TestNewMonitorContextCancelled(t *testing.T) {
	rel, ont := table3(t)
	sigma := Set{
		MustParse(rel.Schema(), "CC -> CTRY"),
		MustParse(rel.Schema(), "SYMP, DIAG -> MED"),
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	m, err := NewMonitorContext(ctx, rel, ont, sigma)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if m != nil {
		t.Fatal("a partially indexed monitor must not be returned")
	}
}
