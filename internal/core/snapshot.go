package core

import (
	"context"
	"fmt"
	"sort"
	"sync/atomic"

	"github.com/fastofd/fastofd/internal/exec"
	"github.com/fastofd/fastofd/internal/live"
	"github.com/fastofd/fastofd/internal/ontology"
	"github.com/fastofd/fastofd/internal/relation"
	"github.com/fastofd/fastofd/internal/wire"
)

// This file is the monitor's side of the snapshot format. A monitor
// snapshot captures exactly the state a rebuild would recompute from the
// instance — Σ, the per-OFD routing tables, each shard's overlay of the
// frozen base partitions, LHS-key indexes, consequent multisets, and the
// verifier's memoized names tables — so reopening costs bulk array reads
// plus one multiset pass per class to re-materialize violation records,
// instead of partition construction and LHS-key hashing over every tuple.
//
// Two deliberately lazy pieces keep reopen latency proportional to the
// flagged state rather than the instance:
//
//   - LHS-key index maps are restored in frozen key/value array form and
//     hydrated into hash maps only if the monitor appends again (Report,
//     Update, and ApplyBatch never consult them).
//   - Dictionary string→id maps hydrate on first intern (relation side).

// AppendSet encodes Σ.
func AppendSet(w *wire.Writer, sigma Set) {
	w.Int(len(sigma))
	for _, d := range sigma {
		w.Uvarint(uint64(d.LHS))
		w.Int(d.RHS)
	}
}

// DecodeSet decodes a dependency set written by AppendSet.
func DecodeSet(r *wire.Reader) Set {
	n := r.Int()
	if r.Err() != nil {
		return nil
	}
	out := make(Set, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, OFD{LHS: relation.AttrSet(r.Uvarint()), RHS: r.Int()})
	}
	return out
}

// appendVerifierTables encodes the verifier's memoized names tables and
// coverage flags, sparsely: only values with at least one ontology
// interpretation are written (most columns of a real schema have none, and
// most values of a covered column still interpret to nothing).
func appendVerifierTables(w *wire.Writer, v *Verifier) {
	w.Int(len(v.names))
	for c := range v.names {
		tbl := *v.names[c].tbl.Load()
		w.Int(len(tbl))
		nonEmpty := 0
		for _, names := range tbl {
			if len(names) > 0 {
				nonEmpty++
			}
		}
		w.Int(nonEmpty)
		for id, names := range tbl {
			if len(names) == 0 {
				continue
			}
			w.Int(id)
			w.Int(len(names))
			for _, cls := range names {
				w.Uvarint(uint64(cls))
			}
		}
		w.Bool(v.covered[c].Load())
	}
}

// decodeVerifier rebuilds a verifier from its serialized names tables,
// skipping the per-value ontology resolution a fresh NewVerifier pays —
// the tables are memoization, so restoring them is exactly as correct as
// recomputing and O(interpreted values) instead of O(distinct values).
func decodeVerifier(r *wire.Reader, rel *relation.Relation, ont *ontology.Ontology, pc *relation.PartitionCache) (*Verifier, error) {
	nCols := r.Int()
	if r.Err() != nil {
		return nil, r.Err()
	}
	if nCols != rel.NumCols() {
		return nil, fmt.Errorf("core: snapshot verifier has %d columns, relation has %d", nCols, rel.NumCols())
	}
	v := &Verifier{
		rel:     rel,
		ont:     ont,
		pc:      pc,
		names:   make([]colNames, nCols),
		covered: make([]atomic.Bool, nCols),
	}
	for c := 0; c < nCols; c++ {
		tbl := make([][]ontology.ClassID, r.Int())
		nonEmpty := r.Int()
		for k := 0; k < nonEmpty; k++ {
			id := r.Int()
			names := make([]ontology.ClassID, r.Int())
			for j := range names {
				names[j] = ontology.ClassID(r.Uvarint())
			}
			if r.Err() != nil {
				return nil, r.Err()
			}
			if id < 0 || id >= len(tbl) {
				return nil, fmt.Errorf("core: snapshot names table id %d out of range", id)
			}
			tbl[id] = names
		}
		v.names[c].tbl.Store(&tbl)
		v.covered[c].Store(r.Bool())
	}
	return v, r.Err()
}

// AppendVerifier encodes v's memoized names tables and coverage flags in
// the monitor's sparse verifier encoding; the maintainer snapshot reuses
// it so a restored maintainer skips per-value ontology resolution too.
func AppendVerifier(w *wire.Writer, v *Verifier) { appendVerifierTables(w, v) }

// DecodeVerifier rebuilds a verifier written by AppendVerifier over
// rel/ont, backed by pc (nil gives the unbacked, mutation-safe shape the
// maintainer keeps long-lived).
func DecodeVerifier(r *wire.Reader, rel *relation.Relation, ont *ontology.Ontology, pc *relation.PartitionCache) (*Verifier, error) {
	return decodeVerifier(r, rel, ont, pc)
}

// AppendLHSIndex encodes one LHS-key index (encoded fixed-width key →
// class id or lone-row entry) as concatenated key-sorted keys plus
// parallel values — the shared frozen form of monitor shard indexes and
// maintainer cover-tracker indexes.
func AppendLHSIndex(w *wire.Writer, idx map[string]int32, width int) {
	appendLHSIndex(w, idx, width)
}

// AppendMonitor encodes m: the verifier tables first, then the monitor
// body. Must not run concurrently with mutations.
func AppendMonitor(w *wire.Writer, m *Monitor) {
	appendVerifierTables(w, m.v)
	AppendMonitorBody(w, m)
}

// AppendMonitorBody encodes everything of m except the verifier tables —
// the pipeline snapshot writes one shared verifier section for both
// engines and then each engine's body. Restored-and-not-yet-hydrated
// index state re-encodes from its frozen form directly, so save → open →
// save round-trips without ever building the maps.
func AppendMonitorBody(w *wire.Writer, m *Monitor) {
	AppendSet(w, m.sigma)
	w.Int(m.nShards)
	w.Uvarint(m.epoch)
	for i := range m.sigma {
		w.Int32s(m.classOf[i])
		w.Uint8s(m.rowShard[i])
		// All shards hold mapped views of one shared base partition per
		// OFD; the overlay's base is the build-time snapshot (appended rows
		// live in the deltas), so it is serialized as-is, never recomputed.
		relation.AppendPartition(w, m.shards[0].idx[i].Part.Base())
	}
	for _, sh := range m.shards {
		for i := range m.sigma {
			ix := sh.idx[i]
			ov := ix.Part
			w.Int32s(ov.BaseMap())
			// Deltas are sparse: most classes never see an append.
			total := ov.NumClasses()
			w.Int(total)
			nonEmpty := 0
			for ci := 0; ci < total; ci++ {
				if len(ov.Delta(ci)) > 0 {
					nonEmpty++
				}
			}
			w.Int(nonEmpty)
			for ci := 0; ci < total; ci++ {
				if d := ov.Delta(ci); len(d) > 0 {
					w.Int(ci)
					w.Int32s(d)
				}
			}
			if ix.NeedsHydrate() {
				w.Int(len(ix.FrozenVals))
				w.Int(ix.Width())
				w.Blob(ix.FrozenKeys)
				w.Int32s(ix.FrozenVals)
			} else {
				appendLHSIndex(w, ix.Keys, ix.Width())
			}
			appendCounts(w, ix.Counts)
		}
	}
}

// appendLHSIndex encodes one LHS-key index as concatenated fixed-width
// keys plus parallel values, key-sorted so the encoding is deterministic.
func appendLHSIndex(w *wire.Writer, idx map[string]int32, width int) {
	w.Int(len(idx))
	w.Int(width)
	ordered := make([]string, 0, len(idx))
	for k := range idx {
		ordered = append(ordered, k)
	}
	sort.Strings(ordered)
	keys := make([]byte, 0, len(idx)*width)
	vals := make([]int32, 0, len(idx))
	for _, k := range ordered {
		keys = append(keys, k...)
		vals = append(vals, idx[k])
	}
	w.Blob(keys)
	w.Int32s(vals)
}

// appendCounts encodes one OFD's per-class consequent multisets as three
// bulk arrays: pairs-per-class, then the flattened values and
// multiplicities.
func appendCounts(w *wire.Writer, counts [][]live.ValCount) {
	lens := make([]int32, len(counts))
	total := 0
	for ci, pairs := range counts {
		lens[ci] = int32(len(pairs))
		total += len(pairs)
	}
	vals := make([]int32, 0, total)
	ns := make([]int32, 0, total)
	for _, pairs := range counts {
		for _, p := range pairs {
			vals = append(vals, int32(p.Val))
			ns = append(ns, p.N)
		}
	}
	w.Int32s(lens)
	w.Int32s(vals)
	w.Int32s(ns)
}

// decodeCounts is the inverse of appendCounts. The per-class pair slices
// are freshly allocated (bump mutates them in place and appends), but the
// three bulk reads are zero-copy, so the copy loop touches each pair once.
func decodeCounts(r *wire.Reader) [][]live.ValCount {
	lens := r.Int32s()
	vals := r.Int32s()
	ns := r.Int32s()
	if len(vals) != len(ns) {
		return nil
	}
	counts := make([][]live.ValCount, len(lens))
	pos := 0
	for ci, l := range lens {
		n := int(l)
		if n < 0 || pos+n > len(vals) {
			return nil
		}
		pairs := make([]live.ValCount, n)
		for k := 0; k < n; k++ {
			pairs[k] = live.ValCount{Val: relation.Value(vals[pos+k]), N: ns[pos+k]}
		}
		counts[ci] = pairs
		pos += n
	}
	return counts
}

// DecodeMonitor rebuilds a monitor over rel/ont from a snapshot written by
// AppendMonitor, sharing pc as its partition cache (nil creates a private
// one). Violation records are re-materialized shard-parallel — they are
// deterministic functions of the restored multisets and overlays — so the
// first Report is byte-identical to the saved monitor's. workers and stats
// configure the restored monitor exactly as NewMonitorSharded's parameters
// would.
func DecodeMonitor(r *wire.Reader, rel *relation.Relation, ont *ontology.Ontology, pc *relation.PartitionCache, workers int, stats *exec.Stats) (*Monitor, error) {
	if pc == nil {
		pc = relation.NewPartitionCache(rel)
	}
	v, err := decodeVerifier(r, rel, ont, pc)
	if err != nil {
		return nil, err
	}
	return DecodeMonitorBody(r, rel, v, workers, stats)
}

// DecodeMonitorBody rebuilds a monitor from a body written by
// AppendMonitorBody over an already-decoded (typically shared) verifier.
func DecodeMonitorBody(r *wire.Reader, rel *relation.Relation, v *Verifier, workers int, stats *exec.Stats) (*Monitor, error) {
	sigma := DecodeSet(r)
	nShards := r.Int()
	epoch := r.Uvarint()
	if r.Err() != nil {
		return nil, r.Err()
	}
	if nShards < 1 || nShards > maxShards {
		return nil, fmt.Errorf("core: snapshot shard count %d out of range", nShards)
	}
	w := exec.Workers(workers)
	span := stats.Span("monitor.restore")
	span.Workers(w)
	span.Shards(nShards)
	span.Items(len(sigma))
	defer span.End()
	var lhs relation.AttrSet
	for _, d := range sigma {
		lhs = lhs.Union(d.LHS)
	}
	m := &Monitor{
		rel:         rel,
		v:           v,
		sigma:       sigma,
		Workers:     workers,
		Stats:       stats,
		nShards:     nShards,
		shards:      make([]*monitorShard, nShards),
		lhsCols:     make([][]int, len(sigma)),
		byRHS:       make([][]int32, rel.NumCols()),
		classOf:     make([][]int32, len(sigma)),
		rowShard:    make([][]uint8, len(sigma)),
		lhsAttrs:    lhs,
		snapDirty:   make([]bool, nShards),
		epoch:       epoch,
		needHydrate: true,
	}
	for i, d := range sigma {
		if d.RHS < 0 || d.RHS >= rel.NumCols() {
			return nil, fmt.Errorf("core: snapshot OFD consequent %d out of range", d.RHS)
		}
		m.lhsCols[i] = d.LHS.Attrs()
		m.byRHS[d.RHS] = append(m.byRHS[d.RHS], int32(i))
	}
	bases := make([]*relation.Partition, len(sigma))
	for i := range sigma {
		m.classOf[i] = r.Int32s()
		m.rowShard[i] = r.Uint8s()
		bases[i] = relation.DecodePartition(r)
		if r.Err() != nil {
			return nil, r.Err()
		}
		if len(m.classOf[i]) != rel.NumRows() || len(m.rowShard[i]) != rel.NumRows() {
			return nil, fmt.Errorf("core: snapshot routing tables sized for %d rows, relation has %d", len(m.classOf[i]), rel.NumRows())
		}
	}
	for s := range m.shards {
		sh := newMonitorShard(len(sigma))
		for i := range sigma {
			baseMap := r.Int32s()
			total := r.Int()
			nonEmpty := r.Int()
			if r.Err() != nil {
				return nil, r.Err()
			}
			if total < len(baseMap) || nonEmpty > total {
				return nil, fmt.Errorf("core: snapshot overlay class counts inconsistent (%d classes, %d base, %d non-empty deltas)", total, len(baseMap), nonEmpty)
			}
			deltas := make([][]int32, total)
			for k := 0; k < nonEmpty; k++ {
				ci := r.Int()
				d := r.Int32s()
				if r.Err() != nil {
					return nil, r.Err()
				}
				if ci < 0 || ci >= total {
					return nil, fmt.Errorf("core: snapshot overlay delta class %d out of range", ci)
				}
				deltas[ci] = d
			}
			ix := live.NewClassIndex(m.lhsCols[i], sigma[i].RHS)
			ix.Part = relation.RestoreOverlayShard(bases[i], baseMap, deltas)
			count := r.Int()
			width := r.Int()
			keys, vals := r.Blob(), r.Int32s()
			if r.Err() != nil {
				return nil, r.Err()
			}
			if width != ix.Width() || len(vals) != count || len(keys) != count*width {
				return nil, fmt.Errorf("core: snapshot LHS index shape mismatch (count %d, width %d)", count, width)
			}
			ix.SetFrozen(keys, vals) // hydrated on first append
			ix.Counts = decodeCounts(r)
			if ix.Counts == nil || len(ix.Counts) != total {
				if r.Err() != nil {
					return nil, r.Err()
				}
				return nil, fmt.Errorf("core: snapshot multisets inconsistent with overlay classes")
			}
			sh.idx[i] = ix
		}
		m.shards[s] = sh
	}
	if r.Err() != nil {
		return nil, r.Err()
	}
	// Re-materialize the violation records shard-parallel: the maintained
	// multiset answers OK/FD-only/violating per class without a tuple scan,
	// and only flagged classes pay explain().
	if err := exec.For(context.Background(), nShards, w, func(_, s int) {
		m.shards[s].restoreRecords(m)
	}); err != nil {
		return nil, err
	}
	m.publishInit()
	if m.epoch > 0 {
		// Keep the epoch counter continuous with the saved process: the
		// restored state is republished as the saved epoch, so ReportAt of
		// that epoch answers and the next mutation stamps epoch+1.
		hist := []*epochSnap{{epoch: m.epoch, shards: (*m.history.Load())[0].shards}}
		m.history.Store(&hist)
	}
	return m, nil
}

// restoreRecords rebuilds the shard's violation and FD-only maps from the
// restored multisets — buildState minus the multiset construction pass.
func (sh *monitorShard) restoreRecords(m *Monitor) {
	for i := range m.sigma {
		sh.viol[i] = make(map[int32]*Violation)
		sh.fdOnly[i] = make(map[int32][]int32)
		for ci := range sh.idx[i].Counts {
			st := sh.classState(m, i, ci)
			if st == classOK {
				continue
			}
			v, fd := sh.materialize(m, i, int32(ci), st)
			if st == classViolating {
				sh.viol[i][int32(ci)] = v
			} else {
				sh.fdOnly[i][int32(ci)] = fd
			}
		}
	}
	sh.rebuildSnap()
}

// hydrateIndexes materializes the LHS-key maps from their frozen snapshot
// form — called once, by the first AppendRow after a restore (the only
// operation that consults them). One shared string conversion per index
// keeps hydration to a map-insert pass: the map keys slice into that
// backing, so the whole index costs the map plus one slab allocation.
func (m *Monitor) hydrateIndexes() {
	_ = exec.For(context.Background(), m.nShards, exec.Workers(m.Workers), func(_, s int) {
		for _, ix := range m.shards[s].idx {
			if ix.NeedsHydrate() {
				ix.Hydrate()
			}
		}
	})
	m.needHydrate = false
}

// Relation returns the monitored relation.
func (m *Monitor) Relation() *relation.Relation { return m.rel }

// Ontology returns the monitor's ontology.
func (m *Monitor) Ontology() *ontology.Ontology { return m.v.Ontology() }

// Partitions returns the partition cache behind the monitor's base
// partitions (snapshot encode hook; also shared with co-located engines).
func (m *Monitor) Partitions() *relation.PartitionCache { return m.v.Partitions() }

// Sigma returns the monitored dependency set (a fresh copy).
func (m *Monitor) Sigma() Set { return m.sigma.Clone() }
