package core

import (
	"github.com/fastofd/fastofd/internal/relation"
)

// The OFD axiom system (Theorem 2 of the paper) is:
//
//	O1 Identity:      X → X for all X ⊆ R
//	O2 Decomposition: X → Y and Z ⊆ Y  imply  X → Z
//	O3 Composition:   X → Y and Z → W  imply  XZ → YW
//
// Notably, Transitivity does NOT hold for OFDs. The system is equivalent to
// Lien's axioms for null functional dependencies (Theorem 3), so closure is
// computed with the same linear-time procedure (Algorithm 1).

// Closure computes X⁺ = {A | Σ ⊢ X → A} under the OFD axioms using the
// single-pass-per-application procedure of Algorithm 1. Each dependency in
// Σ is applied at most once, giving O(|Σ| · |R|) time with bitset attribute
// sets — linear in the size of Σ.
func Closure(sigma Set, x relation.AttrSet) relation.AttrSet {
	closure := x
	used := make([]bool, len(sigma))
	for changed := true; changed; {
		changed = false
		for i, d := range sigma {
			// Crucially, the antecedent must be within the ORIGINAL X, not
			// the growing closure: OFDs lack Transitivity, so X → A and
			// A → B do not yield X → B.
			if !used[i] && d.LHS.SubsetOf(x) && !closure.Has(d.RHS) {
				closure = closure.With(d.RHS)
				used[i] = true
				changed = true
			}
		}
	}
	return closure
}

// Implies reports whether Σ ⊢ X → A by Lemma 1: A ∈ X⁺.
func Implies(sigma Set, d OFD) bool {
	return Closure(sigma, d.LHS).Has(d.RHS)
}

// ImpliesAll reports whether Σ ⊢ X → Y for a multi-attribute consequent,
// i.e. Y ⊆ X⁺ (Lemma 1).
func ImpliesAll(sigma Set, lhs, rhs relation.AttrSet) bool {
	return rhs.SubsetOf(Closure(sigma, lhs))
}

// Equivalent reports whether two OFD sets imply each other.
func Equivalent(a, b Set) bool {
	for _, d := range b {
		if !Implies(a, d) {
			return false
		}
	}
	for _, d := range a {
		if !Implies(b, d) {
			return false
		}
	}
	return true
}

// MinimalCover computes a minimal cover of Σ (Definition 5): single
// consequents (already enforced by the OFD type), no extraneous antecedent
// attribute, and no redundant dependency. The result is equivalent to Σ.
func MinimalCover(sigma Set) Set {
	work := sigma.Clone()
	// Drop trivial dependencies (implied by Identity + Decomposition).
	out := work[:0]
	for _, d := range work {
		if !d.Trivial() {
			out = append(out, d)
		}
	}
	work = out

	// Remove extraneous antecedent attributes: B ∈ X is extraneous for
	// X → A when Σ ⊢ (X \ B) → A.
	for i := range work {
		for _, b := range work[i].LHS.Attrs() {
			reduced := OFD{LHS: work[i].LHS.Without(b), RHS: work[i].RHS}
			if Implies(work, reduced) {
				work[i] = reduced
			}
		}
	}

	// Remove redundant dependencies: d is redundant when Σ \ {d} ⊢ d.
	for i := 0; i < len(work); i++ {
		rest := make(Set, 0, len(work)-1)
		rest = append(rest, work[:i]...)
		rest = append(rest, work[i+1:]...)
		if Implies(rest, work[i]) {
			work = rest
			i--
		}
	}

	// Deduplicate (extraneous-attribute removal can create duplicates that
	// redundancy elimination then removes; keep a final dedup for safety).
	seen := make(map[OFD]struct{}, len(work))
	final := make(Set, 0, len(work))
	for _, d := range work {
		if _, dup := seen[d]; dup {
			continue
		}
		seen[d] = struct{}{}
		final = append(final, d)
	}
	final.Sort()
	return final
}

// IsMinimalCover reports whether Σ already satisfies Definition 5.
func IsMinimalCover(sigma Set) bool {
	for i, d := range sigma {
		if d.Trivial() {
			return false
		}
		for _, b := range d.LHS.Attrs() {
			if Implies(sigma, OFD{LHS: d.LHS.Without(b), RHS: d.RHS}) {
				return false
			}
		}
		rest := make(Set, 0, len(sigma)-1)
		rest = append(rest, sigma[:i]...)
		rest = append(rest, sigma[i+1:]...)
		if Implies(rest, d) {
			return false
		}
	}
	return true
}
