package core

import (
	"math/rand"
	"testing"

	"github.com/fastofd/fastofd/internal/ontology"
	"github.com/fastofd/fastofd/internal/relation"
)

// figure1Tree builds the medication is-a hierarchy of Figure 1 as a tree:
// drugs at the leaves, drug families above them.
func figure1Tree() *ontology.Ontology {
	o := ontology.New()
	root := o.MustAddClass("continuant drug", "FDA", ontology.NoClass)
	nsaid := o.MustAddClass("NSAID", "FDA", root)
	o.MustAddClass("ibuprofen", "FDA", nsaid)
	o.MustAddClass("naproxen", "FDA", nsaid)
	analgesic := o.MustAddClass("analgesic", "FDA", root)
	acetaminophen := o.MustAddClass("acetaminophen", "FDA", analgesic)
	o.MustAddClass("tylenol", "FDA", acetaminophen)
	diltiazem := o.MustAddClass("diltiazem hydrochloride", "FDA", root)
	o.MustAddClass("cartia", "FDA", diltiazem)
	o.MustAddClass("tiazac", "FDA", diltiazem)
	return o
}

func TestInheritanceOFDPaperExample(t *testing.T) {
	schema := relation.MustSchema("SYMP", "DIAG", "MED")
	rel, _ := relation.FromRows(schema, [][]string{
		{"joint pain", "osteoarthritis", "ibuprofen"},
		{"joint pain", "osteoarthritis", "NSAID"},
		{"joint pain", "osteoarthritis", "naproxen"},
		{"nausea", "migrane", "analgesic"},
		{"nausea", "migrane", "tylenol"},
		{"nausea", "migrane", "acetaminophen"},
	})
	ont := figure1Tree()
	v := NewVerifier(rel, ont, nil)
	d := MustParse(schema, "SYMP, DIAG -> MED")

	// As a synonym OFD it fails: ibuprofen and naproxen are not synonyms.
	if v.HoldsSyn(d) {
		t.Fatal("should fail as synonym OFD")
	}
	// θ = 0 inheritance coincides with synonym semantics.
	if v.HoldsInh(d, 0) {
		t.Fatal("θ=0 must coincide with synonym semantics")
	}
	// θ = 1 covers {ibuprofen, NSAID, naproxen} via the NSAID family, but
	// NOT {analgesic, tylenol, acetaminophen} (tylenol is 2 hops below
	// analgesic).
	if v.HoldsInh(d, 1) {
		t.Fatal("θ=1 should still fail (tylenol is 2 hops below analgesic)")
	}
	if !v.HoldsInh(d, 2) {
		for _, viol := range v.ViolationsInh(d, 2) {
			t.Logf("violating class %v", viol)
		}
		t.Fatal("θ=2 should hold via drug families")
	}
}

func TestInheritanceMonotoneInTheta(t *testing.T) {
	schema := relation.MustSchema("SYMP", "MED")
	rel, _ := relation.FromRows(schema, [][]string{
		{"a", "ibuprofen"},
		{"a", "tylenol"},
		{"b", "cartia"},
		{"b", "tiazac"},
	})
	ont := figure1Tree()
	v := NewVerifier(rel, ont, nil)
	d := MustParse(schema, "SYMP -> MED")
	prev := false
	for theta := 0; theta <= 4; theta++ {
		cur := v.HoldsInh(d, theta)
		if prev && !cur {
			t.Fatalf("satisfaction not monotone in θ at %d", theta)
		}
		prev = cur
	}
	if !prev {
		t.Fatal("at θ=4 everything shares the root ancestor")
	}
}

func TestInheritanceSupport(t *testing.T) {
	schema := relation.MustSchema("K", "MED")
	rel, _ := relation.FromRows(schema, [][]string{
		{"a", "ibuprofen"},
		{"a", "naproxen"},
		{"a", "unknown-drug"},
		{"a", "NSAID"},
	})
	ont := figure1Tree()
	v := NewVerifier(rel, ont, nil)
	d := MustParse(schema, "K -> MED")
	// 3 of 4 tuples covered by the NSAID family at θ=1.
	if got := v.SupportInh(d, 1); got != 0.75 {
		t.Fatalf("support = %v, want 0.75", got)
	}
	if v.HoldsInh(d, 1) {
		t.Fatal("exact inheritance OFD should fail with the unknown drug")
	}
}

func TestInheritanceThetaZeroEqualsSynonym(t *testing.T) {
	// Property: θ=0 inheritance semantics = synonym semantics on random
	// instances/ontologies.
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 60; trial++ {
		cols := 2 + rng.Intn(3)
		names := make([]string, cols)
		for i := range names {
			names[i] = string(rune('A' + i))
		}
		rel := relation.New(relation.MustSchema(names...))
		row := make([]string, cols)
		for r := 0; r < 2+rng.Intn(10); r++ {
			for c := range row {
				row[c] = string(rune('a' + rng.Intn(4)))
			}
			rel.AppendRow(row)
		}
		o := ontology.New()
		var parent ontology.ClassID = ontology.NoClass
		for c := 0; c < rng.Intn(4); c++ {
			var syn []string
			for v := 0; v < 4; v++ {
				if rng.Intn(2) == 0 {
					syn = append(syn, string(rune('a'+v)))
				}
			}
			id := o.MustAddClass(string(rune('P'+c)), "S", parent, syn...)
			if rng.Intn(2) == 0 {
				parent = id
			}
		}
		v := NewVerifier(rel, o, nil)
		for rhs := 0; rhs < cols; rhs++ {
			for lhs := 0; lhs < cols; lhs++ {
				if lhs == rhs {
					continue
				}
				d := OFD{LHS: relation.Single(lhs), RHS: rhs}
				if v.HoldsSyn(d) != v.HoldsInh(d, 0) {
					t.Fatalf("trial %d: θ=0 mismatch for %v", trial, d)
				}
			}
		}
	}
}
