package core

import (
	"github.com/fastofd/fastofd/internal/ontology"
	"github.com/fastofd/fastofd/internal/relation"
)

// Inheritance OFDs (the second dependency class of the conference version
// of the paper) replace the synonym relationship with is-a: a relation
// satisfies X →_inh A when, for every equivalence class x ∈ Π_X, there is
// an ontology class E such that every A-value of x belongs to E or to a
// descendant of E within path length θ. Synonym OFDs are the special case
// θ = 0.

// ancestorsWithin returns the set of ancestor classes reachable from any
// interpretation of value v in at most theta is-a steps (including the
// value's own classes at distance 0).
func ancestorsWithin(ont *ontology.Ontology, v string, theta int) map[ontology.ClassID]struct{} {
	out := make(map[ontology.ClassID]struct{}, 4)
	for _, cls := range ont.Names(v) {
		c := cls
		for depth := 0; depth <= theta && c != ontology.NoClass; depth++ {
			out[c] = struct{}{}
			c = ont.Parent(c)
		}
	}
	return out
}

// classSatisfiedInh reports whether one equivalence class satisfies
// X →_inh A under path-length bound theta: all values equal, or some
// common ancestor within theta covers every distinct value.
func (v *Verifier) classSatisfiedInh(class []int32, rhs, theta int) bool {
	col := v.rel.Column(rhs)
	first := col.At(int(class[0]))
	allEqual := true
	distinct := make(map[relation.Value]struct{}, 4)
	distinct[first] = struct{}{}
	for _, t := range class[1:] {
		if col.At(int(t)) != first {
			allEqual = false
		}
		distinct[col.At(int(t))] = struct{}{}
	}
	if allEqual {
		return true
	}
	counts := make(map[ontology.ClassID]int, 8)
	need := len(distinct)
	dict := v.rel.Dict(rhs)
	for val := range distinct {
		for anc := range ancestorsWithin(v.ont, dict.String(val), theta) {
			counts[anc]++
			if counts[anc] == need {
				return true
			}
		}
	}
	return false
}

// HoldsInh reports whether the inheritance OFD X →_inh A holds with
// path-length bound theta. theta = 0 coincides with HoldsSyn.
func (v *Verifier) HoldsInh(d OFD, theta int) bool {
	if d.Trivial() {
		return true
	}
	if !v.covered[d.RHS].Load() {
		return v.HoldsFD(d)
	}
	p := v.pc.Get(d.LHS)
	for i := 0; i < p.NumClasses(); i++ {
		if !v.classSatisfiedInh(p.Class(i), d.RHS, theta) {
			return false
		}
	}
	return true
}

// SupportInh returns the fraction of tuples in the largest sub-relation
// satisfying X →_inh A under theta — the approximate-OFD measure for
// inheritance dependencies.
func (v *Verifier) SupportInh(d OFD, theta int) float64 {
	n := v.rel.NumRows()
	if n == 0 || d.Trivial() {
		return 1
	}
	p := v.pc.Get(d.LHS)
	satisfied := n
	dict := v.rel.Dict(d.RHS)
	col := v.rel.Column(d.RHS)
	for i := 0; i < p.NumClasses(); i++ {
		class := p.Class(i)
		valCount := make(map[relation.Value]int, 4)
		for _, t := range class {
			valCount[col.At(int(t))]++
		}
		best := 0
		for _, c := range valCount {
			if c > best {
				best = c
			}
		}
		cover := make(map[ontology.ClassID]int, 8)
		for val, c := range valCount {
			for anc := range ancestorsWithin(v.ont, dict.String(val), theta) {
				cover[anc] += c
				if cover[anc] > best {
					best = cover[anc]
				}
			}
		}
		satisfied -= len(class) - best
	}
	return float64(satisfied) / float64(n)
}

// ViolationsInh returns the equivalence classes violating the inheritance
// OFD under theta.
func (v *Verifier) ViolationsInh(d OFD, theta int) [][]int {
	var out [][]int
	p := v.pc.Get(d.LHS)
	for i := 0; i < p.NumClasses(); i++ {
		if !v.classSatisfiedInh(p.Class(i), d.RHS, theta) {
			out = append(out, p.ClassInts(i))
		}
	}
	return out
}
