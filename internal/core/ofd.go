// Package core implements the paper's primary contribution: Ontology
// Functional Dependencies (OFDs). It provides the OFD type and dependency
// sets Σ, the sound and complete axiom system (Identity, Decomposition,
// Composition) with the linear-time closure/inference procedure
// (Algorithm 1), minimal covers, and verification of synonym OFDs over
// equivalence classes — both exact and approximate (minimum support κ).
package core

import (
	"fmt"
	"sort"
	"strings"

	"github.com/fastofd/fastofd/internal/relation"
)

// OFD is a normalized Ontology Functional Dependency X →_syn A with a
// single consequent attribute (normalization is justified by the
// Decomposition and Composition axioms).
type OFD struct {
	LHS relation.AttrSet // antecedent attribute set X
	RHS int              // consequent attribute A
}

// Trivial reports whether the dependency is trivial (A ∈ X, Reflexivity).
func (o OFD) Trivial() bool { return o.LHS.Has(o.RHS) }

// Format renders the OFD with schema attribute names.
func (o OFD) Format(s *relation.Schema) string {
	return fmt.Sprintf("%s -> %s", o.LHS.Format(s), s.Name(o.RHS))
}

// String renders the OFD with attribute positions.
func (o OFD) String() string {
	return fmt.Sprintf("%s -> %d", o.LHS.String(), o.RHS)
}

// Set is a set of OFDs Σ. Order is not semantically meaningful; Sort gives
// a canonical order for output and comparison.
type Set []OFD

// Sort orders the set by consequent, then antecedent cardinality, then
// antecedent bits.
func (s Set) Sort() {
	sort.Slice(s, func(i, j int) bool {
		if s[i].RHS != s[j].RHS {
			return s[i].RHS < s[j].RHS
		}
		if li, lj := s[i].LHS.Len(), s[j].LHS.Len(); li != lj {
			return li < lj
		}
		return s[i].LHS < s[j].LHS
	})
}

// Contains reports whether the exact dependency is in the set.
func (s Set) Contains(o OFD) bool {
	for _, d := range s {
		if d == o {
			return true
		}
	}
	return false
}

// Clone returns a copy of the set.
func (s Set) Clone() Set { return append(Set(nil), s...) }

// Format renders the set one dependency per line using schema names.
func (s Set) Format(sch *relation.Schema) string {
	var b strings.Builder
	for i, d := range s {
		if i > 0 {
			b.WriteByte('\n')
		}
		b.WriteString(d.Format(sch))
	}
	return b.String()
}

// ByRHS groups the set by consequent attribute.
func (s Set) ByRHS() map[int]Set {
	out := make(map[int]Set)
	for _, d := range s {
		out[d.RHS] = append(out[d.RHS], d)
	}
	return out
}

// ConsequentAttrs returns the distinct consequent attributes (the paper's
// Z, used in the repair approximation bound P = 2·min{|Z|, |Σ|}).
func (s Set) ConsequentAttrs() []int {
	seen := make(map[int]struct{})
	var out []int
	for _, d := range s {
		if _, ok := seen[d.RHS]; ok {
			continue
		}
		seen[d.RHS] = struct{}{}
		out = append(out, d.RHS)
	}
	sort.Ints(out)
	return out
}

// Parse parses an OFD from "A,B -> C" or the Format output "[A, B] -> C"
// using schema attribute names. An empty antecedent ("-> C" or "[] -> C")
// yields the empty set.
func Parse(sch *relation.Schema, s string) (OFD, error) {
	parts := strings.Split(s, "->")
	if len(parts) != 2 {
		return OFD{}, fmt.Errorf("core: OFD %q must have exactly one \"->\"", s)
	}
	lhsSpec := strings.TrimSpace(parts[0])
	if strings.HasPrefix(lhsSpec, "[") && strings.HasSuffix(lhsSpec, "]") {
		lhsSpec = lhsSpec[1 : len(lhsSpec)-1]
	}
	var lhs relation.AttrSet
	for _, name := range strings.Split(lhsSpec, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		i, ok := sch.Index(name)
		if !ok {
			return OFD{}, fmt.Errorf("core: unknown attribute %q", name)
		}
		lhs = lhs.With(i)
	}
	rhsName := strings.TrimSpace(parts[1])
	rhs, ok := sch.Index(rhsName)
	if !ok {
		return OFD{}, fmt.Errorf("core: unknown attribute %q", rhsName)
	}
	return OFD{LHS: lhs, RHS: rhs}, nil
}

// MustParse is Parse that panics on error.
func MustParse(sch *relation.Schema, s string) OFD {
	o, err := Parse(sch, s)
	if err != nil {
		panic(err)
	}
	return o
}

// ParseSet parses one dependency per element.
func ParseSet(sch *relation.Schema, specs []string) (Set, error) {
	out := make(Set, 0, len(specs))
	for _, s := range specs {
		o, err := Parse(sch, s)
		if err != nil {
			return nil, err
		}
		out = append(out, o)
	}
	return out, nil
}
