package core

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"github.com/fastofd/fastofd/internal/exec"
	"github.com/fastofd/fastofd/internal/ontology"
	"github.com/fastofd/fastofd/internal/relation"
)

// Violation explains why one equivalence class violates an OFD: which
// tuples participate, which consequent values they carry, and how close
// the class is to having a common interpretation.
type Violation struct {
	OFD    OFD
	Tuples []int    // tuple ids of the equivalence class
	Values []string // distinct consequent values, sorted
	// BestSense is the interpretation covering the most distinct values
	// (NoClass if no value appears in the ontology).
	BestSense ontology.ClassID
	// Covered is the number of distinct values BestSense covers.
	Covered int
	// MissingValues are the distinct values BestSense does not cover —
	// the candidates for ontology or data repair.
	MissingValues []string
	// OutOfOntology are the distinct values absent from the ontology
	// entirely (a subset of MissingValues).
	OutOfOntology []string
}

// Format renders a one-line human-readable explanation.
func (v Violation) Format(sch *relation.Schema, ont *ontology.Ontology) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: class of %d tuples {%s}", v.OFD.Format(sch), len(v.Tuples), strings.Join(v.Values, ", "))
	if v.BestSense == ontology.NoClass {
		b.WriteString(" has no value in the ontology")
	} else {
		fmt.Fprintf(&b, " best sense %s/%s covers %d/%d values; missing {%s}",
			ont.Sense(v.BestSense), ont.Name(v.BestSense), v.Covered, len(v.Values),
			strings.Join(v.MissingValues, ", "))
	}
	return b.String()
}

// Report is the result of running detection over a dependency set.
type Report struct {
	Violations []Violation
	// TuplesFlagged is the number of distinct tuples in violating classes.
	TuplesFlagged int
	// FDOnlyFlagged counts tuples a traditional FD would flag that the
	// OFD semantics clear — the false positives the paper's Exp-5
	// quantifies.
	FDOnlyFlagged int
}

// Detect finds all violations of Σ on the instance and explains each,
// also counting the tuples that only a syntactic FD would flag.
func Detect(rel *relation.Relation, ont *ontology.Ontology, sigma Set) *Report {
	return DetectWorkers(rel, ont, sigma, 1)
}

// DetectWorkers is Detect with the partition-cache construction spread over
// up to workers goroutines (0 selects runtime.NumCPU()). The report is
// identical for every worker count; only the cache warm-up parallelizes.
func DetectWorkers(rel *relation.Relation, ont *ontology.Ontology, sigma Set, workers int) *Report {
	rep, _ := DetectContext(context.Background(), rel, ont, sigma, workers, nil)
	return rep
}

// DetectContext is DetectWorkers with cooperative cancellation and optional
// per-stage observability. Cancellation is checked between the dependencies
// of Σ; a cancelled run returns the sorted violations of the dependencies
// examined so far plus an error satisfying errors.Is(err, ctx.Err()).
// stats, when non-nil, receives a "detect.verify" span.
func DetectContext(ctx context.Context, rel *relation.Relation, ont *ontology.Ontology, sigma Set, workers int, stats *exec.Stats) (*Report, error) {
	workers = exec.Workers(workers)
	span := stats.Span("detect.verify")
	span.Workers(workers)
	span.Items(len(sigma))
	defer span.End()
	pc, err := relation.NewPartitionCacheContext(ctx, rel, workers)
	v := NewVerifier(rel, ont, pc)
	rep := &Report{}
	flagged := make(map[int]struct{})
	fdOnly := make(map[int]struct{})
	finish := func() {
		rep.TuplesFlagged = len(flagged)
		rep.FDOnlyFlagged = len(fdOnly)
		sortViolations(rep.Violations)
		st := pc.Stats()
		span.Cache(st.Hits, st.Misses)
	}
	if err != nil {
		finish()
		return rep, err
	}
	for _, d := range sigma {
		if err := exec.Interrupted(ctx, "detect"); err != nil {
			finish()
			return rep, err
		}
		p := v.pc.Get(d.LHS)
		col := rel.Column(d.RHS)
		for i := 0; i < p.NumClasses(); i++ {
			class := p.Class(i)
			// All-equal fast path: a syntactically constant class cannot
			// violate and allocates nothing — on mostly-clean instances this
			// clears almost every class, so the scan is allocation-free per
			// class (guarded by TestDetectAllocsIndependentOfClassCount).
			first := col.At(int(class[0]))
			allEqual := true
			for _, t := range class[1:] {
				if col.At(int(t)) != first {
					allEqual = false
					break
				}
			}
			if allEqual {
				continue // satisfied syntactically
			}
			if v.classSatisfied(class, d.RHS) {
				// An FD would flag this class; the OFD clears it.
				for _, t := range class {
					fdOnly[int(t)] = struct{}{}
				}
				continue
			}
			rep.Violations = append(rep.Violations, explain(rel, ont, d, class))
			for _, t := range class {
				flagged[int(t)] = struct{}{}
			}
		}
	}
	finish()
	return rep, nil
}

// sortViolations orders a report canonically: by consequent, antecedent,
// then first tuple id.
func sortViolations(violations []Violation) {
	sort.Slice(violations, func(i, j int) bool {
		a, b := violations[i], violations[j]
		if a.OFD != b.OFD {
			if a.OFD.RHS != b.OFD.RHS {
				return a.OFD.RHS < b.OFD.RHS
			}
			return a.OFD.LHS < b.OFD.LHS
		}
		return a.Tuples[0] < b.Tuples[0]
	})
}

// explain builds the Violation record for one violating class. Violating
// classes are rare, so the distinct-value gather may allocate freely here —
// the detection scan itself stays allocation-free per class.
func explain(rel *relation.Relation, ont *ontology.Ontology, d OFD, class []int32) Violation {
	col := rel.Column(d.RHS)
	dict := rel.Dict(d.RHS)
	seen := make(map[relation.Value]struct{}, 4)
	values := make([]string, 0, 4)
	for _, t := range class {
		if _, ok := seen[col.At(int(t))]; ok {
			continue
		}
		seen[col.At(int(t))] = struct{}{}
		values = append(values, dict.String(col.At(int(t))))
	}
	sort.Strings(values)

	counts := make(map[ontology.ClassID]int, 8)
	for _, s := range values {
		for _, cls := range ont.Names(s) {
			counts[cls]++
		}
	}
	best, bestCount := ontology.NoClass, 0
	ids := make([]ontology.ClassID, 0, len(counts))
	for cls := range counts {
		ids = append(ids, cls)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, cls := range ids {
		if counts[cls] > bestCount {
			best, bestCount = cls, counts[cls]
		}
	}

	tuples := make([]int, len(class))
	for i, t := range class {
		tuples[i] = int(t)
	}
	viol := Violation{
		OFD:       d,
		Tuples:    tuples,
		Values:    values,
		BestSense: best,
		Covered:   bestCount,
	}
	for _, s := range values {
		inBest := best != ontology.NoClass && ont.HasSynonym(best, s)
		if !inBest {
			viol.MissingValues = append(viol.MissingValues, s)
		}
		if !ont.Contains(s) {
			viol.OutOfOntology = append(viol.OutOfOntology, s)
		}
	}
	return viol
}
