package core

import (
	"slices"

	"github.com/fastofd/fastofd/internal/live"
	"github.com/fastofd/fastofd/internal/relation"
)

// monitorShard owns one LHS-key hash slice of the monitor's state: for
// every OFD, a live.ClassIndex bundling the partition overlay over the
// base classes routed here, the LHS-key index of those classes and lone
// rows, and the consequent-value multisets — plus the violation maps with
// their eagerly materialized records. Shards share no mutable state, so
// ApplyBatch's apply and merge stages mutate all active shards in
// parallel without locks.
type monitorShard struct {
	// idx[i] = sigma[i]'s live class index for the classes this shard
	// owns: Part is the overlay over the shared PartitionCache base (a
	// mapped view plus append deltas), Keys the dict-encoded LHS-key map,
	// Counts the consequent-value multisets.
	idx []*live.ClassIndex
	// viol[i][c] holds the materialized Violation record of currently
	// violating local class c; fdOnly[i][c] holds the stable tuple list of
	// a class a plain FD would flag that the ontology clears. Records are
	// immutable once stored — snapshots alias them.
	viol   []map[int32]*Violation
	fdOnly []map[int32][]int32

	// snap is the shard's latest published snapshot; replaced wholesale
	// (never mutated) when the violation maps change.
	snap *shardSnap

	reverified int // classes re-verified since construction

	// Batch scratch, valid between route and commit/rollback of one
	// ApplyBatch call.
	bumps      []shardBump
	dirty      []int64 // (ofd<<32 | class) keys, deduped in applyBatch
	states     []uint8
	stagedViol []*Violation
	stagedFD   [][]int32
	vals       []relation.Value // distinct-value scratch
}

// shardBump is one routed multiset delta: under OFD ofd, local class
// class's consequent multiset loses one `from` and gains one `to`.
type shardBump struct {
	ofd, class int32
	from, to   relation.Value
}

func newMonitorShard(nOFDs int) *monitorShard {
	return &monitorShard{
		idx:    make([]*live.ClassIndex, nOFDs),
		viol:   make([]map[int32]*Violation, nOFDs),
		fdOnly: make([]map[int32][]int32, nOFDs),
	}
}

// buildState computes the shard's multisets, initial class states, and
// materialized violation records from the routed overlays. Fully
// shard-local, so the monitor build fans it out over shards.
func (sh *monitorShard) buildState(m *Monitor) {
	for i := range m.sigma {
		sh.buildStateOFD(m, i)
	}
	sh.rebuildSnap()
}

// buildStateOFD rebuilds dependency i's multisets and violation maps from
// its routed overlay (buildState over one OFD; Register reuses it for the
// OFD it adds).
func (sh *monitorShard) buildStateOFD(m *Monitor, i int) {
	ix := sh.idx[i]
	part := ix.Part
	col := m.rel.Column(m.sigma[i].RHS)
	counts := make([][]live.ValCount, part.NumClasses())
	var scratch []int32
	for ci := range counts {
		pairs := make([]live.ValCount, 0, 4)
		for _, t := range part.View(ci, &scratch) {
			pairs = live.Bump(pairs, col.At(int(t)), 1)
		}
		counts[ci] = pairs
	}
	ix.Counts = counts
	sh.viol[i] = make(map[int32]*Violation)
	sh.fdOnly[i] = make(map[int32][]int32)
	for ci := range counts {
		st := sh.classState(m, i, ci)
		if st == classOK {
			continue
		}
		v, fd := sh.materialize(m, i, int32(ci), st)
		if st == classViolating {
			sh.viol[i][int32(ci)] = v
		} else {
			sh.fdOnly[i][int32(ci)] = fd
		}
	}
}

// classState verifies local class ci of dependency i from its maintained
// consequent-value multiset — O(distinct values), never a tuple scan.
func (sh *monitorShard) classState(m *Monitor, i, ci int) uint8 {
	pairs := sh.idx[i].Counts[ci]
	if len(pairs) <= 1 {
		return classOK // syntactically constant
	}
	sh.vals = live.Distinct(pairs, sh.vals)
	if m.v.valuesSatisfied(m.sigma[i].RHS, sh.vals) {
		return classFDOnly
	}
	return classViolating
}

// materialize builds the immutable record for a non-OK class: the
// explained Violation for a violating class, or the stable tuple list for
// an FD-only class. StableView guarantees the tuple slices stay valid
// under later overlay growth, so snapshots can alias them.
func (sh *monitorShard) materialize(m *Monitor, i int, ci int32, state uint8) (*Violation, []int32) {
	switch state {
	case classViolating:
		rec := explain(m.rel, m.v.Ontology(), m.sigma[i], sh.idx[i].Part.StableView(int(ci)))
		return &rec, nil
	case classFDOnly:
		return nil, sh.idx[i].Part.StableView(int(ci))
	}
	return nil, nil
}

// commitClass moves local class ci of dependency i into the given state,
// installing its materialized record. Reports whether the shard's
// violation maps changed (requiring a snapshot rebuild).
func (sh *monitorShard) commitClass(i int, ci int32, state uint8, v *Violation, fd []int32) bool {
	_, wasViol := sh.viol[i][ci]
	_, wasFD := sh.fdOnly[i][ci]
	delete(sh.viol[i], ci)
	delete(sh.fdOnly[i], ci)
	switch state {
	case classViolating:
		sh.viol[i][ci] = v
	case classFDOnly:
		sh.fdOnly[i][ci] = fd
	}
	return wasViol || wasFD || state != classOK
}

// reverifyOne re-verifies one class on the sequential Update/AppendRow
// path and commits the outcome, reporting whether the violation maps
// changed.
func (sh *monitorShard) reverifyOne(m *Monitor, i int, ci int32) bool {
	st := sh.classState(m, i, int(ci))
	v, fd := sh.materialize(m, i, ci, st)
	sh.reverified++
	return sh.commitClass(i, ci, st, v, fd)
}

// applyBatch runs one shard's apply stage: replay the routed multiset
// deltas, dedup the dirty classes, and re-verify each into staged state
// and materialized records. Nothing observable changes until commitBatch
// — rollbackBatch reverses the deltas and discards the staging.
func (sh *monitorShard) applyBatch(m *Monitor) {
	for _, b := range sh.bumps {
		sh.idx[b.ofd].BumpVal(b.class, b.from, b.to)
	}
	slices.Sort(sh.dirty)
	sh.dirty = slices.Compact(sh.dirty)
	sh.states = sh.states[:0]
	sh.stagedViol = sh.stagedViol[:0]
	sh.stagedFD = sh.stagedFD[:0]
	for _, key := range sh.dirty {
		i, ci := int(key>>32), int32(key)
		st := sh.classState(m, i, int(ci))
		v, fd := sh.materialize(m, i, ci, st)
		sh.states = append(sh.states, st)
		sh.stagedViol = append(sh.stagedViol, v)
		sh.stagedFD = append(sh.stagedFD, fd)
	}
}

// rollbackBatch reverses applyBatch's multiset deltas (in reverse routing
// order) and discards the staged state, restoring the shard exactly to
// its pre-batch state — the violation maps were never touched.
func (sh *monitorShard) rollbackBatch() {
	for k := len(sh.bumps) - 1; k >= 0; k-- {
		b := sh.bumps[k]
		sh.idx[b.ofd].UnbumpVal(b.class, b.from, b.to)
	}
	sh.clearBatch()
}

// commitBatch installs the staged class states and records, counts the
// re-verifications, and rebuilds the shard snapshot if anything changed.
func (sh *monitorShard) commitBatch() {
	changed := false
	for k, key := range sh.dirty {
		i, ci := int(key>>32), int32(key)
		if sh.commitClass(i, ci, sh.states[k], sh.stagedViol[k], sh.stagedFD[k]) {
			changed = true
		}
	}
	sh.reverified += len(sh.dirty)
	if changed {
		sh.rebuildSnap()
	}
	sh.clearBatch()
}

// clearBatch resets the batch scratch (keeping capacity).
func (sh *monitorShard) clearBatch() {
	sh.bumps = sh.bumps[:0]
	sh.dirty = sh.dirty[:0]
	sh.states = sh.states[:0]
	sh.stagedViol = sh.stagedViol[:0]
	sh.stagedFD = sh.stagedFD[:0]
}
