package core

import (
	"context"
	"fmt"
	"sort"

	"github.com/fastofd/fastofd/internal/exec"
	"github.com/fastofd/fastofd/internal/ontology"
	"github.com/fastofd/fastofd/internal/relation"
)

// Monitor is the incremental detection engine: it maintains OFD violation
// state under single-cell updates, batched updates, and appended tuples —
// the "data evolves" scenario of the paper's introduction — without ever
// rebuilding partitions or re-verifying untouched classes.
//
// Per OFD it keeps (1) the stripped partition of the antecedent as a
// frozen base plus a growable relation.PartitionOverlay, so appended
// tuples join their equivalence class without copying the PartitionCache's
// flat arrays, (2) an LHS-key hash index over the dict-encoded antecedent
// value tuple, so AppendRow locates the class of a new tuple in O(|X|)
// instead of forcing a partition rebuild, and (3) a consequent-value
// multiset per class, maintained on every write, so re-verifying a dirty
// class costs O(distinct consequent values) — independent of class size.
// Updates to a consequent cell re-verify only the classes containing the
// row; ApplyBatch dedups the dirty (OFD, class) pairs across a whole batch
// and re-verifies them in parallel with a canonical-order merge, so the
// violation state — and Report — is byte-identical for every Workers value.
//
// Updates to antecedent attributes would move tuples between equivalence
// classes and are rejected (matching the repair model's scope assumption
// that antecedents and consequents are disjoint). A Monitor is not safe
// for concurrent use; ApplyBatch parallelizes internally.
type Monitor struct {
	rel   *relation.Relation
	v     *Verifier
	sigma Set
	// Workers bounds ApplyBatch's parallel re-verification and the initial
	// index build (0 selects all CPUs, as everywhere on the exec substrate).
	Workers int
	// Stats, when non-nil, receives monitor.build and monitor.reverify
	// stage spans.
	Stats *exec.Stats

	// classOf[i][t] = class id of tuple t within sigma[i]'s partition
	// overlay, or -1 when the tuple is (still) in a singleton class.
	classOf [][]int32
	// parts[i] = sigma[i]'s stripped antecedent partition: cached base
	// plus append deltas.
	parts []*relation.PartitionOverlay
	// lhsIdx[i] maps the dict-encoded antecedent value tuple to the class
	// holding it: values >= 0 are class ids, values <= -2 encode a lone
	// (singleton) row as -(row+2). Keys absent from the index have never
	// been seen.
	lhsIdx []map[string]int32
	// lhsCols[i] = sigma[i].LHS.Attrs(), cached for key encoding.
	lhsCols [][]int
	// counts[i][c] is the multiset of consequent values of class c under
	// sigma[i], as (value, multiplicity) pairs. Maintained on every write,
	// it makes re-verification O(distinct values) — independent of class
	// size — since OFD satisfaction is a property of the distinct consequent
	// values alone.
	counts [][][]valCount
	// violating[i][c] marks class c of sigma[i] as currently violating;
	// fdOnly[i][c] marks it as syntactically non-constant but cleared by
	// the ontology (the false positives a plain FD would flag).
	violating []map[int]struct{}
	fdOnly    []map[int]struct{}
	lhsAttrs  relation.AttrSet

	reverified int              // classes re-verified since construction
	vals       []relation.Value // distinct-value scratch for sequential paths
	keyBuf     []byte           // LHS-key encoding scratch
}

// valCount is one distinct consequent value of an equivalence class with
// its multiplicity. Classes keep their multisets as small linear-probed
// slices: real classes have a handful of distinct consequent values even
// when they span thousands of tuples.
type valCount struct {
	val relation.Value
	n   int32
}

// bump adjusts v's multiplicity by delta, dropping the entry when it
// reaches zero. delta must not take a count negative (the monitor adjusts
// counts only from cell writes it performed, so multisets stay in sync).
func bump(pairs []valCount, v relation.Value, delta int32) []valCount {
	for k := range pairs {
		if pairs[k].val == v {
			pairs[k].n += delta
			if pairs[k].n == 0 {
				pairs[k] = pairs[len(pairs)-1]
				pairs = pairs[:len(pairs)-1]
			}
			return pairs
		}
	}
	return append(pairs, valCount{v, delta})
}

// CellUpdate is one cell write of a batched update: set cell (Row, Col) to
// Value.
type CellUpdate struct {
	Row, Col int
	Value    string
}

// class verification outcome; ordered so "worse" states are larger.
const (
	classOK        uint8 = iota // consequent syntactically constant
	classFDOnly                 // an FD would flag it; the ontology clears it
	classViolating              // no common interpretation
)

// NewMonitor builds a monitor over the instance and Σ, computing the
// initial violation state.
func NewMonitor(rel *relation.Relation, ont *ontology.Ontology, sigma Set) (*Monitor, error) {
	return NewMonitorContext(context.Background(), rel, ont, sigma)
}

// NewMonitorContext is NewMonitor with cooperative cancellation: the index
// build stops between dependencies. A cancelled build returns a nil
// Monitor — a partially indexed monitor would report wrong violation
// counts — together with an error satisfying errors.Is(err, ctx.Err()).
func NewMonitorContext(ctx context.Context, rel *relation.Relation, ont *ontology.Ontology, sigma Set) (*Monitor, error) {
	return NewMonitorWorkers(ctx, rel, ont, sigma, 1, nil)
}

// NewMonitorWorkers is NewMonitorContext with the per-dependency index
// build spread over up to workers goroutines (0 = all CPUs) and optional
// per-stage stats. The resulting monitor keeps workers as its ApplyBatch
// parallelism; the violation state is identical for every worker count.
func NewMonitorWorkers(ctx context.Context, rel *relation.Relation, ont *ontology.Ontology, sigma Set, workers int, stats *exec.Stats) (*Monitor, error) {
	var lhs, rhs relation.AttrSet
	for _, d := range sigma {
		lhs = lhs.Union(d.LHS)
		rhs = rhs.With(d.RHS)
	}
	if inter := lhs.Intersect(rhs); !inter.IsEmpty() {
		return nil, fmt.Errorf("core: monitor requires disjoint antecedents and consequents; %s overlaps", inter.Format(rel.Schema()))
	}
	w := exec.Workers(workers)
	span := stats.Span("monitor.build")
	span.Workers(w)
	span.Items(len(sigma))
	defer span.End()
	pc, err := relation.NewPartitionCacheContext(ctx, rel, w)
	if err != nil {
		return nil, err
	}
	m := &Monitor{
		rel:       rel,
		v:         NewVerifier(rel, ont, pc),
		sigma:     sigma.Clone(),
		Workers:   workers,
		Stats:     stats,
		classOf:   make([][]int32, len(sigma)),
		parts:     make([]*relation.PartitionOverlay, len(sigma)),
		lhsIdx:    make([]map[string]int32, len(sigma)),
		lhsCols:   make([][]int, len(sigma)),
		counts:    make([][][]valCount, len(sigma)),
		violating: make([]map[int]struct{}, len(sigma)),
		fdOnly:    make([]map[int]struct{}, len(sigma)),
		lhsAttrs:  lhs,
	}
	// Each iteration touches only index i's slots, so the build fans out
	// over dependencies; the shared partition cache is safe for concurrent
	// Get and the names tables extend under their own locks.
	err = exec.For(ctx, len(sigma), w, func(_, i int) {
		m.buildIndex(i)
	})
	if err != nil {
		return nil, err
	}
	st := pc.Stats()
	span.Cache(st.Hits, st.Misses)
	return m, nil
}

// buildIndex computes dependency i's partition overlay, row→class table,
// LHS-key index, and initial violation state.
func (m *Monitor) buildIndex(i int) {
	d := m.sigma[i]
	base := m.v.Partitions().Get(d.LHS)
	m.parts[i] = relation.NewPartitionOverlay(base)
	m.lhsCols[i] = d.LHS.Attrs()

	n := m.rel.NumRows()
	classOf := make([]int32, n)
	for t := range classOf {
		classOf[t] = -1
	}
	for ci := 0; ci < base.NumClasses(); ci++ {
		for _, t := range base.Class(ci) {
			classOf[t] = int32(ci)
		}
	}
	m.classOf[i] = classOf

	// LHS-key index: one entry per class (keyed by the representative's
	// antecedent values) plus one per singleton row. Two singletons can
	// never share a key — they would be one class — so entries never clash.
	idx := make(map[string]int32, base.NumClasses())
	var buf []byte
	for ci := 0; ci < base.NumClasses(); ci++ {
		buf = m.encodeKey(buf[:0], i, int(base.Class(ci)[0]))
		idx[string(buf)] = int32(ci)
	}
	for t := 0; t < n; t++ {
		if classOf[t] >= 0 {
			continue
		}
		buf = m.encodeKey(buf[:0], i, t)
		idx[string(buf)] = loneRow(int32(t))
	}
	m.lhsIdx[i] = idx

	// Consequent-value multisets per class, then the initial state from
	// them: the one and only full scan a class ever pays.
	col := m.rel.Column(d.RHS)
	counts := make([][]valCount, base.NumClasses())
	for ci := range counts {
		pairs := make([]valCount, 0, 4)
		for _, t := range base.Class(ci) {
			pairs = bump(pairs, col[t], 1)
		}
		counts[ci] = pairs
	}
	m.counts[i] = counts

	m.violating[i] = make(map[int]struct{})
	m.fdOnly[i] = make(map[int]struct{})
	var vals []relation.Value
	for ci := 0; ci < base.NumClasses(); ci++ {
		switch m.classState(i, ci, &vals) {
		case classViolating:
			m.violating[i][ci] = struct{}{}
		case classFDOnly:
			m.fdOnly[i][ci] = struct{}{}
		}
	}
}

// loneRow encodes a singleton row id for the LHS-key index (<= -2, so it
// cannot collide with class ids or the -1 "no class" marker).
func loneRow(t int32) int32 { return -(t + 2) }

// encodeKey appends the dict-encoded antecedent value tuple of row t under
// dependency i to buf (4 bytes per attribute; dictionaries make equal
// antecedents byte-equal).
func (m *Monitor) encodeKey(buf []byte, i, t int) []byte {
	for _, c := range m.lhsCols[i] {
		v := m.rel.Value(t, c)
		buf = append(buf, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
	}
	return buf
}

// classState verifies class ci of dependency i from its maintained
// consequent-value multiset — O(distinct values), never a tuple scan.
// scratch holds the distinct-value slice across calls.
func (m *Monitor) classState(i, ci int, scratch *[]relation.Value) uint8 {
	pairs := m.counts[i][ci]
	if len(pairs) <= 1 {
		return classOK // syntactically constant
	}
	vals := (*scratch)[:0]
	for _, p := range pairs {
		vals = append(vals, p.val)
	}
	*scratch = vals
	if m.v.valuesSatisfied(m.sigma[i].RHS, vals) {
		return classFDOnly
	}
	return classViolating
}

// adjustCounts maintains the multisets for one cell write from → to at
// (row, col) across every dependency whose consequent is col.
func (m *Monitor) adjustCounts(row, col int, from, to relation.Value) {
	for i, d := range m.sigma {
		if d.RHS != col {
			continue
		}
		if ci := m.classOf[i][row]; ci >= 0 {
			m.counts[i][ci] = bump(bump(m.counts[i][ci], from, -1), to, 1)
		}
	}
}

// applyState moves class ci of dependency i into the given state's set.
func (m *Monitor) applyState(i, ci int, state uint8) {
	delete(m.violating[i], ci)
	delete(m.fdOnly[i], ci)
	switch state {
	case classViolating:
		m.violating[i][ci] = struct{}{}
	case classFDOnly:
		m.fdOnly[i][ci] = struct{}{}
	}
}

// reverifyClass re-verifies class ci of dependency i and records the
// outcome.
func (m *Monitor) reverifyClass(i, ci int) {
	m.applyState(i, ci, m.classState(i, ci, &m.vals))
	m.reverified++
}

// checkUpdate validates one cell write against the monitor's scope.
func (m *Monitor) checkUpdate(row, col int) error {
	if row < 0 || row >= m.rel.NumRows() || col < 0 || col >= m.rel.NumCols() {
		return fmt.Errorf("core: cell (%d,%d) out of range", row, col)
	}
	if m.lhsAttrs.Has(col) {
		return fmt.Errorf("core: attribute %s is an antecedent; monitored updates must touch consequents only", m.rel.Schema().Name(col))
	}
	return nil
}

// Update writes value into cell (row, col) and incrementally re-verifies
// the equivalence classes containing the row for every OFD whose
// consequent is col. Writing the value the cell already holds is a no-op:
// it reports changed = false and skips re-verification entirely. Updating
// an antecedent attribute is an error.
func (m *Monitor) Update(row, col int, value string) (changed bool, err error) {
	if err := m.checkUpdate(row, col); err != nil {
		return false, err
	}
	id := m.rel.Dict(col).Intern(value)
	old := m.rel.Value(row, col)
	if id == old {
		return false, nil
	}
	m.rel.SetValue(row, col, id)
	m.adjustCounts(row, col, old, id)
	for i, d := range m.sigma {
		if d.RHS != col {
			continue
		}
		if ci := m.classOf[i][row]; ci >= 0 {
			m.reverifyClass(i, int(ci))
		}
	}
	return true, nil
}

// AppendRow appends one tuple (strings in schema order) to the monitored
// relation and joins it to its equivalence class under every OFD via the
// LHS-key index — O(|X|) per dependency, no partition rebuild. A tuple
// whose antecedent key matches a formerly-singleton row births a new
// two-tuple class in the overlay; a fresh key records a new singleton.
// Only the joined classes are re-verified. Returns the new row id.
func (m *Monitor) AppendRow(row []string) (int, error) {
	if len(row) != m.rel.NumCols() {
		return 0, fmt.Errorf("core: append of %d cells into %d attributes", len(row), m.rel.NumCols())
	}
	t := int32(m.rel.NumRows())
	m.rel.AppendRow(row)
	for i := range m.sigma {
		rhs := m.sigma[i].RHS
		col := m.rel.Column(rhs)
		m.keyBuf = m.encodeKey(m.keyBuf[:0], i, int(t))
		idx := m.lhsIdx[i]
		enc, seen := idx[string(m.keyBuf)]
		switch {
		case !seen:
			idx[string(m.keyBuf)] = loneRow(t)
			m.classOf[i] = append(m.classOf[i], -1)
		case enc <= -2: // lone row: birth a two-tuple class
			r := -enc - 2
			ci := m.parts[i].AddClass(r, t)
			idx[string(m.keyBuf)] = int32(ci)
			m.classOf[i][r] = int32(ci)
			m.classOf[i] = append(m.classOf[i], int32(ci))
			pairs := bump(bump(make([]valCount, 0, 2), col[r], 1), col[t], 1)
			m.counts[i] = append(m.counts[i], pairs)
			m.reverifyClass(i, ci)
		default: // existing class
			ci := int(enc)
			m.parts[i].Add(ci, t)
			m.classOf[i] = append(m.classOf[i], int32(ci))
			m.counts[i][ci] = bump(m.counts[i][ci], col[t], 1)
			m.reverifyClass(i, ci)
		}
	}
	return int(t), nil
}

// ApplyBatch applies a batch of cell updates and re-verifies every
// affected equivalence class exactly once. See ApplyBatchContext.
func (m *Monitor) ApplyBatch(updates []CellUpdate) error {
	return m.ApplyBatchContext(context.Background(), updates)
}

// ApplyBatchContext applies the updates in order, dedups the dirty
// (OFD, class) pairs across the whole batch, and re-verifies them in
// parallel over up to m.Workers goroutines with a canonical-order merge —
// the violation state is byte-identical for every worker count. The batch
// is atomic: every update is validated before any cell is written, and a
// cancelled re-verification rolls the cell writes back and leaves the
// violation state exactly as before the call, returning an error
// satisfying errors.Is(err, ctx.Err()). Updates that rewrite a cell's
// current value are skipped and dirty no classes.
func (m *Monitor) ApplyBatchContext(ctx context.Context, updates []CellUpdate) error {
	for _, u := range updates {
		if err := m.checkUpdate(u.Row, u.Col); err != nil {
			return err
		}
	}
	type undo struct {
		row, col int
		old      relation.Value
	}
	undos := make([]undo, 0, len(updates))
	dirty := make(map[int64]struct{}, len(updates))
	for _, u := range updates {
		old := m.rel.Value(u.Row, u.Col)
		id := m.rel.Dict(u.Col).Intern(u.Value)
		if id == old {
			continue
		}
		m.rel.SetValue(u.Row, u.Col, id)
		m.adjustCounts(u.Row, u.Col, old, id)
		undos = append(undos, undo{u.Row, u.Col, old})
		for i, d := range m.sigma {
			if d.RHS != u.Col {
				continue
			}
			if ci := m.classOf[i][u.Row]; ci >= 0 {
				dirty[int64(i)<<32|int64(ci)] = struct{}{}
			}
		}
	}
	if len(dirty) == 0 {
		return nil
	}
	// Roll the batch back on cancellation: cell writes and their multiset
	// adjustments are undone in reverse order, and the violation maps were
	// never touched, so the monitor is exactly in its pre-batch state
	// (interned strings stay in the dictionaries and memoized names tables,
	// which is harmless — both are monotone).
	rollback := func() {
		for k := len(undos) - 1; k >= 0; k-- {
			u := undos[k]
			cur := m.rel.Value(u.row, u.col)
			m.rel.SetValue(u.row, u.col, u.old)
			m.adjustCounts(u.row, u.col, cur, u.old)
		}
	}
	keys := make([]int64, 0, len(dirty))
	for k := range dirty {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(a, b int) bool { return keys[a] < keys[b] })

	w := exec.Workers(m.Workers)
	span := m.Stats.Span("monitor.reverify")
	span.Workers(w)
	span.Items(len(keys))
	defer span.End()

	if err := exec.Interrupted(ctx, "monitor.reverify"); err != nil {
		rollback()
		return err
	}
	states := make([]uint8, len(keys))
	scratches := make([][]relation.Value, w)
	err := exec.For(ctx, len(keys), w, func(worker, k int) {
		i, ci := int(keys[k]>>32), int(int32(keys[k]))
		states[k] = m.classState(i, ci, &scratches[worker])
	})
	if err != nil {
		rollback()
		return err
	}
	for k, key := range keys {
		m.applyState(int(key>>32), int(int32(key)), states[k])
	}
	m.reverified += len(keys)
	return nil
}

// Satisfied reports whether the instance currently satisfies every OFD.
func (m *Monitor) Satisfied() bool {
	for _, v := range m.violating {
		if len(v) > 0 {
			return false
		}
	}
	return true
}

// ViolationCount returns the current number of violating equivalence
// classes across all OFDs.
func (m *Monitor) ViolationCount() int {
	n := 0
	for _, v := range m.violating {
		n += len(v)
	}
	return n
}

// Reverified returns the number of class re-verifications performed since
// construction — the monitor's unit of incremental work (a no-op update
// leaves it unchanged).
func (m *Monitor) Reverified() int { return m.reverified }

// NumRows returns the current number of monitored tuples.
func (m *Monitor) NumRows() int { return m.rel.NumRows() }

// sortedClasses returns the class ids of set in ascending order.
func sortedClasses(set map[int]struct{}) []int {
	out := make([]int, 0, len(set))
	for ci := range set {
		out = append(out, ci)
	}
	sort.Ints(out)
	return out
}

// ViolatingClasses returns, for each OFD index, the violating classes'
// tuple lists in ascending class order.
func (m *Monitor) ViolatingClasses() map[int][][]int {
	out := make(map[int][][]int)
	var scratch []int32
	for i, set := range m.violating {
		for _, ci := range sortedClasses(set) {
			class := m.parts[i].View(ci, &scratch)
			tuples := make([]int, len(class))
			for j, t := range class {
				tuples[j] = int(t)
			}
			out[i] = append(out[i], tuples)
		}
	}
	return out
}

// Report materializes the current violation state as a Detect-shaped
// report: canonically sorted explained violations, distinct flagged
// tuples, and the FD-only false-positive count. For any sequence of
// updates, batches, and appends, the report is byte-identical to running
// Detect from scratch on the final instance — the bench and the
// equivalence property test assert exactly that. Cost is proportional to
// the flagged classes, not the instance.
func (m *Monitor) Report() *Report {
	rep := &Report{}
	flagged := make(map[int]struct{})
	fdOnly := make(map[int]struct{})
	var scratch []int32
	for i, d := range m.sigma {
		for _, ci := range sortedClasses(m.violating[i]) {
			class := m.parts[i].View(ci, &scratch)
			rep.Violations = append(rep.Violations, explain(m.rel, m.v.Ontology(), d, class))
			for _, t := range class {
				flagged[int(t)] = struct{}{}
			}
		}
		for _, ci := range sortedClasses(m.fdOnly[i]) {
			class := m.parts[i].View(ci, &scratch)
			for _, t := range class {
				fdOnly[int(t)] = struct{}{}
			}
		}
	}
	rep.TuplesFlagged = len(flagged)
	rep.FDOnlyFlagged = len(fdOnly)
	sortViolations(rep.Violations)
	return rep
}
