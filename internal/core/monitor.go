package core

import (
	"context"
	"fmt"

	"github.com/fastofd/fastofd/internal/exec"
	"github.com/fastofd/fastofd/internal/ontology"
	"github.com/fastofd/fastofd/internal/relation"
)

// Monitor maintains OFD satisfaction incrementally under consequent-cell
// updates — the "data evolves" scenario of the paper's introduction. It
// indexes, per OFD, which equivalence class each tuple belongs to; an
// update to a consequent cell re-verifies only the affected classes
// instead of the whole instance.
//
// Updates to antecedent attributes would move tuples between equivalence
// classes and are rejected (matching the repair model's scope assumption
// that antecedents and consequents are disjoint).
type Monitor struct {
	rel   *relation.Relation
	v     *Verifier
	sigma Set
	// classOf[i][t] = class index of tuple t within sigma[i]'s stripped
	// partition, or -1 when the tuple is in a singleton class.
	classOf [][]int
	// classes[i] = sigma[i]'s stripped classes, as views into the flat
	// partition arrays (no per-class copies).
	classes [][][]int32
	// violating[i][c] marks class c of sigma[i] as currently violating.
	violating []map[int]struct{}
	lhsAttrs  relation.AttrSet
}

// NewMonitor builds a monitor over the instance and Σ, computing the
// initial violation state.
func NewMonitor(rel *relation.Relation, ont *ontology.Ontology, sigma Set) (*Monitor, error) {
	return NewMonitorContext(context.Background(), rel, ont, sigma)
}

// NewMonitorContext is NewMonitor with cooperative cancellation: the index
// build stops between dependencies. A cancelled build returns a nil
// Monitor — a partially indexed monitor would report wrong violation
// counts — together with an error satisfying errors.Is(err, ctx.Err()).
func NewMonitorContext(ctx context.Context, rel *relation.Relation, ont *ontology.Ontology, sigma Set) (*Monitor, error) {
	var lhs, rhs relation.AttrSet
	for _, d := range sigma {
		lhs = lhs.Union(d.LHS)
		rhs = rhs.With(d.RHS)
	}
	if inter := lhs.Intersect(rhs); !inter.IsEmpty() {
		return nil, fmt.Errorf("core: monitor requires disjoint antecedents and consequents; %s overlaps", inter.Format(rel.Schema()))
	}
	m := &Monitor{
		rel:       rel,
		v:         NewVerifier(rel, ont, nil),
		sigma:     sigma.Clone(),
		classOf:   make([][]int, len(sigma)),
		classes:   make([][][]int32, len(sigma)),
		violating: make([]map[int]struct{}, len(sigma)),
		lhsAttrs:  lhs,
	}
	for i, d := range sigma {
		if err := exec.Interrupted(ctx, "monitor rebuild"); err != nil {
			return nil, err
		}
		p := m.v.Partitions().Get(d.LHS)
		m.classes[i] = p.ClassViews()
		idx := make([]int, rel.NumRows())
		for t := range idx {
			idx[t] = -1
		}
		for ci, class := range m.classes[i] {
			for _, t := range class {
				idx[t] = ci
			}
		}
		m.classOf[i] = idx
		m.violating[i] = make(map[int]struct{})
		for ci, class := range m.classes[i] {
			if !m.v.classSatisfied(class, d.RHS) {
				m.violating[i][ci] = struct{}{}
			}
		}
	}
	return m, nil
}

// Update writes value into cell (row, col) and incrementally re-verifies
// the equivalence classes containing the row for every OFD whose
// consequent is col. Updating an antecedent attribute is an error.
func (m *Monitor) Update(row, col int, value string) error {
	if row < 0 || row >= m.rel.NumRows() || col < 0 || col >= m.rel.NumCols() {
		return fmt.Errorf("core: cell (%d,%d) out of range", row, col)
	}
	if m.lhsAttrs.Has(col) {
		return fmt.Errorf("core: attribute %s is an antecedent; monitored updates must touch consequents only", m.rel.Schema().Name(col))
	}
	m.rel.SetString(row, col, value)
	for i, d := range m.sigma {
		if d.RHS != col {
			continue
		}
		ci := m.classOf[i][row]
		if ci < 0 {
			continue // singleton class; cannot violate
		}
		if m.v.classSatisfied(m.classes[i][ci], d.RHS) {
			delete(m.violating[i], ci)
		} else {
			m.violating[i][ci] = struct{}{}
		}
	}
	return nil
}

// Satisfied reports whether the instance currently satisfies every OFD.
func (m *Monitor) Satisfied() bool {
	for _, v := range m.violating {
		if len(v) > 0 {
			return false
		}
	}
	return true
}

// ViolationCount returns the current number of violating equivalence
// classes across all OFDs.
func (m *Monitor) ViolationCount() int {
	n := 0
	for _, v := range m.violating {
		n += len(v)
	}
	return n
}

// ViolatingClasses returns, for each OFD index, the violating classes'
// tuple lists.
func (m *Monitor) ViolatingClasses() map[int][][]int {
	out := make(map[int][][]int)
	for i, set := range m.violating {
		for ci := range set {
			class := m.classes[i][ci]
			tuples := make([]int, len(class))
			for j, t := range class {
				tuples[j] = int(t)
			}
			out[i] = append(out[i], tuples)
		}
	}
	return out
}
