package core

import (
	"context"
	"fmt"
	"sort"

	"github.com/fastofd/fastofd/internal/exec"
	"github.com/fastofd/fastofd/internal/live"
	"github.com/fastofd/fastofd/internal/ontology"
	"github.com/fastofd/fastofd/internal/relation"
)

// Monitor is the incremental detection engine: it maintains OFD violation
// state under single-cell updates, batched updates, and appended tuples —
// the "data evolves" scenario of the paper's introduction — without ever
// rebuilding partitions or re-verifying untouched classes.
//
// The state is sharded by LHS-key hash: for each OFD, every equivalence
// class (and lone row) is routed to one of NumShards() independent shards,
// each owning its own relation.PartitionOverlay view of the cached base
// partition, LHS-key index, consequent-value multisets, and violation
// maps. ApplyBatch partitions the validated cell writes by (OFD, shard)
// and fans the multiset maintenance and re-verification out over
// exec.For with no shared write state — the three stages are observable
// as monitor.route / monitor.apply / monitor.merge spans. Because a
// tuple's antecedent never changes (antecedent updates are rejected), its
// shard per OFD is fixed for its lifetime and routing is a table lookup.
//
// Violation state is published as epoch-stamped immutable snapshots:
// every mutating operation materializes the affected classes' Violation
// records eagerly and swaps in a fresh snapshot, so Report (and
// ReportAt) read only frozen data and may run concurrently with a
// subsequent Update/AppendRow/ApplyBatch on the owner goroutine. The
// cross-shard merge is canonical — for any shard count and any Workers
// value, Report is byte-identical to running Detect from scratch on the
// current instance.
//
// A Monitor is single-writer: mutating methods must be called from one
// goroutine at a time. Report, ReportAt, Epoch, Satisfied, and
// ViolationCount are safe to call concurrently with the writer.
type Monitor struct {
	rel   *relation.Relation
	v     *Verifier
	sigma Set
	// Workers bounds the parallel fan-out of ApplyBatch's apply/merge
	// stages and the initial index build (0 selects all CPUs, as
	// everywhere on the exec substrate).
	Workers int
	// Stats, when non-nil, receives monitor.build, monitor.route,
	// monitor.apply, and monitor.merge stage spans.
	Stats *exec.Stats

	nShards int
	shards  []*monitorShard
	// lhsCols[i] = sigma[i].LHS.Attrs(), cached for key encoding.
	lhsCols [][]int
	// byRHS[col] lists the dependency indexes whose consequent is col.
	byRHS [][]int32
	// classOf[i][t] = shard-local class id of tuple t within shard
	// rowShard[i][t] under sigma[i], or -1 when the tuple is (still) in a
	// singleton class.
	classOf [][]int32
	// rowShard[i][t] = shard owning tuple t's antecedent key under
	// sigma[i]. Fixed for the tuple's lifetime (antecedents never change).
	rowShard [][]uint8
	lhsAttrs relation.AttrSet

	epoch   uint64
	history historyPtr

	// needHydrate marks a snapshot-restored monitor whose LHS-key index
	// maps are still in frozen array form; the first AppendRow hydrates
	// them (no other operation consults the indexes).
	needHydrate bool

	keyBuf    []byte           // LHS-key encoding scratch (AppendRow)
	vals      []relation.Value // distinct-value scratch for sequential paths
	snapDirty []bool           // per-shard "snapshot stale" scratch
	pending   map[int64]int    // batch cell→write dedup scratch
	writes    []CellWrite      // batch effective-write scratch

	// relaxed, set by NewMonitorLive, skips the global LHS∩RHS
	// disjointness requirement across dependencies (a discovered cover
	// routinely chains A→B, B→C). Per-update validation is unchanged:
	// updates touching any monitored antecedent are still rejected — the
	// merged pipeline routes those through AbsorbBatch, which re-routes
	// the affected dependencies instead.
	relaxed bool
}

// CellWrite is one deduplicated effective cell write of a batch, with the
// pre-batch value retained for rollback. Both incremental engines speak
// it: the monitor's batch protocol produces them, and the maintainer
// exposes its effective batch as []CellWrite so the merged pipeline can
// feed one engine's writes to the other without re-validating.
type CellWrite struct {
	Row, Col int
	Old, New relation.Value
}

// CellUpdate is one cell write of a batched update: set cell (Row, Col) to
// Value.
type CellUpdate struct {
	Row, Col int
	Value    string
}

// class verification outcome; ordered so "worse" states are larger.
const (
	classOK        uint8 = iota // consequent syntactically constant
	classFDOnly                 // an FD would flag it; the ontology clears it
	classViolating              // no common interpretation
)

// maxShards bounds the shard count: rowShard stores shard ids as uint8.
const maxShards = 256

// resolveShards maps a requested shard count to the effective one:
// positive counts are clamped to maxShards, zero selects the smallest
// power of two covering the resolved worker count (capped at 64), and
// negative counts fall back to a single shard.
func resolveShards(shards, workers int) int {
	if shards > 0 {
		if shards > maxShards {
			return maxShards
		}
		return shards
	}
	if shards < 0 {
		return 1
	}
	w := exec.Workers(workers)
	s := 1
	for s < w && s < 64 {
		s <<= 1
	}
	return s
}

// NewMonitor builds a single-shard monitor over the instance and Σ,
// computing the initial violation state.
func NewMonitor(rel *relation.Relation, ont *ontology.Ontology, sigma Set) (*Monitor, error) {
	return NewMonitorContext(context.Background(), rel, ont, sigma)
}

// NewMonitorContext is NewMonitor with cooperative cancellation: the index
// build stops between dependencies. A cancelled build returns a nil
// Monitor — a partially indexed monitor would report wrong violation
// counts — together with an error satisfying errors.Is(err, ctx.Err()).
func NewMonitorContext(ctx context.Context, rel *relation.Relation, ont *ontology.Ontology, sigma Set) (*Monitor, error) {
	return NewMonitorWorkers(ctx, rel, ont, sigma, 1, nil)
}

// NewMonitorWorkers is NewMonitorContext with the index build and
// ApplyBatch fan-out spread over up to workers goroutines (0 = all CPUs)
// and optional per-stage stats. The shard count is derived from the
// worker count (see NewMonitorSharded for explicit control); the
// violation state is identical for every worker and shard count.
func NewMonitorWorkers(ctx context.Context, rel *relation.Relation, ont *ontology.Ontology, sigma Set, workers int, stats *exec.Stats) (*Monitor, error) {
	return NewMonitorSharded(ctx, rel, ont, sigma, 0, workers, stats)
}

// NewMonitorSharded is NewMonitorWorkers with an explicit shard count:
// shards > 0 uses that many LHS-key shards (clamped to 256), shards == 0
// derives the count from the worker count. More shards widen ApplyBatch's
// parallel fan-out; every shard count yields byte-identical reports.
func NewMonitorSharded(ctx context.Context, rel *relation.Relation, ont *ontology.Ontology, sigma Set, shards, workers int, stats *exec.Stats) (*Monitor, error) {
	return newMonitorBuild(ctx, rel, ont, sigma, shards, workers, stats, nil, false)
}

// newMonitorBuild is the shared constructor body. v, when non-nil, is an
// existing partition-cache-backed verifier to share (the merged pipeline
// runs maintainer, monitor, and repair verification off one verifier and
// one cache); nil builds a private cache. relaxed skips the global LHS∩RHS
// disjointness check — only the pipeline sets it, because a discovered
// cover routinely chains dependencies (A→B, B→C), which standalone
// monitoring rejects so single-cell Update stays sound.
func newMonitorBuild(ctx context.Context, rel *relation.Relation, ont *ontology.Ontology, sigma Set, shards, workers int, stats *exec.Stats, v *Verifier, relaxed bool) (*Monitor, error) {
	var lhs, rhs relation.AttrSet
	for _, d := range sigma {
		lhs = lhs.Union(d.LHS)
		rhs = rhs.With(d.RHS)
	}
	if inter := lhs.Intersect(rhs); !inter.IsEmpty() && !relaxed {
		return nil, fmt.Errorf("core: monitor requires disjoint antecedents and consequents; %s overlaps", inter.Format(rel.Schema()))
	}
	w := exec.Workers(workers)
	nShards := resolveShards(shards, workers)
	span := stats.Span("monitor.build")
	span.Workers(w)
	span.Shards(nShards)
	span.Items(len(sigma))
	defer span.End()
	if v == nil {
		pc, err := relation.NewPartitionCacheContext(ctx, rel, w)
		if err != nil {
			return nil, err
		}
		v = NewVerifier(rel, ont, pc)
	}
	m := &Monitor{
		rel:       rel,
		v:         v,
		sigma:     sigma.Clone(),
		relaxed:   relaxed,
		Workers:   workers,
		Stats:     stats,
		nShards:   nShards,
		shards:    make([]*monitorShard, nShards),
		lhsCols:   make([][]int, len(sigma)),
		byRHS:     make([][]int32, rel.NumCols()),
		classOf:   make([][]int32, len(sigma)),
		rowShard:  make([][]uint8, len(sigma)),
		lhsAttrs:  lhs,
		snapDirty: make([]bool, nShards),
	}
	for i, d := range m.sigma {
		m.byRHS[d.RHS] = append(m.byRHS[d.RHS], int32(i))
	}
	for s := range m.shards {
		m.shards[s] = newMonitorShard(len(sigma))
	}
	// Phase 1 — route: each dependency's classes and lone rows are hashed
	// to shards. Iteration i writes only index-i slots of per-shard
	// slices/maps, so the fan-out over dependencies is race-free.
	if err := exec.For(ctx, len(m.sigma), w, func(_, i int) {
		m.routeIndex(i)
	}); err != nil {
		return nil, err
	}
	// Phase 2 — per-shard state: multisets, initial class states, and
	// materialized violation records, fully shard-local.
	if err := exec.For(ctx, nShards, w, func(_, s int) {
		m.shards[s].buildState(m)
	}); err != nil {
		return nil, err
	}
	m.publishInit()
	st := m.v.Partitions().Stats()
	span.Cache(st.Hits, st.Misses)
	return m, nil
}

// checkUpdate validates one cell write against the monitor's scope.
func (m *Monitor) checkUpdate(row, col int) error {
	if row < 0 || row >= m.rel.NumRows() || col < 0 || col >= m.rel.NumCols() {
		return fmt.Errorf("core: cell (%d,%d) out of range", row, col)
	}
	if m.lhsAttrs.Has(col) {
		return fmt.Errorf("core: attribute %s is an antecedent; monitored updates must touch consequents only", m.rel.Schema().Name(col))
	}
	return nil
}

// Update writes value into cell (row, col) and incrementally re-verifies
// the equivalence classes containing the row for every OFD whose
// consequent is col. Writing the value the cell already holds is a no-op:
// it reports changed = false and skips re-verification entirely. Updating
// an antecedent attribute is an error.
func (m *Monitor) Update(row, col int, value string) (changed bool, err error) {
	if err := m.checkUpdate(row, col); err != nil {
		return false, err
	}
	id := m.rel.Dict(col).Intern(value)
	old := m.rel.Value(row, col)
	if id == old {
		return false, nil
	}
	m.rel.SetValue(row, col, id)
	for _, i := range m.byRHS[col] {
		ci := m.classOf[i][row]
		if ci < 0 {
			continue
		}
		s := m.rowShard[i][row]
		sh := m.shards[s]
		sh.idx[i].BumpVal(ci, old, id)
		if sh.reverifyOne(m, int(i), ci) {
			m.snapDirty[s] = true
		}
	}
	m.refreshSnaps()
	m.publish()
	return true, nil
}

// AppendRow appends one tuple (strings in schema order) to the monitored
// relation and joins it to its equivalence class under every OFD via the
// owning shard's LHS-key index — O(|X|) per dependency, no partition
// rebuild. A tuple whose antecedent key matches a formerly-singleton row
// births a new two-tuple class in that shard's overlay; a fresh key
// records a new singleton. Only the joined classes are re-verified.
// Returns the new row id.
func (m *Monitor) AppendRow(row []string) (int, error) {
	if len(row) != m.rel.NumCols() {
		return 0, fmt.Errorf("core: append of %d cells into %d attributes", len(row), m.rel.NumCols())
	}
	if m.needHydrate {
		m.hydrateIndexes()
	}
	t := int32(m.rel.NumRows())
	m.rel.AppendRow(row)
	m.absorbRow(t)
	m.refreshSnaps()
	m.publish()
	return int(t), nil
}

// absorbRow joins already-appended row t to its equivalence class under
// every OFD via the owning shard's live class index, re-verifying only the
// joined classes and marking their shards' snapshots dirty. The caller
// refreshes snapshots and publishes (AppendRow per row; AbsorbAppends once
// per batch).
func (m *Monitor) absorbRow(t int32) {
	for i := range m.sigma {
		m.keyBuf = EncodeLHSKey(m.rel, m.lhsCols[i], int(t), m.keyBuf)
		s := shardOfKey(m.keyBuf, m.nShards)
		sh := m.shards[s]
		m.rowShard[i] = append(m.rowShard[i], s)
		ci, partner, kind := sh.idx[i].JoinKey(m.rel, m.keyBuf, t)
		switch kind {
		case live.JoinLone:
			m.classOf[i] = append(m.classOf[i], -1)
			continue
		case live.JoinBirth:
			m.classOf[i][partner] = ci
		}
		m.classOf[i] = append(m.classOf[i], ci)
		if sh.reverifyOne(m, i, ci) {
			m.snapDirty[s] = true
		}
	}
}

// ApplyBatch applies a batch of cell updates and re-verifies every
// affected equivalence class exactly once. See ApplyBatchContext.
func (m *Monitor) ApplyBatch(updates []CellUpdate) error {
	return m.ApplyBatchContext(context.Background(), updates)
}

// ApplyBatchContext applies the updates in three stages. Route
// (sequential) validates every update before any write, dedups same-cell
// writes to their last value, applies the effective writes, and assigns
// each dirtied (OFD, class) pair to its owning shard. Apply (parallel
// over shards, up to m.Workers goroutines) replays the multiset deltas
// and re-verifies each shard's dirty classes with no shared write state,
// staging materialized violation records. Merge commits the staged state,
// rebuilds the changed shards' snapshots, and publishes a new epoch. The
// result is byte-identical for every worker and shard count.
//
// The batch is atomic: a cancelled apply stage rolls the cell writes and
// multiset deltas back and leaves the violation state — and the published
// snapshot — exactly as before the call, returning an error satisfying
// errors.Is(err, ctx.Err()). Updates that rewrite a cell's current value
// are skipped and dirty no classes.
func (m *Monitor) ApplyBatchContext(ctx context.Context, updates []CellUpdate) error {
	for _, u := range updates {
		if err := m.checkUpdate(u.Row, u.Col); err != nil {
			return err
		}
	}
	routeSpan := m.Stats.Span("monitor.route")
	routeSpan.Items(len(updates))
	// Last-write-wins cell dedup: one effective write per cell, keyed by
	// (row, col), keeping the pre-batch value for rollback.
	if m.pending == nil {
		m.pending = make(map[int64]int, len(updates))
	}
	clear(m.pending)
	m.writes = m.writes[:0]
	for _, u := range updates {
		id := m.rel.Dict(u.Col).Intern(u.Value)
		key := int64(u.Row)<<32 | int64(u.Col)
		if k, ok := m.pending[key]; ok {
			m.writes[k].New = id
			continue
		}
		m.pending[key] = len(m.writes)
		m.writes = append(m.writes, CellWrite{u.Row, u.Col, m.rel.Value(u.Row, u.Col), id})
	}
	// Apply the effective writes and route their multiset deltas and dirty
	// classes to the owning shards.
	eff := 0
	for _, wr := range m.writes {
		if wr.New == wr.Old {
			continue
		}
		m.writes[eff] = wr
		eff++
		m.rel.SetValue(wr.Row, wr.Col, wr.New)
		for _, i := range m.byRHS[wr.Col] {
			ci := m.classOf[i][wr.Row]
			if ci < 0 {
				continue
			}
			sh := m.shards[m.rowShard[i][wr.Row]]
			sh.bumps = append(sh.bumps, shardBump{ofd: i, class: ci, from: wr.Old, to: wr.New})
			sh.dirty = append(sh.dirty, int64(i)<<32|int64(uint32(ci)))
		}
	}
	m.writes = m.writes[:eff]
	var active []int
	for s, sh := range m.shards {
		if len(sh.bumps) > 0 || len(sh.dirty) > 0 {
			active = append(active, s)
		}
	}
	routeSpan.End()
	if eff == 0 {
		return nil
	}
	rollback := func() {
		// Multiset deltas were staged per shard, not yet applied (or have
		// been reversed shard-locally); only the cell writes need undoing.
		// Interned strings stay in the dictionaries and memoized names
		// tables, which is harmless — both are monotone.
		for k := len(m.writes) - 1; k >= 0; k-- {
			wr := m.writes[k]
			m.rel.SetValue(wr.Row, wr.Col, wr.Old)
		}
		for _, s := range active {
			m.shards[s].clearBatch()
		}
	}
	// The one cancellation point between the cell writes and the shard
	// fan-out: a context cancelled here (or before the call) rolls back
	// with no multiset applied anywhere.
	if err := exec.Interrupted(ctx, "monitor.apply"); err != nil {
		rollback()
		return err
	}
	if len(active) == 0 {
		// Writes landed only on singleton classes: nothing to re-verify,
		// but the instance changed, so publish a fresh epoch.
		m.publish()
		return nil
	}

	w := exec.Workers(m.Workers)
	applySpan := m.Stats.Span("monitor.apply")
	applySpan.Workers(w)
	applySpan.Shards(len(active))
	applied := make([]bool, len(active))
	err := exec.For(ctx, len(active), w, func(_, k int) {
		sh := m.shards[active[k]]
		sh.applyBatch(m)
		applySpan.Items(len(sh.dirty))
		applied[k] = true
	})
	applySpan.End()
	if err != nil {
		// Shards whose task ran to completion reverse their multiset
		// deltas (exec.For finishes started items, and its WaitGroup
		// ordering makes applied[k] safe to read here); the rest never
		// applied anything.
		for k, s := range active {
			if applied[k] {
				m.shards[s].rollbackBatch()
			} else {
				m.shards[s].clearBatch()
			}
		}
		rollback()
		return err
	}

	// Commit is not cancellable: every staged state lands, per shard in
	// parallel, then one snapshot publish makes the epoch visible.
	mergeSpan := m.Stats.Span("monitor.merge")
	mergeSpan.Workers(w)
	mergeSpan.Shards(len(active))
	_ = exec.For(context.Background(), len(active), w, func(_, k int) {
		sh := m.shards[active[k]]
		mergeSpan.Items(len(sh.dirty))
		sh.commitBatch()
	})
	m.publish()
	mergeSpan.End()
	return nil
}

// Satisfied reports whether the instance currently satisfies every OFD.
// Safe to call concurrently with a writer (reads the latest snapshot).
func (m *Monitor) Satisfied() bool {
	return m.latest().violations() == 0
}

// ViolationCount returns the current number of violating equivalence
// classes across all OFDs. Safe to call concurrently with a writer.
func (m *Monitor) ViolationCount() int {
	return m.latest().violations()
}

// Reverified returns the number of class re-verifications performed since
// construction — the monitor's unit of incremental work (a no-op update
// leaves it unchanged). Not synchronized with a concurrent writer.
func (m *Monitor) Reverified() int {
	n := 0
	for _, sh := range m.shards {
		n += sh.reverified
	}
	return n
}

// NumRows returns the current number of monitored tuples.
func (m *Monitor) NumRows() int { return m.rel.NumRows() }

// NumShards returns the effective LHS-key shard count.
func (m *Monitor) NumShards() int { return m.nShards }

// CacheStats returns the partition cache counters behind the monitor's
// base partitions (hits/misses/entries/bytes), for benchmark reports.
func (m *Monitor) CacheStats() relation.CacheStats {
	return m.v.Partitions().Stats()
}

// ViolatingClasses returns, for each OFD index, the violating classes'
// tuple lists ordered by first tuple id — a canonical order independent
// of the shard count. Not safe to call concurrently with a writer.
func (m *Monitor) ViolatingClasses() map[int][][]int {
	out := make(map[int][][]int)
	for _, sh := range m.shards {
		for i := range sh.viol {
			for ci := range sh.viol[i] {
				class := sh.idx[i].Part.StableView(int(ci))
				tuples := make([]int, len(class))
				for j, t := range class {
					tuples[j] = int(t)
				}
				out[i] = append(out[i], tuples)
			}
		}
	}
	for i := range out {
		sort.Slice(out[i], func(a, b int) bool { return out[i][a][0] < out[i][b][0] })
	}
	return out
}
