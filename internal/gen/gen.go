// Package gen generates the synthetic workloads used to reproduce the
// paper's evaluation: clinical-trials-like and Kiva-loans-like relations
// paired with multi-sense ontologies, with planted OFDs that hold by
// construction, plus controlled error injection (err%) and ontology
// incompleteness injection (inc%) with full ground-truth bookkeeping.
//
// Construction guarantees: a latent group id G assigns each row to an
// entity (G mod entityCount) and each entity to a ground-truth sense.
// Antecedent attributes are refinements of the entity grouping (their
// partitions subdivide entity groups), so every planted OFD X →_syn A
// holds: each equivalence class draws its consequent values from the
// synonyms of a single (entity, sense) ontology class.
package gen

import (
	"fmt"
	"math/rand"
	"sort"

	"github.com/fastofd/fastofd/internal/core"
	"github.com/fastofd/fastofd/internal/ontology"
	"github.com/fastofd/fastofd/internal/relation"
)

// Config controls dataset generation. Zero values select defaults.
type Config struct {
	Rows     int   // number of tuples (default 1000)
	Seed     int64 // RNG seed (default 1)
	Senses   int   // number of sense labels |λ| (default 4)
	Entities int   // distinct entities per semantic attribute (default 20)
	// SynonymsPerSense is the number of sense-specific variant values each
	// (entity, sense) class carries in addition to the shared canonical
	// value (default 3).
	SynonymsPerSense int
	// NumOFDs is the number of planted OFDs |Σ| (default 4). OFDs are
	// spread across the semantic consequent attributes; several OFDs share
	// a consequent, creating the interactions OFDClean refines over.
	NumOFDs int
	// ErrRate is the fraction of consequent cells corrupted (default 0).
	ErrRate float64
	// IncRate is the fraction of used ontology variant values omitted from
	// the built ontology (default 0), simulating ontology staleness.
	IncRate float64
	// SharedSynonymRate is the probability, per ordered (sense, other
	// sense) pair of an entity, that the sense's whole variant bundle is
	// also listed under the other sense (the "jaguar" effect: one value,
	// several interpretations). With more senses a class accumulates more
	// plausible interpretations, which is what makes sense selection
	// harder as |λ| grows (paper Exp-6). Default 0.05; set negative to
	// disable sharing entirely.
	SharedSynonymRate float64
	// Preset selects the schema flavour: "clinical" (default) or "kiva".
	Preset string
}

func (c Config) withDefaults() Config {
	if c.Rows == 0 {
		c.Rows = 1000
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Senses == 0 {
		c.Senses = 4
	}
	if c.Entities == 0 {
		c.Entities = 20
	}
	if c.SynonymsPerSense == 0 {
		c.SynonymsPerSense = 3
	}
	if c.NumOFDs == 0 {
		c.NumOFDs = 4
	}
	if c.Preset == "" {
		c.Preset = "clinical"
	}
	if c.SharedSynonymRate == 0 {
		c.SharedSynonymRate = 0.05
	}
	if c.SharedSynonymRate < 0 {
		c.SharedSynonymRate = 0
	}
	return c
}

// CellError records one injected error.
type CellError struct {
	Row, Col int
	Original string // ground-truth value before corruption
	Injected string
}

// Removal records one value omitted from the ontology (ground truth for
// ontology repair): the value and the class it should belong to.
type Removal struct {
	Class ontology.ClassID
	Value string
}

// Dataset is a generated workload with ground truth.
type Dataset struct {
	Rel      *relation.Relation // possibly dirty instance I
	CleanRel *relation.Relation // pre-error instance (ground truth)
	Ont      *ontology.Ontology // possibly incomplete ontology S
	FullOnt  *ontology.Ontology // complete ontology (ground truth)
	Sigma    core.Set           // planted synonym OFDs, satisfied by CleanRel w.r.t. FullOnt
	// InhSigma are planted INHERITANCE OFDs over the coarse family column:
	// they hold at InhTheta w.r.t. FullOnt while their synonym versions
	// fail (several entities share each family).
	InhSigma core.Set
	// InhTheta is the is-a path bound under which InhSigma holds.
	InhTheta int
	Errors   []CellError // injected data errors
	Removals []Removal   // injected ontology omissions
	cfg      Config
	// groupOf[row] = latent group id G.
	groupOf []int
	// truthClass[col][entity*Senses+senseIdx] = ontology class for values
	// of column col, entity, sense.
	truthClass map[int][]ontology.ClassID
	// truthSenseIdx[col][entity] = ground-truth sense index used to
	// generate that entity's values in column col.
	truthSenseIdx map[int][]int
	// sampleValues[col][entity*Senses+senseIdx] = the values data cells
	// draw from (canonical + the sense's original variants, excluding
	// cross-sense shares).
	sampleValues map[int][][]string
}

// Generate builds a dataset according to cfg.
func Generate(cfg Config) *Dataset {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	p := presetFor(cfg.Preset)

	ds := &Dataset{
		cfg:          cfg,
		truthClass:   make(map[int][]ontology.ClassID),
		sampleValues: make(map[int][][]string),
	}

	schema := relation.MustSchema(p.attrs...)

	// --- Ontology (full): per semantic attribute, Entities × Senses
	// classes. The canonical value of an entity is shared by all of its
	// sense classes (so it is sense-ambiguous); each class additionally
	// holds SynonymsPerSense sense-specific variants.
	full := ontology.New()
	famCount := familyCount(cfg)
	for _, col := range p.semanticCols {
		name := p.attrs[col]
		// Is-a family roots: entities e with equal e mod famCount share a
		// family parent, giving inheritance OFDs (θ=1) a common ancestor
		// that synonym OFDs lack.
		famNodes := make([]ontology.ClassID, famCount)
		for f := range famNodes {
			famNodes[f] = full.MustAddClass(fmt.Sprintf("%s_family%d", name, f), "FAMILY", ontology.NoClass)
		}
		classes := make([]ontology.ClassID, 0, cfg.Entities*cfg.Senses)
		samples := make([][]string, cfg.Entities*cfg.Senses)
		for e := 0; e < cfg.Entities; e++ {
			canonical := fmt.Sprintf("%s_e%d", name, e)
			// Original variant bundle per sense; data cells sample only
			// from these (plus the canonical value).
			orig := make([][]string, cfg.Senses)
			for s := 0; s < cfg.Senses; s++ {
				for v := 0; v < cfg.SynonymsPerSense; v++ {
					orig[s] = append(orig[s], fmt.Sprintf("%s_e%d_s%d_v%d", name, e, s, v))
				}
				samples[e*cfg.Senses+s] = append([]string{canonical}, orig[s]...)
			}
			// Cross-sense bundle sharing: with probability
			// SharedSynonymRate per ordered pair, a sense's whole bundle
			// also appears under another sense, making that other sense a
			// fully-covering (wrong) interpretation of the data.
			shared := make([][]string, cfg.Senses)
			for s := range shared {
				shared[s] = append(shared[s], orig[s]...)
			}
			if cfg.Senses > 1 {
				for s := 0; s < cfg.Senses; s++ {
					for s2 := 0; s2 < cfg.Senses; s2++ {
						if s2 != s && rng.Float64() < cfg.SharedSynonymRate {
							shared[s2] = append(shared[s2], orig[s]...)
						}
					}
				}
			}
			for s := 0; s < cfg.Senses; s++ {
				id := full.MustAddClass(canonical, fmt.Sprintf("sense%d", s), famNodes[e%famCount], shared[s]...)
				classes = append(classes, id)
			}
		}
		ds.truthClass[col] = classes
		ds.sampleValues[col] = samples
	}

	// Ground-truth sense per (semantic attribute, entity).
	truthSense := make(map[int][]int) // col -> entity -> sense index
	for _, col := range p.semanticCols {
		senses := make([]int, cfg.Entities)
		for e := range senses {
			senses[e] = rng.Intn(cfg.Senses)
		}
		truthSense[col] = senses
	}
	ds.truthSenseIdx = truthSense

	// --- Planted OFDs: round-robin over semantic consequents with
	// antecedent sets of growing size over the category attributes.
	sigma := plantOFDs(schema, p, cfg.NumOFDs)
	if p.familyCol >= 0 && famCount > 1 {
		ds.InhTheta = 1
		for _, col := range p.semanticCols {
			ds.InhSigma = append(ds.InhSigma, core.OFD{LHS: relation.Single(p.familyCol), RHS: col})
		}
	}

	// --- Rows. Latent group G drives category attributes (refinements of
	// the entity grouping) and entity/sense selection for consequents.
	groups := cfg.Entities * 4 // each entity spans ~4 latent groups
	rel := relation.New(schema)
	ds.groupOf = make([]int, cfg.Rows)
	row := make([]string, schema.Len())
	for i := 0; i < cfg.Rows; i++ {
		g := rng.Intn(groups)
		ds.groupOf[i] = g
		for c := range row {
			row[c] = p.cell(rng, cfg, c, i, g, truthSense, ds.sampleValues)
		}
		rel.AppendRow(row)
	}
	ds.CleanRel = rel.Clone()
	ds.Rel = rel
	ds.Sigma = sigma
	ds.FullOnt = full

	// --- Error injection into consequent cells.
	if cfg.ErrRate > 0 {
		injectErrors(ds, rng, p)
	}

	// --- Ontology incompleteness: omit a fraction of the variant values
	// that actually occur in the data.
	ds.Ont = full
	if cfg.IncRate > 0 {
		ds.Ont = removeValues(ds, rng)
	}
	return ds
}

// TruthSenseOf returns the ontology class for the values of column col,
// latent entity e, and sense index.
func (ds *Dataset) TruthSenseOf(col, entity, senseIdx int) ontology.ClassID {
	return ds.truthClass[col][entity*ds.cfg.Senses+senseIdx]
}

// TruthClass returns the ground-truth generating class for (col, entity):
// the class whose synonyms populated that entity's cells in col.
func (ds *Dataset) TruthClass(col, entity int) (ontology.ClassID, bool) {
	senses, ok := ds.truthSenseIdx[col]
	if !ok || entity < 0 || entity >= len(senses) {
		return ontology.NoClass, false
	}
	return ds.truthClass[col][entity*ds.cfg.Senses+senses[entity]], true
}

// SemanticCols returns the ontology-backed consequent columns.
func (ds *Dataset) SemanticCols() []int {
	return ds.semanticColumns()
}

// EntityOfRow returns the latent entity id of a row for semantic columns.
func (ds *Dataset) EntityOfRow(row int) int {
	return ds.groupOf[row] % ds.cfg.Entities
}

// Config returns the (defaulted) generation config.
func (ds *Dataset) Config() Config { return ds.cfg }

// preset describes a schema flavour.
type preset struct {
	name  string
	attrs []string
	// semanticCols are consequent attributes with ontology-backed values.
	semanticCols []int
	// categoryCols are antecedent attributes (refinements of the entity
	// grouping); refinement factor per column diversifies partitions.
	categoryCols []int
	keyCols      []int // unique / near-unique identifier columns
	derivedCols  map[int]int
	noiseCols    []int
	// familyCol, when ≥ 0, is a COARSE antecedent grouping several
	// entities of the same is-a family: inheritance OFDs
	// familyCol →_inh A hold (θ=1) while the synonym versions fail.
	familyCol int
	cell      func(rng *rand.Rand, cfg Config, col, rowIdx, g int, truthSense map[int][]int, samples map[int][][]string) string
}

// familyCount is the number of is-a families entities are grouped into. It
// is always a divisor of Entities so that the coarse family column (a
// function of the latent group id) determines the family exactly.
func familyCount(cfg Config) int {
	for d := cfg.Entities / 4; d > 1; d-- {
		if cfg.Entities%d == 0 {
			return d
		}
	}
	return 1
}

func presetFor(name string) preset {
	var p preset
	switch name {
	case "kiva":
		p.name = "kiva"
		p.attrs = []string{
			"LOAN_ID", "PARTNER_ID", "CC", "SECTOR", "ACTIVITY", "REGION",
			"CTRY", "CURRENCY", "USE_CAT", "AMOUNT_BIN", "TERM_BIN",
			"REPAY_INTERVAL", "GENDER", "LOAN_THEME", "FUNDED_BIN",
		}
		p.keyCols = []int{0, 1}
		p.categoryCols = []int{2, 3, 4, 5, 12}
		p.semanticCols = []int{6, 7, 8}
		p.derivedCols = map[int]int{9: 3, 10: 4, 11: 3} // FD sources
		p.noiseCols = []int{14}
		p.familyCol = 13
	case "census":
		// The conference version's second dataset: US census-style
		// population properties, 11 attributes, with occupation title,
		// salary band, and native country as the ontology-backed columns
		// (the paper's qualitative OFD: OCCUP →syn SAL).
		p.name = "census"
		p.attrs = []string{
			"PERSON_ID", "HH_ID", "AGE_BIN", "EDU", "WORKCLASS", "MARITAL",
			"OCCUP", "SAL", "NATIVE_CTRY", "RELATIONSHIP", "SECTOR_GROUP",
		}
		p.keyCols = []int{0, 1}
		p.categoryCols = []int{2, 3, 4, 5}
		p.semanticCols = []int{6, 7, 8}
		p.derivedCols = map[int]int{9: 3}
		p.noiseCols = nil
		p.familyCol = 10
	default:
		p.name = "clinical"
		p.attrs = []string{
			"NCTID", "ORG_STUDY_ID", "CC", "SYMP", "TEST", "PHASE",
			"CTRY", "MED", "DIAG", "STUDY_TYPE", "MEASURE", "MIN_AGE",
			"SEX", "DRUG_CLASS", "ENROLL_BIN",
		}
		p.keyCols = []int{0, 1}
		p.categoryCols = []int{2, 3, 4, 5, 12}
		p.semanticCols = []int{6, 7, 8}
		p.derivedCols = map[int]int{9: 3, 10: 4, 11: 3}
		p.noiseCols = []int{14}
		p.familyCol = 13
	}
	p.cell = func(rng *rand.Rand, cfg Config, col, rowIdx, g int, truthSense map[int][]int, samples map[int][][]string) string {
		switch {
		case contains(p.keyCols, col):
			if col == p.keyCols[0] {
				return fmt.Sprintf("%s%07d", p.attrs[col][:2], rowIdx)
			}
			// Near-unique secondary id: unique for most rows, grouped for a
			// few, so it is a key only sometimes.
			return fmt.Sprintf("%s%07d", p.attrs[col][:2], rowIdx/2*2)
		case contains(p.categoryCols, col):
			// Refinement of the entity grouping: value determined by the
			// latent group id at column-specific granularity. Granularity
			// is a multiple of Entities so each partition class maps to a
			// single entity.
			idx := indexOf(p.categoryCols, col)
			granularity := cfg.Entities * (idx + 1)
			return fmt.Sprintf("%s_c%d", p.attrs[col], g%granularity)
		case contains(p.semanticCols, col):
			e := g % cfg.Entities
			s := truthSense[col][e]
			vals := samples[col][e*cfg.Senses+s]
			// Canonical value (index 0) dominates, as in real data where
			// one spelling is most common; original sense-specific
			// variants share the rest.
			if rng.Float64() < 0.5 {
				return vals[0]
			}
			return vals[1+rng.Intn(len(vals)-1)]
		case col == p.familyCol:
			// Coarse family grouping: several entities share a value, so
			// synonym OFDs over this antecedent fail while inheritance
			// OFDs hold through the family's is-a parent.
			return fmt.Sprintf("%s_f%d", p.attrs[col], g%familyCount(cfg))
		default:
			if src, ok := p.derivedCols[col]; ok {
				// Functionally determined by a category column (plants
				// traditional FDs for Opt-4 and baseline comparisons).
				idx := indexOf(p.categoryCols, src)
				granularity := cfg.Entities * (idx + 1)
				return fmt.Sprintf("%s_d%d", p.attrs[col], (g%granularity)%7)
			}
			return fmt.Sprintf("%s_n%d", p.attrs[col], rng.Intn(50))
		}
	}
	return p
}

// plantOFDs builds |Σ| dependencies over category antecedents and semantic
// consequents. Consequents repeat so OFDs interact; antecedents grow from
// single attributes to pairs and triples as more OFDs are requested.
func plantOFDs(schema *relation.Schema, p preset, n int) core.Set {
	var sigma core.Set
	cats := p.categoryCols
	var lhsChoices []relation.AttrSet
	for _, c := range cats {
		lhsChoices = append(lhsChoices, relation.Single(c))
	}
	for i := 0; i < len(cats); i++ {
		for j := i + 1; j < len(cats); j++ {
			lhsChoices = append(lhsChoices, relation.Single(cats[i]).With(cats[j]))
		}
	}
	for i := 0; i < len(cats); i++ {
		for j := i + 1; j < len(cats); j++ {
			for k := j + 1; k < len(cats); k++ {
				lhsChoices = append(lhsChoices, relation.Single(cats[i]).With(cats[j]).With(cats[k]))
			}
		}
	}
	for i := 0; len(sigma) < n; i++ {
		// Rotate consequents fastest so interactions appear early.
		d := core.OFD{
			LHS: lhsChoices[(i/len(p.semanticCols))%len(lhsChoices)],
			RHS: p.semanticCols[i%len(p.semanticCols)],
		}
		if !sigma.Contains(d) {
			sigma = append(sigma, d)
		}
		if i > 3*n+3*len(lhsChoices) {
			break // schema exhausted; fewer OFDs than requested
		}
	}
	return sigma
}

// injectErrors corrupts ErrRate of the consequent cells with three error
// kinds: fresh out-of-ontology values (typos), values of a different entity
// (semantic errors), and clustered same-entity wrong-sense bursts
// (interpretation errors). The bursts corrupt several cells of one latent
// group with variants of a single wrong sense — the systematic mislabeling
// that makes sense selection harder as the error rate grows (paper Exp-7).
func injectErrors(ds *Dataset, rng *rand.Rand, p preset) {
	cfg := ds.cfg
	rows := ds.Rel.NumRows()
	// rowsOfGroup enables burst injection.
	rowsOfGroup := make(map[int][]int)
	for r, g := range ds.groupOf {
		rowsOfGroup[g] = append(rowsOfGroup[g], r)
	}
	groups := make([]int, 0, len(rowsOfGroup))
	for g := range rowsOfGroup {
		groups = append(groups, g)
	}
	sort.Ints(groups)

	for _, col := range p.semanticCols {
		target := int(float64(rows) * cfg.ErrRate)
		corrupted := make(map[int]struct{}, target)
		corrupt := func(r int, injected string) {
			if _, dup := corrupted[r]; dup || injected == "" {
				return
			}
			orig := ds.Rel.String(r, col)
			if injected == orig {
				return
			}
			corrupted[r] = struct{}{}
			ds.Rel.SetString(r, col, injected)
			ds.Errors = append(ds.Errors, CellError{Row: r, Col: col, Original: orig, Injected: injected})
		}
		for guard := 0; len(corrupted) < target && guard < 50*target+100; guard++ {
			switch rng.Intn(3) {
			case 0:
				// Fresh out-of-ontology value (typo-like).
				r := rng.Intn(rows)
				corrupt(r, fmt.Sprintf("%s_err%d", p.attrs[col], rng.Intn(1<<30)))
			case 1:
				// Value of a different entity (semantic error).
				r := rng.Intn(rows)
				e := ds.EntityOfRow(r)
				other := (e + 1 + rng.Intn(cfg.Entities-1)) % cfg.Entities
				s := rng.Intn(cfg.Senses)
				vals := ds.sampleValues[col][other*cfg.Senses+s]
				corrupt(r, vals[rng.Intn(len(vals))])
			default:
				// Clustered interpretation errors: corrupt up to 40% of one
				// latent group's rows with variants of one wrong sense.
				if cfg.Senses <= 1 {
					r := rng.Intn(rows)
					corrupt(r, fmt.Sprintf("%s_err%d", p.attrs[col], rng.Intn(1<<30)))
					continue
				}
				g := groups[rng.Intn(len(groups))]
				members := rowsOfGroup[g]
				if len(members) == 0 {
					continue
				}
				e := g % cfg.Entities
				s := (ds.truthSenseIdx[col][e] + 1 + rng.Intn(cfg.Senses-1)) % cfg.Senses
				vals := ds.sampleValues[col][e*cfg.Senses+s]
				burst := 1 + rng.Intn(len(members)*2/5+1)
				for i := 0; i < burst && len(corrupted) < target; i++ {
					r := members[rng.Intn(len(members))]
					// Variants only: the canonical value is shared with
					// the truth sense and would not be an error.
					corrupt(r, vals[1+rng.Intn(len(vals)-1)])
				}
			}
		}
	}
}

// removeValues rebuilds the ontology omitting IncRate of the distinct
// variant values that occur in the (clean) data. An omitted value is
// removed from EVERY class listing it, so it is genuinely absent from S
// (the "new drug not yet certified" scenario); every removed (class, value)
// pair is recorded as ground truth for ontology repair.
func removeValues(ds *Dataset, rng *rand.Rand) *ontology.Ontology {
	full := ds.FullOnt
	// Distinct non-canonical values that occur in the data.
	canonical := make(map[string]struct{})
	for _, id := range full.AllClasses() {
		canonical[full.Name(id)] = struct{}{}
	}
	seen := make(map[string]struct{})
	var used []string
	for _, col := range ds.semanticColumns() {
		for r := 0; r < ds.CleanRel.NumRows(); r++ {
			v := ds.CleanRel.String(r, col)
			if _, isCanon := canonical[v]; isCanon {
				continue
			}
			if _, dup := seen[v]; dup {
				continue
			}
			seen[v] = struct{}{}
			used = append(used, v)
		}
	}
	sort.Strings(used)
	rng.Shuffle(len(used), func(i, j int) { used[i], used[j] = used[j], used[i] })
	k := int(float64(len(used)) * ds.cfg.IncRate)
	omit := make(map[string]struct{}, k)
	for _, v := range used[:k] {
		omit[v] = struct{}{}
		for _, cls := range full.Names(v) {
			ds.Removals = append(ds.Removals, Removal{Class: cls, Value: v})
		}
	}
	// Rebuild without the omitted values.
	out := ontology.New()
	for _, id := range full.AllClasses() {
		var keep []string
		for _, v := range full.Synonyms(id) {
			if _, drop := omit[v]; !drop {
				keep = append(keep, v)
			}
		}
		out.MustAddClass(full.Name(id), full.Sense(id), full.Parent(id), keep...)
	}
	return out
}

func (ds *Dataset) semanticColumns() []int {
	cols := make([]int, 0, len(ds.truthClass))
	for c := range ds.truthClass {
		cols = append(cols, c)
	}
	sort.Ints(cols)
	return cols
}

func contains(xs []int, v int) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}

func indexOf(xs []int, v int) int {
	for i, x := range xs {
		if x == v {
			return i
		}
	}
	return -1
}

// Clinical generates the clinical-trials-flavoured dataset (LinkedCT
// substitute) with n rows and the given seed; other knobs at defaults.
func Clinical(n int, seed int64) *Dataset {
	return Generate(Config{Rows: n, Seed: seed, Preset: "clinical"})
}

// Kiva generates the Kiva-loans-flavoured dataset with n rows.
func Kiva(n int, seed int64) *Dataset {
	return Generate(Config{Rows: n, Seed: seed, Preset: "kiva"})
}
