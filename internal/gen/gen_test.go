package gen

import (
	"testing"

	"github.com/fastofd/fastofd/internal/core"
)

func TestCleanDataSatisfiesPlantedOFDs(t *testing.T) {
	for _, preset := range []string{"clinical", "kiva"} {
		for _, numOFDs := range []int{4, 10, 30, 50} {
			ds := Generate(Config{Rows: 500, Seed: 42, Preset: preset, NumOFDs: numOFDs})
			if len(ds.Sigma) != numOFDs {
				t.Fatalf("%s: planted %d OFDs, want %d", preset, len(ds.Sigma), numOFDs)
			}
			v := core.NewVerifier(ds.CleanRel, ds.FullOnt, nil)
			for _, d := range ds.Sigma {
				if !v.HoldsSyn(d) {
					t.Errorf("%s |Σ|=%d: planted OFD %s violated on clean data",
						preset, numOFDs, d.Format(ds.CleanRel.Schema()))
				}
			}
		}
	}
}

func TestErrorInjectionCreatesViolationsAndGroundTruth(t *testing.T) {
	ds := Generate(Config{Rows: 400, Seed: 7, ErrRate: 0.1})
	if len(ds.Errors) == 0 {
		t.Fatal("no errors injected at err rate 0.1")
	}
	// Ground truth restores cleanliness.
	for _, e := range ds.Errors {
		if ds.Rel.String(e.Row, e.Col) != e.Injected {
			t.Fatalf("error record mismatch at (%d,%d)", e.Row, e.Col)
		}
		if ds.CleanRel.String(e.Row, e.Col) != e.Original {
			t.Fatalf("clean relation does not hold original at (%d,%d)", e.Row, e.Col)
		}
	}
	// The dirty instance must violate at least one OFD.
	v := core.NewVerifier(ds.Rel, ds.FullOnt, nil)
	if v.SatisfiesAll(ds.Sigma) {
		t.Error("dirty instance unexpectedly satisfies all OFDs")
	}
}

func TestIncompletenessRemovalsAreTracked(t *testing.T) {
	ds := Generate(Config{Rows: 400, Seed: 9, IncRate: 0.1})
	if len(ds.Removals) == 0 {
		t.Fatal("no removals at inc rate 0.1")
	}
	for _, r := range ds.Removals {
		if ds.Ont.HasSynonym(r.Class, r.Value) {
			t.Fatalf("removed value %q still in class %d", r.Value, r.Class)
		}
		if !ds.FullOnt.HasSynonym(r.Class, r.Value) {
			t.Fatalf("ground-truth ontology missing removed value %q", r.Value)
		}
	}
	// The incomplete ontology must break at least one OFD on clean data.
	v := core.NewVerifier(ds.CleanRel, ds.Ont, nil)
	if v.SatisfiesAll(ds.Sigma) {
		t.Error("clean data satisfies all OFDs despite incomplete ontology")
	}
}

func TestDeterminism(t *testing.T) {
	a := Generate(Config{Rows: 100, Seed: 5, ErrRate: 0.05, IncRate: 0.05})
	b := Generate(Config{Rows: 100, Seed: 5, ErrRate: 0.05, IncRate: 0.05})
	if a.Rel.NumRows() != b.Rel.NumRows() {
		t.Fatal("row count differs")
	}
	for i := 0; i < a.Rel.NumRows(); i++ {
		for c := 0; c < a.Rel.NumCols(); c++ {
			if a.Rel.String(i, c) != b.Rel.String(i, c) {
				t.Fatalf("cell (%d,%d) differs across runs", i, c)
			}
		}
	}
	if len(a.Errors) != len(b.Errors) || len(a.Removals) != len(b.Removals) {
		t.Fatal("ground truth differs across runs")
	}
}

func TestPresetsDiffer(t *testing.T) {
	c := Clinical(50, 3)
	k := Kiva(50, 3)
	if c.Rel.Schema().Name(0) == k.Rel.Schema().Name(0) {
		t.Error("presets should have different schemas")
	}
	if c.Rel.Schema().Len() != 15 || k.Rel.Schema().Len() != 15 {
		t.Error("both presets should have 15 attributes like the paper's datasets")
	}
}

func TestInheritanceSigmaHolds(t *testing.T) {
	for _, preset := range []string{"clinical", "kiva", "census"} {
		ds := Generate(Config{Rows: 500, Seed: 51, Preset: preset})
		if len(ds.InhSigma) == 0 {
			t.Fatalf("%s: no inheritance OFDs planted", preset)
		}
		v := core.NewVerifier(ds.CleanRel, ds.FullOnt, nil)
		for _, d := range ds.InhSigma {
			if !v.HoldsInh(d, ds.InhTheta) {
				t.Errorf("%s: planted inheritance OFD %s fails at θ=%d",
					preset, d.Format(ds.CleanRel.Schema()), ds.InhTheta)
			}
			if v.HoldsSyn(d) {
				t.Errorf("%s: %s unexpectedly holds as a SYNONYM OFD (families should mix entities)",
					preset, d.Format(ds.CleanRel.Schema()))
			}
		}
	}
}

func TestCensusPreset(t *testing.T) {
	ds := Generate(Config{Rows: 300, Seed: 52, Preset: "census", NumOFDs: 4})
	if ds.Rel.Schema().Len() != 11 {
		t.Fatalf("census schema has %d attributes, want 11", ds.Rel.Schema().Len())
	}
	if _, ok := ds.Rel.Schema().Index("OCCUP"); !ok {
		t.Fatal("census schema missing OCCUP")
	}
	v := core.NewVerifier(ds.CleanRel, ds.FullOnt, nil)
	for _, d := range ds.Sigma {
		if !v.HoldsSyn(d) {
			t.Errorf("census planted OFD %s violated", d.Format(ds.Rel.Schema()))
		}
	}
}
