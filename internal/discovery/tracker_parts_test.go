package discovery

import (
	"math/rand"
	"sort"
	"testing"

	"github.com/fastofd/fastofd/internal/core"
	"github.com/fastofd/fastofd/internal/live"
	"github.com/fastofd/fastofd/internal/relation"
)

// sortedVC returns a canonical copy of a consequent multiset for
// comparison across trackers with different class numbering.
func sortedVC(pairs []live.ValCount) []live.ValCount {
	out := append([]live.ValCount(nil), pairs...)
	sort.Slice(out, func(i, j int) bool { return out[i].Val < out[j].Val })
	return out
}

// TestPartitionBackedBuildersMatchScan pins the partition-backed fast
// paths to the from-scratch reference implementations: the cover tracker
// built from Π*_X must agree with the row-at-a-time build on every key
// (class size, consequent multiset, lone rows) and on validity, and the
// border certificate picked by witnessScanParts must be byte-identical to
// the one scanCandidate pins — the repair's determinism depends on both
// paths choosing the same violating class.
func TestPartitionBackedBuildersMatchScan(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	for trial := 0; trial < 60; trial++ {
		rel, ont := randomInstance(rng)
		v := core.NewVerifier(rel, ont, nil)
		pv := core.NewVerifier(rel, ont, relation.NewPartitionCacheParallel(rel, 1))
		n := rel.NumCols()
		all := relation.AttrSet(uint64(1)<<uint(n) - 1)
		for rhs := 0; rhs < n; rhs++ {
			space := all.Without(rhs)
			limit := relation.AttrSet(uint64(1)<<uint(n) - 1)
			for lhs := relation.AttrSet(0); lhs <= limit; lhs++ {
				if !lhs.SubsetOf(space) {
					continue
				}
				d := core.OFD{LHS: lhs, RHS: rhs}

				ref := newCoverTracker(rel, v, d)
				got := newCoverTrackerParts(pv, v, d)
				if got.valid() != ref.valid() {
					t.Fatalf("trial %d %v: parts valid=%v, scan valid=%v", trial, d, got.valid(), ref.valid())
				}
				if len(got.ix.Keys) != len(ref.ix.Keys) {
					t.Fatalf("trial %d %v: parts has %d keys, scan %d", trial, d, len(got.ix.Keys), len(ref.ix.Keys))
				}
				for key, refEnc := range ref.ix.Keys {
					gotEnc, ok := got.ix.Keys[key]
					if !ok {
						t.Fatalf("trial %d %v: key %q missing from parts build", trial, d, key)
					}
					if refEnc <= -2 || gotEnc <= -2 {
						if refEnc != gotEnc {
							t.Fatalf("trial %d %v: key %q lone mismatch: parts %d, scan %d", trial, d, key, gotEnc, refEnc)
						}
						continue
					}
					if got.ix.Sizes[gotEnc] != ref.ix.Sizes[refEnc] {
						t.Fatalf("trial %d %v: key %q size mismatch: parts %d, scan %d",
							trial, d, key, got.ix.Sizes[gotEnc], ref.ix.Sizes[refEnc])
					}
					gv, rv := sortedVC(got.ix.Counts[gotEnc]), sortedVC(ref.ix.Counts[refEnc])
					if len(gv) != len(rv) {
						t.Fatalf("trial %d %v: key %q multiset mismatch: parts %v, scan %v", trial, d, key, gv, rv)
					}
					for k := range gv {
						if gv[k] != rv[k] {
							t.Fatalf("trial %d %v: key %q multiset mismatch: parts %v, scan %v", trial, d, key, gv, rv)
						}
					}
					if got.sat[gotEnc] != ref.sat[refEnc] {
						t.Fatalf("trial %d %v: key %q sat mismatch", trial, d, key)
					}
				}

				refScan := scanCandidate(rel, v, d, true)
				gotScan := witnessScanParts(pv, d)
				if gotScan.valid != refScan.valid {
					t.Fatalf("trial %d %v: witness valid mismatch: parts %v, scan %v", trial, d, gotScan.valid, refScan.valid)
				}
				if !refScan.valid {
					if gotScan.witKey != refScan.witKey || gotScan.witSize != refScan.witSize {
						t.Fatalf("trial %d %v: certificate mismatch: parts (%q,%d), scan (%q,%d)",
							trial, d, gotScan.witKey, gotScan.witSize, refScan.witKey, refScan.witSize)
					}
					gv, rv := sortedVC(gotScan.witVals), sortedVC(refScan.witVals)
					if len(gv) != len(rv) {
						t.Fatalf("trial %d %v: certificate multiset mismatch: parts %v, scan %v", trial, d, gv, rv)
					}
					for k := range gv {
						if gv[k] != rv[k] {
							t.Fatalf("trial %d %v: certificate multiset mismatch: parts %v, scan %v", trial, d, gv, rv)
						}
					}
				}
			}
		}
	}
}
