package discovery

import (
	"sort"

	"github.com/fastofd/fastofd/internal/core"
	"github.com/fastofd/fastofd/internal/ontology"
	"github.com/fastofd/fastofd/internal/relation"
)

// RankedOFD pairs a discovered dependency with interestingness measures,
// supporting the paper's qualitative evaluation ("finding interesting
// OFDs"): compact dependencies whose satisfaction genuinely relies on the
// ontology are the interesting ones; wide antecedents overfit and
// dependencies that hold syntactically are just FDs.
type RankedOFD struct {
	OFD core.OFD
	// Compactness favours small antecedents: 1/(1+|X|).
	Compactness float64
	// SynonymShare is the fraction of covered tuples whose consequent
	// differs from their class mode — the value the ontology adds (0 for
	// plain FDs).
	SynonymShare float64
	// ClassCount is the number of non-singleton equivalence classes the
	// dependency constrains (evidence).
	ClassCount int
	// Score is the combined interestingness (higher is better).
	Score float64
}

// Rank scores and orders discovered OFDs by interestingness. Dependencies
// whose antecedent is a key (singleton classes only) score zero evidence.
func Rank(rel *relation.Relation, ont *ontology.Ontology, ofds core.Set) []RankedOFD {
	v := core.NewVerifier(rel, ont, nil)
	pc := v.Partitions()
	out := make([]RankedOFD, 0, len(ofds))
	for _, d := range ofds {
		r := RankedOFD{OFD: d}
		r.Compactness = 1.0 / float64(1+d.LHS.Len())
		r.SynonymShare = v.NonEqualConsequentFraction(d)
		r.ClassCount = pc.Get(d.LHS).NumClasses()
		evidence := 0.0
		if r.ClassCount > 0 {
			// Saturating evidence: a handful of classes is already
			// convincing; thousands add little.
			evidence = float64(r.ClassCount) / float64(r.ClassCount+4)
		}
		r.Score = r.Compactness * (0.25 + r.SynonymShare) * evidence
		out = append(out, r)
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		if out[i].OFD.RHS != out[j].OFD.RHS {
			return out[i].OFD.RHS < out[j].OFD.RHS
		}
		return out[i].OFD.LHS < out[j].OFD.LHS
	})
	return out
}

// Top returns the k highest-scoring dependencies (all if k ≤ 0 or exceeds
// the count).
func Top(ranked []RankedOFD, k int) []RankedOFD {
	if k <= 0 || k > len(ranked) {
		k = len(ranked)
	}
	return ranked[:k]
}
