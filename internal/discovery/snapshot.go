package discovery

import (
	"fmt"

	"github.com/fastofd/fastofd/internal/core"
	"github.com/fastofd/fastofd/internal/exec"
	"github.com/fastofd/fastofd/internal/live"
	"github.com/fastofd/fastofd/internal/ontology"
	"github.com/fastofd/fastofd/internal/relation"
	"github.com/fastofd/fastofd/internal/wire"
)

// This file is the maintainer's side of the snapshot format. A maintainer
// snapshot captures the full incremental state — the cover trackers'
// per-row class assignments, class sizes, consequent multisets, and
// satisfaction flags, plus every negative-border node's pinned violating
// class — so reopening skips both the discovery lattice walk and the
// per-cover-element tracker construction a NewMaintainerFromCover rebuild
// pays. The transversal list is not stored: border node i is the
// complement of transversal i by construction, so decode derives one from
// the other and the pair can never disagree.
//
// The encoding splits verifier-first: AppendMaintainer writes the
// verifier's tables then the body, while the pipeline section writes one
// shared verifier up front and only the engine bodies after it — the two
// engines' snapshots no longer duplicate the names tables or the
// partition cache contents.
//
// Cover-tracker LHS-key indexes restore in frozen key/value array form
// and hydrate into hash maps only when the maintainer mutates again,
// exactly like the monitor's shard indexes — a restored maintainer that
// only answers Cover() never builds a map.

// AppendMaintainer encodes mt, verifier tables first, then the body.
// Must not run concurrently with mutations.
func AppendMaintainer(w *wire.Writer, mt *Maintainer) {
	core.AppendVerifier(w, mt.v)
	AppendMaintainerBody(w, mt)
}

// AppendMaintainerBody encodes the maintainer's engine state without the
// verifier tables — the pipeline section shares one verifier across both
// engine bodies. Restored-and-not-yet-hydrated tracker indexes re-encode
// from their frozen form directly, so save → open → save round-trips
// without ever building the maps.
func AppendMaintainerBody(w *wire.Writer, mt *Maintainer) {
	w.Uvarint(mt.epoch)
	w.Uvarint(uint64(mt.scans))
	w.Int(len(mt.rhs))
	for _, rs := range mt.rhs {
		w.Int(len(rs.cover))
		for _, ct := range rs.cover {
			w.Uvarint(uint64(ct.d.LHS))
			ix := ct.ix
			if ix.NeedsHydrate() {
				w.Int(len(ix.FrozenVals))
				w.Int(ix.Width())
				w.Blob(ix.FrozenKeys)
				w.Int32s(ix.FrozenVals)
			} else {
				core.AppendLHSIndex(w, ix.Keys, ix.Width())
			}
			w.Int32s(ct.rowClass)
			w.Int32s(ix.Sizes)
			appendVCTable(w, ix.Counts)
			sat := make([]uint8, len(ct.sat))
			for ci, s := range ct.sat {
				if s {
					sat[ci] = 1
				}
			}
			w.Uint8s(sat)
		}
		w.Int(len(rs.border))
		for _, wt := range rs.border {
			w.Uvarint(uint64(wt.d.LHS))
			w.Blob([]byte(wt.key))
			w.Int(int(wt.size))
			appendVCList(w, wt.vals)
		}
	}
}

// appendVCTable encodes per-class consequent multisets as three bulk
// arrays — pairs-per-class, then the flattened values and multiplicities
// (the monitor's counts encoding).
func appendVCTable(w *wire.Writer, vals [][]live.ValCount) {
	lens := make([]int32, len(vals))
	total := 0
	for ci, pairs := range vals {
		lens[ci] = int32(len(pairs))
		total += len(pairs)
	}
	flatV := make([]int32, 0, total)
	flatN := make([]int32, 0, total)
	for _, pairs := range vals {
		for _, p := range pairs {
			flatV = append(flatV, int32(p.Val))
			flatN = append(flatN, p.N)
		}
	}
	w.Int32s(lens)
	w.Int32s(flatV)
	w.Int32s(flatN)
}

// decodeVCTable is the inverse of appendVCTable. The per-class slices are
// freshly allocated (live.Bump mutates and appends), the bulk reads
// zero-copy.
func decodeVCTable(r *wire.Reader) [][]live.ValCount {
	lens := r.Int32s()
	flatV := r.Int32s()
	flatN := r.Int32s()
	if len(flatV) != len(flatN) {
		return nil
	}
	out := make([][]live.ValCount, len(lens))
	pos := 0
	for ci, l := range lens {
		n := int(l)
		if n < 0 || pos+n > len(flatV) {
			return nil
		}
		pairs := make([]live.ValCount, n)
		for k := 0; k < n; k++ {
			pairs[k] = live.ValCount{Val: relation.Value(flatV[pos+k]), N: flatN[pos+k]}
		}
		out[ci] = pairs
		pos += n
	}
	return out
}

// appendVCList encodes one class's multiset as parallel value and
// multiplicity arrays.
func appendVCList(w *wire.Writer, pairs []live.ValCount) {
	flatV := make([]int32, len(pairs))
	flatN := make([]int32, len(pairs))
	for k, p := range pairs {
		flatV[k] = int32(p.Val)
		flatN[k] = p.N
	}
	w.Int32s(flatV)
	w.Int32s(flatN)
}

func decodeVCList(r *wire.Reader) ([]live.ValCount, error) {
	flatV := r.Int32s()
	flatN := r.Int32s()
	if len(flatV) != len(flatN) {
		return nil, fmt.Errorf("discovery: snapshot multiset arrays disagree (%d values, %d counts)", len(flatV), len(flatN))
	}
	pairs := make([]live.ValCount, len(flatV))
	for k := range flatV {
		pairs[k] = live.ValCount{Val: relation.Value(flatV[k]), N: flatN[k]}
	}
	return pairs, nil
}

// DecodeMaintainer rebuilds a standalone maintainer over rel/ont from a
// snapshot written by AppendMaintainer: verifier tables first, then the
// body. The restored maintainer gets the same persistent repair substrate
// construction installs — a byte-budgeted partition cache (pc when the
// caller restored a snapshot-consistent one, so the first batch's repair
// starts warm; a fresh default-budget cache otherwise) with a live
// overlay registry as its miss provider, referenced for every restored
// cover element and single column.
func DecodeMaintainer(r *wire.Reader, rel *relation.Relation, ont *ontology.Ontology, pc *relation.PartitionCache, workers int, stats *exec.Stats) (*Maintainer, error) {
	if pc == nil {
		pc = relation.NewPartitionCache(rel)
		pc.SetBudget(DefaultRepairCacheBudget)
	}
	reg := live.NewOverlays(rel, pc)
	pc.SetOverlayProvider(reg)
	v, err := core.DecodeVerifier(r, rel, ont, pc)
	if err != nil {
		return nil, err
	}
	mt, err := DecodeMaintainerBody(r, rel, v, workers, stats)
	if err != nil {
		return nil, err
	}
	mt.overlays = reg
	for _, rs := range mt.rhs {
		for _, ct := range rs.cover {
			reg.Acquire(ct.d.LHS)
		}
	}
	for c := 0; c < rel.NumCols(); c++ {
		reg.Acquire(relation.EmptySet.With(c))
	}
	return mt, nil
}

// DecodeMaintainerBody rebuilds a maintainer over rel and an already-
// decoded verifier from a body written by AppendMaintainerBody — the
// pipeline decodes one shared verifier and hands it to both engine body
// decoders. No discovery, tracker construction, or candidate scan runs:
// the restored state is byte-for-byte the saved trackers, so Cover() and
// all subsequent diffs are identical to the saved maintainer's. workers
// and stats configure the restored maintainer exactly as the
// construction-time parameters would.
func DecodeMaintainerBody(r *wire.Reader, rel *relation.Relation, v *core.Verifier, workers int, stats *exec.Stats) (*Maintainer, error) {
	span := stats.Span("maintain.restore")
	defer span.End()
	epoch := r.Uvarint()
	scans := r.Uvarint()
	nCols := r.Int()
	if r.Err() != nil {
		return nil, r.Err()
	}
	if nCols != rel.NumCols() {
		return nil, fmt.Errorf("discovery: snapshot maintainer has %d columns, relation has %d", nCols, rel.NumCols())
	}
	mt := &Maintainer{
		rel: rel,
		v:   v,
		// The decoded verifier is partition-cache-backed (the pipeline's
		// shared one, or DecodeMaintainer's standalone substrate), so
		// repair verification reuses it across batches exactly like a
		// constructed maintainer — and invalidateTouched keeps the cache
		// coherent from the first restored batch on.
		pv:          v,
		workers:     workers,
		stats:       stats,
		all:         rel.Schema().All(),
		rhs:         make([]*rhsState, nCols),
		epoch:       epoch,
		scans:       int64(scans),
		needHydrate: true,
	}
	nRows := rel.NumRows()
	for c := 0; c < nCols; c++ {
		rs := &rhsState{rhs: c}
		nCover := r.Int()
		if r.Err() != nil {
			return nil, r.Err()
		}
		for k := 0; k < nCover; k++ {
			lhs := relation.AttrSet(r.Uvarint())
			d := core.OFD{LHS: lhs, RHS: c}
			ct := &coverTracker{
				d:      d,
				cols:   lhs.Attrs(),
				colSet: lhs.With(c),
				ix:     newTrackerIndex(d),
			}
			count := r.Int()
			width := r.Int()
			keys := r.Blob()
			vals := r.Int32s()
			ct.rowClass = r.Int32s()
			ct.ix.Sizes = r.Int32s()
			ct.ix.Counts = decodeVCTable(r)
			satBytes := r.Uint8s()
			if r.Err() != nil {
				return nil, r.Err()
			}
			if width != ct.ix.Width() {
				return nil, fmt.Errorf("discovery: snapshot tracker key width %d for %d antecedent columns", width, len(ct.cols))
			}
			if len(vals) != count || len(keys) != count*width {
				return nil, fmt.Errorf("discovery: snapshot tracker index shape mismatch (count %d, width %d)", count, width)
			}
			if len(ct.rowClass) != nRows {
				return nil, fmt.Errorf("discovery: snapshot tracker sized for %d rows, relation has %d", len(ct.rowClass), nRows)
			}
			if ct.ix.Counts == nil || len(ct.ix.Counts) != len(ct.ix.Sizes) || len(satBytes) != len(ct.ix.Sizes) {
				return nil, fmt.Errorf("discovery: snapshot tracker class state inconsistent")
			}
			ct.ix.SetFrozen(keys, vals)
			ct.sat = make([]bool, len(satBytes))
			for ci, b := range satBytes {
				ct.sat[ci] = b != 0
				if b == 0 {
					ct.unsat++
				}
			}
			rs.cover = append(rs.cover, ct)
		}
		nBorder := r.Int()
		if r.Err() != nil {
			return nil, r.Err()
		}
		space := mt.all.Without(c)
		for k := 0; k < nBorder; k++ {
			lhs := relation.AttrSet(r.Uvarint())
			key := r.Blob()
			size := r.Int()
			vals, err := decodeVCList(r)
			if err != nil {
				return nil, err
			}
			if r.Err() != nil {
				return nil, r.Err()
			}
			d := core.OFD{LHS: lhs, RHS: c}
			if len(key) != 4*lhs.Len() {
				return nil, fmt.Errorf("discovery: snapshot witness key of %d bytes for %d antecedent columns", len(key), lhs.Len())
			}
			rs.border = append(rs.border, newWitnessTracker(d, string(key), int32(size), vals))
			// Border node i is the complement of transversal i by
			// construction; deriving trans keeps the pair consistent and
			// preserves the canonical order the border was saved in.
			rs.trans = append(rs.trans, space.Minus(lhs))
		}
		mt.rhs[c] = rs
		span.Items(nCover + nBorder)
	}
	if r.Err() != nil {
		return nil, r.Err()
	}
	mt.rebuildFlat()
	return mt, nil
}
