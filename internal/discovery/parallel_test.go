package discovery

import (
	"math/rand"
	"reflect"
	"testing"

	"github.com/fastofd/fastofd/internal/gen"
	"github.com/fastofd/fastofd/internal/ontology"
)

func TestParallelMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 15; trial++ {
		rel, ont := randomInstance(rng)
		serial := Discover(rel, ont, DefaultOptions())
		for _, w := range []int{2, 4, 8} {
			opts := DefaultOptions()
			opts.Workers = w
			par := Discover(rel, ont, opts)
			if !reflect.DeepEqual(par.OFDs, serial.OFDs) {
				t.Fatalf("trial %d workers=%d: output differs\n got %v\nwant %v",
					trial, w, par.OFDs, serial.OFDs)
			}
			if par.CandidatesChecked != serial.CandidatesChecked {
				t.Fatalf("trial %d workers=%d: candidate counts differ: %d vs %d",
					trial, w, par.CandidatesChecked, serial.CandidatesChecked)
			}
		}
	}
}

func TestParallelOnWorkload(t *testing.T) {
	ds := gen.Clinical(800, 43)
	serial := Discover(ds.Rel, ds.FullOnt, DefaultOptions())
	opts := DefaultOptions()
	opts.Workers = 4
	par := Discover(ds.Rel, ds.FullOnt, opts)
	if !reflect.DeepEqual(par.OFDs, serial.OFDs) {
		t.Fatalf("parallel output differs on workload: %d vs %d OFDs", len(par.OFDs), len(serial.OFDs))
	}
}

func TestParallelInheritanceAndApprox(t *testing.T) {
	ds := gen.Generate(gen.Config{Rows: 400, Seed: 44, ErrRate: 0.05})
	for _, base := range []Options{
		{PruneAugmentation: true, PruneKeys: true, FDShortcut: true, Mode: ModeInheritance, Theta: 2},
		{PruneAugmentation: true, PruneKeys: true, FDShortcut: true, MinSupport: 0.9},
	} {
		serial := Discover(ds.Rel, ds.FullOnt, base)
		par := base
		par.Workers = 4
		got := Discover(ds.Rel, ds.FullOnt, par)
		if !reflect.DeepEqual(got.OFDs, serial.OFDs) {
			t.Fatalf("mode %+v: parallel differs", base)
		}
	}
}

func TestWorkersIgnoredWithoutAugmentationPruning(t *testing.T) {
	// The ablation path reads evolving global state; Workers must fall
	// back to serial rather than race.
	rng := rand.New(rand.NewSource(45))
	rel, ont := randomInstance(rng)
	opts := Options{Workers: 8} // PruneAugmentation off
	got := Discover(rel, ont, opts)
	want := Discover(rel, ont, Options{})
	if !reflect.DeepEqual(got.OFDs, want.OFDs) {
		t.Fatal("fallback-to-serial output differs")
	}
}

// TestParallelColdCacheMisses is the regression test for the data race the
// partition cache used to have: with an empty ontology no consequent is
// covered, so level-1 candidates ∅ → A cannot shortcut through Opt-3/Opt-4
// without first fetching Π*_∅ — which is NOT pre-warmed. Four workers
// therefore miss on the same cache key concurrently during the very first
// verification wave. Under `go test -race` the old unguarded map faults
// here; with the sharded cache the run is clean and deterministic.
func TestParallelColdCacheMisses(t *testing.T) {
	rng := rand.New(rand.NewSource(46))
	for trial := 0; trial < 10; trial++ {
		rel, _ := randomInstance(rng)
		ont := ontology.New() // nothing covered: every Get(∅) is a true miss
		serial := Discover(rel, ont, DefaultOptions())
		opts := DefaultOptions()
		opts.Workers = 4
		for rep := 0; rep < 3; rep++ {
			par := Discover(rel, ont, opts)
			if !reflect.DeepEqual(par.OFDs, serial.OFDs) {
				t.Fatalf("trial %d rep %d: cold-cache parallel output differs", trial, rep)
			}
		}
	}
}
