package discovery

import (
	"context"
	"fmt"
	"sort"

	"github.com/fastofd/fastofd/internal/core"
	"github.com/fastofd/fastofd/internal/exec"
	"github.com/fastofd/fastofd/internal/fd"
	"github.com/fastofd/fastofd/internal/live"
	"github.com/fastofd/fastofd/internal/ontology"
	"github.com/fastofd/fastofd/internal/relation"
)

// DefaultRepairCacheBudget is the byte budget a standalone maintainer
// puts on its persistent repair partition cache when Options leaves
// RepairCacheBudget zero and supplies no cache of its own. Generous
// enough that update streams over mid-size instances never evict, small
// enough that a long-lived maintainer cannot grow without bound.
const DefaultRepairCacheBudget int64 = 256 << 20

// Diff is one batch's change to the maintained minimal cover: the OFDs
// that entered and left it, each sorted in canonical core.Set order.
// Epoch is the maintainer's state version after the batch; an unchanged
// cover still advances the epoch, so consumers can correlate diffs with
// the monitor's per-batch reports.
type Diff struct {
	Epoch   uint64
	Added   core.Set
	Removed core.Set
}

// Empty reports whether the batch left the cover unchanged.
func (d Diff) Empty() bool { return len(d.Added) == 0 && len(d.Removed) == 0 }

// rhsState is the maintained lattice state for one consequent attribute:
// the minimal cover antichain (full class trackers), the negative border
// — the maximal invalid antecedents, each carrying a violating-class
// certificate — and the minimal transversals of the cover the border is
// derived from (border node = space minus transversal). Both slices are
// kept in canonical SortSets order so every traversal is deterministic.
type rhsState struct {
	rhs    int
	cover  []*coverTracker
	border []*witnessTracker
	trans  []relation.AttrSet
}

func (rs *rhsState) coverSets() []relation.AttrSet {
	out := make([]relation.AttrSet, len(rs.cover))
	for i, ct := range rs.cover {
		out[i] = ct.d.LHS
	}
	return out
}

// Maintainer keeps the complete minimal synonym-OFD cover of a mutating
// relation live: it consumes the same cell-update batches and row appends
// as core.Monitor and emits a per-batch Diff of the cover, re-verifying
// only lattice nodes a batch could have flipped instead of re-running
// discovery. The incremental argument has two halves, both resting on the
// upward closure of exact synonym-OFD validity in the antecedent lattice:
//
//   - Demotions (valid → invalid) can only strike minimal valid nodes
//     first, and the maintainer holds full equivalence-class state for
//     exactly those — the cover elements — so a batch detects them in
//     O(touched rows) per tracker.
//   - Promotions (invalid → valid) must lift some maximal invalid node —
//     the negative border — and each border node carries a pinned
//     violating class whose certificate a promoting batch provably
//     breaks, so the (rare) full rescans are confined to border nodes
//     whose certificate broke.
//
// Every flip re-opens a bounded repair region (repairer) rather than the
// lattice: BFS up from demotions through the invalidated region, descent
// down from promotions through the newly valid one, both answering most
// nodes from the old cover plus the batch's touched-column set.
//
// Batches are atomic: a cancelled batch rolls the relation and every
// tracker back to the pre-batch state and leaves the cover untouched.
// The cover is byte-identical to a fresh Discover over the final instance
// for every worker count and batch partitioning.
//
// The maintainer supports the configuration the incremental argument is
// sound for: exact synonym OFDs over the full lattice (MinSupport 0 or 1,
// ModeSynonym, MaxLevel 0). NewMaintainer rejects anything else —
// approximate support breaks upward closure, and a depth cap makes the
// border ill-defined.
type Maintainer struct {
	rel     *relation.Relation
	v       *core.Verifier
	workers int
	stats   *exec.Stats

	// pv is the persistent partition-cache-backed verifier repair
	// verification runs on: in pipeline mode (Options.Verifier) the one
	// shared with the monitor, standalone the byte-budgeted substrate
	// buildFromCover installs. Either way its cache is reused across
	// batches instead of being rebuilt per batch, with staleness handled
	// by InvalidateTouched on updates and the cache's row stamps on
	// appends. Always non-nil after construction or restore; standalone,
	// pv == v (one names table, one cache).
	pv *core.Verifier
	// overlays is the live overlay registry over pv's cache: updates mark
	// intersecting overlays stale, appends route into them, and cover
	// churn adjusts their reference counts. The pipeline installs its
	// shared registry via SetOverlays; standalone construction installs a
	// private one.
	overlays *live.Overlays

	// serialRepair forces the per-batch repair to handle flipped
	// consequents one at a time (Options.SerialRepair); the default stages
	// all of them as concurrent tasks on the wave scheduler.
	serialRepair bool

	all   relation.AttrSet
	rhs   []*rhsState
	flat  []batchTracker // all trackers, for batch fan-out
	epoch uint64

	pending map[int64]int // (row,col) → writes index, batch scratch
	writes  []cellWrite
	scans   int64 // cumulative full-candidate verifications
	skips   int64 // cumulative oracle-answered nodes (not persisted)
	// Multi-RHS kernel counters: traversals is the number of Π*_X walks
	// the wave scheduler executed, probes the (LHS, RHS) verdicts those
	// walks produced — probes/traversals is the kernel's fan-in.
	waveTraversals int64
	waveProbes     int64
	// refines counts the subset of scans answered by root refinement —
	// climb nodes decided from the demoted seed's tracked unsatisfied
	// classes instead of a wave-kernel partition walk (not persisted).
	refines int64

	// needHydrate marks a snapshot-restored maintainer whose cover-tracker
	// key indexes are still in frozen array form; the first mutating
	// operation hydrates them (Cover and Epoch never consult them).
	needHydrate bool
}

// hydrate materializes every cover tracker's LHS-key map from its frozen
// snapshot form — called once, by the first batch or append after a
// restore (the only operations that consult the maps).
func (mt *Maintainer) hydrate() {
	span := mt.stats.Span("maintain.hydrate")
	w := exec.Workers(mt.workers)
	span.Workers(w)
	defer span.End()
	_ = exec.For(context.Background(), len(mt.flat), w, func(_, i int) {
		if ct, ok := mt.flat[i].(*coverTracker); ok {
			ct.hydrate()
		}
	})
	mt.needHydrate = false
}

// NewMaintainer builds a maintainer, running a fresh discovery for the
// initial cover. See NewMaintainerContext.
func NewMaintainer(rel *relation.Relation, ont *ontology.Ontology, opts Options) (*Maintainer, error) {
	return NewMaintainerContext(context.Background(), rel, ont, opts)
}

// NewMaintainerContext builds a maintainer with cooperative cancellation
// of the initial discovery and index build. A cancelled build returns a
// nil maintainer and an error satisfying errors.Is(err, ctx.Err()).
func NewMaintainerContext(ctx context.Context, rel *relation.Relation, ont *ontology.Ontology, opts Options) (*Maintainer, error) {
	if err := checkMaintainerOptions(opts); err != nil {
		return nil, err
	}
	res, err := DiscoverContext(ctx, rel, ont, opts)
	if err != nil {
		return nil, err
	}
	return buildFromCover(ctx, rel, ont, res.OFDs, opts)
}

// NewMaintainerFromCover builds a maintainer around an already-known
// minimal cover — the snapshot-restore path — skipping the initial
// discovery entirely. The cover must be the exact minimal synonym-OFD
// cover of the instance (a saved maintainer's Cover() qualifies; the
// border build panics on a non-cover, exactly as a corrupted live
// maintainer would). Tracker and border state is deterministic given the
// instance and the cover, so the rebuilt maintainer's Cover() and diffs
// are byte-identical to the saved one's.
func NewMaintainerFromCover(ctx context.Context, rel *relation.Relation, ont *ontology.Ontology, cover core.Set, opts Options) (*Maintainer, error) {
	if err := checkMaintainerOptions(opts); err != nil {
		return nil, err
	}
	return buildFromCover(ctx, rel, ont, cover, opts)
}

// checkMaintainerOptions rejects configurations the incremental argument
// is not sound for (see the Maintainer doc comment).
func checkMaintainerOptions(opts Options) error {
	if opts.Mode != ModeSynonym {
		return fmt.Errorf("discovery: maintainer supports synonym OFDs only")
	}
	if opts.MinSupport != 0 && opts.MinSupport != 1 {
		return fmt.Errorf("discovery: maintainer requires exact OFDs (MinSupport 0 or 1), got %v", opts.MinSupport)
	}
	if opts.MaxLevel != 0 {
		return fmt.Errorf("discovery: maintainer requires an uncapped lattice (MaxLevel 0), got %d", opts.MaxLevel)
	}
	return nil
}

// buildFromCover is the shared tail of maintainer construction: given the
// minimal cover (freshly discovered or restored), build the full tracker
// and border state.
func buildFromCover(ctx context.Context, rel *relation.Relation, ont *ontology.Ontology, initial core.Set, opts Options) (*Maintainer, error) {
	mt := &Maintainer{
		rel:          rel,
		workers:      opts.Workers,
		stats:        opts.Stats,
		serialRepair: opts.SerialRepair,
		all:          rel.Schema().All(),
		rhs:          make([]*rhsState, rel.NumCols()),
	}
	if opts.Verifier != nil {
		// Pipeline mode: one partition-cache-backed verifier shared across
		// the maintainer, the monitor, and the repair search — one names
		// table, one cache, no per-batch verifier rebuilds.
		mt.v = opts.Verifier
		mt.pv = opts.Verifier
	} else {
		// Standalone mode mirrors the pipeline's substrate instead of
		// rebuilding it per batch: one long-lived byte-budgeted partition
		// cache (opts.Cache when the caller restored a snapshot-consistent
		// one) with a live overlay registry installed as its miss provider,
		// and one verifier on top serving both tracker maintenance and
		// repair verification. Quiet columns' partitions now survive across
		// batches — invalidateTouched evicts exactly the rewritten sets, row
		// stamps age out pre-append entries, and the budget's cost-model
		// eviction bounds residency.
		bpc := opts.Cache
		if bpc == nil {
			bpc = relation.NewPartitionCacheParallel(rel, opts.Workers)
			if opts.RepairCacheBudget == 0 {
				bpc.SetBudget(DefaultRepairCacheBudget)
			}
		}
		switch {
		case opts.RepairCacheBudget > 0:
			bpc.SetBudget(opts.RepairCacheBudget)
		case opts.RepairCacheBudget < 0:
			bpc.SetBudget(0)
		}
		reg := live.NewOverlays(rel, bpc)
		bpc.SetOverlayProvider(reg)
		v := core.NewVerifier(rel, ont, bpc)
		mt.v, mt.pv, mt.overlays = v, v, reg
	}
	w := exec.Workers(opts.Workers)
	span := mt.stats.Span("maintain.build")
	span.Workers(w)
	defer span.End()
	for c := 0; c < rel.NumCols(); c++ {
		mt.rhs[c] = &rhsState{rhs: c}
	}
	cover := initial.Clone()
	cover.Sort()
	// Full class trackers for every cover element, built in parallel (each
	// tracker is self-contained) against the persistent partition-backed
	// verifier — cover and border antecedents overlap heavily, so cached
	// subset products compound across the whole build and stay warm for
	// the first batch's repair pass.
	pv := mt.pv
	trackers := make([]*coverTracker, len(cover))
	err := exec.For(ctx, len(cover), w, func(_, i int) {
		trackers[i] = newCoverTrackerParts(pv, mt.v, cover[i])
	})
	if err != nil {
		return nil, err
	}
	span.Items(len(cover))
	for i, d := range cover {
		mt.rhs[d.RHS].cover = append(mt.rhs[d.RHS].cover, trackers[i])
	}
	for _, rs := range mt.rhs {
		sortCoverTrackers(rs.cover)
		rs.trans = fd.MinimalHittingSets(lhsSets(rs.cover))
		if err := mt.buildBorder(ctx, pv, rs, nil); err != nil {
			return nil, err
		}
		span.Items(len(rs.border))
	}
	if opts.Verifier == nil {
		// Reference the overlays the standalone maintainer keeps consulting
		// (the pipeline acquires these itself for its registry): one per
		// cover element and one per single column, so appends key-route into
		// them instead of forcing partition rebuilds.
		for _, d := range cover {
			mt.overlays.Acquire(d.LHS)
		}
		for c := 0; c < rel.NumCols(); c++ {
			mt.overlays.Acquire(relation.EmptySet.With(c))
		}
	}
	mt.rebuildFlat()
	return mt, nil
}

// sortCoverTrackers orders trackers canonically (length, then bit
// pattern — the SortSets order).
func sortCoverTrackers(cover []*coverTracker) {
	sort.Slice(cover, func(i, j int) bool {
		a, b := cover[i].d.LHS, cover[j].d.LHS
		if la, lb := a.Len(), b.Len(); la != lb {
			return la < lb
		}
		return a < b
	})
}

func lhsSets(cover []*coverTracker) []relation.AttrSet {
	out := make([]relation.AttrSet, len(cover))
	for i, ct := range cover {
		out[i] = ct.d.LHS
	}
	return out
}

// buildBorder materializes rs.border from rs.trans: one witness tracker
// per maximal invalid node, reusing entries from keep (the previous
// border, keyed by antecedent) and scanning the rest in parallel. Every
// border node is invalid by construction — each transversal hits every
// cover element, so its complement contains none — and the defensive
// check turns a violated invariant into a panic rather than silent
// cover corruption.
func (mt *Maintainer) buildBorder(ctx context.Context, pv *core.Verifier, rs *rhsState, keep map[relation.AttrSet]*witnessTracker) error {
	space := mt.all.Without(rs.rhs)
	rs.border = make([]*witnessTracker, len(rs.trans))
	var scanIdx []int
	for i, tr := range rs.trans {
		w := space.Minus(tr)
		if wt := keep[w]; wt != nil {
			rs.border[i] = wt
		} else {
			scanIdx = append(scanIdx, i)
		}
	}
	err := exec.For(ctx, len(scanIdx), exec.Workers(mt.workers), func(_, k int) {
		i := scanIdx[k]
		d := core.OFD{LHS: space.Minus(rs.trans[i]), RHS: rs.rhs}
		res := witnessScanParts(pv, d)
		if res.valid {
			panic(fmt.Sprintf("discovery: border node %v is valid; cover for attribute %d is not a cover",
				d.LHS.Format(mt.rel.Schema()), rs.rhs))
		}
		rs.border[i] = newWitnessTracker(d, res.witKey, res.witSize, res.witVals)
	})
	return err
}

// rebuildFlat regenerates the batch fan-out list over all trackers.
func (mt *Maintainer) rebuildFlat() {
	mt.flat = mt.flat[:0]
	for _, rs := range mt.rhs {
		for _, ct := range rs.cover {
			mt.flat = append(mt.flat, ct)
		}
		for _, wt := range rs.border {
			mt.flat = append(mt.flat, wt)
		}
	}
}

// Cover returns the maintained minimal cover in canonical core.Set order.
// The returned set is a fresh copy.
func (mt *Maintainer) Cover() core.Set {
	var out core.Set
	for _, rs := range mt.rhs {
		for _, ct := range rs.cover {
			out = append(out, ct.d)
		}
	}
	out.Sort()
	return out
}

// Epoch returns the number of successfully applied batches and appends.
func (mt *Maintainer) Epoch() uint64 { return mt.epoch }

// NumRows returns the maintained relation's current row count.
func (mt *Maintainer) NumRows() int { return mt.rel.NumRows() }

// Relation returns the maintained relation.
func (mt *Maintainer) Relation() *relation.Relation { return mt.rel }

// Ontology returns the maintainer's ontology.
func (mt *Maintainer) Ontology() *ontology.Ontology { return mt.v.Ontology() }

// Scans returns the cumulative number of full candidate verifications the
// maintainer has performed since construction (the work a fresh discovery
// would redo per node; the oracle-answered remainder is reported as
// Skipped on the maintain.verify stage).
func (mt *Maintainer) Scans() int64 { return mt.scans }

// Skips returns the cumulative number of repair nodes the validity oracle
// answered without verification since construction. scans/(scans+skips)
// is the fraction of re-opened lattice nodes that actually paid a
// partition walk. Unlike Scans, the counter is telemetry only and is not
// persisted in snapshots.
func (mt *Maintainer) Skips() int64 { return mt.skips }

// Refines returns the cumulative number of scans (already counted in
// Scans) that root refinement answered from tracked class state — BFS
// climb nodes above a demoted cover element whose verdict came from
// splitting the element's unsatisfied classes rather than from a
// partition walk. Telemetry only; not persisted in snapshots.
func (mt *Maintainer) Refines() int64 { return mt.refines }

// KernelStats returns the multi-RHS verification kernel's cumulative
// counters: traversals is the number of Π*_X partition walks the wave
// scheduler executed, probes the (LHS, RHS) verdicts those walks
// produced. probes/traversals is the kernel's fan-in — the number of
// per-pair traversals each walk replaced.
func (mt *Maintainer) KernelStats() (traversals, probes int64) {
	return mt.waveTraversals, mt.waveProbes
}

// RepairCache returns the persistent partition cache repair verification
// runs on (the pipeline's shared cache, or the standalone maintainer's
// private budgeted one). Callers snapshot it alongside the maintainer so
// a reopened maintainer starts warm, and read Stats() for cross-batch
// hit/miss/byte counters.
func (mt *Maintainer) RepairCache() *relation.PartitionCache {
	return mt.pv.Partitions()
}

// ApplyBatch applies a batch of cell updates and returns the cover diff.
// See ApplyBatchContext.
func (mt *Maintainer) ApplyBatch(updates []core.CellUpdate) (Diff, error) {
	return mt.ApplyBatchContext(context.Background(), updates)
}

// ApplyBatchContext applies a batch of cell updates, re-verifies exactly
// the lattice region the batch dirtied, and returns the cover diff. The
// batch is atomic: a cancelled context rolls the relation and all tracker
// state back to the pre-batch snapshot and returns an error satisfying
// errors.Is(err, ctx.Err()) with a zero Diff. Unlike the monitor, updates
// may touch any attribute — the maintainer has no antecedent/consequent
// split to protect. Same-cell writes dedup to the last value; writes of a
// cell's current value are dropped, and an all-no-op batch returns an
// empty diff at the current epoch without touching any state.
func (mt *Maintainer) ApplyBatchContext(ctx context.Context, updates []core.CellUpdate) (Diff, error) {
	for _, u := range updates {
		if u.Row < 0 || u.Row >= mt.rel.NumRows() || u.Col < 0 || u.Col >= mt.rel.NumCols() {
			return Diff{}, fmt.Errorf("discovery: cell (%d,%d) out of range", u.Row, u.Col)
		}
	}
	if mt.needHydrate {
		mt.hydrate()
	}
	dirtySpan := mt.stats.Span("maintain.dirty")
	dirtySpan.Items(len(updates))
	w := exec.Workers(mt.workers)
	dirtySpan.Workers(w)
	// Last-write-wins dedup to one effective write per cell, keeping the
	// pre-batch value for rollback.
	if mt.pending == nil {
		mt.pending = make(map[int64]int, len(updates))
	}
	clear(mt.pending)
	mt.writes = mt.writes[:0]
	for _, u := range updates {
		id := mt.rel.Dict(u.Col).Intern(u.Value)
		key := int64(u.Row)<<32 | int64(u.Col)
		if k, ok := mt.pending[key]; ok {
			mt.writes[k].New = id
			continue
		}
		mt.pending[key] = len(mt.writes)
		mt.writes = append(mt.writes, cellWrite{Row: u.Row, Col: u.Col, Old: mt.rel.Value(u.Row, u.Col), New: id})
	}
	eff := 0
	var touched relation.AttrSet
	for _, wr := range mt.writes {
		if wr.New == wr.Old {
			continue
		}
		mt.writes[eff] = wr
		eff++
		touched = touched.With(wr.Col)
	}
	mt.writes = mt.writes[:eff]
	if eff == 0 {
		dirtySpan.End()
		return Diff{Epoch: mt.epoch}, nil
	}
	sort.Slice(mt.writes, func(i, j int) bool {
		if mt.writes[i].Row != mt.writes[j].Row {
			return mt.writes[i].Row < mt.writes[j].Row
		}
		return mt.writes[i].Col < mt.writes[j].Col
	})
	// Move the relation to the target state, then fold the write log into
	// every tracker the batch can affect. The fan-out is uncancellable —
	// it is O(touched rows) per tracker and leaving it half-applied would
	// require per-tracker undo logs; cancellation lands on the boundaries
	// around it instead.
	for _, wr := range mt.writes {
		mt.rel.SetValue(wr.Row, wr.Col, wr.New)
	}
	mt.invalidateTouched(touched)
	active := mt.activeTrackers(touched)
	_ = exec.For(context.Background(), len(active), w, func(_, i int) {
		active[i].applyWrites(mt.rel, mt.v, mt.writes)
	})
	dirtySpan.End()
	rollback := func() {
		// Revert the relation to the source state, then replay the
		// inverted log through the same trackers: applyWrites transitions
		// are symmetric, so tracker state is restored exactly (interned
		// values linger in dictionaries and names tables — both monotone,
		// harmless). Staged witness certificates are discarded. Shared
		// cache entries computed over the target state during the verify
		// phase are evicted again — they describe a state that no longer
		// exists.
		inv := make([]cellWrite, len(mt.writes))
		for k, wr := range mt.writes {
			mt.rel.SetValue(wr.Row, wr.Col, wr.Old)
			inv[k] = cellWrite{Row: wr.Row, Col: wr.Col, Old: wr.New, New: wr.Old}
		}
		_ = exec.For(context.Background(), len(active), w, func(_, i int) {
			active[i].applyWrites(mt.rel, mt.v, inv)
		})
		mt.invalidateTouched(touched)
		mt.clearPendings()
	}
	if err := exec.Interrupted(ctx, "maintain.dirty"); err != nil {
		rollback()
		return Diff{}, err
	}
	return mt.verifyAndCommit(ctx, touched, false, rollback)
}

// invalidateTouched evicts shared-state descriptions of attribute sets a
// batch rewrote: the persistent repair cache's entries (row stamps only
// catch appends, not in-place updates) and the live overlay registry's
// intersecting overlays. Everything untouched survives to the next
// batch's repair pass.
func (mt *Maintainer) invalidateTouched(touched relation.AttrSet) {
	if mt.pv != nil {
		mt.pv.Partitions().InvalidateTouched(touched)
	}
	if mt.overlays != nil {
		mt.overlays.InvalidateTouched(touched)
	}
}

// SetOverlays connects the pipeline's live overlay registry: the
// maintainer keeps it consistent across batches (staleness on updates,
// routing on appends, refcounts on cover churn). Call once, right after
// construction, before any batch.
func (mt *Maintainer) SetOverlays(reg *live.Overlays) { mt.overlays = reg }

// LastWrites returns the effective (deduplicated, no-op-free) cell writes
// of the most recent successfully applied batch, sorted by (row, col) —
// the log the pipeline feeds to the monitor's AbsorbBatch. Valid until the
// next batch; empty after appends or an all-no-op batch.
func (mt *Maintainer) LastWrites() []core.CellWrite { return mt.writes }

// activeTrackers filters the fan-out list to trackers whose scope a
// batch's touched columns intersect.
func (mt *Maintainer) activeTrackers(touched relation.AttrSet) []batchTracker {
	active := make([]batchTracker, 0, len(mt.flat))
	for _, tr := range mt.flat {
		if !tr.scope().Intersect(touched).IsEmpty() {
			active = append(active, tr)
		}
	}
	return active
}

func (mt *Maintainer) clearPendings() {
	for _, rs := range mt.rhs {
		for _, wt := range rs.border {
			wt.clearPending()
		}
	}
}

// AppendRow appends one tuple (strings in schema order) and returns the
// cover diff. See AppendRows.
func (mt *Maintainer) AppendRow(row []string) (Diff, error) {
	return mt.AppendRows([][]string{row})
}

// AppendRows appends a batch of tuples (strings in schema order) and
// returns the combined cover diff. Appends only demote — growing an
// equivalence class grows its distinct consequent set, and sense
// satisfiability is antitone in it — so the repair runs without border
// rescans or promotion descents, and the whole operation is
// uncancellable-fast (no rollback surface). Batching matters: the repair
// pass — and any cover-tracker and border rebuilds it causes — runs once
// for the whole batch instead of once per row, and the resulting cover
// is identical to appending the rows one at a time.
func (mt *Maintainer) AppendRows(rows [][]string) (Diff, error) {
	for _, row := range rows {
		if len(row) != mt.rel.NumCols() {
			return Diff{}, fmt.Errorf("discovery: append of %d cells into %d attributes", len(row), mt.rel.NumCols())
		}
	}
	if len(rows) == 0 {
		return Diff{Epoch: mt.epoch}, nil
	}
	if mt.needHydrate {
		mt.hydrate()
	}
	dirtySpan := mt.stats.Span("maintain.dirty")
	dirtySpan.Items(len(rows))
	w := exec.Workers(mt.workers)
	dirtySpan.Workers(w)
	t0 := int32(mt.rel.NumRows())
	for _, row := range rows {
		mt.rel.AppendRow(row)
	}
	end := int32(mt.rel.NumRows())
	if mt.pv != nil {
		// Every resident cache entry now trails the relation's row count.
		// Lookup already refuses them; dropping them outright keeps dead
		// partitions from holding the byte budget hostage across batches.
		mt.pv.Partitions().InvalidateStale()
	}
	_ = exec.For(context.Background(), len(mt.flat), w, func(_, i int) {
		for t := t0; t < end; t++ {
			mt.flat[i].appendRow(mt.rel, mt.v, t)
		}
	})
	if mt.overlays != nil {
		// Live overlays absorb the rows by key routing, so the verify
		// phase's (and the monitor's) partition lookups materialize them
		// instead of recomputing products over the grown relation.
		mt.overlays.RouteAppends(int(t0), int(end))
	}
	mt.writes = mt.writes[:0] // appends produce no write log
	dirtySpan.End()
	return mt.verifyAndCommit(context.Background(), relation.EmptySet, true, nil)
}

// stagedRHS is one consequent's repair outcome awaiting commit.
type stagedRHS struct {
	rhs       int
	newCover  []relation.AttrSet
	triggered []*witnessTracker
}

// verifyAndCommit reads the flip signals off the trackers, repairs every
// affected consequent's cover (cancellable; all effects staged), then
// commits: installs new covers and certificates, rebuilds changed
// borders, advances the epoch, and assembles the diff. rollback, when
// non-nil, undoes the already-applied batch on cancellation.
func (mt *Maintainer) verifyAndCommit(ctx context.Context, touched relation.AttrSet, hasAppend bool, rollback func()) (Diff, error) {
	verifySpan := mt.stats.Span("maintain.verify")
	verifySpan.Workers(exec.Workers(mt.workers))
	// Repair verification runs on the maintainer's persistent partition-
	// backed verifier over the post-batch instance — the pipeline's shared
	// one, or the standalone substrate buildFromCover installed. Its cache
	// stays valid across batches because invalidateTouched evicted the
	// rewritten sets and row stamps age out pre-append entries, so only the
	// touched slice of the partition lattice is repaid per batch.
	pv := mt.pv
	type flip struct {
		rs         *rhsState
		survivors  []relation.AttrSet
		demoted    []relation.AttrSet
		demotedTrk []*coverTracker
		triggered  []*witnessTracker
	}
	var flips []flip
	for _, rs := range mt.rhs {
		var survivors, demoted []relation.AttrSet
		var demotedTrk []*coverTracker
		for _, ct := range rs.cover {
			if ct.valid() {
				survivors = append(survivors, ct.d.LHS)
			} else {
				demoted = append(demoted, ct.d.LHS)
				demotedTrk = append(demotedTrk, ct)
			}
		}
		var triggered []*witnessTracker
		for _, wt := range rs.border {
			if !wt.violating(mt.v) {
				triggered = append(triggered, wt)
			}
		}
		if len(demoted) == 0 && len(triggered) == 0 {
			continue
		}
		flips = append(flips, flip{rs: rs, survivors: survivors, demoted: demoted, demotedTrk: demotedTrk, triggered: triggered})
	}
	// Cross-consequent parallel repair: every flipped consequent's repairer
	// runs as its own task (repairers are disjoint in state — private memo,
	// private border nodes — and the partition cache is sharded), with all
	// verification rendezvousing at the wave scheduler so co-probing
	// consequents share one Π*_X traversal per antecedent set. Outcomes are
	// staged per flip slot and committed in canonical RHS order below;
	// since every verdict is a pure function of the instance, the result is
	// byte-identical to a serial repair for any worker count and either
	// scheduling mode.
	staged := make([]stagedRHS, len(flips))
	errs := make([]error, len(flips))
	scansPer := make([]int, len(flips))
	skipsPer := make([]int, len(flips))
	refinedPer := make([]int, len(flips))
	runOne := func(i int, wv *waveVerifier) {
		f := flips[i]
		r := &repairer{
			mt:         mt,
			wv:         wv,
			rhs:        f.rs.rhs,
			space:      mt.all.Without(f.rs.rhs),
			oldCover:   lhsSets(f.rs.cover),
			survivors:  f.survivors,
			demoted:    f.demoted,
			demotedTrk: f.demotedTrk,
			touched:    touched,
			rhsTouched: touched.Has(f.rs.rhs),
			hasAppend:  hasAppend,
			memo:       make(map[relation.AttrSet]bool),
		}
		newCover, err := r.run(ctx, f.triggered)
		scansPer[i], skipsPer[i], refinedPer[i], errs[i] = r.scans, r.skips, r.refined, err
		staged[i] = stagedRHS{rhs: f.rs.rhs, newCover: newCover, triggered: f.triggered}
	}
	if mt.serialRepair || len(flips) <= 1 {
		for i := range flips {
			wv := newWaveVerifier(ctx, pv, mt.workers, 1)
			runOne(i, wv)
			tr, pr := wv.kernelStats()
			mt.waveTraversals += tr
			mt.waveProbes += pr
			if errs[i] != nil {
				break
			}
		}
	} else {
		wv := newWaveVerifier(ctx, pv, mt.workers, len(flips))
		exec.Tasks(len(flips), func(i int) {
			defer wv.finish()
			runOne(i, wv)
		})
		tr, pr := wv.kernelStats()
		mt.waveTraversals += tr
		mt.waveProbes += pr
	}
	scans, skips, refined := 0, 0, 0
	for i := range flips {
		scans += scansPer[i]
		skips += skipsPer[i]
		refined += refinedPer[i]
	}
	verifySpan.Items(scans)
	verifySpan.Skipped(skips)
	verifySpan.End()
	for i := range flips {
		if errs[i] != nil {
			if rollback != nil {
				rollback()
			}
			return Diff{}, errs[i]
		}
	}
	mt.scans += int64(scans)
	mt.skips += int64(skips)
	mt.refines += int64(refined)
	// Commit — uncancellable: the batch's writes are already in, every
	// remaining effect is deterministic bookkeeping.
	diffSpan := mt.stats.Span("maintain.diff")
	defer diffSpan.End()
	var diff Diff
	for _, st := range staged {
		rs := mt.rhs[st.rhs]
		for _, wt := range st.triggered {
			wt.commitPending()
		}
		oldSets := lhsSets(rs.cover)
		added, removed := diffSetSlices(oldSets, st.newCover)
		if len(added) == 0 && len(removed) == 0 {
			continue // certificates refreshed, cover intact
		}
		for _, x := range added {
			diff.Added = append(diff.Added, core.OFD{LHS: x, RHS: st.rhs})
			if mt.overlays != nil {
				mt.overlays.Acquire(x)
			}
		}
		for _, x := range removed {
			diff.Removed = append(diff.Removed, core.OFD{LHS: x, RHS: st.rhs})
			if mt.overlays != nil {
				mt.overlays.Release(x)
			}
		}
		// New cover tracker list: surviving elements keep their state, new
		// elements are built fresh in parallel.
		prev := make(map[relation.AttrSet]*coverTracker, len(rs.cover))
		for _, ct := range rs.cover {
			prev[ct.d.LHS] = ct
		}
		next := make([]*coverTracker, len(st.newCover))
		var buildIdx []int
		for i, x := range st.newCover {
			if ct := prev[x]; ct != nil {
				next[i] = ct
			} else {
				buildIdx = append(buildIdx, i)
			}
		}
		newCover := st.newCover
		_ = exec.For(context.Background(), len(buildIdx), exec.Workers(mt.workers), func(_, k int) {
			i := buildIdx[k]
			next[i] = newCoverTrackerParts(pv, mt.v, core.OFD{LHS: newCover[i], RHS: st.rhs})
		})
		rs.cover = next
		// Transversals: pure additions extend incrementally (one Berge
		// step per new element); any removal falls back to a fresh
		// computation over the small antichain.
		if len(removed) == 0 {
			for _, x := range added {
				rs.trans = fd.ExtendTransversals(rs.trans, x)
			}
			relation.SortSets(rs.trans)
		} else {
			rs.trans = fd.MinimalHittingSets(st.newCover)
		}
		keep := make(map[relation.AttrSet]*witnessTracker, len(rs.border))
		for _, wt := range rs.border {
			keep[wt.d.LHS] = wt
		}
		// Uncancellable by the same commit contract; exec.For on a
		// background context cannot fail, and buildBorder's only error
		// path is context cancellation.
		_ = mt.buildBorder(context.Background(), pv, rs, keep)
		diffSpan.Items(len(added) + len(removed))
	}
	if len(diff.Added) > 0 || len(diff.Removed) > 0 {
		mt.rebuildFlat()
	}
	mt.epoch++
	diff.Epoch = mt.epoch
	diff.Added.Sort()
	diff.Removed.Sort()
	return diff, nil
}

// diffSetSlices compares two canonical-order antichains and returns the
// sets only in b (added) and only in a (removed).
func diffSetSlices(a, b []relation.AttrSet) (added, removed []relation.AttrSet) {
	inA := make(map[relation.AttrSet]bool, len(a))
	for _, x := range a {
		inA[x] = true
	}
	inB := make(map[relation.AttrSet]bool, len(b))
	for _, x := range b {
		inB[x] = true
		if !inA[x] {
			added = append(added, x)
		}
	}
	for _, x := range a {
		if !inB[x] {
			removed = append(removed, x)
		}
	}
	return added, removed
}
