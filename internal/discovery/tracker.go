package discovery

import (
	"github.com/fastofd/fastofd/internal/core"
	"github.com/fastofd/fastofd/internal/live"
	"github.com/fastofd/fastofd/internal/relation"
)

// cellWrite is one deduplicated effective cell write of a maintained
// batch: Old is the source-state value, New the target-state value. The
// maintainer applies batches forward with the relation already in target
// state, and rolls them back by re-applying the inverted log after
// reverting the relation — trackers therefore read "target" values from
// the relation and "source" values from the log, in both directions. It
// is the monitor's CellWrite: both engines speak the same write log, so
// the merged pipeline hands one batch from engine to engine verbatim.
type cellWrite = core.CellWrite

// forEachRowSegment calls fn once per touched row with that row's write
// segment. writes must be sorted by (row, col).
func forEachRowSegment(writes []cellWrite, fn func(t int, seg []cellWrite)) {
	for i := 0; i < len(writes); {
		j := i + 1
		for j < len(writes) && writes[j].Row == writes[i].Row {
			j++
		}
		fn(writes[i].Row, writes[i:j])
		i = j
	}
}

// batchTracker is the per-candidate incremental state the maintainer fans
// a batch out over: cover trackers (full class state) and witness trackers
// (one pinned violating class). Both fold a sorted effective-write log or
// an appended row into their state with no shared writes, so the fan-out
// parallelizes freely.
type batchTracker interface {
	// scope returns the attribute set whose writes can affect the tracker
	// (LHS ∪ {RHS}); the maintainer skips trackers disjoint from a batch.
	scope() relation.AttrSet
	applyWrites(rel *relation.Relation, v *core.Verifier, writes []cellWrite)
	appendRow(rel *relation.Relation, v *core.Verifier, t int32)
}

// coverTracker maintains the exact equivalence-class state of one cover
// element X → A on a live.ClassIndex — the same key index, per-class
// consequent multisets, and size tracking the monitor's shards run on —
// plus a per-row class assignment and per-class satisfaction flags, so a
// batch's effect on the candidate's validity is known from O(touched
// rows) work. The candidate is valid ⇔ unsat == 0. Singleton keys use the
// shared lone-row encoding and carry no class state (they cannot
// violate), which keeps superkey-shaped trackers at one index entry per
// row and nothing else.
type coverTracker struct {
	d      core.OFD
	cols   []int
	colSet relation.AttrSet // X ∪ {A}

	// ix owns the key index (≥ 0 class id; ≤ −2 lone row −(t+2)), the
	// per-class sizes, and the consequent multisets. No overlay: trackers
	// shrink classes on antecedent writes, which overlays cannot express.
	ix       *live.ClassIndex
	rowClass []int32 // ≥ 0 class id; −1 lone (or floating mid-batch)
	sat      []bool
	unsat    int

	dirty    []int32 // class ids touched by the in-flight batch
	floating []int32 // rows between the leave and join phases
	keyBuf   []byte
	valBuf   []relation.Value
}

// newTrackerIndex builds the tracker's empty class index: sizes tracked,
// no overlay.
func newTrackerIndex(d core.OFD) *live.ClassIndex {
	ix := live.NewClassIndex(d.LHS.Attrs(), d.RHS)
	ix.TrackSizes = true
	return ix
}

// newCoverTrackerParts builds the same tracker state as newCoverTracker
// from a partition-backed verifier over the current instance: the classes
// of Π*_X arrive from a (typically cached) product, so only one key per
// class plus each singleton row pays the encode-and-hash that the from-
// scratch build pays for every row. Class ids follow partition order
// instead of second-occurrence order — internal numbering only, invisible
// outside the tracker.
func newCoverTrackerParts(pv *core.Verifier, v *core.Verifier, d core.OFD) *coverTracker {
	rel := pv.Relation()
	ct := &coverTracker{
		d:      d,
		cols:   d.LHS.Attrs(),
		colSet: d.LHS.With(d.RHS),
		ix:     newTrackerIndex(d),
	}
	p := pv.Partitions().GetOverlay(d.LHS)
	n := rel.NumRows()
	nc := p.NumClasses()
	ix := ct.ix
	ix.Keys = make(map[string]int32, nc+(n-p.Size())+1)
	ct.rowClass = make([]int32, n)
	for t := range ct.rowClass {
		ct.rowClass[t] = -1
	}
	col := rel.Column(d.RHS)
	ix.Sizes = make([]int32, nc)
	ix.Counts = make([][]live.ValCount, nc)
	ct.sat = make([]bool, nc)
	covered := make([]bool, n)
	for i := 0; i < nc; i++ {
		class := p.Class(i)
		ct.keyBuf = core.EncodeLHSKey(rel, ct.cols, int(class[0]), ct.keyBuf)
		ix.Keys[string(ct.keyBuf)] = int32(i)
		ix.Sizes[i] = int32(len(class))
		vals := make([]live.ValCount, 0, 2)
		for _, t := range class {
			ct.rowClass[t] = int32(i)
			covered[t] = true
			vals = live.Bump(vals, col.At(int(t)), 1)
		}
		ix.Counts[i] = vals
	}
	// Rows outside every stripped class are singleton keys: lone entries
	// with no class state, and no two of them can collide on a key.
	for t := 0; t < n; t++ {
		if covered[t] {
			continue
		}
		ct.keyBuf = core.EncodeLHSKey(rel, ct.cols, t, ct.keyBuf)
		ix.Keys[string(ct.keyBuf)] = live.LoneRow(int32(t))
	}
	for ci := range ix.Sizes {
		ct.sat[ci] = ct.classSatisfied(v, int32(ci))
		if !ct.sat[ci] {
			ct.unsat++
		}
	}
	return ct
}

func newCoverTracker(rel *relation.Relation, v *core.Verifier, d core.OFD) *coverTracker {
	ct := &coverTracker{
		d:      d,
		cols:   d.LHS.Attrs(),
		colSet: d.LHS.With(d.RHS),
		ix:     newTrackerIndex(d),
	}
	n := rel.NumRows()
	ct.ix.Keys = make(map[string]int32, n/2+1)
	ct.rowClass = make([]int32, 0, n)
	for t := 0; t < n; t++ {
		ci, partner, kind := ct.ix.Join(rel, int32(t))
		switch kind {
		case live.JoinLone:
			ct.rowClass = append(ct.rowClass, -1)
		case live.JoinBirth:
			ct.rowClass[partner] = ci
			ct.rowClass = append(ct.rowClass, ci)
			ct.sat = append(ct.sat, true)
		default:
			ct.rowClass = append(ct.rowClass, ci)
		}
	}
	for ci := range ct.ix.Sizes {
		ct.sat[ci] = ct.classSatisfied(v, int32(ci))
		if !ct.sat[ci] {
			ct.unsat++
		}
	}
	return ct
}

func (ct *coverTracker) scope() relation.AttrSet { return ct.colSet }

// hydrate builds the live key index from the frozen snapshot form. No-op
// on live-built (or already hydrated) trackers.
func (ct *coverTracker) hydrate() {
	if ct.ix.NeedsHydrate() {
		ct.ix.Hydrate()
	}
}

// valid reports the tracked candidate's current validity.
func (ct *coverTracker) valid() bool { return ct.unsat == 0 }

func (ct *coverTracker) classSatisfied(v *core.Verifier, ci int32) bool {
	if ct.ix.Sizes[ci] <= 1 || len(ct.ix.Counts[ci]) <= 1 {
		return true // singleton, empty, or syntactically constant (FD case)
	}
	ct.valBuf = live.Distinct(ct.ix.Counts[ci], ct.valBuf)
	return v.ValuesSatisfied(ct.d.RHS, ct.valBuf)
}

// sourceKey encodes row t's antecedent projection in the batch's source
// state: written cells read their logged old value, untouched cells the
// (target-state) relation, which coincides with the source state for them.
func (ct *coverTracker) sourceKey(rel *relation.Relation, seg []cellWrite, t int) string {
	ct.keyBuf = ct.keyBuf[:0]
	for _, c := range ct.cols {
		val := rel.Value(t, c)
		for _, wr := range seg {
			if wr.Col == c {
				val = wr.Old
				break
			}
		}
		ct.keyBuf = append(ct.keyBuf, byte(val), byte(val>>8), byte(val>>16), byte(val>>24))
	}
	return string(ct.keyBuf)
}

// applyWrites folds one batch of effective cell writes into the tracker.
// The relation must already hold the target state; writes carry the source
// value per cell and must be sorted by (row, col). Re-applying the
// inverted log after reverting the relation rolls the batch back: the
// transitions are symmetric, so validity state is restored exactly (a
// class born and emptied along the way lingers at size zero, which is
// semantically a non-class).
func (ct *coverTracker) applyWrites(rel *relation.Relation, v *core.Verifier, writes []cellWrite) {
	ct.dirty = ct.dirty[:0]
	ct.floating = ct.floating[:0]
	ix := ct.ix
	// Phase 1 — leave: rows whose antecedent projection changed exit their
	// source-state key group; consequent-only changes adjust multisets in
	// place.
	forEachRowSegment(writes, func(t int, seg []cellWrite) {
		xChanged, hadA := false, false
		var aOld relation.Value
		for _, wr := range seg {
			if wr.Col == ct.d.RHS {
				hadA, aOld = true, wr.Old
			} else if ct.d.LHS.Has(wr.Col) {
				xChanged = true
			}
		}
		if !xChanged {
			if !hadA {
				return
			}
			if ci := ct.rowClass[t]; ci >= 0 {
				ix.BumpVal(ci, aOld, rel.Value(t, ct.d.RHS))
				ct.dirty = append(ct.dirty, ci)
			}
			return
		}
		preA := rel.Value(t, ct.d.RHS)
		if hadA {
			preA = aOld
		}
		if ci := ct.rowClass[t]; ci >= 0 {
			ix.Leave(ci, preA)
			ct.dirty = append(ct.dirty, ci)
			ct.rowClass[t] = -1
		} else {
			// Lone row: its index entry points at t and is now stale.
			delete(ix.Keys, ct.sourceKey(rel, seg, t))
		}
		ct.floating = append(ct.floating, int32(t))
	})
	// Phase 2 — join: floating rows enter their target-state key group.
	// All reads are target-state (the relation), so ordering within the
	// phase only affects internal ids, never class contents.
	for _, t32 := range ct.floating {
		ct.keyBuf = core.EncodeLHSKey(rel, ct.cols, int(t32), ct.keyBuf)
		ci, partner, kind := ix.JoinKey(rel, ct.keyBuf, t32)
		switch kind {
		case live.JoinLone:
			continue
		case live.JoinBirth:
			ct.rowClass[partner] = ci
			ct.sat = append(ct.sat, true)
		}
		ct.rowClass[t32] = ci
		ct.dirty = append(ct.dirty, ci)
	}
	ct.recheckDirty(v)
}

// recheckDirty re-verifies the batch's dirty classes (deduplicated) and
// maintains the unsat counter.
func (ct *coverTracker) recheckDirty(v *core.Verifier) {
	if len(ct.dirty) == 0 {
		return
	}
	// Sort + unique: a class touched several times re-verifies once.
	for i := 1; i < len(ct.dirty); i++ {
		for j := i; j > 0 && ct.dirty[j] < ct.dirty[j-1]; j-- {
			ct.dirty[j], ct.dirty[j-1] = ct.dirty[j-1], ct.dirty[j]
		}
	}
	prev := int32(-1)
	for _, ci := range ct.dirty {
		if ci == prev {
			continue
		}
		prev = ci
		now := ct.classSatisfied(v, ci)
		if now != ct.sat[ci] {
			ct.sat[ci] = now
			if now {
				ct.unsat--
			} else {
				ct.unsat++
			}
		}
	}
}

func (ct *coverTracker) appendRow(rel *relation.Relation, v *core.Verifier, t int32) {
	ct.dirty = ct.dirty[:0]
	ci, partner, kind := ct.ix.Join(rel, t)
	switch kind {
	case live.JoinLone:
		ct.rowClass = append(ct.rowClass, -1)
		return
	case live.JoinBirth:
		ct.rowClass[partner] = ci
		ct.sat = append(ct.sat, true)
	}
	ct.rowClass = append(ct.rowClass, ci)
	ct.dirty = append(ct.dirty, ci)
	ct.recheckDirty(v)
}

// witnessTracker pins one violating equivalence class — a certificate of
// invalidity — of a negative-border node W → A (a maximal invalid
// candidate). It maintains the exact consequent multiset of the rows
// matching the witness key, so a batch leaves the candidate provably
// invalid for O(touched rows) work whenever the certificate class still
// violates; only a broken certificate (the class became satisfied, shrank
// below two tuples, or collapsed to one value) forces a full rescan.
// Appends can never break a certificate: joining a violating class can
// only grow its distinct-value set, and satisfiability is antitone in it.
type witnessTracker struct {
	d      core.OFD
	cols   []int
	colSet relation.AttrSet // W ∪ {A}

	key  string // encoded antecedent key of the witness class
	size int32
	vals []live.ValCount

	keyBuf []byte
	valBuf []relation.Value

	// Staged replacement certificate: a batch that broke the witness but
	// left the node invalid found a new violating class during the verify
	// phase; it lands in commit, never inside the cancellable window.
	pendingKey  string
	pendingSize int32
	pendingVals []live.ValCount
	hasPending  bool
}

func newWitnessTracker(d core.OFD, key string, size int32, vals []live.ValCount) *witnessTracker {
	return &witnessTracker{
		d:      d,
		cols:   d.LHS.Attrs(),
		colSet: d.LHS.With(d.RHS),
		key:    key,
		size:   size,
		vals:   vals,
	}
}

func (wt *witnessTracker) scope() relation.AttrSet { return wt.colSet }

// violating reports whether the certificate class still violates W → A.
func (wt *witnessTracker) violating(v *core.Verifier) bool {
	if wt.size <= 1 || len(wt.vals) <= 1 {
		return false
	}
	wt.valBuf = live.Distinct(wt.vals, wt.valBuf)
	return !v.ValuesSatisfied(wt.d.RHS, wt.valBuf)
}

// stagePending stages a replacement certificate found by a full rescan.
func (wt *witnessTracker) stagePending(key string, size int32, vals []live.ValCount) {
	wt.pendingKey, wt.pendingSize, wt.pendingVals = key, size, vals
	wt.hasPending = true
}

// commitPending installs the staged certificate (no-op without one).
func (wt *witnessTracker) commitPending() {
	if !wt.hasPending {
		return
	}
	wt.key, wt.size, wt.vals = wt.pendingKey, wt.pendingSize, wt.pendingVals
	wt.clearPending()
}

func (wt *witnessTracker) clearPending() {
	wt.pendingKey, wt.pendingSize, wt.pendingVals = "", 0, nil
	wt.hasPending = false
}

// sourceInClass reports whether row t's source-state antecedent projection
// matches the witness key (written cells read logged old values).
func (wt *witnessTracker) sourceInClass(rel *relation.Relation, seg []cellWrite, t int) bool {
	for k, c := range wt.cols {
		val := rel.Value(t, c)
		for _, wr := range seg {
			if wr.Col == c {
				val = wr.Old
				break
			}
		}
		off := k * 4
		if wt.key[off] != byte(val) || wt.key[off+1] != byte(val>>8) ||
			wt.key[off+2] != byte(val>>16) || wt.key[off+3] != byte(val>>24) {
			return false
		}
	}
	return true
}

// applyWrites maintains the witness class's membership and consequent
// multiset under one effective-write log (same conventions and rollback
// symmetry as coverTracker.applyWrites).
func (wt *witnessTracker) applyWrites(rel *relation.Relation, v *core.Verifier, writes []cellWrite) {
	forEachRowSegment(writes, func(t int, seg []cellWrite) {
		relevant := false
		hadA := false
		var aOld relation.Value
		for _, wr := range seg {
			if wr.Col == wt.d.RHS {
				hadA, aOld = true, wr.Old
				relevant = true
			} else if wt.d.LHS.Has(wr.Col) {
				relevant = true
			}
		}
		if !relevant {
			return
		}
		srcIn := wt.sourceInClass(rel, seg, t)
		wt.keyBuf = core.EncodeLHSKey(rel, wt.cols, t, wt.keyBuf)
		tgtIn := string(wt.keyBuf) == wt.key
		preA := rel.Value(t, wt.d.RHS)
		if hadA {
			preA = aOld
		}
		switch {
		case srcIn && tgtIn:
			if hadA {
				wt.vals = live.Bump(live.Bump(wt.vals, preA, -1), rel.Value(t, wt.d.RHS), 1)
			}
		case srcIn && !tgtIn:
			wt.size--
			wt.vals = live.Bump(wt.vals, preA, -1)
		case !srcIn && tgtIn:
			wt.size++
			wt.vals = live.Bump(wt.vals, rel.Value(t, wt.d.RHS), 1)
		}
	})
}

func (wt *witnessTracker) appendRow(rel *relation.Relation, v *core.Verifier, t int32) {
	wt.keyBuf = core.EncodeLHSKey(rel, wt.cols, int(t), wt.keyBuf)
	if string(wt.keyBuf) != wt.key {
		return
	}
	wt.size++
	wt.vals = live.Bump(wt.vals, rel.Value(int(t), wt.d.RHS), 1)
}

// scanResult is a one-shot verification of a candidate against the
// current relation: overall validity plus, when invalid and requested, the
// violating class with the smallest representative row — the
// deterministic certificate choice.
type scanResult struct {
	valid   bool
	witKey  string
	witSize int32
	witVals []live.ValCount
}

// witnessScanParts is scanCandidate(needWitness=true) answered from the
// verifier's partition cache: the classes of Π*_X come from a (typically
// cached) product instead of re-hashing every row. Partition classes are
// ordered by smallest representative, so the first violating class found
// is exactly the one scanCandidate pins, and the walk stops there.
func witnessScanParts(pv *core.Verifier, d core.OFD) scanResult {
	rel := pv.Relation()
	p := pv.Partitions().GetOverlay(d.LHS)
	col := rel.Column(d.RHS)
	res := scanResult{valid: true}
	var vals []live.ValCount
	var scratch []relation.Value
	for i := 0; i < p.NumClasses(); i++ {
		class := p.Class(i)
		vals = vals[:0]
		for _, t := range class {
			vals = live.Bump(vals, col.At(int(t)), 1)
		}
		if len(vals) <= 1 {
			continue
		}
		scratch = live.Distinct(vals, scratch)
		if pv.ValuesSatisfied(d.RHS, scratch) {
			continue
		}
		res.valid = false
		res.witKey = string(core.EncodeLHSKey(rel, d.LHS.Attrs(), int(class[0]), nil))
		res.witSize = int32(len(class))
		res.witVals = append([]live.ValCount(nil), vals...)
		return res
	}
	return res
}

// witnessScanMulti is witnessScanParts for several consequents over ONE
// shared antecedent: a single partition fetch and class walk answers every
// rhs, each result byte-identical to witnessScanParts(pv, OFD{lhs, rhs[k]})
// — the same smallest-representative class order pins the same
// deterministic certificate, and each consequent leaves the walk at its
// first violating class. The batched repair scheduler routes triggered-
// border rescans through this so co-probing consequents share the
// partition traversal exactly as HoldsSynMulti shares it for validity.
func witnessScanMulti(pv *core.Verifier, lhs relation.AttrSet, rhs []int, buf *relation.ProductBuffer) []scanResult {
	rel := pv.Relation()
	p := pv.Partitions().GetOverlayWith(lhs, buf)
	lhsCols := lhs.Attrs()
	out := make([]scanResult, len(rhs))
	pending := make([]int, 0, len(rhs))
	for k := range rhs {
		out[k].valid = true
		pending = append(pending, k)
	}
	var vals []live.ValCount
	var scratch []relation.Value
	for i := 0; i < p.NumClasses() && len(pending) > 0; i++ {
		class := p.Class(i)
		kept := pending[:0]
		for _, k := range pending {
			col := rel.Column(rhs[k])
			vals = vals[:0]
			for _, t := range class {
				vals = live.Bump(vals, col.At(int(t)), 1)
			}
			if len(vals) <= 1 {
				kept = append(kept, k)
				continue
			}
			scratch = live.Distinct(vals, scratch)
			if pv.ValuesSatisfied(rhs[k], scratch) {
				kept = append(kept, k)
				continue
			}
			out[k].valid = false
			out[k].witKey = string(core.EncodeLHSKey(rel, lhsCols, int(class[0]), nil))
			out[k].witSize = int32(len(class))
			out[k].witVals = append([]live.ValCount(nil), vals...)
		}
		pending = kept
	}
	return out
}

// scanCandidate verifies X → A from scratch in one pass over the
// relation: group rows by encoded antecedent key, then test each
// multi-tuple, multi-value group for a common interpretation. This is the
// maintainer's untracked-node verifier; it reads only the relation and the
// verifier's monotone names tables, so it is safe under any sequence of
// prior in-place mutations (no partition cache involved). The lattice
// optimizations degenerate into it naturally: a superkey antecedent
// produces only singleton groups (Opt-3) and an FD-satisfying class has a
// single distinct value (Opt-4), both skipped without touching the
// ontology.
func scanCandidate(rel *relation.Relation, v *core.Verifier, d core.OFD, needWitness bool) scanResult {
	type grp struct {
		size int32
		vals []live.ValCount
		rep  int32
	}
	cols := d.LHS.Attrs()
	groups := make(map[string]*grp, 64)
	col := rel.Column(d.RHS)
	n := rel.NumRows()
	var buf []byte
	for t := 0; t < n; t++ {
		buf = core.EncodeLHSKey(rel, cols, t, buf)
		g := groups[string(buf)]
		if g == nil {
			g = &grp{rep: int32(t)}
			groups[string(buf)] = g
		}
		g.size++
		g.vals = live.Bump(g.vals, col.At(int(t)), 1)
	}
	res := scanResult{valid: true}
	var scratch []relation.Value
	bestRep := int32(-1)
	for key, g := range groups {
		if g.size <= 1 || len(g.vals) <= 1 {
			continue
		}
		scratch = live.Distinct(g.vals, scratch)
		if v.ValuesSatisfied(d.RHS, scratch) {
			continue
		}
		res.valid = false
		if !needWitness {
			return res
		}
		if bestRep < 0 || g.rep < bestRep {
			bestRep = g.rep
			res.witKey = key
			res.witSize = g.size
			res.witVals = g.vals
		}
	}
	return res
}
