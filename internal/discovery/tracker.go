package discovery

import (
	"github.com/fastofd/fastofd/internal/core"
	"github.com/fastofd/fastofd/internal/relation"
)

// cellWrite is one deduplicated effective cell write of a maintained
// batch: old is the source-state value, new the target-state value. The
// maintainer applies batches forward with the relation already in target
// state, and rolls them back by re-applying the inverted log after
// reverting the relation — trackers therefore read "target" values from
// the relation and "source" values from the log, in both directions.
type cellWrite struct {
	row, col int
	old, new relation.Value
}

// forEachRowSegment calls fn once per touched row with that row's write
// segment. writes must be sorted by (row, col).
func forEachRowSegment(writes []cellWrite, fn func(t int, seg []cellWrite)) {
	for i := 0; i < len(writes); {
		j := i + 1
		for j < len(writes) && writes[j].row == writes[i].row {
			j++
		}
		fn(writes[i].row, writes[i:j])
		i = j
	}
}

// vc is one distinct consequent value of a tracked class with its
// multiplicity — the same linear-probed multiset shape the monitor keeps
// per class, so re-verification is O(distinct values), never O(class size).
type vc struct {
	val relation.Value
	n   int32
}

// bumpVC adjusts v's multiplicity by delta, dropping the entry at zero.
func bumpVC(pairs []vc, v relation.Value, delta int32) []vc {
	for k := range pairs {
		if pairs[k].val == v {
			pairs[k].n += delta
			if pairs[k].n == 0 {
				pairs[k] = pairs[len(pairs)-1]
				pairs = pairs[:len(pairs)-1]
			}
			return pairs
		}
	}
	return append(pairs, vc{v, delta})
}

// distinctVals extracts the multiset's distinct values into scratch.
func distinctVals(pairs []vc, scratch []relation.Value) []relation.Value {
	scratch = scratch[:0]
	for _, p := range pairs {
		scratch = append(scratch, p.val)
	}
	return scratch
}

// lone encodes row t as a lone-row LHS-index entry, mirroring the
// monitor's encoding: class ids are ≥ 0, lone rows ≤ −2 as −(t+2).
func lone(t int32) int32 { return -t - 2 }

// batchTracker is the per-candidate incremental state the maintainer fans
// a batch out over: cover trackers (full class state) and witness trackers
// (one pinned violating class). Both fold a sorted effective-write log or
// an appended row into their state with no shared writes, so the fan-out
// parallelizes freely.
type batchTracker interface {
	// scope returns the attribute set whose writes can affect the tracker
	// (LHS ∪ {RHS}); the maintainer skips trackers disjoint from a batch.
	scope() relation.AttrSet
	applyWrites(rel *relation.Relation, v *core.Verifier, writes []cellWrite)
	appendRow(rel *relation.Relation, v *core.Verifier, t int32)
}

// coverTracker maintains the exact equivalence-class state of one cover
// element X → A: an LHS-key index over the antecedent projection, per-row
// class assignment, and per-class consequent multisets, so a batch's
// effect on the candidate's validity is known from O(touched rows) work.
// The candidate is valid ⇔ unsat == 0. Singleton keys use the monitor's
// lone-row encoding and carry no class state (they cannot violate), which
// keeps superkey-shaped trackers at one index entry per row and nothing
// else.
type coverTracker struct {
	d      core.OFD
	cols   []int
	colSet relation.AttrSet // X ∪ {A}

	keyIdx   map[string]int32 // ≥ 0 class id; ≤ −2 lone row −(t+2)
	rowClass []int32          // ≥ 0 class id; −1 lone (or floating mid-batch)
	size     []int32
	vals     [][]vc
	sat      []bool
	unsat    int

	// frozen* hold the snapshot-restored key index (sorted concatenated
	// fixed-width keys plus parallel encoded values) until the first batch
	// hydrates keyIdx — restore stays O(memcpy) and a read-only restored
	// maintainer never pays the map build. Nil on live-built trackers.
	frozenKeys []byte
	frozenVals []int32

	dirty    []int32 // class ids touched by the in-flight batch
	floating []int32 // rows between the leave and join phases
	keyBuf   []byte
	valBuf   []relation.Value
}

// newCoverTrackerParts builds the same tracker state as newCoverTracker
// from a partition-backed verifier over the current instance: the classes
// of Π*_X arrive from a (typically cached) product, so only one key per
// class plus each singleton row pays the encode-and-hash that the from-
// scratch build pays for every row. Class ids follow partition order
// instead of second-occurrence order — internal numbering only, invisible
// outside the tracker.
func newCoverTrackerParts(pv *core.Verifier, v *core.Verifier, d core.OFD) *coverTracker {
	rel := pv.Relation()
	ct := &coverTracker{
		d:      d,
		cols:   d.LHS.Attrs(),
		colSet: d.LHS.With(d.RHS),
	}
	p := pv.Partitions().Get(d.LHS)
	n := rel.NumRows()
	nc := p.NumClasses()
	ct.keyIdx = make(map[string]int32, nc+(n-p.Size())+1)
	ct.rowClass = make([]int32, n)
	for t := range ct.rowClass {
		ct.rowClass[t] = -1
	}
	col := rel.Column(d.RHS)
	ct.size = make([]int32, nc)
	ct.vals = make([][]vc, nc)
	ct.sat = make([]bool, nc)
	covered := make([]bool, n)
	for i := 0; i < nc; i++ {
		class := p.Class(i)
		ct.keyBuf = core.EncodeLHSKey(rel, ct.cols, int(class[0]), ct.keyBuf)
		ct.keyIdx[string(ct.keyBuf)] = int32(i)
		ct.size[i] = int32(len(class))
		vals := make([]vc, 0, 2)
		for _, t := range class {
			ct.rowClass[t] = int32(i)
			covered[t] = true
			vals = bumpVC(vals, col.At(int(t)), 1)
		}
		ct.vals[i] = vals
	}
	// Rows outside every stripped class are singleton keys: lone entries
	// with no class state, and no two of them can collide on a key.
	for t := 0; t < n; t++ {
		if covered[t] {
			continue
		}
		ct.keyBuf = core.EncodeLHSKey(rel, ct.cols, t, ct.keyBuf)
		ct.keyIdx[string(ct.keyBuf)] = lone(int32(t))
	}
	for ci := range ct.size {
		ct.sat[ci] = ct.classSatisfied(v, int32(ci))
		if !ct.sat[ci] {
			ct.unsat++
		}
	}
	return ct
}

func newCoverTracker(rel *relation.Relation, v *core.Verifier, d core.OFD) *coverTracker {
	ct := &coverTracker{
		d:      d,
		cols:   d.LHS.Attrs(),
		colSet: d.LHS.With(d.RHS),
	}
	n := rel.NumRows()
	ct.keyIdx = make(map[string]int32, n/2+1)
	ct.rowClass = make([]int32, 0, n)
	col := rel.Column(d.RHS)
	for t := 0; t < n; t++ {
		ct.keyBuf = core.EncodeLHSKey(rel, ct.cols, t, ct.keyBuf)
		enc, seen := ct.keyIdx[string(ct.keyBuf)]
		switch {
		case !seen:
			ct.keyIdx[string(ct.keyBuf)] = lone(int32(t))
			ct.rowClass = append(ct.rowClass, -1)
		case enc <= -2:
			r := -enc - 2
			ci := int32(len(ct.size))
			ct.keyIdx[string(ct.keyBuf)] = ci
			ct.rowClass[r] = ci
			ct.rowClass = append(ct.rowClass, ci)
			ct.size = append(ct.size, 2)
			ct.vals = append(ct.vals, bumpVC(bumpVC(make([]vc, 0, 2), col.At(int(r)), 1), col.At(t), 1))
			ct.sat = append(ct.sat, true)
		default:
			ct.rowClass = append(ct.rowClass, enc)
			ct.size[enc]++
			ct.vals[enc] = bumpVC(ct.vals[enc], col.At(int(t)), 1)
		}
	}
	for ci := range ct.size {
		ct.sat[ci] = ct.classSatisfied(v, int32(ci))
		if !ct.sat[ci] {
			ct.unsat++
		}
	}
	return ct
}

func (ct *coverTracker) scope() relation.AttrSet { return ct.colSet }

// hydrate builds the live key index from the frozen snapshot form: one
// string conversion for the whole key blob, map keys sliced out of it.
// No-op on live-built (or already hydrated) trackers.
func (ct *coverTracker) hydrate() {
	if ct.frozenKeys == nil && ct.frozenVals == nil {
		return
	}
	width := 4 * len(ct.cols)
	blob := string(ct.frozenKeys)
	ct.keyIdx = make(map[string]int32, len(ct.frozenVals))
	for i, v := range ct.frozenVals {
		ct.keyIdx[blob[i*width:(i+1)*width]] = v
	}
	ct.frozenKeys, ct.frozenVals = nil, nil
}

// valid reports the tracked candidate's current validity.
func (ct *coverTracker) valid() bool { return ct.unsat == 0 }

func (ct *coverTracker) classSatisfied(v *core.Verifier, ci int32) bool {
	if ct.size[ci] <= 1 || len(ct.vals[ci]) <= 1 {
		return true // singleton, empty, or syntactically constant (FD case)
	}
	ct.valBuf = distinctVals(ct.vals[ci], ct.valBuf)
	return v.ValuesSatisfied(ct.d.RHS, ct.valBuf)
}

// sourceKey encodes row t's antecedent projection in the batch's source
// state: written cells read their logged old value, untouched cells the
// (target-state) relation, which coincides with the source state for them.
func (ct *coverTracker) sourceKey(rel *relation.Relation, seg []cellWrite, t int) string {
	ct.keyBuf = ct.keyBuf[:0]
	for _, c := range ct.cols {
		val := rel.Value(t, c)
		for _, wr := range seg {
			if wr.col == c {
				val = wr.old
				break
			}
		}
		ct.keyBuf = append(ct.keyBuf, byte(val), byte(val>>8), byte(val>>16), byte(val>>24))
	}
	return string(ct.keyBuf)
}

// applyWrites folds one batch of effective cell writes into the tracker.
// The relation must already hold the target state; writes carry the source
// value per cell and must be sorted by (row, col). Re-applying the
// inverted log after reverting the relation rolls the batch back: the
// transitions are symmetric, so validity state is restored exactly (a
// class born and emptied along the way lingers at size zero, which is
// semantically a non-class).
func (ct *coverTracker) applyWrites(rel *relation.Relation, v *core.Verifier, writes []cellWrite) {
	ct.dirty = ct.dirty[:0]
	ct.floating = ct.floating[:0]
	// Phase 1 — leave: rows whose antecedent projection changed exit their
	// source-state key group; consequent-only changes adjust multisets in
	// place.
	forEachRowSegment(writes, func(t int, seg []cellWrite) {
		xChanged, hadA := false, false
		var aOld relation.Value
		for _, wr := range seg {
			if wr.col == ct.d.RHS {
				hadA, aOld = true, wr.old
			} else if ct.d.LHS.Has(wr.col) {
				xChanged = true
			}
		}
		if !xChanged {
			if !hadA {
				return
			}
			if ci := ct.rowClass[t]; ci >= 0 {
				ct.vals[ci] = bumpVC(bumpVC(ct.vals[ci], aOld, -1), rel.Value(t, ct.d.RHS), 1)
				ct.dirty = append(ct.dirty, ci)
			}
			return
		}
		preA := rel.Value(t, ct.d.RHS)
		if hadA {
			preA = aOld
		}
		if ci := ct.rowClass[t]; ci >= 0 {
			ct.size[ci]--
			ct.vals[ci] = bumpVC(ct.vals[ci], preA, -1)
			ct.dirty = append(ct.dirty, ci)
			ct.rowClass[t] = -1
		} else {
			// Lone row: its index entry points at t and is now stale.
			delete(ct.keyIdx, ct.sourceKey(rel, seg, t))
		}
		ct.floating = append(ct.floating, int32(t))
	})
	// Phase 2 — join: floating rows enter their target-state key group.
	// All reads are target-state (the relation), so ordering within the
	// phase only affects internal ids, never class contents.
	for _, t32 := range ct.floating {
		t := int(t32)
		ct.keyBuf = core.EncodeLHSKey(rel, ct.cols, t, ct.keyBuf)
		postA := rel.Value(t, ct.d.RHS)
		enc, seen := ct.keyIdx[string(ct.keyBuf)]
		switch {
		case !seen:
			ct.keyIdx[string(ct.keyBuf)] = lone(t32)
		case enc <= -2:
			r := -enc - 2
			ci := int32(len(ct.size))
			ct.keyIdx[string(ct.keyBuf)] = ci
			ct.rowClass[r] = ci
			ct.rowClass[t] = ci
			ct.size = append(ct.size, 2)
			ct.vals = append(ct.vals, bumpVC(bumpVC(make([]vc, 0, 2), rel.Value(int(r), ct.d.RHS), 1), postA, 1))
			ct.sat = append(ct.sat, true)
			ct.dirty = append(ct.dirty, ci)
		default:
			ct.rowClass[t] = enc
			ct.size[enc]++
			ct.vals[enc] = bumpVC(ct.vals[enc], postA, 1)
			ct.dirty = append(ct.dirty, enc)
		}
	}
	ct.recheckDirty(v)
}

// recheckDirty re-verifies the batch's dirty classes (deduplicated) and
// maintains the unsat counter.
func (ct *coverTracker) recheckDirty(v *core.Verifier) {
	if len(ct.dirty) == 0 {
		return
	}
	// Sort + unique: a class touched several times re-verifies once.
	for i := 1; i < len(ct.dirty); i++ {
		for j := i; j > 0 && ct.dirty[j] < ct.dirty[j-1]; j-- {
			ct.dirty[j], ct.dirty[j-1] = ct.dirty[j-1], ct.dirty[j]
		}
	}
	prev := int32(-1)
	for _, ci := range ct.dirty {
		if ci == prev {
			continue
		}
		prev = ci
		now := ct.classSatisfied(v, ci)
		if now != ct.sat[ci] {
			ct.sat[ci] = now
			if now {
				ct.unsat--
			} else {
				ct.unsat++
			}
		}
	}
}

func (ct *coverTracker) appendRow(rel *relation.Relation, v *core.Verifier, t int32) {
	ct.keyBuf = core.EncodeLHSKey(rel, ct.cols, int(t), ct.keyBuf)
	postA := rel.Value(int(t), ct.d.RHS)
	enc, seen := ct.keyIdx[string(ct.keyBuf)]
	ct.dirty = ct.dirty[:0]
	switch {
	case !seen:
		ct.keyIdx[string(ct.keyBuf)] = lone(t)
		ct.rowClass = append(ct.rowClass, -1)
	case enc <= -2:
		r := -enc - 2
		ci := int32(len(ct.size))
		ct.keyIdx[string(ct.keyBuf)] = ci
		ct.rowClass[r] = ci
		ct.rowClass = append(ct.rowClass, ci)
		ct.size = append(ct.size, 2)
		ct.vals = append(ct.vals, bumpVC(bumpVC(make([]vc, 0, 2), rel.Value(int(r), ct.d.RHS), 1), postA, 1))
		ct.sat = append(ct.sat, true)
		ct.dirty = append(ct.dirty, ci)
	default:
		ct.rowClass = append(ct.rowClass, enc)
		ct.size[enc]++
		ct.vals[enc] = bumpVC(ct.vals[enc], postA, 1)
		ct.dirty = append(ct.dirty, enc)
	}
	ct.recheckDirty(v)
}

// witnessTracker pins one violating equivalence class — a certificate of
// invalidity — of a negative-border node W → A (a maximal invalid
// candidate). It maintains the exact consequent multiset of the rows
// matching the witness key, so a batch leaves the candidate provably
// invalid for O(touched rows) work whenever the certificate class still
// violates; only a broken certificate (the class became satisfied, shrank
// below two tuples, or collapsed to one value) forces a full rescan.
// Appends can never break a certificate: joining a violating class can
// only grow its distinct-value set, and satisfiability is antitone in it.
type witnessTracker struct {
	d      core.OFD
	cols   []int
	colSet relation.AttrSet // W ∪ {A}

	key  string // encoded antecedent key of the witness class
	size int32
	vals []vc

	keyBuf []byte
	valBuf []relation.Value

	// Staged replacement certificate: a batch that broke the witness but
	// left the node invalid found a new violating class during the verify
	// phase; it lands in commit, never inside the cancellable window.
	pendingKey  string
	pendingSize int32
	pendingVals []vc
	hasPending  bool
}

func newWitnessTracker(d core.OFD, key string, size int32, vals []vc) *witnessTracker {
	return &witnessTracker{
		d:      d,
		cols:   d.LHS.Attrs(),
		colSet: d.LHS.With(d.RHS),
		key:    key,
		size:   size,
		vals:   vals,
	}
}

func (wt *witnessTracker) scope() relation.AttrSet { return wt.colSet }

// violating reports whether the certificate class still violates W → A.
func (wt *witnessTracker) violating(v *core.Verifier) bool {
	if wt.size <= 1 || len(wt.vals) <= 1 {
		return false
	}
	wt.valBuf = distinctVals(wt.vals, wt.valBuf)
	return !v.ValuesSatisfied(wt.d.RHS, wt.valBuf)
}

// stagePending stages a replacement certificate found by a full rescan.
func (wt *witnessTracker) stagePending(key string, size int32, vals []vc) {
	wt.pendingKey, wt.pendingSize, wt.pendingVals = key, size, vals
	wt.hasPending = true
}

// commitPending installs the staged certificate (no-op without one).
func (wt *witnessTracker) commitPending() {
	if !wt.hasPending {
		return
	}
	wt.key, wt.size, wt.vals = wt.pendingKey, wt.pendingSize, wt.pendingVals
	wt.clearPending()
}

func (wt *witnessTracker) clearPending() {
	wt.pendingKey, wt.pendingSize, wt.pendingVals = "", 0, nil
	wt.hasPending = false
}

// sourceInClass reports whether row t's source-state antecedent projection
// matches the witness key (written cells read logged old values).
func (wt *witnessTracker) sourceInClass(rel *relation.Relation, seg []cellWrite, t int) bool {
	for k, c := range wt.cols {
		val := rel.Value(t, c)
		for _, wr := range seg {
			if wr.col == c {
				val = wr.old
				break
			}
		}
		off := k * 4
		if wt.key[off] != byte(val) || wt.key[off+1] != byte(val>>8) ||
			wt.key[off+2] != byte(val>>16) || wt.key[off+3] != byte(val>>24) {
			return false
		}
	}
	return true
}

// applyWrites maintains the witness class's membership and consequent
// multiset under one effective-write log (same conventions and rollback
// symmetry as coverTracker.applyWrites).
func (wt *witnessTracker) applyWrites(rel *relation.Relation, v *core.Verifier, writes []cellWrite) {
	forEachRowSegment(writes, func(t int, seg []cellWrite) {
		relevant := false
		hadA := false
		var aOld relation.Value
		for _, wr := range seg {
			if wr.col == wt.d.RHS {
				hadA, aOld = true, wr.old
				relevant = true
			} else if wt.d.LHS.Has(wr.col) {
				relevant = true
			}
		}
		if !relevant {
			return
		}
		srcIn := wt.sourceInClass(rel, seg, t)
		wt.keyBuf = core.EncodeLHSKey(rel, wt.cols, t, wt.keyBuf)
		tgtIn := string(wt.keyBuf) == wt.key
		preA := rel.Value(t, wt.d.RHS)
		if hadA {
			preA = aOld
		}
		switch {
		case srcIn && tgtIn:
			if hadA {
				wt.vals = bumpVC(bumpVC(wt.vals, preA, -1), rel.Value(t, wt.d.RHS), 1)
			}
		case srcIn && !tgtIn:
			wt.size--
			wt.vals = bumpVC(wt.vals, preA, -1)
		case !srcIn && tgtIn:
			wt.size++
			wt.vals = bumpVC(wt.vals, rel.Value(t, wt.d.RHS), 1)
		}
	})
}

func (wt *witnessTracker) appendRow(rel *relation.Relation, v *core.Verifier, t int32) {
	wt.keyBuf = core.EncodeLHSKey(rel, wt.cols, int(t), wt.keyBuf)
	if string(wt.keyBuf) != wt.key {
		return
	}
	wt.size++
	wt.vals = bumpVC(wt.vals, rel.Value(int(t), wt.d.RHS), 1)
}

// scanResult is a one-shot verification of a candidate against the
// current relation: overall validity plus, when invalid and requested, the
// violating class with the smallest representative row — the
// deterministic certificate choice.
type scanResult struct {
	valid   bool
	witKey  string
	witSize int32
	witVals []vc
}

// witnessScanParts is scanCandidate(needWitness=true) answered from the
// verifier's partition cache: the classes of Π*_X come from a (typically
// cached) product instead of re-hashing every row. Partition classes are
// ordered by smallest representative, so the first violating class found
// is exactly the one scanCandidate pins, and the walk stops there.
func witnessScanParts(pv *core.Verifier, d core.OFD) scanResult {
	rel := pv.Relation()
	p := pv.Partitions().Get(d.LHS)
	col := rel.Column(d.RHS)
	res := scanResult{valid: true}
	var vals []vc
	var scratch []relation.Value
	for i := 0; i < p.NumClasses(); i++ {
		class := p.Class(i)
		vals = vals[:0]
		for _, t := range class {
			vals = bumpVC(vals, col.At(int(t)), 1)
		}
		if len(vals) <= 1 {
			continue
		}
		scratch = distinctVals(vals, scratch)
		if pv.ValuesSatisfied(d.RHS, scratch) {
			continue
		}
		res.valid = false
		res.witKey = string(core.EncodeLHSKey(rel, d.LHS.Attrs(), int(class[0]), nil))
		res.witSize = int32(len(class))
		res.witVals = append([]vc(nil), vals...)
		return res
	}
	return res
}

// scanCandidate verifies X → A from scratch in one pass over the
// relation: group rows by encoded antecedent key, then test each
// multi-tuple, multi-value group for a common interpretation. This is the
// maintainer's untracked-node verifier; it reads only the relation and the
// verifier's monotone names tables, so it is safe under any sequence of
// prior in-place mutations (no partition cache involved). The lattice
// optimizations degenerate into it naturally: a superkey antecedent
// produces only singleton groups (Opt-3) and an FD-satisfying class has a
// single distinct value (Opt-4), both skipped without touching the
// ontology.
func scanCandidate(rel *relation.Relation, v *core.Verifier, d core.OFD, needWitness bool) scanResult {
	type grp struct {
		size int32
		vals []vc
		rep  int32
	}
	cols := d.LHS.Attrs()
	groups := make(map[string]*grp, 64)
	col := rel.Column(d.RHS)
	n := rel.NumRows()
	var buf []byte
	for t := 0; t < n; t++ {
		buf = core.EncodeLHSKey(rel, cols, t, buf)
		g := groups[string(buf)]
		if g == nil {
			g = &grp{rep: int32(t)}
			groups[string(buf)] = g
		}
		g.size++
		g.vals = bumpVC(g.vals, col.At(int(t)), 1)
	}
	res := scanResult{valid: true}
	var scratch []relation.Value
	bestRep := int32(-1)
	for key, g := range groups {
		if g.size <= 1 || len(g.vals) <= 1 {
			continue
		}
		scratch = distinctVals(g.vals, scratch)
		if v.ValuesSatisfied(d.RHS, scratch) {
			continue
		}
		res.valid = false
		if !needWitness {
			return res
		}
		if bestRep < 0 || g.rep < bestRep {
			bestRep = g.rep
			res.witKey = key
			res.witSize = g.size
			res.witVals = g.vals
		}
	}
	return res
}
