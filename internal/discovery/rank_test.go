package discovery

import (
	"testing"

	"github.com/fastofd/fastofd/internal/core"
	"github.com/fastofd/fastofd/internal/gen"
)

func TestRankPrefersCompactSynonymRichOFDs(t *testing.T) {
	ds := gen.Clinical(600, 9)
	res := Discover(ds.CleanRel, ds.FullOnt, DefaultOptions())
	ranked := Rank(ds.CleanRel, ds.FullOnt, res.OFDs)
	if len(ranked) != len(res.OFDs) {
		t.Fatalf("ranked %d of %d", len(ranked), len(res.OFDs))
	}
	// Scores must be non-increasing.
	for i := 1; i < len(ranked); i++ {
		if ranked[i].Score > ranked[i-1].Score {
			t.Fatalf("scores not sorted at %d", i)
		}
	}
	// The top-ranked dependency should be synonym-backed and compact;
	// specifically at least one planted single-antecedent OFD should beat
	// every key-based dependency (which constrains no classes).
	top := Top(ranked, 5)
	sawSynonym := false
	for _, r := range top {
		if r.SynonymShare > 0 {
			sawSynonym = true
		}
		if r.ClassCount == 0 && r.Score > 0 {
			t.Errorf("evidence-free dependency has positive score: %+v", r)
		}
	}
	if !sawSynonym {
		t.Errorf("no synonym-backed OFD in the top 5: %+v", top)
	}
	// Every planted OFD's consequent appears among the synonym-backed
	// ranked dependencies.
	planted := make(map[int]bool)
	for _, d := range ds.Sigma {
		planted[d.RHS] = true
	}
	found := make(map[int]bool)
	for _, r := range ranked {
		if r.SynonymShare > 0 {
			found[r.OFD.RHS] = true
		}
	}
	for rhs := range planted {
		if !found[rhs] {
			t.Errorf("no synonym-backed dependency found for consequent %d", rhs)
		}
	}
}

func TestTopBounds(t *testing.T) {
	ranked := []RankedOFD{{Score: 3}, {Score: 2}, {Score: 1}}
	if got := Top(ranked, 2); len(got) != 2 || got[0].Score != 3 {
		t.Fatalf("Top(2) = %+v", got)
	}
	if got := Top(ranked, 0); len(got) != 3 {
		t.Fatalf("Top(0) = %+v", got)
	}
	if got := Top(ranked, 99); len(got) != 3 {
		t.Fatalf("Top(99) = %+v", got)
	}
	if got := Top(nil, 5); len(got) != 0 {
		t.Fatalf("Top(nil) = %+v", got)
	}
}

func TestRankKeyDependenciesScoreZero(t *testing.T) {
	ds := gen.Clinical(300, 10)
	// A key-antecedent OFD constrains nothing: stripped partition empty.
	keyOFD := core.OFD{LHS: ds.Rel.Schema().MustSet("NCTID"), RHS: 5}
	ranked := Rank(ds.CleanRel, ds.FullOnt, core.Set{keyOFD})
	if ranked[0].ClassCount != 0 || ranked[0].Score != 0 {
		t.Fatalf("key OFD should carry no evidence: %+v", ranked[0])
	}
}
