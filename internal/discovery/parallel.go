package discovery

import (
	"context"
	"sort"

	"github.com/fastofd/fastofd/internal/core"
	"github.com/fastofd/fastofd/internal/exec"
	"github.com/fastofd/fastofd/internal/relation"
)

// verifyWorkers returns the worker count for candidate verification.
// Parallel verification requires PruneAugmentation: the ablation path
// consults the evolving discovered set (impliedByDiscovered), which cannot
// be read concurrently. The constraint is documented on Options.Workers and
// logged once into the run's stage stats; partition products — the dominant
// cost — honor Options.Workers in every configuration.
func (d *discoverer) verifyWorkers() int {
	if d.opts.PruneAugmentation {
		return d.pool.Size()
	}
	if d.pool.Size() > 1 {
		d.pool.Stats().Note("verification running sequentially: Workers=%d requested but PruneAugmentation is disabled (the ablation path reads the evolving discovered set); partition products still use %d workers", d.opts.Workers, d.pool.Size())
	}
	return 1
}

// workerBufs returns w product buffers, allocating them on first use and
// retaining them across lattice levels (probe arrays are relation-sized;
// reallocating them per level would dominate small-level costs).
func (d *discoverer) workerBufs(w int) []relation.ProductBuffer {
	for len(d.prodBufs) < w {
		d.prodBufs = append(d.prodBufs, relation.ProductBuffer{})
	}
	return d.prodBufs
}

// computeOFDsParallel is the multi-worker form of Algorithm 4: nodes are
// verified concurrently (each node's candidate checks are independent once
// C⁺ sets are fixed at node creation), then results are merged in a
// deterministic order. Workers claim nodes through the shared exec
// substrate — work-stealing rather than static chunking — so one expensive
// node (a wide partition with many classes to verify) cannot strand the
// rest of a precomputed chunk behind it. Cache misses during verification
// are safe: the partition cache is sharded and locked.
//
// A cancelled context stops the fan-out between nodes; the level's partial
// verification results are discarded (Σ keeps only whole levels from this
// path) and the wrapped context error is returned.
func (d *discoverer) computeOFDsParallel(ctx context.Context, level map[relation.AttrSet]*node, stat *LevelStat) error {
	nodes := make([]*node, 0, len(level))
	for _, nd := range level {
		nodes = append(nodes, nd)
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i].attrs < nodes[j].attrs })

	type nodeResult struct {
		checked int
		valid   relation.AttrSet // consequents whose candidate held
	}
	results := make([]nodeResult, len(nodes))
	w := d.verifyWorkers()
	if err := exec.For(ctx, len(nodes), w, func(_, i int) {
		nd := nodes[i]
		var res nodeResult
		for _, a := range nd.attrs.Intersect(nd.cplus).Attrs() {
			candidate := core.OFD{LHS: nd.attrs.Without(a), RHS: a}
			res.checked++
			if d.valid(candidate, nd) {
				res.valid = res.valid.With(a)
			}
		}
		results[i] = res
	}); err != nil {
		return err
	}

	for i, nd := range nodes {
		stat.Candidates += results[i].checked
		d.result.CandidatesChecked += results[i].checked
		for _, a := range results[i].valid.Attrs() {
			d.sigma = append(d.sigma, core.OFD{LHS: nd.attrs.Without(a), RHS: a})
			stat.Discovered++
			nd.cplus = nd.cplus.Without(a)
		}
	}
	return nil
}

// nextLevel computes the next lattice level (Algorithm 3,
// calculateNextLevel) with partition products distributed over the worker
// pool. Candidate enumeration and map insertion stay serial; only the
// products — the dominant cost — run concurrently, with workers pulling
// jobs from the shared substrate and each reusing its own level-spanning
// ProductBuffer. Unlike verification, the products are independent of the
// discovered set, so they honor Options.Workers in every configuration
// (including the PruneAugmentation ablation). A cancelled context stops
// the product fan-out between jobs and surfaces the wrapped error; the
// partially built level is discarded by the caller.
func (d *discoverer) nextLevel(ctx context.Context, level map[relation.AttrSet]*node) (map[relation.AttrSet]*node, error) {
	type job struct {
		x    relation.AttrSet
		a, b *node
		// skipProduct marks supersets of known superkeys (Opt-3).
		skipProduct bool
		cplus       relation.AttrSet
		part        *relation.Partition
	}
	blocks := make(map[relation.AttrSet][]*node)
	for _, nd := range level {
		attrs := nd.attrs.Attrs()
		prefix := nd.attrs.Without(attrs[len(attrs)-1])
		blocks[prefix] = append(blocks[prefix], nd)
	}
	prefixes := make([]relation.AttrSet, 0, len(blocks))
	for p := range blocks {
		prefixes = append(prefixes, p)
	}
	sort.Slice(prefixes, func(i, j int) bool { return prefixes[i] < prefixes[j] })

	seen := make(map[relation.AttrSet]struct{})
	var jobs []*job
	for _, p := range prefixes {
		block := blocks[p]
		sort.Slice(block, func(i, j int) bool { return block[i].attrs < block[j].attrs })
		for i := 0; i < len(block); i++ {
			for j := i + 1; j < len(block); j++ {
				x := block[i].attrs.Union(block[j].attrs)
				if _, done := seen[x]; done {
					continue
				}
				seen[x] = struct{}{}
				ok := true
				cplus := d.all
				for _, a := range x.Attrs() {
					sub, in := level[x.Without(a)]
					if !in {
						ok = false
						break
					}
					cplus = cplus.Intersect(sub.cplus)
				}
				if !ok {
					continue
				}
				if d.opts.PruneAugmentation && cplus.IsEmpty() {
					continue
				}
				jb := &job{x: x, a: block[i], b: block[j], cplus: cplus}
				if d.opts.PruneKeys && (block[i].superkey || block[j].superkey) {
					jb.skipProduct = true
				}
				jobs = append(jobs, jb)
			}
		}
	}

	w := d.pool.Size()
	bufs := d.workerBufs(w)
	if err := exec.For(ctx, len(jobs), w, func(worker, i int) {
		jb := jobs[i]
		if jb.skipProduct {
			jb.part = &relation.Partition{N: d.rel.NumRows(), Stripped: true}
			return
		}
		jb.part = bufs[worker].Product(jb.a.part, jb.b.part)
	}); err != nil {
		return nil, err
	}

	next := make(map[relation.AttrSet]*node, len(jobs))
	pc := d.verifier.Partitions()
	for _, jb := range jobs {
		nd := &node{attrs: jb.x, cplus: jb.cplus, part: jb.part}
		if jb.skipProduct {
			nd.superkey = true
		} else {
			nd.superkey = jb.part.IsKeyOver()
		}
		pc.Put(jb.x, jb.part)
		next[jb.x] = nd
	}
	return next, nil
}
