package discovery

import (
	"sort"
	"sync"
	"sync/atomic"

	"github.com/fastofd/fastofd/internal/core"
	"github.com/fastofd/fastofd/internal/relation"
)

// workers returns the effective worker count for parallel phases.
func (d *discoverer) workers() int {
	if d.opts.Workers > 1 && d.opts.PruneAugmentation {
		return d.opts.Workers
	}
	return 1
}

// workerBufs returns w product buffers, allocating them on first use and
// retaining them across lattice levels (probe arrays are relation-sized;
// reallocating them per level would dominate small-level costs).
func (d *discoverer) workerBufs(w int) []relation.ProductBuffer {
	for len(d.prodBufs) < w {
		d.prodBufs = append(d.prodBufs, relation.ProductBuffer{})
	}
	return d.prodBufs
}

// computeOFDsParallel is the multi-worker form of Algorithm 4: nodes are
// verified concurrently (each node's candidate checks are independent once
// C⁺ sets are fixed at node creation), then results are merged in a
// deterministic order. Workers claim nodes through a shared atomic index —
// work-stealing rather than static chunking — so one expensive node (a
// wide partition with many classes to verify) cannot strand the rest of a
// precomputed chunk behind it. Cache misses during verification are safe:
// the partition cache is sharded and locked.
func (d *discoverer) computeOFDsParallel(level map[relation.AttrSet]*node, stat *LevelStat) {
	nodes := make([]*node, 0, len(level))
	for _, nd := range level {
		nodes = append(nodes, nd)
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i].attrs < nodes[j].attrs })

	type nodeResult struct {
		checked int
		valid   relation.AttrSet // consequents whose candidate held
	}
	results := make([]nodeResult, len(nodes))
	w := d.workers()
	if w > len(nodes) {
		w = len(nodes)
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for k := 0; k < w; k++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(nodes) {
					return
				}
				nd := nodes[i]
				var res nodeResult
				for _, a := range nd.attrs.Intersect(nd.cplus).Attrs() {
					candidate := core.OFD{LHS: nd.attrs.Without(a), RHS: a}
					res.checked++
					if d.valid(candidate, nd) {
						res.valid = res.valid.With(a)
					}
				}
				results[i] = res
			}
		}()
	}
	wg.Wait()

	for i, nd := range nodes {
		stat.Candidates += results[i].checked
		d.result.CandidatesChecked += results[i].checked
		for _, a := range results[i].valid.Attrs() {
			d.sigma = append(d.sigma, core.OFD{LHS: nd.attrs.Without(a), RHS: a})
			stat.Discovered++
			nd.cplus = nd.cplus.Without(a)
		}
	}
}

// nextLevelParallel computes the next lattice level with partition products
// distributed over workers. Candidate enumeration and map insertion stay
// serial; only the products — the dominant cost — run concurrently, with
// workers pulling jobs from a shared atomic index and each reusing its own
// level-spanning ProductBuffer.
func (d *discoverer) nextLevelParallel(level map[relation.AttrSet]*node) map[relation.AttrSet]*node {
	type job struct {
		x    relation.AttrSet
		a, b *node
		// skipProduct marks supersets of known superkeys (Opt-3).
		skipProduct bool
		cplus       relation.AttrSet
		part        *relation.Partition
	}
	blocks := make(map[relation.AttrSet][]*node)
	for _, nd := range level {
		attrs := nd.attrs.Attrs()
		prefix := nd.attrs.Without(attrs[len(attrs)-1])
		blocks[prefix] = append(blocks[prefix], nd)
	}
	prefixes := make([]relation.AttrSet, 0, len(blocks))
	for p := range blocks {
		prefixes = append(prefixes, p)
	}
	sort.Slice(prefixes, func(i, j int) bool { return prefixes[i] < prefixes[j] })

	seen := make(map[relation.AttrSet]struct{})
	var jobs []*job
	for _, p := range prefixes {
		block := blocks[p]
		sort.Slice(block, func(i, j int) bool { return block[i].attrs < block[j].attrs })
		for i := 0; i < len(block); i++ {
			for j := i + 1; j < len(block); j++ {
				x := block[i].attrs.Union(block[j].attrs)
				if _, done := seen[x]; done {
					continue
				}
				seen[x] = struct{}{}
				ok := true
				cplus := d.all
				for _, a := range x.Attrs() {
					sub, in := level[x.Without(a)]
					if !in {
						ok = false
						break
					}
					cplus = cplus.Intersect(sub.cplus)
				}
				if !ok {
					continue
				}
				if d.opts.PruneAugmentation && cplus.IsEmpty() {
					continue
				}
				jb := &job{x: x, a: block[i], b: block[j], cplus: cplus}
				if d.opts.PruneKeys && (block[i].superkey || block[j].superkey) {
					jb.skipProduct = true
				}
				jobs = append(jobs, jb)
			}
		}
	}

	w := d.workers()
	if w > len(jobs) {
		w = len(jobs)
	}
	if w < 1 {
		w = 1
	}
	bufs := d.workerBufs(w)
	var next atomic.Int64
	var wg sync.WaitGroup
	for k := 0; k < w; k++ {
		wg.Add(1)
		go func(buf *relation.ProductBuffer) {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(jobs) {
					return
				}
				jb := jobs[i]
				if jb.skipProduct {
					jb.part = &relation.Partition{N: d.rel.NumRows(), Stripped: true}
					continue
				}
				jb.part = buf.Product(jb.a.part, jb.b.part)
			}
		}(&bufs[k])
	}
	wg.Wait()

	next2 := make(map[relation.AttrSet]*node, len(jobs))
	pc := d.verifier.Partitions()
	for _, jb := range jobs {
		nd := &node{attrs: jb.x, cplus: jb.cplus, part: jb.part}
		if jb.skipProduct {
			nd.superkey = true
		} else {
			nd.superkey = jb.part.IsKeyOver()
		}
		pc.Put(jb.x, jb.part)
		next2[jb.x] = nd
	}
	return next2
}
