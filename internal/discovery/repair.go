package discovery

import (
	"context"
	"fmt"
	"sort"

	"github.com/fastofd/fastofd/internal/relation"
)

// repairer computes one consequent attribute's post-batch minimal cover
// from the flip signals: a joint upward BFS over the invalidated region
// above demoted cover elements, and a downward level-wise descent through
// the newly valid region below promoted border nodes. Both searches
// consult a memoized post-state validity oracle that answers most nodes
// without verification — this is the incremental C⁺(X) repair: an
// invalidation re-opens exactly the supersets the BFS reaches (the nodes
// Opt-2 had pruned under the demoted element), and a validation re-prunes
// by the final antichain step plus the ⊇-survivor short-circuit.
//
// Correctness rests on the monotonicity of exact synonym OFDs (refining
// an equivalence partition preserves per-class satisfaction, so validity
// is upward-closed per consequent):
//
//   - pre-batch validity of ANY node is decidable from the old cover
//     alone (valid ⇔ ⊇ some cover element), and a node whose scope
//     X ∪ {A} the batch did not touch keeps its pre-batch validity —
//     that is the oracle's free answer;
//   - every minimal valid node of the post state is either a survivor, or
//     reachable by the BFS from a demoted seed (all its subsets down to
//     the seed are invalid), or a subset of a maximal invalid node W
//     whose certificate necessarily broke (W ⊇ a now-valid node is
//     itself valid, and validity requires its pinned violating class to
//     have become satisfied), in which case the descent from W finds it;
//   - therefore the minimal antichain of survivors ∪ BFS boundary ∪
//     descent results is exactly the post-state minimal cover.
type repairer struct {
	mt         *Maintainer
	wv         *waveVerifier // wave-batched partition-backed verification (post state)
	rhs        int
	space      relation.AttrSet   // all attributes minus rhs
	oldCover   []relation.AttrSet // pre-batch cover antichain (canonical order)
	survivors  []relation.AttrSet // old cover elements still valid
	demoted    []relation.AttrSet // old cover elements now invalid
	demotedTrk []*coverTracker    // trackers aligned with demoted; nil falls back to the wave
	touched    relation.AttrSet   // columns the batch updated
	rhsTouched bool               // touched.Has(rhs), hoisted off the per-node oracle path
	hasAppend  bool               // batch appended rows (demote-only signal)
	memo       map[relation.AttrSet]bool
	scans      int // one-shot verifications performed
	skips      int // nodes answered by the oracle without verification
	refined    int // of scans, climb nodes answered by root refinement
}

// oracleAnswer classifies a node without scanning: (valid, known). The
// free rules: a superset of a surviving cover element is valid (upward
// closure from a post-state fact); a pre-valid node is valid if the batch
// cannot have touched it (a node above only demoted elements always tests
// dirty, because the demoted element's scope is contained in its own); a
// pre-invalid node stays invalid unless an update touched its scope —
// appends never promote, because joining a class only grows its
// distinct-value set.
func (r *repairer) oracleAnswer(x relation.AttrSet) (bool, bool) {
	if val, ok := r.memo[x]; ok {
		return val, true
	}
	for _, s := range r.survivors {
		if s.SubsetOf(x) {
			return true, true
		}
	}
	preValid := false
	for _, y := range r.oldCover {
		if y.SubsetOf(x) {
			preValid = true
			break
		}
	}
	updDirty := r.rhsTouched || !r.touched.Intersect(x).IsEmpty()
	if preValid {
		if !r.hasAppend && !updDirty {
			return true, true
		}
		return false, false
	}
	if !updDirty {
		return false, true
	}
	return false, false
}

// resolve verifies the given nodes (deduplicated, sorted by the caller)
// through the wave scheduler and memoizes the results. Verification goes
// through the maintainer's partition-backed verifier — stripped-partition
// products answer a node in microseconds where a raw candidate scan pays
// O(N·|X|), the cache shares subset partitions across the whole repair
// pass (every consequent, every level, and across batches), and the wave
// merges co-probing consequents onto one traversal per antecedent set.
// Cancellation leaves the memo untouched for unfinished nodes; the caller
// aborts the repair.
func (r *repairer) resolve(_ context.Context, nodes []relation.AttrSet) error {
	verdicts, err := r.wv.verify(r.rhs, nodes)
	if err != nil {
		return err
	}
	for i, x := range nodes {
		r.memo[x] = verdicts[i]
	}
	r.scans += len(nodes)
	return nil
}

// classify resolves a level's worth of candidate nodes: oracle first,
// then one parallel scan round for the unknowns. It returns a lookup for
// the level. nodes must be deduplicated; order is canonicalized here.
func (r *repairer) classify(ctx context.Context, nodes []relation.AttrSet) (map[relation.AttrSet]bool, error) {
	relation.SortSets(nodes)
	return r.classifySorted(ctx, nodes, nil, nil, nil)
}

// classifySorted is classify's core over canonically ordered nodes, with
// an optional refinement channel: when roots is non-nil, roots[i] indexes
// the demoted seed node i climbed from and parents[i] is the frontier
// node that expanded it, and a node whose seed has a rootRefiner is
// answered locally from tracked class state — the oracle still goes
// first (its answers are free), and only refiner-less nodes fall through
// to the wave kernel.
func (r *repairer) classifySorted(ctx context.Context, nodes []relation.AttrSet, roots []int, parents []relation.AttrSet, refiners []*rootRefiner) (map[relation.AttrSet]bool, error) {
	out := make(map[relation.AttrSet]bool, len(nodes))
	var unknown []relation.AttrSet
	for i, x := range nodes {
		if val, known := r.oracleAnswer(x); known {
			out[x] = val
			r.skips++
		} else if roots != nil && refiners[roots[i]] != nil {
			val := refiners[roots[i]].holds(x, parents[i])
			r.memo[x] = val
			out[x] = val
			r.scans++
			r.refined++
		} else {
			unknown = append(unknown, x)
		}
	}
	if err := r.resolve(ctx, unknown); err != nil {
		return nil, err
	}
	for _, x := range unknown {
		out[x] = r.memo[x]
	}
	return out, nil
}

// bfsUp explores the invalid region above the demoted seeds level by
// level, returning every valid node found on its upper boundary. By
// upward closure the boundary contains all minimal valid supersets of the
// seeds; non-minimal boundary nodes are dropped by the final antichain.
//
// Every frontier node carries the demoted seed it grew from: a climb node
// Y necessarily contains its seed X₀, so when X₀'s cover tracker is
// available Y verifies through a rootRefiner — splitting X₀'s few
// unsatisfied classes by Y \ X₀ — instead of paying the wave kernel a
// partition product over the whole relation. A node reachable from
// several seeds is claimed by whichever expansion reaches it first in
// canonical frontier order; any containing seed yields the same verdict,
// so the choice affects cost only, never the result.
func (r *repairer) bfsUp(ctx context.Context) ([]relation.AttrSet, error) {
	if len(r.demoted) == 0 {
		return nil, nil
	}
	refiners := make([]*rootRefiner, len(r.demoted))
	for i, ct := range r.demotedTrk {
		if ct != nil {
			refiners[i] = newRootRefiner(r.mt.v, ct)
		}
	}
	frontier := append([]relation.AttrSet(nil), r.demoted...)
	froots := make([]int, len(frontier))
	for i := range froots {
		froots[i] = i
	}
	visited := make(map[relation.AttrSet]bool, 4*len(frontier))
	for _, x := range frontier {
		visited[x] = true
	}
	var boundary []relation.AttrSet
	for len(frontier) > 0 {
		var children []relation.AttrSet
		var croots []int
		var cparents []relation.AttrSet
		for fi, x := range frontier {
			for _, b := range r.space.Minus(x).Attrs() {
				c := x.With(b)
				if !visited[c] {
					visited[c] = true
					children = append(children, c)
					croots = append(croots, froots[fi])
					cparents = append(cparents, x)
				}
			}
		}
		sortSetsWithRoots(children, croots, cparents)
		verdicts, err := r.classifySorted(ctx, children, croots, cparents, refiners)
		if err != nil {
			return nil, err
		}
		frontier = frontier[:0]
		froots = froots[:0]
		for i, c := range children {
			if verdicts[c] {
				boundary = append(boundary, c)
			} else {
				frontier = append(frontier, c)
				froots = append(froots, croots[i])
			}
		}
	}
	return boundary, nil
}

// sortSetsWithRoots applies relation.SortSets's canonical order (length,
// then bit pattern) to sets while keeping roots and parents aligned.
func sortSetsWithRoots(sets []relation.AttrSet, roots []int, parents []relation.AttrSet) {
	sort.Sort(&setsRootsSort{sets, roots, parents})
}

type setsRootsSort struct {
	sets    []relation.AttrSet
	roots   []int
	parents []relation.AttrSet
}

func (s *setsRootsSort) Len() int { return len(s.sets) }
func (s *setsRootsSort) Less(i, j int) bool {
	if li, lj := s.sets[i].Len(), s.sets[j].Len(); li != lj {
		return li < lj
	}
	return s.sets[i] < s.sets[j]
}
func (s *setsRootsSort) Swap(i, j int) {
	s.sets[i], s.sets[j] = s.sets[j], s.sets[i]
	s.roots[i], s.roots[j] = s.roots[j], s.roots[i]
	s.parents[i], s.parents[j] = s.parents[j], s.parents[i]
}

// descend explores the valid region below the promoted node w level by
// level, returning its minimal valid subsets: valid nodes none of whose
// direct subsets are valid. w itself must already be known valid.
func (r *repairer) descend(ctx context.Context, w relation.AttrSet) ([]relation.AttrSet, error) {
	// Floor check first: if even the empty antecedent holds (a near-constant
	// consequent), ∅ is the unique minimal valid node — upward closure makes
	// everything below w valid, and the level-wise walk would visit all of
	// it just to discover that.
	floor, err := r.classify(ctx, []relation.AttrSet{relation.EmptySet})
	if err != nil {
		return nil, err
	}
	if floor[relation.EmptySet] {
		return []relation.AttrSet{relation.EmptySet}, nil
	}
	frontier := []relation.AttrSet{w}
	visited := map[relation.AttrSet]bool{w: true}
	var minimal []relation.AttrSet
	for len(frontier) > 0 {
		seen := make(map[relation.AttrSet]bool, 2*len(frontier))
		var children []relation.AttrSet
		for _, x := range frontier {
			for _, a := range x.Attrs() {
				p := x.Without(a)
				if !seen[p] {
					seen[p] = true
					children = append(children, p)
				}
			}
		}
		verdicts, err := r.classify(ctx, children)
		if err != nil {
			return nil, err
		}
		// A fresh slice each level: next must not alias frontier's backing
		// array, because a node can contribute several valid children and
		// overrun the not-yet-read part of the frontier mid-range.
		next := make([]relation.AttrSet, 0, len(frontier))
		for _, x := range frontier {
			hasValidChild := false
			for _, a := range x.Attrs() {
				p := x.Without(a)
				if verdicts[p] {
					hasValidChild = true
					if !visited[p] {
						visited[p] = true
						next = append(next, p)
					}
				}
			}
			if !hasValidChild {
				minimal = append(minimal, x)
			}
		}
		frontier = next
	}
	return minimal, nil
}

// run performs the full repair for one consequent: re-probe triggered
// border nodes (staging fresh certificates on the still-invalid ones,
// descending from the promoted ones), BFS up from the demotions, and
// reduce. It returns the post-state minimal cover in canonical order.
func (r *repairer) run(ctx context.Context, triggered []*witnessTracker) ([]relation.AttrSet, error) {
	for _, s := range r.survivors {
		r.memo[s] = true
	}
	for _, d := range r.demoted {
		r.memo[d] = false
	}
	var candidates []relation.AttrSet
	candidates = append(candidates, r.survivors...)
	// Wipe-out short-circuit: with no survivors, one probe of the full
	// antecedent space decides everything — if even that node fails, upward
	// closure empties the cover, and the BFS from the demotions would
	// otherwise enumerate the entire invalid upper lattice to conclude it.
	// Triggered border certificates need no restaging here: the commit
	// rebuilds the border as the single all-attributes node with a fresh
	// certificate.
	if len(r.survivors) == 0 && len(r.demoted) > 0 {
		top, err := r.classify(ctx, []relation.AttrSet{r.space})
		if err != nil {
			return nil, err
		}
		if !top[r.space] {
			return nil, nil
		}
	}
	// Cheap partition-backed validity probe over every triggered node; only
	// the still-invalid ones pay a full scan, which is what produces their
	// next certificate anyway. Both rounds ride the wave scheduler, so
	// consequents triggered by the same batch share each probed antecedent's
	// traversal.
	probeNodes := make([]relation.AttrSet, len(triggered))
	for i, wt := range triggered {
		probeNodes[i] = wt.d.LHS
	}
	nowValid, err := r.wv.verify(r.rhs, probeNodes)
	if err != nil {
		return nil, err
	}
	r.scans += len(triggered)
	var rescan []int
	var rescanNodes []relation.AttrSet
	for i, wt := range triggered {
		r.memo[wt.d.LHS] = nowValid[i]
		if !nowValid[i] {
			rescan = append(rescan, i)
			rescanNodes = append(rescanNodes, wt.d.LHS)
		}
	}
	wits, err := r.wv.witnessScan(r.rhs, rescanNodes)
	if err != nil {
		return nil, err
	}
	r.scans += len(rescan)
	for k, i := range rescan {
		if wits[k].valid {
			panic(fmt.Sprintf("discovery: partition and scan verification disagree on %v", triggered[i].d))
		}
		// Still invalid through some other class: pin that class as the
		// next certificate (committed only if the batch lands).
		triggered[i].stagePending(wits[k].witKey, wits[k].witSize, wits[k].witVals)
	}
	for i, wt := range triggered {
		if !nowValid[i] {
			continue
		}
		mins, err := r.descend(ctx, wt.d.LHS)
		if err != nil {
			return nil, err
		}
		candidates = append(candidates, mins...)
	}
	boundary, err := r.bfsUp(ctx)
	if err != nil {
		return nil, err
	}
	candidates = append(candidates, boundary...)
	return minimalAntichain(candidates), nil
}

// minimalAntichain returns the minimal elements of the given sets,
// deduplicated, in canonical order.
func minimalAntichain(sets []relation.AttrSet) []relation.AttrSet {
	relation.SortSets(sets)
	out := sets[:0]
	for _, s := range sets {
		keep := true
		for _, m := range out {
			if m == s || m.SubsetOf(s) {
				keep = false
				break
			}
		}
		if keep {
			out = append(out, s)
		}
	}
	return out
}
