package discovery

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"github.com/fastofd/fastofd/internal/core"
	"github.com/fastofd/fastofd/internal/gen"
	"github.com/fastofd/fastofd/internal/ontology"
	"github.com/fastofd/fastofd/internal/relation"
)

// randomInstance builds a small random relation plus a random synonym
// ontology over its value universe.
func randomInstance(rng *rand.Rand) (*relation.Relation, *ontology.Ontology) {
	cols := 2 + rng.Intn(4)
	rows := 2 + rng.Intn(12)
	domain := 1 + rng.Intn(4)
	names := make([]string, cols)
	for i := range names {
		names[i] = fmt.Sprintf("A%d", i)
	}
	rel := relation.New(relation.MustSchema(names...))
	row := make([]string, cols)
	for r := 0; r < rows; r++ {
		for c := range row {
			row[c] = fmt.Sprintf("v%d", rng.Intn(domain))
		}
		rel.AppendRow(row)
	}
	o := ontology.New()
	// Random synonym classes over the value universe, some with multiple
	// senses and overlapping membership.
	numClasses := rng.Intn(5)
	for c := 0; c < numClasses; c++ {
		var syn []string
		for v := 0; v < domain; v++ {
			if rng.Intn(2) == 0 {
				syn = append(syn, fmt.Sprintf("v%d", v))
			}
		}
		o.MustAddClass(fmt.Sprintf("cls%d", c), fmt.Sprintf("sense%d", c%2), ontology.NoClass, syn...)
	}
	return rel, o
}

// bruteForceOFDs enumerates all minimal synonym OFDs by exhaustive search.
func bruteForceOFDs(rel *relation.Relation, ont *ontology.Ontology) core.Set {
	v := core.NewVerifier(rel, ont, nil)
	n := rel.NumCols()
	var out core.Set
	for rhs := 0; rhs < n; rhs++ {
		var minimal []relation.AttrSet
		byCard := make([][]relation.AttrSet, n+1)
		limit := relation.AttrSet(uint64(1)<<uint(n) - 1)
		for s := relation.AttrSet(0); s <= limit; s++ {
			if !s.Has(rhs) {
				byCard[s.Len()] = append(byCard[s.Len()], s)
			}
		}
		for _, sets := range byCard {
			for _, s := range sets {
				dominated := false
				for _, m := range minimal {
					if m.SubsetOf(s) {
						dominated = true
						break
					}
				}
				if dominated {
					continue
				}
				if v.HoldsSyn(core.OFD{LHS: s, RHS: rhs}) {
					minimal = append(minimal, s)
					out = append(out, core.OFD{LHS: s, RHS: rhs})
				}
			}
		}
	}
	out.Sort()
	return out
}

func TestDiscoverMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 40; trial++ {
		rel, ont := randomInstance(rng)
		want := bruteForceOFDs(rel, ont)
		// Brute force includes ∅ → A (constant/single-interpretation
		// columns); FastOFD's lattice starts at level 1 and also finds
		// them as candidates ({A} \ A) → A at level 1.
		got := Discover(rel, ont, DefaultOptions()).OFDs
		if !reflect.DeepEqual(got, want) {
			t.Errorf("trial %d: mismatch\n got: %v\nwant: %v\nrows: %v",
				trial, got, want, rel.Rows())
		}
	}
}

func TestOptimizationsPreserveOutput(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	configs := []Options{
		{},                        // everything off
		{PruneAugmentation: true}, // Opt-2 only
		{PruneKeys: true},         // Opt-3 only
		{FDShortcut: true},        // Opt-4 only
		DefaultOptions(),          // all on
		{PruneKeys: true, FDShortcut: true},
	}
	for trial := 0; trial < 25; trial++ {
		rel, ont := randomInstance(rng)
		want := Discover(rel, ont, DefaultOptions()).OFDs
		for ci, opts := range configs {
			got := Discover(rel, ont, opts).OFDs
			if !reflect.DeepEqual(got, want) {
				t.Errorf("trial %d config %d: output differs\n got: %v\nwant: %v\nrows: %v",
					trial, ci, got, want, rel.Rows())
			}
		}
	}
}

func TestDiscoveredOFDsAreSoundAndMinimal(t *testing.T) {
	ds := gen.Clinical(300, 17)
	res := Discover(ds.Rel, ds.FullOnt, DefaultOptions())
	v := core.NewVerifier(ds.Rel, ds.FullOnt, nil)
	seen := make(map[core.OFD]struct{})
	for _, d := range res.OFDs {
		if _, dup := seen[d]; dup {
			t.Errorf("duplicate OFD %v", d)
		}
		seen[d] = struct{}{}
		if d.Trivial() {
			t.Errorf("trivial OFD %v discovered", d)
		}
		if !v.HoldsSyn(d) {
			t.Errorf("discovered OFD %v does not hold", d)
		}
	}
	// Minimality: no discovered OFD is implied by another via Augmentation.
	for i, a := range res.OFDs {
		for j, b := range res.OFDs {
			if i != j && a.RHS == b.RHS && a.LHS.ProperSubsetOf(b.LHS) {
				t.Errorf("non-minimal OFD %v (subsumed by %v)", b, a)
			}
		}
	}
	// The planted OFDs must be implied by the discovered set: for each
	// planted X → A some discovered Y → A with Y ⊆ X exists.
	for _, d := range ds.Sigma {
		implied := false
		for _, f := range res.OFDs {
			if f.RHS == d.RHS && f.LHS.SubsetOf(d.LHS) {
				implied = true
				break
			}
		}
		if !implied {
			t.Errorf("planted OFD %s not implied by discovery", d.Format(ds.Rel.Schema()))
		}
	}
}

func TestDiscoverSubsumesFDs(t *testing.T) {
	// Every minimal FD must be implied by some discovered OFD (OFDs
	// subsume FDs: whatever holds syntactically holds semantically).
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 20; trial++ {
		rel, ont := randomInstance(rng)
		ofds := Discover(rel, ont, DefaultOptions()).OFDs
		fds := Discover(rel, ontology.New(), DefaultOptions()).OFDs // empty ontology = plain FDs
		for _, d := range fds {
			implied := false
			for _, f := range ofds {
				if f.RHS == d.RHS && f.LHS.SubsetOf(d.LHS) {
					implied = true
					break
				}
			}
			if !implied {
				t.Errorf("trial %d: FD %v not implied by OFDs %v", trial, d, ofds)
			}
		}
	}
}

func TestMaxLevelCap(t *testing.T) {
	ds := gen.Clinical(200, 19)
	full := Discover(ds.Rel, ds.FullOnt, DefaultOptions())
	opts := DefaultOptions()
	opts.MaxLevel = 3
	capped := Discover(ds.Rel, ds.FullOnt, opts)
	if len(capped.Levels) > 3 {
		t.Fatalf("cap ignored: %d levels", len(capped.Levels))
	}
	// Capped output = full output restricted to antecedents of size < 3.
	var want core.Set
	for _, d := range full.OFDs {
		if d.LHS.Len() < 3 {
			want = append(want, d)
		}
	}
	want.Sort()
	if !reflect.DeepEqual(capped.OFDs, want) {
		t.Fatalf("capped output mismatch:\n got %v\nwant %v", capped.OFDs, want)
	}
}

func TestApproximateDiscoveryMonotoneInSupport(t *testing.T) {
	ds := gen.Generate(gen.Config{Rows: 300, Seed: 29, ErrRate: 0.05})
	strict := Discover(ds.Rel, ds.FullOnt, DefaultOptions())
	lax := DefaultOptions()
	lax.MinSupport = 0.9
	approx := Discover(ds.Rel, ds.FullOnt, lax)
	// Every exact OFD holds approximately, so it must be implied by the
	// approximate result (equal or smaller antecedent).
	for _, d := range strict.OFDs {
		implied := false
		for _, f := range approx.OFDs {
			if f.RHS == d.RHS && f.LHS.SubsetOf(d.LHS) {
				implied = true
				break
			}
		}
		if !implied {
			t.Errorf("exact OFD %v not implied by approximate set", d)
		}
	}
	// Note: a laxer κ can yield FEWER minimal OFDs overall (smaller
	// antecedents validate and prune their supersets), so no count
	// comparison — only implication and soundness.
	v := core.NewVerifier(ds.Rel, ds.FullOnt, nil)
	for _, d := range approx.OFDs {
		if !v.HoldsApprox(d, 0.9) {
			t.Errorf("approximate OFD %v has support below κ", d)
		}
	}
}

func TestLevelStatsAccounting(t *testing.T) {
	ds := gen.Clinical(200, 31)
	res := Discover(ds.Rel, ds.FullOnt, DefaultOptions())
	total := 0
	for i, ls := range res.Levels {
		if ls.Level != i+1 {
			t.Fatalf("level numbering wrong at %d", i)
		}
		total += ls.Discovered
	}
	if total != len(res.OFDs) {
		t.Fatalf("level stats count %d OFDs, result has %d", total, len(res.OFDs))
	}
	checked := 0
	for _, ls := range res.Levels {
		checked += ls.Candidates
	}
	if checked != res.CandidatesChecked {
		t.Fatalf("candidate accounting: %d vs %d", checked, res.CandidatesChecked)
	}
}

// bruteForceInhOFDs enumerates minimal inheritance OFDs exhaustively.
func bruteForceInhOFDs(rel *relation.Relation, ont *ontology.Ontology, theta int) core.Set {
	v := core.NewVerifier(rel, ont, nil)
	n := rel.NumCols()
	var out core.Set
	for rhs := 0; rhs < n; rhs++ {
		var minimal []relation.AttrSet
		byCard := make([][]relation.AttrSet, n+1)
		limit := relation.AttrSet(uint64(1)<<uint(n) - 1)
		for s := relation.AttrSet(0); s <= limit; s++ {
			if !s.Has(rhs) {
				byCard[s.Len()] = append(byCard[s.Len()], s)
			}
		}
		for _, sets := range byCard {
			for _, s := range sets {
				dominated := false
				for _, m := range minimal {
					if m.SubsetOf(s) {
						dominated = true
						break
					}
				}
				if dominated {
					continue
				}
				if v.HoldsInh(core.OFD{LHS: s, RHS: rhs}, theta) {
					minimal = append(minimal, s)
					out = append(out, core.OFD{LHS: s, RHS: rhs})
				}
			}
		}
	}
	out.Sort()
	return out
}

func TestInheritanceDiscoverMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for trial := 0; trial < 25; trial++ {
		rel, ont := randomInstance(rng)
		for _, theta := range []int{0, 1, 2} {
			opts := DefaultOptions()
			opts.Mode = ModeInheritance
			opts.Theta = theta
			got := Discover(rel, ont, opts).OFDs
			want := bruteForceInhOFDs(rel, ont, theta)
			if !reflect.DeepEqual(got, want) {
				t.Errorf("trial %d θ=%d: mismatch\n got: %v\nwant: %v\nrows: %v",
					trial, theta, got, want, rel.Rows())
			}
		}
	}
}

func TestInheritanceDiscoveryFindsFamilyOFDs(t *testing.T) {
	ds := gen.Generate(gen.Config{Rows: 400, Seed: 72})
	opts := DefaultOptions()
	opts.Mode = ModeInheritance
	opts.Theta = ds.InhTheta
	res := Discover(ds.CleanRel, ds.FullOnt, opts)
	for _, d := range ds.InhSigma {
		implied := false
		for _, f := range res.OFDs {
			if f.RHS == d.RHS && f.LHS.SubsetOf(d.LHS) {
				implied = true
				break
			}
		}
		if !implied {
			t.Errorf("planted inheritance OFD %s not implied", d.Format(ds.CleanRel.Schema()))
		}
	}
	// The synonym run must NOT imply the family OFDs (they need is-a).
	syn := Discover(ds.CleanRel, ds.FullOnt, DefaultOptions())
	for _, d := range ds.InhSigma {
		for _, f := range syn.OFDs {
			if f.RHS == d.RHS && f.LHS.SubsetOf(d.LHS) {
				t.Errorf("family OFD %s implied by SYNONYM discovery (%s)",
					d.Format(ds.CleanRel.Schema()), f.Format(ds.CleanRel.Schema()))
			}
		}
	}
}
