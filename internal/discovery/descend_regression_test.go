package discovery

import (
	"fmt"
	"math/rand"
	"testing"

	"github.com/fastofd/fastofd/internal/core"
	"github.com/fastofd/fastofd/internal/gen"
)

type replayOp struct {
	appendRow []string
	update    core.CellUpdate
}

func replayStream(ds *gen.Dataset, nBatches, batchSize, appendsPerBatch int, seed int64) [][]replayOp {
	rng := rand.New(rand.NewSource(seed))
	cols := ds.Rel.NumCols()
	pools := make([][]string, cols)
	for c := 0; c < cols; c++ {
		pools[c] = ds.Rel.Project(c)
	}
	baseRows := ds.Rel.NumRows()
	type corruption struct {
		row, col int
		orig     string
	}
	var outstanding []corruption
	batches := make([][]replayOp, nBatches)
	for b := range batches {
		focus := rng.Perm(cols)[:2+rng.Intn(2)]
		ops := make([]replayOp, 0, batchSize+appendsPerBatch)
		for k := 0; k < batchSize; k++ {
			if k%2 == 1 && len(outstanding) > 0 {
				fix := outstanding[0]
				outstanding = outstanding[1:]
				ops = append(ops, replayOp{update: core.CellUpdate{Row: fix.row, Col: fix.col, Value: fix.orig}})
				continue
			}
			col := focus[rng.Intn(len(focus))]
			row := rng.Intn(baseRows)
			val := pools[col][rng.Intn(len(pools[col]))]
			if rng.Intn(50) == 0 {
				val = fmt.Sprintf("bench-novel-%d-%d", b, k)
			}
			outstanding = append(outstanding, corruption{row, col, ds.Rel.String(row, col)})
			ops = append(ops, replayOp{update: core.CellUpdate{Row: row, Col: col, Value: val}})
		}
		for k := 0; k < appendsPerBatch; k++ {
			row := ds.Rel.Row(rng.Intn(baseRows))
			if rng.Intn(5) == 0 {
				col := focus[rng.Intn(len(focus))]
				row[col] = pools[col][rng.Intn(len(pools[col]))]
			}
			ops = append(ops, replayOp{appendRow: row})
		}
		batches[b] = ops
	}
	return batches
}

// TestDescendFrontierRegression replays a 25k-row clinical stream whose third
// batch used to corrupt the descend frontier (next aliased frontier's backing
// array), dropping valid minima and tripping the buildBorder soundness panic.
// The maintainer's own border check is the assertion; no fresh rediscovery is
// needed.
func TestDescendFrontierRegression(t *testing.T) {
	if testing.Short() {
		t.Skip("25k-row replay; skipped with -short")
	}
	n := 25000
	ds := gen.Clinical(n, 1)
	batchSize := n / 1000
	appends := batchSize / 20
	batches := replayStream(ds, 4, batchSize, appends, 7)
	mt, err := NewMaintainer(ds.Rel.Clone(), ds.FullOnt, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	for b, ops := range batches {
		var updates []core.CellUpdate
		for _, op := range ops {
			if op.appendRow != nil {
				if _, err := mt.AppendRow(op.appendRow); err != nil {
					t.Fatalf("batch %d append: %v", b, err)
				}
				continue
			}
			updates = append(updates, op.update)
		}
		if _, err := mt.ApplyBatch(updates); err != nil {
			t.Fatalf("batch %d: %v", b, err)
		}
	}
}
