package discovery

import (
	"github.com/fastofd/fastofd/internal/core"
	"github.com/fastofd/fastofd/internal/relation"
)

// rootRefiner answers BFS climb verifications above one demoted cover
// element X₀ → A from the element's tracked class state instead of a
// partition product. Refining an equivalence partition preserves
// per-class satisfaction — the same monotonicity that makes validity
// upward-closed — so for a climb node Y ⊇ X₀ every satisfied class of
// Π*_{X₀} splits into satisfied pieces under Y, and only X₀'s
// unsatisfied classes can contribute a violating class to Π*_Y:
//
//	Y → A is valid ⇔ splitting each unsatisfied class of X₀ by the
//	columns Y \ X₀ leaves every piece satisfied.
//
// The unsatisfied classes are exactly what the cover tracker already
// maintains (a demotion IS unsat > 0), and in an update stream they are
// the handful of classes the batch corrupted — the entire climb above a
// demotion runs off a few hundred tuples of tracked state where the
// wave kernel pays a partition product over all n rows.
//
// Refinement is itself incremental along the climb: each verified node
// memoizes its per-member group labels, and a child (its parent plus
// one attribute) regroups by the parent's label plus that one column's
// value — O(|members|) per node regardless of climb height, instead of
// re-encoding every column of Y \ X₀. A parent answered by the oracle
// has no labels; its children fall back to grouping from the root.
//
// Verdicts are byte-identical to HoldsSynOnePass: groups with one
// distinct consequent value satisfy trivially (the FD fast path), and
// multi-value groups run the same common-sense test the per-class
// kernel runs (ValuesSatisfied degrades to syntactic equality on
// ontology-uncovered consequents in both). A refiner is private to its
// repairer task; nothing here is safe for concurrent use.
type rootRefiner struct {
	v       *core.Verifier
	rhs     int
	root    relation.AttrSet
	members []int32                      // rows of X₀'s unsatisfied classes, class-major
	labels  map[relation.AttrSet][]int32 // node → group label per member (root holds the base)

	keyBuf []byte
	groups map[string]int32
	vals   [][]relation.Value // distinct consequent values per group, reused
}

// newRootRefiner snapshots the tracker's unsatisfied classes (post-batch
// state). One O(n) sweep of the row-class table per demoted root,
// amortized over every climb node verified above it.
func newRootRefiner(v *core.Verifier, ct *coverTracker) *rootRefiner {
	rf := &rootRefiner{
		v: v, rhs: ct.d.RHS, root: ct.d.LHS,
		labels: make(map[relation.AttrSet][]int32),
	}
	slot := make(map[int32]int32, ct.unsat)
	next := int32(0)
	for ci, ok := range ct.sat {
		if !ok {
			slot[int32(ci)] = next
			next++
		}
	}
	var base []int32
	for t, ci := range ct.rowClass {
		if ci >= 0 {
			if s, ok := slot[ci]; ok {
				rf.members = append(rf.members, int32(t))
				base = append(base, s)
			}
		}
	}
	rf.labels[rf.root] = base
	return rf
}

// holds verifies y → rhs for a climb node y reached from parent ⊋ root
// (or from the root itself). Base labels separate the root's unsatisfied
// classes, so groups never merge across classes; labels are memoized for
// valid AND invalid nodes — invalid nodes re-enter the frontier and
// their children refine from them.
func (rf *rootRefiner) holds(y, parent relation.AttrSet) bool {
	plab, ok := rf.labels[parent]
	if !ok {
		parent, plab = rf.root, rf.labels[rf.root]
	}
	cols := y.Minus(parent).Attrs()
	rel := rf.v.Relation()
	col := rel.Column(rf.rhs)
	if rf.groups == nil {
		rf.groups = make(map[string]int32, 16)
	}
	for k := range rf.groups {
		delete(rf.groups, k)
	}
	lab := make([]int32, len(rf.members))
	ngroups := int32(0)
	for i, t := range rf.members {
		rf.keyBuf = core.EncodeLHSKey(rel, cols, int(t), rf.keyBuf)
		pl := plab[i]
		rf.keyBuf = append(rf.keyBuf, byte(pl), byte(pl>>8), byte(pl>>16), byte(pl>>24))
		g, ok := rf.groups[string(rf.keyBuf)]
		if !ok {
			g = ngroups
			ngroups++
			if int(g) == len(rf.vals) {
				rf.vals = append(rf.vals, nil)
			}
			rf.vals[g] = rf.vals[g][:0]
			rf.groups[string(rf.keyBuf)] = g
		}
		lab[i] = g
		val := col.At(int(t))
		dup := false
		for _, seen := range rf.vals[g] {
			if seen == val {
				dup = true
				break
			}
		}
		if !dup {
			rf.vals[g] = append(rf.vals[g], val)
		}
	}
	rf.labels[y] = lab
	for g := int32(0); g < ngroups; g++ {
		if len(rf.vals[g]) > 1 && !rf.v.ValuesSatisfied(rf.rhs, rf.vals[g]) {
			return false
		}
	}
	return true
}
