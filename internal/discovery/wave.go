package discovery

import (
	"context"
	"sync"

	"github.com/fastofd/fastofd/internal/core"
	"github.com/fastofd/fastofd/internal/exec"
	"github.com/fastofd/fastofd/internal/relation"
)

// waveVerifier is the batched verification scheduler behind cross-
// consequent parallel repair. Each flipped consequent's repairer runs as
// its own task and explores its own lattice region, but verification
// requests rendezvous here: a request blocks until every live repairer
// has one pending (or has finished), then the whole wave executes at
// once — requests are merged, grouped by antecedent set, and each group
// is answered with a single Π*_X traversal (HoldsSynMulti for validity,
// witnessScanMulti for certificate rescans) instead of one traversal per
// (LHS, RHS) pair. Repairers working the same lattice region — the
// common case, since one batch's touched columns drive every flip — stop
// paying the partition walk k times for k consequents.
//
// The barrier cannot deadlock: live counts unfinished repairers, a
// repairer is either running (and will submit or finish) or blocked here,
// and both submission and finish re-check the all-waiting condition under
// the lock. Zero-node requests return immediately without joining a wave.
// Determinism: group answers depend only on (lhs, rhs set) and the
// instance, never on arrival order, and every caller receives verdicts in
// its own node order.
//
// Cancellation: a wave interrupted by ctx poisons the verifier — the
// error is sticky, every waiter and subsequent request observes it, and
// the repair pass aborts into the batch rollback.
type waveVerifier struct {
	pv      *core.Verifier
	workers int
	ctx     context.Context

	mu   sync.Mutex
	cond *sync.Cond
	live int // repairers not yet finished
	reqs []*waveReq
	err  error // sticky; first wave interruption

	// bufs holds one ProductBuffer per wave-executor worker, reused across
	// every wave this verifier runs: partition products on cache misses
	// dominate wave cost, and a per-miss transient buffer would pay an
	// n-row probe-table allocation and memset on each one.
	bufs []relation.ProductBuffer

	traversals int64 // kernel invocations (one Π*_X walk each)
	probes     int64 // (LHS, RHS) verdicts those walks produced
}

// waveReq is one repairer's pending verification round: the nodes to
// decide for its consequent, answered either as validity verdicts or as
// full witness scans.
type waveReq struct {
	rhs   int
	nodes []relation.AttrSet
	scan  bool // witness scan (certificate) instead of validity verdict

	verdicts []bool
	scans    []scanResult
	done     bool
}

func newWaveVerifier(ctx context.Context, pv *core.Verifier, workers, live int) *waveVerifier {
	wv := &waveVerifier{pv: pv, workers: workers, ctx: ctx, live: live}
	wv.cond = sync.NewCond(&wv.mu)
	return wv
}

// verify answers HoldsSynOnePass for every node (all with the caller's
// consequent), batched through the next wave. nodes must be deduplicated;
// verdicts come back in node order.
func (wv *waveVerifier) verify(rhs int, nodes []relation.AttrSet) ([]bool, error) {
	if len(nodes) == 0 {
		return nil, nil
	}
	req := &waveReq{rhs: rhs, nodes: nodes}
	if err := wv.submit(req); err != nil {
		return nil, err
	}
	return req.verdicts, nil
}

// witnessScan answers witnessScanParts for every node (all with the
// caller's consequent), batched through the next wave.
func (wv *waveVerifier) witnessScan(rhs int, nodes []relation.AttrSet) ([]scanResult, error) {
	if len(nodes) == 0 {
		return nil, nil
	}
	req := &waveReq{rhs: rhs, nodes: nodes, scan: true}
	if err := wv.submit(req); err != nil {
		return nil, err
	}
	return req.scans, nil
}

// finish retires one repairer from the barrier. If the remaining live
// repairers are all blocked on pending requests, the retiring task runs
// their wave — they cannot run it themselves, and no further submission
// is coming to trip the barrier.
func (wv *waveVerifier) finish() {
	wv.mu.Lock()
	wv.live--
	if wv.err == nil && wv.live > 0 && len(wv.reqs) == wv.live {
		wv.runWaveLocked()
	}
	wv.mu.Unlock()
}

// submit enqueues req and blocks until a wave answers it. The submitter
// that completes the barrier (its request makes one per live repairer)
// executes the wave itself, under the lock — late finishers and the next
// round's submissions queue behind it.
func (wv *waveVerifier) submit(req *waveReq) error {
	wv.mu.Lock()
	defer wv.mu.Unlock()
	if wv.err != nil {
		return wv.err
	}
	wv.reqs = append(wv.reqs, req)
	if len(wv.reqs) == wv.live {
		wv.runWaveLocked()
	} else {
		for !req.done && wv.err == nil {
			wv.cond.Wait()
		}
	}
	if req.done {
		return nil
	}
	return wv.err
}

// runWaveLocked executes every pending request as one wave: merge the
// requests' nodes, group by antecedent set, answer each group with one
// multi-RHS kernel call (groups fan out over the exec substrate), then
// release the waiters. Called with wv.mu held.
func (wv *waveVerifier) runWaveLocked() {
	reqs := wv.reqs
	wv.reqs = nil
	type slot struct {
		req *waveReq
		idx int
	}
	type group struct {
		lhs   relation.AttrSet
		scan  bool
		slots []slot
	}
	type groupKey struct {
		lhs  relation.AttrSet
		scan bool
	}
	index := make(map[groupKey]int)
	var groups []group
	for _, req := range reqs {
		if req.scan {
			req.scans = make([]scanResult, len(req.nodes))
		} else {
			req.verdicts = make([]bool, len(req.nodes))
		}
		for i, x := range req.nodes {
			k := groupKey{x, req.scan}
			g, ok := index[k]
			if !ok {
				g = len(groups)
				index[k] = g
				groups = append(groups, group{lhs: x, scan: req.scan})
			}
			groups[g].slots = append(groups[g].slots, slot{req, i})
		}
	}
	if wv.bufs == nil {
		wv.bufs = make([]relation.ProductBuffer, exec.Workers(wv.workers))
	}
	err := exec.For(wv.ctx, len(groups), exec.Workers(wv.workers), func(w, gi int) {
		g := &groups[gi]
		buf := &wv.bufs[w]
		rhs := make([]int, len(g.slots))
		for k, s := range g.slots {
			rhs[k] = s.req.rhs
		}
		if g.scan {
			res := witnessScanMulti(wv.pv, g.lhs, rhs, buf)
			for k, s := range g.slots {
				s.req.scans[s.idx] = res[k]
			}
		} else {
			res := wv.pv.HoldsSynMultiBuf(g.lhs, rhs, buf)
			for k, s := range g.slots {
				s.req.verdicts[s.idx] = res[k]
			}
		}
	})
	if err != nil {
		wv.err = err
		wv.cond.Broadcast()
		return
	}
	wv.traversals += int64(len(groups))
	for _, g := range groups {
		wv.probes += int64(len(g.slots))
	}
	for _, req := range reqs {
		req.done = true
	}
	wv.cond.Broadcast()
}

// kernelStats returns the traversal and probe counters (safe after all
// repairers finished).
func (wv *waveVerifier) kernelStats() (traversals, probes int64) {
	wv.mu.Lock()
	defer wv.mu.Unlock()
	return wv.traversals, wv.probes
}
