package discovery

import (
	"bytes"
	"math/rand"
	"testing"

	"github.com/fastofd/fastofd/internal/core"
	"github.com/fastofd/fastofd/internal/live"
	"github.com/fastofd/fastofd/internal/relation"
)

// keyRel builds a relation whose cell strings are drawn from data, so the
// fuzzer controls the value-id layout: ncols in 1..4, each cell one of 8
// string values chosen by successive bytes (wrapping when data runs out).
func keyRel(t testing.TB, data []byte) *relation.Relation {
	t.Helper()
	if len(data) == 0 {
		data = []byte{0}
	}
	ncols := 1 + int(data[0]%4)
	nrows := 2 + int(data[len(data)-1]%8)
	names := make([]string, ncols)
	vals := []string{"a", "b", "c", "d", "e", "f", "g", "h"}
	for c := range names {
		names[c] = string(rune('A' + c))
	}
	rows := make([][]string, nrows)
	k := 0
	for r := range rows {
		row := make([]string, ncols)
		for c := range row {
			row[c] = vals[int(data[k%len(data)])%len(vals)]
			k++
		}
		rows[r] = row
	}
	rel, err := relation.FromRows(relation.MustSchema(names...), rows)
	if err != nil {
		t.Fatal(err)
	}
	return rel
}

// checkKeyEquiv asserts the three key encoders agree on every row of rel
// projected on cols, and that key equality coincides with value-id tuple
// equality (injectivity of the fixed-width encoding).
func checkKeyEquiv(t testing.TB, rel *relation.Relation, cols []int) {
	t.Helper()
	ct := &coverTracker{cols: cols}
	var coreBuf, liveBuf []byte
	keys := make([]string, rel.NumRows())
	for r := 0; r < rel.NumRows(); r++ {
		coreBuf = core.EncodeLHSKey(rel, cols, r, coreBuf)
		liveBuf = live.EncodeKey(rel, cols, r, liveBuf)
		if !bytes.Equal(coreBuf, liveBuf) {
			t.Fatalf("row %d cols %v: core key %v != live key %v", r, cols, coreBuf, liveBuf)
		}
		if sk := ct.sourceKey(rel, nil, r); sk != string(coreBuf) {
			t.Fatalf("row %d cols %v: tracker key %v != core key %v", r, cols, []byte(sk), coreBuf)
		}
		if len(coreBuf) != 4*len(cols) {
			t.Fatalf("row %d cols %v: key width %d, want %d", r, cols, len(coreBuf), 4*len(cols))
		}
		keys[r] = string(coreBuf)
	}
	for a := 0; a < rel.NumRows(); a++ {
		for b := a + 1; b < rel.NumRows(); b++ {
			same := true
			for _, c := range cols {
				if rel.Value(a, c) != rel.Value(b, c) {
					same = false
					break
				}
			}
			if same != (keys[a] == keys[b]) {
				t.Fatalf("rows %d,%d cols %v: projection equal=%v but key equal=%v", a, b, cols, same, keys[a] == keys[b])
			}
		}
	}
}

// TestKeyEncodingCrossEngine pins the shared key-encoding contract across
// all three engines: core.EncodeLHSKey (monitor shard routing), the
// live.EncodeKey it delegates to (class indexes, overlay routers), and the
// tracker's sourceKey with an empty write segment. Any drift would
// silently desynchronize the merged pipeline's shared indexes.
func TestKeyEncodingCrossEngine(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 40; trial++ {
		data := make([]byte, 8+rng.Intn(40))
		rng.Read(data)
		rel := keyRel(t, data)
		nc := rel.NumCols()
		colSets := [][]int{}
		for c := 0; c < nc; c++ {
			colSets = append(colSets, []int{c})
		}
		all := make([]int, nc)
		for c := range all {
			all[c] = c
		}
		colSets = append(colSets, all)
		for _, cols := range colSets {
			checkKeyEquiv(t, rel, cols)
		}
	}
}

// TestSourceKeySubstitutesOldValues pins the one place the tracker's key
// encoding intentionally differs: given a write segment, written columns
// read the logged pre-batch value, so the key names the row's source-state
// projection even though the relation already holds the target state.
func TestSourceKeySubstitutesOldValues(t *testing.T) {
	rel, err := relation.FromRows(relation.MustSchema("A", "B", "C"), [][]string{
		{"x", "1", "p"}, {"y", "2", "q"},
	})
	if err != nil {
		t.Fatal(err)
	}
	cols := []int{0, 2}
	ct := &coverTracker{cols: cols}
	// A write on column 0 of row 0: old value is row 1's value in column 0.
	seg := []cellWrite{{Row: 0, Col: 0, Old: rel.Value(1, 0), New: rel.Value(0, 0)}}
	got := ct.sourceKey(rel, seg, 0)
	// Expected: column 0 reads the old value, column 2 the relation.
	var want []byte
	for _, v := range []relation.Value{rel.Value(1, 0), rel.Value(0, 2)} {
		want = append(want, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
	}
	if got != string(want) {
		t.Fatalf("sourceKey with seg = %v, want %v", []byte(got), want)
	}
	// A write on a column outside cols must not affect the key.
	segOther := []cellWrite{{Row: 0, Col: 1, Old: rel.Value(1, 1), New: rel.Value(0, 1)}}
	if k := ct.sourceKey(rel, segOther, 0); k != string(core.EncodeLHSKey(rel, cols, 0, nil)) {
		t.Fatalf("write outside cols changed the key: %v", []byte(k))
	}
}

// FuzzKeyEquiv drives checkKeyEquiv with fuzzer-chosen relations and
// column subsets.
func FuzzKeyEquiv(f *testing.F) {
	f.Add([]byte{3, 1, 4, 1, 5, 9, 2, 6})
	f.Add([]byte{0})
	f.Add([]byte{255, 254, 0, 0, 0, 7})
	f.Fuzz(func(t *testing.T, data []byte) {
		rel := keyRel(t, data)
		nc := rel.NumCols()
		// Column subset from the second byte's bits, non-empty.
		var cols []int
		pick := byte(1)
		if len(data) > 1 {
			pick = data[1]
		}
		for c := 0; c < nc; c++ {
			if pick&(1<<c) != 0 {
				cols = append(cols, c)
			}
		}
		if len(cols) == 0 {
			cols = []int{0}
		}
		checkKeyEquiv(t, rel, cols)
	})
}
