// Package discovery implements FastOFD (Algorithms 2–4 of the paper): a
// level-wise, Apriori-style traversal of the set-containment lattice of
// attribute sets that discovers a complete and minimal set of synonym OFDs
// holding on a relation instance w.r.t. an ontology. The axiomatization
// yields the pruning rules Opt-1..Opt-4 (§3.2); each is individually
// toggleable so the optimization-benefit experiment can ablate them.
package discovery

import (
	"time"

	"github.com/fastofd/fastofd/internal/core"
	"github.com/fastofd/fastofd/internal/ontology"
	"github.com/fastofd/fastofd/internal/relation"
)

// Options configure a discovery run. The zero value disables every
// optimization; use DefaultOptions for the paper's full configuration.
type Options struct {
	// PruneAugmentation enables Opt-2: candidate sets C⁺(X) prune supersets
	// of already-discovered antecedents, so non-minimal OFDs are never
	// verified. When disabled, every candidate is verified and minimality
	// is enforced by filtering against the discovered set.
	PruneAugmentation bool
	// PruneKeys enables Opt-3: once an attribute set is known to be a
	// (super)key — its stripped partition is empty — candidates over it
	// validate without verification and partition products for its
	// supersets are skipped.
	PruneKeys bool
	// FDShortcut enables Opt-4: before per-class sense verification, test
	// whether the traditional FD X → A holds using the partition-error
	// comparison e(X) = e(X ∪ A); if so the OFD holds by subsumption.
	FDShortcut bool
	// MaxLevel caps the lattice depth (antecedent size ≤ MaxLevel−1).
	// Zero means no cap. The paper's Exp-4 motivates capping: ~61% of OFDs
	// appear in the top 6 levels for ~25% of the time.
	MaxLevel int
	// MinSupport is the approximate-OFD support threshold κ in (0, 1].
	// A value of 0 or 1 requests exact OFDs.
	MinSupport float64
	// Mode selects the ontological relationship: synonym OFDs (default)
	// or inheritance OFDs (is-a within Theta hops).
	Mode Mode
	// Theta is the inheritance path-length bound (only used with
	// ModeInheritance; the paper's experiments use θ = 5).
	Theta int
	// Workers parallelizes candidate verification and partition products
	// across goroutines. 0 or 1 runs serially; the output is identical
	// for any worker count. Parallel verification requires
	// PruneAugmentation (the ablation path reads evolving global state).
	Workers int
}

// Mode selects which ontological relationship candidate dependencies use.
type Mode int

const (
	// ModeSynonym discovers synonym OFDs (Definition 1).
	ModeSynonym Mode = iota
	// ModeInheritance discovers inheritance OFDs: consequent values must
	// share an ancestor within Theta is-a steps.
	ModeInheritance
)

// DefaultOptions is the configuration used in the paper's main experiments:
// all optimizations on, exact OFDs, unbounded depth.
func DefaultOptions() Options {
	return Options{PruneAugmentation: true, PruneKeys: true, FDShortcut: true}
}

// LevelStat records per-lattice-level effort and yield (Exp-4).
type LevelStat struct {
	Level      int           // antecedent size + 1 (lattice level l)
	Nodes      int           // attribute sets visited at this level
	Candidates int           // candidate OFDs verified
	Discovered int           // minimal OFDs found
	Elapsed    time.Duration // wall time spent at this level
}

// Result is the output of a discovery run.
type Result struct {
	OFDs              core.Set    // complete, minimal set of discovered OFDs
	Levels            []LevelStat // per-level statistics
	CandidatesChecked int         // total validity checks performed
	Elapsed           time.Duration
}

type node struct {
	attrs    relation.AttrSet
	cplus    relation.AttrSet // C⁺(X) as a bitset
	part     *relation.Partition
	superkey bool
}

type discoverer struct {
	rel      *relation.Relation
	verifier *core.Verifier
	opts     Options
	all      relation.AttrSet
	sigma    core.Set
	kappa    float64
	result   *Result
	prodBuf  relation.ProductBuffer
	// prodBufs are per-worker product buffers, retained across lattice
	// levels so probe arrays are allocated once per worker, not per level.
	prodBufs []relation.ProductBuffer
}

// Discover runs FastOFD over the relation and ontology and returns the
// complete, minimal set of synonym OFDs that hold (with support ≥ κ when
// Options.MinSupport is set).
func Discover(rel *relation.Relation, ont *ontology.Ontology, opts Options) *Result {
	start := time.Now()
	// Build the initial single-column partitions with the same worker
	// count the traversal will use.
	pc := relation.NewPartitionCacheParallel(rel, opts.Workers)
	d := &discoverer{
		rel:      rel,
		verifier: core.NewVerifier(rel, ont, pc),
		opts:     opts,
		all:      rel.Schema().All(),
		kappa:    opts.MinSupport,
		result:   &Result{},
	}
	if d.kappa <= 0 || d.kappa > 1 {
		d.kappa = 1
	}
	d.run()
	d.result.OFDs = d.sigma
	d.result.OFDs.Sort()
	d.result.Elapsed = time.Since(start)
	return d.result
}

func (d *discoverer) run() {
	n := d.rel.NumCols()
	pc := d.verifier.Partitions()
	// Level-1 candidates have LHS = ∅; the first verification computes and
	// caches the empty-set partition on demand (the cache is sharded and
	// locked, so concurrent workers missing on it at once are safe).

	// Level 1: singleton attribute sets. C⁺(∅) = R, so C⁺({A}) = R.
	buildStart := time.Now()
	level := make(map[relation.AttrSet]*node, n)
	for a := 0; a < n; a++ {
		s := relation.Single(a)
		p := pc.Get(s)
		level[s] = &node{attrs: s, cplus: d.all, part: p, superkey: p.IsKeyOver()}
	}
	buildTime := time.Since(buildStart)

	for l := 1; len(level) > 0; l++ {
		if d.opts.MaxLevel > 0 && l > d.opts.MaxLevel {
			break
		}
		lvlStart := time.Now()
		stat := LevelStat{Level: l, Nodes: len(level)}
		if d.workers() > 1 {
			d.computeOFDsParallel(level, &stat)
		} else {
			d.computeOFDs(level, &stat)
		}
		// A level's cost includes building it (the partition products of
		// calculateNextLevel) plus verifying its candidates.
		stat.Elapsed = buildTime + time.Since(lvlStart)
		d.result.Levels = append(d.result.Levels, stat)
		buildStart = time.Now()
		if d.workers() > 1 {
			level = d.nextLevelParallel(level)
		} else {
			level = d.nextLevel(level)
		}
		buildTime = time.Since(buildStart)
		// Level l+1 verification only touches partitions of sizes l and
		// l+1; drop older levels (keep singles, the cache's rebuild base).
		if l-1 >= 2 {
			pc.Evict(l - 1)
		}
	}
}

// computeOFDs implements Algorithm 4: intersect parent candidate sets, then
// verify each non-trivial candidate (X \ A) → A with A ∈ X ∩ C⁺(X).
func (d *discoverer) computeOFDs(level map[relation.AttrSet]*node, stat *LevelStat) {
	for _, nd := range level {
		x := nd.attrs
		for _, a := range x.Attrs() {
			candidate := core.OFD{LHS: x.Without(a), RHS: a}
			if d.opts.PruneAugmentation {
				if !nd.cplus.Has(a) {
					continue
				}
			} else if d.impliedByDiscovered(candidate) {
				// Ablation path: still verify (paying the cost Opt-2
				// avoids) but never emit a non-minimal OFD.
				stat.Candidates++
				d.result.CandidatesChecked++
				d.valid(candidate, nd)
				continue
			}
			stat.Candidates++
			d.result.CandidatesChecked++
			if d.valid(candidate, nd) {
				d.sigma = append(d.sigma, candidate)
				stat.Discovered++
				nd.cplus = nd.cplus.Without(a)
			}
		}
	}
}

// impliedByDiscovered reports whether some already-discovered Y → A with
// Y ⊆ X makes the candidate non-minimal (Augmentation).
func (d *discoverer) impliedByDiscovered(c core.OFD) bool {
	for _, f := range d.sigma {
		if f.RHS == c.RHS && f.LHS.SubsetOf(c.LHS) {
			return true
		}
	}
	return false
}

// valid checks whether (X \ A) → A holds on the instance, applying Opt-3
// (keys) and Opt-4 (FD shortcut) when enabled. nd is the lattice node for X
// whose partition enables the FD error test.
func (d *discoverer) valid(c core.OFD, nd *node) bool {
	pc := d.verifier.Partitions()
	if d.opts.PruneKeys {
		// Opt-3: an empty stripped partition over the antecedent means the
		// antecedent is a superkey; the dependency holds vacuously.
		if pc.Get(c.LHS).IsKeyOver() {
			return true
		}
	}
	if d.opts.FDShortcut && d.kappa >= 1 && nd.part != nil {
		// Opt-4: X\A → A is a traditional FD iff e(X\A) = e(X); partition
		// errors are O(#classes) to compare and already computed.
		lhsPart := pc.Get(c.LHS)
		if lhsPart.Error() == nd.part.Error() {
			return true
		}
	}
	if d.opts.Mode == ModeInheritance {
		if d.kappa < 1 {
			return d.verifier.SupportInh(c, d.opts.Theta) >= d.kappa
		}
		return d.verifier.HoldsInh(c, d.opts.Theta)
	}
	if d.kappa < 1 {
		return d.verifier.HoldsApprox(c, d.kappa)
	}
	return d.verifier.HoldsSyn(c)
}

// nextLevel implements Algorithm 3 (calculateNextLevel): join pairs of
// l-sets sharing an (l−1)-prefix, keep joins whose every l-subset survived
// at the current level, and compute partitions via the stripped product.
func (d *discoverer) nextLevel(level map[relation.AttrSet]*node) map[relation.AttrSet]*node {
	next := make(map[relation.AttrSet]*node)
	// Group by prefix (set minus its largest attribute) — the paper's
	// singleAttrDiffBlocks: two sets are in one block iff they share an
	// (l−1)-subset and differ in exactly one attribute.
	blocks := make(map[relation.AttrSet][]*node)
	for _, nd := range level {
		attrs := nd.attrs.Attrs()
		prefix := nd.attrs.Without(attrs[len(attrs)-1])
		blocks[prefix] = append(blocks[prefix], nd)
	}
	for _, block := range blocks {
		for i := 0; i < len(block); i++ {
			for j := i + 1; j < len(block); j++ {
				x := block[i].attrs.Union(block[j].attrs)
				if _, done := next[x]; done {
					continue
				}
				// Apriori condition: every l-subset of X must be in L_l.
				ok := true
				for _, a := range x.Attrs() {
					if _, in := level[x.Without(a)]; !in {
						ok = false
						break
					}
				}
				if !ok {
					continue
				}
				nd := &node{attrs: x, cplus: d.cplusOf(x, level)}
				if d.opts.PruneAugmentation && nd.cplus.IsEmpty() {
					// Node can contribute no candidate at any depth.
					continue
				}
				superkeyParent := block[i].superkey || block[j].superkey
				if d.opts.PruneKeys && superkeyParent {
					// Supersets of keys stay keys; skip the product.
					nd.superkey = true
					nd.part = &relation.Partition{N: d.rel.NumRows(), Stripped: true}
					d.verifier.Partitions().Put(x, nd.part)
				} else {
					nd.part = d.prodBuf.Product(block[i].part, block[j].part)
					nd.superkey = nd.part.IsKeyOver()
					d.verifier.Partitions().Put(x, nd.part)
				}
				next[x] = nd
			}
		}
	}
	return next
}

// cplusOf computes C⁺(X) = ∩_{A ∈ X} C⁺(X \ A) (Algorithm 4, line 2).
func (d *discoverer) cplusOf(x relation.AttrSet, prev map[relation.AttrSet]*node) relation.AttrSet {
	c := d.all
	for _, a := range x.Attrs() {
		parent, ok := prev[x.Without(a)]
		if !ok {
			return relation.EmptySet
		}
		c = c.Intersect(parent.cplus)
	}
	return c
}
