// Package discovery implements FastOFD (Algorithms 2–4 of the paper): a
// level-wise, Apriori-style traversal of the set-containment lattice of
// attribute sets that discovers a complete and minimal set of synonym OFDs
// holding on a relation instance w.r.t. an ontology. The axiomatization
// yields the pruning rules Opt-1..Opt-4 (§3.2); each is individually
// toggleable so the optimization-benefit experiment can ablate them.
package discovery

import (
	"context"
	"sort"
	"time"

	"github.com/fastofd/fastofd/internal/core"
	"github.com/fastofd/fastofd/internal/exec"
	"github.com/fastofd/fastofd/internal/ontology"
	"github.com/fastofd/fastofd/internal/relation"
)

// Options configure a discovery run. The zero value disables every
// optimization; use DefaultOptions for the paper's full configuration.
type Options struct {
	// PruneAugmentation enables Opt-2: candidate sets C⁺(X) prune supersets
	// of already-discovered antecedents, so non-minimal OFDs are never
	// verified. When disabled, every candidate is verified and minimality
	// is enforced by filtering against the discovered set.
	PruneAugmentation bool
	// PruneKeys enables Opt-3: once an attribute set is known to be a
	// (super)key — its stripped partition is empty — candidates over it
	// validate without verification and partition products for its
	// supersets are skipped.
	PruneKeys bool
	// FDShortcut enables Opt-4: before per-class sense verification, test
	// whether the traditional FD X → A holds using the partition-error
	// comparison e(X) = e(X ∪ A); if so the OFD holds by subsumption.
	FDShortcut bool
	// MaxLevel caps the lattice depth (antecedent size ≤ MaxLevel−1).
	// Zero means no cap. The paper's Exp-4 motivates capping: ~61% of OFDs
	// appear in the top 6 levels for ~25% of the time.
	MaxLevel int
	// MinSupport is the approximate-OFD support threshold κ in (0, 1].
	// A value of 0 or 1 requests exact OFDs.
	MinSupport float64
	// Mode selects the ontological relationship: synonym OFDs (default)
	// or inheritance OFDs (is-a within Theta hops).
	Mode Mode
	// Theta is the inheritance path-length bound (only used with
	// ModeInheritance; the paper's experiments use θ = 5).
	Theta int
	// Workers parallelizes candidate verification and partition products
	// across goroutines on the shared exec substrate. 0 selects NumCPU; 1
	// runs serially; the output is byte-identical for any worker count.
	// Constraint: candidate VERIFICATION parallelizes only when
	// PruneAugmentation is on — the ablation path reads the evolving
	// discovered set and must stay sequential. Partition products (the
	// dominant cost) honor Workers in every configuration; when
	// verification is forced sequential despite Workers > 1, the run
	// records a note in its stage stats (Result.Stats) instead of
	// silently ignoring the setting.
	Workers int
	// Stats, when non-nil, is the stage-stats registry the run reports
	// into (per-level build/verify spans, cache hit rates, notes). When
	// nil, Discover creates a private registry, exposed as Result.Stats.
	Stats *exec.Stats
	// Cache, when non-nil, is a pre-warmed partition cache over the same
	// relation for maintainer construction to verify against instead of
	// building a fresh one. This is the snapshot-restore path: the cache
	// restored alongside the relation is snapshot-consistent with it, so
	// its partitions (and any the build adds) stay valid until the first
	// mutation. Discover itself ignores this field — a discovery run
	// drives its own level-by-level cache eviction.
	Cache *relation.PartitionCache
	// Verifier, when non-nil, is the pipeline's shared partition-cache-
	// backed verifier: the maintainer adopts it for both tracker
	// verification and the per-batch verify phase instead of building its
	// own, so the monitor, the maintainer, and the repair search all
	// consult one set of live partitions. Implies the verifier's cache is
	// kept coherent by the caller's invalidation protocol (the Pipeline's
	// ApplyBatch does this). Discover itself ignores this field.
	Verifier *core.Verifier
	// SerialRepair forces the maintainer's per-batch cover repair to
	// handle flipped consequents one at a time instead of staging them as
	// concurrent tasks on the wave scheduler. The repaired cover is
	// byte-identical either way (every verdict is a pure function of the
	// instance); the knob exists for equivalence tests and for profiling
	// the cross-consequent win in isolation. Discover ignores this field.
	SerialRepair bool
	// RepairCacheBudget bounds the standalone maintainer's persistent
	// repair partition cache in bytes: 0 selects DefaultRepairCacheBudget
	// when the maintainer builds its own cache (a caller-supplied Cache
	// keeps its configured budget), negative disables the bound, positive
	// values are applied as given. Ignored in pipeline mode, where the
	// shared cache's budget governs. Discover ignores this field.
	RepairCacheBudget int64
}

// Mode selects which ontological relationship candidate dependencies use.
type Mode int

const (
	// ModeSynonym discovers synonym OFDs (Definition 1).
	ModeSynonym Mode = iota
	// ModeInheritance discovers inheritance OFDs: consequent values must
	// share an ancestor within Theta is-a steps.
	ModeInheritance
)

// DefaultOptions is the configuration used in the paper's main experiments:
// all optimizations on, exact OFDs, unbounded depth.
func DefaultOptions() Options {
	return Options{PruneAugmentation: true, PruneKeys: true, FDShortcut: true}
}

// LevelStat records per-lattice-level effort and yield (Exp-4).
type LevelStat struct {
	Level      int           // antecedent size + 1 (lattice level l)
	Nodes      int           // attribute sets visited at this level
	Candidates int           // candidate OFDs verified
	Discovered int           // minimal OFDs found
	Elapsed    time.Duration // wall time spent at this level
}

// Result is the output of a discovery run. On a cancelled or timed-out
// context it is a well-formed partial result: OFDs holds the (sorted)
// dependencies verified before the interrupt, Levels the fully completed
// levels, and the accompanying error wraps context.Canceled or
// context.DeadlineExceeded.
type Result struct {
	OFDs              core.Set    // complete, minimal set of discovered OFDs
	Levels            []LevelStat // per-level statistics
	CandidatesChecked int         // total validity checks performed
	Elapsed           time.Duration
	// Stats is the run's per-stage observability registry (level build and
	// verification spans, partition-cache hit rates, notes such as the
	// sequential-verification fallback). Never nil.
	Stats *exec.Stats
}

type node struct {
	attrs    relation.AttrSet
	cplus    relation.AttrSet // C⁺(X) as a bitset
	part     *relation.Partition
	superkey bool
}

type discoverer struct {
	rel      *relation.Relation
	verifier *core.Verifier
	opts     Options
	pool     *exec.Pool
	all      relation.AttrSet
	sigma    core.Set
	kappa    float64
	result   *Result
	// prodBufs are per-worker product buffers, retained across lattice
	// levels so probe arrays are allocated once per worker, not per level.
	prodBufs []relation.ProductBuffer
}

// Discover runs FastOFD over the relation and ontology and returns the
// complete, minimal set of synonym OFDs that hold (with support ≥ κ when
// Options.MinSupport is set). It is DiscoverContext under a background
// context, which cannot be interrupted, so the error is statically nil.
func Discover(rel *relation.Relation, ont *ontology.Ontology, opts Options) *Result {
	res, _ := DiscoverContext(context.Background(), rel, ont, opts)
	return res
}

// DiscoverContext is Discover with cooperative cancellation: a cancelled or
// deadline-exceeded ctx stops lattice traversal between nodes (verification)
// and between partition products (level building), returning the partial
// result accumulated so far — sorted OFDs, fully completed level stats —
// together with an error wrapping the context error. For an uncancelled
// run the result is byte-identical to Discover's for any worker count.
func DiscoverContext(ctx context.Context, rel *relation.Relation, ont *ontology.Ontology, opts Options) (*Result, error) {
	start := time.Now()
	stats := opts.Stats
	if stats == nil {
		stats = exec.NewStats()
	}
	totalSpan := stats.Span("discover.total")
	pool := exec.NewPool(opts.Workers, stats)
	// Build the initial single-column partitions with the same worker
	// count the traversal will use.
	buildSpan := stats.Span("discover.partitions")
	buildSpan.Workers(pool.Size())
	pc, err := relation.NewPartitionCacheContext(ctx, rel, pool.Size())
	buildSpan.Items(rel.NumCols())
	buildSpan.End()
	d := &discoverer{
		rel:      rel,
		verifier: core.NewVerifier(rel, ont, pc),
		opts:     opts,
		pool:     pool,
		all:      rel.Schema().All(),
		kappa:    opts.MinSupport,
		result:   &Result{Stats: stats},
	}
	if d.kappa <= 0 || d.kappa > 1 {
		d.kappa = 1
	}
	if err == nil {
		err = d.run(ctx)
	}
	d.result.OFDs = d.sigma
	d.result.OFDs.Sort()
	d.result.Elapsed = time.Since(start)
	st := pc.Stats()
	totalSpan.Cache(st.Hits, st.Misses)
	totalSpan.Workers(pool.Size())
	totalSpan.Items(d.result.CandidatesChecked)
	totalSpan.End()
	return d.result, err
}

func (d *discoverer) run(ctx context.Context) error {
	n := d.rel.NumCols()
	pc := d.verifier.Partitions()
	// Level-1 candidates have LHS = ∅; the first verification computes and
	// caches the empty-set partition on demand (the cache is sharded and
	// locked, so concurrent workers missing on it at once are safe).

	// Level 1: singleton attribute sets. C⁺(∅) = R, so C⁺({A}) = R.
	buildStart := time.Now()
	level := make(map[relation.AttrSet]*node, n)
	for a := 0; a < n; a++ {
		s := relation.Single(a)
		p := pc.Get(s)
		level[s] = &node{attrs: s, cplus: d.all, part: p, superkey: p.IsKeyOver()}
	}
	buildTime := time.Since(buildStart)

	for l := 1; len(level) > 0; l++ {
		if d.opts.MaxLevel > 0 && l > d.opts.MaxLevel {
			break
		}
		lvlStart := time.Now()
		stat := LevelStat{Level: l, Nodes: len(level)}
		verifySpan := d.pool.Stats().Span("discover.verify")
		verifySpan.Workers(d.verifyWorkers())
		var err error
		if d.verifyWorkers() > 1 {
			err = d.computeOFDsParallel(ctx, level, &stat)
		} else {
			err = d.computeOFDs(ctx, level, &stat)
		}
		verifySpan.Items(stat.Candidates)
		verifySpan.End()
		if err != nil {
			return err
		}
		// A level's cost includes building it (the partition products of
		// calculateNextLevel) plus verifying its candidates.
		stat.Elapsed = buildTime + time.Since(lvlStart)
		d.result.Levels = append(d.result.Levels, stat)
		buildStart = time.Now()
		buildSpan := d.pool.Stats().Span("discover.build")
		buildSpan.Workers(d.pool.Size())
		next, err := d.nextLevel(ctx, level)
		if next != nil {
			buildSpan.Items(len(next))
		}
		buildSpan.End()
		if err != nil {
			return err
		}
		level = next
		buildTime = time.Since(buildStart)
		// Level l+1 verification only touches partitions of sizes l and
		// l+1; drop older levels (keep singles, the cache's rebuild base).
		if l-1 >= 2 {
			pc.Evict(l - 1)
		}
	}
	return nil
}

// computeOFDs implements Algorithm 4 sequentially: intersect parent
// candidate sets, then verify each non-trivial candidate (X \ A) → A with
// A ∈ X ∩ C⁺(X). The context is checked between nodes (the same work-item
// granularity as the parallel path); on cancellation the level's
// already-verified OFDs stay in Σ and the wrapped error is returned.
func (d *discoverer) computeOFDs(ctx context.Context, level map[relation.AttrSet]*node, stat *LevelStat) error {
	nodes := make([]*node, 0, len(level))
	for _, nd := range level {
		nodes = append(nodes, nd)
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i].attrs < nodes[j].attrs })
	for _, nd := range nodes {
		if err := exec.Interrupted(ctx, "discovery verification"); err != nil {
			return err
		}
		x := nd.attrs
		for _, a := range x.Attrs() {
			candidate := core.OFD{LHS: x.Without(a), RHS: a}
			if d.opts.PruneAugmentation {
				if !nd.cplus.Has(a) {
					continue
				}
			} else if d.impliedByDiscovered(candidate) {
				// Ablation path: still verify (paying the cost Opt-2
				// avoids) but never emit a non-minimal OFD.
				stat.Candidates++
				d.result.CandidatesChecked++
				d.valid(candidate, nd)
				continue
			}
			stat.Candidates++
			d.result.CandidatesChecked++
			if d.valid(candidate, nd) {
				d.sigma = append(d.sigma, candidate)
				stat.Discovered++
				nd.cplus = nd.cplus.Without(a)
			}
		}
	}
	return nil
}

// impliedByDiscovered reports whether some already-discovered Y → A with
// Y ⊆ X makes the candidate non-minimal (Augmentation).
func (d *discoverer) impliedByDiscovered(c core.OFD) bool {
	for _, f := range d.sigma {
		if f.RHS == c.RHS && f.LHS.SubsetOf(c.LHS) {
			return true
		}
	}
	return false
}

// valid checks whether (X \ A) → A holds on the instance, applying Opt-3
// (keys) and Opt-4 (FD shortcut) when enabled. nd is the lattice node for X
// whose partition enables the FD error test.
func (d *discoverer) valid(c core.OFD, nd *node) bool {
	pc := d.verifier.Partitions()
	if d.opts.PruneKeys {
		// Opt-3: an empty stripped partition over the antecedent means the
		// antecedent is a superkey; the dependency holds vacuously.
		if pc.Get(c.LHS).IsKeyOver() {
			return true
		}
	}
	if d.opts.FDShortcut && d.kappa >= 1 && nd.part != nil {
		// Opt-4: X\A → A is a traditional FD iff e(X\A) = e(X); partition
		// errors are O(#classes) to compare and already computed.
		lhsPart := pc.Get(c.LHS)
		if lhsPart.Error() == nd.part.Error() {
			return true
		}
	}
	if d.opts.Mode == ModeInheritance {
		if d.kappa < 1 {
			return d.verifier.SupportInh(c, d.opts.Theta) >= d.kappa
		}
		return d.verifier.HoldsInh(c, d.opts.Theta)
	}
	if d.kappa < 1 {
		return d.verifier.HoldsApprox(c, d.kappa)
	}
	return d.verifier.HoldsSyn(c)
}
