package discovery

import (
	"context"
	"errors"
	"math/rand"
	"reflect"
	"runtime"
	"testing"

	"github.com/fastofd/fastofd/internal/core"
)

// TestMaintainerSerialParallelRepairEquivalence is the cross-consequent
// scheduler's stream-equivalence sweep: for random instances and mixed
// update/append streams, every (Workers, SerialRepair) combination lands
// the same cover and the same diff after every batch, and the serial
// reference stays equivalent to fresh discovery. Determinism must come
// from the staged canonical-order commit, not from scheduling luck, so
// the sweep crosses worker counts with both repair modes.
func TestMaintainerSerialParallelRepairEquivalence(t *testing.T) {
	type cfg struct {
		workers int
		serial  bool
	}
	sweep := []cfg{
		{workers: 1, serial: true}, // reference: fully serial
		{workers: 1, serial: false},
		{workers: 2, serial: true},
		{workers: 2, serial: false},
		{workers: 0, serial: false}, // all CPUs, parallel repair
	}
	rng := rand.New(rand.NewSource(97))
	for trial := 0; trial < 20; trial++ {
		rel, ont := randomInstance(rng)
		stream := randomStream(rng, rel, 4, 8)
		mts := make([]*Maintainer, len(sweep))
		for k, c := range sweep {
			opts := DefaultOptions()
			opts.Workers = c.workers
			opts.SerialRepair = c.serial
			var err error
			mts[k], err = NewMaintainer(rel.Clone(), ont, opts)
			if err != nil {
				t.Fatalf("trial %d: NewMaintainer(%+v): %v", trial, c, err)
			}
		}
		for b, op := range stream {
			var first core.Set
			var firstDiff Diff
			for k, mt := range mts {
				diff := applyOp(t, mt, op)
				got := mt.Cover()
				if k == 0 {
					first, firstDiff = got, diff
					want := Discover(mt.rel, ont, DefaultOptions()).OFDs
					if !reflect.DeepEqual(got, want) {
						t.Fatalf("trial %d batch %d: serial cover diverged from fresh discovery\n got: %v\nwant: %v",
							trial, b, got, want)
					}
					continue
				}
				if !reflect.DeepEqual(got, first) {
					t.Fatalf("trial %d batch %d: %+v cover differs from serial reference\n got: %v\nwant: %v",
						trial, b, sweep[k], got, first)
				}
				if !reflect.DeepEqual(diff, firstDiff) {
					t.Fatalf("trial %d batch %d: %+v diff differs from serial reference\n got: %+v\nwant: %+v",
						trial, b, sweep[k], diff, firstDiff)
				}
			}
		}
	}
}

// TestMaintainerMidRepairCancellation interrupts parallel cross-consequent
// repairs at varying depths: a cancelled batch must roll back atomically
// (cover, epoch, and relation exactly as before), the rolled-back state
// must still match a fresh discovery over the restored instance, no wave
// workers may outlive the call, and landing the same batch afterwards must
// behave as if the cancellation never happened.
func TestMaintainerMidRepairCancellation(t *testing.T) {
	rng := rand.New(rand.NewSource(131))
	for trial := 0; trial < 8; trial++ {
		rel, ont := randomInstance(rng)
		opts := DefaultOptions()
		opts.Workers = 2
		mt, err := NewMaintainer(rel.Clone(), ont, opts)
		if err != nil {
			t.Fatal(err)
		}
		stream := randomStream(rng, mt.rel, 4, 4)
		polls := []int{1, 2, 3, 5, 8}
		for b, op := range stream {
			if len(op.updates) == 0 {
				continue
			}
			coverBefore := mt.Cover()
			epochBefore := mt.Epoch()
			rowsBefore := mt.rel.Rows()
			before := runtime.NumGoroutine()
			_, err := mt.ApplyBatchContext(newCancelAfterPolls(polls[b%len(polls)]), op.updates)
			if err != nil {
				if !errors.Is(err, context.Canceled) {
					t.Fatalf("trial %d batch %d: want context.Canceled, got %v", trial, b, err)
				}
				if got := mt.Cover(); !reflect.DeepEqual(got, coverBefore) {
					t.Fatalf("trial %d batch %d: cover changed across cancelled repair\n got: %v\nwant: %v",
						trial, b, got, coverBefore)
				}
				if mt.Epoch() != epochBefore {
					t.Fatalf("trial %d batch %d: epoch advanced across cancelled repair", trial, b)
				}
				if got := mt.rel.Rows(); !reflect.DeepEqual(got, rowsBefore) {
					t.Fatalf("trial %d batch %d: relation changed across cancelled repair", trial, b)
				}
				// Post-cancel Discover identity: the restored instance still
				// yields exactly the maintained cover.
				if want := Discover(mt.rel, ont, DefaultOptions()).OFDs; !reflect.DeepEqual(coverBefore, want) {
					t.Fatalf("trial %d batch %d: post-cancel discovery diverged\n got: %v\nwant: %v",
						trial, b, coverBefore, want)
				}
				waitGoroutines(t, before)
			}
			// Land the full op (updates and appends) for real; any state the
			// rollback failed to restore surfaces as a divergence here or on
			// a later batch.
			applyOp(t, mt, op)
			got := mt.Cover()
			want := Discover(mt.rel, ont, DefaultOptions()).OFDs
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("trial %d batch %d: post-cancellation cover diverged\n got: %v\nwant: %v",
					trial, b, got, want)
			}
		}
	}
}
