package discovery

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"testing"
	"time"

	"github.com/fastofd/fastofd/internal/core"
	"github.com/fastofd/fastofd/internal/gen"
)

// cancelAfterPolls is a context.Context that cancels itself on its nth
// Err() poll. The engines poll between levels and work items, so this
// yields a deterministic mid-run cancellation without sleeps or timing
// games; exec.For workers additionally observe the closed Done channel.
type cancelAfterPolls struct {
	mu   sync.Mutex
	left int
	done chan struct{}
}

func newCancelAfterPolls(n int) *cancelAfterPolls {
	return &cancelAfterPolls{left: n, done: make(chan struct{})}
}

func (c *cancelAfterPolls) Deadline() (time.Time, bool) { return time.Time{}, false }
func (c *cancelAfterPolls) Done() <-chan struct{}       { return c.done }
func (c *cancelAfterPolls) Value(key any) any           { return nil }

func (c *cancelAfterPolls) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.left <= 0 {
		return context.Canceled
	}
	c.left--
	if c.left == 0 {
		close(c.done)
		return context.Canceled
	}
	return nil
}

// waitGoroutines fails the test if the goroutine count has not returned to
// the pre-run baseline — i.e. a cancelled engine leaked workers.
func waitGoroutines(t *testing.T, before int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("goroutine leak: %d before, %d after", before, runtime.NumGoroutine())
}

func TestDiscoverPreCancelled(t *testing.T) {
	ds := gen.Clinical(300, 17)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := DiscoverContext(ctx, ds.Rel, ds.FullOnt, DefaultOptions())
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if res == nil || res.Stats == nil {
		t.Fatalf("cancelled discovery must still return a well-formed result, got %+v", res)
	}
}

// TestDiscoverCancelMidLattice interrupts the lattice traversal at varying
// depths and checks the partial-result contract: the error wraps
// context.Canceled, every reported OFD is one the full run also reports
// (whole-level semantics — no half-verified level leaks out), and no
// worker goroutines outlive the call, even with a parallel pool.
func TestDiscoverCancelMidLattice(t *testing.T) {
	ds := gen.Clinical(400, 17)
	full := Discover(ds.Rel, ds.FullOnt, DefaultOptions())
	inFull := make(map[core.OFD]bool, len(full.OFDs))
	for _, d := range full.OFDs {
		inFull[d] = true
	}
	for _, polls := range []int{1, 2, 3, 5, 8} {
		before := runtime.NumGoroutine()
		opts := DefaultOptions()
		opts.Workers = 4
		res, err := DiscoverContext(newCancelAfterPolls(polls), ds.Rel, ds.FullOnt, opts)
		if err == nil {
			// The run finished before the countdown elapsed; it must then
			// match the full result exactly.
			if len(res.OFDs) != len(full.OFDs) {
				t.Fatalf("polls=%d: uncancelled run differs from full run", polls)
			}
			continue
		}
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("polls=%d: want context.Canceled, got %v", polls, err)
		}
		if res == nil || res.Stats == nil {
			t.Fatalf("polls=%d: cancelled discovery returned malformed result", polls)
		}
		for _, d := range res.OFDs {
			if !inFull[d] {
				t.Fatalf("polls=%d: partial result contains %v, absent from the full run", polls, d)
			}
		}
		waitGoroutines(t, before)
	}
}
