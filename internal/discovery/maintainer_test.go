package discovery

import (
	"context"
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"github.com/fastofd/fastofd/internal/core"
	"github.com/fastofd/fastofd/internal/gen"
	"github.com/fastofd/fastofd/internal/ontology"
	"github.com/fastofd/fastofd/internal/relation"
)

// streamOp is one step of a synthetic update stream: a batch of cell
// updates, an appended row, or both.
type streamOp struct {
	updates []core.CellUpdate
	appends [][]string
}

// randomStream derives a stream of mixed update/append batches over the
// instance's shape: values drawn from the live domain with occasional
// novel strings, rows/columns unrestricted (the maintainer has no
// antecedent/consequent split).
func randomStream(rng *rand.Rand, rel *relation.Relation, domain, nBatches int) []streamOp {
	ops := make([]streamOp, nBatches)
	rows := rel.NumRows()
	cols := rel.NumCols()
	value := func() string {
		if rng.Intn(6) == 0 {
			return fmt.Sprintf("novel%d", rng.Intn(4))
		}
		return fmt.Sprintf("v%d", rng.Intn(domain))
	}
	for b := range ops {
		nUpd := rng.Intn(5)
		for u := 0; u < nUpd; u++ {
			ops[b].updates = append(ops[b].updates, core.CellUpdate{
				Row: rng.Intn(rows), Col: rng.Intn(cols), Value: value(),
			})
		}
		if rng.Intn(3) == 0 {
			row := make([]string, cols)
			for c := range row {
				row[c] = value()
			}
			ops[b].appends = append(ops[b].appends, row)
			rows++
		}
	}
	return ops
}

// applyOp drives one stream op through a maintainer, folding the diffs.
func applyOp(t *testing.T, mt *Maintainer, op streamOp) Diff {
	t.Helper()
	var total Diff
	d, err := mt.ApplyBatch(op.updates)
	if err != nil {
		t.Fatalf("ApplyBatch: %v", err)
	}
	total.Added = append(total.Added, d.Added...)
	total.Removed = append(total.Removed, d.Removed...)
	for _, row := range op.appends {
		d, err := mt.AppendRow(row)
		if err != nil {
			t.Fatalf("AppendRow: %v", err)
		}
		total.Added = append(total.Added, d.Added...)
		total.Removed = append(total.Removed, d.Removed...)
	}
	return total
}

// TestMaintainerMatchesFreshDiscover is the stream-equivalence property
// test: for random instances, ontologies, and mixed update/append
// streams, the maintained cover equals a fresh discovery over the
// current instance after every batch, identically for Workers 1
// (serial), 2, and 0 (all CPUs).
func TestMaintainerMatchesFreshDiscover(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	workerSweep := []int{1, 2, 0}
	for trial := 0; trial < 25; trial++ {
		rel, ont := randomInstance(rng)
		domain := 4
		stream := randomStream(rng, rel, domain, 8)
		mts := make([]*Maintainer, len(workerSweep))
		for k, w := range workerSweep {
			opts := DefaultOptions()
			opts.Workers = w
			var err error
			mts[k], err = NewMaintainer(rel.Clone(), ont, opts)
			if err != nil {
				t.Fatalf("trial %d: NewMaintainer(workers=%d): %v", trial, w, err)
			}
		}
		for b, op := range stream {
			var first core.Set
			var firstDiff Diff
			for k, mt := range mts {
				diff := applyOp(t, mt, op)
				got := mt.Cover()
				if k == 0 {
					first, firstDiff = got, diff
					opts := DefaultOptions()
					opts.Workers = workerSweep[k]
					want := Discover(mt.rel, ont, opts).OFDs
					if !reflect.DeepEqual(got, want) {
						t.Fatalf("trial %d batch %d: maintained cover diverged from fresh discovery\n got: %v\nwant: %v\nrows: %v",
							trial, b, got, want, mt.rel.Rows())
					}
					continue
				}
				if !reflect.DeepEqual(got, first) {
					t.Fatalf("trial %d batch %d: workers=%d cover differs from serial\n got: %v\nwant: %v",
						trial, b, workerSweep[k], got, first)
				}
				if !reflect.DeepEqual(diff, firstDiff) {
					t.Fatalf("trial %d batch %d: workers=%d diff differs from serial\n got: %+v\nwant: %+v",
						trial, b, workerSweep[k], diff, firstDiff)
				}
			}
		}
	}
}

// TestMaintainerOnGeneratedWorkload runs the same equivalence check over
// the clinical generator preset — realistic column shapes (unique keys,
// categorical hierarchies, ontology-backed senses) rather than uniform
// random noise.
func TestMaintainerOnGeneratedWorkload(t *testing.T) {
	ds := gen.Generate(gen.Config{Rows: 120, Seed: 9, Preset: "clinical"})
	sub, err := ds.Rel.ProjectColumns([]int{1, 2, 3, 4, 5, 6})
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultOptions()
	opts.Workers = 2
	mt, err := NewMaintainer(sub.Clone(), ds.FullOnt, opts)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(17))
	pool := make([][]string, sub.NumCols())
	for c := range pool {
		for r := 0; r < sub.NumRows(); r += 7 {
			pool[c] = append(pool[c], sub.Dict(c).String(sub.Value(r, c)))
		}
	}
	for b := 0; b < 6; b++ {
		var ups []core.CellUpdate
		for u := 0; u < 8; u++ {
			c := rng.Intn(sub.NumCols())
			ups = append(ups, core.CellUpdate{
				Row: rng.Intn(mt.NumRows()), Col: c, Value: pool[c][rng.Intn(len(pool[c]))],
			})
		}
		if _, err := mt.ApplyBatch(ups); err != nil {
			t.Fatal(err)
		}
		got := mt.Cover()
		want := Discover(mt.rel, ds.FullOnt, DefaultOptions()).OFDs
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("batch %d: cover diverged\n got: %v\nwant: %v", b, got, want)
		}
	}
}

// TestMaintainerAppendRowsBatchEquivalence: a batched append and the
// same rows appended one at a time land on the same cover — the batched
// repair pass sees exactly the union of per-row demotions — and both
// match fresh discovery.
func TestMaintainerAppendRowsBatchEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	for trial := 0; trial < 10; trial++ {
		rel, ont := randomInstance(rng)
		batched, err := NewMaintainer(rel.Clone(), ont, DefaultOptions())
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		single, err := NewMaintainer(rel.Clone(), ont, DefaultOptions())
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		rows := make([][]string, 3+rng.Intn(4))
		for i := range rows {
			row := make([]string, rel.NumCols())
			for c := range row {
				row[c] = fmt.Sprintf("v%d", rng.Intn(4))
			}
			rows[i] = row
		}
		if _, err := batched.AppendRows(rows); err != nil {
			t.Fatalf("trial %d: AppendRows: %v", trial, err)
		}
		for _, row := range rows {
			if _, err := single.AppendRow(row); err != nil {
				t.Fatalf("trial %d: AppendRow: %v", trial, err)
			}
		}
		got := batched.Cover()
		if want := single.Cover(); !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d: batched append cover differs from row-at-a-time\n got: %v\nwant: %v", trial, got, want)
		}
		if want := Discover(batched.rel, ont, DefaultOptions()).OFDs; !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d: batched append cover diverged from fresh discovery\n got: %v\nwant: %v", trial, got, want)
		}
	}
}

// TestMaintainerRejectsUnsupportedOptions: the incremental argument is
// only sound for exact synonym OFDs over the uncapped lattice.
func TestMaintainerRejectsUnsupportedOptions(t *testing.T) {
	rel, ont := randomInstance(rand.New(rand.NewSource(3)))
	bad := []Options{
		{Mode: ModeInheritance, Theta: 5},
		{MinSupport: 0.8},
		{MaxLevel: 3},
	}
	for _, opts := range bad {
		if _, err := NewMaintainer(rel, ont, opts); err == nil {
			t.Errorf("NewMaintainer accepted unsupported options %+v", opts)
		}
	}
}

// TestMaintainerCancellationRollsBack: a cancelled batch must leave the
// relation, the cover, the epoch, and all tracker state exactly as
// before the call — verified by continuing the stream afterwards and
// re-checking equivalence with fresh discovery (corrupted trackers would
// diverge on later batches).
func TestMaintainerCancellationRollsBack(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	for trial := 0; trial < 10; trial++ {
		rel, ont := randomInstance(rng)
		opts := DefaultOptions()
		opts.Workers = 2
		mt, err := NewMaintainer(rel.Clone(), ont, opts)
		if err != nil {
			t.Fatal(err)
		}
		stream := randomStream(rng, mt.rel, 4, 4)
		for b, op := range stream {
			// A batch whose writes all restate current values returns
			// before the cancellation point (no state to roll back); the
			// rollback check needs at least one effective write.
			final := make(map[[2]int]string)
			for _, u := range op.updates {
				final[[2]int{u.Row, u.Col}] = u.Value
			}
			effective := false
			for cell, val := range final {
				if mt.rel.String(cell[0], cell[1]) != val {
					effective = true
					break
				}
			}
			if !effective {
				continue
			}
			coverBefore := mt.Cover()
			epochBefore := mt.Epoch()
			rowsBefore := mt.rel.Rows()
			cancelled, cancel := context.WithCancel(context.Background())
			cancel()
			if _, err := mt.ApplyBatchContext(cancelled, op.updates); err == nil {
				t.Fatalf("trial %d batch %d: cancelled batch did not error", trial, b)
			}
			if got := mt.Cover(); !reflect.DeepEqual(got, coverBefore) {
				t.Fatalf("trial %d batch %d: cover changed across rollback\n got: %v\nwant: %v", trial, b, got, coverBefore)
			}
			if mt.Epoch() != epochBefore {
				t.Fatalf("trial %d batch %d: epoch advanced across rollback", trial, b)
			}
			if got := mt.rel.Rows(); !reflect.DeepEqual(got, rowsBefore) {
				t.Fatalf("trial %d batch %d: relation changed across rollback", trial, b)
			}
			// Now land the same batch for real and re-verify equivalence:
			// any tracker state the rollback failed to restore surfaces as
			// a divergence here or on a later batch.
			applyOp(t, mt, op)
			got := mt.Cover()
			want := Discover(mt.rel, ont, DefaultOptions()).OFDs
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("trial %d batch %d: post-rollback cover diverged\n got: %v\nwant: %v\nrows: %v",
					trial, b, got, want, mt.rel.Rows())
			}
		}
	}
}

// TestMaintainerInvalidationReopensPrunedSupersets is the targeted
// regression for candidate-set repair: invalidating a minimal OFD X → A
// must re-open the supersets of X that the original discovery pruned
// under Opt-2, and promote the now-minimal one into the cover.
func TestMaintainerInvalidationReopensPrunedSupersets(t *testing.T) {
	schema := relation.MustSchema("A", "B", "C")
	rel, err := relation.FromRows(schema, [][]string{
		{"a1", "b1", "c1"},
		{"a1", "b2", "c1"},
		{"a2", "b1", "c3"},
	})
	if err != nil {
		t.Fatal(err)
	}
	ont := ontology.New() // empty ontology: synonym OFDs degenerate to FDs
	mt, err := NewMaintainer(rel, ont, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	aToC := core.OFD{LHS: schema.MustSet("A"), RHS: schema.MustIndex("C")}
	abToC := core.OFD{LHS: schema.MustSet("A", "B"), RHS: schema.MustIndex("C")}
	if cov := mt.Cover(); !cov.Contains(aToC) || cov.Contains(abToC) {
		t.Fatalf("unexpected initial cover %v: want A->C minimal, AB->C pruned", cov)
	}
	// Breaking row 1's C value invalidates A->C (class {r0,r1} now maps to
	// two senses) and B->C; AB->C survives as all-singleton classes.
	diff, err := mt.ApplyBatch([]core.CellUpdate{{Row: 1, Col: schema.MustIndex("C"), Value: "c2"}})
	if err != nil {
		t.Fatal(err)
	}
	if !diff.Removed.Contains(aToC) {
		t.Fatalf("diff did not remove demoted A->C: %+v", diff)
	}
	if !diff.Added.Contains(abToC) {
		t.Fatalf("diff did not re-open pruned superset AB->C: %+v", diff)
	}
	got := mt.Cover()
	want := Discover(mt.rel, ont, DefaultOptions()).OFDs
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("cover diverged after flip\n got: %v\nwant: %v", got, want)
	}
}

// TestMaintainerPromotionDescendsToMinimal: a batch that turns an
// invalid candidate valid must break a negative-border certificate, and
// the descent must find the minimal newly-valid antecedent — not just
// the border node itself.
func TestMaintainerPromotionDescendsToMinimal(t *testing.T) {
	schema := relation.MustSchema("A", "B", "C")
	rel, err := relation.FromRows(schema, [][]string{
		{"a1", "b1", "c1"},
		{"a1", "b2", "c2"},
		{"a2", "b1", "c3"},
	})
	if err != nil {
		t.Fatal(err)
	}
	ont := ontology.New()
	mt, err := NewMaintainer(rel, ont, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	aToC := core.OFD{LHS: schema.MustSet("A"), RHS: schema.MustIndex("C")}
	if cov := mt.Cover(); cov.Contains(aToC) {
		t.Fatalf("A->C unexpectedly valid initially: %v", cov)
	}
	// Repairing row 1's C value back to c1 re-validates A->C, strictly
	// below the border node AB (the maximal invalid set for C).
	diff, err := mt.ApplyBatch([]core.CellUpdate{{Row: 1, Col: schema.MustIndex("C"), Value: "c1"}})
	if err != nil {
		t.Fatal(err)
	}
	if !diff.Added.Contains(aToC) {
		t.Fatalf("promotion did not surface minimal A->C: %+v", diff)
	}
	got := mt.Cover()
	want := Discover(mt.rel, ont, DefaultOptions()).OFDs
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("cover diverged after promotion\n got: %v\nwant: %v", got, want)
	}
}

// TestMaintainerEpochAndEmptyBatches: epochs advance per applied batch,
// and no-op batches (empty, or rewriting current values) advance nothing.
func TestMaintainerEpochAndEmptyBatches(t *testing.T) {
	rel, ont := randomInstance(rand.New(rand.NewSource(8)))
	mt, err := NewMaintainer(rel.Clone(), ont, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if mt.Epoch() != 0 {
		t.Fatalf("fresh maintainer epoch = %d", mt.Epoch())
	}
	if d, err := mt.ApplyBatch(nil); err != nil || d.Epoch != 0 || !d.Empty() {
		t.Fatalf("empty batch: diff %+v err %v", d, err)
	}
	cur := rel.Dict(0).String(rel.Value(0, 0))
	if d, err := mt.ApplyBatch([]core.CellUpdate{{Row: 0, Col: 0, Value: cur}}); err != nil || d.Epoch != 0 {
		t.Fatalf("no-op rewrite advanced epoch: diff %+v err %v", d, err)
	}
	if d, err := mt.ApplyBatch([]core.CellUpdate{{Row: 0, Col: 0, Value: "novel-x"}}); err != nil || d.Epoch != 1 {
		t.Fatalf("effective batch epoch: diff %+v err %v", d, err)
	}
	if _, err := mt.ApplyBatch([]core.CellUpdate{{Row: -1, Col: 0, Value: "x"}}); err == nil {
		t.Fatal("out-of-range update accepted")
	}
}
