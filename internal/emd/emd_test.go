package emd

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func randHist(rng *rand.Rand, maxKeys int) Hist {
	h := make(Hist)
	n := 1 + rng.Intn(maxKeys)
	for i := 0; i < n; i++ {
		h[string(rune('a'+rng.Intn(6)))] += float64(1 + rng.Intn(5))
	}
	return h
}

func TestDistanceBasics(t *testing.T) {
	p := Hist{"a": 2, "b": 2}
	q := Hist{"a": 2, "b": 2}
	if d := Distance(p, q); d != 0 {
		t.Fatalf("identical hists: %v", d)
	}
	r := Hist{"c": 4}
	if d := Distance(p, r); d != 1 {
		t.Fatalf("disjoint hists: %v", d)
	}
	s := Hist{"a": 4}
	if d := Distance(p, s); math.Abs(d-0.5) > 1e-9 {
		t.Fatalf("half-overlap: %v", d)
	}
	// Normalization invariance.
	if d1, d2 := Distance(p, s), Distance(Hist{"a": 1, "b": 1}, Hist{"a": 7}); math.Abs(d1-d2) > 1e-9 {
		t.Fatalf("not scale invariant: %v vs %v", d1, d2)
	}
}

func TestDistanceEmptyCases(t *testing.T) {
	if d := Distance(Hist{}, Hist{}); d != 0 {
		t.Fatalf("both empty: %v", d)
	}
	if d := Distance(Hist{"a": 1}, Hist{}); d != 1 {
		t.Fatalf("one empty: %v", d)
	}
}

func TestDistanceMetricProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		p, q, s := randHist(r, 4), randHist(r, 4), randHist(r, 4)
		dpq, dqp := Distance(p, q), Distance(q, p)
		if math.Abs(dpq-dqp) > 1e-9 {
			return false // symmetry
		}
		if dpq < 0 || dpq > 1+1e-9 {
			// Disjoint histograms can sum to 1 + a few ulps depending on
			// map iteration order; tolerate the same epsilon as the other
			// properties.
			return false // range
		}
		if Distance(p, p) > 1e-12 {
			return false // identity
		}
		// Triangle inequality (total variation is a metric).
		if Distance(p, s) > dpq+Distance(q, s)+1e-9 {
			return false
		}
		return true
	}
	_ = rng
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestWorkDistance(t *testing.T) {
	// The paper-style absolute work: moving 3 tuples costs 3.
	p := Hist{"c2": 5, "c4": 3}
	q := Hist{"c2": 8}
	if d := WorkDistance(p, q); d != 3 {
		t.Fatalf("work = %v, want 3", d)
	}
	if d := WorkDistance(p, p); d != 0 {
		t.Fatalf("self work = %v", d)
	}
	// Symmetric.
	if WorkDistance(p, q) != WorkDistance(q, p) {
		t.Fatal("work distance not symmetric")
	}
	// Unequal totals: max(surplus, deficit).
	if d := WorkDistance(Hist{"a": 5}, Hist{"b": 2}); d != 5 {
		t.Fatalf("work = %v, want 5", d)
	}
}

func TestFromValuesAndCounts(t *testing.T) {
	h := FromValues([]string{"a", "b", "a"})
	if h["a"] != 2 || h["b"] != 1 || h.Total() != 3 {
		t.Fatalf("FromValues: %v", h)
	}
	h2 := FromCounts(map[string]int{"x": 4})
	if h2["x"] != 4 {
		t.Fatalf("FromCounts: %v", h2)
	}
}

func TestDistanceWithDiscreteGroundMatchesDistance(t *testing.T) {
	ground := func(u, v string) float64 {
		if u == v {
			return 0
		}
		return 1
	}
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 100; trial++ {
		p, q := randHist(rng, 4), randHist(rng, 4)
		d1 := Distance(p, q)
		d2 := DistanceWith(p, q, ground)
		if math.Abs(d1-d2) > 1e-9 {
			t.Fatalf("trial %d: %v vs %v (p=%v q=%v)", trial, d1, d2, p, q)
		}
	}
}

func TestDistanceWithCustomGround(t *testing.T) {
	// Ground distance 0.5 between a and b: EMD must use the cheap move.
	ground := func(u, v string) float64 {
		if u == v {
			return 0
		}
		if (u == "a" && v == "b") || (u == "b" && v == "a") {
			return 0.5
		}
		return 1
	}
	d := DistanceWith(Hist{"a": 1}, Hist{"b": 1}, ground)
	if math.Abs(d-0.5) > 1e-9 {
		t.Fatalf("custom ground: %v", d)
	}
}
