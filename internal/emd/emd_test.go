package emd

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func randHist(rng *rand.Rand, maxKeys int) Hist {
	h := make(Hist)
	n := 1 + rng.Intn(maxKeys)
	for i := 0; i < n; i++ {
		h[string(rune('a'+rng.Intn(6)))] += float64(1 + rng.Intn(5))
	}
	return h
}

func TestDistanceBasics(t *testing.T) {
	p := Hist{"a": 2, "b": 2}
	q := Hist{"a": 2, "b": 2}
	if d := Distance(p, q); d != 0 {
		t.Fatalf("identical hists: %v", d)
	}
	r := Hist{"c": 4}
	if d := Distance(p, r); d != 1 {
		t.Fatalf("disjoint hists: %v", d)
	}
	s := Hist{"a": 4}
	if d := Distance(p, s); math.Abs(d-0.5) > 1e-9 {
		t.Fatalf("half-overlap: %v", d)
	}
	// Normalization invariance.
	if d1, d2 := Distance(p, s), Distance(Hist{"a": 1, "b": 1}, Hist{"a": 7}); math.Abs(d1-d2) > 1e-9 {
		t.Fatalf("not scale invariant: %v vs %v", d1, d2)
	}
}

func TestDistanceEmptyCases(t *testing.T) {
	if d := Distance(Hist{}, Hist{}); d != 0 {
		t.Fatalf("both empty: %v", d)
	}
	if d := Distance(Hist{"a": 1}, Hist{}); d != 1 {
		t.Fatalf("one empty: %v", d)
	}
}

func TestDistanceMetricProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		p, q, s := randHist(r, 4), randHist(r, 4), randHist(r, 4)
		dpq, dqp := Distance(p, q), Distance(q, p)
		if math.Abs(dpq-dqp) > 1e-9 {
			return false // symmetry
		}
		if dpq < 0 || dpq > 1+1e-9 {
			// Disjoint histograms can sum to 1 + a few ulps depending on
			// map iteration order; tolerate the same epsilon as the other
			// properties.
			return false // range
		}
		if Distance(p, p) > 1e-12 {
			return false // identity
		}
		// Triangle inequality (total variation is a metric).
		if Distance(p, s) > dpq+Distance(q, s)+1e-9 {
			return false
		}
		return true
	}
	_ = rng
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestWorkDistance(t *testing.T) {
	// The paper-style absolute work: moving 3 tuples costs 3.
	p := Hist{"c2": 5, "c4": 3}
	q := Hist{"c2": 8}
	if d := WorkDistance(p, q); d != 3 {
		t.Fatalf("work = %v, want 3", d)
	}
	if d := WorkDistance(p, p); d != 0 {
		t.Fatalf("self work = %v", d)
	}
	// Symmetric.
	if WorkDistance(p, q) != WorkDistance(q, p) {
		t.Fatal("work distance not symmetric")
	}
	// Unequal totals: max(surplus, deficit).
	if d := WorkDistance(Hist{"a": 5}, Hist{"b": 2}); d != 5 {
		t.Fatalf("work = %v, want 5", d)
	}
}

func TestFromValuesAndCounts(t *testing.T) {
	h := FromValues([]string{"a", "b", "a"})
	if h["a"] != 2 || h["b"] != 1 || h.Total() != 3 {
		t.Fatalf("FromValues: %v", h)
	}
	h2 := FromCounts(map[string]int{"x": 4})
	if h2["x"] != 4 {
		t.Fatalf("FromCounts: %v", h2)
	}
}

func TestDistanceWithDiscreteGroundMatchesDistance(t *testing.T) {
	ground := func(u, v string) float64 {
		if u == v {
			return 0
		}
		return 1
	}
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 100; trial++ {
		p, q := randHist(rng, 4), randHist(rng, 4)
		d1 := Distance(p, q)
		d2 := DistanceWith(p, q, ground)
		if math.Abs(d1-d2) > 1e-9 {
			t.Fatalf("trial %d: %v vs %v (p=%v q=%v)", trial, d1, d2, p, q)
		}
	}
}

func TestDistanceWithCustomGround(t *testing.T) {
	// Ground distance 0.5 between a and b: EMD must use the cheap move.
	ground := func(u, v string) float64 {
		if u == v {
			return 0
		}
		if (u == "a" && v == "b") || (u == "b" && v == "a") {
			return 0.5
		}
		return 1
	}
	d := DistanceWith(Hist{"a": 1}, Hist{"b": 1}, ground)
	if math.Abs(d-0.5) > 1e-9 {
		t.Fatalf("custom ground: %v", d)
	}
}

// The three hot-path distance functions run inside the repair engine's
// dependency-graph and refinement loops; they must not allocate per call.
func TestDistanceFunctionsDoNotAllocate(t *testing.T) {
	p := Hist{"a": 3, "b": 2, "c": 1}
	q := Hist{"b": 1, "c": 4, "d": 2}
	pi := IntHist{0: 3, 1: 2, 2: 1}
	qi := IntHist{1: 1, 2: 4, 3: 2}
	for name, fn := range map[string]func(){
		"Distance":        func() { Distance(p, q) },
		"WorkDistance":    func() { WorkDistance(p, q) },
		"WorkDistanceInt": func() { WorkDistanceInt(pi, qi) },
	} {
		if allocs := testing.AllocsPerRun(100, fn); allocs != 0 {
			t.Errorf("%s allocates %.1f times per call, want 0", name, allocs)
		}
	}
}

func TestWorkDistanceIntMatchesStringPath(t *testing.T) {
	// Both WorkDistance variants compute max(surplus, deficit); identical
	// histogram shapes must give identical distances regardless of key type.
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 200; trial++ {
		p, q := Hist{}, Hist{}
		pi, qi := IntHist{}, IntHist{}
		for k := 0; k < 6; k++ {
			if m := float64(rng.Intn(5)); m > 0 {
				p[string(rune('a'+k))] = m
				pi[int32(k)] = m
			}
			if m := float64(rng.Intn(5)); m > 0 {
				q[string(rune('a'+k))] = m
				qi[int32(k)] = m
			}
		}
		if ds, di := WorkDistance(p, q), WorkDistanceInt(pi, qi); ds != di {
			t.Fatalf("trial %d: string %v != int %v (p=%v q=%v)", trial, ds, di, p, q)
		}
	}
}

func BenchmarkWorkDistance(b *testing.B) {
	p := Hist{"cartia": 22, "tiazac": 11, "ASA": 7, "adizem": 3}
	q := Hist{"cartia": 14, "ASA": 19, "ibuprofen": 5}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		WorkDistance(p, q)
	}
}

func BenchmarkWorkDistanceInt(b *testing.B) {
	p := IntHist{0: 22, 1: 11, 2: 7, 3: 3}
	q := IntHist{0: 14, 2: 19, 4: 5}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		WorkDistanceInt(p, q)
	}
}
