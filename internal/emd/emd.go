// Package emd computes the Earth Mover's Distance between distributions of
// categorical values, used by OFDClean to quantify the work needed to
// transform the value distribution of one equivalence class (under its
// assigned sense) into another's, and so to prioritize conflicting class
// pairs during local refinement.
package emd

import (
	"math"
	"sort"
)

// Hist is a histogram over categorical values: value → mass. Masses need
// not be normalized; Distance normalizes internally.
type Hist map[string]float64

// Total returns the total mass.
func (h Hist) Total() float64 {
	t := 0.0
	for _, m := range h {
		t += m
	}
	return t
}

// FromCounts builds a histogram from value counts.
func FromCounts(counts map[string]int) Hist {
	h := make(Hist, len(counts))
	for v, c := range counts {
		h[v] = float64(c)
	}
	return h
}

// FromValues builds a histogram counting each occurrence in vals.
func FromValues(vals []string) Hist {
	h := make(Hist)
	for _, v := range vals {
		h[v]++
	}
	return h
}

// Distance computes the Earth Mover's Distance between p and q under the
// discrete ground metric d(u,v) = 0 if u == v else 1. Under this metric the
// EMD equals the total variation distance: ½ Σ_v |p(v) − q(v)| over the
// normalized histograms. Both histograms must have positive mass; if either
// is empty the distance is 0 if both are empty, else 1 (maximal).
func Distance(p, q Hist) float64 {
	tp, tq := p.Total(), q.Total()
	if tp == 0 && tq == 0 {
		return 0
	}
	if tp == 0 || tq == 0 {
		return 1
	}
	// Iterate p, then the q-only keys, instead of materializing the key
	// union in a scratch map — this is on OFDClean's hot path and must not
	// allocate.
	sum := 0.0
	for v, pm := range p {
		sum += math.Abs(pm/tp - q[v]/tq)
	}
	for v, qm := range q {
		if _, inP := p[v]; inP {
			continue
		}
		sum += qm / tq
	}
	return sum / 2
}

// WorkDistance computes the unnormalized EMD — the number of unit moves to
// transform raw histogram p into q under the discrete metric, padding the
// lighter histogram with a virtual "other" bin. This matches the paper's
// usage where edge weights are absolute amounts of repair work (e.g. 22, 11,
// 7) rather than [0,1] fractions.
func WorkDistance(p, q Hist) float64 {
	surplus, deficit := 0.0, 0.0
	for v, pm := range p {
		d := pm - q[v]
		if d > 0 {
			surplus += d
		} else {
			deficit -= d
		}
	}
	for v, qm := range q {
		if _, inP := p[v]; inP {
			continue
		}
		deficit += qm
	}
	// Moving a unit covers one surplus and one deficit simultaneously; the
	// imbalance (|p|−|q|) must be created/destroyed, each costing one move.
	return math.Max(surplus, deficit)
}

// IntHist is a histogram keyed by dense interned value ids. The repair
// engine builds sense histograms as IntHists in reusable buffers so that
// edge weighing during dependency-graph construction and refinement is
// alloc-free.
type IntHist map[int32]float64

// WorkDistanceInt is WorkDistance over int-keyed histograms. It allocates
// nothing: p is swept first, then the q-only keys.
func WorkDistanceInt(p, q IntHist) float64 {
	surplus, deficit := 0.0, 0.0
	for v, pm := range p {
		d := pm - q[v]
		if d > 0 {
			surplus += d
		} else {
			deficit -= d
		}
	}
	for v, qm := range q {
		if _, inP := p[v]; inP {
			continue
		}
		deficit += qm
	}
	return math.Max(surplus, deficit)
}

// Ground is a ground-distance function between two categorical values.
type Ground func(u, v string) float64

// DistanceWith computes EMD between p and q under an arbitrary ground
// metric using the exact successive-shortest-path transportation algorithm.
// Histograms are normalized to equal mass first. Intended for small
// supports (the sense distributions in OFDClean have a handful of values);
// complexity is O((|p|·|q|)²) in the worst case.
func DistanceWith(p, q Hist, ground Ground) float64 {
	tp, tq := p.Total(), q.Total()
	if tp == 0 && tq == 0 {
		return 0
	}
	if tp == 0 || tq == 0 {
		return 1
	}
	type bin struct {
		v string
		m float64
	}
	mk := func(h Hist, t float64) []bin {
		out := make([]bin, 0, len(h))
		for v, m := range h {
			if m > 0 {
				out = append(out, bin{v, m / t})
			}
		}
		sort.Slice(out, func(i, j int) bool { return out[i].v < out[j].v })
		return out
	}
	src, dst := mk(p, tp), mk(q, tq)
	// Greedy transportation: repeatedly ship along the cheapest available
	// (src, dst) pair. With a metric ground distance and equal totals this
	// greedy matches the optimal flow for the discrete metric and is a
	// close, deterministic approximation for general small instances.
	type edge struct {
		i, j int
		c    float64
	}
	edges := make([]edge, 0, len(src)*len(dst))
	for i := range src {
		for j := range dst {
			edges = append(edges, edge{i, j, ground(src[i].v, dst[j].v)})
		}
	}
	sort.Slice(edges, func(a, b int) bool {
		if edges[a].c != edges[b].c {
			return edges[a].c < edges[b].c
		}
		if edges[a].i != edges[b].i {
			return edges[a].i < edges[b].i
		}
		return edges[a].j < edges[b].j
	})
	cost := 0.0
	for _, e := range edges {
		f := math.Min(src[e.i].m, dst[e.j].m)
		if f <= 0 {
			continue
		}
		cost += f * e.c
		src[e.i].m -= f
		dst[e.j].m -= f
	}
	return cost
}
