package wire

import (
	"strings"
	"testing"
	"unsafe"
)

func TestRoundTripPrimitives(t *testing.T) {
	var w Writer
	w.Uvarint(0)
	w.Uvarint(1 << 40)
	w.Int(42)
	w.Uint32(0xDEADBEEF)
	w.Uint64(1 << 60)
	w.Bool(true)
	w.Bool(false)
	w.String("")
	w.String("stripped partition")
	w.Blob([]byte{1, 2, 3})
	w.Blob(nil)
	w.Int32s([]int32{-1, 0, 7, 1 << 30})
	w.Int32s(nil)
	w.Uint8s([]uint8{9, 8})
	w.AlignedBlob([]byte("payload"))
	w.StringSlab([]string{"a", "", "bcd"})

	r := NewReader(w.Bytes())
	if got := r.Uvarint(); got != 0 {
		t.Fatalf("Uvarint = %d", got)
	}
	if got := r.Uvarint(); got != 1<<40 {
		t.Fatalf("Uvarint = %d", got)
	}
	if got := r.Int(); got != 42 {
		t.Fatalf("Int = %d", got)
	}
	if got := r.Uint32(); got != 0xDEADBEEF {
		t.Fatalf("Uint32 = %x", got)
	}
	if got := r.Uint64(); got != 1<<60 {
		t.Fatalf("Uint64 = %d", got)
	}
	if !r.Bool() || r.Bool() {
		t.Fatal("Bool round-trip")
	}
	if got := r.String(); got != "" {
		t.Fatalf("String = %q", got)
	}
	if got := r.String(); got != "stripped partition" {
		t.Fatalf("String = %q", got)
	}
	if got := r.Blob(); string(got) != "\x01\x02\x03" {
		t.Fatalf("Blob = %v", got)
	}
	if got := r.Blob(); len(got) != 0 {
		t.Fatalf("empty Blob = %v", got)
	}
	xs := r.Int32s()
	if len(xs) != 4 || xs[0] != -1 || xs[3] != 1<<30 {
		t.Fatalf("Int32s = %v", xs)
	}
	if got := r.Int32s(); got != nil {
		t.Fatalf("empty Int32s = %v", got)
	}
	if got := r.Uint8s(); len(got) != 2 || got[0] != 9 {
		t.Fatalf("Uint8s = %v", got)
	}
	if got := r.AlignedBlob(); string(got) != "payload" {
		t.Fatalf("AlignedBlob = %q", got)
	}
	ss := r.StringSlab()
	if len(ss) != 3 || ss[0] != "a" || ss[1] != "" || ss[2] != "bcd" {
		t.Fatalf("StringSlab = %v", ss)
	}
	if r.Err() != nil {
		t.Fatalf("unexpected error: %v", r.Err())
	}
	if r.Remaining() != 0 {
		t.Fatalf("%d bytes left over", r.Remaining())
	}
}

// TestInt32sZeroCopy pins the aliasing contract: the decoded slice views
// the reader's buffer (in-place writes land in it) and has no spare
// capacity (appends reallocate instead of clobbering what follows).
func TestInt32sZeroCopy(t *testing.T) {
	var w Writer
	w.String("skew") // odd prefix so the payload needs padding
	w.Int32s([]int32{10, 20, 30})
	w.Uint32(0xAAAA5555)

	buf := w.Bytes()
	r := NewReader(buf)
	_ = r.String()
	xs := r.Int32s()
	if uintptr(unsafe.Pointer(&xs[0]))%4 != 0 {
		t.Fatal("payload not 4-byte aligned in memory")
	}
	// View, not copy.
	xs[1] = 99
	r2 := NewReader(buf)
	_ = r2.String()
	if got := r2.Int32s()[1]; got != 99 {
		t.Fatalf("write through view not visible on re-read: %d", got)
	}
	// len == cap: growth must not overwrite the trailing uint32.
	if cap(xs) != len(xs) {
		t.Fatalf("view has spare capacity %d > len %d", cap(xs), len(xs))
	}
	_ = append(xs, 7)
	if got := r.Uint32(); got != 0xAAAA5555 {
		t.Fatalf("append clobbered the following field: %x", got)
	}
	if r.Err() != nil {
		t.Fatal(r.Err())
	}
}

func TestStringSlabSharesBacking(t *testing.T) {
	var w Writer
	w.StringSlab([]string{"alpha", "beta", "gamma"})
	ss := NewReader(w.Bytes()).StringSlab()
	if len(ss) != 3 {
		t.Fatalf("len = %d", len(ss))
	}
	// All elements slice one backing string: their data pointers sit inside
	// a single total-length window.
	base := unsafe.StringData(ss[0])
	last := unsafe.StringData(ss[2])
	if uintptr(unsafe.Pointer(last))-uintptr(unsafe.Pointer(base)) != uintptr(len("alphabeta")) {
		t.Fatal("slab elements do not share one backing allocation")
	}
}

// TestReaderStickyErrors: every truncated read must set the error once,
// and every subsequent read returns zero values without panicking.
func TestReaderStickyErrors(t *testing.T) {
	cases := []struct {
		name  string
		write func(w *Writer)
		read  func(r *Reader)
	}{
		{"uvarint", func(w *Writer) { w.Uvarint(1 << 40) }, func(r *Reader) { r.Uvarint() }},
		{"uint32", func(w *Writer) { w.Uint32(5) }, func(r *Reader) { r.Uint32() }},
		{"uint64", func(w *Writer) { w.Uint64(5) }, func(r *Reader) { r.Uint64() }},
		{"bool", func(w *Writer) { w.Bool(true) }, func(r *Reader) { r.Bool() }},
		{"string", func(w *Writer) { w.String("hello") }, func(r *Reader) { _ = r.String() }},
		{"blob", func(w *Writer) { w.Blob([]byte("hello")) }, func(r *Reader) { r.Blob() }},
		{"alignedblob", func(w *Writer) { w.AlignedBlob([]byte("hello")) }, func(r *Reader) { r.AlignedBlob() }},
		{"int32s", func(w *Writer) { w.Int32s([]int32{1, 2, 3}) }, func(r *Reader) { r.Int32s() }},
		{"uint8s", func(w *Writer) { w.Uint8s([]uint8{1, 2, 3}) }, func(r *Reader) { r.Uint8s() }},
		{"stringslab", func(w *Writer) { w.StringSlab([]string{"hello", "world"}) }, func(r *Reader) { r.StringSlab() }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var w Writer
			tc.write(&w)
			full := w.Bytes()
			for cut := 0; cut < len(full); cut++ {
				r := NewReader(full[:cut])
				tc.read(r)
				if r.Err() == nil {
					t.Fatalf("cut at %d/%d: no error", cut, len(full))
				}
				// Sticky: later reads return zeros, not garbage or panics.
				if r.Uint32() != 0 || r.String() != "" || r.Int32s() != nil {
					t.Fatalf("cut at %d: reads after error returned data", cut)
				}
			}
		})
	}
}

func TestReaderBadValues(t *testing.T) {
	r := NewReader([]byte{2}) // Bool byte out of range
	r.Bool()
	if r.Err() == nil || !strings.Contains(r.Err().Error(), "bad bool") {
		t.Fatalf("err = %v", r.Err())
	}

	// Slab whose element lengths exceed the payload.
	var w Writer
	w.Uvarint(1)    // one string
	w.Uvarint(1000) // claimed length
	r = NewReader(w.Bytes())
	if r.StringSlab() != nil || r.Err() == nil {
		t.Fatal("oversized slab length not rejected")
	}
}

func TestIntPanicsOnNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Int(-1) did not panic")
		}
	}()
	var w Writer
	w.Int(-1)
}

// TestAlignedBlobNesting: a nested encoding placed with AlignedBlob must
// keep its own Int32s payloads aligned relative to memory, so the nested
// reader still decodes them zero-copy.
func TestAlignedBlobNesting(t *testing.T) {
	var inner Writer
	inner.String("x") // odd offset inside the nested buffer
	inner.Int32s([]int32{5, 6, 7})

	var outer Writer
	outer.String("hdr") // misalign the outer stream
	outer.AlignedBlob(inner.Bytes())

	r := NewReader(outer.Bytes())
	_ = r.String()
	nested := NewReader(r.AlignedBlob())
	_ = nested.String()
	xs := nested.Int32s()
	if nested.Err() != nil {
		t.Fatal(nested.Err())
	}
	if len(xs) != 3 || xs[2] != 7 {
		t.Fatalf("nested Int32s = %v", xs)
	}
	if uintptr(unsafe.Pointer(&xs[0]))%4 != 0 {
		t.Fatal("nested payload lost alignment")
	}
}
