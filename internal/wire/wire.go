// Package wire provides the buffer primitives the snapshot format is built
// from: a little-endian append-only Writer and a sticky-error Reader over a
// byte slice.
//
// Bulk numeric payloads ([]int32 — partition tuple arrays, column code
// blocks, class indexes) are written 4-byte aligned relative to the start
// of the buffer, so a Reader whose buffer starts at (at least) 4-byte
// aligned memory — every Go heap allocation qualifies — can hand them back
// as zero-copy views into the buffer instead of decoding element by
// element. That aliasing is what makes snapshot reopen time proportional
// to the flagged state, not the instance: a restored relation or partition
// points straight into the snapshot's read buffer. Callers own the
// consequences: the buffer must stay reachable for as long as any decoded
// view, and views follow the same mutation discipline as the structures
// they restore (in-place cell writes are fine, the buffer is private heap
// memory; growth always reallocates because views have no spare capacity).
//
// String domains are decoded through one string conversion per slab and
// sliced into the shared backing, so restoring a dictionary of a million
// values costs one allocation, not a million.
package wire

import (
	"encoding/binary"
	"fmt"
	"math"
	"unsafe"
)

// Writer accumulates an encoded byte stream. The zero value is ready to
// use.
type Writer struct {
	buf []byte
}

// Bytes returns the accumulated encoding. The slice aliases the writer's
// buffer; further writes may invalidate it.
func (w *Writer) Bytes() []byte { return w.buf }

// Len returns the number of bytes written so far.
func (w *Writer) Len() int { return len(w.buf) }

// Uvarint appends an unsigned varint.
func (w *Writer) Uvarint(u uint64) {
	w.buf = binary.AppendUvarint(w.buf, u)
}

// Int appends a non-negative int as a uvarint (panics on negative — the
// format has no accidental sign bits).
func (w *Writer) Int(i int) {
	if i < 0 {
		panic(fmt.Sprintf("wire: Int(%d) negative", i))
	}
	w.Uvarint(uint64(i))
}

// Uint32 appends a fixed-width little-endian uint32.
func (w *Writer) Uint32(u uint32) {
	w.buf = binary.LittleEndian.AppendUint32(w.buf, u)
}

// Uint64 appends a fixed-width little-endian uint64.
func (w *Writer) Uint64(u uint64) {
	w.buf = binary.LittleEndian.AppendUint64(w.buf, u)
}

// Bool appends one byte, 0 or 1.
func (w *Writer) Bool(b bool) {
	if b {
		w.buf = append(w.buf, 1)
	} else {
		w.buf = append(w.buf, 0)
	}
}

// String appends a length-prefixed string.
func (w *Writer) String(s string) {
	w.Uvarint(uint64(len(s)))
	w.buf = append(w.buf, s...)
}

// Blob appends a length-prefixed byte slice.
func (w *Writer) Blob(b []byte) {
	w.Uvarint(uint64(len(b)))
	w.buf = append(w.buf, b...)
}

// align4 pads the buffer to the next multiple of 4 bytes.
func (w *Writer) align4() {
	for len(w.buf)%4 != 0 {
		w.buf = append(w.buf, 0)
	}
}

// Int32s appends a length-prefixed []int32 as raw little-endian words,
// padded so the payload starts 4-byte aligned (the Reader's zero-copy
// contract).
func (w *Writer) Int32s(xs []int32) {
	w.Uvarint(uint64(len(xs)))
	w.align4()
	if len(xs) == 0 {
		return
	}
	off := len(w.buf)
	w.buf = append(w.buf, make([]byte, 4*len(xs))...)
	dst := w.buf[off:]
	for i, x := range xs {
		binary.LittleEndian.PutUint32(dst[4*i:], uint32(x))
	}
}

// AlignedBlob appends a length-prefixed byte slice padded so the payload
// starts 4-byte aligned — the container form for nested wire encodings,
// so their own aligned bulk reads stay aligned relative to the outer
// buffer (and therefore to memory).
func (w *Writer) AlignedBlob(b []byte) {
	w.Uvarint(uint64(len(b)))
	w.align4()
	w.buf = append(w.buf, b...)
}

// Uint8s appends a length-prefixed []uint8.
func (w *Writer) Uint8s(xs []uint8) {
	w.Uvarint(uint64(len(xs)))
	w.buf = append(w.buf, xs...)
}

// StringSlab appends a string slice as count, lengths, then the
// concatenated bytes — the form Reader.StringSlab decodes with one shared
// backing allocation.
func (w *Writer) StringSlab(ss []string) {
	w.Uvarint(uint64(len(ss)))
	for _, s := range ss {
		w.Uvarint(uint64(len(s)))
	}
	for _, s := range ss {
		w.buf = append(w.buf, s...)
	}
}

// Reader decodes a byte stream produced by Writer. Errors are sticky:
// after the first malformed read every subsequent read returns zero values,
// and Err reports the first failure — decode sequences check once at the
// end. Zero-copy reads alias the input buffer; see the package comment for
// the lifetime contract.
type Reader struct {
	buf []byte
	off int
	err error
}

// NewReader returns a reader over buf. For aligned zero-copy reads, buf
// should start at 4-byte aligned memory (any Go heap allocation does).
func NewReader(buf []byte) *Reader { return &Reader{buf: buf} }

// Err returns the first decode error, or nil.
func (r *Reader) Err() error { return r.err }

// Remaining returns the number of unread bytes.
func (r *Reader) Remaining() int { return len(r.buf) - r.off }

func (r *Reader) fail(format string, args ...any) {
	if r.err == nil {
		r.err = fmt.Errorf("wire: "+format+" at offset %d", append(args, r.off)...)
	}
}

// Uvarint reads an unsigned varint.
func (r *Reader) Uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	u, n := binary.Uvarint(r.buf[r.off:])
	if n <= 0 {
		r.fail("bad uvarint")
		return 0
	}
	r.off += n
	return u
}

// Int reads a non-negative int written by Writer.Int.
func (r *Reader) Int() int {
	u := r.Uvarint()
	if u > math.MaxInt {
		r.fail("int overflow (%d)", u)
		return 0
	}
	return int(u)
}

// Uint32 reads a fixed-width little-endian uint32.
func (r *Reader) Uint32() uint32 {
	if r.err != nil {
		return 0
	}
	if r.Remaining() < 4 {
		r.fail("short uint32")
		return 0
	}
	u := binary.LittleEndian.Uint32(r.buf[r.off:])
	r.off += 4
	return u
}

// Uint64 reads a fixed-width little-endian uint64.
func (r *Reader) Uint64() uint64 {
	if r.err != nil {
		return 0
	}
	if r.Remaining() < 8 {
		r.fail("short uint64")
		return 0
	}
	u := binary.LittleEndian.Uint64(r.buf[r.off:])
	r.off += 8
	return u
}

// Bool reads one byte as a bool.
func (r *Reader) Bool() bool {
	if r.err != nil {
		return false
	}
	if r.Remaining() < 1 {
		r.fail("short bool")
		return false
	}
	b := r.buf[r.off]
	r.off++
	if b > 1 {
		r.fail("bad bool %d", b)
		return false
	}
	return b == 1
}

// String reads a length-prefixed string. The result copies out of the
// buffer (strings written individually are small; slabs are the bulk path).
func (r *Reader) String() string {
	n := r.Int()
	if r.err != nil {
		return ""
	}
	if r.Remaining() < n {
		r.fail("short string (%d bytes)", n)
		return ""
	}
	s := string(r.buf[r.off : r.off+n])
	r.off += n
	return s
}

// Blob reads a length-prefixed byte slice as a zero-copy view of the
// buffer.
func (r *Reader) Blob() []byte {
	n := r.Int()
	if r.err != nil {
		return nil
	}
	if r.Remaining() < n {
		r.fail("short blob (%d bytes)", n)
		return nil
	}
	b := r.buf[r.off : r.off+n : r.off+n]
	r.off += n
	return b
}

// AlignedBlob reads a blob written by Writer.AlignedBlob as a zero-copy
// view whose first byte sits at a 4-byte aligned buffer offset.
func (r *Reader) AlignedBlob() []byte {
	n := r.Int()
	if r.err != nil {
		return nil
	}
	r.align4()
	if r.Remaining() < n {
		r.fail("short aligned blob (%d bytes)", n)
		return nil
	}
	b := r.buf[r.off : r.off+n : r.off+n]
	r.off += n
	return b
}

// align4 skips padding to the next multiple of 4 bytes.
func (r *Reader) align4() {
	for r.off%4 != 0 && r.off < len(r.buf) {
		r.off++
	}
}

// Int32s reads a length-prefixed []int32. When the payload lands on 4-byte
// aligned memory (always, for buffers starting at a Go allocation) the
// result is a zero-copy view of the buffer with len == cap — appends
// reallocate, in-place writes hit the buffer; otherwise it is decoded into
// a fresh slice.
func (r *Reader) Int32s() []int32 {
	n := r.Int()
	if r.err != nil {
		return nil
	}
	r.align4()
	if r.Remaining() < 4*n {
		r.fail("short int32 payload (%d elements)", n)
		return nil
	}
	if n == 0 {
		return nil
	}
	raw := r.buf[r.off : r.off+4*n]
	r.off += 4 * n
	if uintptr(unsafe.Pointer(&raw[0]))%4 == 0 {
		return unsafe.Slice((*int32)(unsafe.Pointer(&raw[0])), n)[:n:n]
	}
	out := make([]int32, n)
	for i := range out {
		out[i] = int32(binary.LittleEndian.Uint32(raw[4*i:]))
	}
	return out
}

// Uint8s reads a length-prefixed []uint8 as a zero-copy view.
func (r *Reader) Uint8s() []uint8 {
	n := r.Int()
	if r.err != nil {
		return nil
	}
	if r.Remaining() < n {
		r.fail("short uint8 payload (%d elements)", n)
		return nil
	}
	if n == 0 {
		return nil
	}
	out := r.buf[r.off : r.off+n : r.off+n]
	r.off += n
	return out
}

// StringSlab reads a string slice written by Writer.StringSlab: the
// concatenated bytes become one shared string and each element slices into
// it, so the whole domain costs a single allocation.
func (r *Reader) StringSlab() []string {
	n := r.Int()
	if r.err != nil {
		return nil
	}
	if n == 0 {
		return nil
	}
	if r.Remaining() < n { // each length is ≥ 1 byte of varint
		r.fail("slab count %d exceeds payload", n)
		return nil
	}
	lens := make([]int, n)
	total := 0
	for i := range lens {
		lens[i] = r.Int()
		total += lens[i]
	}
	if r.err != nil {
		return nil
	}
	if r.Remaining() < total {
		r.fail("short slab payload (%d bytes)", total)
		return nil
	}
	slab := string(r.buf[r.off : r.off+total])
	r.off += total
	out := make([]string, n)
	pos := 0
	for i, l := range lens {
		out[i] = slab[pos : pos+l]
		pos += l
	}
	return out
}
