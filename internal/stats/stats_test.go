package stats

import (
	"math"
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"
)

func TestMedian(t *testing.T) {
	cases := []struct {
		in   []float64
		want float64
	}{
		{[]float64{3}, 3},
		{[]float64{1, 3}, 2},
		{[]float64{5, 1, 3}, 3},
		{[]float64{4, 1, 3, 2}, 2.5},
	}
	for _, c := range cases {
		if got := Median(c.in); got != c.want {
			t.Errorf("Median(%v) = %v, want %v", c.in, got, c.want)
		}
	}
	if !math.IsNaN(Median(nil)) {
		t.Error("Median(nil) should be NaN")
	}
}

func TestMedianDoesNotMutate(t *testing.T) {
	in := []float64{9, 1, 5}
	Median(in)
	if !reflect.DeepEqual(in, []float64{9, 1, 5}) {
		t.Fatal("Median mutated its input")
	}
}

func TestMAD(t *testing.T) {
	// Classic example: {1,1,2,2,4,6,9}: median 2; deviations
	// {1,1,0,0,2,4,7}: median 1.
	in := []float64{1, 1, 2, 2, 4, 6, 9}
	if got := MAD(in); got != 1 {
		t.Fatalf("MAD = %v, want 1", got)
	}
	if !math.IsNaN(MAD(nil)) {
		t.Error("MAD(nil) should be NaN")
	}
}

func TestMADRobustToOutlier(t *testing.T) {
	base := []float64{5, 5, 5, 5, 5, 5, 5, 5, 5}
	spiked := append(append([]float64(nil), base...), 1e6)
	if MAD(spiked) > 1 {
		t.Fatalf("MAD not robust: %v", MAD(spiked))
	}
}

func TestRankByMADScoreDropsRareValuesLast(t *testing.T) {
	// Frequencies: canonical 10, variants 4 and 3, error 1. The error
	// (lowest frequency) must rank last so the top-k window sheds it
	// first.
	freqs := []float64{10, 4, 3, 1}
	rank := RankByMADScore(freqs)
	if rank[0] != 0 || rank[len(rank)-1] != 3 {
		t.Fatalf("rank = %v", rank)
	}
}

func TestRankByMADScoreIsPermutation(t *testing.T) {
	f := func(raw []uint8) bool {
		// Frequencies in practice are small non-negative counts.
		xs := make([]float64, len(raw))
		for i, x := range raw {
			xs[i] = float64(x)
		}
		rank := RankByMADScore(xs)
		if len(rank) != len(xs) {
			return false
		}
		seen := make([]bool, len(xs))
		for _, i := range rank {
			if i < 0 || i >= len(xs) || seen[i] {
				return false
			}
			seen[i] = true
		}
		// Ordering: signed deviations non-increasing.
		for k := 1; k < len(rank); k++ {
			if xs[rank[k-1]] < xs[rank[k]] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestRankByValue(t *testing.T) {
	rank := RankByValue([]float64{2, 9, 9, 1})
	if !reflect.DeepEqual(rank, []int{1, 2, 0, 3}) {
		t.Fatalf("rank = %v", rank)
	}
}

func TestDeviations(t *testing.T) {
	got := Deviations([]float64{1, 2, 3})
	if !reflect.DeepEqual(got, []float64{1, 0, 1}) {
		t.Fatalf("deviations = %v", got)
	}
}

func TestMedianAgainstSortOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 100; trial++ {
		n := 1 + rng.Intn(20)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = float64(rng.Intn(100))
		}
		s := append([]float64(nil), xs...)
		sort.Float64s(s)
		var want float64
		if n%2 == 1 {
			want = s[n/2]
		} else {
			want = (s[n/2-1] + s[n/2]) / 2
		}
		if got := Median(xs); got != want {
			t.Fatalf("trial %d: Median(%v) = %v, want %v", trial, xs, got, want)
		}
	}
}
