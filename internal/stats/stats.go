// Package stats provides the small set of robust statistics the paper's
// sense-assignment algorithm relies on: median and Median Absolute
// Deviation (MAD), plus MAD-based outlier-resistant value ranking.
package stats

import (
	"math"
	"sort"
)

// Median returns the median of xs (mean of the two middle elements for even
// length). It returns NaN for an empty slice and does not modify xs.
func Median(xs []float64) float64 {
	n := len(xs)
	if n == 0 {
		return math.NaN()
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

// MAD returns the Median Absolute Deviation: median(|x_i − median(x)|).
// It returns NaN for an empty slice.
func MAD(xs []float64) float64 {
	m := Median(xs)
	if math.IsNaN(m) {
		return m
	}
	dev := make([]float64, len(xs))
	for i, x := range xs {
		dev[i] = math.Abs(x - m)
	}
	return Median(dev)
}

// Deviations returns |x_i − median(x)| for each element.
func Deviations(xs []float64) []float64 {
	m := Median(xs)
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = math.Abs(x - m)
	}
	return out
}

// RankByMADScore orders the indices of xs by decreasing signed deviation
// from the median (x_i − median), breaking ties by ascending index. Used
// with value frequencies, this ranks the values a sense should cover first:
// frequencies far ABOVE the median (the class's established values) come
// first, while low-frequency outliers — the likely errors the paper's MAD
// ranking is designed to be robust to — come last and are the first dropped
// from the top-k′ window during sense selection.
func RankByMADScore(xs []float64) []int {
	m := Median(xs)
	idx := make([]int, len(xs))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		da, db := xs[idx[a]]-m, xs[idx[b]]-m
		if da != db {
			return da > db
		}
		return idx[a] < idx[b]
	})
	return idx
}

// RankByValue orders indices by decreasing value (plain frequency ranking),
// the non-robust alternative ablated against MAD ranking.
func RankByValue(xs []float64) []int {
	idx := make([]int, len(xs))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		if xs[idx[a]] != xs[idx[b]] {
			return xs[idx[a]] > xs[idx[b]]
		}
		return idx[a] < idx[b]
	})
	return idx
}
