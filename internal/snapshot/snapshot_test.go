package snapshot

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"github.com/fastofd/fastofd/internal/core"
	"github.com/fastofd/fastofd/internal/discovery"
	"github.com/fastofd/fastofd/internal/gen"
	"github.com/fastofd/fastofd/internal/relation"
)

func newTestMaintainer(ds *gen.Dataset) (*discovery.Maintainer, error) {
	opts := discovery.DefaultOptions()
	opts.Workers = 2
	return discovery.NewMaintainer(ds.Rel, ds.Ont, opts)
}

// reportJSON canonicalizes a report for byte-identity comparison.
func reportJSON(t *testing.T, rep *core.Report) string {
	t.Helper()
	b, err := json.Marshal(rep)
	if err != nil {
		t.Fatalf("marshal report: %v", err)
	}
	return string(b)
}

func saveOpen(t *testing.T, st *State, opts Options) *State {
	t.Helper()
	path := filepath.Join(t.TempDir(), "state.snap")
	if err := Save(path, st); err != nil {
		t.Fatalf("Save: %v", err)
	}
	got, err := Open(path, opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return got
}

func TestRelationRoundTrip(t *testing.T) {
	ds := gen.Clinical(500, 1)
	got := saveOpen(t, &State{Relation: ds.Rel}, Options{})
	if got.Relation.NumRows() != ds.Rel.NumRows() || got.Relation.NumCols() != ds.Rel.NumCols() {
		t.Fatalf("shape: got %dx%d want %dx%d",
			got.Relation.NumRows(), got.Relation.NumCols(), ds.Rel.NumRows(), ds.Rel.NumCols())
	}
	diff, err := got.Relation.DiffCells(ds.Rel)
	if err != nil || diff != 0 {
		t.Fatalf("restored relation differs in %d cells (err %v)", diff, err)
	}
	for c := 0; c < ds.Rel.NumCols(); c++ {
		if got.Relation.Schema().Name(c) != ds.Rel.Schema().Name(c) {
			t.Fatalf("schema name %d: %q != %q", c, got.Relation.Schema().Name(c), ds.Rel.Schema().Name(c))
		}
	}
	// The restored relation must stay writable: dictionaries hydrate
	// lazily, column tails grow past the decoded blocks.
	row := ds.Rel.Row(0)
	got.Relation.AppendRow(row)
	if v := got.Relation.Value(got.Relation.NumRows()-1, 0); v != ds.Rel.Value(0, 0) {
		t.Fatalf("append after restore re-interned existing value: got %d want %d", v, ds.Rel.Value(0, 0))
	}
}

func TestCacheRoundTrip(t *testing.T) {
	ds := gen.Clinical(300, 2)
	pc := relation.NewPartitionCache(ds.Rel)
	for _, d := range ds.Sigma {
		pc.Get(d.LHS)
		pc.Get(d.LHS.With(d.RHS))
	}
	pc.SetBudget(1 << 20)
	pc.SetPolicy(relation.EvictLevelSweep)
	before := pc.Stats()

	got := saveOpen(t, &State{Relation: ds.Rel, Cache: pc}, Options{})
	after := got.Cache.Stats()
	if after.Entries != before.Entries || after.Bytes != before.Bytes {
		t.Fatalf("cache shape changed: got %d entries / %d bytes, want %d / %d",
			after.Entries, after.Bytes, before.Entries, before.Bytes)
	}
	if got.Cache.Budget() != 1<<20 || got.Cache.Policy() != relation.EvictLevelSweep {
		t.Fatalf("cache config lost: budget %d policy %d", got.Cache.Budget(), got.Cache.Policy())
	}
	for _, d := range ds.Sigma {
		want := pc.Get(d.LHS)
		have := got.Cache.Get(d.LHS)
		if want.NumClasses() != have.NumClasses() || want.N != have.N {
			t.Fatalf("partition %v differs after restore", d.LHS)
		}
	}
}

func TestMonitorReportIdentity(t *testing.T) {
	ds := gen.Clinical(1000, 3)
	m, err := core.NewMonitorSharded(t.Context(), ds.Rel, ds.Ont, ds.Sigma, 4, 2, nil)
	if err != nil {
		t.Fatalf("NewMonitorSharded: %v", err)
	}
	// Mutate before saving so overlays, multisets, and epoch are non-trivial.
	appendRows := ds.CleanRel.Rows()[:50]
	for _, row := range appendRows {
		if _, err := m.AppendRow(row); err != nil {
			t.Fatalf("AppendRow: %v", err)
		}
	}
	var batch []core.CellUpdate
	for r := 0; r < 40; r++ {
		batch = append(batch, core.CellUpdate{Row: r, Col: ds.Sigma[0].RHS, Value: ds.Rel.String(r+1, ds.Sigma[0].RHS)})
	}
	if err := m.ApplyBatch(batch); err != nil {
		t.Fatalf("ApplyBatch: %v", err)
	}
	want := reportJSON(t, m.Report())
	wantEpoch := m.Epoch()

	got := saveOpen(t, &State{Monitor: m}, Options{Workers: 2})
	if got.Monitor == nil {
		t.Fatal("no monitor restored")
	}
	if e := got.Monitor.Epoch(); e != wantEpoch {
		t.Fatalf("epoch: got %d want %d", e, wantEpoch)
	}
	if have := reportJSON(t, got.Monitor.Report()); have != want {
		t.Fatalf("restored report differs:\n got %s\nwant %s", have, want)
	}

	// Detect over the restored relation must agree with the restored
	// monitor — the report is ground truth, not just self-consistent.
	det := core.Detect(got.Relation, got.Monitor.Ontology(), ds.Sigma)
	if have := reportJSON(t, det); have != want {
		t.Fatalf("Detect on restored instance differs from report:\n got %s\nwant %s", have, want)
	}

	// Both monitors must evolve identically after the restore: appends
	// exercise frozen-index hydration, updates the multiset paths.
	extra := ds.CleanRel.Rows()[50:80]
	for _, row := range extra {
		if _, err := m.AppendRow(row); err != nil {
			t.Fatalf("AppendRow(live): %v", err)
		}
		if _, err := got.Monitor.AppendRow(row); err != nil {
			t.Fatalf("AppendRow(restored): %v", err)
		}
	}
	for r := 0; r < 30; r++ {
		val := ds.Rel.String((r+7)%ds.Rel.NumRows(), ds.Sigma[0].RHS)
		if _, err := m.Update(r, ds.Sigma[0].RHS, val); err != nil {
			t.Fatalf("Update(live): %v", err)
		}
		if _, err := got.Monitor.Update(r, ds.Sigma[0].RHS, val); err != nil {
			t.Fatalf("Update(restored): %v", err)
		}
	}
	if a, b := reportJSON(t, m.Report()), reportJSON(t, got.Monitor.Report()); a != b {
		t.Fatalf("post-restore evolution diverged:\nlive     %s\nrestored %s", a, b)
	}
	if m.Epoch() != got.Monitor.Epoch() {
		t.Fatalf("post-restore epochs diverged: %d vs %d", m.Epoch(), got.Monitor.Epoch())
	}
}

func TestMonitorSecondSaveRoundTrip(t *testing.T) {
	// Save → open → save again without appending: the frozen indexes must
	// re-encode as-is, and the third generation must still report
	// identically.
	ds := gen.Clinical(400, 4)
	m, err := core.NewMonitorSharded(t.Context(), ds.Rel, ds.Ont, ds.Sigma, 2, 1, nil)
	if err != nil {
		t.Fatalf("NewMonitorSharded: %v", err)
	}
	want := reportJSON(t, m.Report())
	gen2 := saveOpen(t, &State{Monitor: m}, Options{})
	gen3 := saveOpen(t, &State{Monitor: gen2.Monitor}, Options{})
	if have := reportJSON(t, gen3.Monitor.Report()); have != want {
		t.Fatalf("third-generation report differs:\n got %s\nwant %s", have, want)
	}
	// And it can still append (hydrating from the re-encoded frozen form).
	if _, err := gen3.Monitor.AppendRow(ds.Rel.Row(0)); err != nil {
		t.Fatalf("AppendRow on gen3: %v", err)
	}
}

func TestMaintainerCoverIdentity(t *testing.T) {
	ds := gen.Clinical(200, 5)
	mt, err := newTestMaintainer(ds)
	if err != nil {
		t.Fatalf("NewMaintainer: %v", err)
	}
	want := mt.Cover()

	got := saveOpen(t, &State{Maintainer: mt}, Options{Workers: 2})
	if got.Maintainer == nil {
		t.Fatal("no maintainer restored")
	}
	have := got.Maintainer.Cover()
	if fmt.Sprint(have) != fmt.Sprint(want) {
		t.Fatalf("restored cover differs:\n got %v\nwant %v", have, want)
	}

	// The restore must be a state copy, not a rebuild: no candidate has
	// been re-verified beyond what the saved maintainer had done.
	if got.Maintainer.Scans() != mt.Scans() {
		t.Fatalf("restore scanned candidates: got %d want %d", got.Maintainer.Scans(), mt.Scans())
	}
	if got.Maintainer.Epoch() != mt.Epoch() {
		t.Fatalf("epoch: got %d want %d", got.Maintainer.Epoch(), mt.Epoch())
	}

	// Both maintainers must emit identical diffs for the same append
	// (exercising frozen-index hydration on the restored one).
	row := ds.Rel.Row(0)
	d1, err1 := mt.AppendRow(row)
	d2, err2 := got.Maintainer.AppendRow(row)
	if err1 != nil || err2 != nil {
		t.Fatalf("AppendRow: %v / %v", err1, err2)
	}
	if fmt.Sprint(d1.Added) != fmt.Sprint(d2.Added) || fmt.Sprint(d1.Removed) != fmt.Sprint(d2.Removed) {
		t.Fatalf("post-restore diffs diverged: %v vs %v", d1, d2)
	}
	// And for the same update batch, including one that dirties antecedent
	// columns (key-group moves through the hydrated index).
	var batch []core.CellUpdate
	for r := 0; r < 30; r++ {
		for c := 0; c < ds.Rel.NumCols(); c++ {
			batch = append(batch, core.CellUpdate{Row: r, Col: c, Value: ds.Rel.String((r+3)%ds.Rel.NumRows(), c)})
		}
	}
	b1, err1 := mt.ApplyBatch(batch)
	b2, err2 := got.Maintainer.ApplyBatch(batch)
	if err1 != nil || err2 != nil {
		t.Fatalf("ApplyBatch: %v / %v", err1, err2)
	}
	if fmt.Sprint(b1.Added) != fmt.Sprint(b2.Added) || fmt.Sprint(b1.Removed) != fmt.Sprint(b2.Removed) {
		t.Fatalf("post-restore batch diffs diverged: %v vs %v", b1, b2)
	}
	if fmt.Sprint(mt.Cover()) != fmt.Sprint(got.Maintainer.Cover()) {
		t.Fatalf("post-restore covers diverged")
	}
	// Ground truth: the evolved restored cover equals a fresh discovery
	// over the evolved restored instance.
	res := discovery.Discover(got.Relation, got.Maintainer.Ontology(), discovery.DefaultOptions())
	if fmt.Sprint(got.Maintainer.Cover()) != fmt.Sprint(res.OFDs) {
		t.Fatalf("restored maintainer cover diverged from fresh discovery:\n got %v\nwant %v",
			got.Maintainer.Cover(), res.OFDs)
	}
}

func TestMaintainerSecondSaveRoundTrip(t *testing.T) {
	// Save → open → save again without mutating: the frozen tracker indexes
	// must re-encode as-is and the images must be byte-identical, and the
	// third generation must still maintain correctly.
	ds := gen.Clinical(200, 11)
	mt, err := newTestMaintainer(ds)
	if err != nil {
		t.Fatalf("NewMaintainer: %v", err)
	}
	want := fmt.Sprint(mt.Cover())
	gen2 := saveOpen(t, &State{Maintainer: mt}, Options{})
	img2, err := Encode(&State{Maintainer: gen2.Maintainer})
	if err != nil {
		t.Fatalf("Encode gen2: %v", err)
	}
	gen3, err := Decode(img2, Options{})
	if err != nil {
		t.Fatalf("Decode gen3: %v", err)
	}
	if have := fmt.Sprint(gen3.Maintainer.Cover()); have != want {
		t.Fatalf("third-generation cover differs:\n got %s\nwant %s", have, want)
	}
	if _, err := gen3.Maintainer.AppendRow(ds.Rel.Row(0)); err != nil {
		t.Fatalf("AppendRow on gen3: %v", err)
	}
}

func TestCombinedStateSharing(t *testing.T) {
	// Monitor + maintainer + cache in one snapshot share one relation and
	// ontology after reopen.
	ds := gen.Clinical(300, 6)
	m, err := core.NewMonitorSharded(t.Context(), ds.Rel, ds.Ont, ds.Sigma, 2, 1, nil)
	if err != nil {
		t.Fatalf("NewMonitorSharded: %v", err)
	}
	got := saveOpen(t, &State{Monitor: m, Cache: m.Partitions()}, Options{})
	if got.Monitor.Relation() != got.Relation {
		t.Fatal("restored monitor does not share the restored relation")
	}
	if got.Monitor.Partitions() != got.Cache {
		t.Fatal("restored monitor does not share the restored cache")
	}
	if got.Ontology == nil {
		t.Fatal("ontology not restored")
	}
}

func TestSaveRejectsMismatchedComponents(t *testing.T) {
	ds1 := gen.Clinical(50, 7)
	ds2 := gen.Clinical(50, 8)
	m, err := core.NewMonitor(ds2.Rel, ds2.Ont, ds2.Sigma)
	if err != nil {
		t.Fatalf("NewMonitor: %v", err)
	}
	if err := Save(filepath.Join(t.TempDir(), "x.snap"), &State{Relation: ds1.Rel, Monitor: m}); err == nil {
		t.Fatal("Save accepted a monitor over a different relation")
	}
}

func TestCorruptionDetected(t *testing.T) {
	ds := gen.Clinical(100, 9)
	img, err := Encode(&State{Relation: ds.Rel})
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	if _, err := Decode(append([]byte(nil), img...), Options{}); err != nil {
		t.Fatalf("pristine image failed to decode: %v", err)
	}

	t.Run("bit flip", func(t *testing.T) {
		bad := append([]byte(nil), img...)
		bad[len(bad)/2] ^= 0x40
		if _, err := Decode(bad, Options{}); err == nil {
			t.Fatal("flipped payload byte not detected")
		}
	})
	t.Run("truncation", func(t *testing.T) {
		for _, cut := range []int{1, len(img) / 2, len(img) - 4} {
			if _, err := Decode(img[:len(img)-cut], Options{}); err == nil {
				t.Fatalf("truncation by %d not detected", cut)
			}
		}
	})
	t.Run("bad magic", func(t *testing.T) {
		bad := append([]byte(nil), img...)
		bad[0] ^= 0xff
		if _, err := Decode(bad, Options{}); err == nil {
			t.Fatal("bad magic not detected")
		}
	})
	t.Run("future version", func(t *testing.T) {
		bad := append([]byte(nil), img...)
		bad[8] = 0xee // version field (LE uint32 right after the magic)
		if _, err := Decode(bad, Options{}); err == nil {
			t.Fatal("unsupported version not detected")
		}
	})
	t.Run("empty file", func(t *testing.T) {
		if _, err := Decode(nil, Options{}); err == nil {
			t.Fatal("empty image not detected")
		}
	})
}

func TestSaveIsAtomic(t *testing.T) {
	// A save over an existing snapshot either fully replaces it or leaves
	// it; here we just verify the happy path replaces and leaves no temp
	// litter.
	ds := gen.Clinical(60, 10)
	dir := t.TempDir()
	path := filepath.Join(dir, "state.snap")
	if err := Save(path, &State{Relation: ds.Rel}); err != nil {
		t.Fatalf("Save 1: %v", err)
	}
	if err := Save(path, &State{Relation: ds.Rel}); err != nil {
		t.Fatalf("Save 2: %v", err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("ReadDir: %v", err)
	}
	if len(entries) != 1 {
		names := make([]string, len(entries))
		for i, e := range entries {
			names[i] = e.Name()
		}
		t.Fatalf("directory not clean after saves: %v", names)
	}
}
