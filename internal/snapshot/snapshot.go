// Package snapshot is the single-file persistence layer: it serializes a
// relation instance together with the engines built over it — the
// partition cache, the incremental violation monitor, and the discovery
// maintainer's full tracker and border state — into one versioned,
// checksummed file, and reopens it without recomputing what the file
// already knows.
//
// The format is a sectioned container:
//
//	magic (8 bytes) | version (uint32) | section count (uint32)
//	per section: name | crc32c of payload | payload (4-byte aligned)
//
// Sections are independent: each carries its own CRC-32 (Castagnoli)
// checksum, and unknown section names are skipped, so older readers open
// newer files that only add sections. The version guards layout changes
// inside the known sections.
//
// Open reads the whole file into one buffer and decodes zero-copy where
// the wire layer allows: restored column blocks, partition arrays, and
// overlay deltas are views into that buffer (see internal/wire for the
// aliasing contract — the State keeps the buffer reachable implicitly
// through those views). Reopen latency therefore scales with the flagged
// violation state, not the instance: the bulk of a large snapshot is
// never copied, dictionaries hydrate their maps lazily, and the monitor's
// LHS-key indexes stay in frozen array form until the first append.
//
// Save writes to a temp file in the destination directory and renames it
// into place, so a crashed save never corrupts an existing snapshot.
package snapshot

import (
	"bytes"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"

	"github.com/fastofd/fastofd/internal/core"
	"github.com/fastofd/fastofd/internal/discovery"
	"github.com/fastofd/fastofd/internal/exec"
	"github.com/fastofd/fastofd/internal/ontology"
	"github.com/fastofd/fastofd/internal/pipeline"
	"github.com/fastofd/fastofd/internal/relation"
	"github.com/fastofd/fastofd/internal/wire"
)

const (
	// magic identifies a snapshot file ("FOFDSNAP", little-endian).
	magic = uint64(0x50414e5344464f46)
	// Version is the current format version. Bumped on any layout change
	// inside a section; Open rejects other versions outright rather than
	// guessing. Version 2: engine sections split verifier-first, and the
	// pipeline section stores one shared verifier for both engine bodies.
	Version = uint32(2)
)

// Section names. Order in the file is fixed (dependencies decode first);
// unknown names are skipped for forward compatibility.
const (
	secRelation   = "relation"
	secOntology   = "ontology"
	secCache      = "cache"
	secMonitor    = "monitor"
	secMaintainer = "maintainer"
	secPipeline   = "pipeline"
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// State is what a snapshot holds. Relation is mandatory; everything else
// is optional and nil when absent. All present components must be built
// over the same Relation (and Ontology) pointer — Save enforces it, and
// Open restores the sharing: the reopened monitor, maintainer, and cache
// all reference the one restored relation.
type State struct {
	Relation   *relation.Relation
	Ontology   *ontology.Ontology
	Cache      *relation.PartitionCache
	Monitor    *core.Monitor
	Maintainer *discovery.Maintainer
	// Pipeline is the merged engine pair over one shared substrate. It
	// owns its monitor, maintainer, and cache: a state with Pipeline set
	// must leave Monitor, Maintainer, and Cache nil (Save enforces it),
	// and its snapshot stores the shared verifier and cache exactly once.
	Pipeline *pipeline.Pipeline
}

// Options configures Open.
type Options struct {
	// Workers bounds the restore fan-out and configures the reopened
	// monitor/maintainer, exactly as the construction-time parameter
	// would (0 selects all CPUs).
	Workers int
	// Stats, when non-nil, receives restore stage spans and is installed
	// on the reopened engines.
	Stats *exec.Stats
}

// resolve returns the relation and ontology the state's components share,
// or an error when they disagree — a snapshot has one instance.
func (st *State) resolve() (*relation.Relation, *ontology.Ontology, error) {
	rel, ont := st.Relation, st.Ontology
	for _, c := range []struct {
		name string
		rel  *relation.Relation
		ont  *ontology.Ontology
	}{
		{secMonitor, relOf(st.Monitor), ontOf(st.Monitor)},
		{secMaintainer, relOfMt(st.Maintainer), ontOfMt(st.Maintainer)},
		{secPipeline, relOfP(st.Pipeline), ontOfP(st.Pipeline)},
	} {
		if c.rel == nil {
			continue
		}
		if rel == nil {
			rel = c.rel
		} else if rel != c.rel {
			return nil, nil, fmt.Errorf("snapshot: %s is built over a different relation than the state", c.name)
		}
		if ont == nil {
			ont = c.ont
		} else if c.ont != nil && ont != c.ont {
			return nil, nil, fmt.Errorf("snapshot: %s is built over a different ontology than the state", c.name)
		}
	}
	if rel == nil {
		return nil, nil, fmt.Errorf("snapshot: state holds no relation")
	}
	return rel, ont, nil
}

func relOf(m *core.Monitor) *relation.Relation {
	if m == nil {
		return nil
	}
	return m.Relation()
}

func ontOf(m *core.Monitor) *ontology.Ontology {
	if m == nil {
		return nil
	}
	return m.Ontology()
}

func relOfMt(mt *discovery.Maintainer) *relation.Relation {
	if mt == nil {
		return nil
	}
	return mt.Relation()
}

func relOfP(p *pipeline.Pipeline) *relation.Relation {
	if p == nil {
		return nil
	}
	return p.Relation()
}

func ontOfP(p *pipeline.Pipeline) *ontology.Ontology {
	if p == nil {
		return nil
	}
	return p.Monitor().Ontology()
}

func ontOfMt(mt *discovery.Maintainer) *ontology.Ontology {
	if mt == nil {
		return nil
	}
	return mt.Ontology()
}

// Encode serializes the state to a snapshot image (the file contents).
// Most callers want Save.
func Encode(st *State) ([]byte, error) {
	rel, ont, err := st.resolve()
	if err != nil {
		return nil, err
	}
	if (st.Monitor != nil || st.Maintainer != nil || st.Pipeline != nil) && ont == nil {
		return nil, fmt.Errorf("snapshot: monitor/maintainer/pipeline sections require an ontology")
	}
	if st.Pipeline != nil && (st.Monitor != nil || st.Maintainer != nil || st.Cache != nil) {
		return nil, fmt.Errorf("snapshot: a pipeline state owns its engines and cache; leave Monitor, Maintainer, and Cache nil")
	}
	type section struct {
		name    string
		payload []byte
	}
	var sections []section
	add := func(name string, encode func(w *wire.Writer) error) error {
		var w wire.Writer
		if err := encode(&w); err != nil {
			return err
		}
		sections = append(sections, section{name, w.Bytes()})
		return nil
	}
	_ = add(secRelation, func(w *wire.Writer) error {
		relation.AppendRelation(w, rel)
		return nil
	})
	if ont != nil {
		if err := add(secOntology, func(w *wire.Writer) error {
			var buf bytes.Buffer
			if err := ontology.WriteJSON(&buf, ont); err != nil {
				return err
			}
			w.Blob(buf.Bytes())
			return nil
		}); err != nil {
			return nil, err
		}
	}
	// A pipeline snapshot stores the shared cache as the ordinary cache
	// section — decode restores it first and hands it to the pipeline, so
	// the reopened pipeline starts warm without a second copy.
	cache := st.Cache
	if cache == nil && st.Pipeline != nil {
		cache = st.Pipeline.Cache()
	}
	if cache != nil {
		_ = add(secCache, func(w *wire.Writer) error {
			cache.AppendTo(w)
			return nil
		})
	}
	if st.Monitor != nil {
		_ = add(secMonitor, func(w *wire.Writer) error {
			core.AppendMonitor(w, st.Monitor)
			return nil
		})
	}
	if st.Maintainer != nil {
		_ = add(secMaintainer, func(w *wire.Writer) error {
			discovery.AppendMaintainer(w, st.Maintainer)
			return nil
		})
	}
	if st.Pipeline != nil {
		_ = add(secPipeline, func(w *wire.Writer) error {
			pipeline.Append(w, st.Pipeline)
			return nil
		})
	}
	var w wire.Writer
	w.Uint64(magic)
	w.Uint32(Version)
	w.Uint32(uint32(len(sections)))
	for _, s := range sections {
		w.String(s.name)
		w.Uint32(crc32.Checksum(s.payload, castagnoli))
		w.AlignedBlob(s.payload)
	}
	return w.Bytes(), nil
}

// Save atomically writes the state to path: the image lands in a temp
// file in the same directory and is renamed into place, so a crash mid-
// save leaves any previous snapshot intact.
func Save(path string, st *State) error {
	img, err := Encode(st)
	if err != nil {
		return err
	}
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, ".snapshot-*.tmp")
	if err != nil {
		return err
	}
	tmp := f.Name()
	if _, err := f.Write(img); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}

// Decode reconstructs a state from a snapshot image. The image must stay
// reachable and unmodified for the life of the returned state — decoded
// column blocks, partitions, and overlay deltas alias it (they keep it
// reachable via the garbage collector; "unmodified" is the caller's
// contract and holds trivially for a private buffer).
func Decode(img []byte, opts Options) (*State, error) {
	r := wire.NewReader(img)
	if m := r.Uint64(); r.Err() != nil || m != magic {
		return nil, fmt.Errorf("snapshot: not a snapshot file (bad magic)")
	}
	if v := r.Uint32(); v != Version {
		if r.Err() != nil {
			return nil, fmt.Errorf("snapshot: truncated header")
		}
		return nil, fmt.Errorf("snapshot: version %d not supported (want %d)", v, Version)
	}
	count := int(r.Uint32())
	type section struct {
		name    string
		payload []byte
	}
	sections := make([]section, 0, count)
	for k := 0; k < count; k++ {
		name := r.String()
		sum := r.Uint32()
		payload := r.AlignedBlob()
		if r.Err() != nil {
			return nil, fmt.Errorf("snapshot: truncated section table: %w", r.Err())
		}
		if got := crc32.Checksum(payload, castagnoli); got != sum {
			return nil, fmt.Errorf("snapshot: section %q checksum mismatch (file %08x, computed %08x)", name, sum, got)
		}
		sections = append(sections, section{name, payload})
	}
	st := &State{}
	for _, s := range sections {
		sr := wire.NewReader(s.payload)
		switch s.name {
		case secRelation:
			rel, err := relation.DecodeRelation(sr)
			if err != nil {
				return nil, fmt.Errorf("snapshot: relation: %w", err)
			}
			st.Relation = rel
		case secOntology:
			ont, err := ontology.ReadJSON(bytes.NewReader(sr.Blob()))
			if sr.Err() != nil {
				return nil, fmt.Errorf("snapshot: ontology: %w", sr.Err())
			}
			if err != nil {
				return nil, fmt.Errorf("snapshot: ontology: %w", err)
			}
			st.Ontology = ont
		case secCache:
			if st.Relation == nil {
				return nil, fmt.Errorf("snapshot: cache section precedes relation")
			}
			pc, err := relation.DecodePartitionCache(sr, st.Relation)
			if err != nil {
				return nil, fmt.Errorf("snapshot: cache: %w", err)
			}
			st.Cache = pc
		case secMonitor:
			if st.Relation == nil || st.Ontology == nil {
				return nil, fmt.Errorf("snapshot: monitor section requires relation and ontology sections")
			}
			m, err := core.DecodeMonitor(sr, st.Relation, st.Ontology, st.Cache, opts.Workers, opts.Stats)
			if err != nil {
				return nil, fmt.Errorf("snapshot: monitor: %w", err)
			}
			st.Monitor = m
		case secMaintainer:
			if st.Relation == nil || st.Ontology == nil {
				return nil, fmt.Errorf("snapshot: maintainer section requires relation and ontology sections")
			}
			mt, err := discovery.DecodeMaintainer(sr, st.Relation, st.Ontology, st.Cache, opts.Workers, opts.Stats)
			if err != nil {
				return nil, fmt.Errorf("snapshot: maintainer: %w", err)
			}
			st.Maintainer = mt
		case secPipeline:
			if st.Relation == nil || st.Ontology == nil {
				return nil, fmt.Errorf("snapshot: pipeline section requires relation and ontology sections")
			}
			p, err := pipeline.Decode(sr, st.Relation, st.Ontology, st.Cache, opts.Workers, opts.Stats)
			if err != nil {
				return nil, fmt.Errorf("snapshot: pipeline: %w", err)
			}
			st.Pipeline = p
			// The cache belongs to the pipeline in this shape; the State
			// field mirrors the ownership rule Save enforces.
			st.Cache = nil
		default:
			// Unknown section: a newer writer added it; skip.
		}
	}
	if st.Relation == nil {
		return nil, fmt.Errorf("snapshot: no relation section")
	}
	return st, nil
}

// Open reads and reconstructs a snapshot file written by Save.
func Open(path string, opts Options) (*State, error) {
	img, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return Decode(img, opts)
}
