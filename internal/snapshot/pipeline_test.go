package snapshot

import (
	"context"
	"math/rand"
	"reflect"
	"testing"

	"github.com/fastofd/fastofd/internal/core"
	"github.com/fastofd/fastofd/internal/discovery"
	"github.com/fastofd/fastofd/internal/gen"
	"github.com/fastofd/fastofd/internal/pipeline"
	"github.com/fastofd/fastofd/internal/relation"
	"github.com/fastofd/fastofd/internal/wire"
)

// newTestPipeline builds a merged pipeline over a clinical projection and
// returns it with a batch generator (updates drawn from the live value
// pool) and an append-row generator.
func newTestPipeline(t *testing.T, seed int64) (*pipeline.Pipeline, func() []core.CellUpdate, func() []string) {
	t.Helper()
	ds := gen.Generate(gen.Config{Rows: 120, Seed: 11, Preset: "clinical"})
	sub, err := ds.Rel.ProjectColumns([]int{1, 2, 3, 4, 5, 6})
	if err != nil {
		t.Fatal(err)
	}
	p, err := pipeline.New(context.Background(), sub, ds.FullOnt, pipeline.Options{
		FollowCover: true, Shards: 4, Workers: 2,
	})
	if err != nil {
		t.Fatalf("pipeline.New: %v", err)
	}
	rng := rand.New(rand.NewSource(seed))
	pool := make([][]string, sub.NumCols())
	for c := range pool {
		for r := 0; r < sub.NumRows(); r += 7 {
			pool[c] = append(pool[c], sub.Dict(c).String(sub.Value(r, c)))
		}
	}
	batch := func() []core.CellUpdate {
		var ups []core.CellUpdate
		for u := 0; u < 6; u++ {
			c := rng.Intn(sub.NumCols())
			ups = append(ups, core.CellUpdate{
				Row: rng.Intn(p.Relation().NumRows()), Col: c, Value: pool[c][rng.Intn(len(pool[c]))],
			})
		}
		return ups
	}
	appendRow := func() []string {
		row := make([]string, sub.NumCols())
		for c := range row {
			row[c] = pool[c][rng.Intn(len(pool[c]))]
		}
		return row
	}
	return p, batch, appendRow
}

// TestPipelineRoundTrip is the merged-pipeline persistence gate: a
// mutated pipeline saves and reopens with byte-identical report, cover,
// and epoch; the restored pipeline co-evolves byte-identically with the
// original under further batches; and both keep matching fresh engines
// over the final instance.
func TestPipelineRoundTrip(t *testing.T) {
	p, batch, appendRow := newTestPipeline(t, 5)
	for b := 0; b < 3; b++ {
		if _, err := p.ApplyBatch(context.Background(), batch()); err != nil {
			t.Fatalf("ApplyBatch: %v", err)
		}
	}
	if _, err := p.AppendRows([][]string{appendRow(), appendRow()}); err != nil {
		t.Fatalf("AppendRows: %v", err)
	}
	wantReport := reportJSON(t, p.Report())
	wantCover := p.Cover()
	wantEpoch := p.Monitor().Epoch()

	got := saveOpen(t, &State{Pipeline: p}, Options{Workers: 2})
	if got.Pipeline == nil {
		t.Fatal("restored state has no pipeline")
	}
	if got.Monitor != nil || got.Maintainer != nil || got.Cache != nil {
		t.Fatal("a pipeline state must own its engines and cache exclusively")
	}
	rp := got.Pipeline
	if gotRep := reportJSON(t, rp.Report()); gotRep != wantReport {
		t.Fatalf("restored report differs\n got: %s\nwant: %s", gotRep, wantReport)
	}
	if gotCover := rp.Cover(); !reflect.DeepEqual(gotCover, wantCover) {
		t.Fatalf("restored cover differs\n got: %v\nwant: %v", gotCover, wantCover)
	}
	if gotEpoch := rp.Monitor().Epoch(); gotEpoch != wantEpoch {
		t.Fatalf("restored epoch %d, want %d", gotEpoch, wantEpoch)
	}

	// Co-evolve the original and the restored pipeline with identical
	// batches: every observable stays byte-identical, and both keep
	// matching fresh engines over the current instance.
	ont := rp.Monitor().Ontology()
	for b := 0; b < 3; b++ {
		ups := batch()
		if _, err := p.ApplyBatch(context.Background(), ups); err != nil {
			t.Fatalf("co-evolve batch %d (original): %v", b, err)
		}
		if _, err := rp.ApplyBatch(context.Background(), ups); err != nil {
			t.Fatalf("co-evolve batch %d (restored): %v", b, err)
		}
		row := appendRow()
		if _, err := p.AppendRows([][]string{row}); err != nil {
			t.Fatalf("co-evolve append %d (original): %v", b, err)
		}
		if _, err := rp.AppendRows([][]string{row}); err != nil {
			t.Fatalf("co-evolve append %d (restored): %v", b, err)
		}
		a, bb := reportJSON(t, p.Report()), reportJSON(t, rp.Report())
		if a != bb {
			t.Fatalf("co-evolve batch %d: reports diverged\noriginal: %s\nrestored: %s", b, a, bb)
		}
		if !reflect.DeepEqual(p.Cover(), rp.Cover()) {
			t.Fatalf("co-evolve batch %d: covers diverged\noriginal: %v\nrestored: %v", b, p.Cover(), rp.Cover())
		}
	}
	cover := rp.Cover()
	want := discovery.Discover(rp.Relation(), ont, discovery.DefaultOptions()).OFDs
	if !reflect.DeepEqual(cover, want) {
		t.Fatalf("restored pipeline cover diverged from fresh discovery\n got: %v\nwant: %v", cover, want)
	}
	if gotRep, wantRep := reportJSON(t, rp.Report()), reportJSON(t, core.Detect(rp.Relation(), ont, cover)); gotRep != wantRep {
		t.Fatalf("restored pipeline report diverged from fresh detect\n got: %s\nwant: %s", gotRep, wantRep)
	}
}

// TestPipelineSnapshotSections pins the one-copy layout: a pipeline
// snapshot holds exactly one relation, ontology, cache, and pipeline
// section — no standalone monitor or maintainer sections, no duplicates.
func TestPipelineSnapshotSections(t *testing.T) {
	p, batch, _ := newTestPipeline(t, 7)
	if _, err := p.ApplyBatch(context.Background(), batch()); err != nil {
		t.Fatalf("ApplyBatch: %v", err)
	}
	img, err := Encode(&State{Pipeline: p})
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	r := wire.NewReader(img)
	r.Uint64() // magic
	r.Uint32() // version
	n := int(r.Uint32())
	seen := map[string]int{}
	for k := 0; k < n; k++ {
		name := r.String()
		r.Uint32()
		r.AlignedBlob()
		seen[name]++
	}
	if r.Err() != nil {
		t.Fatalf("section table: %v", r.Err())
	}
	for name, c := range seen {
		if c != 1 {
			t.Fatalf("section %q appears %d times", name, c)
		}
	}
	for _, name := range []string{secRelation, secOntology, secCache, secPipeline} {
		if seen[name] != 1 {
			t.Fatalf("missing section %q (got %v)", name, seen)
		}
	}
	if seen[secMonitor] != 0 || seen[secMaintainer] != 0 {
		t.Fatalf("pipeline snapshot must not carry standalone engine sections (got %v)", seen)
	}
}

// TestPipelineStateOwnership pins Save's exclusivity rule: a state with a
// pipeline must leave the standalone engine and cache fields nil.
func TestPipelineStateOwnership(t *testing.T) {
	p, _, _ := newTestPipeline(t, 9)
	for name, st := range map[string]*State{
		"monitor":    {Pipeline: p, Monitor: p.Monitor()},
		"maintainer": {Pipeline: p, Maintainer: p.Maintainer()},
		"cache":      {Pipeline: p, Cache: relation.NewPartitionCache(p.Relation())},
	} {
		if _, err := Encode(st); err == nil {
			t.Fatalf("Encode must reject pipeline + standalone %s", name)
		}
	}
}
