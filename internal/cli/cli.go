// Package cli holds the execution-context conventions shared by the
// command-line tools: every long-running command derives its context from
// Context (SIGINT/SIGTERM cancellation plus an optional -timeout), prints
// whatever partial result the engines returned, renders the per-stage
// execution table, and exits with ExitInterrupted — so scripted callers
// can distinguish "interrupted but well-formed partial output" (exit 3)
// from hard failures (exit 1) and flag errors (exit 2).
package cli

import (
	"context"
	"errors"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/fastofd/fastofd/internal/exec"
)

// ExitInterrupted is the exit status after a SIGINT/SIGTERM or -timeout
// interruption: the command printed a well-formed partial result before
// exiting.
const ExitInterrupted = 3

// Context returns the root context for a command run: cancelled on SIGINT
// or SIGTERM, and additionally deadline-bound when timeout > 0. The
// returned stop function releases the signal registration (and timer); a
// second SIGINT after cancellation kills the process with the default
// handler, so a wedged run can still be terminated.
func Context(timeout time.Duration) (context.Context, context.CancelFunc) {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	if timeout <= 0 {
		return ctx, stop
	}
	ctx, cancel := context.WithTimeout(ctx, timeout)
	return ctx, func() {
		cancel()
		stop()
	}
}

// Interrupted reports whether err stems from context cancellation — the
// engines wrap context.Canceled / context.DeadlineExceeded, so errors.Is
// sees through the exec-layer wrapping.
func Interrupted(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// ExitInterruptedWith reports an interrupted run on stderr — the cause and
// the per-stage execution table (never nil-prints; an empty registry
// renders a placeholder) — and exits with ExitInterrupted. The caller
// prints its partial result first.
func ExitInterruptedWith(name string, err error, stats *exec.Stats) {
	fmt.Fprintf(os.Stderr, "%s: interrupted: %v\n", name, err)
	fmt.Fprint(os.Stderr, stats.Table())
	os.Exit(ExitInterrupted)
}
