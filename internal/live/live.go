// Package live is the shared live-index substrate under the incremental
// engines. core.Monitor's shards and discovery.Maintainer's trackers
// maintain the same three structures over the same relation — a
// dict-encoded LHS-key hash index with lone (singleton) rows folded into
// the id space, per-class consequent value multisets kept as small
// linear-probed slices, and a relation.PartitionOverlay absorbing
// appended tuples. Before this package each engine carried its own copy
// of that machinery (monitor_shard.go's valCount/bump/loneRow,
// tracker.go's vc/bumpVC/lone); ClassIndex owns it once, and Overlays is
// the reference-counted registry of live partition overlays that the
// PartitionCache consults instead of recomputing partition products.
//
// Everything here is single-writer, like the engines built on it:
// mutating one ClassIndex (or the registry) from two goroutines at once
// is a caller bug. Concurrent readers between mutations are fine.
package live

import (
	"github.com/fastofd/fastofd/internal/relation"
)

// ValCount is one distinct consequent value of an equivalence class with
// its multiplicity. Classes keep their multisets as small linear-probed
// slices: real classes have a handful of distinct consequent values even
// when they span thousands of tuples, so probing beats hashing.
type ValCount struct {
	Val relation.Value
	N   int32
}

// Bump adjusts v's multiplicity by delta, dropping the entry when it
// reaches zero (swap-remove, order is not meaningful). delta must not
// take a count negative — the engines adjust counts only from cell writes
// they performed, so multisets stay in sync by construction.
func Bump(pairs []ValCount, v relation.Value, delta int32) []ValCount {
	for k := range pairs {
		if pairs[k].Val == v {
			pairs[k].N += delta
			if pairs[k].N == 0 {
				pairs[k] = pairs[len(pairs)-1]
				pairs = pairs[:len(pairs)-1]
			}
			return pairs
		}
	}
	return append(pairs, ValCount{v, delta})
}

// Distinct appends the multiset's distinct values to scratch[:0] and
// returns it — the argument list re-verification hands to
// Verifier.ValuesSatisfied.
func Distinct(pairs []ValCount, scratch []relation.Value) []relation.Value {
	scratch = scratch[:0]
	for _, p := range pairs {
		scratch = append(scratch, p.Val)
	}
	return scratch
}

// LoneRow encodes a singleton row id for a key index (<= -2, so it cannot
// collide with class ids >= 0 or the -1 "no class" marker). The inverse
// is -enc-2.
func LoneRow(t int32) int32 { return -(t + 2) }

// EncodeKey appends the dict-encoded antecedent value tuple of row t
// (projected on cols) to buf[:0] and returns it. Each attribute
// contributes exactly 4 little-endian bytes, so keys over the same
// attribute list are fixed-width and therefore prefix-free: two rows
// encode equal iff their antecedent value ids are equal attribute by
// attribute (dictionaries make equal strings id-equal). The cross-engine
// key property test and fuzz target pin this down against
// core.EncodeLHSKey and the tracker's source-key encoding.
func EncodeKey(rel *relation.Relation, cols []int, t int, buf []byte) []byte {
	buf = buf[:0]
	for _, c := range cols {
		v := rel.Value(t, c)
		buf = append(buf, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
	}
	return buf
}
