package live

import (
	"reflect"
	"testing"

	"github.com/fastofd/fastofd/internal/relation"
)

func testRel(t *testing.T, cols []string, rows [][]string) *relation.Relation {
	t.Helper()
	rel, err := relation.FromRows(relation.MustSchema(cols...), rows)
	if err != nil {
		t.Fatal(err)
	}
	return rel
}

func TestBumpMultiset(t *testing.T) {
	var pairs []ValCount
	pairs = Bump(pairs, 3, 1)
	pairs = Bump(pairs, 5, 1)
	pairs = Bump(pairs, 3, 1)
	if !reflect.DeepEqual(pairs, []ValCount{{3, 2}, {5, 1}}) {
		t.Fatalf("pairs = %v", pairs)
	}
	// Dropping a count to zero swap-deletes the pair.
	pairs = Bump(pairs, 3, -2)
	if !reflect.DeepEqual(pairs, []ValCount{{5, 1}}) {
		t.Fatalf("after zero: %v", pairs)
	}
	// Bump(+1) then Bump(-1) is an exact inverse on the multiset.
	before := append([]ValCount(nil), pairs...)
	pairs = Bump(Bump(pairs, 9, 1), 9, -1)
	if !reflect.DeepEqual(pairs, before) {
		t.Fatalf("bump/unbump not inverse: %v vs %v", pairs, before)
	}
}

func TestDistinct(t *testing.T) {
	pairs := []ValCount{{7, 2}, {1, 1}, {4, 5}}
	var scratch []relation.Value
	got := Distinct(pairs, scratch)
	if !reflect.DeepEqual(got, []relation.Value{7, 1, 4}) {
		t.Fatalf("distinct = %v", got)
	}
	// Scratch is reused from :0, not appended to.
	got2 := Distinct(pairs[:1], got)
	if !reflect.DeepEqual(got2, []relation.Value{7}) {
		t.Fatalf("reused distinct = %v", got2)
	}
}

func TestLoneRowRoundTrip(t *testing.T) {
	for _, tt := range []int32{0, 1, 7, 1 << 20} {
		enc := LoneRow(tt)
		if enc > -2 {
			t.Fatalf("LoneRow(%d) = %d must be <= -2", tt, enc)
		}
		if back := -enc - 2; back != tt {
			t.Fatalf("round trip %d -> %d -> %d", tt, enc, back)
		}
	}
}

func TestEncodeKeyFixedWidth(t *testing.T) {
	rel := testRel(t, []string{"A", "B", "C"}, [][]string{
		{"x", "1", "p"}, {"x", "2", "p"}, {"y", "1", "q"}, {"x", "1", "q"},
	})
	var buf []byte
	cols := []int{0, 1}
	k0 := string(EncodeKey(rel, cols, 0, buf))
	if len(k0) != 8 {
		t.Fatalf("key width = %d, want 4 bytes per column", len(k0))
	}
	// Equal projections encode equal; differing projections differ.
	if k3 := string(EncodeKey(rel, cols, 3, buf)); k3 != k0 {
		t.Fatalf("rows 0 and 3 share (A,B) but keys differ: %q vs %q", k0, k3)
	}
	for _, other := range []int{1, 2} {
		if k := string(EncodeKey(rel, cols, other, buf)); k == k0 {
			t.Fatalf("rows 0 and %d differ on (A,B) but keys collide", other)
		}
	}
	// Little-endian layout of the dict value id.
	v := rel.Value(0, 0)
	k := EncodeKey(rel, []int{0}, 0, buf)
	want := []byte{byte(v), byte(v >> 8), byte(v >> 16), byte(v >> 24)}
	if !reflect.DeepEqual(k, want) {
		t.Fatalf("key bytes = %v, want %v", k, want)
	}
}

// TestClassIndexJoinCases drives the three JoinKey cases on the monitor
// shape (Part overlay, consequent multisets, no sizes) and checks every
// side effect: key map transitions, overlay class membership, multisets.
func TestClassIndexJoinCases(t *testing.T) {
	rel := testRel(t, []string{"X", "A"}, [][]string{
		{"k1", "v1"}, {"k1", "v2"}, {"k2", "v1"}, {"k1", "v1"},
	})
	// Start from an overlay over an empty base: every class is born
	// through the index.
	empty := &relation.Partition{N: rel.NumRows(), Stripped: true}
	ov := relation.NewPartitionOverlay(empty)
	ix := NewClassIndex([]int{0}, 1)
	ix.Part = ov

	ci, partner, kind := ix.Join(rel, 0)
	if kind != JoinLone || ci != -1 || partner != -1 {
		t.Fatalf("row 0: got (%d,%d,%v), want lone", ci, partner, kind)
	}
	ci, partner, kind = ix.Join(rel, 1)
	if kind != JoinBirth || partner != 0 {
		t.Fatalf("row 1: got (%d,%d,%v), want birth with partner 0", ci, partner, kind)
	}
	born := ci
	if got := ov.StableView(int(born)); !reflect.DeepEqual(got, []int32{0, 1}) {
		t.Fatalf("born class = %v", got)
	}
	if !reflect.DeepEqual(ix.Counts[born], []ValCount{{rel.Value(0, 1), 1}, {rel.Value(1, 1), 1}}) {
		t.Fatalf("born multiset = %v", ix.Counts[born])
	}
	ci, _, kind = ix.Join(rel, 2)
	if kind != JoinLone {
		t.Fatalf("row 2: got %v, want lone (fresh key)", kind)
	}
	_ = ci
	ci, partner, kind = ix.Join(rel, 3)
	if kind != JoinExisting || ci != born || partner != -1 {
		t.Fatalf("row 3: got (%d,%d,%v), want existing class %d", ci, partner, kind, born)
	}
	if got := ov.StableView(int(born)); !reflect.DeepEqual(got, []int32{0, 1, 3}) {
		t.Fatalf("grown class = %v", got)
	}
	if !reflect.DeepEqual(ix.Counts[born], []ValCount{{rel.Value(0, 1), 2}, {rel.Value(1, 1), 1}}) {
		t.Fatalf("grown multiset = %v", ix.Counts[born])
	}
}

// TestClassIndexTrackerOps drives the maintainer shape (no Part, tracked
// sizes): birth allocates sequential class ids, Leave shrinks, and
// BumpVal/UnbumpVal are exact inverses.
func TestClassIndexTrackerOps(t *testing.T) {
	rel := testRel(t, []string{"X", "A"}, [][]string{
		{"k1", "v1"}, {"k1", "v2"}, {"k2", "v3"}, {"k2", "v3"},
	})
	ix := NewClassIndex([]int{0}, 1)
	ix.TrackSizes = true
	for tt := int32(0); tt < 4; tt++ {
		ix.Join(rel, tt)
	}
	if len(ix.Counts) != 2 || ix.Sizes[0] != 2 || ix.Sizes[1] != 2 {
		t.Fatalf("classes = %d sizes = %v", len(ix.Counts), ix.Sizes)
	}
	before := append([]ValCount(nil), ix.Counts[0]...)
	ix.BumpVal(0, rel.Value(1, 1), rel.Value(0, 1))
	if reflect.DeepEqual(ix.Counts[0], before) {
		t.Fatal("BumpVal must change the multiset")
	}
	ix.UnbumpVal(0, rel.Value(1, 1), rel.Value(0, 1))
	if !reflect.DeepEqual(ix.Counts[0], before) {
		t.Fatalf("UnbumpVal not inverse: %v vs %v", ix.Counts[0], before)
	}
	if sz := ix.Leave(1, rel.Value(2, 1)); sz != 1 {
		t.Fatalf("Leave size = %d, want 1", sz)
	}
	if !reflect.DeepEqual(ix.Counts[1], []ValCount{{rel.Value(2, 1), 1}}) {
		t.Fatalf("after leave: %v", ix.Counts[1])
	}
}

func TestClassIndexFrozenRoundTrip(t *testing.T) {
	rel := testRel(t, []string{"X", "Y", "A"}, [][]string{
		{"a", "1", "p"}, {"a", "1", "q"}, {"b", "2", "p"}, {"c", "1", "r"},
	})
	ix := NewClassIndex([]int{0, 1}, 2)
	ix.TrackSizes = true
	for tt := int32(0); tt < 4; tt++ {
		ix.Join(rel, tt)
	}
	want := make(map[string]int32, len(ix.Keys))
	var blob []byte
	var vals []int32
	for k, v := range ix.Keys {
		want[k] = v
		blob = append(blob, k...)
		vals = append(vals, v)
	}
	ix.SetFrozen(blob, vals)
	if !ix.NeedsHydrate() {
		t.Fatal("frozen index must report NeedsHydrate")
	}
	ix.Hydrate()
	if ix.NeedsHydrate() || ix.FrozenKeys != nil || ix.FrozenVals != nil {
		t.Fatal("hydrate must drop the frozen arrays")
	}
	if !reflect.DeepEqual(ix.Keys, want) {
		t.Fatalf("hydrated keys = %v, want %v", ix.Keys, want)
	}
}

// TestOverlaysRegistry covers the refcount lifecycle, invalidation, and
// the LiveOverlay guards (stale entries and entries lagging the
// relation's row count are never served).
func TestOverlaysRegistry(t *testing.T) {
	rel := testRel(t, []string{"X", "Y"}, [][]string{
		{"a", "1"}, {"a", "1"}, {"b", "2"}, {"b", "1"},
	})
	pc := relation.NewPartitionCache(rel)
	os := NewOverlays(rel, pc)
	pc.SetOverlayProvider(os)
	x := relation.EmptySet.With(0)
	xy := x.With(1)

	os.Acquire(x)
	os.Acquire(x)
	os.Acquire(xy)
	if os.Refs(x) != 2 || os.Refs(xy) != 1 {
		t.Fatalf("refs = %d/%d", os.Refs(x), os.Refs(xy))
	}
	// Entries start stale: nothing served yet.
	if os.LiveOverlay(x) != nil {
		t.Fatal("stale entry must not be served")
	}
	if os.OverlayBytes() != 0 {
		t.Fatalf("empty registry bytes = %d", os.OverlayBytes())
	}
	// Rebuilds are demand-driven: a set nobody consulted stays stale.
	os.RouteAppends(rel.NumRows(), rel.NumRows())
	if os.LiveOverlay(xy) != nil {
		t.Fatal("unconsulted entry must not be built")
	}
	// The LiveOverlay misses above registered demand for x and xy; the
	// next RouteAppends builds both fresh over the current rows.
	os.RouteAppends(rel.NumRows(), rel.NumRows())
	if os.LiveOverlay(x) == nil || os.LiveOverlay(xy) == nil {
		t.Fatal("demanded entries must be built and served")
	}
	// An appended row the registry has not routed yet blocks serving.
	rel.AppendRow([]string{"a", "1"})
	if os.LiveOverlay(x) != nil {
		t.Fatal("entry lagging the relation's rows must not be served")
	}
	os.RouteAppends(rel.NumRows()-1, rel.NumRows())
	ovx := os.LiveOverlay(x)
	if ovx == nil {
		t.Fatal("routed entry must be served again")
	}
	got := ovx.Materialize(rel.NumRows())
	want := relation.PartitionOf(rel, x).Strip()
	if !reflect.DeepEqual(got.Tuples, want.Tuples) || !reflect.DeepEqual(got.Offsets, want.Offsets) {
		t.Fatalf("materialized %v %v, want %v %v", got.Tuples, got.Offsets, want.Tuples, want.Offsets)
	}
	if os.OverlayBytes() <= 0 {
		t.Fatal("routed registry must report resident delta bytes")
	}
	// Invalidation by touched attribute drops intersecting entries only.
	os.InvalidateTouched(relation.EmptySet.With(1))
	if os.LiveOverlay(xy) != nil {
		t.Fatal("touched entry must go stale")
	}
	if os.LiveOverlay(x) == nil {
		t.Fatal("untouched entry must stay fresh")
	}
	// Release to zero drops the entry.
	os.Release(xy)
	if os.Refs(xy) != 0 {
		t.Fatalf("released refs = %d", os.Refs(xy))
	}
	os.Release(x)
	if os.Refs(x) != 1 {
		t.Fatalf("x refs = %d, want 1", os.Refs(x))
	}
}

// TestOverlaysRouteAppendsRebuildOrder is the regression test for the
// append-ordering hazard: a stale entry's rebuild reads partitions
// through the cache, whose product path serves other registered sets'
// live overlays — those must already have routed the appended rows, or
// the rebuild caches a partition missing them. The two-phase RouteAppends
// (fresh entries route first, stale entries rebuild second) plus the
// per-entry row stamp make the rebuilt partitions correct regardless of
// registry iteration order.
func TestOverlaysRouteAppendsRebuildOrder(t *testing.T) {
	rel := testRel(t, []string{"X", "Y"}, [][]string{
		{"a", "1"}, {"a", "1"}, {"b", "2"}, {"b", "2"},
	})
	pc := relation.NewPartitionCache(rel)
	os := NewOverlays(rel, pc)
	pc.SetOverlayProvider(os)
	x := relation.EmptySet.With(0)
	y := relation.EmptySet.With(1)
	xy := x.With(1)
	os.Acquire(x)
	os.Acquire(y)
	os.Acquire(xy)
	for _, attrs := range []relation.AttrSet{x, y, xy} {
		os.LiveOverlay(attrs) // register demand
	}
	os.RouteAppends(rel.NumRows(), rel.NumRows()) // build all fresh

	// An update touching Y invalidates {Y} and {X,Y} but leaves {X} fresh;
	// then a row is appended. The {X,Y} rebuild during RouteAppends must
	// see an {X} overlay that already covers the new row.
	os.InvalidateTouched(y)
	pc.InvalidateTouched(y)
	os.LiveOverlay(y) // demand entitles the stale entries to a rebuild
	os.LiveOverlay(xy)
	t0 := rel.NumRows()
	rel.AppendRow([]string{"a", "2"})
	os.RouteAppends(t0, rel.NumRows())

	for _, attrs := range []relation.AttrSet{x, y, xy} {
		ov := os.LiveOverlay(attrs)
		if ov == nil {
			t.Fatalf("entry %v not fresh after RouteAppends", attrs)
		}
		got := ov.Materialize(rel.NumRows())
		want := relation.PartitionOf(rel, attrs).Strip()
		if !reflect.DeepEqual(got.Tuples, want.Tuples) || !reflect.DeepEqual(got.Offsets, want.Offsets) {
			t.Fatalf("overlay %v materializes %v %v, want %v %v", attrs, got.Tuples, got.Offsets, want.Tuples, want.Offsets)
		}
		served := pc.Get(attrs)
		if !reflect.DeepEqual(served.Tuples, want.Tuples) || !reflect.DeepEqual(served.Offsets, want.Offsets) {
			t.Fatalf("cache serves %v %v for %v, want %v %v", served.Tuples, served.Offsets, attrs, want.Tuples, want.Offsets)
		}
	}
}

// TestOverlaysAdoptedBasePromotes pins the adoption path: when the cache
// computes a partition for a stale registered set (a real demand miss),
// Offer hands it to the registry, and the next RouteAppends promotes it
// into a live overlay with one key pass — covering rows appended after
// the adoption — instead of recomputing the partition. The promoted
// overlay must materialize byte-identically to a fresh computation.
func TestOverlaysAdoptedBasePromotes(t *testing.T) {
	rel := testRel(t, []string{"X", "Y"}, [][]string{
		{"a", "1"}, {"a", "2"}, {"b", "1"}, {"c", "2"}, {"b", "1"},
	})
	pc := relation.NewPartitionCache(rel)
	os := NewOverlays(rel, pc)
	pc.SetOverlayProvider(os)
	xy := relation.EmptySet.With(0).With(1)
	os.Acquire(xy)

	// A cache miss on the stale registered set: LiveOverlay declines,
	// the cache computes the partition, and Offer adopts it.
	pc.Get(xy)
	os.mu.Lock()
	adopted := os.m[xy].base != nil
	os.mu.Unlock()
	if !adopted {
		t.Fatal("computed partition for a stale registered set must be adopted")
	}

	// Rows appended after adoption are key-routed during promotion.
	rel.AppendRow([]string{"a", "2"})
	rel.AppendRow([]string{"d", "9"})
	os.RouteAppends(rel.NumRows()-2, rel.NumRows())
	ov := os.LiveOverlay(xy)
	if ov == nil {
		t.Fatal("adopted entry must be promoted by RouteAppends")
	}
	got := ov.Materialize(rel.NumRows())
	want := relation.PartitionOf(rel, xy).Strip()
	if !reflect.DeepEqual(got.Tuples, want.Tuples) || !reflect.DeepEqual(got.Offsets, want.Offsets) {
		t.Fatalf("promoted overlay differs from fresh\n got: %v %v\nwant: %v %v",
			got.Tuples, got.Offsets, want.Tuples, want.Offsets)
	}

	// An update touching the set's columns drops the adopted base along
	// with the overlay — a rebuilt base over restored values could
	// otherwise serve pre-update classes.
	pc.Get(xy) // re-warm so the next invalidation has something to drop
	os.InvalidateTouched(relation.EmptySet.With(1))
	os.mu.Lock()
	cleared := os.m[xy].base == nil
	os.mu.Unlock()
	if !cleared {
		t.Fatal("invalidation must drop the adopted base")
	}
}
