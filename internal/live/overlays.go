package live

import (
	"sync"
	"sync/atomic"

	"github.com/fastofd/fastofd/internal/relation"
)

// Overlays is the reference-counted registry of live partition overlays
// behind the merged pipeline: one PartitionOverlay plus a keys-only
// ClassIndex per registered attribute set. Registered overlays absorb
// appended tuples by key routing (O(|X|) per row, no partition rebuild)
// and are conservatively invalidated — dropped, then rebuilt on the next
// append batch from an adopted base (a partition the cache computed for
// the set in the meantime, see Offer) or, failing that, from the cache —
// when an update touches any of their attributes. The registry
// implements relation.OverlayProvider, so a PartitionCache miss on a
// registered set materializes the live overlay instead of recomputing
// the partition product; the materialized form is byte-identical to a
// fresh computation (canonical class order), which the substrate tests
// assert.
//
// References come from the pipeline's consumers: each monitored OFD and
// each live cover element holds one reference on its antecedent set (plus
// one per single column, so appends never force full single-partition
// rebuilds). Release drops the entry at refcount zero.
//
// Mutations (Acquire, Release, RouteAppends, InvalidateTouched) are
// single-writer, like the engines; LiveOverlay, Offer, and OverlayBytes
// may be called concurrently with each other (the repair verifier fans
// out, and the cache offers from its miss path) but not with a mutation
// in flight.
type Overlays struct {
	rel *relation.Relation
	pc  *relation.PartitionCache
	mu  sync.RWMutex
	m   map[relation.AttrSet]*overlayEntry
}

// overlayEntry is one registered attribute set: its refcount and, when
// fresh, the live overlay with its append router. A stale entry (updates
// touched the set, or never built) holds neither; the next RouteAppends
// rebuilds it from the cache — but only when demand showed up, see
// consults. rows is the relation row count the overlay covers —
// LiveOverlay only serves entries whose rows match the relation, so a
// cache miss mid-append can never materialize an overlay that has not
// absorbed the new rows yet.
//
// consults counts LiveOverlay requests for the set since its last build
// (atomic: requests arrive under the registry's read lock, concurrently
// from the verifier's fan-out). Rebuilds are demand-driven: RouteAppends
// skips a stale entry nobody asked about — the cache computes those
// partitions itself when (and if) they are next needed — so a batch that
// invalidates many registered sets doesn't buy an O(rows) key pass per
// set per append batch for overlays no engine is reading.
//
// base is an adopted pending overlay base: when the cache computes a
// partition for a stale registered set (a real demand miss — typically
// the repair verifier re-reading a set the batch invalidated), Offer
// hands the result over, and the next RouteAppends promotes it with one
// key pass instead of recomputing the partition from scratch — by then
// the cached copy is row-stale again (the appends landed), so without
// adoption the rebuild would pay the full product a second time.
// baseRows is the row count base covers; promotion key-routes any rows
// appended since.
type overlayEntry struct {
	refs     int
	stale    bool
	rows     int
	consults atomic.Int64
	ov       *relation.PartitionOverlay
	ix       *ClassIndex
	base     *relation.Partition
	baseRows int
}

// NewOverlays builds an empty registry over the relation and its cache.
// Install it with pc.SetOverlayProvider to serve cache misses.
func NewOverlays(rel *relation.Relation, pc *relation.PartitionCache) *Overlays {
	return &Overlays{rel: rel, pc: pc, m: make(map[relation.AttrSet]*overlayEntry)}
}

// Acquire adds one reference to attrs, registering it if absent. A new
// entry starts stale and unconsulted: the first RouteAppends after a
// LiveOverlay request builds its overlay from the cache (which is warm at
// pipeline construction, so the build is a lookup plus one key pass).
func (os *Overlays) Acquire(attrs relation.AttrSet) {
	os.mu.Lock()
	e := os.m[attrs]
	if e == nil {
		e = &overlayEntry{stale: true}
		os.m[attrs] = e
	}
	e.refs++
	os.mu.Unlock()
}

// Release drops one reference to attrs, deleting the entry at zero.
func (os *Overlays) Release(attrs relation.AttrSet) {
	os.mu.Lock()
	if e := os.m[attrs]; e != nil {
		e.refs--
		if e.refs <= 0 {
			delete(os.m, attrs)
		}
	}
	os.mu.Unlock()
}

// Refs returns the current reference count for attrs (0 when absent).
func (os *Overlays) Refs(attrs relation.AttrSet) int {
	os.mu.RLock()
	defer os.mu.RUnlock()
	if e := os.m[attrs]; e != nil {
		return e.refs
	}
	return 0
}

// InvalidateTouched marks every registered set intersecting touched as
// stale, dropping its overlay. Safe to call before a batch that may roll
// back: staleness is conservative — a rebuilt overlay over the restored
// relation is identical to what the dropped one held.
func (os *Overlays) InvalidateTouched(touched relation.AttrSet) {
	if touched.IsEmpty() {
		return
	}
	os.mu.Lock()
	for attrs, e := range os.m {
		if !attrs.Intersect(touched).IsEmpty() {
			e.stale = true
			e.ov = nil
			e.ix = nil
			e.base = nil
			e.baseRows = 0
		}
	}
	os.mu.Unlock()
}

// RouteAppends absorbs rows [t0, t1) — already appended to the relation —
// into the registered overlays: fresh entries route each row by its
// encoded key; stale entries rebuild, cheapest source first — an adopted
// base (a partition the cache computed for the set since it went stale,
// handed over by Offer) promotes with one key pass, and failing that, an
// entry consulted since its last build rebuilds from the cache over the
// current relation. Stale entries with neither stay stale — demand-driven
// rebuilds keep append batches from paying an O(rows) key pass per
// registered set that no engine reads.
//
// Fresh entries route FIRST, rebuilds second: a cache-path rebuild reads
// partitions through the cache, whose product path may serve another
// registered set's live overlay — which must already cover the appended
// rows, or the rebuild would cache a partition missing them. (The
// per-entry row stamp guards the same hazard for any other mid-append
// cache read.)
func (os *Overlays) RouteAppends(t0, t1 int) {
	os.mu.RLock()
	type pending struct {
		attrs relation.AttrSet
		e     *overlayEntry
	}
	todo := make([]pending, 0, len(os.m))
	for attrs, e := range os.m {
		todo = append(todo, pending{attrs, e})
	}
	os.mu.RUnlock()
	for _, p := range todo {
		if p.e.stale || p.e.ov == nil {
			continue
		}
		for t := t0; t < t1; t++ {
			p.e.ix.Join(os.rel, int32(t))
		}
		os.mu.Lock()
		p.e.rows = t1
		os.mu.Unlock()
	}
	for _, p := range todo {
		if !p.e.stale && p.e.ov != nil {
			continue
		}
		os.mu.Lock()
		base, baseRows := p.e.base, p.e.baseRows
		os.mu.Unlock()
		var ov *relation.PartitionOverlay
		var ix *ClassIndex
		switch {
		case base != nil:
			ov, ix = os.promote(p.attrs, base, baseRows)
		case p.e.consults.Load() > 0:
			ov, ix = os.build(p.attrs)
		default:
			continue
		}
		os.mu.Lock()
		p.e.ov, p.e.ix, p.e.stale, p.e.rows = ov, ix, false, os.rel.NumRows()
		p.e.base, p.e.baseRows = nil, 0
		p.e.consults.Store(0)
		os.mu.Unlock()
	}
}

// build constructs a fresh overlay + router for attrs over the current
// relation, reading the base partition through the cache (recomputed
// there if its copy is row-stale).
func (os *Overlays) build(attrs relation.AttrSet) (*relation.PartitionOverlay, *ClassIndex) {
	return os.promote(attrs, os.pc.Get(attrs), os.rel.NumRows())
}

// promote constructs the overlay + router for attrs from a known base
// partition covering rows [0, baseRows): the base's classes keyed by
// representative in base order (class ids equal base ids), every
// uncovered base row as a lone-row entry, and any rows appended since
// baseRows key-routed on top. Rows below baseRows must hold the values
// the base was computed from — InvalidateTouched drops adopted bases
// whenever an update touches their columns, and appends never rewrite
// existing rows, so an adopted base always qualifies.
func (os *Overlays) promote(attrs relation.AttrSet, base *relation.Partition, baseRows int) (*relation.PartitionOverlay, *ClassIndex) {
	ov := relation.NewPartitionOverlay(base)
	cols := attrs.Attrs()
	ix := &ClassIndex{Cols: cols, RHS: -1, Keys: make(map[string]int32, base.NumClasses()), Part: ov}
	inClass := make([]bool, baseRows)
	var buf []byte
	for ci := 0; ci < base.NumClasses(); ci++ {
		class := base.Class(ci)
		buf = EncodeKey(os.rel, cols, int(class[0]), buf)
		ix.Keys[string(buf)] = int32(ci)
		for _, t := range class {
			inClass[t] = true
		}
	}
	for t := 0; t < baseRows; t++ {
		if !inClass[t] {
			buf = EncodeKey(os.rel, cols, t, buf)
			ix.Keys[string(buf)] = LoneRow(int32(t))
		}
	}
	for t := baseRows; t < os.rel.NumRows(); t++ {
		ix.Join(os.rel, int32(t))
	}
	return ov, ix
}

// LiveOverlay implements relation.OverlayProvider: it returns the fresh
// live overlay for attrs, or nil when the set is unregistered, stale, or
// lagging the relation's row count (the cache then computes the partition
// itself). Every request for a registered set is counted as demand, which
// is what entitles a stale entry to a rebuild on the next RouteAppends.
func (os *Overlays) LiveOverlay(attrs relation.AttrSet) *relation.PartitionOverlay {
	os.mu.RLock()
	defer os.mu.RUnlock()
	e := os.m[attrs]
	if e == nil {
		return nil
	}
	e.consults.Add(1)
	if !e.stale && e.ov != nil && e.rows == os.rel.NumRows() {
		return e.ov
	}
	return nil
}

// Offer implements relation.OverlayProvider: the cache hands over every
// partition it stores, and a stale registered entry adopts it as its
// pending overlay base — proof of real demand (the cache only computes
// what something asked for) and a free rebuild source for the next
// RouteAppends, which would otherwise recompute the partition from
// scratch because the cached copy goes row-stale the moment the appends
// land. Fresh entries and unregistered sets ignore the offer. Safe for
// concurrent use (the cache's miss path fans out).
func (os *Overlays) Offer(attrs relation.AttrSet, p *relation.Partition) {
	os.mu.Lock()
	if e := os.m[attrs]; e != nil && e.stale {
		e.base = p
		e.baseRows = os.rel.NumRows()
	}
	os.mu.Unlock()
}

// OverlayBytes implements relation.OverlayProvider: the delta bytes
// resident across registered overlays, charged against the cache's byte
// budget so long-lived overlays can't silently exceed it.
func (os *Overlays) OverlayBytes() int64 {
	os.mu.RLock()
	defer os.mu.RUnlock()
	var n int64
	for _, e := range os.m {
		if e.ov != nil {
			n += e.ov.Bytes()
		}
	}
	return n
}
