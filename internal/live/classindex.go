package live

import (
	"github.com/fastofd/fastofd/internal/relation"
)

// JoinKind reports which of the three key-index cases a Join took.
type JoinKind uint8

const (
	// JoinLone means the key was fresh: the row is recorded as a lone
	// (singleton) row and belongs to no class yet.
	JoinLone JoinKind = iota
	// JoinBirth means the key named a lone row: that partner row was
	// promoted and a new two-tuple class was born.
	JoinBirth
	// JoinExisting means the row joined an already-existing class.
	JoinExisting
)

// ClassIndex is one live equivalence-class index over a fixed antecedent
// column list: the dict-encoded LHS-key map (class ids >= 0, lone rows as
// LoneRow(t) <= -2), the per-class consequent value multisets, optional
// per-class sizes, and an optional partition overlay that records class
// membership for certificate materialization.
//
// The monitor's shards use one ClassIndex per (shard, OFD) with Part set
// (class ids are overlay class ids) and sizes untracked; the maintainer's
// cover trackers use one per cover element with Part nil, TrackSizes on,
// and their own row→class array alongside. The Overlays registry uses a
// keys-only form (RHS < 0): no multisets, just routing.
//
// All mutating operations are undo-symmetric: every state change is either
// a Bump (inverted by the opposite Bump), a Join (whose Lone/Birth cases
// the batch protocols only take on appends, which are never rolled back),
// or a Leave (inverted by re-Join through the same key) — so both engines'
// atomic-batch rollback contracts survive the extraction unchanged.
type ClassIndex struct {
	// Cols is the antecedent column list, ascending; keys are encoded over
	// it with EncodeKey (4 bytes per column, fixed width).
	Cols []int
	// RHS is the consequent column whose values the multisets count, or -1
	// for a keys-only index (no multisets maintained).
	RHS int
	// Keys maps the encoded antecedent value tuple to the class holding
	// it: values >= 0 are class ids, values <= -2 encode a lone row as
	// LoneRow(t). Keys absent from the map have never been seen. Nil when
	// the index is in frozen (snapshot-restored) form — see Hydrate.
	Keys map[string]int32
	// Counts[ci] is the multiset of consequent values of class ci, as
	// (value, multiplicity) pairs. Maintained on every write, it makes
	// re-verification O(distinct values) — independent of class size.
	Counts [][]ValCount
	// Sizes[ci] is the number of rows in class ci, maintained only when
	// TrackSizes is set (trackers shrink classes on antecedent writes; the
	// monitor's classes only grow and sizes live in the overlay).
	Sizes []int32
	// TrackSizes enables Sizes maintenance.
	TrackSizes bool
	// Part, when non-nil, is the partition overlay recording class
	// membership; Join births and grows its classes, and class ids equal
	// overlay class ids.
	Part *relation.PartitionOverlay

	// FrozenKeys/FrozenVals hold the key index in serialized array form on
	// a snapshot-restored index (sorted fixed-width key blob plus parallel
	// encoded values); Keys is nil until Hydrate materializes the map. The
	// freeze is an array-of-entries copy, not a different contract.
	FrozenKeys []byte
	FrozenVals []int32

	keyBuf []byte
}

// NewClassIndex builds an empty index over the given antecedent columns
// and consequent. rhs < 0 selects the keys-only form.
func NewClassIndex(cols []int, rhs int) *ClassIndex {
	return &ClassIndex{Cols: cols, RHS: rhs, Keys: make(map[string]int32)}
}

// Width returns the fixed encoded key width in bytes.
func (ix *ClassIndex) Width() int { return 4 * len(ix.Cols) }

// EncodeRow encodes row t's antecedent key into the index's scratch
// buffer and returns it (valid until the next EncodeRow/Join call).
func (ix *ClassIndex) EncodeRow(rel *relation.Relation, t int) []byte {
	ix.keyBuf = EncodeKey(rel, ix.Cols, t, ix.keyBuf)
	return ix.keyBuf
}

// Join routes row t (already present in rel, holding its final values)
// into the index by its encoded antecedent key: a fresh key records t as
// a lone row, a lone-row key births a two-tuple class with the promoted
// partner, and a class key joins the existing class. Returns the class id
// (-1 for JoinLone), the promoted partner row (JoinBirth only, else -1),
// and the case taken. Rows must join in ascending id order per class —
// appends always do.
func (ix *ClassIndex) Join(rel *relation.Relation, t int32) (ci, partner int32, kind JoinKind) {
	return ix.JoinKey(rel, ix.EncodeRow(rel, int(t)), t)
}

// JoinKey is Join with a caller-encoded key (the monitor encodes once to
// pick the owning shard, then joins inside it).
func (ix *ClassIndex) JoinKey(rel *relation.Relation, key []byte, t int32) (ci, partner int32, kind JoinKind) {
	enc, seen := ix.Keys[string(key)]
	switch {
	case !seen:
		ix.Keys[string(key)] = LoneRow(t)
		return -1, -1, JoinLone
	case enc <= -2: // lone row: birth a two-tuple class
		r := -enc - 2
		var nc int32
		if ix.Part != nil {
			nc = int32(ix.Part.AddClass(r, t))
		} else {
			nc = int32(len(ix.Counts))
		}
		ix.Keys[string(key)] = nc
		if ix.RHS >= 0 {
			col := rel.Column(ix.RHS)
			pairs := Bump(Bump(make([]ValCount, 0, 2), col.At(int(r)), 1), col.At(int(t)), 1)
			ix.Counts = append(ix.Counts, pairs)
		}
		if ix.TrackSizes {
			ix.Sizes = append(ix.Sizes, 2)
		}
		return nc, r, JoinBirth
	default: // existing class
		if ix.Part != nil {
			ix.Part.Add(int(enc), t)
		}
		if ix.RHS >= 0 {
			ix.Counts[enc] = Bump(ix.Counts[enc], rel.Value(int(t), ix.RHS), 1)
		}
		if ix.TrackSizes {
			ix.Sizes[enc]++
		}
		return enc, -1, JoinExisting
	}
}

// BumpVal replaces one occurrence of from with to in class ci's multiset
// — the consequent-write delta. Undone exactly by UnbumpVal.
func (ix *ClassIndex) BumpVal(ci int32, from, to relation.Value) {
	ix.Counts[ci] = Bump(Bump(ix.Counts[ci], from, -1), to, 1)
}

// UnbumpVal reverses BumpVal(ci, from, to).
func (ix *ClassIndex) UnbumpVal(ci int32, from, to relation.Value) {
	ix.BumpVal(ci, to, from)
}

// Leave removes one row whose consequent is a from class ci (antecedent
// rewrites pull rows out of their old class). Requires TrackSizes;
// returns the class's remaining size. The inverse is a re-Join through
// the row's new key, which the tracker protocols perform in their join
// phase.
func (ix *ClassIndex) Leave(ci int32, a relation.Value) int32 {
	ix.Sizes[ci]--
	ix.Counts[ci] = Bump(ix.Counts[ci], a, -1)
	return ix.Sizes[ci]
}

// NeedsHydrate reports whether the index is still in frozen array form.
func (ix *ClassIndex) NeedsHydrate() bool { return ix.Keys == nil }

// SetFrozen puts the index into frozen array form (snapshot restore):
// keys is the concatenated fixed-width key blob, vals the parallel
// encoded values. The map form is dropped; Hydrate rebuilds it before the
// first key lookup.
func (ix *ClassIndex) SetFrozen(keys []byte, vals []int32) {
	ix.FrozenKeys, ix.FrozenVals = keys, vals
	ix.Keys = nil
}

// Hydrate materializes the key map from the frozen arrays. The blob is
// converted to a string once so every map key is a shared substring — one
// allocation for the whole index, same as the build path's interning.
func (ix *ClassIndex) Hydrate() {
	width := ix.Width()
	vals := ix.FrozenVals
	idx := make(map[string]int32, len(vals))
	if width == 0 {
		// Empty antecedent: at most one key (the empty string).
		if len(vals) > 0 {
			idx[""] = vals[0]
		}
	} else {
		blob := string(ix.FrozenKeys)
		for k, v := range vals {
			idx[blob[k*width:(k+1)*width]] = v
		}
	}
	ix.Keys = idx
	ix.FrozenKeys, ix.FrozenVals = nil, nil
}
