package exec

import (
	"context"
	"errors"
	"runtime"
	"sync/atomic"
	"testing"
	"time"
)

func TestForCoversEveryIndex(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 7, 64} {
		for _, n := range []int{0, 1, 2, 3, 100} {
			hits := make([]atomic.Int32, n)
			if err := For(context.Background(), n, workers, func(_, i int) {
				hits[i].Add(1)
			}); err != nil {
				t.Fatalf("workers=%d n=%d: unexpected error %v", workers, n, err)
			}
			for i := range hits {
				if got := hits[i].Load(); got != 1 {
					t.Fatalf("workers=%d n=%d: index %d visited %d times", workers, n, i, got)
				}
			}
		}
	}
}

func TestForNilContext(t *testing.T) {
	var count atomic.Int32
	if err := For(nil, 10, 4, func(_, i int) { count.Add(1) }); err != nil {
		t.Fatal(err)
	}
	if count.Load() != 10 {
		t.Fatalf("visited %d of 10", count.Load())
	}
}

func TestForWorkerIDsInRange(t *testing.T) {
	const workers = 5
	if err := For(context.Background(), 200, workers, func(w, _ int) {
		if w < 0 || w >= workers {
			t.Errorf("worker id %d out of range", w)
		}
	}); err != nil {
		t.Fatal(err)
	}
}

func TestForPreCancelledRunsNothing(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var count atomic.Int32
	for _, workers := range []int{1, 4} {
		err := For(ctx, 100, workers, func(_, i int) { count.Add(1) })
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: want wrapped context.Canceled, got %v", workers, err)
		}
	}
	if count.Load() != 0 {
		t.Fatalf("pre-cancelled For ran %d items", count.Load())
	}
}

// TestForCancelStopsWithinOneItem drives a long loop whose items block until
// cancellation fires, then asserts no later item started and no goroutine
// leaked.
func TestForCancelStopsWithinOneItem(t *testing.T) {
	for _, workers := range []int{1, 4} {
		before := runtime.NumGoroutine()
		ctx, cancel := context.WithCancel(context.Background())
		var started atomic.Int32
		release := make(chan struct{})
		err := For(ctx, 10_000, workers, func(_, i int) {
			if started.Add(1) == int32(workers) {
				cancel()
				close(release)
			}
			<-release // every in-flight item finishes only after cancel
		})
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: want context.Canceled, got %v", workers, err)
		}
		// In-flight items (≤ workers) finish; nothing new starts after the
		// cancellation is observed. Allow one extra claim per worker that
		// raced the cancel.
		if got := started.Load(); got > int32(2*workers) {
			t.Fatalf("workers=%d: %d items started after cancel", workers, got)
		}
		waitForGoroutines(t, before)
	}
}

func TestInterruptedWrapsDeadline(t *testing.T) {
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	err := Interrupted(ctx, "discover.level")
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want DeadlineExceeded, got %v", err)
	}
	if want := "exec: interrupted during discover.level: context deadline exceeded"; err.Error() != want {
		t.Fatalf("message %q, want %q", err.Error(), want)
	}
	if got := Interrupted(context.Background(), "x"); got != nil {
		t.Fatalf("live context reported %v", got)
	}
	if got := Interrupted(nil, "x"); got != nil {
		t.Fatalf("nil context reported %v", got)
	}
}

func TestWorkersResolution(t *testing.T) {
	if got := Workers(0); got != runtime.NumCPU() {
		t.Fatalf("Workers(0) = %d, want NumCPU %d", got, runtime.NumCPU())
	}
	if got := Workers(-3); got != 1 {
		t.Fatalf("Workers(-3) = %d, want 1", got)
	}
	if got := Workers(6); got != 6 {
		t.Fatalf("Workers(6) = %d, want 6", got)
	}
}

func TestPool(t *testing.T) {
	st := NewStats()
	p := NewPool(3, st)
	if p.Size() != 3 {
		t.Fatalf("Size = %d", p.Size())
	}
	if p.Stats() != st {
		t.Fatal("Stats not threaded")
	}
	var count atomic.Int32
	if err := p.For(context.Background(), 10, func(w, _ int) {
		if w >= 3 {
			t.Errorf("worker %d out of range", w)
		}
		count.Add(1)
	}); err != nil {
		t.Fatal(err)
	}
	if count.Load() != 10 {
		t.Fatalf("visited %d", count.Load())
	}
	// Seq must use worker 0 only and still honour cancellation.
	order := make([]int, 0, 5)
	if err := p.Seq(context.Background(), 5, func(i int) { order = append(order, i) }); err != nil {
		t.Fatal(err)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("Seq out of order: %v", order)
		}
	}
	var nilPool *Pool
	if nilPool.Size() != 1 || nilPool.Stats() != nil {
		t.Fatal("nil pool defaults wrong")
	}
}

// TestForDeterministicSlots is the substrate-level determinism contract:
// slot-writing callers observe identical results for any worker count.
func TestForDeterministicSlots(t *testing.T) {
	n := 500
	want := make([]int, n)
	for i := range want {
		want[i] = i * i
	}
	for _, workers := range []int{1, 2, 4, 0} {
		got := make([]int, n)
		if err := For(context.Background(), n, Workers(workers), func(_, i int) {
			got[i] = i * i
		}); err != nil {
			t.Fatal(err)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: slot %d = %d, want %d", workers, i, got[i], want[i])
			}
		}
	}
}

func TestParallelForLegacyShim(t *testing.T) {
	var count atomic.Int32
	parallelFor(25, 4, func(_, i int) { count.Add(1) })
	if count.Load() != 25 {
		t.Fatalf("visited %d of 25", count.Load())
	}
}

// waitForGoroutines asserts the goroutine count settles back to (roughly)
// the pre-call level, tolerating runtime background goroutines.
func waitForGoroutines(t *testing.T, before int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for {
		runtime.GC()
		if runtime.NumGoroutine() <= before+2 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutine leak: before=%d now=%d", before, runtime.NumGoroutine())
		}
		time.Sleep(5 * time.Millisecond)
	}
}
