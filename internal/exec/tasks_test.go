package exec

import (
	"sync"
	"sync/atomic"
	"testing"
)

// TestTasksRunsEveryIndex: each index runs exactly once.
func TestTasksRunsEveryIndex(t *testing.T) {
	const n = 50
	var counts [n]atomic.Int32
	Tasks(n, func(i int) { counts[i].Add(1) })
	for i := range counts {
		if got := counts[i].Load(); got != 1 {
			t.Fatalf("index %d ran %d times", i, got)
		}
	}
}

// TestTasksEdgeCases: non-positive n is a no-op, n=1 runs inline.
func TestTasksEdgeCases(t *testing.T) {
	ran := false
	Tasks(0, func(int) { ran = true })
	Tasks(-3, func(int) { ran = true })
	if ran {
		t.Fatal("n <= 0 must not invoke fn")
	}
	got := -1
	Tasks(1, func(i int) { got = i })
	if got != 0 {
		t.Fatalf("n=1 ran with index %d", got)
	}
}

// TestTasksHostsBarriers is the contract that separates Tasks from For:
// every task gets its own goroutine, so tasks that block on a barrier
// until all n have arrived still complete. Under For's bounded worker
// pool the same workload deadlocks whenever n exceeds the worker count —
// which is exactly why the repair scheduler's wave participants run on
// Tasks.
func TestTasksHostsBarriers(t *testing.T) {
	const n = 32 // far above any worker pool bound
	var barrier sync.WaitGroup
	barrier.Add(n)
	done := make(chan struct{})
	go func() {
		Tasks(n, func(i int) {
			barrier.Done()
			barrier.Wait() // blocks until all n tasks have started
		})
		close(done)
	}()
	<-done
}
