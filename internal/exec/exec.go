// Package exec is the shared execution substrate of every engine in this
// repository: one work-stealing parallel-for with cooperative context
// cancellation, a Pool that binds a resolved worker count to a Stats
// registry, and named per-stage spans (wall time, items, workers, cache
// hits) that marshal to JSON for benchmark reports and render as a table
// for the CLIs.
//
// Before this package existed, discovery, the FD baselines, and the repair
// engine each carried a private copy of the same atomic-counter worker pool
// and none of them could be cancelled, time-boxed, or observed per stage.
// The substrate keeps their determinism contract intact: iterations are
// claimed from a shared atomic index (work stealing, so one expensive item
// cannot strand a chunk), but callers write results into slot i and merge
// sequentially afterwards, so output is byte-identical for every worker
// count — and for uncancelled runs, byte-identical to the pre-substrate
// engines. Cancellation is cooperative at work-item granularity: a worker
// checks the context before claiming each item, finishes the item it is
// on, and never starts another, so a cancelled For returns within one work
// item and leaks no goroutines.
package exec

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers resolves an Options.Workers-style value: 0 selects
// runtime.NumCPU(), negative values clamp to 1 (the sequential path), and
// positive values are used as given.
func Workers(w int) int {
	if w == 0 {
		return runtime.NumCPU()
	}
	if w < 1 {
		return 1
	}
	return w
}

// interruptedError wraps a context error so engines can attach the stage
// that was interrupted while callers keep matching with
// errors.Is(err, context.Canceled) / errors.Is(err, context.DeadlineExceeded).
type interruptedError struct {
	stage string
	err   error
}

func (e *interruptedError) Error() string {
	if e.stage == "" {
		return fmt.Sprintf("exec: interrupted: %v", e.err)
	}
	return fmt.Sprintf("exec: interrupted during %s: %v", e.stage, e.err)
}

func (e *interruptedError) Unwrap() error { return e.err }

// Interrupted wraps ctx's error with the name of the stage that observed
// the cancellation. It returns nil when the context is still live, so the
// idiomatic cancellation point is a bare
//
//	if err := exec.Interrupted(ctx, "discover.level"); err != nil { return err }
func Interrupted(ctx context.Context, stage string) error {
	if ctx == nil {
		return nil
	}
	if err := ctx.Err(); err != nil {
		return &interruptedError{stage: stage, err: err}
	}
	return nil
}

// For runs fn(worker, i) for every i in [0, n), fanning out over at most
// `workers` goroutines and claiming iterations from a shared atomic counter
// (work stealing), so uneven per-item costs — one huge cluster next to many
// tiny ones, one consequent with a deep cover search — balance
// automatically. Callers keep the output deterministic by writing results
// into slot i and merging sequentially afterwards; worker ids (always <
// workers) let them retain per-worker scratch such as ProductBuffers. With
// workers <= 1 or n <= 1 everything runs inline on worker 0, so the
// sequential path executes exactly the same code as the parallel one.
//
// Cancellation is cooperative at work-item granularity: each worker checks
// ctx before claiming an item and stops claiming once it is done. Items
// already started always finish — fn never observes a half-cancelled item —
// and every spawned goroutine has exited by the time For returns. On
// cancellation For returns ctx's error wrapped by Interrupted; iterations
// not yet claimed are skipped, so the caller's slots hold a valid subset of
// results and the caller decides what a partial merge means.
// A nil ctx (or one that can never be cancelled) adds no per-item cost
// beyond a nil channel check.
func For(ctx context.Context, n, workers int, fn func(worker, i int)) error {
	if n <= 0 {
		return nil
	}
	var done <-chan struct{}
	if ctx != nil {
		done = ctx.Done()
	}
	cancelled := func() bool {
		if done == nil {
			return false
		}
		select {
		case <-done:
			return true
		default:
			return false
		}
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 || n == 1 {
		for i := 0; i < n; i++ {
			if cancelled() {
				return Interrupted(ctx, "")
			}
			fn(0, i)
		}
		return nil
	}
	var next atomic.Int64
	var stop atomic.Bool
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(worker int) {
			defer wg.Done()
			for {
				if stop.Load() || cancelled() {
					stop.Store(true)
					return
				}
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(worker, i)
			}
		}(w)
	}
	wg.Wait()
	if stop.Load() {
		return Interrupted(ctx, "")
	}
	return nil
}

// Tasks runs fn(i) for every i in [0, n) on one goroutine per task and
// waits for all of them. Unlike For, which caps live goroutines at a
// worker count and lets one goroutine claim many items, Tasks guarantees
// every task is live concurrently — the primitive for peer tasks that
// synchronize with each other mid-flight (the maintainer's repairers
// rendezvous at a wave barrier; under For a blocked task would hold a
// worker slot while an unclaimed peer it waits for never starts). n is
// expected to be small (one task per flipped consequent); callers that
// want bounded fan-out over large n use For.
func Tasks(n int, fn func(i int)) {
	if n <= 0 {
		return
	}
	if n == 1 {
		fn(0)
		return
	}
	var wg sync.WaitGroup
	wg.Add(n)
	for i := 0; i < n; i++ {
		go func(i int) {
			defer wg.Done()
			fn(i)
		}(i)
	}
	wg.Wait()
}

// parallelFor is the historical name of the work-stealing loop the engines
// used before the substrate existed; it survives as the context-free inner
// form so call sites that cannot be cancelled (and grep-based audits) have
// one canonical home.
func parallelFor(n, workers int, fn func(worker, i int)) {
	_ = For(context.Background(), n, workers, fn)
}

// Pool binds a resolved worker count to an optional Stats registry. Engines
// create one per run (pools are cheap — they hold no goroutines; workers
// are spawned per For call and joined before it returns) and thread it
// through their stages so every stage observes the same parallelism and
// reports into the same registry.
type Pool struct {
	workers int
	stats   *Stats
}

// NewPool resolves workers (0 = NumCPU) and attaches stats, which may be
// nil — all Stats methods are nil-safe, so engines instrument
// unconditionally.
func NewPool(workers int, stats *Stats) *Pool {
	return &Pool{workers: Workers(workers), stats: stats}
}

// Size returns the resolved worker count (always ≥ 1).
func (p *Pool) Size() int {
	if p == nil {
		return 1
	}
	return p.workers
}

// Stats returns the pool's registry (possibly nil; Stats methods tolerate
// that).
func (p *Pool) Stats() *Stats {
	if p == nil {
		return nil
	}
	return p.stats
}

// For is exec.For over the pool's worker count.
func (p *Pool) For(ctx context.Context, n int, fn func(worker, i int)) error {
	return For(ctx, n, p.Size(), fn)
}

// Seq runs the sequential path regardless of pool size — for stages whose
// iterations read evolving shared state — while keeping the same
// cancellation contract as For.
func (p *Pool) Seq(ctx context.Context, n int, fn func(i int)) error {
	return For(ctx, n, 1, func(_, i int) { fn(i) })
}
