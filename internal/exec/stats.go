package exec

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// Stats is a registry of named stage spans. Engines record one span per
// pipeline stage ("discover.verify", "clean.beam", …); repeated spans under
// one name accumulate, so a per-lattice-level stage reports its total wall
// time and item count across levels. The registry is safe for concurrent
// use and every method is nil-receiver-safe, so engines instrument
// unconditionally and callers opt in by supplying a registry.
//
// Span wall time is aggregated with a monotonic clock; items, workers, and
// cache counters are plain integers. Marshalled JSON is a stable object:
//
//	{"stages":[{"name":...,"wall_ns":...,"items":...,"workers":...,
//	            "cache_hits":...,"cache_misses":...}],"notes":[...]}
type Stats struct {
	mu     sync.Mutex
	order  []string
	stages map[string]*stage
	notes  []string
}

type stage struct {
	wall        time.Duration
	items       int64
	skipped     int64
	workers     int
	shards      int
	cacheHits   uint64
	cacheMisses uint64
	spans       int64
}

// StageStat is one stage's accumulated counters, as reported by Snapshot
// and the JSON serialization.
type StageStat struct {
	Name        string        `json:"name"`
	Wall        time.Duration `json:"wall_ns"`
	Items       int64         `json:"items,omitempty"`
	Skipped     int64         `json:"skipped,omitempty"`
	Workers     int           `json:"workers,omitempty"`
	Shards      int           `json:"shards,omitempty"`
	CacheHits   uint64        `json:"cache_hits,omitempty"`
	CacheMisses uint64        `json:"cache_misses,omitempty"`
	Spans       int64         `json:"spans,omitempty"`
}

// NewStats returns an empty registry.
func NewStats() *Stats { return &Stats{} }

func (s *Stats) stageLocked(name string) *stage {
	if s.stages == nil {
		s.stages = make(map[string]*stage)
	}
	st, ok := s.stages[name]
	if !ok {
		st = &stage{}
		s.stages[name] = st
		s.order = append(s.order, name)
	}
	return st
}

// Span is one in-flight timed stage. End (or Done) must be called exactly
// once; the other mutators may be called any number of times before that,
// from any goroutine that owns the span.
type Span struct {
	stats *Stats
	name  string
	start time.Time

	mu      sync.Mutex
	items   int64
	skipped int64
	workers int
	shards  int
	hits    uint64
	misses  uint64
	ended   bool
}

// Span starts a named stage span. On a nil registry it returns a nil span,
// whose methods all no-op, so instrumentation never needs a nil check.
func (s *Stats) Span(name string) *Span {
	if s == nil {
		return nil
	}
	return &Span{stats: s, name: name, start: time.Now()}
}

// Items adds n processed work items to the span.
func (sp *Span) Items(n int) {
	if sp == nil {
		return
	}
	sp.mu.Lock()
	sp.items += int64(n)
	sp.mu.Unlock()
}

// Skipped adds n work items the stage answered without doing the work —
// candidates resolved by a pruning oracle, cache-satisfied lookups, nodes
// excluded by a dirtiness test. Together with Items it makes skip rates
// first-class observability: the incremental engines' whole value
// proposition is a high skipped/(items+skipped) ratio.
func (sp *Span) Skipped(n int) {
	if sp == nil {
		return
	}
	sp.mu.Lock()
	sp.skipped += int64(n)
	sp.mu.Unlock()
}

// Workers records the worker count the stage ran with (the maximum across
// accumulated spans is kept, so a stage that ran both serial and parallel
// phases reports its widest fan-out).
func (sp *Span) Workers(w int) {
	if sp == nil {
		return
	}
	sp.mu.Lock()
	if w > sp.workers {
		sp.workers = w
	}
	sp.mu.Unlock()
}

// Shards records the shard fan-out the stage ran with (maximum across
// accumulated spans, like Workers — a stage that mixed single-shard and
// sharded phases reports its widest partitioning).
func (sp *Span) Shards(n int) {
	if sp == nil {
		return
	}
	sp.mu.Lock()
	if n > sp.shards {
		sp.shards = n
	}
	sp.mu.Unlock()
}

// Cache adds partition-cache hit/miss deltas observed during the stage.
func (sp *Span) Cache(hits, misses uint64) {
	if sp == nil {
		return
	}
	sp.mu.Lock()
	sp.hits += hits
	sp.misses += misses
	sp.mu.Unlock()
}

// End stops the span's clock and folds its counters into the registry.
// Calling End more than once is a no-op, so `defer sp.End()` composes with
// an explicit early End on the success path.
func (sp *Span) End() {
	if sp == nil {
		return
	}
	sp.mu.Lock()
	if sp.ended {
		sp.mu.Unlock()
		return
	}
	sp.ended = true
	wall := time.Since(sp.start)
	items, skipped, workers, shards, hits, misses := sp.items, sp.skipped, sp.workers, sp.shards, sp.hits, sp.misses
	sp.mu.Unlock()

	s := sp.stats
	s.mu.Lock()
	st := s.stageLocked(sp.name)
	st.wall += wall
	st.items += items
	st.skipped += skipped
	if workers > st.workers {
		st.workers = workers
	}
	if shards > st.shards {
		st.shards = shards
	}
	st.cacheHits += hits
	st.cacheMisses += misses
	st.spans++
	s.mu.Unlock()
}

// Note records a free-form observation ("verification forced sequential:
// PruneAugmentation disabled"). Notes surface in the JSON serialization and
// at the bottom of the rendered table; duplicates are collapsed.
func (s *Stats) Note(format string, args ...any) {
	if s == nil {
		return
	}
	msg := fmt.Sprintf(format, args...)
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, n := range s.notes {
		if n == msg {
			return
		}
	}
	s.notes = append(s.notes, msg)
}

// Snapshot returns the accumulated stages in first-recorded order plus the
// notes. Safe to call while spans are still running; running spans are not
// included until they End.
func (s *Stats) Snapshot() ([]StageStat, []string) {
	if s == nil {
		return nil, nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]StageStat, 0, len(s.order))
	for _, name := range s.order {
		st := s.stages[name]
		out = append(out, StageStat{
			Name:        name,
			Wall:        st.wall,
			Items:       st.items,
			Skipped:     st.skipped,
			Workers:     st.workers,
			Shards:      st.shards,
			CacheHits:   st.cacheHits,
			CacheMisses: st.cacheMisses,
			Spans:       st.spans,
		})
	}
	notes := append([]string(nil), s.notes...)
	return out, notes
}

// statsJSON is the stable wire form of a registry.
type statsJSON struct {
	Stages []StageStat `json:"stages"`
	Notes  []string    `json:"notes,omitempty"`
}

// MarshalJSON serializes the registry. (A nil *Stats still marshals as
// null — encoding/json short-circuits nil pointers — so report embedders
// should hold a concrete registry.)
func (s *Stats) MarshalJSON() ([]byte, error) {
	stages, notes := s.Snapshot()
	if stages == nil {
		stages = []StageStat{}
	}
	return json.Marshal(statsJSON{Stages: stages, Notes: notes})
}

// Table renders the registry as an aligned text table, the form the CLIs
// print on -stats and on interrupt. Empty registries render a single
// "(no stages recorded)" line so interrupt handlers can print
// unconditionally.
func (s *Stats) Table() string {
	stages, notes := s.Snapshot()
	var b strings.Builder
	fmt.Fprintf(&b, "%-28s %12s %10s %8s %12s %12s\n", "stage", "wall", "items", "workers", "cache-hits", "cache-misses")
	if len(stages) == 0 {
		b.WriteString("(no stages recorded)\n")
	}
	for _, st := range stages {
		fmt.Fprintf(&b, "%-28s %12s %10d %8d %12d %12d\n",
			st.Name, st.Wall.Round(time.Microsecond), st.Items, st.Workers, st.CacheHits, st.CacheMisses)
	}
	for _, n := range notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// Merge folds other's stages and notes into s (for embedding a
// sub-engine's registry into a caller's). Stage names collide by
// accumulation, matching repeated-span semantics.
func (s *Stats) Merge(other *Stats) {
	if s == nil || other == nil {
		return
	}
	stages, notes := other.Snapshot()
	s.mu.Lock()
	for _, st := range stages {
		dst := s.stageLocked(st.Name)
		dst.wall += st.Wall
		dst.items += st.Items
		dst.skipped += st.Skipped
		if st.Workers > dst.workers {
			dst.workers = st.Workers
		}
		if st.Shards > dst.shards {
			dst.shards = st.Shards
		}
		dst.cacheHits += st.CacheHits
		dst.cacheMisses += st.CacheMisses
		dst.spans += st.Spans
	}
	s.mu.Unlock()
	for _, n := range notes {
		s.Note("%s", n)
	}
}

// SortedNames returns the recorded stage names in lexical order (test
// helper; display order stays first-recorded).
func (s *Stats) SortedNames() []string {
	stages, _ := s.Snapshot()
	names := make([]string, len(stages))
	for i, st := range stages {
		names[i] = st.Name
	}
	sort.Strings(names)
	return names
}
