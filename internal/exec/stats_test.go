package exec

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestStatsSpanAccumulates(t *testing.T) {
	st := NewStats()
	for level := 0; level < 3; level++ {
		sp := st.Span("discover.verify")
		sp.Items(10)
		sp.Workers(level + 1)
		sp.Cache(5, 1)
		sp.End()
	}
	stages, _ := st.Snapshot()
	if len(stages) != 1 {
		t.Fatalf("want 1 stage, got %d", len(stages))
	}
	got := stages[0]
	if got.Name != "discover.verify" || got.Items != 30 || got.Workers != 3 ||
		got.CacheHits != 15 || got.CacheMisses != 3 || got.Spans != 3 {
		t.Fatalf("bad accumulation: %+v", got)
	}
	if got.Wall < 0 {
		t.Fatalf("negative wall %v", got.Wall)
	}
}

func TestStatsOrderIsFirstRecorded(t *testing.T) {
	st := NewStats()
	for _, name := range []string{"b", "a", "c", "a"} {
		sp := st.Span(name)
		sp.End()
	}
	stages, _ := st.Snapshot()
	var names []string
	for _, s := range stages {
		names = append(names, s.Name)
	}
	if strings.Join(names, ",") != "b,a,c" {
		t.Fatalf("order %v", names)
	}
}

func TestStatsDoubleEndIsNoop(t *testing.T) {
	st := NewStats()
	sp := st.Span("x")
	sp.Items(1)
	sp.End()
	sp.End()
	stages, _ := st.Snapshot()
	if stages[0].Spans != 1 || stages[0].Items != 1 {
		t.Fatalf("double End counted twice: %+v", stages[0])
	}
}

func TestStatsNilSafety(t *testing.T) {
	var st *Stats
	sp := st.Span("x") // nil span
	sp.Items(3)
	sp.Workers(2)
	sp.Cache(1, 1)
	sp.End()
	st.Note("ignored %d", 1)
	st.Merge(NewStats())
	if stages, notes := st.Snapshot(); stages != nil || notes != nil {
		t.Fatal("nil Stats snapshot not empty")
	}
	// encoding/json short-circuits nil pointers to null before consulting
	// MarshalJSON; embedders hold a concrete registry, so null only appears
	// for a registry that was never created.
	b, err := json.Marshal(st)
	if err != nil {
		t.Fatal(err)
	}
	if string(b) != `null` {
		t.Fatalf("nil Stats JSON = %s", b)
	}
	if !strings.Contains(st.Table(), "(no stages recorded)") {
		t.Fatalf("nil Stats table = %q", st.Table())
	}
}

func TestStatsJSONShape(t *testing.T) {
	st := NewStats()
	sp := st.Span("clean.beam")
	sp.Items(7)
	sp.Workers(4)
	sp.End()
	st.Note("beam truncated at level %d", 3)
	raw, err := json.Marshal(st)
	if err != nil {
		t.Fatal(err)
	}
	var decoded struct {
		Stages []struct {
			Name    string `json:"name"`
			WallNS  int64  `json:"wall_ns"`
			Items   int64  `json:"items"`
			Workers int    `json:"workers"`
			Spans   int64  `json:"spans"`
		} `json:"stages"`
		Notes []string `json:"notes"`
	}
	if err := json.Unmarshal(raw, &decoded); err != nil {
		t.Fatalf("unmarshal %s: %v", raw, err)
	}
	if len(decoded.Stages) != 1 || decoded.Stages[0].Name != "clean.beam" ||
		decoded.Stages[0].Items != 7 || decoded.Stages[0].Workers != 4 || decoded.Stages[0].Spans != 1 {
		t.Fatalf("bad stages: %s", raw)
	}
	if len(decoded.Notes) != 1 || !strings.Contains(decoded.Notes[0], "level 3") {
		t.Fatalf("bad notes: %s", raw)
	}
}

func TestStatsTableRendersStagesAndNotes(t *testing.T) {
	st := NewStats()
	sp := st.Span("evidence.clusters")
	sp.Items(1234)
	sp.Workers(8)
	sp.End()
	st.Note("sequential fallback")
	table := st.Table()
	for _, want := range []string{"stage", "wall", "items", "workers", "evidence.clusters", "1234", "note: sequential fallback"} {
		if !strings.Contains(table, want) {
			t.Fatalf("table missing %q:\n%s", want, table)
		}
	}
}

func TestStatsNoteDeduplicates(t *testing.T) {
	st := NewStats()
	st.Note("same")
	st.Note("same")
	st.Note("different")
	if _, notes := st.Snapshot(); len(notes) != 2 {
		t.Fatalf("notes %v", notes)
	}
}

func TestStatsMerge(t *testing.T) {
	a, b := NewStats(), NewStats()
	sp := a.Span("s")
	sp.Items(1)
	sp.End()
	sp = b.Span("s")
	sp.Items(2)
	sp.Workers(5)
	sp.End()
	b.Note("from b")
	a.Merge(b)
	stages, notes := a.Snapshot()
	if len(stages) != 1 || stages[0].Items != 3 || stages[0].Workers != 5 || stages[0].Spans != 2 {
		t.Fatalf("merge result %+v", stages)
	}
	if len(notes) != 1 || notes[0] != "from b" {
		t.Fatalf("merge notes %v", notes)
	}
}

func TestStatsConcurrentSpans(t *testing.T) {
	st := NewStats()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				sp := st.Span("hot")
				sp.Items(1)
				sp.End()
				st.Note("note %d", i%4)
			}
		}()
	}
	wg.Wait()
	stages, notes := st.Snapshot()
	if stages[0].Items != 800 || stages[0].Spans != 800 {
		t.Fatalf("concurrent accumulation lost updates: %+v", stages[0])
	}
	if len(notes) != 4 {
		t.Fatalf("notes %v", notes)
	}
	if names := st.SortedNames(); len(names) != 1 || names[0] != "hot" {
		t.Fatalf("names %v", names)
	}
	_ = time.Microsecond
}

// TestStatsShardsCounter: the Shards span counter keeps the maximum
// across accumulated spans (like Workers), serializes as "shards", and
// survives Merge.
func TestStatsShardsCounter(t *testing.T) {
	s := NewStats()
	sp := s.Span("monitor.apply")
	sp.Shards(4)
	sp.Shards(2) // max wins
	sp.End()
	sp2 := s.Span("monitor.apply")
	sp2.Shards(8)
	sp2.End()
	stages, _ := s.Snapshot()
	if len(stages) != 1 || stages[0].Shards != 8 {
		t.Fatalf("stages = %+v, want one stage with shards=8", stages)
	}
	raw, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(raw), `"shards":8`) {
		t.Fatalf("JSON missing shards counter: %s", raw)
	}
	var nilSpan *Span
	nilSpan.Shards(3) // nil-safe like every Span method

	other := NewStats()
	osp := other.Span("monitor.apply")
	osp.Shards(16)
	osp.End()
	s.Merge(other)
	stages, _ = s.Snapshot()
	if stages[0].Shards != 16 {
		t.Fatalf("merged shards = %d, want 16", stages[0].Shards)
	}
}

// TestStatsSkippedCounter: the Skipped span counter accumulates (like
// Items), serializes as "skipped", and survives Merge — it is the
// incremental engines' skip-rate observability.
func TestStatsSkippedCounter(t *testing.T) {
	s := NewStats()
	sp := s.Span("maintain.verify")
	sp.Items(3)
	sp.Skipped(5)
	sp.Skipped(2)
	sp.End()
	stages, _ := s.Snapshot()
	if len(stages) != 1 || stages[0].Skipped != 7 || stages[0].Items != 3 {
		t.Fatalf("stages = %+v, want one stage with items=3 skipped=7", stages)
	}
	raw, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(raw), `"skipped":7`) {
		t.Fatalf("JSON missing skipped counter: %s", raw)
	}
	var nilSpan *Span
	nilSpan.Skipped(3) // nil-safe like every Span method

	other := NewStats()
	osp := other.Span("maintain.verify")
	osp.Skipped(4)
	osp.End()
	s.Merge(other)
	stages, _ = s.Snapshot()
	if stages[0].Skipped != 11 {
		t.Fatalf("merged skipped = %d, want 11", stages[0].Skipped)
	}
}
