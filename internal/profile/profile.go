// Package profile computes single-column and schema-level statistics of a
// relation — the data-profiling substrate that dependency discovery and
// statistical repair build on: cardinalities, frequency distributions,
// key/constant detection, entropy, and ontology coverage.
package profile

import (
	"context"
	"math"
	"sort"

	"github.com/fastofd/fastofd/internal/exec"
	"github.com/fastofd/fastofd/internal/ontology"
	"github.com/fastofd/fastofd/internal/relation"
)

// ValueFreq is one value with its occurrence count.
type ValueFreq struct {
	Value string
	Count int
}

// Column summarizes one attribute.
type Column struct {
	Name     string
	Index    int
	Distinct int
	// IsKey reports whether every value is unique (a unique column key).
	IsKey bool
	// IsConstant reports whether at most one distinct value occurs.
	IsConstant bool
	// Entropy is the Shannon entropy of the value distribution in bits.
	Entropy float64
	// TopValues holds the most frequent values, descending, capped.
	TopValues []ValueFreq
	// Coverage is the fraction of cells whose value appears in the
	// ontology (0 when profiled without one). The paper requires ≥90%
	// coverage on consequent attributes for OFDs to be useful.
	Coverage float64
	// MultiSense is the fraction of cells whose value has MORE than one
	// interpretation (|names(v)| > 1) — the sense-ambiguity measure.
	MultiSense float64
}

// Profile summarizes a relation.
type Profile struct {
	Rows    int
	Columns []Column
}

// TopK bounds the per-column most-frequent-value list.
const TopK = 10

// Relation profiles every column of rel; ont may be nil.
func Relation(rel *relation.Relation, ont *ontology.Ontology) *Profile {
	p, _ := RelationContext(context.Background(), rel, ont)
	return p
}

// RelationContext is Relation with cooperative cancellation: profiling
// stops between columns, returning the columns profiled so far (later
// columns zero-valued) plus the wrapped context error.
func RelationContext(ctx context.Context, rel *relation.Relation, ont *ontology.Ontology) (*Profile, error) {
	p := &Profile{Rows: rel.NumRows(), Columns: make([]Column, rel.NumCols())}
	for c := 0; c < rel.NumCols(); c++ {
		if err := exec.Interrupted(ctx, "profile"); err != nil {
			return p, err
		}
		p.Columns[c] = column(rel, ont, c)
	}
	return p, nil
}

func column(rel *relation.Relation, ont *ontology.Ontology, c int) Column {
	n := rel.NumRows()
	col := Column{Name: rel.Schema().Name(c), Index: c}
	counts := make(map[relation.Value]int)
	codes := rel.Column(c)
	for b := 0; b < codes.NumBlocks(); b++ {
		for _, v := range codes.Block(b) {
			counts[v]++
		}
	}
	col.Distinct = len(counts)
	col.IsKey = n > 0 && col.Distinct == n
	col.IsConstant = col.Distinct <= 1

	dict := rel.Dict(c)
	freqs := make([]ValueFreq, 0, len(counts))
	covered, multi := 0, 0
	for v, cnt := range counts {
		s := dict.String(v)
		freqs = append(freqs, ValueFreq{Value: s, Count: cnt})
		if ont != nil {
			if names := ont.Names(s); len(names) > 0 {
				covered += cnt
				if len(names) > 1 {
					multi += cnt
				}
			}
		}
		if cnt > 0 && n > 0 {
			pr := float64(cnt) / float64(n)
			col.Entropy -= pr * math.Log2(pr)
		}
	}
	sort.Slice(freqs, func(i, j int) bool {
		if freqs[i].Count != freqs[j].Count {
			return freqs[i].Count > freqs[j].Count
		}
		return freqs[i].Value < freqs[j].Value
	})
	if len(freqs) > TopK {
		freqs = freqs[:TopK]
	}
	col.TopValues = freqs
	if ont != nil && n > 0 {
		col.Coverage = float64(covered) / float64(n)
		col.MultiSense = float64(multi) / float64(n)
	}
	return col
}

// Keys returns the indexes of unique-valued columns.
func (p *Profile) Keys() []int {
	var out []int
	for _, c := range p.Columns {
		if c.IsKey {
			out = append(out, c.Index)
		}
	}
	return out
}

// OntologyBacked returns the indexes of columns whose ontology coverage
// meets the threshold — the candidates for meaningful OFD consequents.
func (p *Profile) OntologyBacked(minCoverage float64) []int {
	var out []int
	for _, c := range p.Columns {
		if c.Coverage >= minCoverage {
			out = append(out, c.Index)
		}
	}
	return out
}
