package profile

import (
	"math"
	"testing"

	"github.com/fastofd/fastofd/internal/gen"
	"github.com/fastofd/fastofd/internal/ontology"
	"github.com/fastofd/fastofd/internal/relation"
)

func TestColumnStatistics(t *testing.T) {
	schema := relation.MustSchema("ID", "CONST", "VAL")
	rel, _ := relation.FromRows(schema, [][]string{
		{"1", "k", "a"},
		{"2", "k", "a"},
		{"3", "k", "b"},
		{"4", "k", "b"},
	})
	p := Relation(rel, nil)
	if p.Rows != 4 || len(p.Columns) != 3 {
		t.Fatalf("profile shape wrong: %+v", p)
	}
	id, konst, val := p.Columns[0], p.Columns[1], p.Columns[2]
	if !id.IsKey || id.Distinct != 4 {
		t.Errorf("ID should be a key: %+v", id)
	}
	if !konst.IsConstant || konst.Entropy != 0 {
		t.Errorf("CONST should be constant with zero entropy: %+v", konst)
	}
	if val.IsKey || val.IsConstant || val.Distinct != 2 {
		t.Errorf("VAL stats wrong: %+v", val)
	}
	if math.Abs(val.Entropy-1.0) > 1e-9 { // 50/50 split = 1 bit
		t.Errorf("VAL entropy = %v, want 1", val.Entropy)
	}
	if len(val.TopValues) != 2 || val.TopValues[0].Count != 2 {
		t.Errorf("top values wrong: %+v", val.TopValues)
	}
	if got := p.Keys(); len(got) != 1 || got[0] != 0 {
		t.Errorf("Keys = %v", got)
	}
}

func TestOntologyCoverage(t *testing.T) {
	schema := relation.MustSchema("MED")
	rel, _ := relation.FromRows(schema, [][]string{
		{"cartia"}, {"tiazac"}, {"cartia"}, {"mystery"},
	})
	o := ontology.New()
	o.MustAddClass("diltiazem", "FDA", ontology.NoClass, "cartia", "tiazac")
	o.MustAddClass("aspirin", "MoH", ontology.NoClass, "cartia")
	p := Relation(rel, o)
	med := p.Columns[0]
	if math.Abs(med.Coverage-0.75) > 1e-9 {
		t.Errorf("coverage = %v, want 0.75", med.Coverage)
	}
	// cartia appears twice and has two senses → multi-sense share 2/4.
	if math.Abs(med.MultiSense-0.5) > 1e-9 {
		t.Errorf("multi-sense = %v, want 0.5", med.MultiSense)
	}
	if got := p.OntologyBacked(0.7); len(got) != 1 {
		t.Errorf("OntologyBacked = %v", got)
	}
	if got := p.OntologyBacked(0.9); len(got) != 0 {
		t.Errorf("OntologyBacked(0.9) = %v", got)
	}
}

func TestGeneratedWorkloadCoverage(t *testing.T) {
	// The generator's semantic columns must be ontology-backed ≥90% (the
	// paper's coverage requirement) and the rest must not be.
	ds := gen.Clinical(500, 3)
	p := Relation(ds.CleanRel, ds.FullOnt)
	backed := p.OntologyBacked(0.9)
	if len(backed) != len(ds.SemanticCols()) {
		t.Fatalf("backed columns %v, want %v", backed, ds.SemanticCols())
	}
	for i, c := range backed {
		if c != ds.SemanticCols()[i] {
			t.Fatalf("backed columns %v, want %v", backed, ds.SemanticCols())
		}
	}
	// Keys: NCTID unique.
	if keys := p.Keys(); len(keys) == 0 || keys[0] != 0 {
		t.Fatalf("keys = %v", keys)
	}
}

func TestEmptyRelation(t *testing.T) {
	rel := relation.New(relation.MustSchema("A"))
	p := Relation(rel, nil)
	c := p.Columns[0]
	if c.IsKey || !c.IsConstant || c.Entropy != 0 || c.Coverage != 0 {
		t.Errorf("empty column stats: %+v", c)
	}
}
