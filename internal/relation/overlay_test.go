package relation

import (
	"reflect"
	"testing"
)

func TestPartitionOverlayViewsAndGrowth(t *testing.T) {
	rel, err := FromRows(MustSchema("A", "B"), [][]string{
		{"x", "1"}, {"x", "2"}, {"y", "3"}, {"y", "4"}, {"z", "5"},
	})
	if err != nil {
		t.Fatal(err)
	}
	base := SingleColumnPartition(rel, 0).Strip() // classes {0,1}, {2,3}; z stripped
	o := NewPartitionOverlay(base)
	if o.NumClasses() != 2 || o.BaseClasses() != 2 {
		t.Fatalf("classes = %d base = %d, want 2/2", o.NumClasses(), o.BaseClasses())
	}

	var scratch []int32
	// Untouched base class: must be a zero-copy view into the flat array.
	v := o.View(0, &scratch)
	if &v[0] != &base.Tuples[0] {
		t.Fatal("delta-free class must alias the base flat array")
	}
	if scratch != nil {
		t.Fatal("scratch must stay untouched for zero-copy views")
	}

	// Add tuples to a base class: the view materializes base + delta.
	o.Add(1, 5)
	o.Add(1, 7)
	got := o.View(1, &scratch)
	if !reflect.DeepEqual(got, []int32{2, 3, 5, 7}) {
		t.Fatalf("view = %v, want [2 3 5 7]", got)
	}
	if o.Len(1) != 4 {
		t.Fatalf("Len(1) = %d, want 4", o.Len(1))
	}

	// Overlay-born class: zero-copy view of the delta itself.
	ci := o.AddClass(4, 6)
	if ci != 2 || o.NumClasses() != 3 {
		t.Fatalf("AddClass id = %d classes = %d", ci, o.NumClasses())
	}
	if got := o.View(ci, &scratch); !reflect.DeepEqual(got, []int32{4, 6}) {
		t.Fatalf("new class view = %v", got)
	}
	o.Add(ci, 8)
	if got := o.View(ci, &scratch); !reflect.DeepEqual(got, []int32{4, 6, 8}) {
		t.Fatalf("grown new class view = %v", got)
	}
	if o.Len(ci) != 3 {
		t.Fatalf("Len(%d) = %d, want 3", ci, o.Len(ci))
	}
	if o.Added() != 5 {
		t.Fatalf("Added = %d, want 5", o.Added())
	}
	if o.Base() != base {
		t.Fatal("Base must return the wrapped partition")
	}
}

func TestPartitionOverlayScratchReuse(t *testing.T) {
	rel, err := FromRows(MustSchema("A"), [][]string{
		{"x"}, {"x"}, {"y"}, {"y"},
	})
	if err != nil {
		t.Fatal(err)
	}
	base := SingleColumnPartition(rel, 0).Strip()
	o := NewPartitionOverlay(base)
	o.Add(0, 9)
	o.Add(1, 11)
	var scratch []int32
	a := o.View(0, &scratch)
	if !reflect.DeepEqual(a, []int32{0, 1, 9}) {
		t.Fatalf("a = %v", a)
	}
	b := o.View(1, &scratch)
	if !reflect.DeepEqual(b, []int32{2, 3, 11}) {
		t.Fatalf("b = %v", b)
	}
	// The scratch grew once and was reused; capacity must satisfy both.
	if cap(scratch) < 3 {
		t.Fatalf("scratch cap = %d", cap(scratch))
	}
}

// TestPartitionOverlayShard covers the mapped-base view the sharded
// monitor uses: a shard overlay over a subset of base classes exposes
// local ids over exactly those classes, and overlay-born classes stack on
// top.
func TestPartitionOverlayShard(t *testing.T) {
	rel, err := FromRows(MustSchema("A"), [][]string{
		{"x"}, {"x"}, {"y"}, {"y"}, {"z"}, {"z"}, {"w"},
	})
	if err != nil {
		t.Fatal(err)
	}
	base := SingleColumnPartition(rel, 0).Strip() // {0,1}, {2,3}, {4,5}
	o := NewPartitionOverlayShard(base, []int32{0, 2})
	if o.NumClasses() != 2 || o.BaseClasses() != 2 {
		t.Fatalf("classes = %d base = %d, want 2/2", o.NumClasses(), o.BaseClasses())
	}
	var scratch []int32
	if got := o.View(0, &scratch); !reflect.DeepEqual(got, []int32{0, 1}) {
		t.Fatalf("local 0 = %v, want base class 0", got)
	}
	if got := o.View(1, &scratch); !reflect.DeepEqual(got, []int32{4, 5}) {
		t.Fatalf("local 1 = %v, want base class 2", got)
	}
	o.Add(1, 8)
	if got := o.View(1, &scratch); !reflect.DeepEqual(got, []int32{4, 5, 8}) {
		t.Fatalf("grown local 1 = %v", got)
	}
	if o.Len(0) != 2 || o.Len(1) != 3 {
		t.Fatalf("lens = %d,%d", o.Len(0), o.Len(1))
	}
	ci := o.AddClass(6, 9)
	if ci != 2 {
		t.Fatalf("overlay-born id = %d, want 2", ci)
	}
	if got := o.View(ci, &scratch); !reflect.DeepEqual(got, []int32{6, 9}) {
		t.Fatalf("overlay-born view = %v", got)
	}
}

// TestPartitionOverlayStableView pins StableView's immutability contract:
// the returned slices keep their contents across later Add/AddClass calls
// (View's results may alias scratch or in-place-growing deltas).
func TestPartitionOverlayStableView(t *testing.T) {
	rel, err := FromRows(MustSchema("A"), [][]string{
		{"x"}, {"x"}, {"y"}, {"y"},
	})
	if err != nil {
		t.Fatal(err)
	}
	base := SingleColumnPartition(rel, 0).Strip()
	o := NewPartitionOverlay(base)

	// Pure base class: aliasing the frozen base is fine.
	pure := o.StableView(0)
	if !reflect.DeepEqual(pure, []int32{0, 1}) {
		t.Fatalf("pure = %v", pure)
	}

	// Mixed class: the stable view is a copy, untouched by later growth.
	o.Add(1, 9)
	mixed := o.StableView(1)
	if !reflect.DeepEqual(mixed, []int32{2, 3, 9}) {
		t.Fatalf("mixed = %v", mixed)
	}
	// Overlay-born class grown after taking the stable view: the earlier
	// slice must not change even though Add may extend deltas in place.
	ci := o.AddClass(5)
	born := o.StableView(ci)
	o.Add(ci, 7)
	o.Add(ci, 11)
	if !reflect.DeepEqual(born, []int32{5}) {
		t.Fatalf("stable view mutated by later Add: %v", born)
	}
	o.Add(1, 13)
	if !reflect.DeepEqual(mixed, []int32{2, 3, 9}) {
		t.Fatalf("mixed stable view mutated: %v", mixed)
	}
	if got := o.StableView(ci); !reflect.DeepEqual(got, []int32{5, 7, 11}) {
		t.Fatalf("fresh stable view = %v", got)
	}
}

// TestPartitionOverlayShardEmpty pins the degenerate shard: a shard that
// owns no base classes starts with zero classes, materializes to the
// canonical empty stripped form, and still accepts overlay-born classes
// (ids starting at 0).
func TestPartitionOverlayShardEmpty(t *testing.T) {
	rel, err := FromRows(MustSchema("A"), [][]string{
		{"x"}, {"x"}, {"y"}, {"y"},
	})
	if err != nil {
		t.Fatal(err)
	}
	base := SingleColumnPartition(rel, 0).Strip()
	o := NewPartitionOverlayShard(base, nil)
	if o.NumClasses() != 0 || o.BaseClasses() != 0 || o.Added() != 0 {
		t.Fatalf("empty shard: classes=%d base=%d added=%d", o.NumClasses(), o.BaseClasses(), o.Added())
	}
	p := o.Materialize(rel.NumRows())
	if p.N != rel.NumRows() || !p.Stripped || p.Tuples != nil || p.Offsets != nil {
		t.Fatalf("empty materialize = %+v, want canonical empty stripped form", p)
	}
	// Overlay-born-only: every class lives in the deltas.
	ci := o.AddClass(1, 3)
	if ci != 0 || o.NumClasses() != 1 {
		t.Fatalf("born id = %d classes = %d", ci, o.NumClasses())
	}
	var scratch []int32
	if got := o.View(ci, &scratch); !reflect.DeepEqual(got, []int32{1, 3}) {
		t.Fatalf("born view = %v", got)
	}
	if got := o.StableView(ci); !reflect.DeepEqual(got, []int32{1, 3}) {
		t.Fatalf("born stable view = %v", got)
	}
}

// TestPartitionOverlayMaterialize pins the canonical flattened form:
// classes ordered by smallest tuple id (base and overlay-born classes
// interleaved), tuples ascending within each class, offsets starting at 0.
func TestPartitionOverlayMaterialize(t *testing.T) {
	rel, err := FromRows(MustSchema("A"), [][]string{
		{"x"}, {"q"}, {"x"}, {"y"}, {"y"}, {"z"},
	})
	if err != nil {
		t.Fatal(err)
	}
	base := SingleColumnPartition(rel, 0).Strip() // {0,2}, {3,4}
	o := NewPartitionOverlay(base)
	// A class born from formerly lone rows 1 and 5: its representative (1)
	// sorts between neither base class and the front — before {3,4} and
	// after {0,2}.
	o.AddClass(1, 5)
	o.Add(1, 6) // grow base class {3,4}
	p := o.Materialize(7)
	wantTuples := []int32{0, 2, 1, 5, 3, 4, 6}
	wantOffsets := []int32{0, 2, 4, 7}
	if !reflect.DeepEqual(p.Tuples, wantTuples) || !reflect.DeepEqual(p.Offsets, wantOffsets) {
		t.Fatalf("materialize = %v %v, want %v %v", p.Tuples, p.Offsets, wantTuples, wantOffsets)
	}
	if p.N != 7 || !p.Stripped {
		t.Fatalf("materialize meta = %+v", p)
	}
}

// TestPartitionOverlayBytes pins the resident-delta accounting the cache
// budget charges: 4 bytes per added tuple plus 4 per shard base-class
// mapping entry; the frozen base costs nothing here.
func TestPartitionOverlayBytes(t *testing.T) {
	rel, err := FromRows(MustSchema("A"), [][]string{
		{"x"}, {"x"}, {"y"}, {"y"}, {"z"}, {"z"},
	})
	if err != nil {
		t.Fatal(err)
	}
	base := SingleColumnPartition(rel, 0).Strip()
	plain := NewPartitionOverlay(base)
	if plain.Bytes() != 0 {
		t.Fatalf("fresh overlay bytes = %d, want 0", plain.Bytes())
	}
	plain.Add(0, 6)
	plain.AddClass(7, 8)
	if plain.Bytes() != 4*3 {
		t.Fatalf("overlay bytes = %d, want %d", plain.Bytes(), 4*3)
	}
	shard := NewPartitionOverlayShard(base, []int32{0, 2})
	if shard.Bytes() != 4*2 {
		t.Fatalf("shard bytes = %d, want %d (base map)", shard.Bytes(), 4*2)
	}
	shard.Add(1, 9)
	if shard.Bytes() != 4*3 {
		t.Fatalf("shard bytes after add = %d, want %d", shard.Bytes(), 4*3)
	}
}
