package relation

import (
	"reflect"
	"testing"
)

func TestPartitionOverlayViewsAndGrowth(t *testing.T) {
	rel, err := FromRows(MustSchema("A", "B"), [][]string{
		{"x", "1"}, {"x", "2"}, {"y", "3"}, {"y", "4"}, {"z", "5"},
	})
	if err != nil {
		t.Fatal(err)
	}
	base := SingleColumnPartition(rel, 0).Strip() // classes {0,1}, {2,3}; z stripped
	o := NewPartitionOverlay(base)
	if o.NumClasses() != 2 || o.BaseClasses() != 2 {
		t.Fatalf("classes = %d base = %d, want 2/2", o.NumClasses(), o.BaseClasses())
	}

	var scratch []int32
	// Untouched base class: must be a zero-copy view into the flat array.
	v := o.View(0, &scratch)
	if &v[0] != &base.Tuples[0] {
		t.Fatal("delta-free class must alias the base flat array")
	}
	if scratch != nil {
		t.Fatal("scratch must stay untouched for zero-copy views")
	}

	// Add tuples to a base class: the view materializes base + delta.
	o.Add(1, 5)
	o.Add(1, 7)
	got := o.View(1, &scratch)
	if !reflect.DeepEqual(got, []int32{2, 3, 5, 7}) {
		t.Fatalf("view = %v, want [2 3 5 7]", got)
	}
	if o.Len(1) != 4 {
		t.Fatalf("Len(1) = %d, want 4", o.Len(1))
	}

	// Overlay-born class: zero-copy view of the delta itself.
	ci := o.AddClass(4, 6)
	if ci != 2 || o.NumClasses() != 3 {
		t.Fatalf("AddClass id = %d classes = %d", ci, o.NumClasses())
	}
	if got := o.View(ci, &scratch); !reflect.DeepEqual(got, []int32{4, 6}) {
		t.Fatalf("new class view = %v", got)
	}
	o.Add(ci, 8)
	if got := o.View(ci, &scratch); !reflect.DeepEqual(got, []int32{4, 6, 8}) {
		t.Fatalf("grown new class view = %v", got)
	}
	if o.Len(ci) != 3 {
		t.Fatalf("Len(%d) = %d, want 3", ci, o.Len(ci))
	}
	if o.Added() != 5 {
		t.Fatalf("Added = %d, want 5", o.Added())
	}
	if o.Base() != base {
		t.Fatal("Base must return the wrapped partition")
	}
}

func TestPartitionOverlayScratchReuse(t *testing.T) {
	rel, err := FromRows(MustSchema("A"), [][]string{
		{"x"}, {"x"}, {"y"}, {"y"},
	})
	if err != nil {
		t.Fatal(err)
	}
	base := SingleColumnPartition(rel, 0).Strip()
	o := NewPartitionOverlay(base)
	o.Add(0, 9)
	o.Add(1, 11)
	var scratch []int32
	a := o.View(0, &scratch)
	if !reflect.DeepEqual(a, []int32{0, 1, 9}) {
		t.Fatalf("a = %v", a)
	}
	b := o.View(1, &scratch)
	if !reflect.DeepEqual(b, []int32{2, 3, 11}) {
		t.Fatalf("b = %v", b)
	}
	// The scratch grew once and was reused; capacity must satisfy both.
	if cap(scratch) < 3 {
		t.Fatalf("scratch cap = %d", cap(scratch))
	}
}
