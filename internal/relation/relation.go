package relation

import (
	"fmt"
)

// Value is a dictionary-encoded cell value. Values are interned per column;
// two cells in the same column are syntactically equal iff their Values are
// equal. NullValue marks a missing cell.
type Value int32

// NullValue is the encoding of a missing (null) cell.
const NullValue Value = -1

// Dict interns the string domain of one column.
type Dict struct {
	byID  []string
	byVal map[string]Value
}

// NewDict returns an empty dictionary.
func NewDict() *Dict {
	return &Dict{byVal: make(map[string]Value)}
}

// Intern returns the id for s, adding it to the dictionary if new.
func (d *Dict) Intern(s string) Value {
	if d.byVal == nil {
		d.hydrate()
	}
	if id, ok := d.byVal[s]; ok {
		return id
	}
	id := Value(len(d.byID))
	d.byID = append(d.byID, s)
	d.byVal[s] = id
	return id
}

// Lookup returns the id for s without interning.
func (d *Dict) Lookup(s string) (Value, bool) {
	if d.byVal == nil {
		d.hydrate()
	}
	id, ok := d.byVal[s]
	return id, ok
}

// hydrate builds the string→id map from the id-ordered domain. Restored
// dictionaries defer this until the first Intern/Lookup: snapshot reopen
// followed by read-only work (Report, verification) never pays the map
// build, and ids are positional so hydration at any later point yields the
// identical mapping.
func (d *Dict) hydrate() {
	d.byVal = make(map[string]Value, len(d.byID))
	for i, s := range d.byID {
		d.byVal[s] = Value(i)
	}
}

// String returns the string for id; NullValue renders as the empty string.
func (d *Dict) String(id Value) string {
	if id == NullValue {
		return ""
	}
	return d.byID[id]
}

// Size returns the number of distinct values interned.
func (d *Dict) Size() int { return len(d.byID) }

// Values returns all interned strings in id order.
func (d *Dict) Values() []string { return append([]string(nil), d.byID...) }

// restoreDict rebuilds a dictionary from its id-ordered string domain (the
// snapshot decode path): ids are assigned positionally, so a round-tripped
// dictionary encodes every string to the same Value it did before. The
// string→id map is hydrated lazily on first Intern/Lookup.
func restoreDict(byID []string) *Dict {
	return &Dict{byID: byID}
}

// Relation is a column-oriented relational instance. Each column stores
// dictionary-encoded values in a sealed-block chain (see blocks.go); the
// dictionary is per column so value ids are only comparable within a
// column.
type Relation struct {
	schema *Schema
	cols   []*Col
	dicts  []*Dict
	n      int
}

// New creates an empty relation over the schema.
func New(schema *Schema) *Relation {
	r := &Relation{
		schema: schema,
		cols:   make([]*Col, schema.Len()),
		dicts:  make([]*Dict, schema.Len()),
	}
	for i := range r.dicts {
		r.cols[i] = &Col{}
		r.dicts[i] = NewDict()
	}
	return r
}

// FromRows builds a relation from string rows. Each row must have exactly
// one cell per schema attribute.
func FromRows(schema *Schema, rows [][]string) (*Relation, error) {
	r := New(schema)
	for i, row := range rows {
		if len(row) != schema.Len() {
			return nil, fmt.Errorf("relation: row %d has %d cells, schema has %d attributes", i, len(row), schema.Len())
		}
		r.AppendRow(row)
	}
	return r, nil
}

// Schema returns the relation's schema.
func (r *Relation) Schema() *Schema { return r.schema }

// NumRows returns the number of tuples.
func (r *Relation) NumRows() int { return r.n }

// NumCols returns the number of attributes.
func (r *Relation) NumCols() int { return r.schema.Len() }

// Dict returns the dictionary of column col.
func (r *Relation) Dict(col int) *Dict { return r.dicts[col] }

// AppendRow appends one tuple given as strings in schema order.
func (r *Relation) AppendRow(row []string) {
	for c, s := range row {
		r.cols[c].Append(r.dicts[c].Intern(s))
	}
	r.n++
}

// Value returns the encoded value at (row, col).
func (r *Relation) Value(row, col int) Value { return r.cols[col].At(row) }

// SetValue overwrites the cell at (row, col) with an already-interned value.
func (r *Relation) SetValue(row, col int, v Value) { r.cols[col].Set(row, v) }

// SetString overwrites the cell at (row, col), interning s as needed.
func (r *Relation) SetString(row, col int, s string) {
	r.cols[col].Set(row, r.dicts[col].Intern(s))
}

// String returns the string at (row, col).
func (r *Relation) String(row, col int) string {
	return r.dicts[col].String(r.cols[col].At(row))
}

// Column returns column col's code chain; callers must not mutate it
// except through the owning relation's write methods.
func (r *Relation) Column(col int) *Col { return r.cols[col] }

// Row materializes tuple row as strings in schema order.
func (r *Relation) Row(row int) []string {
	out := make([]string, r.schema.Len())
	for c := range out {
		out[c] = r.String(row, c)
	}
	return out
}

// Rows materializes the whole relation as string rows.
func (r *Relation) Rows() [][]string {
	out := make([][]string, r.n)
	for i := range out {
		out[i] = r.Row(i)
	}
	return out
}

// Clone returns a deep copy of the relation. The copy shares no mutable
// state with the original, so repairs can be applied to the clone while the
// original serves as ground truth.
func (r *Relation) Clone() *Relation {
	c := &Relation{
		schema: r.schema,
		cols:   make([]*Col, len(r.cols)),
		dicts:  make([]*Dict, len(r.dicts)),
		n:      r.n,
	}
	for i := range r.cols {
		c.cols[i] = r.cols[i].clone()
		d := &Dict{byID: append([]string(nil), r.dicts[i].byID...)}
		if r.dicts[i].byVal != nil {
			d.byVal = make(map[string]Value, len(d.byID))
			for s, id := range r.dicts[i].byVal {
				d.byVal[s] = id
			}
		}
		c.dicts[i] = d
	}
	return c
}

// Project returns the distinct string values appearing in column col.
func (r *Relation) Project(col int) []string {
	seen := make(map[Value]struct{})
	var out []string
	c := r.cols[col]
	for b := 0; b < c.NumBlocks(); b++ {
		for _, v := range c.Block(b) {
			if _, ok := seen[v]; ok {
				continue
			}
			seen[v] = struct{}{}
			out = append(out, r.dicts[col].String(v))
		}
	}
	return out
}

// ProjectColumns returns a new relation containing only the given columns
// (in the given order), re-encoded with fresh dictionaries.
func (r *Relation) ProjectColumns(cols []int) (*Relation, error) {
	names := make([]string, len(cols))
	for i, c := range cols {
		if c < 0 || c >= r.schema.Len() {
			return nil, fmt.Errorf("relation: column %d out of range", c)
		}
		names[i] = r.schema.Name(c)
	}
	schema, err := NewSchema(names...)
	if err != nil {
		return nil, err
	}
	out := New(schema)
	row := make([]string, len(cols))
	for i := 0; i < r.n; i++ {
		for j, c := range cols {
			row[j] = r.String(i, c)
		}
		out.AppendRow(row)
	}
	return out, nil
}

// DiffCells counts the cells at which r and other differ. The relations
// must have the same schema and row count; the comparison is by string
// value so differing dictionaries do not matter.
func (r *Relation) DiffCells(other *Relation) (int, error) {
	if r.schema.Len() != other.schema.Len() || r.n != other.n {
		return 0, fmt.Errorf("relation: shape mismatch %dx%d vs %dx%d", r.n, r.schema.Len(), other.n, other.schema.Len())
	}
	diff := 0
	for c := 0; c < r.schema.Len(); c++ {
		for i := 0; i < r.n; i++ {
			if r.String(i, c) != other.String(i, c) {
				diff++
			}
		}
	}
	return diff, nil
}
