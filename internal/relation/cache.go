package relation

import (
	"context"
	"sort"
	"sync"
	"sync/atomic"

	"github.com/fastofd/fastofd/internal/exec"
)

// cacheShardCount is the number of independently locked shards of a
// PartitionCache. A power of two so the shard pick is a mask; 16 keeps
// contention negligible for the worker counts lattice traversal uses
// without bloating small caches.
const cacheShardCount = 16

// cacheEntry is one cached partition with its accounting: exact payload
// bytes, the logical time of its last hit, and its hit count — the inputs
// of the cost-model eviction score. lastUse and hits are atomics because
// lookups touch them under the shard's read lock. rows is the relation's
// row count when the entry was stored: a lookup finding a different count
// treats the entry as a miss (appended tuples changed every partition),
// so live engines never read a partition from before an append.
type cacheEntry struct {
	p       *Partition
	bytes   int64
	rows    int
	lastUse atomic.Uint64
	hits    atomic.Uint64
}

// colLUT is one column's row→class lookup vector: v[t] is tuple t's
// class index in Π*_c (−1 for stripped singleton rows), classes bounds
// the ids, and rows is the relation's row count at build time — the
// same staleness stamp cache entries carry. Immutable once published.
type colLUT struct {
	rows    int
	classes int
	v       []int32
}

// cacheShard is one lock domain of the cache. levels records, per
// attribute-set cardinality, the keys inserted at that cardinality, so
// Evict(k) walks only the level-k entries instead of the whole map.
type cacheShard struct {
	mu     sync.RWMutex
	m      map[AttrSet]*cacheEntry
	levels map[int][]AttrSet
}

// EvictionPolicy selects how a budgeted cache sheds entries when it
// exceeds its byte budget.
type EvictionPolicy int32

const (
	// EvictCostModel scores every entry by bytes × coldness ÷ (rebuild
	// cost × hit frequency) — the greedy-dual-size-frequency family — and
	// evicts the highest scores first: large, long-unused, rarely-hit
	// partitions that are cheap to recompute go before small, hot,
	// expensive ones. This is the default for budgeted caches.
	EvictCostModel EvictionPolicy = iota
	// EvictLevelSweep is the blind baseline: sweep whole lattice levels
	// (lowest multi-attribute level first, single columns last) until the
	// cache fits, ignoring per-entry heat and size — the policy the
	// pre-budget Evict(k) call sites approximated.
	EvictLevelSweep
)

// PartitionCache memoizes stripped partitions by attribute set, computing
// single columns directly and larger sets via Product of cached parts.
//
// The cache is safe for concurrent use: it is sharded by a mixed hash of
// the attribute set, each shard guarded by its own RWMutex. Lookups take a
// shard read lock; inserts take the shard write lock. Partition
// computation happens outside any lock, so two goroutines missing on the
// same set may both compute it — the canonical form makes the duplicate
// insert idempotent.
//
// Memory is bounded two ways: lattice traversals still drive the two-level
// Evict sweeps, and SetBudget arms a global byte budget enforced on every
// insert — when the payload exceeds it, the eviction policy (cost-model by
// default) sheds entries until the cache fits again, leaving at most the
// one in-flight partition over budget. Both are observable through Stats.
type PartitionCache struct {
	r         *Relation
	shards    [cacheShardCount]cacheShard
	hits      atomic.Uint64
	misses    atomic.Uint64
	bytes     atomic.Int64
	peakBytes atomic.Int64
	evictions atomic.Uint64
	budget    atomic.Int64  // 0 = unbounded
	policy    atomic.Int32  // EvictionPolicy
	clock     atomic.Uint64 // logical time: ticks once per lookup
	evictMu   sync.Mutex    // serializes budget enforcement passes
	// provider, when set, serves misses on attribute sets with a live
	// partition overlay (the merged pipeline's registry) instead of a
	// partition product; its resident bytes count against the budget.
	provider OverlayProvider
	// luts holds one lazily built row→class vector per column, the probe
	// side of RefineByLUT — the derivation chain in GetWith refines by
	// these instead of multiplying by ~n-payload single-column
	// partitions. Rebuilt when the row stamp trails the relation and
	// dropped by InvalidateTouched for rewritten columns; the few
	// int32-per-row vectors are deliberately outside the byte budget
	// (they are the cost of making every other entry cheap to derive).
	luts []atomic.Pointer[colLUT]
}

// OverlayProvider serves live partition overlays to a cache. The merged
// pipeline's live.Overlays registry implements it: registered attribute
// sets whose overlay is current return it from LiveOverlay (nil
// otherwise — unregistered, or stale after an update touched the set),
// and OverlayBytes reports the overlays' resident delta bytes so the
// cache's byte budget accounts for them. Offer runs the other direction:
// every partition the cache stores is offered to the provider, so a
// stale registered set whose partition the cache just computed on a real
// demand miss can adopt it as its next overlay base instead of paying a
// second computation when it rebuilds. Offer must be cheap and safe to
// call concurrently (the cache's miss path fans out).
type OverlayProvider interface {
	LiveOverlay(attrs AttrSet) *PartitionOverlay
	OverlayBytes() int64
	Offer(attrs AttrSet, p *Partition)
}

// SetOverlayProvider installs (or, with nil, removes) the overlay
// provider. Not synchronized with cache traffic: install it before the
// cache is shared across goroutines.
func (pc *PartitionCache) SetOverlayProvider(p OverlayProvider) { pc.provider = p }

// CacheStats is a snapshot of cache effectiveness and footprint counters.
type CacheStats struct {
	Hits      uint64 // lookups answered from the cache
	Misses    uint64 // lookups that had to compute a partition
	Entries   int    // partitions currently cached
	Bytes     int64  // exact payload bytes of cached partitions
	PeakBytes int64  // high-water payload bytes since construction
	Evictions uint64 // entries dropped (Evict sweeps + budget enforcement)
	Budget    int64  // configured byte budget (0 = unbounded)
	// OverlayBytes is the delta payload resident in the installed overlay
	// provider's live overlays (0 without a provider). Charged against
	// Budget by enforcement, so long-lived overlays can't silently push
	// the process past the byte budget.
	OverlayBytes int64
}

// Since returns the per-field change from prev to s: monotone counters
// (Hits, Misses, Evictions) and the gauges (Entries, Bytes) subtract —
// gauges may go negative across an eviction — while PeakBytes and Budget
// carry s's current values. This is the quantity bench reports and
// per-stage exec.Stats spans want, replacing hand-subtraction at every
// call site.
func (s CacheStats) Since(prev CacheStats) CacheStats {
	return CacheStats{
		Hits:         s.Hits - prev.Hits,
		Misses:       s.Misses - prev.Misses,
		Entries:      s.Entries - prev.Entries,
		Bytes:        s.Bytes - prev.Bytes,
		PeakBytes:    s.PeakBytes,
		Evictions:    s.Evictions - prev.Evictions,
		Budget:       s.Budget,
		OverlayBytes: s.OverlayBytes,
	}
}

// partitionBytes reports the exact heap payload of one cached partition.
func partitionBytes(p *Partition) int64 {
	return int64(4 * (len(p.Tuples) + len(p.Offsets)))
}

// shardOf picks the shard for an attribute set. AttrSets of one lattice
// level differ in few bits, so mix before masking (splitmix64 finalizer).
func (pc *PartitionCache) shardOf(a AttrSet) *cacheShard {
	x := uint64(a)
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return &pc.shards[x&(cacheShardCount-1)]
}

// NewPartitionCache creates a cache over r and precomputes all
// single-attribute stripped partitions.
func NewPartitionCache(r *Relation) *PartitionCache {
	return NewPartitionCacheParallel(r, 1)
}

// NewPartitionCacheParallel is NewPartitionCache with the single-attribute
// partition construction spread over up to workers goroutines (on the
// shared exec substrate rather than a private pool).
func NewPartitionCacheParallel(r *Relation, workers int) *PartitionCache {
	pc, _ := NewPartitionCacheContext(context.Background(), r, workers)
	return pc
}

// NewPartitionCacheContext is NewPartitionCacheParallel with cooperative
// cancellation: a cancelled context stops the single-column builds between
// columns and returns the wrapped context error. The cache returned on
// cancellation is still safe to use — columns not yet built are simply not
// pre-warmed and will be computed on first Get.
func NewPartitionCacheContext(ctx context.Context, r *Relation, workers int) (*PartitionCache, error) {
	pc := &PartitionCache{r: r, luts: make([]atomic.Pointer[colLUT], r.NumCols())}
	for i := range pc.shards {
		pc.shards[i].m = make(map[AttrSet]*cacheEntry)
		pc.shards[i].levels = make(map[int][]AttrSet)
	}
	nCols := r.NumCols()
	parts := make([]*Partition, nCols)
	err := exec.For(ctx, nCols, exec.Workers(workers), func(_, c int) {
		parts[c] = SingleColumnPartition(r, c).Strip()
	})
	for c, p := range parts {
		if p != nil {
			pc.store(Single(c), p)
		}
	}
	return pc, err
}

// Relation returns the underlying relation.
func (pc *PartitionCache) Relation() *Relation { return pc.r }

// SetBudget arms (or, with 0, disarms) the global byte budget. Enforcement
// happens on the insert path: the cache may transiently exceed the budget
// by the one partition being inserted, never by more. Safe to call
// concurrently with cache traffic.
func (pc *PartitionCache) SetBudget(bytes int64) {
	pc.budget.Store(bytes)
	if bytes > 0 {
		pc.enforceBudget(EmptySet)
	}
}

// Budget returns the configured byte budget (0 = unbounded).
func (pc *PartitionCache) Budget() int64 { return pc.budget.Load() }

// SetPolicy selects the budget-eviction policy. The default is
// EvictCostModel; EvictLevelSweep exists as the blind baseline the
// storage benchmarks compare against.
func (pc *PartitionCache) SetPolicy(p EvictionPolicy) { pc.policy.Store(int32(p)) }

// Policy returns the configured budget-eviction policy.
func (pc *PartitionCache) Policy() EvictionPolicy { return EvictionPolicy(pc.policy.Load()) }

// lookup returns the cached partition for attrs, if present and current,
// stamping the entry's recency and hit counters. An entry stored before
// an append (its row stamp trails the relation) is reported as a miss —
// it stays resident until the recompute's store replaces it or eviction
// claims it, and is never returned.
func (pc *PartitionCache) lookup(attrs AttrSet) (*Partition, bool) {
	now := pc.clock.Add(1)
	rows := pc.r.NumRows()
	s := pc.shardOf(attrs)
	s.mu.RLock()
	e, ok := s.m[attrs]
	var p *Partition
	if ok && e.rows != rows {
		ok = false
		e = nil
	}
	if ok {
		p = e.p
		e.lastUse.Store(now)
		e.hits.Add(1)
	}
	s.mu.RUnlock()
	return p, ok
}

// store inserts (or replaces) the partition for attrs, maintaining the
// per-level eviction index and the byte counter, then enforces the budget
// (the just-inserted entry is protected, so the cache never thrashes the
// partition it is about to return).
func (pc *PartitionCache) store(attrs AttrSet, p *Partition) {
	s := pc.shardOf(attrs)
	nb := partitionBytes(p)
	e := &cacheEntry{p: p, bytes: nb, rows: pc.r.NumRows()}
	e.lastUse.Store(pc.clock.Load())
	s.mu.Lock()
	if old, present := s.m[attrs]; present {
		pc.bytes.Add(-old.bytes)
	} else {
		k := attrs.Len()
		s.levels[k] = append(s.levels[k], attrs)
	}
	s.m[attrs] = e
	total := pc.bytes.Add(nb)
	s.mu.Unlock()
	for {
		peak := pc.peakBytes.Load()
		if total <= peak || pc.peakBytes.CompareAndSwap(peak, total) {
			break
		}
	}
	if b := pc.budget.Load(); b > 0 && total+pc.overlayBytes() > b {
		pc.enforceBudget(attrs)
	}
	if prov := pc.provider; prov != nil {
		prov.Offer(attrs, p)
	}
}

// overlayBytes reports the provider's resident overlay payload (0 without
// a provider) — the budget share live overlays consume.
func (pc *PartitionCache) overlayBytes() int64 {
	if prov := pc.provider; prov != nil {
		return prov.OverlayBytes()
	}
	return 0
}

// evictLocked removes attrs from shard s (whose write lock the caller
// holds), keeping the byte counter and the per-level index exact.
func (pc *PartitionCache) evictLocked(s *cacheShard, attrs AttrSet) bool {
	e, present := s.m[attrs]
	if !present {
		return false
	}
	delete(s.m, attrs)
	pc.bytes.Add(-e.bytes)
	pc.evictions.Add(1)
	k := attrs.Len()
	lv := s.levels[k]
	for i, a := range lv {
		if a == attrs {
			lv[i] = lv[len(lv)-1]
			s.levels[k] = lv[:len(lv)-1]
			break
		}
	}
	return true
}

// rebuildCost estimates what recomputing the entry would cost on a miss:
// level-k sets reassemble through k−1 partition products, each linear in
// the partition payload; single columns are one counting pass over the
// relation. The estimate only needs to rank entries, not predict
// nanoseconds.
func rebuildCost(attrs AttrSet, bytes int64, nRows int) float64 {
	k := attrs.Len()
	if k <= 1 {
		return float64(nRows) + 1
	}
	return float64(k-1)*float64(bytes) + float64(nRows) + 1
}

// evictCandidate is one entry considered by a budget-enforcement pass.
type evictCandidate struct {
	attrs AttrSet
	shard *cacheShard
	bytes int64
	score float64
}

// enforceBudget sheds entries until the payload fits the budget again,
// protecting the just-inserted set. One pass runs at a time (evictMu);
// concurrent inserts that find the budget exceeded either run the next
// pass or are covered by the one in flight. The scan takes each shard's
// read lock briefly, scores outside any lock, then evicts per shard under
// its write lock, re-checking the running total so a pass never over-evicts
// after concurrent deletes.
func (pc *PartitionCache) enforceBudget(protect AttrSet) {
	pc.evictMu.Lock()
	defer pc.evictMu.Unlock()
	budget := pc.budget.Load()
	if budget <= 0 {
		return
	}
	// Live overlays share the byte budget: the cache may only keep what
	// the overlays leave of it.
	budget -= pc.overlayBytes()
	if budget < 0 {
		budget = 0
	}
	if pc.bytes.Load() <= budget {
		return
	}
	// Row-stale entries are free evictions — lookup will never serve
	// them again — so shed those before touching anything live.
	pc.invalidateStaleLocked()
	if pc.bytes.Load() <= budget {
		return
	}
	if EvictionPolicy(pc.policy.Load()) == EvictLevelSweep {
		pc.levelSweep(budget, protect)
		return
	}
	// Evict past the line by a 1/16 slack: each enforcement pass scans and
	// scores the whole cache, so stopping exactly at the budget would make
	// a stream of at-budget inserts pay that scan per store.
	target := budget - budget/16
	now := pc.clock.Load()
	nRows := pc.r.NumRows()
	var cands []evictCandidate
	for i := range pc.shards {
		s := &pc.shards[i]
		s.mu.RLock()
		for attrs, e := range s.m {
			if attrs == protect {
				continue
			}
			coldness := float64(now-e.lastUse.Load()) + 1
			freq := float64(e.hits.Load()) + 1
			score := float64(e.bytes) * coldness / (rebuildCost(attrs, e.bytes, nRows) * freq)
			cands = append(cands, evictCandidate{attrs: attrs, shard: s, bytes: e.bytes, score: score})
		}
		s.mu.RUnlock()
	}
	// Highest score evicts first: big, cold, rarely-hit, cheap-to-rebuild.
	sort.Slice(cands, func(a, b int) bool { return cands[a].score > cands[b].score })
	for _, c := range cands {
		if pc.bytes.Load() <= target {
			return
		}
		c.shard.mu.Lock()
		pc.evictLocked(c.shard, c.attrs)
		c.shard.mu.Unlock()
	}
}

// levelSweep is the blind baseline policy: drop whole lattice levels —
// lowest multi-attribute level first, single columns only as a last
// resort — until the cache fits.
func (pc *PartitionCache) levelSweep(budget int64, protect AttrSet) {
	maxLevel := 0
	for i := range pc.shards {
		s := &pc.shards[i]
		s.mu.RLock()
		for k := range s.levels {
			if k > maxLevel {
				maxLevel = k
			}
		}
		s.mu.RUnlock()
	}
	order := make([]int, 0, maxLevel+1)
	for k := 2; k <= maxLevel; k++ {
		order = append(order, k)
	}
	order = append(order, 1, 0)
	for _, k := range order {
		if pc.bytes.Load() <= budget {
			return
		}
		for i := range pc.shards {
			s := &pc.shards[i]
			s.mu.Lock()
			for _, a := range append([]AttrSet(nil), s.levels[k]...) {
				if a == protect {
					continue
				}
				pc.evictLocked(s, a)
			}
			s.mu.Unlock()
		}
	}
}

// Get returns the stripped partition Π*_X, computing and caching it if
// absent. Supersets are derived by multiplying a cached subset with the
// missing single columns. Safe for concurrent use; concurrent misses on
// one set may compute it twice but converge on the canonical result.
func (pc *PartitionCache) Get(attrs AttrSet) *Partition {
	return pc.GetWith(attrs, nil)
}

// GetWith is Get with a caller-supplied ProductBuffer for any partition
// products a miss needs, so hot probe loops (the FD baselines' holdsFD
// tests) stop paying per-call scratch allocations. buf may be nil, in
// which case a transient buffer is used. Safe for concurrent use as long
// as each goroutine passes its own buffer.
func (pc *PartitionCache) GetWith(attrs AttrSet, buf *ProductBuffer) *Partition {
	if p, ok := pc.lookup(attrs); ok {
		pc.hits.Add(1)
		return p
	}
	pc.misses.Add(1)
	if prov := pc.provider; prov != nil {
		// A registered live overlay answers the miss in class order — its
		// materialized form is byte-identical to the computed partition.
		if ov := prov.LiveOverlay(attrs); ov != nil {
			p := ov.Materialize(pc.r.NumRows())
			pc.store(attrs, p)
			return p
		}
	}
	if buf == nil {
		buf = &ProductBuffer{}
	}
	var p *Partition
	switch {
	case attrs.IsEmpty():
		p = PartitionOf(pc.r, attrs).Strip()
	case attrs.Len() == 1:
		// Rebuilt directly: under a byte budget single columns are
		// evictable like anything else, and recursing through subsets
		// would bottom out here anyway.
		p = SingleColumnPartition(pc.r, attrs.First()).Strip()
	default:
		// Find a cached subset obtained by dropping one attribute;
		// recurse (depth ≤ |attrs|), then multiply the gap back in.
		var best AttrSet
		found := false
		for _, i := range attrs.Attrs() {
			sub := attrs.Without(i)
			if _, ok := pc.lookup(sub); ok {
				best = sub
				found = true
				break
			}
		}
		if !found {
			// Build from the first attribute upward.
			best = Single(attrs.First())
		}
		p = pc.GetWith(best, buf)
		cur := best
		for _, i := range attrs.Minus(best).Attrs() {
			l := pc.lutFor(i, buf)
			p = buf.RefineByLUT(p, l.v, l.classes)
			// Cache the intermediate too: chains across a repair wave
			// share ascending prefixes, so the next miss finds a longer
			// drop-one subset and pays one refine instead of re-deriving
			// the prefix. The budget bounds the extra residency.
			if cur = cur.With(i); cur != attrs {
				pc.store(cur, p)
			}
		}
	}
	pc.store(attrs, p)
	return p
}

// lutFor returns column c's row→class vector, building it from the
// cached (or recomputed) single-column partition when absent or stamped
// with a stale row count. Concurrent builders may race; the duplicate
// publish is idempotent because the vector is a pure function of the
// column's current contents.
func (pc *PartitionCache) lutFor(c int, buf *ProductBuffer) *colLUT {
	rows := pc.r.NumRows()
	if l := pc.luts[c].Load(); l != nil && l.rows == rows {
		return l
	}
	p := pc.GetWith(Single(c), buf)
	v := make([]int32, rows)
	for i := range v {
		v[i] = -1
	}
	for ci := 0; ci < p.NumClasses(); ci++ {
		for _, t := range p.Class(ci) {
			v[t] = int32(ci)
		}
	}
	l := &colLUT{rows: rows, classes: p.NumClasses(), v: v}
	pc.luts[c].Store(l)
	return l
}

// GetOverlay is the overlay-aware partition path: identical to Get, but
// named for call sites whose correctness story is "serve the live overlay
// when one is registered" — the maintainer's repair verifier and the
// monitor's re-route both read partitions through it, so a batch that
// already maintains a live overlay never pays a cold partition product
// for the same attribute set.
func (pc *PartitionCache) GetOverlay(attrs AttrSet) *Partition {
	return pc.GetWith(attrs, nil)
}

// GetOverlayWith is GetOverlay with a caller-supplied ProductBuffer — the
// overlay-aware analogue of GetWith for hot repair loops that hold
// per-worker scratch.
func (pc *PartitionCache) GetOverlayWith(attrs AttrSet, buf *ProductBuffer) *Partition {
	return pc.GetWith(attrs, buf)
}

// InvalidateTouched evicts every cached partition whose attribute set
// intersects touched — the update-batch counterpart of the row-stamp
// staleness appends get for free. Live engines call it with a batch's
// touched column set before re-reading partitions, so a long-lived cache
// never serves pre-batch partitions of rewritten columns. Returns the
// number of entries dropped.
func (pc *PartitionCache) InvalidateTouched(touched AttrSet) int {
	if touched.IsEmpty() {
		return 0
	}
	// Rewritten columns invalidate their row→class vectors too: the row
	// stamp only catches appends, not in-place updates.
	for c := range pc.luts {
		if touched.Has(c) {
			pc.luts[c].Store(nil)
		}
	}
	n := 0
	for i := range pc.shards {
		s := &pc.shards[i]
		s.mu.Lock()
		for a := range s.m {
			if !a.Intersect(touched).IsEmpty() && pc.evictLocked(s, a) {
				n++
			}
		}
		s.mu.Unlock()
	}
	return n
}

// InvalidateStale evicts every cached partition whose row stamp trails
// the relation — entries stored before an append. They are already
// unservable (lookup reports them as misses), but left resident they are
// dead weight: they hold budget hostage and stall every enforcement pass.
// Engines that grow the relation call this right after appending, so the
// resident set stays answerable. Returns the number of entries dropped.
func (pc *PartitionCache) InvalidateStale() int {
	pc.evictMu.Lock()
	defer pc.evictMu.Unlock()
	return pc.invalidateStaleLocked()
}

// invalidateStaleLocked is InvalidateStale under evictMu.
func (pc *PartitionCache) invalidateStaleLocked() int {
	rows := pc.r.NumRows()
	n := 0
	for i := range pc.shards {
		s := &pc.shards[i]
		s.mu.Lock()
		for a, e := range s.m {
			if e.rows != rows && pc.evictLocked(s, a) {
				n++
			}
		}
		s.mu.Unlock()
	}
	return n
}

// Put stores a partition for attrs, typically one computed level-by-level
// during lattice traversal. Safe for concurrent use.
func (pc *PartitionCache) Put(attrs AttrSet, p *Partition) { pc.store(attrs, p.Strip()) }

// Evict removes cached partitions whose attribute sets have exactly size k;
// lattice traversals call this to bound memory to two levels. Cost is
// proportional to the number of level-k entries (via the per-level index),
// not the cache size.
func (pc *PartitionCache) Evict(k int) {
	for i := range pc.shards {
		s := &pc.shards[i]
		s.mu.Lock()
		for _, a := range s.levels[k] {
			if e, present := s.m[a]; present {
				pc.bytes.Add(-e.bytes)
				pc.evictions.Add(1)
				delete(s.m, a)
			}
		}
		delete(s.levels, k)
		s.mu.Unlock()
	}
}

// Stats returns a snapshot of the cache counters. Counters are updated
// atomically, so a snapshot taken while other goroutines use the cache is
// internally consistent enough for monitoring and tests.
func (pc *PartitionCache) Stats() CacheStats {
	st := CacheStats{
		Hits:         pc.hits.Load(),
		Misses:       pc.misses.Load(),
		Bytes:        pc.bytes.Load(),
		PeakBytes:    pc.peakBytes.Load(),
		Evictions:    pc.evictions.Load(),
		Budget:       pc.budget.Load(),
		OverlayBytes: pc.overlayBytes(),
	}
	for i := range pc.shards {
		s := &pc.shards[i]
		s.mu.RLock()
		st.Entries += len(s.m)
		s.mu.RUnlock()
	}
	return st
}
