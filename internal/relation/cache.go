package relation

import (
	"context"
	"sync"
	"sync/atomic"

	"github.com/fastofd/fastofd/internal/exec"
)

// cacheShardCount is the number of independently locked shards of a
// PartitionCache. A power of two so the shard pick is a mask; 16 keeps
// contention negligible for the worker counts lattice traversal uses
// without bloating small caches.
const cacheShardCount = 16

// cacheShard is one lock domain of the cache. levels records, per
// attribute-set cardinality, the keys inserted at that cardinality, so
// Evict(k) walks only the level-k entries instead of the whole map.
type cacheShard struct {
	mu     sync.RWMutex
	m      map[AttrSet]*Partition
	levels map[int][]AttrSet
}

// PartitionCache memoizes stripped partitions by attribute set, computing
// single columns directly and larger sets via Product of cached parts.
//
// The cache is safe for concurrent use: it is sharded by a mixed hash of
// the attribute set, each shard guarded by its own RWMutex. Lookups take a
// shard read lock; inserts take the shard write lock. Partition
// computation happens outside any lock, so two goroutines missing on the
// same set may both compute it — the canonical form makes the duplicate
// insert idempotent. Memory is bounded by the two-level eviction the
// lattice traversals drive via Evict, observable through Stats.
type PartitionCache struct {
	r      *Relation
	shards [cacheShardCount]cacheShard
	hits   atomic.Uint64
	misses atomic.Uint64
	bytes  atomic.Int64
}

// CacheStats is a snapshot of cache effectiveness and footprint counters.
type CacheStats struct {
	Hits    uint64 // lookups answered from the cache
	Misses  uint64 // lookups that had to compute a partition
	Entries int    // partitions currently cached
	Bytes   int64  // approximate payload bytes of cached partitions
}

// Since returns the hit/miss deltas between two snapshots, the quantity
// engines feed into their per-stage exec.Stats spans.
func (s CacheStats) Since(prev CacheStats) (hits, misses uint64) {
	return s.Hits - prev.Hits, s.Misses - prev.Misses
}

// partitionBytes approximates the heap payload of one cached partition.
func partitionBytes(p *Partition) int64 {
	return int64(4 * (len(p.Tuples) + len(p.Offsets)))
}

// shardOf picks the shard for an attribute set. AttrSets of one lattice
// level differ in few bits, so mix before masking (splitmix64 finalizer).
func (pc *PartitionCache) shardOf(a AttrSet) *cacheShard {
	x := uint64(a)
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return &pc.shards[x&(cacheShardCount-1)]
}

// NewPartitionCache creates a cache over r and precomputes all
// single-attribute stripped partitions.
func NewPartitionCache(r *Relation) *PartitionCache {
	return NewPartitionCacheParallel(r, 1)
}

// NewPartitionCacheParallel is NewPartitionCache with the single-attribute
// partition construction spread over up to workers goroutines (on the
// shared exec substrate rather than a private pool).
func NewPartitionCacheParallel(r *Relation, workers int) *PartitionCache {
	pc, _ := NewPartitionCacheContext(context.Background(), r, workers)
	return pc
}

// NewPartitionCacheContext is NewPartitionCacheParallel with cooperative
// cancellation: a cancelled context stops the single-column builds between
// columns and returns the wrapped context error. The cache returned on
// cancellation is still safe to use — columns not yet built are simply not
// pre-warmed and will be computed on first Get.
func NewPartitionCacheContext(ctx context.Context, r *Relation, workers int) (*PartitionCache, error) {
	pc := &PartitionCache{r: r}
	for i := range pc.shards {
		pc.shards[i].m = make(map[AttrSet]*Partition)
		pc.shards[i].levels = make(map[int][]AttrSet)
	}
	nCols := r.NumCols()
	parts := make([]*Partition, nCols)
	err := exec.For(ctx, nCols, exec.Workers(workers), func(_, c int) {
		parts[c] = SingleColumnPartition(r, c).Strip()
	})
	for c, p := range parts {
		if p != nil {
			pc.store(Single(c), p)
		}
	}
	return pc, err
}

// Relation returns the underlying relation.
func (pc *PartitionCache) Relation() *Relation { return pc.r }

// lookup returns the cached partition for attrs, if present.
func (pc *PartitionCache) lookup(attrs AttrSet) (*Partition, bool) {
	s := pc.shardOf(attrs)
	s.mu.RLock()
	p, ok := s.m[attrs]
	s.mu.RUnlock()
	return p, ok
}

// store inserts (or replaces) the partition for attrs, maintaining the
// per-level eviction index and the byte counter.
func (pc *PartitionCache) store(attrs AttrSet, p *Partition) {
	s := pc.shardOf(attrs)
	s.mu.Lock()
	if old, present := s.m[attrs]; present {
		pc.bytes.Add(-partitionBytes(old))
	} else {
		k := attrs.Len()
		s.levels[k] = append(s.levels[k], attrs)
	}
	s.m[attrs] = p
	pc.bytes.Add(partitionBytes(p))
	s.mu.Unlock()
}

// Get returns the stripped partition Π*_X, computing and caching it if
// absent. Supersets are derived by multiplying a cached subset with the
// missing single columns. Safe for concurrent use; concurrent misses on
// one set may compute it twice but converge on the canonical result.
func (pc *PartitionCache) Get(attrs AttrSet) *Partition {
	return pc.GetWith(attrs, nil)
}

// GetWith is Get with a caller-supplied ProductBuffer for any partition
// products a miss needs, so hot probe loops (the FD baselines' holdsFD
// tests) stop paying per-call scratch allocations. buf may be nil, in
// which case a transient buffer is used. Safe for concurrent use as long
// as each goroutine passes its own buffer.
func (pc *PartitionCache) GetWith(attrs AttrSet, buf *ProductBuffer) *Partition {
	if p, ok := pc.lookup(attrs); ok {
		pc.hits.Add(1)
		return p
	}
	pc.misses.Add(1)
	if buf == nil {
		buf = &ProductBuffer{}
	}
	var p *Partition
	if attrs.IsEmpty() {
		p = PartitionOf(pc.r, attrs).Strip()
	} else {
		// Find a cached subset obtained by dropping one attribute;
		// recurse (depth ≤ |attrs|), then multiply the gap back in.
		var best AttrSet
		found := false
		for _, i := range attrs.Attrs() {
			sub := attrs.Without(i)
			if _, ok := pc.lookup(sub); ok {
				best = sub
				found = true
				break
			}
		}
		if !found {
			// Build from the first attribute upward.
			best = Single(attrs.First())
		}
		p = pc.GetWith(best, buf)
		for _, i := range attrs.Minus(best).Attrs() {
			p = buf.Product(p, pc.GetWith(Single(i), buf))
		}
	}
	pc.store(attrs, p)
	return p
}

// Put stores a partition for attrs, typically one computed level-by-level
// during lattice traversal. Safe for concurrent use.
func (pc *PartitionCache) Put(attrs AttrSet, p *Partition) { pc.store(attrs, p.Strip()) }

// Evict removes cached partitions whose attribute sets have exactly size k;
// lattice traversals call this to bound memory to two levels. Cost is
// proportional to the number of level-k entries (via the per-level index),
// not the cache size.
func (pc *PartitionCache) Evict(k int) {
	for i := range pc.shards {
		s := &pc.shards[i]
		s.mu.Lock()
		for _, a := range s.levels[k] {
			if p, present := s.m[a]; present {
				pc.bytes.Add(-partitionBytes(p))
				delete(s.m, a)
			}
		}
		delete(s.levels, k)
		s.mu.Unlock()
	}
}

// Stats returns a snapshot of the cache counters. Counters are updated
// atomically, so a snapshot taken while other goroutines use the cache is
// internally consistent enough for monitoring and tests.
func (pc *PartitionCache) Stats() CacheStats {
	st := CacheStats{
		Hits:   pc.hits.Load(),
		Misses: pc.misses.Load(),
		Bytes:  pc.bytes.Load(),
	}
	for i := range pc.shards {
		s := &pc.shards[i]
		s.mu.RLock()
		st.Entries += len(s.m)
		s.mu.RUnlock()
	}
	return st
}
