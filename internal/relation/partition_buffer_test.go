package relation

import (
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"testing"
)

// randRelation builds a relation with the given shape and value skew.
func randRelation(t *testing.T, rng *rand.Rand, rows, cols, domain int) *Relation {
	t.Helper()
	names := make([]string, cols)
	for i := range names {
		names[i] = fmt.Sprintf("C%d", i)
	}
	rel := New(MustSchema(names...))
	row := make([]string, cols)
	for r := 0; r < rows; r++ {
		for c := range row {
			row[c] = fmt.Sprintf("v%d", rng.Intn(domain))
		}
		rel.AppendRow(row)
	}
	return rel
}

// samePartition asserts two stripped partitions are byte-identical in
// canonical form.
func samePartition(t *testing.T, got, want *Partition, msg string) {
	t.Helper()
	if got.N != want.N || got.Stripped != want.Stripped {
		t.Fatalf("%s: shape differs: N=%d/%d stripped=%v/%v",
			msg, got.N, want.N, got.Stripped, want.Stripped)
	}
	if !reflect.DeepEqual(got.ClassesAsInts(), want.ClassesAsInts()) {
		t.Fatalf("%s: classes differ\n got %v\nwant %v",
			msg, got.ClassesAsInts(), want.ClassesAsInts())
	}
}

// TestProductMatchesPartitionOf cross-checks the probe-table product against
// direct grouping: Π*_X · Π*_Y must equal Π*_{X∪Y} in canonical form. A
// single buffer serves every trial, covering reuse across relations of
// varying row counts in passing.
func TestProductMatchesPartitionOf(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var buf ProductBuffer
	for trial := 0; trial < 60; trial++ {
		rows := 1 + rng.Intn(300)
		cols := 2 + rng.Intn(4)
		rel := randRelation(t, rng, rows, cols, 1+rng.Intn(8))
		x := Single(rng.Intn(cols))
		y := Single(rng.Intn(cols))
		if rng.Intn(2) == 0 && cols > 2 {
			x = x.With(rng.Intn(cols))
		}
		pa := PartitionOf(rel, x).Strip()
		pb := PartitionOf(rel, y).Strip()
		want := PartitionOf(rel, x.Union(y)).Strip()
		got := buf.Product(pa, pb)
		samePartition(t, got, want, fmt.Sprintf("trial %d (%v·%v, %d rows)", trial, x, y, rows))
		// The product is symmetric in canonical form.
		samePartition(t, buf.Product(pb, pa), want, fmt.Sprintf("trial %d reversed", trial))
	}
}

// TestProductBufferReuseAcrossRowCounts drives one buffer through relations
// whose row counts shrink and then grow, which exercises both the
// probe-array reuse (larger than needed) and regrowth paths.
func TestProductBufferReuseAcrossRowCounts(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	var buf ProductBuffer
	for _, rows := range []int{500, 17, 3, 977, 1, 250} {
		rel := randRelation(t, rng, rows, 3, 4)
		pa := SingleColumnPartition(rel, 0).Strip()
		pb := SingleColumnPartition(rel, 1).Strip()
		want := PartitionOf(rel, Single(0).With(1)).Strip()
		got := buf.Product(pa, pb)
		samePartition(t, got, want, fmt.Sprintf("rows=%d", rows))
	}
}

// TestProductEmptyAndSingletonInputs covers the degenerate shapes: an empty
// stripped partition (a key) as either operand, and inputs whose product
// strips to nothing.
func TestProductEmptyAndSingletonInputs(t *testing.T) {
	rel, err := FromRows(MustSchema("K", "G", "H"), [][]string{
		{"k0", "g0", "h0"},
		{"k1", "g0", "h1"},
		{"k2", "g1", "h0"},
		{"k3", "g1", "h1"},
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf ProductBuffer
	key := SingleColumnPartition(rel, 0).Strip() // every class singleton
	if !key.IsKeyOver() || key.NumClasses() != 0 {
		t.Fatalf("column K should strip to an empty partition, got %v", key.ClassesAsInts())
	}
	grp := SingleColumnPartition(rel, 1).Strip()
	for _, pair := range [][2]*Partition{{key, grp}, {grp, key}, {key, key}} {
		p := buf.Product(pair[0], pair[1])
		if p.NumClasses() != 0 || !p.IsKeyOver() || p.Error() != 0 {
			t.Fatalf("product with a key operand must be empty, got %v", p.ClassesAsInts())
		}
		if p.N != rel.NumRows() {
			t.Fatalf("empty product lost N: %d", p.N)
		}
	}
	// G and H each have 2-tuple classes, but G∧H identifies every row: the
	// product's classes are all singletons and must be stripped away.
	hp := SingleColumnPartition(rel, 2).Strip()
	p := buf.Product(grp, hp)
	if p.NumClasses() != 0 || !p.IsKeyOver() {
		t.Fatalf("all-singleton product should strip to empty, got %v", p.ClassesAsInts())
	}
	// Buffer state must be clean afterwards: an unrelated product still
	// matches a fresh computation.
	want := Product(grp, grp)
	samePartition(t, buf.Product(grp, grp), want, "buffer reuse after empty products")
}

// TestRefineByLUTMatchesProduct cross-checks the lookup-vector refinement
// against the general product: for any Π*_X and single column c,
// RefineByLUT(Π*_X, lut_c) must be byte-identical to Π*_X · Π*_c in
// canonical form — including key columns (empty lut) and relations whose
// canonical reorder path fires. One buffer serves every trial.
func TestRefineByLUTMatchesProduct(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	var buf ProductBuffer
	for trial := 0; trial < 80; trial++ {
		rows := 1 + rng.Intn(300)
		cols := 2 + rng.Intn(4)
		// Occasionally a near-key domain so the single strips to (almost)
		// nothing and the lut is mostly −1.
		domain := 1 + rng.Intn(8)
		if trial%7 == 0 {
			domain = rows + 1
		}
		rel := randRelation(t, rng, rows, cols, domain)
		x := Single(rng.Intn(cols))
		if cols > 2 && rng.Intn(2) == 0 {
			x = x.With(rng.Intn(cols))
		}
		c := rng.Intn(cols)
		p := PartitionOf(rel, x).Strip()
		single := SingleColumnPartition(rel, c).Strip()
		lut := make([]int32, rows)
		for i := range lut {
			lut[i] = -1
		}
		for ci := 0; ci < single.NumClasses(); ci++ {
			for _, tt := range single.Class(ci) {
				lut[tt] = int32(ci)
			}
		}
		want := PartitionOf(rel, x.With(c)).Strip()
		got := buf.RefineByLUT(p, lut, single.NumClasses())
		samePartition(t, got, want, fmt.Sprintf("trial %d (%v refined by %d, %d rows)", trial, x, c, rows))
		// Buffer state stays clean for a subsequent general product.
		samePartition(t, buf.Product(p, single), want, fmt.Sprintf("trial %d product after refine", trial))
	}
}

// TestCacheLUTInvalidation pins the lookup-vector staleness contract: an
// in-place update to a column must drop its lut (via InvalidateTouched)
// so derivation chains never group by pre-update values, and an append
// must rebuild luts through the row-count stamp.
func TestCacheLUTInvalidation(t *testing.T) {
	rel, err := FromRows(MustSchema("A", "B", "C"), [][]string{
		{"a0", "b0", "c0"},
		{"a0", "b0", "c1"},
		{"a1", "b1", "c0"},
		{"a1", "b1", "c1"},
	})
	if err != nil {
		t.Fatal(err)
	}
	pc := NewPartitionCache(rel)
	check := func(attrs AttrSet, msg string) {
		t.Helper()
		got := pc.Get(attrs)
		want := PartitionOf(rel, attrs).Strip()
		if !reflect.DeepEqual(got.ClassesAsInts(), want.ClassesAsInts()) {
			t.Fatalf("%s: Get(%v) = %v, want %v", msg, attrs, got.ClassesAsInts(), want.ClassesAsInts())
		}
	}
	abc := Single(0).With(1).With(2)
	check(abc, "cold chain")
	// Rewrite B for row 1 and invalidate: the chain must regroup by the
	// new value, which only happens if B's lut was dropped too.
	rel.SetString(1, 1, "b1")
	pc.InvalidateTouched(Single(1))
	check(abc, "after in-place update")
	check(Single(1).With(2), "fresh pair after update")
	// Appends shift every partition; the row stamp retires old luts.
	rel.AppendRow([]string{"a0", "b0", "c0"})
	pc.InvalidateStale()
	check(abc, "after append")
}

// TestProductCanonicalOrder forces the non-sorted discovery order so the
// bucket-permutation reorder path is exercised: class representatives from
// a later b-class can precede those of an earlier one.
func TestProductCanonicalOrder(t *testing.T) {
	// Column B visits class reps out of ascending order relative to A.
	rel, err := FromRows(MustSchema("A", "B"), [][]string{
		{"a0", "b1"}, // row 0
		{"a0", "b1"},
		{"a1", "b0"},
		{"a1", "b0"},
		{"a0", "b0"},
		{"a0", "b0"},
		{"a1", "b1"},
		{"a1", "b1"},
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf ProductBuffer
	got := buf.Product(SingleColumnPartition(rel, 0).Strip(), SingleColumnPartition(rel, 1).Strip())
	want := PartitionOf(rel, Single(0).With(1)).Strip()
	samePartition(t, got, want, "reordered product")
	// Canonical form: class reps strictly ascending, tuples ascending.
	prev := int32(-1)
	for ci := 0; ci < got.NumClasses(); ci++ {
		class := got.Class(ci)
		if class[0] <= prev {
			t.Fatalf("class reps not ascending: %v", got.ClassesAsInts())
		}
		prev = class[0]
		for j := 1; j < len(class); j++ {
			if class[j] <= class[j-1] {
				t.Fatalf("class %d not ascending: %v", ci, class)
			}
		}
	}
}

// TestPartitionCacheConcurrent hammers one cache from many goroutines with
// mixed Get/Put/Evict/Stats traffic. Run under -race this is the regression
// test for the formerly unguarded cache map; the correctness half checks
// every Get against a direct computation.
func TestPartitionCacheConcurrent(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	rel := randRelation(t, rng, 200, 5, 3)
	pc := NewPartitionCacheParallel(rel, 4)
	sets := make([]AttrSet, 0, 24)
	for a := 0; a < 5; a++ {
		for b := a; b < 5; b++ {
			sets = append(sets, Single(a).With(b))
		}
	}
	sets = append(sets, EmptySet, Single(0).With(1).With(2), Single(2).With(3).With(4))

	const goroutines = 8
	var wg sync.WaitGroup
	errs := make(chan string, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			r := rand.New(rand.NewSource(seed))
			for i := 0; i < 150; i++ {
				s := sets[r.Intn(len(sets))]
				switch r.Intn(10) {
				case 0:
					pc.Put(s, PartitionOf(rel, s))
				case 1:
					pc.Evict(2 + r.Intn(2))
				case 2:
					pc.Stats()
				default:
					got := pc.Get(s)
					want := PartitionOf(rel, s).Strip()
					if !reflect.DeepEqual(got.ClassesAsInts(), want.ClassesAsInts()) {
						select {
						case errs <- fmt.Sprintf("Get(%v) wrong under concurrency", s):
						default:
						}
						return
					}
				}
			}
		}(int64(g) + 100)
	}
	wg.Wait()
	close(errs)
	if msg, bad := <-errs; bad {
		t.Fatal(msg)
	}
	st := pc.Stats()
	if st.Hits == 0 || st.Misses == 0 {
		t.Fatalf("stats should record both hits and misses: %+v", st)
	}
	if st.Entries == 0 || st.Bytes < 0 {
		t.Fatalf("implausible footprint: %+v", st)
	}
}

// TestPartitionCacheEvictLevels checks the two-level eviction contract:
// Evict(k) removes exactly the size-k sets, leaves other levels intact, and
// keeps the byte counter consistent (0 once everything is gone).
func TestPartitionCacheEvictLevels(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	rel := randRelation(t, rng, 120, 4, 3)
	pc := NewPartitionCache(rel)
	pairs := []AttrSet{Single(0).With(1), Single(1).With(2), Single(2).With(3)}
	triples := []AttrSet{Single(0).With(1).With(2), Single(1).With(2).With(3)}
	for _, s := range append(append([]AttrSet{}, pairs...), triples...) {
		pc.Get(s)
	}
	before := pc.Stats()
	pc.Evict(2)
	mid := pc.Stats()
	if got, want := before.Entries-mid.Entries, len(pairs); got != want {
		t.Fatalf("Evict(2) removed %d entries, want %d", got, want)
	}
	for _, s := range triples {
		if _, ok := pc.lookup(s); !ok {
			t.Fatalf("Evict(2) must not touch level 3 (%v)", s)
		}
	}
	for c := 0; c < rel.NumCols(); c++ {
		if _, ok := pc.lookup(Single(c)); !ok {
			t.Fatalf("Evict(2) must not touch singles (%d)", c)
		}
	}
	// Evicting a level twice, or an absent level, is a no-op.
	pc.Evict(2)
	pc.Evict(7)
	if got := pc.Stats(); got.Entries != mid.Entries {
		t.Fatalf("repeat eviction changed entries: %d vs %d", got.Entries, mid.Entries)
	}
	pc.Evict(3)
	pc.Evict(1)
	pc.Evict(0)
	if got := pc.Stats(); got.Entries != 0 || got.Bytes != 0 {
		t.Fatalf("full eviction should zero the footprint: %+v", got)
	}
}
