// Package relation implements the relational substrate used by OFD
// discovery and repair: a column-oriented, dictionary-encoded relation,
// attribute sets represented as bitsets, and equivalence-class partitions
// (plain and stripped) with the linear-time partition product used by
// lattice-based dependency discovery.
package relation

import (
	"fmt"
	"math/bits"
	"sort"
	"strings"
)

// MaxAttrs is the maximum number of attributes a Schema may hold. Attribute
// sets are packed into a single 64-bit word, which comfortably covers the
// datasets used in dependency discovery (the paper's datasets have 15
// attributes).
const MaxAttrs = 64

// Schema names the attributes of a relation and assigns each a stable
// position used by AttrSet bitsets.
type Schema struct {
	names []string
	index map[string]int
}

// NewSchema creates a schema from attribute names. Names must be unique,
// non-empty, and at most MaxAttrs many.
func NewSchema(names ...string) (*Schema, error) {
	if len(names) == 0 {
		return nil, fmt.Errorf("relation: schema needs at least one attribute")
	}
	if len(names) > MaxAttrs {
		return nil, fmt.Errorf("relation: schema has %d attributes, max is %d", len(names), MaxAttrs)
	}
	s := &Schema{names: append([]string(nil), names...), index: make(map[string]int, len(names))}
	for i, n := range names {
		if n == "" {
			return nil, fmt.Errorf("relation: attribute %d has empty name", i)
		}
		if _, dup := s.index[n]; dup {
			return nil, fmt.Errorf("relation: duplicate attribute name %q", n)
		}
		s.index[n] = i
	}
	return s, nil
}

// MustSchema is NewSchema that panics on error; intended for tests and
// static literals.
func MustSchema(names ...string) *Schema {
	s, err := NewSchema(names...)
	if err != nil {
		panic(err)
	}
	return s
}

// Len returns the number of attributes.
func (s *Schema) Len() int { return len(s.names) }

// Name returns the name of attribute i.
func (s *Schema) Name(i int) string { return s.names[i] }

// Names returns a copy of all attribute names in positional order.
func (s *Schema) Names() []string { return append([]string(nil), s.names...) }

// Index returns the position of the named attribute and whether it exists.
func (s *Schema) Index(name string) (int, bool) {
	i, ok := s.index[name]
	return i, ok
}

// MustIndex returns the position of the named attribute, panicking if absent.
func (s *Schema) MustIndex(name string) int {
	i, ok := s.index[name]
	if !ok {
		panic(fmt.Sprintf("relation: unknown attribute %q", name))
	}
	return i
}

// Set builds an AttrSet from attribute names; unknown names cause an error.
func (s *Schema) Set(names ...string) (AttrSet, error) {
	var a AttrSet
	for _, n := range names {
		i, ok := s.index[n]
		if !ok {
			return 0, fmt.Errorf("relation: unknown attribute %q", n)
		}
		a = a.With(i)
	}
	return a, nil
}

// MustSet is Set that panics on unknown names.
func (s *Schema) MustSet(names ...string) AttrSet {
	a, err := s.Set(names...)
	if err != nil {
		panic(err)
	}
	return a
}

// All returns the set containing every attribute of the schema.
func (s *Schema) All() AttrSet {
	if len(s.names) == MaxAttrs {
		return AttrSet(^uint64(0))
	}
	return AttrSet(uint64(1)<<uint(len(s.names)) - 1)
}

// AttrSet is a set of attribute positions packed into a 64-bit word.
// The zero value is the empty set.
type AttrSet uint64

// EmptySet is the AttrSet containing no attributes.
const EmptySet AttrSet = 0

// Single returns the set containing only attribute i.
func Single(i int) AttrSet { return AttrSet(1) << uint(i) }

// With returns a with attribute i added.
func (a AttrSet) With(i int) AttrSet { return a | Single(i) }

// Without returns a with attribute i removed.
func (a AttrSet) Without(i int) AttrSet { return a &^ Single(i) }

// Has reports whether attribute i is in the set.
func (a AttrSet) Has(i int) bool { return a&Single(i) != 0 }

// Union returns the set union.
func (a AttrSet) Union(b AttrSet) AttrSet { return a | b }

// Intersect returns the set intersection.
func (a AttrSet) Intersect(b AttrSet) AttrSet { return a & b }

// Minus returns the set difference a \ b.
func (a AttrSet) Minus(b AttrSet) AttrSet { return a &^ b }

// SubsetOf reports whether a ⊆ b.
func (a AttrSet) SubsetOf(b AttrSet) bool { return a&^b == 0 }

// ProperSubsetOf reports whether a ⊂ b.
func (a AttrSet) ProperSubsetOf(b AttrSet) bool { return a != b && a.SubsetOf(b) }

// IsEmpty reports whether the set has no attributes.
func (a AttrSet) IsEmpty() bool { return a == 0 }

// Len returns the number of attributes in the set.
func (a AttrSet) Len() int { return bits.OnesCount64(uint64(a)) }

// Attrs returns the attribute positions in ascending order.
func (a AttrSet) Attrs() []int {
	out := make([]int, 0, a.Len())
	for v := uint64(a); v != 0; v &= v - 1 {
		out = append(out, bits.TrailingZeros64(v))
	}
	return out
}

// First returns the lowest attribute position in the set, or -1 if empty.
func (a AttrSet) First() int {
	if a == 0 {
		return -1
	}
	return bits.TrailingZeros64(uint64(a))
}

// Last returns the highest attribute position in the set, or -1 if empty.
func (a AttrSet) Last() int {
	if a == 0 {
		return -1
	}
	return 63 - bits.LeadingZeros64(uint64(a))
}

// Format renders the set using schema names, e.g. "[CC, CTRY]".
func (a AttrSet) Format(s *Schema) string {
	names := make([]string, 0, a.Len())
	for _, i := range a.Attrs() {
		names = append(names, s.Name(i))
	}
	return "[" + strings.Join(names, ", ") + "]"
}

// String renders attribute positions, e.g. "{0,2,5}".
func (a AttrSet) String() string {
	parts := make([]string, 0, a.Len())
	for _, i := range a.Attrs() {
		parts = append(parts, fmt.Sprint(i))
	}
	return "{" + strings.Join(parts, ",") + "}"
}

// SortSets orders attribute sets by cardinality, then numerically; a
// canonical order used for deterministic lattice traversal and test output.
func SortSets(sets []AttrSet) {
	sort.Slice(sets, func(i, j int) bool {
		if li, lj := sets[i].Len(), sets[j].Len(); li != lj {
			return li < lj
		}
		return sets[i] < sets[j]
	})
}
