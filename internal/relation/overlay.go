package relation

// PartitionOverlay extends a base flat Partition with growable per-class
// delta lists, so appended tuples join their equivalence classes without
// copying (or invalidating) the base partition's flat arrays. It is the
// representation behind incremental detection: the base partition stays
// exactly the PartitionCache's memory, while appends accumulate in small
// per-class overlays and brand-new classes (born after the base was built)
// live entirely in the overlay.
//
// Class ids are stable: ids below BaseClasses() refer to base classes, ids
// at or above it to overlay-born classes, in creation order. Within a
// class, tuple ids stay ascending as long as callers add tuples in
// ascending order (appends always do — new rows get the largest id yet).
//
// An overlay is not safe for concurrent mutation; concurrent readers are
// fine between mutations.
type PartitionOverlay struct {
	base  *Partition
	nBase int
	// deltas[ci] holds the tuples added to class ci after the base was
	// built; for ci >= nBase the slice is the whole class.
	deltas [][]int32
	// baseMap, when non-nil, maps local class ids to base class ids: the
	// overlay covers only the listed subset of base classes (the sharded
	// monitor's per-shard view of one PartitionCache base). nil means the
	// identity mapping over every base class.
	baseMap []int32
	// added counts the tuples added across all classes (monitoring).
	added int
}

// NewPartitionOverlay wraps base (which must not be mutated afterwards;
// overlays assume the flat arrays are frozen).
func NewPartitionOverlay(base *Partition) *PartitionOverlay {
	return &PartitionOverlay{
		base:   base,
		nBase:  base.NumClasses(),
		deltas: make([][]int32, base.NumClasses()),
	}
}

// NewPartitionOverlayShard wraps base restricted to the given base class
// ids: local class id k < len(baseClasses) denotes base class
// baseClasses[k]; ids at or above it denote overlay-born classes. The
// slice is retained (not copied) and must not be mutated afterwards. This
// is the per-shard view of a shared PartitionCache base: S shard overlays
// partition the base's classes without copying any of its flat arrays.
func NewPartitionOverlayShard(base *Partition, baseClasses []int32) *PartitionOverlay {
	return &PartitionOverlay{
		base:    base,
		nBase:   len(baseClasses),
		deltas:  make([][]int32, len(baseClasses)),
		baseMap: baseClasses,
	}
}

// baseClass returns the base tuple view behind local class ci (< nBase).
func (o *PartitionOverlay) baseClass(ci int) []int32 {
	if o.baseMap != nil {
		return o.base.Class(int(o.baseMap[ci]))
	}
	return o.base.Class(ci)
}

// Base returns the frozen base partition.
func (o *PartitionOverlay) Base() *Partition { return o.base }

// NumClasses returns the total number of classes, base plus overlay-born.
func (o *PartitionOverlay) NumClasses() int { return len(o.deltas) }

// BaseClasses returns the number of classes in the frozen base; class ids
// below this index their delta against the base's flat arrays.
func (o *PartitionOverlay) BaseClasses() int { return o.nBase }

// Added returns the number of tuples added since the base was built.
func (o *PartitionOverlay) Added() int { return o.added }

// Add appends tuple t to class ci. Callers must add tuples in ascending id
// order per class to keep the class canonically sorted.
func (o *PartitionOverlay) Add(ci int, t int32) {
	o.deltas[ci] = append(o.deltas[ci], t)
	o.added++
}

// AddClass creates a new overlay-born class holding the given tuples
// (which must be in ascending order) and returns its class id.
func (o *PartitionOverlay) AddClass(tuples ...int32) int {
	ci := len(o.deltas)
	o.deltas = append(o.deltas, append([]int32(nil), tuples...))
	o.added += len(tuples)
	return ci
}

// Len returns the number of tuples in class ci.
func (o *PartitionOverlay) Len(ci int) int {
	if ci < o.nBase {
		return len(o.baseClass(ci)) + len(o.deltas[ci])
	}
	return len(o.deltas[ci])
}

// View returns class ci's tuple ids in ascending order. Classes without
// overlay tuples (and overlay-born classes) are returned as zero-copy
// views; classes with both base and delta tuples are materialized into
// *scratch, which is grown as needed and reused across calls. The result
// is valid only until scratch is reused or the overlay is mutated.
func (o *PartitionOverlay) View(ci int, scratch *[]int32) []int32 {
	if ci >= o.nBase {
		return o.deltas[ci]
	}
	b := o.baseClass(ci)
	d := o.deltas[ci]
	if len(d) == 0 {
		return b
	}
	s := (*scratch)[:0]
	s = append(s, b...)
	s = append(s, d...)
	*scratch = s
	return s
}

// StableView returns class ci's tuple ids in ascending order as a slice
// that stays valid and immutable across later Add/AddClass calls on this
// overlay (unlike View, whose result may alias reusable scratch or a
// delta slice that a later Add extends in place). Pure-base classes alias
// the frozen base arrays; classes touched by the overlay are copied. The
// sharded monitor stages these in epoch snapshots read concurrently with
// subsequent mutations.
func (o *PartitionOverlay) StableView(ci int) []int32 {
	if ci >= o.nBase {
		return append([]int32(nil), o.deltas[ci]...)
	}
	b := o.baseClass(ci)
	d := o.deltas[ci]
	if len(d) == 0 {
		return b
	}
	s := make([]int32, 0, len(b)+len(d))
	s = append(s, b...)
	return append(s, d...)
}
