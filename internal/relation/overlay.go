package relation

import "sort"

// PartitionOverlay extends a base flat Partition with growable per-class
// delta lists, so appended tuples join their equivalence classes without
// copying (or invalidating) the base partition's flat arrays. It is the
// representation behind incremental detection: the base partition stays
// exactly the PartitionCache's memory, while appends accumulate in small
// per-class overlays and brand-new classes (born after the base was built)
// live entirely in the overlay.
//
// Class ids are stable: ids below BaseClasses() refer to base classes, ids
// at or above it to overlay-born classes, in creation order. Within a
// class, tuple ids stay ascending as long as callers add tuples in
// ascending order (appends always do — new rows get the largest id yet).
//
// An overlay is not safe for concurrent mutation; concurrent readers are
// fine between mutations.
type PartitionOverlay struct {
	base  *Partition
	nBase int
	// deltas[ci] holds the tuples added to class ci after the base was
	// built; for ci >= nBase the slice is the whole class.
	deltas [][]int32
	// baseMap, when non-nil, maps local class ids to base class ids: the
	// overlay covers only the listed subset of base classes (the sharded
	// monitor's per-shard view of one PartitionCache base). nil means the
	// identity mapping over every base class.
	baseMap []int32
	// added counts the tuples added across all classes (monitoring).
	added int
}

// NewPartitionOverlay wraps base (which must not be mutated afterwards;
// overlays assume the flat arrays are frozen).
func NewPartitionOverlay(base *Partition) *PartitionOverlay {
	return &PartitionOverlay{
		base:   base,
		nBase:  base.NumClasses(),
		deltas: make([][]int32, base.NumClasses()),
	}
}

// NewPartitionOverlayShard wraps base restricted to the given base class
// ids: local class id k < len(baseClasses) denotes base class
// baseClasses[k]; ids at or above it denote overlay-born classes. The
// slice is retained (not copied) and must not be mutated afterwards. This
// is the per-shard view of a shared PartitionCache base: S shard overlays
// partition the base's classes without copying any of its flat arrays.
func NewPartitionOverlayShard(base *Partition, baseClasses []int32) *PartitionOverlay {
	return &PartitionOverlay{
		base:    base,
		nBase:   len(baseClasses),
		deltas:  make([][]int32, len(baseClasses)),
		baseMap: baseClasses,
	}
}

// baseClass returns the base tuple view behind local class ci (< nBase).
func (o *PartitionOverlay) baseClass(ci int) []int32 {
	if o.baseMap != nil {
		return o.base.Class(int(o.baseMap[ci]))
	}
	return o.base.Class(ci)
}

// Base returns the frozen base partition.
func (o *PartitionOverlay) Base() *Partition { return o.base }

// NumClasses returns the total number of classes, base plus overlay-born.
func (o *PartitionOverlay) NumClasses() int { return len(o.deltas) }

// BaseClasses returns the number of classes in the frozen base; class ids
// below this index their delta against the base's flat arrays.
func (o *PartitionOverlay) BaseClasses() int { return o.nBase }

// Added returns the number of tuples added since the base was built.
func (o *PartitionOverlay) Added() int { return o.added }

// Add appends tuple t to class ci. Callers must add tuples in ascending id
// order per class to keep the class canonically sorted.
func (o *PartitionOverlay) Add(ci int, t int32) {
	o.deltas[ci] = append(o.deltas[ci], t)
	o.added++
}

// AddClass creates a new overlay-born class holding the given tuples
// (which must be in ascending order) and returns its class id.
func (o *PartitionOverlay) AddClass(tuples ...int32) int {
	ci := len(o.deltas)
	o.deltas = append(o.deltas, append([]int32(nil), tuples...))
	o.added += len(tuples)
	return ci
}

// Len returns the number of tuples in class ci.
func (o *PartitionOverlay) Len(ci int) int {
	if ci < o.nBase {
		return len(o.baseClass(ci)) + len(o.deltas[ci])
	}
	return len(o.deltas[ci])
}

// View returns class ci's tuple ids in ascending order. Classes without
// overlay tuples (and overlay-born classes) are returned as zero-copy
// views; classes with both base and delta tuples are materialized into
// *scratch, which is grown as needed and reused across calls. The result
// is valid only until scratch is reused or the overlay is mutated.
func (o *PartitionOverlay) View(ci int, scratch *[]int32) []int32 {
	if ci >= o.nBase {
		return o.deltas[ci]
	}
	b := o.baseClass(ci)
	d := o.deltas[ci]
	if len(d) == 0 {
		return b
	}
	s := (*scratch)[:0]
	s = append(s, b...)
	s = append(s, d...)
	*scratch = s
	return s
}

// Bytes returns the overlay's resident delta payload: the per-class
// delta tuples plus the shard base-class mapping, 4 bytes each. The base
// partition is the PartitionCache's memory and is accounted there; this
// is what the overlay itself pins, which CacheStats reports as
// OverlayBytes and budget enforcement charges against the byte budget.
func (o *PartitionOverlay) Bytes() int64 {
	return int64(4 * (o.added + len(o.baseMap)))
}

// first returns the smallest tuple id of class ci (classes hold tuples in
// ascending order, so it is the first element).
func (o *PartitionOverlay) first(ci int) int32 {
	if ci < o.nBase {
		return o.baseClass(ci)[0]
	}
	return o.deltas[ci][0]
}

// Materialize flattens the overlay into a stripped Partition over a
// relation of n rows, in the canonical form partition computation
// produces: classes ordered by their smallest tuple id, tuples ascending
// within each class, singletons absent (overlay-born classes hold at
// least two tuples and stripped base classes at least two, so no class
// here is a singleton). As long as the overlay was built from the
// canonical base partition of its attribute set and has absorbed exactly
// the relation's appended rows, the result is byte-identical to computing
// the partition from scratch — the property that lets a PartitionCache
// serve a registered live overlay in place of a partition product.
func (o *PartitionOverlay) Materialize(n int) *Partition {
	total := o.NumClasses()
	if total == 0 {
		// Canonical empty stripped form: nil slices, exactly like Strip.
		return &Partition{N: n, Stripped: true}
	}
	order := make([]int32, total)
	for i := range order {
		order[i] = int32(i)
	}
	// Base classes are already ascending by representative; overlay-born
	// classes (whose representatives are formerly lone rows) interleave
	// anywhere, so sort the whole order.
	sort.Slice(order, func(a, b int) bool { return o.first(int(order[a])) < o.first(int(order[b])) })
	size := 0
	for ci := 0; ci < total; ci++ {
		size += o.Len(ci)
	}
	tuples := make([]int32, 0, size)
	offsets := make([]int32, 0, total+1)
	offsets = append(offsets, 0)
	var scratch []int32
	for _, ci := range order {
		tuples = append(tuples, o.View(int(ci), &scratch)...)
		offsets = append(offsets, int32(len(tuples)))
	}
	return &Partition{Tuples: tuples, Offsets: offsets, N: n, Stripped: true}
}

// StableView returns class ci's tuple ids in ascending order as a slice
// that stays valid and immutable across later Add/AddClass calls on this
// overlay (unlike View, whose result may alias reusable scratch or a
// delta slice that a later Add extends in place). Pure-base classes alias
// the frozen base arrays; classes touched by the overlay are copied. The
// sharded monitor stages these in epoch snapshots read concurrently with
// subsequent mutations.
func (o *PartitionOverlay) StableView(ci int) []int32 {
	if ci >= o.nBase {
		return append([]int32(nil), o.deltas[ci]...)
	}
	b := o.baseClass(ci)
	d := o.deltas[ci]
	if len(d) == 0 {
		return b
	}
	s := make([]int32, 0, len(b)+len(d))
	s = append(s, b...)
	return append(s, d...)
}
