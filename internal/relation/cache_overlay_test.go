package relation

import (
	"math/rand"
	"reflect"
	"testing"
)

// stubProvider is a test OverlayProvider: a fixed overlay per attribute
// set plus a fixed resident-bytes figure, recording LiveOverlay calls
// and the partitions the cache offers back on store.
type stubProvider struct {
	overlays map[AttrSet]*PartitionOverlay
	bytes    int64
	calls    map[AttrSet]int
	offered  map[AttrSet]*Partition
}

func (s *stubProvider) LiveOverlay(attrs AttrSet) *PartitionOverlay {
	if s.calls == nil {
		s.calls = map[AttrSet]int{}
	}
	s.calls[attrs]++
	return s.overlays[attrs]
}

func (s *stubProvider) OverlayBytes() int64 { return s.bytes }

func (s *stubProvider) Offer(attrs AttrSet, p *Partition) {
	if s.offered == nil {
		s.offered = map[AttrSet]*Partition{}
	}
	s.offered[attrs] = p
}

// TestCacheServesProviderOverlay pins the miss path through an installed
// overlay provider: a registered set's miss materializes the live overlay
// (byte-identical to a fresh computation) instead of running the partition
// product, and the materialized partition is cached for later hits.
func TestCacheServesProviderOverlay(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	rel := randRelation(t, rng, 200, 4, 3)
	pc := NewPartitionCache(rel)
	attrs := Single(0).With(1)
	fresh := PartitionOf(rel, attrs).Strip()
	prov := &stubProvider{overlays: map[AttrSet]*PartitionOverlay{
		attrs: NewPartitionOverlay(fresh),
	}}
	pc.SetOverlayProvider(prov)

	got := pc.Get(attrs) // miss: single columns are pre-warmed, pairs are not
	if prov.calls[attrs] != 1 {
		t.Fatalf("provider consulted %d times, want 1", prov.calls[attrs])
	}
	if !reflect.DeepEqual(got.Tuples, fresh.Tuples) || !reflect.DeepEqual(got.Offsets, fresh.Offsets) {
		t.Fatalf("provider-served partition differs from fresh\n got: %v %v\nwant: %v %v",
			got.Tuples, got.Offsets, fresh.Tuples, fresh.Offsets)
	}
	// The materialized partition was stored: the next Get is a hit and the
	// provider is not consulted again.
	before := pc.Stats()
	pc.Get(attrs)
	after := pc.Stats()
	if after.Hits != before.Hits+1 || prov.calls[attrs] != 1 {
		t.Fatalf("second Get: hits %d->%d, provider calls %d", before.Hits, after.Hits, prov.calls[attrs])
	}
	// An unregistered set falls through to the product path.
	other := Single(2).With(3)
	want := PartitionOf(rel, other).Strip()
	if got := pc.Get(other); !reflect.DeepEqual(got.Tuples, want.Tuples) {
		t.Fatalf("unregistered set mis-served")
	}
	if prov.calls[other] != 1 {
		t.Fatalf("provider must still be consulted (and decline) for unregistered sets: %d", prov.calls[other])
	}
}

// TestCacheInvalidateTouchedCount pins InvalidateTouched's return value:
// exactly the number of resident entries intersecting the touched set.
func TestCacheInvalidateTouchedCount(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	rel := randRelation(t, rng, 100, 4, 3)
	pc := NewPartitionCache(rel) // pre-warms 4 single columns
	pc.Get(Single(0).With(1))
	pc.Get(Single(2).With(3))
	pc.Get(Single(0).With(2).With(3))
	if n := pc.InvalidateTouched(EmptySet); n != 0 {
		t.Fatalf("empty touched dropped %d", n)
	}
	// Touching column 3 intersects {3}, {2,3}, {0,2,3}.
	if n := pc.InvalidateTouched(Single(3)); n != 3 {
		t.Fatalf("touched {3} dropped %d, want 3", n)
	}
	// Already dropped: a second invalidation finds nothing.
	if n := pc.InvalidateTouched(Single(3)); n != 0 {
		t.Fatalf("repeat invalidation dropped %d, want 0", n)
	}
	// The untouched entries survived.
	st := pc.Stats()
	if st.Entries != 4 { // {0}, {1}, {2}, {0,1}
		t.Fatalf("entries after invalidation = %d, want 4", st.Entries)
	}
}

// TestCacheStatsOverlayBytes pins the OverlayBytes surfaces: Stats reports
// the provider's resident figure, and budget enforcement charges it
// against the byte budget, leaving the cache only the remainder.
func TestCacheStatsOverlayBytes(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	rel := randRelation(t, rng, 300, 5, 3)
	pc := NewPartitionCache(rel)
	if st := pc.Stats(); st.OverlayBytes != 0 {
		t.Fatalf("no provider: OverlayBytes = %d", st.OverlayBytes)
	}
	prov := &stubProvider{bytes: 4096}
	pc.SetOverlayProvider(prov)
	if st := pc.Stats(); st.OverlayBytes != 4096 {
		t.Fatalf("OverlayBytes = %d, want 4096", st.OverlayBytes)
	}

	// Fill the cache beyond what (budget - overlay bytes) allows, then arm
	// the budget: enforcement must shed entries until cache payload fits in
	// the remainder the overlays leave.
	for a := 0; a < 5; a++ {
		for b := a + 1; b < 5; b++ {
			pc.Get(Single(a).With(b))
		}
	}
	st := pc.Stats()
	if st.Bytes <= 2048 {
		t.Skipf("instance too small to exercise the budget: %d bytes", st.Bytes)
	}
	budget := st.Bytes // generous without overlays...
	pc.SetBudget(budget)
	st = pc.Stats()
	if st.Bytes > budget-prov.bytes {
		t.Fatalf("cache keeps %d bytes, budget %d minus overlay %d leaves %d",
			st.Bytes, budget, prov.bytes, budget-prov.bytes)
	}
	if st.Budget != budget {
		t.Fatalf("Stats budget = %d, want %d", st.Budget, budget)
	}
}

// TestCacheOffersComputedPartitions pins the adoption direction of the
// provider contract: every partition the cache computes and stores on a
// miss is offered back to the provider (the registry adopts it as a
// pending overlay base), and the offered pointer is exactly the stored
// partition. Overlay-served misses are offered too — the provider
// ignores offers for sets it already serves fresh.
func TestCacheOffersComputedPartitions(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	rel := randRelation(t, rng, 150, 3, 4)
	pc := NewPartitionCache(rel)
	prov := &stubProvider{}
	pc.SetOverlayProvider(prov)

	attrs := Single(0).With(2)
	got := pc.Get(attrs) // miss: computed by product, stored, offered
	if prov.offered[attrs] != got {
		t.Fatalf("computed partition not offered back (offered %v)", prov.offered[attrs])
	}
	// A hit must not re-offer: drop the record and Get again.
	delete(prov.offered, attrs)
	pc.Get(attrs)
	if _, ok := prov.offered[attrs]; ok {
		t.Fatal("cache hit must not offer")
	}
}
