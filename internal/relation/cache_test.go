package relation

import (
	"math/rand"
	"sync"
	"testing"
)

// evictAll drops every cached entry level by level; a cache with exact
// byte accounting must land at zero bytes and zero entries afterwards —
// any drift from a Put-replace or concurrent eviction shows up as residue.
func evictAll(t *testing.T, pc *PartitionCache, cols int) {
	t.Helper()
	for k := 0; k <= cols; k++ {
		pc.Evict(k)
	}
	st := pc.Stats()
	if st.Entries != 0 || st.Bytes != 0 {
		t.Fatalf("byte accounting drifted: %d entries / %d bytes after full eviction", st.Entries, st.Bytes)
	}
}

func TestCacheBytesExactPutReplace(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	rel := randRelation(t, rng, 400, 4, 5)
	pc := NewPartitionCache(rel)
	base := pc.Stats()

	attrs := Single(0).With(1)
	p1 := PartitionOf(rel, attrs).Strip()
	pc.Put(attrs, p1)
	st := pc.Stats()
	if got, want := st.Bytes-base.Bytes, partitionBytes(p1); got != want {
		t.Fatalf("Put added %d bytes, partition is %d", got, want)
	}
	if st.Entries != base.Entries+1 {
		t.Fatalf("Put added %d entries, want 1", st.Entries-base.Entries)
	}

	// Replacing the same key must subtract the old payload first.
	p2 := PartitionOf(rel, attrs.With(2)).Strip()
	pc.Put(attrs, p2)
	st = pc.Stats()
	if got, want := st.Bytes-base.Bytes, partitionBytes(p2); got != want {
		t.Fatalf("Put-replace left %d extra bytes, want exactly %d", got, want)
	}
	if st.Entries != base.Entries+1 {
		t.Fatalf("Put-replace changed entry count: %d vs %d", st.Entries, base.Entries+1)
	}

	// Evicting the level must return the counter to the baseline and count
	// the eviction.
	pc.Evict(2)
	st = pc.Stats()
	if st.Bytes != base.Bytes || st.Entries != base.Entries {
		t.Fatalf("Evict left %d bytes / %d entries, want baseline %d / %d",
			st.Bytes, st.Entries, base.Bytes, base.Entries)
	}
	if st.Evictions != base.Evictions+1 {
		t.Fatalf("Evictions counter %d, want %d", st.Evictions, base.Evictions+1)
	}
	evictAll(t, pc, rel.NumCols())
}

// TestCacheBytesExactConcurrent hammers Get/Put/Evict from many goroutines
// and then checks the byte counter against the ground truth (full eviction
// must reach exactly zero). Run under -race this also covers the locking.
func TestCacheBytesExactConcurrent(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	rel := randRelation(t, rng, 300, 5, 4)
	pc := NewPartitionCache(rel)
	cols := rel.NumCols()

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			var buf ProductBuffer
			for i := 0; i < 300; i++ {
				attrs := Single(rng.Intn(cols))
				for k := rng.Intn(3); k > 0; k-- {
					attrs = attrs.With(rng.Intn(cols))
				}
				switch rng.Intn(10) {
				case 0:
					pc.Evict(1 + rng.Intn(cols))
				case 1:
					pc.Put(attrs, PartitionOf(rel, attrs))
				default:
					pc.GetWith(attrs, &buf)
				}
			}
		}(int64(g))
	}
	wg.Wait()
	evictAll(t, pc, cols)
}

// maxEntryBytes returns the largest single partition payload the trace's
// sets can produce — the one-in-flight overshoot the budget contract
// allows.
func maxEntryBytes(rel *Relation, sets []AttrSet) int64 {
	var max int64
	for _, attrs := range sets {
		if b := partitionBytes(PartitionOf(rel, attrs).Strip()); b > max {
			max = b
		}
	}
	return max
}

func TestCacheBudgetEnforced(t *testing.T) {
	for _, pol := range []EvictionPolicy{EvictCostModel, EvictLevelSweep} {
		rng := rand.New(rand.NewSource(3))
		rel := randRelation(t, rng, 500, 5, 3)
		cols := rel.NumCols()
		var sets []AttrSet
		for i := 0; i < 40; i++ {
			attrs := Single(rng.Intn(cols))
			for k := rng.Intn(3); k > 0; k-- {
				attrs = attrs.With(rng.Intn(cols))
			}
			sets = append(sets, attrs)
		}
		maxEntry := maxEntryBytes(rel, sets)

		pc := NewPartitionCache(rel)
		pc.SetPolicy(pol)
		budget := 3 * maxEntry / 2
		pc.SetBudget(budget)
		if pc.Budget() != budget || pc.Policy() != pol {
			t.Fatalf("config not retained: budget %d policy %d", pc.Budget(), pc.Policy())
		}
		var buf ProductBuffer
		for i, attrs := range sets {
			pc.GetWith(attrs, &buf)
			if b := pc.Stats().Bytes; b > budget+maxEntry {
				t.Fatalf("policy %d: after Get %d payload %d exceeds budget %d + max entry %d",
					pol, i, b, budget, maxEntry)
			}
		}
		if ev := pc.Stats().Evictions; ev == 0 {
			t.Fatalf("policy %d: budget sweep never evicted (budget %d)", pol, budget)
		}
		evictAll(t, pc, cols)
	}
}

// TestCacheBudgetConcurrent runs budgeted traffic from many goroutines:
// after the traffic quiesces one enforcement pass must land the payload at
// or under budget, and the accounting must still be exact.
func TestCacheBudgetConcurrent(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	rel := randRelation(t, rng, 300, 5, 3)
	cols := rel.NumCols()
	pc := NewPartitionCache(rel)
	budget := pc.Stats().Bytes + 4*partitionBytes(pc.Get(Single(0)))
	pc.SetBudget(budget)

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			var buf ProductBuffer
			for i := 0; i < 200; i++ {
				attrs := Single(rng.Intn(cols)).With(rng.Intn(cols))
				if rng.Intn(2) == 0 {
					attrs = attrs.With(rng.Intn(cols))
				}
				pc.GetWith(attrs, &buf)
			}
		}(int64(100 + g))
	}
	wg.Wait()
	pc.SetBudget(budget) // one quiesced enforcement pass
	if b := pc.Stats().Bytes; b > budget {
		t.Fatalf("payload %d over budget %d after quiesced enforcement", b, budget)
	}
	evictAll(t, pc, cols)
}

func TestCacheStatsSince(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	rel := randRelation(t, rng, 200, 4, 4)
	pc := NewPartitionCache(rel)

	pc.Get(Single(0)) // hit (pre-warmed)
	prev := pc.Stats()

	pc.Get(Single(0))         // hit
	pc.Get(Single(0).With(1)) // miss + insert (+2 hits on the cached singles it recurses through)
	pc.Get(Single(0).With(1)) // hit
	pc.Evict(2)               // drop the level-2 entry

	d := pc.Stats().Since(prev)
	if d.Hits != 4 || d.Misses != 1 {
		t.Fatalf("Since hits/misses = %d/%d, want 4/1", d.Hits, d.Misses)
	}
	if d.Evictions != 1 {
		t.Fatalf("Since evictions = %d, want 1", d.Evictions)
	}
	if d.Entries != 0 || d.Bytes != 0 {
		t.Fatalf("Since entries/bytes = %d/%d, want 0/0 (insert and evict cancel)", d.Entries, d.Bytes)
	}
	if d.Budget != pc.Budget() || d.PeakBytes != pc.Stats().PeakBytes {
		t.Fatalf("Since must carry current Budget and PeakBytes")
	}
}

// TestEvictCostModelKeepsHotEntries checks the policy's ranking: with two
// same-level entries of equal size, repeated hits on one must make the
// cold one evict first when the budget trips.
func TestEvictCostModelKeepsHotEntries(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	rel := randRelation(t, rng, 400, 6, 3)
	pc := NewPartitionCache(rel)
	hot := Single(0).With(1)
	cold := Single(2).With(3)
	pc.Get(cold)
	for i := 0; i < 50; i++ {
		pc.Get(hot) // heat
	}
	// Budget just below the current payload forces exactly one shed pass.
	pc.SetBudget(pc.Stats().Bytes - 1)

	misses := pc.Stats().Misses
	pc.Get(hot)
	if pc.Stats().Misses != misses {
		t.Fatalf("cost model evicted the hot entry over the cold one")
	}
}

// TestEvictLevelSweepOrder checks the baseline sweeps multi-attribute
// levels before single columns.
func TestEvictLevelSweepOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	rel := randRelation(t, rng, 400, 4, 3)
	pc := NewPartitionCache(rel)
	pc.SetPolicy(EvictLevelSweep)
	singlesBytes := pc.Stats().Bytes
	pair := Single(0).With(1)
	pc.Get(pair)
	// A budget that fits the singles but not the pair must shed the pair
	// and keep every single column.
	pc.SetBudget(pc.Stats().Bytes - 1)
	misses := pc.Stats().Misses
	for c := 0; c < rel.NumCols(); c++ {
		pc.Get(Single(c))
	}
	if m := pc.Stats().Misses; m != misses {
		t.Fatalf("level sweep evicted %d single columns before the level-2 entry", m-misses)
	}
	if b := pc.Stats().Bytes; b != singlesBytes {
		t.Fatalf("level-2 entry not shed: %d bytes, want the %d of the singles", b, singlesBytes)
	}
}
