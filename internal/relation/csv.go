package relation

import (
	"encoding/csv"
	"fmt"
	"io"
	"os"
)

// ReadCSV parses a relation from CSV with a header row naming the attributes.
func ReadCSV(r io.Reader) (*Relation, error) {
	cr := csv.NewReader(r)
	cr.ReuseRecord = true
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("relation: reading CSV header: %w", err)
	}
	schema, err := NewSchema(append([]string(nil), header...)...)
	if err != nil {
		return nil, err
	}
	rel := New(schema)
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("relation: reading CSV row: %w", err)
		}
		if len(rec) != schema.Len() {
			return nil, fmt.Errorf("relation: CSV row has %d cells, want %d", len(rec), schema.Len())
		}
		rel.AppendRow(rec)
	}
	return rel, nil
}

// ReadCSVFile parses a relation from the named CSV file.
func ReadCSVFile(path string) (*Relation, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadCSV(f)
}

// WriteCSV serializes the relation as CSV with a header row.
func WriteCSV(w io.Writer, rel *Relation) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(rel.Schema().Names()); err != nil {
		return err
	}
	for i := 0; i < rel.NumRows(); i++ {
		if err := cw.Write(rel.Row(i)); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteCSVFile serializes the relation to the named file.
func WriteCSVFile(path string, rel *Relation) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteCSV(f, rel); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
