package relation

// Column storage is block-chained: each column's dict-encoded codes live in
// a chain of sealed, fixed-size blocks plus one growing tail block, instead
// of a single flat slice. Sealing is structural immutability — once a block
// is full its backing array never moves or changes length again — which
// buys three things the flat layout could not give:
//
//   - Appends never reallocate previously written codes, so column views
//     captured before an append (partition overlays, StableView snapshots,
//     the monitor's materialized violation records) stay valid without
//     copying.
//   - Snapshots serialize and restore columns as bulk fixed-size block
//     copies with no re-interning and no growth-path waste.
//   - Memory accounting is exact: a column's footprint is a block count,
//     not an opaque append-doubling capacity.
//
// Cell updates (the monitor's consequent writes, repair's cell changes)
// still mutate codes in place under the owner's single-writer discipline;
// "sealed" freezes the block's identity and length, not its cell values.

const (
	// BlockShift is log2 of the block size: 64Ki codes (256 KiB) per block,
	// large enough that sequential scans are effectively flat and small
	// enough that the tail's unsealed waste is bounded.
	BlockShift = 16
	// BlockSize is the number of codes per sealed block.
	BlockSize = 1 << BlockShift
	blockMask = BlockSize - 1
)

// Col is one column's dict-encoded codes as a sealed-block chain. The
// zero value is an empty column. A Col is not safe for concurrent
// mutation; readers are safe between mutations (the same contract as the
// flat slice it replaced).
type Col struct {
	sealed [][]Value // each exactly BlockSize long, structurally frozen
	tail   []Value   // the growing unsealed block, len < BlockSize
	n      int
}

// Len returns the number of codes in the column.
func (c *Col) Len() int { return c.n }

// At returns the code at row i.
func (c *Col) At(i int) Value {
	if b := i >> BlockShift; b < len(c.sealed) {
		return c.sealed[b][i&blockMask]
	}
	return c.tail[i&blockMask]
}

// Set overwrites the code at row i in place.
func (c *Col) Set(i int, v Value) {
	if b := i >> BlockShift; b < len(c.sealed) {
		c.sealed[b][i&blockMask] = v
		return
	}
	c.tail[i&blockMask] = v
}

// Append adds one code at the end, sealing the tail block when it fills.
func (c *Col) Append(v Value) {
	if len(c.tail) == 0 && cap(c.tail) < BlockSize {
		// Blocks are allocated at full size up front: the chain never
		// pays append-doubling copies, and sealing is a pointer move.
		c.tail = make([]Value, 0, BlockSize)
	}
	c.tail = append(c.tail, v)
	c.n++
	if len(c.tail) == BlockSize {
		c.sealed = append(c.sealed, c.tail)
		c.tail = nil
	}
}

// NumBlocks returns the number of blocks, counting a non-empty tail.
func (c *Col) NumBlocks() int {
	if len(c.tail) > 0 {
		return len(c.sealed) + 1
	}
	return len(c.sealed)
}

// Block returns block b's codes for sequential scans. Blocks before
// NumBlocks()-1 are sealed (exactly BlockSize codes); the last may be the
// shorter tail. Callers must not grow the returned slice.
func (c *Col) Block(b int) []Value {
	if b < len(c.sealed) {
		return c.sealed[b]
	}
	return c.tail
}

// clone returns a deep copy of the column (cell writes mutate blocks in
// place, so clones must not share them).
func (c *Col) clone() *Col {
	out := &Col{n: c.n}
	if len(c.sealed) > 0 {
		out.sealed = make([][]Value, len(c.sealed))
		for i, blk := range c.sealed {
			b := make([]Value, BlockSize)
			copy(b, blk)
			out.sealed[i] = b
		}
	}
	if len(c.tail) > 0 {
		out.tail = make([]Value, len(c.tail), BlockSize)
		copy(out.tail, c.tail)
	}
	return out
}

// appendBlock bulk-appends codes that already form whole blocks — the
// snapshot restore path. blk must hold at most BlockSize codes; a full
// block is adopted (not copied) and sealed, a short one becomes the tail.
func (c *Col) appendBlock(blk []Value) {
	if len(c.tail) > 0 || len(blk) > BlockSize {
		panic("relation: appendBlock on a column with an open tail or oversized block")
	}
	if len(blk) == BlockSize {
		c.sealed = append(c.sealed, blk)
	} else {
		// Re-home short blocks at full capacity so later Appends extend in
		// place up to the seal instead of paying growth reallocations.
		c.tail = make([]Value, len(blk), BlockSize)
		copy(c.tail, blk)
	}
	c.n += len(blk)
}
