package relation

import (
	"fmt"
	"sort"
	"sync/atomic"
	"unsafe"

	"github.com/fastofd/fastofd/internal/wire"
)

// This file is the relation substrate's side of the snapshot format:
// encode/decode of relations (schema + dictionaries + column block
// chains), partitions, partition caches, and partition overlays. The
// encoding is private to the repo's snapshot sections — stability across
// versions is handled by the section header in internal/snapshot, not
// here.
//
// Decoding is zero-copy where it matters: column blocks, partition arrays,
// and overlay deltas alias the reader's buffer (see the wire package for
// the lifetime and mutation contract), and dictionary domains decode as
// slices of one shared string slab with the string→id maps hydrated only
// if the relation is written to again.

// AppendRelation encodes r.
func AppendRelation(w *wire.Writer, r *Relation) {
	w.StringSlab(r.schema.names)
	w.Int(r.n)
	for c := range r.cols {
		w.StringSlab(r.dicts[c].byID)
		col := r.cols[c]
		w.Int(col.NumBlocks())
		for b := 0; b < col.NumBlocks(); b++ {
			w.Int32s(valuesToInt32s(col.Block(b)))
		}
	}
}

// DecodeRelation decodes a relation written by AppendRelation.
func DecodeRelation(r *wire.Reader) (*Relation, error) {
	names := r.StringSlab()
	if r.Err() != nil {
		return nil, r.Err()
	}
	schema, err := NewSchema(names...)
	if err != nil {
		return nil, err
	}
	rel := New(schema)
	rel.n = r.Int()
	for c := 0; c < schema.Len(); c++ {
		rel.dicts[c] = restoreDict(r.StringSlab())
		nBlocks := r.Int()
		for b := 0; b < nBlocks; b++ {
			blk := int32sToValues(r.Int32s())
			if r.Err() != nil {
				return nil, r.Err()
			}
			rel.cols[c].appendBlock(blk)
		}
		if rel.cols[c].Len() != rel.n {
			return nil, fmt.Errorf("relation: snapshot column %d has %d codes, want %d", c, rel.cols[c].Len(), rel.n)
		}
	}
	return rel, r.Err()
}

// valuesToInt32s reinterprets a []Value as []int32 without copying: Value
// is a defined int32, so the element layouts are identical and only the
// slice header changes. Keeping the reinterpretation (rather than a copy
// loop) preserves the zero-copy decode path end to end — a restored
// column block is a view of the snapshot buffer.
func valuesToInt32s(vs []Value) []int32 {
	if len(vs) == 0 {
		return nil
	}
	return unsafe.Slice((*int32)(unsafe.Pointer(&vs[0])), len(vs))[:len(vs):len(vs)]
}

// int32sToValues is the inverse reinterpretation of valuesToInt32s.
func int32sToValues(xs []int32) []Value {
	if len(xs) == 0 {
		return nil
	}
	return unsafe.Slice((*Value)(unsafe.Pointer(&xs[0])), len(xs))[:len(xs):len(xs)]
}

// AppendPartition encodes p.
func AppendPartition(w *wire.Writer, p *Partition) {
	w.Int32s(p.Tuples)
	w.Int32s(p.Offsets)
	w.Int(p.N)
	w.Bool(p.Stripped)
}

// DecodePartition decodes a partition written by AppendPartition. Tuples
// and Offsets alias the reader's buffer.
func DecodePartition(r *wire.Reader) *Partition {
	return &Partition{
		Tuples:   r.Int32s(),
		Offsets:  r.Int32s(),
		N:        r.Int(),
		Stripped: r.Bool(),
	}
}

// AppendTo encodes the cache's configuration and current entries, sorted
// by attribute set so the encoding is deterministic. Counters (hits,
// misses, evictions, peak) are runtime telemetry and are not persisted.
// Row-stale entries (stored before an append, resident but never served)
// are skipped: the decoder stamps every restored entry with the restored
// relation's row count, so persisting a stale partition would launder it
// into a servable one covering fewer rows than the relation has.
// Not safe to call concurrently with cache mutation.
func (pc *PartitionCache) AppendTo(w *wire.Writer) {
	budget := pc.budget.Load()
	if budget < 0 {
		budget = 0
	}
	w.Uvarint(uint64(budget))
	w.Uvarint(uint64(pc.policy.Load()))
	type entry struct {
		attrs AttrSet
		p     *Partition
	}
	rows := pc.r.NumRows()
	var entries []entry
	for i := range pc.shards {
		s := &pc.shards[i]
		s.mu.RLock()
		for attrs, e := range s.m {
			if e.rows != rows {
				continue
			}
			entries = append(entries, entry{attrs, e.p})
		}
		s.mu.RUnlock()
	}
	sort.Slice(entries, func(a, b int) bool { return entries[a].attrs < entries[b].attrs })
	w.Int(len(entries))
	for _, e := range entries {
		w.Uvarint(uint64(e.attrs))
		AppendPartition(w, e.p)
	}
}

// DecodePartitionCache decodes a cache written by AppendTo, rebinding it
// to rel. Cached partitions alias the reader's buffer; no single-column
// partitions are recomputed — entries absent from the snapshot (evicted
// before the save) rebuild on first Get exactly as they would have in the
// saved process.
func DecodePartitionCache(r *wire.Reader, rel *Relation) (*PartitionCache, error) {
	pc := &PartitionCache{r: rel, luts: make([]atomic.Pointer[colLUT], rel.NumCols())}
	for i := range pc.shards {
		pc.shards[i].m = make(map[AttrSet]*cacheEntry)
		pc.shards[i].levels = make(map[int][]AttrSet)
	}
	pc.budget.Store(int64(r.Uvarint()))
	pc.policy.Store(int32(r.Uvarint()))
	n := r.Int()
	for k := 0; k < n; k++ {
		attrs := AttrSet(r.Uvarint())
		p := DecodePartition(r)
		if r.Err() != nil {
			return nil, r.Err()
		}
		pc.store(attrs, p)
	}
	// store() counted budget enforcement work; reset telemetry so the
	// restored cache starts with clean counters (entries/bytes reflect the
	// restored payload, which Stats derives live).
	pc.hits.Store(0)
	pc.misses.Store(0)
	pc.evictions.Store(0)
	pc.peakBytes.Store(pc.bytes.Load())
	return pc, r.Err()
}

// Delta returns class ci's overlay-added tuples (snapshot encode hook;
// callers must not mutate the slice).
func (o *PartitionOverlay) Delta(ci int) []int32 { return o.deltas[ci] }

// BaseMap returns the overlay's base-class mapping (nil = identity over
// every base class). Snapshot encode hook; callers must not mutate it.
func (o *PartitionOverlay) BaseMap() []int32 { return o.baseMap }

// RestoreOverlayShard rebuilds an overlay from its serialized parts: the
// shared frozen base, the shard's base-class mapping, and the per-class
// delta lists (len(deltas) ≥ len(baseMap); classes at or past the mapping
// are overlay-born). The slices are retained, not copied.
func RestoreOverlayShard(base *Partition, baseMap []int32, deltas [][]int32) *PartitionOverlay {
	o := &PartitionOverlay{
		base:    base,
		nBase:   len(baseMap),
		deltas:  deltas,
		baseMap: baseMap,
	}
	for _, d := range deltas {
		o.added += len(d)
	}
	return o
}
