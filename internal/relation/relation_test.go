package relation

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestSchemaBasics(t *testing.T) {
	s, err := NewSchema("A", "B", "C")
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 3 {
		t.Fatalf("len = %d", s.Len())
	}
	if i, ok := s.Index("B"); !ok || i != 1 {
		t.Fatalf("Index(B) = %d,%v", i, ok)
	}
	if _, ok := s.Index("Z"); ok {
		t.Fatal("Index(Z) should miss")
	}
	if got := s.All(); got != AttrSet(0b111) {
		t.Fatalf("All = %v", got)
	}
	if got := s.MustSet("A", "C"); got != AttrSet(0b101) {
		t.Fatalf("Set(A,C) = %v", got)
	}
	if got := s.MustSet("A", "C").Format(s); got != "[A, C]" {
		t.Fatalf("Format = %q", got)
	}
}

func TestSchemaErrors(t *testing.T) {
	if _, err := NewSchema(); err == nil {
		t.Error("empty schema should error")
	}
	if _, err := NewSchema("A", "A"); err == nil {
		t.Error("duplicate names should error")
	}
	if _, err := NewSchema("A", ""); err == nil {
		t.Error("empty name should error")
	}
	names := make([]string, MaxAttrs+1)
	for i := range names {
		names[i] = string(rune('a'+i%26)) + string(rune('0'+i/26))
	}
	if _, err := NewSchema(names...); err == nil {
		t.Error("too many attributes should error")
	}
}

func TestAttrSetOps(t *testing.T) {
	a := EmptySet.With(0).With(3).With(5)
	if a.Len() != 3 || !a.Has(3) || a.Has(1) {
		t.Fatalf("bad set %v", a)
	}
	if got := a.Without(3); got.Has(3) || got.Len() != 2 {
		t.Fatalf("Without: %v", got)
	}
	b := EmptySet.With(3)
	if !b.SubsetOf(a) || a.SubsetOf(b) {
		t.Fatal("subset relations wrong")
	}
	if !b.ProperSubsetOf(a) || a.ProperSubsetOf(a) {
		t.Fatal("proper subset relations wrong")
	}
	if got := a.Minus(b); got.Has(3) {
		t.Fatal("minus failed")
	}
	if got := a.Attrs(); !reflect.DeepEqual(got, []int{0, 3, 5}) {
		t.Fatalf("Attrs = %v", got)
	}
	if a.First() != 0 || EmptySet.First() != -1 {
		t.Fatal("First wrong")
	}
	if a.String() != "{0,3,5}" {
		t.Fatalf("String = %q", a.String())
	}
}

func TestAttrSetAlgebraQuick(t *testing.T) {
	f := func(x, y, z uint16) bool {
		a, b, c := AttrSet(x), AttrSet(y), AttrSet(z)
		if a.Union(b) != b.Union(a) {
			return false
		}
		if a.Intersect(b.Union(c)) != a.Intersect(b).Union(a.Intersect(c)) {
			return false
		}
		if !a.Minus(b).SubsetOf(a) {
			return false
		}
		if a.Union(b).Len() != a.Len()+b.Len()-a.Intersect(b).Len() {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func testRelation(t *testing.T) *Relation {
	t.Helper()
	rel, err := FromRows(MustSchema("CC", "CTRY", "SYMP"), [][]string{
		{"US", "USA", "pain"},
		{"IN", "India", "pain"},
		{"CA", "Canada", "pain"},
		{"IN", "Bharat", "nausea"},
		{"US", "America", "nausea"},
		{"US", "USA", "nausea"},
	})
	if err != nil {
		t.Fatal(err)
	}
	return rel
}

func TestRelationAccessors(t *testing.T) {
	rel := testRelation(t)
	if rel.NumRows() != 6 || rel.NumCols() != 3 {
		t.Fatalf("shape %dx%d", rel.NumRows(), rel.NumCols())
	}
	if rel.String(3, 1) != "Bharat" {
		t.Fatalf("cell (3,1) = %q", rel.String(3, 1))
	}
	if got := rel.Row(0); !reflect.DeepEqual(got, []string{"US", "USA", "pain"}) {
		t.Fatalf("row 0 = %v", got)
	}
	// Same-column equal strings share encoded values.
	if rel.Value(0, 0) != rel.Value(5, 0) {
		t.Fatal("dictionary should intern equal values")
	}
	if got := len(rel.Project(0)); got != 3 {
		t.Fatalf("Project(CC) distinct = %d", got)
	}
}

func TestRelationCloneIsolation(t *testing.T) {
	rel := testRelation(t)
	cl := rel.Clone()
	cl.SetString(0, 1, "Estados Unidos")
	if rel.String(0, 1) != "USA" {
		t.Fatal("clone mutation leaked into original")
	}
	d, err := rel.DiffCells(cl)
	if err != nil || d != 1 {
		t.Fatalf("DiffCells = %d, %v", d, err)
	}
}

func TestPartitionBasics(t *testing.T) {
	rel := testRelation(t)
	p := SingleColumnPartition(rel, 0)
	if p.NumClasses() != 3 {
		t.Fatalf("CC classes = %d", p.NumClasses())
	}
	// Π_CC = {{0,4,5},{1,3},{2}} — canonical order by representative.
	want := [][]int{{0, 4, 5}, {1, 3}, {2}}
	if !reflect.DeepEqual(p.ClassesAsInts(), want) {
		t.Fatalf("classes = %v", p.ClassesAsInts())
	}
	sp := p.Strip()
	if sp.NumClasses() != 2 || sp.Size() != 5 {
		t.Fatalf("stripped: %v", sp.ClassesAsInts())
	}
	if p.Error() != 3 { // (3-1)+(2-1)+(1-1)
		t.Fatalf("error = %d", p.Error())
	}
	if p.IsKeyOver() {
		t.Fatal("CC is not a key")
	}
}

func TestPartitionProductMatchesDirect(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 40; trial++ {
		cols := 2 + rng.Intn(3)
		rows := 1 + rng.Intn(30)
		names := make([]string, cols)
		for i := range names {
			names[i] = string(rune('A' + i))
		}
		rel := New(MustSchema(names...))
		row := make([]string, cols)
		for r := 0; r < rows; r++ {
			for c := range row {
				row[c] = string(rune('a' + rng.Intn(3)))
			}
			rel.AppendRow(row)
		}
		a, b := rng.Intn(cols), rng.Intn(cols)
		pa := SingleColumnPartition(rel, a).Strip()
		pb := SingleColumnPartition(rel, b).Strip()
		got := Product(pa, pb)
		want := PartitionOf(rel, Single(a).With(b)).Strip()
		if !reflect.DeepEqual(got.ClassesAsInts(), want.ClassesAsInts()) {
			t.Fatalf("trial %d: product %v != direct %v", trial, got.ClassesAsInts(), want.ClassesAsInts())
		}
	}
}

func TestPartitionProductRefines(t *testing.T) {
	// Π_XY must refine Π_X: every product class is inside some X class.
	rng := rand.New(rand.NewSource(9))
	rel := New(MustSchema("A", "B"))
	for r := 0; r < 50; r++ {
		rel.AppendRow([]string{string(rune('a' + rng.Intn(4))), string(rune('a' + rng.Intn(4)))})
	}
	pa := SingleColumnPartition(rel, 0).Strip()
	pb := SingleColumnPartition(rel, 1).Strip()
	prod := Product(pa, pb)
	inClass := make(map[int32]int)
	for ci := 0; ci < pa.NumClasses(); ci++ {
		for _, t := range pa.Class(ci) {
			inClass[t] = ci
		}
	}
	for ci := 0; ci < prod.NumClasses(); ci++ {
		class := prod.Class(ci)
		first := inClass[class[0]]
		for _, tup := range class {
			if inClass[tup] != first {
				t.Fatalf("product class %v spans multiple A-classes", class)
			}
		}
	}
}

func TestPartitionCache(t *testing.T) {
	rel := testRelation(t)
	pc := NewPartitionCache(rel)
	ab := Single(0).With(1)
	p1 := pc.Get(ab)
	p2 := pc.Get(ab)
	if p1 != p2 {
		t.Fatal("cache miss on second Get")
	}
	want := PartitionOf(rel, ab).Strip()
	if !reflect.DeepEqual(p1.ClassesAsInts(), want.ClassesAsInts()) {
		t.Fatalf("cached product wrong: %v vs %v", p1.ClassesAsInts(), want.ClassesAsInts())
	}
	// Evict and recompute.
	pc.Evict(2)
	p3 := pc.Get(ab)
	if !reflect.DeepEqual(p3.ClassesAsInts(), want.ClassesAsInts()) {
		t.Fatalf("recomputed partition wrong")
	}
	// Empty attribute set: one class with everything (stripped keeps it).
	pe := pc.Get(EmptySet)
	if pe.Size() != rel.NumRows() {
		t.Fatalf("empty-set partition size %d", pe.Size())
	}
}

func TestCSVRoundTrip(t *testing.T) {
	rel := testRelation(t)
	var buf bytes.Buffer
	if err := WriteCSV(&buf, rel); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if d, _ := rel.DiffCells(back); d != 0 {
		t.Fatalf("round trip differs in %d cells", d)
	}
	if !reflect.DeepEqual(back.Schema().Names(), rel.Schema().Names()) {
		t.Fatal("schema lost in round trip")
	}
}

func TestCSVErrors(t *testing.T) {
	if _, err := ReadCSV(bytes.NewBufferString("")); err == nil {
		t.Error("empty CSV should error")
	}
	if _, err := ReadCSV(bytes.NewBufferString("A,A\n1,2\n")); err == nil {
		t.Error("duplicate header should error")
	}
}

func TestSortSets(t *testing.T) {
	sets := []AttrSet{7, 1, 3, 2}
	SortSets(sets)
	if !reflect.DeepEqual(sets, []AttrSet{1, 2, 3, 7}) {
		t.Fatalf("sorted = %v", sets)
	}
}
